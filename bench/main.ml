(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (printing measured vs published values) and runs one Bechamel
   micro-benchmark per table/figure measuring the cost of regenerating a
   scaled-down version of it.

   Usage:
     bench/main.exe [EXPERIMENT...] [FLAGS]

   Experiments (none = all, in the order below):
     claims space table2 table3 table4 figure3 surf-vs-brute ablation
     modelcheck motivation sweep service netopt telemetry drift ledger
     check bechamel

   Flags compose with any experiment selection; unknown --flags are an
   error, not a silently ignored subcommand:
     --list             print the experiment names, one per line, and exit
     --trace-dir=DIR    trace every experiment; write DIR/<name>.trace.json
                        (Chrome trace-event, loadable in chrome://tracing);
                        nested DIRs are created recursively
     --json-out=FILE    write a benchmark artifact (Obs.Bench_log JSON):
                        per-experiment wall time, raw Bechamel samples and
                        OLS estimates, service latency quantiles, and
                        pipeline span timings aggregated from the trace
     --compare=FILE     after running, compare against the baseline
                        artifact in FILE (e.g. bench/baseline.json); print
                        a delta table and exit 1 on a statistically
                        significant slowdown (Mann-Whitney + bootstrap CI
                        over raw samples, see Util.Stats.compare_samples)
     --compare-threshold=R  minimum median ratio to call a regression
                        (default 1.5; CI uses a generous value so shared
                        runners only gate on order-of-magnitude slowdowns)
     --compare-alpha=A  significance level of the gate (default 0.01) *)

type options = {
  trace_dir : string option;
  json_out : string option;
  compare_to : string option;
  threshold : float;
  alpha : float;
}

let default_options =
  { trace_dir = None; json_out = None; compare_to = None; threshold = 1.5; alpha = 0.01 }

let experiment_names =
  [ "claims"; "space"; "table2"; "table3"; "table4"; "figure3"; "surf-vs-brute";
    "ablation"; "modelcheck"; "motivation"; "sweep"; "service"; "netopt";
    "telemetry"; "drift"; "ledger"; "check"; "bechamel" ]

let usage () =
  Printf.eprintf
    "usage: main.exe [EXPERIMENT...] [--list] [--trace-dir=DIR] \
     [--json-out=FILE] [--compare=FILE] [--compare-threshold=R] \
     [--compare-alpha=A]\n\
     experiments: %s\n"
    (String.concat " " experiment_names);
  exit 2

(* Flag-stripping parser: every --flag (anywhere on the command line) is
   consumed here, the rest must be experiment names. An unknown --flag is
   a hard error instead of falling through to the usage as a bogus
   experiment. *)
let parse_argv argv =
  let opts = ref default_options in
  let positional = ref [] in
  let split_flag a =
    match String.index_opt a '=' with
    | Some i -> (String.sub a 0 i, Some (String.sub a (i + 1) (String.length a - i - 1)))
    | None -> (a, None)
  in
  let value name = function
    | Some v when v <> "" -> v
    | _ ->
      Printf.eprintf "flag %s requires a value (%s=...)\n" name name;
      usage ()
  in
  let float_value name v =
    let v = value name v in
    match float_of_string_opt v with
    | Some x -> x
    | None ->
      Printf.eprintf "flag %s: %S is not a number\n" name v;
      usage ()
  in
  List.iter
    (fun a ->
      if String.length a >= 2 && String.sub a 0 2 = "--" then begin
        let name, v = split_flag a in
        match name with
        | "--list" ->
          List.iter print_endline experiment_names;
          exit 0
        | "--trace-dir" -> opts := { !opts with trace_dir = Some (value name v) }
        | "--json-out" -> opts := { !opts with json_out = Some (value name v) }
        | "--compare" -> opts := { !opts with compare_to = Some (value name v) }
        | "--compare-threshold" -> opts := { !opts with threshold = float_value name v }
        | "--compare-alpha" -> opts := { !opts with alpha = float_value name v }
        | _ ->
          Printf.eprintf "unknown flag %s\n" name;
          usage ()
      end
      else positional := a :: !positional)
    (List.tl (Array.to_list argv));
  (!opts, List.rev !positional)

let opts, selected = parse_argv Sys.argv

(* ------------------------------------------------------------------ *)
(* Experiment records accumulated for the benchmark artifact. *)

let records : Obs.Bench_log.experiment list ref = ref []

let push_record r = records := r :: !records

(* Run one experiment: wall-time it, trace it when the trace dir or the
   JSON artifact needs spans, and record it. [f] returns the latency
   quantiles to attach (most experiments have none). *)
let timed name f =
  let want_spans = opts.trace_dir <> None || opts.json_out <> None in
  let t0 = Unix.gettimeofday () in
  let quantiles, events =
    if want_spans then Obs.Trace.collect f else (f (), [])
  in
  let wall = Unix.gettimeofday () -. t0 in
  (match opts.trace_dir with
  | None -> ()
  | Some dir ->
    Util.Fs.mkdir_p dir;
    let path = Filename.concat dir (name ^ ".trace.json") in
    Obs.Export.write_chrome_trace path events;
    Printf.printf "[%s trace: %d spans -> %s]\n%!" name (List.length events) path);
  push_record
    {
      Obs.Bench_log.name;
      wall_s = wall;
      samples_s = [];
      ols_s = None;
      quantiles;
      spans = Obs.Bench_log.aggregate_spans events;
    };
  Printf.printf "[%s regenerated in %.1fs]\n\n%!" name wall

let print_table t =
  Util.Table.print t;
  print_newline ()

let table name mk = timed name (fun () -> print_table (mk ()); [])

let run_claims () = table "claims" Tables.claims
let run_space () = table "space" Tables.space_table
let run_table2 () = table "table2" Tables.table2
let run_table3 () = table "table3" Tables.table3
let run_table4 () = table "table4" Tables.table4
let run_figure3 () = timed "figure3" (fun () -> List.iter print_table (Tables.figure3 ()); [])
let run_surf_brute () = table "surf-vs-brute" Tables.surf_vs_brute
let run_ablation () = table "ablation" Tables.ablation
let run_modelcheck () = table "modelcheck" Tables.modelcheck
let run_motivation () = table "motivation" Tables.motivation
let run_sweep () = table "sweep" Tables.sweep
let run_service () = timed "service" (fun () -> Service_bench.run ())

(* Contraction-order optimizer: greedy baseline vs TreeSA on fixed-seed
   networks the paper's single-equation front end never handled. Costs are
   log2, so a delta of 1.0 is a 2x change in the linear quantity. *)
let netopt_table () =
  let score = { Netopt.Tree.default_score with sc_target = 10.0 } in
  let row name net meth tree =
    let c = Netopt.Tree.cost net tree in
    [ name; meth; Util.Table.cell_f c.tc; Util.Table.cell_f c.sc;
      Util.Table.cell_f c.rw; Util.Table.cell_f (Netopt.Tree.score score c) ]
  in
  let cases =
    [
      ("line-20", Netopt.Gen.line ~n:20 (Util.Rng.create 2));
      ("ring-16", Netopt.Gen.ring ~n:16 (Util.Rng.create 1));
      ("power-20", Netopt.Gen.power_law ~n:20 (Util.Rng.create 2));
    ]
  in
  let rows =
    List.concat_map
      (fun (name, net) ->
        let greedy = Netopt.Greedy.optimize net in
        let treesa =
          Netopt.Treesa.optimize ~score ~rng:(Util.Rng.create 7) net
        in
        [ row name net "greedy" greedy; row name net "treesa" treesa ])
      cases
  in
  Util.Table.create ~title:"Contraction-order optimizer (log2 costs)"
    ([ "network"; "method"; "tc"; "sc"; "rw"; "score" ] :: rows)

let run_netopt () = table "netopt" netopt_table

(* Telemetry: sketch-estimated quantiles vs exact order statistics on a
   heavy-tailed fixed-seed sample, with the constant-memory bucket count
   alongside - the accuracy/footprint tradeoff that lets Service.Metrics
   drop full-history timer storage. *)
let telemetry_table () =
  let n = 20_000 in
  let rng = Util.Rng.create 5 in
  let sketch = Obs.Sketch.create () in
  let samples =
    List.init n (fun _ ->
        let v = 1e-4 *. exp (1.5 *. Util.Rng.gaussian rng) in
        Obs.Sketch.add sketch v;
        v)
  in
  let row p =
    let exact = Util.Stats.percentile p samples in
    let est = Obs.Sketch.quantile sketch p in
    [ Printf.sprintf "p%g" p;
      Util.Table.cell_f ~digits:4 (exact *. 1e3);
      Util.Table.cell_f ~digits:4 (est *. 1e3);
      Util.Table.cell_f (100.0 *. abs_float (est -. exact) /. exact) ]
  in
  let rows = List.map row [ 50.0; 90.0; 99.0; 99.9 ] in
  Util.Table.create
    ~title:
      (Printf.sprintf
         "Quantile sketch vs exact order statistics (n=%d, %d sketch buckets)"
         n (Obs.Sketch.bucket_count sketch))
    ([ "quantile"; "exact (ms)"; "sketch (ms)"; "err %" ] :: rows)

let run_telemetry () = table "telemetry" telemetry_table

(* Change-point detectors: detection delay (ticks from the injected shift
   to the first alarm) per detector and shift size on a fixed-seed
   lognormal stream. Small shifts inside a detector's tolerance band are
   expected to stay silent - that row prints "-", documenting the band. *)
let drift_table () =
  let shift_at = 1_000 and horizon = 3_000 in
  let detectors =
    [
      (fun () -> Obs.Drift.page_hinkley ~delta:0.3 "page-hinkley");
      (fun () -> Obs.Drift.cusum ~ref_count:500 "cusum");
      (fun () ->
        Obs.Drift.quantile_shift ~window:250 ~ref_windows:2 "quantile-shift");
    ]
  in
  let row mk shift =
    let m = mk () in
    let rng = Util.Rng.create 11 in
    let first = ref None in
    for t = 0 to horizon - 1 do
      let base = if t < shift_at then 1.0 else shift in
      let v = base *. exp (0.1 *. Util.Rng.gaussian rng) in
      match Obs.Drift.observe m ~tick:t v with
      | Some a when !first = None -> first := Some a
      | _ -> ()
    done;
    [ Obs.Drift.name m;
      Printf.sprintf "%gx" shift;
      (match !first with
      | Some a -> string_of_int (a.Obs.Drift.at_tick - shift_at)
      | None -> "-");
      (match !first with
      | Some a -> Printf.sprintf "%.3g" a.Obs.Drift.statistic
      | None -> "-") ]
  in
  let rows =
    List.concat_map
      (fun mk -> List.map (row mk) [ 1.5; 2.0; 4.0 ])
      detectors
  in
  Util.Table.create
    ~title:
      (Printf.sprintf
         "Change-point detection delay (shift injected at tick %d, seed 11)"
         shift_at)
    ([ "detector"; "shift"; "delay (ticks)"; "statistic" ] :: rows)

let run_drift () = table "drift" drift_table

(* Translation validation: throughput of the semantic layer on fixed
   candidates - the cost of proving a tuned winner computes its
   contraction. "points" is the field evaluations of the DSL oracle per
   round times the five lineage stages times the round count; every row
   asserts the candidate actually validates. *)
let check_table () =
  let rounds = Check.Semantic.default_rounds in
  let row (b : Autotune.Tuner.benchmark) =
    let c = List.hd (Autotune.Tuner.variant_choices b) in
    let points =
      List.map
        (fun s -> List.hd (Tcr.Space.enumerate s))
        c.Autotune.Tuner.spaces.op_spaces
    in
    let t0 = Unix.gettimeofday () in
    let v =
      Check.Semantic.validate ~rounds ~label:b.label b.statements
        ~variant_ids:c.Autotune.Tuner.ids ~ir:c.Autotune.Tuner.v_ir ~points
    in
    let wall = Unix.gettimeofday () -. t0 in
    assert v.Check.Semantic.equivalent;
    let pts = Check.Semantic.cost b.statements * 5 * rounds in
    [ b.label; string_of_int pts;
      Util.Table.cell_f (wall *. 1e3);
      Util.Table.cell_f (float_of_int pts /. wall /. 1e6) ]
  in
  let rows =
    List.map row
      [
        Autotune.Tuner.benchmark_of_dsl ~label:"matmul-32"
          "dims: i=32 j=32 k=32\nC[i j] = Sum([k], A[i k] * B[k j])";
        Benchsuite.Suite.eqn1 ~n:10 ();
        Benchsuite.Suite.lg3 ~p:6 ~elems:16 ();
      ]
  in
  Util.Table.create
    ~title:
      (Printf.sprintf "Translation validation throughput (%d rounds, seed %#x)"
         rounds Check.Semantic.default_seed)
    ([ "benchmark"; "points"; "wall (ms)"; "Mpoints/s" ] :: rows)

let run_check () = table "check" check_table

(* Causal cost ledger: a small fixed-seed loadgen replay through a real
   engine, its per-phase attribution, and the exact what-if ranking over
   the recorded requests. The cold-class phase quantiles land in the
   artifact keyed "phase:<name>" so Doctor DR042 can compare a live
   ledger against this committed baseline. *)
let ledger_cfg =
  {
    Service.Loadgen.default_config with
    requests = 2_000;
    batch = 8;
    window_width = 100;
    window_buckets = 8;
    engine =
      { Service.Engine.default_config with max_evals = 8; batch_size = 4; reps = 1 };
  }

let ledger_mix =
  [
    { Service.Loadgen.mix_label = "mm";
      mix_dsl = "C[i j] = Sum([k], A[i k] * B[k j])";
      weight = 3 };
    { Service.Loadgen.mix_label = "tiny";
      mix_dsl = "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])";
      weight = 1 };
  ]

let run_ledger () =
  timed "ledger" (fun () ->
      let r = Service.Loadgen.run ~record:true ledger_cfg ledger_mix in
      let rep = Obs.Ledger.report r.ledger in
      print_string (Obs.Ledger.render rep);
      print_newline ();
      let wr =
        Obs.Whatif.run ~slo:ledger_cfg.slo ~width:ledger_cfg.window_width
          ~buckets:ledger_cfg.window_buckets r.records
      in
      print_string (Obs.Whatif.render wr);
      print_newline ();
      List.filter_map
        (fun (cls, phase, (st : Obs.Ledger.stat)) ->
          if cls = Obs.Ledger.Cold then
            Some
              ( "phase:" ^ Obs.Ledger.phase_name phase,
                {
                  Obs.Bench_log.q50 = st.st_p50_s;
                  q90 = st.st_p90_s;
                  q99 = st.st_p99_s;
                } )
          else None)
        rep.lr_cells)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-suite: one Test.make per table/figure, each running a
   reduced-size regeneration of that experiment's pipeline so that several
   samples fit in the quota. *)

let small_cfg = { Surf.Search.default_config with max_evals = 20; batch_size = 5 }

let tune_small arch b =
  Autotune.Tuner.tune
    ~strategy:(Autotune.Tuner.Surf_search small_cfg)
    ~pool_per_variant:30 ~rng:(Util.Rng.create 1) ~arch b

let bench_claims () =
  (* Section III: enumerate the Eqn.(1) variants *)
  let b = Benchsuite.Suite.eqn1 ~n:4 () in
  let set = Octopi.Variants.of_contraction (List.hd b.statements) in
  assert (List.length set.variants = 15)

let bench_space () =
  let b = Benchsuite.Suite.lg3 ~p:6 ~elems:16 () in
  let choices = Autotune.Tuner.variant_choices b in
  assert (Autotune.Tuner.total_space choices > 0)

let bench_table2 () =
  ignore (tune_small Gpusim.Arch.gtx980 (Benchsuite.Suite.eqn1 ~n:6 ()))

let bench_table3 () =
  let b = Benchsuite.Suite.lg3 ~p:6 ~elems:16 () in
  let ir = (List.hd (Autotune.Tuner.variant_choices b)).v_ir in
  ignore (Cpusim.Openacc.time Gpusim.Arch.k20 ir ~reps:100 Cpusim.Openacc.Naive);
  ignore (tune_small Gpusim.Arch.k20 b)

let bench_table4 () =
  let b = Benchsuite.Nwchem.benchmark ~n:8 Benchsuite.Nwchem.D1 ~index:1 in
  ignore (Autotune.Tuner.best_openmp_time b);
  ignore (tune_small Gpusim.Arch.k20 b)

let bench_figure3 () =
  let b = Benchsuite.Nwchem.benchmark ~n:8 Benchsuite.Nwchem.S1 ~index:1 in
  let ir = (List.hd (Autotune.Tuner.variant_choices b)).v_ir in
  ignore (Cpusim.Openacc.time Gpusim.Arch.c2050 ir ~reps:100 Cpusim.Openacc.Naive);
  ignore (tune_small Gpusim.Arch.c2050 b)

let bench_surf_brute () =
  let pool = Array.init 200 (fun i -> i) in
  let eval i = abs_float (float_of_int i -. 127.0) in
  let encode i = [| float_of_int (i mod 16); float_of_int (i / 16) |] in
  let r = Surf.Search.surf ~config:small_cfg (Util.Rng.create 2) ~pool ~encode ~eval in
  assert (r.evaluations <= 20)

let bench_netopt () =
  let net = Netopt.Gen.line ~n:12 (Util.Rng.create 2) in
  let cfg = { Netopt.Treesa.default_config with sa_iters = 400 } in
  let greedy = Netopt.Greedy.optimize net in
  let treesa = Netopt.Treesa.optimize ~config:cfg ~rng:(Util.Rng.create 7) net in
  let score = Netopt.Tree.default_score in
  assert (
    Netopt.Tree.score score (Netopt.Tree.cost net treesa)
    <= Netopt.Tree.score score (Netopt.Tree.cost net greedy))

let bench_telemetry () =
  (* the streaming observe path: ring write, moments, sketch, decades *)
  let m = Service.Metrics.create () in
  let rng = Util.Rng.create 3 in
  for _ = 1 to 2048 do
    Service.Metrics.observe m "bench" (1e-4 *. exp (Util.Rng.gaussian rng))
  done

let bench_drift () =
  (* the monitor observe path: registry dispatch, running moments, one
     sketch insertion per quantile-shift observation *)
  let r = Obs.Drift.create_registry () in
  Obs.Drift.register r (Obs.Drift.page_hinkley "ph");
  Obs.Drift.register r (Obs.Drift.cusum ~ref_count:500 "cu");
  Obs.Drift.register r (Obs.Drift.quantile_shift ~window:250 "qs");
  let rng = Util.Rng.create 3 in
  for t = 0 to 2047 do
    let v = exp (0.1 *. Util.Rng.gaussian rng) in
    List.iter
      (fun m -> ignore (Obs.Drift.observe m ~tick:t v))
      (Obs.Drift.monitors r)
  done

let bench_ledger () =
  (* the ledger observe path: cell lookup, Welford update, one sketch
     insertion per phase, exemplar slot maintenance *)
  let l = Obs.Ledger.create ~slot_width:250 () in
  let rng = Util.Rng.create 3 in
  for t = 0 to 2047 do
    let h = 1e-4 *. exp (Util.Rng.gaussian rng) in
    let costs =
      [ (Obs.Ledger.Canonicalize, 0.10 *. h); (Obs.Ledger.Lookup, 0.15 *. h);
        (Obs.Ledger.Queue, 0.05 *. h); (Obs.Ledger.Measure, 0.70 *. h) ]
    in
    Obs.Ledger.observe l ~tick:t ~cls:Obs.Ledger.Warm ~ok:true ~latency_s:h costs
  done

let check_fixture =
  (* parsed/enumerated once: the micro-benchmark times only the validate
     path (oracle + four stage interpreters over the prime field) *)
  lazy
    (let b =
       Autotune.Tuner.benchmark_of_dsl ~label:"matmul-16"
         "dims: i=16 j=16 k=16\nC[i j] = Sum([k], A[i k] * B[k j])"
     in
     let c = List.hd (Autotune.Tuner.variant_choices b) in
     let points =
       List.map
         (fun s -> List.hd (Tcr.Space.enumerate s))
         c.Autotune.Tuner.spaces.op_spaces
     in
     (b, c, points))

let bench_check () =
  let b, c, points = Lazy.force check_fixture in
  let v =
    Check.Semantic.validate ~rounds:1 ~label:b.label b.statements
      ~variant_ids:c.Autotune.Tuner.ids ~ir:c.Autotune.Tuner.v_ir ~points
  in
  assert v.Check.Semantic.equivalent

let bechamel_tests =
  let open Bechamel in
  [
    Test.make ~name:"claims:variant-enumeration" (Staged.stage bench_claims);
    Test.make ~name:"space:search-space-size" (Staged.stage bench_space);
    Test.make ~name:"table2:tune-eqn1" (Staged.stage bench_table2);
    Test.make ~name:"table3:nekbone-openacc-vs-tuned" (Staged.stage bench_table3);
    Test.make ~name:"table4:nwchem-omp-vs-tuned" (Staged.stage bench_table4);
    Test.make ~name:"figure3:nwchem-vs-naive-acc" (Staged.stage bench_figure3);
    Test.make ~name:"surf-vs-brute:model-search" (Staged.stage bench_surf_brute);
    Test.make ~name:"netopt:treesa-line12" (Staged.stage bench_netopt);
    Test.make ~name:"telemetry:metrics-observe" (Staged.stage bench_telemetry);
    Test.make ~name:"drift:observe" (Staged.stage bench_drift);
    Test.make ~name:"ledger:observe" (Staged.stage bench_ledger);
    Test.make ~name:"check:semantic-validate" (Staged.stage bench_check);
  ]

let clock_label = "monotonic-clock"

(* Raw per-run seconds of each Bechamel measurement: total clock ns of the
   sample divided by its run count. These feed the statistical comparator,
   which works on sample sets, not point estimates. *)
let raw_samples (result : Bechamel.Benchmark.t) =
  Array.to_list result.lr
  |> List.filter_map (fun m ->
         let runs = Bechamel.Measurement_raw.run m in
         if runs <= 0.0 || not (Bechamel.Measurement_raw.exists ~label:clock_label m)
         then None
         else Some (Bechamel.Measurement_raw.get ~label:clock_label m /. runs /. 1e9))

let run_bechamel () =
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:25 ~quota:(Time.second 2.0) ~stabilize:false ~kde:None ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  Printf.printf "Bechamel micro-benchmarks (scaled-down table regenerations):\n";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let t0 = Unix.gettimeofday () in
          let result = Benchmark.run cfg [ instance ] elt in
          let wall = Unix.gettimeofday () -. t0 in
          let ols =
            Analyze.OLS.ols ~bootstrap:0 ~r_square:false ~responder:clock_label
              ~predictors:[| "run" |] result.lr
          in
          let estimate =
            match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan
          in
          push_record
            {
              Obs.Bench_log.name = "bechamel:" ^ Test.Elt.name elt;
              wall_s = wall;
              samples_s = raw_samples result;
              ols_s = (if Float.is_nan estimate then None else Some (estimate /. 1e9));
              quantiles = [];
              spans = [];
            };
          Printf.printf "  %-40s %10.3f ms/run (%d samples)\n%!" (Test.Elt.name elt)
            (estimate /. 1e6) result.stats.samples)
        (Test.elements test))
    bechamel_tests;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Dispatch, artifact output, regression gate. *)

let runners =
  [
    ("claims", run_claims);
    ("space", run_space);
    ("table2", run_table2);
    ("table3", run_table3);
    ("table4", run_table4);
    ("figure3", run_figure3);
    ("surf-vs-brute", run_surf_brute);
    ("ablation", run_ablation);
    ("modelcheck", run_modelcheck);
    ("motivation", run_motivation);
    ("sweep", run_sweep);
    ("service", run_service);
    ("netopt", run_netopt);
    ("telemetry", run_telemetry);
    ("drift", run_drift);
    ("ledger", run_ledger);
    ("check", run_check);
    ("bechamel", run_bechamel);
  ]

let finalize () =
  let current = Obs.Bench_log.make (List.rev !records) in
  (match opts.json_out with
  | None -> ()
  | Some path ->
    Obs.Bench_log.write path current;
    Printf.printf "wrote %s (%d experiment records)\n%!" path
      (List.length current.experiments));
  match opts.compare_to with
  | None -> ()
  | Some path -> (
    match Obs.Bench_log.read path with
    | Error msg ->
      Printf.eprintf "cannot read baseline %s: %s\n" path msg;
      exit 2
    | Ok baseline ->
      let deltas =
        Obs.Bench_log.compare_artifacts ~alpha:opts.alpha ~min_ratio:opts.threshold
          ~baseline ~current ()
      in
      print_string (Obs.Bench_log.render_deltas deltas);
      if Obs.Bench_log.gate deltas then print_endline "regression gate: PASS"
      else begin
        print_endline "regression gate: FAIL (significant slowdown vs baseline)";
        exit 1
      end)

let () =
  let to_run =
    match selected with
    | [] -> List.map snd runners
    | names ->
      List.map
        (fun name ->
          match List.assoc_opt name runners with
          | Some f -> f
          | None ->
            Printf.eprintf "unknown experiment %S\n" name;
            usage ())
        names
  in
  List.iter (fun f -> f ()) to_run;
  finalize ()
