(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (printing measured vs published values) and runs one Bechamel
   micro-benchmark per table/figure measuring the cost of regenerating a
   scaled-down version of it.

   Usage:
     bench/main.exe                 regenerate everything + bechamel suite
     bench/main.exe claims          Section III variant claims
     bench/main.exe space           Section V search-space sizes
     bench/main.exe table2|table3|table4|figure3|surf-vs-brute
     bench/main.exe bechamel        only the Bechamel suite

   With --trace-dir=DIR (anywhere on the command line), every experiment
   runs with pipeline tracing enabled and writes DIR/<name>.trace.json, a
   Chrome trace-event file loadable in chrome://tracing / Perfetto. *)

(* Parsed once at startup; the flag is stripped from the argv the
   experiment dispatch below sees. *)
let trace_dir, argv =
  let dir = ref None in
  let rest =
    Array.to_list Sys.argv
    |> List.filter (fun a ->
           let prefix = "--trace-dir=" in
           if String.length a > String.length prefix
              && String.sub a 0 (String.length prefix) = prefix
           then begin
             dir := Some (String.sub a (String.length prefix)
                            (String.length a - String.length prefix));
             false
           end
           else true)
  in
  (!dir, Array.of_list rest)

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r =
    match trace_dir with
    | None -> f ()
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let r, events = Obs.Trace.collect f in
      let path = Filename.concat dir (name ^ ".trace.json") in
      Obs.Export.write_chrome_trace path events;
      Printf.printf "[%s trace: %d spans -> %s]\n%!" name (List.length events) path;
      r
  in
  Printf.printf "[%s regenerated in %.1fs]\n\n%!" name (Unix.gettimeofday () -. t0);
  r

let print_table t =
  Util.Table.print t;
  print_newline ()

let run_claims () = timed "claims" (fun () -> print_table (Tables.claims ()))
let run_space () = timed "space" (fun () -> print_table (Tables.space_table ()))
let run_table2 () = timed "table2" (fun () -> print_table (Tables.table2 ()))
let run_table3 () = timed "table3" (fun () -> print_table (Tables.table3 ()))
let run_table4 () = timed "table4" (fun () -> print_table (Tables.table4 ()))
let run_figure3 () = timed "figure3" (fun () -> List.iter print_table (Tables.figure3 ()))
let run_surf_brute () = timed "surf-vs-brute" (fun () -> print_table (Tables.surf_vs_brute ()))
let run_ablation () = timed "ablation" (fun () -> print_table (Tables.ablation ()))
let run_modelcheck () = timed "modelcheck" (fun () -> print_table (Tables.modelcheck ()))
let run_motivation () = timed "motivation" (fun () -> print_table (Tables.motivation ()))
let run_sweep () = timed "sweep" (fun () -> print_table (Tables.sweep ()))
let run_service () = timed "service" (fun () -> Service_bench.run ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-suite: one Test.make per table/figure, each running a
   reduced-size regeneration of that experiment's pipeline so that several
   samples fit in the quota. *)

let small_cfg = { Surf.Search.default_config with max_evals = 20; batch_size = 5 }

let tune_small arch b =
  Autotune.Tuner.tune
    ~strategy:(Autotune.Tuner.Surf_search small_cfg)
    ~pool_per_variant:30 ~rng:(Util.Rng.create 1) ~arch b

let bench_claims () =
  (* Section III: enumerate the Eqn.(1) variants *)
  let b = Benchsuite.Suite.eqn1 ~n:4 () in
  let set = Octopi.Variants.of_contraction (List.hd b.statements) in
  assert (List.length set.variants = 15)

let bench_space () =
  let b = Benchsuite.Suite.lg3 ~p:6 ~elems:16 () in
  let choices = Autotune.Tuner.variant_choices b in
  assert (Autotune.Tuner.total_space choices > 0)

let bench_table2 () =
  ignore (tune_small Gpusim.Arch.gtx980 (Benchsuite.Suite.eqn1 ~n:6 ()))

let bench_table3 () =
  let b = Benchsuite.Suite.lg3 ~p:6 ~elems:16 () in
  let ir = (List.hd (Autotune.Tuner.variant_choices b)).v_ir in
  ignore (Cpusim.Openacc.time Gpusim.Arch.k20 ir ~reps:100 Cpusim.Openacc.Naive);
  ignore (tune_small Gpusim.Arch.k20 b)

let bench_table4 () =
  let b = Benchsuite.Nwchem.benchmark ~n:8 Benchsuite.Nwchem.D1 ~index:1 in
  ignore (Autotune.Tuner.best_openmp_time b);
  ignore (tune_small Gpusim.Arch.k20 b)

let bench_figure3 () =
  let b = Benchsuite.Nwchem.benchmark ~n:8 Benchsuite.Nwchem.S1 ~index:1 in
  let ir = (List.hd (Autotune.Tuner.variant_choices b)).v_ir in
  ignore (Cpusim.Openacc.time Gpusim.Arch.c2050 ir ~reps:100 Cpusim.Openacc.Naive);
  ignore (tune_small Gpusim.Arch.c2050 b)

let bench_surf_brute () =
  let pool = Array.init 200 (fun i -> i) in
  let eval i = abs_float (float_of_int i -. 127.0) in
  let encode i = [| float_of_int (i mod 16); float_of_int (i / 16) |] in
  let r = Surf.Search.surf ~config:small_cfg (Util.Rng.create 2) ~pool ~encode ~eval in
  assert (r.evaluations <= 20)

let bechamel_tests =
  let open Bechamel in
  [
    Test.make ~name:"claims:variant-enumeration" (Staged.stage bench_claims);
    Test.make ~name:"space:search-space-size" (Staged.stage bench_space);
    Test.make ~name:"table2:tune-eqn1" (Staged.stage bench_table2);
    Test.make ~name:"table3:nekbone-openacc-vs-tuned" (Staged.stage bench_table3);
    Test.make ~name:"table4:nwchem-omp-vs-tuned" (Staged.stage bench_table4);
    Test.make ~name:"figure3:nwchem-vs-naive-acc" (Staged.stage bench_figure3);
    Test.make ~name:"surf-vs-brute:model-search" (Staged.stage bench_surf_brute);
  ]

let run_bechamel () =
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:25 ~quota:(Time.second 2.0) ~stabilize:false ~kde:None ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  Printf.printf "Bechamel micro-benchmarks (scaled-down table regenerations):\n";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let result = Benchmark.run cfg [ instance ] elt in
          let ols =
            Analyze.OLS.ols ~bootstrap:0 ~r_square:false ~responder:"monotonic-clock"
              ~predictors:[| "run" |] result.lr
          in
          let estimate =
            match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan
          in
          Printf.printf "  %-40s %10.3f ms/run (%d samples)\n%!" (Test.Elt.name elt)
            (estimate /. 1e6) result.stats.samples)
        (Test.elements test))
    bechamel_tests;
  print_newline ()

let run_all () =
  run_claims ();
  run_space ();
  run_table2 ();
  run_table3 ();
  run_table4 ();
  run_figure3 ();
  run_surf_brute ();
  run_ablation ();
  run_modelcheck ();
  run_motivation ();
  run_sweep ();
  run_service ();
  run_bechamel ()

let () =
  match argv with
  | [| _ |] -> run_all ()
  | [| _; "claims" |] -> run_claims ()
  | [| _; "space" |] -> run_space ()
  | [| _; "table2" |] -> run_table2 ()
  | [| _; "table3" |] -> run_table3 ()
  | [| _; "table4" |] -> run_table4 ()
  | [| _; "figure3" |] -> run_figure3 ()
  | [| _; "surf-vs-brute" |] -> run_surf_brute ()
  | [| _; "ablation" |] -> run_ablation ()
  | [| _; "modelcheck" |] -> run_modelcheck ()
  | [| _; "motivation" |] -> run_motivation ()
  | [| _; "sweep" |] -> run_sweep ()
  | [| _; "service" |] -> run_service ()
  | [| _; "bechamel" |] -> run_bechamel ()
  | _ ->
    prerr_endline
      "usage: main.exe [claims|space|table2|table3|table4|figure3|surf-vs-brute|ablation|modelcheck|motivation|sweep|service|bechamel]";
    exit 2
