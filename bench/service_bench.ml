(* Throughput experiment for the tuning service: the same batch of NWChem
   CCSD(T) kernels served three ways.

   The batch deliberately contains equivalent requests under different
   index/tensor names - exactly what a long-lived service sees when many
   clients submit the same contraction with their own naming conventions:

     cold sequential   every request tuned from scratch, one after another
                       (the pre-service behavior of Barracuda.tune)
     service, cold     canonicalization deduplicates the batch, the unique
                       remainder is tuned across worker domains
     service, warm     an identical second batch: every request is a cache
                       hit (restore + one re-measurement, no search)

   Reported: wall time per path, speedups against the cold sequential
   baseline, and the service's hit/miss counters. *)

let arch = Gpusim.Arch.k20
let evals = 16
let n = 8
let domains = 4

(* Alpha-rename a program the way an unrelated client would write it. *)
let relabeled dsl =
  Octopi.Parse.program dsl
  |> Service.Canonical.relabel
       ~index:(fun i -> "q" ^ i)
       ~tensor:(fun t -> String.capitalize_ascii t ^ "x")
  |> Octopi.Ast.to_string

let requests () =
  let base =
    [
      ("s1_1", Benchsuite.Nwchem.dsl Benchsuite.Nwchem.S1 ~index:1 ~n);
      ("d1_1", Benchsuite.Nwchem.dsl Benchsuite.Nwchem.D1 ~index:1 ~n);
      ("d1_2", Benchsuite.Nwchem.dsl Benchsuite.Nwchem.D1 ~index:2 ~n);
      ("d2_1", Benchsuite.Nwchem.dsl Benchsuite.Nwchem.D2 ~index:1 ~n);
    ]
  in
  List.concat_map
    (fun (label, dsl) ->
      [
        { Service.Engine.label; src = dsl };
        { Service.Engine.label = label ^ "-alias"; src = relabeled dsl };
        { Service.Engine.label = label ^ "-alias2"; src = relabeled (relabeled dsl) };
      ])
    base

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* The pre-service baseline: every request is its own full tune. *)
let cold_sequential reqs =
  List.iter
    (fun (r : Service.Engine.request) ->
      let b = Autotune.Tuner.benchmark_of_dsl ~label:r.label r.src in
      let cfg = { Surf.Search.default_config with max_evals = evals } in
      ignore
        (Autotune.Tuner.tune
           ~strategy:(Autotune.Tuner.Surf_search cfg)
           ~rng:(Util.Rng.create 42) ~arch b))
    reqs

(* Per-timer latency quantiles of the service metrics, for the benchmark
   artifact: cache hits land in the microsecond buckets, cold tunes in the
   second buckets, so p50/p99 of request.wall summarize the mix. *)
let quantiles_of svc =
  List.map
    (fun ((name, s) : string * Service.Metrics.timer_summary) ->
      (name, { Obs.Bench_log.q50 = s.median_s; q90 = s.p90_s; q99 = s.p99_s }))
    (Service.Metrics.summaries (Service.Engine.metrics svc))

let table () =
  let reqs = requests () in
  let nreq = List.length reqs in
  let (), t_cold = wall (fun () -> cold_sequential reqs) in
  let config =
    { Service.Engine.default_config with arch; domains; max_evals = evals; seed = 42 }
  in
  let svc = Service.Engine.create ~config () in
  let first, t_service = wall (fun () -> Service.Engine.batch svc reqs) in
  let second, t_warm = wall (fun () -> Service.Engine.batch svc reqs) in
  let count served l =
    List.length (List.filter (fun (r : Service.Engine.response) -> r.served = served) l)
  in
  let s = Service.Engine.cache_stats svc in
  let row name requests tunes t =
    [ name; string_of_int requests; string_of_int tunes; Util.Table.cell_f ~digits:3 t;
      Util.Table.cell_f ~digits:1 (t_cold /. t) ^ "x" ]
  in
  let t =
    Util.Table.create
      ~title:
        (Printf.sprintf
           "Tuning service throughput (%d NWChem requests, %d unique, %d domains [%d effective], %s)"
           nreq
           (count Service.Engine.Tuned first + count Service.Engine.Memory_hit first
          + count Service.Engine.Disk_hit first)
           domains
           (Service.Engine.effective_domains svc)
           arch.Gpusim.Arch.name)
      [
        [ "path"; "requests"; "tunes"; "wall s"; "speedup" ];
        row "cold sequential (no service)" nreq nreq t_cold;
        row "service, cold batch" nreq (count Service.Engine.Tuned first) t_service;
        row "service, warm batch" nreq (count Service.Engine.Tuned second) t_warm;
      ]
  in
  let lines =
    [
      Printf.sprintf
        "first batch:  %d tuned, %d deduplicated; second batch: %d memory hits, %d deduplicated"
        (count Service.Engine.Tuned first)
        (count Service.Engine.Deduplicated first)
        (count Service.Engine.Memory_hit second)
        (count Service.Engine.Deduplicated second);
      Printf.sprintf "cache counters: hits %d, misses %d, stores %d, corrupt %d" s.hits
        s.misses s.stores s.corrupt;
      Printf.sprintf "criteria: service cold %.1fx (>= 2x), warm vs cold batch %.1fx (>= 10x)"
        (t_cold /. t_service) (t_service /. t_warm);
    ]
  in
  (t, lines, quantiles_of svc)

(* Print the experiment and return the service latency quantiles for the
   benchmark artifact. *)
let run () =
  let t, lines, quantiles = table () in
  Util.Table.print t;
  List.iter print_endline lines;
  print_newline ();
  quantiles
