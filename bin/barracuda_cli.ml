(* Command-line front end to the Barracuda pipeline.

   Subcommands:
     variants  enumerate the OCTOPI strength-reduction variants of a program
     tcr       print the TCR form of a chosen variant
     space     summarize the autotuning search space
     tune      run the full pipeline (SURF autotuning) and report
     cuda      tune and emit the optimized CUDA translation unit
     c         emit sequential C or OpenACC renderings
     check     statically verify a program across all variants and points
     batch     serve many requests via the tuning service (cache + domains)
     stats     inspect a persistent tuning-cache directory
     trace     tune with tracing on; write a Chrome/Perfetto trace-event JSON
     report    tune and print convergence + Prometheus-style metrics reports
     profile   tune with the kernel roofline profiler on and print the report
     net       optimize an N-tensor network's contraction order (greedy vs TreeSA)
     archs     list the simulated GPU architectures
     history   list the runs recorded in a tuning journal
     explain   full report for one journaled run (lineage, importances, rivals)
     replay    re-run a journaled tune and fail on drift
     loadgen   replay a journal's request mix under SLO monitoring
     slo       render the SLO verdict of a saved replay report
     dash      replay with a live text dashboard of the telemetry window

   tune and batch also accept --profile-out=FILE to write the same roofline
   report alongside their normal output, and --journal=FILE to append each
   tuning run to the flight-recorder journal that history/explain/replay
   read.

   The tensor program is read from a file, or from the -e EXPR option. *)

open Cmdliner

let read_program file expr einsum =
  match (file, expr, einsum) with
  | None, Some src, None -> src
  | None, None, Some spec -> Octopi.Einsum_notation.to_dsl spec
  | Some path, None, None ->
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  | None, None, None -> failwith "no input: give a file, -e EXPR or --einsum SPEC"
  | _ -> failwith "give exactly one of: a file, -e, --einsum"

let src_args =
  let file =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Tensor program file.")
  in
  let expr =
    Arg.(
      value
      & opt (some string) None
      & info [ "e"; "expr" ] ~docv:"EXPR" ~doc:"Tensor program given inline.")
  in
  let einsum =
    Arg.(
      value
      & opt (some string) None
      & info [ "einsum" ] ~docv:"SPEC"
          ~doc:"NumPy-style einsum spec, e.g. 'lk,mj,ni,lmn->ijk'.")
  in
  Term.(const read_program $ file $ expr $ einsum)

let arch_arg =
  let parse s =
    match Gpusim.Arch.by_name s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "unknown architecture %S" s))
  in
  let print fmt (a : Gpusim.Arch.t) = Format.pp_print_string fmt a.name in
  let arch_conv = Arg.conv ~docv:"ARCH" (parse, print) in
  Arg.(
    value
    & opt arch_conv Gpusim.Arch.gtx980
    & info [ "a"; "arch" ] ~docv:"ARCH"
        ~doc:"Target GPU: maxwell (GTX 980), kepler (Tesla K20) or fermi (Tesla C2050).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed for the search.")

let evals_arg =
  Arg.(
    value & opt int 100 & info [ "evals" ] ~docv:"N" ~doc:"SURF evaluation budget (default 100).")

let prune_arg =
  Arg.(
    value & flag
    & info [ "prune" ]
        ~doc:"Prune the search space with the default static policy before searching.")

let setup_logs =
  let setup () =
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Warning)
  in
  Term.(const setup $ const ())

let profile_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-out" ] ~docv:"FILE"
        ~doc:
          "Profile every kernel evaluation through the roofline model and write \
           the report (time buckets per bound, top kernels by DRAM traffic, \
           occupancy histogram, model-vs-measured divergence) to FILE.")

(* Run [f] with the kernel profiler on when [out] is set, writing the
   roofline report afterwards. Profiling draws no RNG state, so results
   are identical with or without it. *)
let with_profile out f =
  match out with
  | None -> f ()
  | Some path ->
    let r, samples = Obs.Profile.collect f in
    Util.Fs.write_file path (Obs.Profile.render samples);
    Printf.printf "wrote roofline profile (%d kernel evaluations) to %s\n"
      (List.length samples) path;
    r

let journal_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Append every tuning run to the flight-recorder journal FILE \
           (JSONL): canonical key, seed, per-iteration SURF state, and the \
           five-stage provenance lineage of every evaluated variant. Read it \
           back with the history, explain and replay subcommands.")

let journal_file_arg =
  Arg.(
    value
    & opt string "tuning-journal.jsonl"
    & info [ "journal" ] ~docv:"FILE"
        ~doc:"Tuning journal to read (default tuning-journal.jsonl).")

(* Run [f] with the tuning journal recording to [path] when set. Journaling
   draws no RNG state, so tuning results are identical with or without
   it. *)
let with_journal path f =
  match path with
  | None -> f ()
  | Some path ->
    Obs.Journal.start ~path ();
    let r = Fun.protect ~finally:Obs.Journal.stop f in
    List.iter
      (fun (e : Obs.Journal.entry) ->
        Printf.printf "journaled run %s (%s) to %s\n" (Obs.Journal.short e.run_id)
          e.label path)
      (Obs.Journal.entries ());
    r

let load_journal path =
  let entries, discarded = Obs.Journal.load path in
  if discarded > 0 then
    Printf.eprintf "warning: discarded %d torn or corrupt journal line%s\n"
      discarded
      (if discarded = 1 then "" else "s");
  entries

let find_run entries run =
  match Obs.Journal.find entries ~run with
  | Ok e -> e
  | Error msg -> failwith msg

let run_arg =
  Arg.(
    value & pos 0 string "latest"
    & info [] ~docv:"RUN"
        ~doc:"Run id (or unique prefix) from the journal; default latest.")

(* ---------------- variants ---------------- *)

let cmd_variants =
  let run () src =
    List.iteri
      (fun si (set : Octopi.Variants.t) ->
        Printf.printf "statement %d: output %s, %d variants (naive: %d flops)\n" (si + 1)
          set.contraction.output
          (List.length set.variants)
          (Octopi.Contraction.naive_flops set.contraction);
        List.iter
          (fun (v : Octopi.Variants.variant) ->
            Printf.printf "  [%2d] %8d flops  fusion %d  %s\n" v.id v.flops
              (Octopi.Fusion.score v.schedule)
              (Octopi.Plan.describe v.plan))
          set.variants)
      (Barracuda.variants src)
  in
  Cmd.v (Cmd.info "variants" ~doc:"Enumerate OCTOPI strength-reduction variants.")
    Term.(const run $ setup_logs $ src_args)

(* ---------------- tcr ---------------- *)

let cmd_tcr =
  let variant_arg =
    Arg.(value & opt int 0 & info [ "variant" ] ~docv:"N" ~doc:"Variant id per statement.")
  in
  let run () src vid =
    let b = Barracuda.parse src in
    let choices = Autotune.Tuner.variant_choices b in
    let choice =
      match List.nth_opt choices vid with
      | Some c -> c
      | None -> failwith (Printf.sprintf "variant %d out of range (0..%d)" vid (List.length choices - 1))
    in
    print_string (Tcr.Ir.to_string choice.v_ir)
  in
  Cmd.v (Cmd.info "tcr" ~doc:"Print the TCR intermediate form of a variant.")
    Term.(const run $ setup_logs $ src_args $ variant_arg)

(* ---------------- space ---------------- *)

let cmd_space =
  let run () src =
    let b = Barracuda.parse src in
    let choices = Autotune.Tuner.variant_choices b in
    Printf.printf "OCTOPI variants: %d\n" (List.length choices);
    Printf.printf "total tensor-code variants: %d\n" (Autotune.Tuner.total_space choices);
    List.iteri
      (fun i (c : Autotune.Tuner.variant_choice) ->
        let per_op =
          List.map (fun s -> string_of_int (Tcr.Space.count s)) c.spaces.op_spaces
        in
        Printf.printf "  variant %2d: %s kernels, space %s = %d\n" i
          (string_of_int (List.length c.spaces.op_spaces))
          (String.concat " x " per_op)
          (Tcr.Space.program_count c.spaces))
      choices
  in
  Cmd.v (Cmd.info "space" ~doc:"Summarize the autotuning search space.")
    Term.(const run $ setup_logs $ src_args)

(* ---------------- tune ---------------- *)

let tune_common src arch seed evals prune =
  let b = Barracuda.parse src in
  let cfg = { Surf.Search.default_config with max_evals = evals } in
  let prune = if prune then Some Tcr.Prune.default else None in
  Autotune.Tuner.tune
    ~strategy:(Autotune.Tuner.Surf_search cfg)
    ?prune ~journal_seed:seed ~rng:(Util.Rng.create seed) ~arch b

let cmd_tune =
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Save the tuning artifact to FILE.")
  in
  let run () src arch seed evals prune save profile_out journal_out =
    let result =
      with_journal journal_out (fun () ->
          with_profile profile_out (fun () -> tune_common src arch seed evals prune))
    in
    let s = Barracuda.summarize result in
    Format.printf "target: %s@\n%a@\n" result.arch.name Barracuda.pp_summary s;
    Format.printf "best variant: %s@\n"
      (String.concat "." (List.map string_of_int result.best.variant_ids));
    List.iteri
      (fun i p -> Format.printf "  kernel %d: %s@\n" (i + 1) (Tcr.Space.point_key p))
      result.best.points;
    (match result.importances with
    | [] -> ()
    | imps ->
      Format.printf "parameter importances:%s@\n"
        (String.concat ""
           (List.map (fun (n, w) -> Printf.sprintf " %s=%.2f" n w) imps)));
    match save with
    | None -> ()
    | Some path ->
      Autotune.Store.save_file path result;
      Printf.printf "saved tuning artifact to %s\n" path
  in
  Cmd.v (Cmd.info "tune" ~doc:"Autotune a tensor program with SURF and report.")
    Term.(
      const run $ setup_logs $ src_args $ arch_arg $ seed_arg $ evals_arg $ prune_arg
      $ save_arg $ profile_out_arg $ journal_out_arg)

(* ---------------- annotations ---------------- *)

let cmd_annotations =
  let variant_arg =
    Arg.(value & opt int 0 & info [ "variant" ] ~docv:"N" ~doc:"Variant id.")
  in
  let recipe_arg =
    Arg.(
      value & flag
      & info [ "recipe" ]
          ~doc:"Also tune and print the concrete transformation recipe.")
  in
  let run () src vid arch seed evals want_recipe =
    let b = Barracuda.parse src in
    let choices = Autotune.Tuner.variant_choices b in
    let choice =
      match List.nth_opt choices vid with
      | Some c -> c
      | None -> failwith (Printf.sprintf "variant %d out of range" vid)
    in
    print_string (Tcr.Orio.annotations choice.spaces);
    if want_recipe then begin
      let result = tune_common src arch seed evals false in
      print_endline "/* tuned recipe */";
      print_endline (Tcr.Orio.recipe result.best.points)
    end
  in
  Cmd.v
    (Cmd.info "annotations"
       ~doc:"Print the Orio/CUDA-CHiLL search-space annotations (Figure 2(c)).")
    Term.(
      const run $ setup_logs $ src_args $ variant_arg $ arch_arg $ seed_arg $ evals_arg
      $ recipe_arg)

(* ---------------- cuda ---------------- *)

let cmd_cuda =
  let out_arg =
    Arg.(
      value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Write CUDA to FILE.")
  in
  let from_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "from" ] ~docv:"FILE"
          ~doc:"Re-emit from a saved tuning artifact instead of searching.")
  in
  let run () src arch seed evals prune from out =
    let cuda =
      match from with
      | Some path ->
        let ic = open_in_bin path in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let saved = Autotune.Store.parse text in
        let b = Barracuda.parse ~label:saved.label src in
        let ir, points = Autotune.Store.restore b saved in
        Codegen.Cuda.emit_program ir points
      | None ->
        let result = tune_common src arch seed evals prune in
        Barracuda.cuda_of result
    in
    match out with
    | None -> print_string cuda
    | Some path ->
      let oc = open_out path in
      output_string oc cuda;
      close_out oc;
      Printf.printf "wrote %s\n" path
  in
  Cmd.v (Cmd.info "cuda" ~doc:"Tune and emit the optimized CUDA code.")
    Term.(
      const run $ setup_logs $ src_args $ arch_arg $ seed_arg $ evals_arg $ prune_arg
      $ from_arg $ out_arg)

(* ---------------- c ---------------- *)

let cmd_c =
  let mode_arg =
    let mode_conv =
      Arg.enum
        [ ("seq", `Seq); ("omp", `Omp); ("acc-naive", `Acc_naive);
          ("acc-optimized", `Acc_opt) ]
    in
    Arg.(
      value & opt mode_conv `Seq
      & info [ "mode" ] ~docv:"MODE" ~doc:"seq, omp, acc-naive or acc-optimized.")
  in
  let run () src arch seed evals mode =
    let result = tune_common src arch seed evals false in
    let mode =
      match mode with
      | `Seq -> Codegen.C_emit.Sequential
      | `Omp -> Codegen.C_emit.Openmp
      | `Acc_naive -> Codegen.C_emit.Acc_naive
      | `Acc_opt ->
        Codegen.C_emit.Acc_optimized
          (List.map (fun (p : Tcr.Space.point) -> p.decomp) result.best.points)
    in
    print_string (Barracuda.c_of ~mode result)
  in
  Cmd.v (Cmd.info "c" ~doc:"Emit sequential C or OpenACC renderings.")
    Term.(const run $ setup_logs $ src_args $ arch_arg $ seed_arg $ evals_arg $ mode_arg)

(* ---------------- driver ---------------- *)

let cmd_driver =
  let reps_arg =
    Arg.(value & opt int 100 & info [ "reps" ] ~docv:"N" ~doc:"Timed repetitions.")
  in
  let run () src arch seed evals reps =
    let result = tune_common src arch seed evals false in
    print_string (Codegen.Driver.emit ~reps result.best.ir result.best.points)
  in
  Cmd.v
    (Cmd.info "driver"
       ~doc:"Tune and emit a standalone CUDA driver (main + timing + check).")
    Term.(const run $ setup_logs $ src_args $ arch_arg $ seed_arg $ evals_arg $ reps_arg)

(* ---------------- inspect ---------------- *)

let cmd_inspect =
  let run () src arch seed evals =
    let result = tune_common src arch seed evals false in
    Printf.printf "%s on %s: %.2f GFlops (simulated)\n\n" result.benchmark.label
      arch.Gpusim.Arch.name result.gflops;
    let graph = Tcr.Depgraph.build result.best.ir in
    Printf.printf "dependence waves: %d (max width %d)\n\n"
      (List.length (Tcr.Depgraph.waves graph))
      (Tcr.Depgraph.max_wave_width graph);
    List.iter2
      (fun (kr : Gpusim.Perf.kernel_report) point ->
        Printf.printf "%s  [%s]\n" kr.kernel_name (Tcr.Space.point_key point);
        Printf.printf
          "  bound: %-6s  time %.3g s (dp %.2e, issue %.2e, mem %.2e, launch %.1e)\n"
          kr.bound kr.time_s kr.t_dp kr.t_issue kr.t_mem kr.t_launch;
        Printf.printf "  occupancy %.2f (%s-limited, %d regs/thread)  grid util %.2f\n"
          kr.occupancy.occupancy kr.occupancy.limited_by kr.occupancy.regs_per_thread
          kr.grid_utilization;
        Printf.printf "  traffic: %.3g MB DRAM + %.3g MB L2\n" (kr.dram_bytes /. 1e6)
          (kr.l2_bytes /. 1e6);
        List.iter
          (fun (rr : Gpusim.Perf.ref_report) ->
            Printf.printf "    %-8s %4.1f trans/warp, %7d loads/thread, %s\n"
              rr.analysis.name rr.analysis.transactions_per_warp rr.analysis.loads_per_thread
              (match rr.memory_class with
              | Gpusim.Perf.L1_resident -> "L1-resident"
              | Gpusim.Perf.L2_shared -> "L2-shared"
              | Gpusim.Perf.Dram_raw -> "DRAM"))
          kr.refs)
      result.best_report.kernels result.best.points
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:"Tune and print the per-kernel performance-model breakdown.")
    Term.(const run $ setup_logs $ src_args $ arch_arg $ seed_arg $ evals_arg)

(* ---------------- batch (tuning service) ---------------- *)

let cmd_batch =
  let files_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Tensor program files (one request each).")
  in
  let exprs_arg =
    Arg.(
      value & opt_all string []
      & info [ "e"; "expr" ] ~docv:"EXPR" ~doc:"Inline tensor program (repeatable).")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains for parallel evaluation (default 1).")
  in
  let cache_arg =
    Arg.(
      value & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Persistent tuning-cache directory (created if missing).")
  in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print service metrics after the batch.")
  in
  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Trace the batch and write Chrome trace-event JSON to FILE.")
  in
  let run () files exprs arch seed evals domains cache_dir want_stats trace_out
      profile_out journal_out =
    let requests =
      List.map
        (fun path ->
          let ic = open_in_bin path in
          let src = really_input_string ic (in_channel_length ic) in
          close_in ic;
          { Service.Engine.label = Filename.remove_extension (Filename.basename path); src })
        files
      @ List.mapi (fun i src -> { Service.Engine.label = Printf.sprintf "expr%d" (i + 1); src }) exprs
    in
    if requests = [] then failwith "no requests: give program files and/or -e EXPR";
    let config =
      { Service.Engine.default_config with arch; domains; max_evals = evals; seed; cache_dir }
    in
    let svc = Service.Engine.create ~config () in
    let responses =
      with_journal journal_out @@ fun () ->
      with_profile profile_out @@ fun () ->
      match trace_out with
      | None -> Service.Engine.batch svc requests
      | Some path ->
        let responses, events =
          Obs.Trace.collect (fun () -> Service.Engine.batch svc requests)
        in
        Obs.Export.write_chrome_trace ~dropped:(Obs.Trace.dropped ()) path
          events;
        Printf.printf "wrote %s (%d spans)\n" path (List.length events);
        responses
    in
    Printf.printf "%-16s %-14s %-12s %10s %10s\n" "request" "served" "key" "gflops" "wall";
    List.iter
      (fun (r : Service.Engine.response) ->
        Printf.printf "%-16s %-14s %-12s %10.2f %9.3fs\n" r.label
          (Service.Engine.served_name r.served)
          (String.sub r.key 0 12) r.result.gflops r.wall_s)
      responses;
    if want_stats then begin
      print_newline ();
      print_string (Service.Engine.stats_report svc)
    end
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Serve a batch of tuning requests: canonical-cache lookup, deduplication, \
          multi-domain tuning of the cold remainder.")
    Term.(
      const run $ setup_logs $ files_arg $ exprs_arg $ arch_arg $ seed_arg $ evals_arg
      $ domains_arg $ cache_arg $ stats_flag $ trace_arg $ profile_out_arg
      $ journal_out_arg)

(* ---------------- trace ---------------- *)

let service_config arch seed evals domains cache_dir =
  { Service.Engine.default_config with arch; domains; max_evals = evals; seed; cache_dir }

let cmd_trace =
  let out_arg =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the Chrome trace-event JSON to FILE (default trace.json).")
  in
  let report_arg =
    Arg.(
      value & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Also write the convergence + metrics report to FILE.")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N" ~doc:"Worker domains for parallel evaluation.")
  in
  let run () src arch seed evals domains out report_out =
    let svc = Service.Engine.create ~config:(service_config arch seed evals domains None) () in
    let response, events =
      Obs.Trace.collect (fun () -> Service.Engine.tune_dsl svc src)
    in
    Obs.Export.write_chrome_trace ~dropped:(Obs.Trace.dropped ()) out events;
    let cats =
      List.sort_uniq compare (List.map (fun (e : Obs.Trace.event) -> e.cat) events)
    in
    Printf.printf "%s: %.2f GFlops (%s), %d evaluations\n" response.label
      response.result.gflops
      (Service.Engine.served_name response.served)
      response.result.evaluations;
    Printf.printf "wrote %s: %d spans across %d domains (categories: %s)\n" out
      (List.length events)
      (List.length
         (List.sort_uniq compare (List.map (fun (e : Obs.Trace.event) -> e.domain) events)))
      (String.concat ", " cats);
    print_string (Service.Engine.convergence_report response);
    match report_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Service.Engine.convergence_report response);
      output_string oc "\n";
      output_string oc (Service.Engine.stats_report svc);
      output_string oc "\n";
      output_string oc (Service.Engine.prometheus_report svc);
      close_out oc;
      Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Tune a program with pipeline tracing enabled and write a Chrome \
          trace-event JSON (open in chrome://tracing or ui.perfetto.dev).")
    Term.(
      const run $ setup_logs $ src_args $ arch_arg $ seed_arg $ evals_arg $ domains_arg
      $ out_arg $ report_arg)

(* ---------------- report ---------------- *)

let cmd_report =
  let prom_arg =
    Arg.(
      value & opt (some string) None
      & info [ "prom-out" ] ~docv:"FILE"
          ~doc:"Also write the Prometheus text exposition to FILE.")
  in
  let run () src arch seed evals prom_out =
    let svc = Service.Engine.create ~config:(service_config arch seed evals 1 None) () in
    let response = Service.Engine.tune_dsl svc src in
    Printf.printf "%s on %s: %.2f GFlops after %d evaluations (pool %d of %d)\n\n"
      response.label arch.Gpusim.Arch.name response.result.gflops
      response.result.evaluations response.result.pool_size
      response.result.total_space;
    print_string (Service.Engine.convergence_report response);
    print_newline ();
    print_string (Service.Engine.stats_report svc);
    let prom = Service.Engine.prometheus_report svc in
    match prom_out with
    | None ->
      print_newline ();
      print_string prom
    | Some path ->
      let oc = open_out path in
      output_string oc prom;
      close_out oc;
      Printf.printf "\nwrote %s\n" path
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Tune a program and print the SURF convergence report (best-so-far, pool \
          coverage, surrogate R^2 per iteration) plus service metrics in \
          human-readable and Prometheus text form.")
    Term.(const run $ setup_logs $ src_args $ arch_arg $ seed_arg $ evals_arg $ prom_arg)

(* ---------------- stats (cache inventory) ---------------- *)

let cmd_stats =
  let dir_arg =
    Arg.(
      required & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Tuning-cache directory to inspect.")
  in
  let run () dir =
    let inv = Service.Tuning_cache.inventory ~dir in
    Printf.printf "cache %s: %d entries, %d corrupt\n" dir
      (List.length inv.entries) (List.length inv.corrupt_files);
    Printf.printf "%-14s %-14s %-12s %10s\n" "key" "label" "arch" "gflops";
    List.iter
      (fun (e : Service.Tuning_cache.entry) ->
        Printf.printf "%-14s %-14s %-12s %10.2f\n" (String.sub e.key 0 12)
          e.saved.label e.saved.arch_name e.saved.gflops)
      inv.entries;
    List.iter
      (fun (file, reason) -> Printf.printf "corrupt: %s (%s)\n" file reason)
      inv.corrupt_files
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Inspect a persistent tuning-cache directory.")
    Term.(const run $ setup_logs $ dir_arg)

(* ---------------- profile ---------------- *)

let cmd_profile =
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Kernels to list in the DRAM-traffic table.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Also write the report to FILE (stdout is always printed).")
  in
  let run () src arch seed evals prune top out =
    let result, samples =
      Obs.Profile.collect (fun () -> tune_common src arch seed evals prune)
    in
    let report = Obs.Profile.render ~top samples in
    Printf.printf "%s on %s: %.2f GFlops after %d evaluations\n\n"
      result.benchmark.label arch.Gpusim.Arch.name result.gflops result.evaluations;
    print_string report;
    match out with
    | None -> ()
    | Some path ->
      Util.Fs.write_file path report;
      Printf.printf "\nwrote %s\n" path
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Tune a program with the kernel roofline profiler on and print the \
          report: per-variant time split by roofline bound (dp/issue/memory/launch), \
          top kernels by DRAM traffic, occupancy histogram, and model-predicted vs \
          measured divergence per architecture.")
    Term.(
      const run $ setup_logs $ src_args $ arch_arg $ seed_arg $ evals_arg $ prune_arg
      $ top_arg $ out_arg)

(* ---------------- check ---------------- *)

let cmd_check =
  let file_arg =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Tensor program file.")
  in
  let expr_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "e"; "expr" ] ~docv:"EXPR" ~doc:"Tensor program given inline.")
  in
  let einsum_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "einsum" ] ~docv:"SPEC"
          ~doc:"NumPy-style einsum spec, e.g. 'lk,mj,ni,lmn->ijk'.")
  in
  let tcr_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcr" ] ~docv:"FILE"
          ~doc:
            "Verify a textual TCR program (well-formedness layer only) instead \
             of a DSL source. The file is parsed without the parser's own \
             validation, so deliberately broken programs are diagnosed rather \
             than rejected at parse time.")
  in
  let net_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "net" ] ~docv:"FILE"
          ~doc:
            "Verify a tensor-network spec (network-stage BAR05x diagnostics: \
             dangling or mismatched indices, unknown output indices) plus the \
             sc_target and step-rank findings of its greedy contraction tree.")
  in
  let sc_target_arg =
    Arg.(
      value & opt float Netopt.Tree.default_score.sc_target
      & info [ "sc-target" ] ~docv:"L"
          ~doc:"log2 intermediate-size cap for --net tree findings.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the report as machine-readable JSON.")
  in
  let max_points_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-points" ] ~docv:"N"
          ~doc:
            "Verify at most N search points per statement space (default: the \
             whole space).")
  in
  let no_lints_flag =
    Arg.(
      value & flag
      & info [ "no-lints" ]
          ~doc:"Errors only: skip the warning-level kernel lints.")
  in
  let semantic_flag =
    Arg.(
      value & flag
      & info [ "semantic" ]
          ~doc:
            "Also run translation validation: evaluate the five lineage \
             stages (dsl, variant, tcr, recipe, kernel) of the first variant \
             on random points of the prime field and prove them equivalent \
             (BAR06x on disagreement).")
  in
  let diff_flag =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Print each lineage stage's output digest from the first \
             validation round (implies --semantic).")
  in
  let rounds_arg =
    Arg.(
      value & opt int Check.Semantic.default_rounds
      & info [ "rounds" ] ~docv:"K"
          ~doc:"Schwartz-Zippel rounds for --semantic.")
  in
  let sz_seed_arg =
    Arg.(
      value & opt int Check.Semantic.default_seed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"RNG seed for --semantic's random field points.")
  in
  let mutate_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutate" ] ~docv:"NAME"
          ~doc:
            "Self-test: inject a known-bad kernel mutation before validation \
             (swap-index, corrupt-stride, drop-accumulation, \
             barrier-divergence) and verify it is caught (implies \
             --semantic).")
  in
  let run () file expr einsum tcr net_file sc_target arch json max_points no_lints
      semantic diff rounds sz_seed mutate =
    let lints = not no_lints in
    let semantic = semantic || diff || mutate <> None in
    let mutate_kernel =
      match mutate with
      | None -> None
      | Some name -> (
        match Check.Mutate.of_name name with
        | Some m -> Some (fun k -> fst (Check.Mutate.apply m k))
        | None ->
          failwith
            (Printf.sprintf "unknown mutation %S (have: %s)" name
               (String.concat ", " (List.map Check.Mutate.name Check.Mutate.all))))
    in
    let report, bench =
      match (tcr, net_file) with
      | Some _, Some _ -> failwith "give at most one of --tcr, --net"
      | Some path, None ->
        if semantic then
          failwith "--semantic validates DSL or --net programs, not --tcr";
        let text = Util.Fs.read_file path in
        let ir = Tcr.Read.program ~validate:false text in
        ({ Check.Verify.empty_report with diags = Check.Verify.ir ir }, None)
      | None, Some path ->
        (* network-stage diagnostics; tree findings only when the network
           itself is sound enough to optimize *)
        let net = Netopt.Network.of_file path in
        let diags = Netopt.Network.validate net in
        let tree =
          if Check.Diag.has_errors diags then None
          else Some (Netopt.Greedy.optimize net)
        in
        let diags =
          match tree with
          | None -> diags
          | Some t -> diags @ Netopt.Tree.check ~sc_target net t
        in
        (* the semantic stage validates the network via its DSL lowering -
           the same source a network tune feeds the pipeline *)
        let bench =
          match tree with
          | Some t when semantic -> Some (Barracuda.parse (Netopt.Lower.to_dsl net t))
          | _ -> None
        in
        ({ Check.Verify.empty_report with diags }, bench)
      | None, None ->
        let src = read_program file expr einsum in
        let b = Barracuda.parse src in
        let labeled =
          List.map
            (fun (c : Autotune.Tuner.variant_choice) ->
              ( Printf.sprintf "v%s" (String.concat "." (List.map string_of_int c.ids)),
                c.spaces ))
            (Autotune.Tuner.variant_choices b)
        in
        ( Check.Verify.program ~lints ?max_points_per_op:max_points ~arch labeled,
          Some b )
    in
    (* translation validation of the first variant choice at its first
       enumerated point - a fixed, reproducible candidate *)
    let verdict =
      match bench with
      | Some (b : Autotune.Tuner.benchmark) when semantic ->
        let c = List.hd (Autotune.Tuner.variant_choices b) in
        let points =
          List.map
            (fun s -> List.hd (Tcr.Space.enumerate s))
            c.Autotune.Tuner.spaces.op_spaces
        in
        Some
          (Check.Semantic.validate ~rounds ~seed:sz_seed ?mutate_kernel
             ~label:b.label b.statements ~variant_ids:c.Autotune.Tuner.ids
             ~ir:c.Autotune.Tuner.v_ir ~points)
      | _ -> None
    in
    let report =
      match verdict with
      | None -> report
      | Some v -> { report with diags = report.diags @ v.Check.Semantic.diags }
    in
    if json then begin
      let j = Check.Verify.report_json report in
      let j =
        match (verdict, j) with
        | Some v, Obs.Json.Obj fields ->
          Obs.Json.Obj
            (fields
            @ [
                ( "semantic",
                  Obs.Json.Obj
                    ([
                       ("equivalent", Obs.Json.Bool v.Check.Semantic.equivalent);
                       ("rounds_run", Obs.Json.int v.rounds_run);
                     ]
                    @ (match v.failed_stage with
                      | None -> []
                      | Some s -> [ ("failed_stage", Obs.Json.Str s) ])
                    @ [
                        ( "stages",
                          Obs.Json.Obj
                            (List.map (fun (n, d) -> (n, Obs.Json.Str d)) v.stages)
                        );
                      ]) );
              ])
        | _ -> j
      in
      print_endline (Obs.Json.to_string j)
    end
    else begin
      if report.variants > 0 then
        Printf.printf "verified %d variant%s: %d search points, %d kernels%s\n"
          report.variants
          (if report.variants = 1 then "" else "s")
          report.points_checked report.kernels_checked
          (if report.truncated then " (per-op point cap reached)" else "");
      print_endline (Check.Verify.summary_line report);
      (match verdict with
      | None -> ()
      | Some v ->
        Printf.printf "translation validation: %s (%d round%s, seed %d)\n"
          (if v.Check.Semantic.equivalent then "equivalent across all five stages"
           else
             Printf.sprintf "FAILED at the %s stage"
               (Option.value ~default:"?" v.failed_stage))
          v.rounds_run
          (if v.rounds_run = 1 then "" else "s")
          sz_seed;
        if diff then begin
          Printf.printf "stage digests (round 1):\n";
          List.iter (fun (name, d) -> Printf.printf "  %-8s %s\n" name d) v.stages
        end);
      if report.diags <> [] then begin
        print_newline ();
        print_string (Check.Diag.render_report report.diags)
      end
    end;
    if Check.Diag.has_errors report.diags then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically verify a tensor program end to end: TCR well-formedness, \
          recipe legality of every search point, kernel resource analysis \
          (bounds proof, registers, launch limits) and symbolic access facts \
          (exact coalescing, bank conflicts, barriers) for every variant, \
          plus (--semantic) translation validation over the prime field. \
          Exits nonzero when any error-severity diagnostic is found.")
    Term.(
      const run $ setup_logs $ file_arg $ expr_arg $ einsum_arg $ tcr_arg $ net_arg
      $ sc_target_arg $ arch_arg $ json_flag $ max_points_arg $ no_lints_flag
      $ semantic_flag $ diff_flag $ rounds_arg $ sz_seed_arg $ mutate_arg)

(* ---------------- net (tensor-network contraction orders) ----------- *)

let cmd_net =
  let file_arg =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Network spec file (tensor/extent/output directives).")
  in
  let einsum_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "einsum" ] ~docv:"SPEC"
          ~doc:"N-tensor einsum spec, e.g. 'ab,bc,cd,de->ae'.")
  in
  let gen_arg =
    let shape = Arg.enum [ ("line", `Line); ("ring", `Ring); ("power", `Power) ] in
    Arg.(
      value
      & opt (some shape) None
      & info [ "gen" ] ~docv:"SHAPE"
          ~doc:
            "Generate a random network instead of reading one: line (open \
             chain), ring (closed chain) or power (preferential-attachment \
             graph).")
  in
  let n_arg =
    Arg.(
      value & opt int 20
      & info [ "n" ] ~docv:"N" ~doc:"Generated network size (default 20).")
  in
  let gen_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "gen-seed" ] ~docv:"N"
          ~doc:"Seed for --gen network generation (default 1).")
  in
  let sa_iters_arg =
    Arg.(
      value & opt int Netopt.Treesa.default_config.sa_iters
      & info [ "sa-iters" ] ~docv:"N" ~doc:"TreeSA annealing proposals.")
  in
  let weight name doc default =
    Arg.(value & opt float default & info [ name ] ~docv:"W" ~doc)
  in
  let tc_arg = weight "tc-weight" "Score weight on log2 time complexity." 1.0 in
  let sc_arg = weight "sc-weight" "Score weight on the sc_target overflow." 1.0 in
  let rw_arg = weight "rw-weight" "Score weight on log2 read/write volume." 1.0 in
  let sc_target_arg =
    Arg.(
      value & opt float Netopt.Tree.default_score.sc_target
      & info [ "sc-target" ] ~docv:"L"
          ~doc:
            "log2 elements an intermediate may occupy (the GPU-memory cap); \
             exceeding it is hard-penalized.")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let emit_dsl_flag =
    Arg.(
      value & flag
      & info [ "emit-dsl" ]
          ~doc:"Print the TreeSA tree lowered to Figure 2(a) DSL text.")
  in
  let tune_flag =
    Arg.(
      value & flag
      & info [ "tune" ]
          ~doc:
            "Lower the TreeSA tree and autotune the resulting program through \
             the full variants/TCR/SURF/codegen pipeline.")
  in
  let tree_json name (c : Netopt.Tree.cost) score order =
    ( name,
      Obs.Json.Obj
        [
          ("order", Obs.Json.Str order);
          ("tc", Obs.Json.Num c.tc);
          ("sc", Obs.Json.Num c.sc);
          ("rw", Obs.Json.Num c.rw);
          ("score", Obs.Json.Num score);
        ] )
  in
  let run () file einsum gen n gen_seed seed sa_iters tc_w sc_w rw_w sc_target
      json emit_dsl do_tune arch evals journal_out =
    let net =
      match (file, einsum, gen) with
      | Some path, None, None -> Netopt.Network.of_file path
      | None, Some spec, None -> Netopt.Network.of_einsum spec
      | None, None, Some shape -> (
        let rng = Util.Rng.create gen_seed in
        match shape with
        | `Line -> Netopt.Gen.line ~n rng
        | `Ring -> Netopt.Gen.ring ~n rng
        | `Power -> Netopt.Gen.power_law ~n rng)
      | None, None, None ->
        failwith "no input: give a network spec file, --einsum or --gen"
      | _ -> failwith "give exactly one of: a file, --einsum, --gen"
    in
    let diags = Netopt.Network.validate net in
    if diags <> [] then prerr_string (Check.Diag.render_report diags);
    if Check.Diag.has_errors diags then exit 1;
    let score =
      { Netopt.Tree.tc_weight = tc_w; sc_weight = sc_w; rw_weight = rw_w; sc_target }
    in
    let greedy = Netopt.Greedy.optimize net in
    let config = { Netopt.Treesa.default_config with sa_iters } in
    let treesa =
      Netopt.Treesa.optimize ~config ~score ~rng:(Util.Rng.create seed) net
    in
    let cg = Netopt.Tree.cost net greedy and ct = Netopt.Tree.cost net treesa in
    let sg = Netopt.Tree.score score cg and st = Netopt.Tree.score score ct in
    let og = Netopt.Tree.to_string net greedy
    and ot = Netopt.Tree.to_string net treesa in
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ("tensors", Obs.Json.int (List.length net.tensors));
                ("indices", Obs.Json.int (List.length (Netopt.Network.all_indices net)));
                ("output", Obs.Json.Arr (List.map (fun i -> Obs.Json.Str i) net.output));
                ("sc_target", Obs.Json.Num sc_target);
                tree_json "greedy" cg sg og;
                tree_json "treesa" ct st ot;
              ]))
    else begin
      Printf.printf "network: %d tensors, %d indices, output [%s]\n"
        (List.length net.tensors)
        (List.length (Netopt.Network.all_indices net))
        (String.concat " " net.output);
      Printf.printf "%-8s %8s %8s %8s %10s\n" "method" "tc" "sc" "rw" "score";
      Printf.printf "%-8s %8.2f %8.2f %8.2f %10.2f\n" "greedy" cg.tc cg.sc cg.rw sg;
      Printf.printf "%-8s %8.2f %8.2f %8.2f %10.2f\n" "treesa" ct.tc ct.sc ct.rw st;
      Printf.printf "treesa order: %s\n" ot
    end;
    if emit_dsl then print_string (Netopt.Lower.to_dsl net treesa);
    if do_tune then begin
      let dsl = Netopt.Lower.to_dsl net treesa in
      let b = Autotune.Tuner.benchmark_of_dsl ~label:"network" dsl in
      let cfg = { Surf.Search.default_config with max_evals = evals } in
      let result =
        with_journal journal_out (fun () ->
            Autotune.Tuner.tune
              ~strategy:(Autotune.Tuner.Surf_search cfg)
              ~journal_seed:seed
              ~journal_net:(Netopt.Lower.provenance ~meth:"treesa" ~score net treesa)
              ~rng:(Util.Rng.create seed) ~arch b)
      in
      Printf.printf
        "tuned %d-statement program on %s: %.2f GFlops after %d evaluations\n"
        (List.length b.statements) arch.Gpusim.Arch.name result.gflops
        result.evaluations
    end
  in
  Cmd.v
    (Cmd.info "net"
       ~doc:
         "Optimize the contraction order of an N-tensor network: score the \
          greedy baseline against the TreeSA simulated-annealing tree (log2 \
          time/space/read-write under an sc_target memory cap), and \
          optionally lower the winner into the autotuning pipeline.")
    Term.(
      const run $ setup_logs $ file_arg $ einsum_arg $ gen_arg $ n_arg
      $ gen_seed_arg $ seed_arg $ sa_iters_arg $ tc_arg $ sc_arg $ rw_arg
      $ sc_target_arg $ json_flag $ emit_dsl_flag $ tune_flag $ arch_arg
      $ evals_arg $ journal_out_arg)

(* ---------------- archs ---------------- *)

let cmd_archs =
  let run () =
    List.iter
      (fun (a : Gpusim.Arch.t) ->
        Printf.printf "%-12s (%s): %d SMs @ %.3f GHz, DP peak %.0f GFlops, %.0f GB/s\n"
          a.name a.codename a.sm_count a.clock_ghz (Gpusim.Arch.dp_peak_gflops a)
          a.mem_bw_gbs)
      Gpusim.Arch.all
  in
  Cmd.v (Cmd.info "archs" ~doc:"List the simulated GPU architectures.")
    Term.(const run $ setup_logs)

(* ---------------- history / explain / replay (tuning journal) ------- *)

let cmd_history =
  let tail_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tail" ] ~docv:"N" ~doc:"Show only the N most recent runs.")
  in
  let since_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "since" ] ~docv:"RUN"
          ~doc:"Show only the runs recorded after RUN (id or unique prefix).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the history as a JSON array (one summary object per run: \
             ids, key, arch, seed, winner time and kernel hash) instead of \
             the table.")
  in
  let run () journal tail since json =
    let entries = load_journal journal in
    let entries =
      match since with
      | None -> entries
      | Some run ->
        let anchor = find_run entries run in
        let rec after = function
          | [] -> []
          | (e : Obs.Journal.entry) :: rest ->
            if e.run_id = anchor.Obs.Journal.run_id then rest else after rest
        in
        after entries
    in
    let entries =
      match tail with
      | None -> entries
      | Some n when n <= 0 -> []
      | Some n ->
        let len = List.length entries in
        List.filteri (fun i _ -> i >= len - n) entries
    in
    if json then
      print_endline
        (Obs.Json.to_string ~indent:true (Obs.Journal.history_json entries))
    else print_string (Obs.Journal.render_history entries)
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:
         "List the runs recorded in a tuning journal: all of them, the most \
          recent N (--tail), or the ones after a given run (--since); \
          --json emits machine-readable summaries instead.")
    Term.(
      const run $ setup_logs $ journal_file_arg $ tail_arg $ since_arg
      $ json_arg)

let cmd_explain =
  let run () journal run_id =
    print_string (Obs.Journal.render_explain (find_run (load_journal journal) run_id))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Full report for one journaled run: the winner's five-stage \
          provenance lineage, named parameter importances of the surrogate, \
          its predicted-vs-measured fit, and the rejected rivals.")
    Term.(const run $ setup_logs $ journal_file_arg $ run_arg)

let cmd_replay =
  let tolerance_arg =
    Arg.(
      value & opt float 0.05
      & info [ "tolerance" ] ~docv:"R"
          ~doc:"Allowed |measured-time ratio - 1| before declaring drift.")
  in
  let run () journal run_id prune tolerance =
    let entry = find_run (load_journal journal) run_id in
    let arch =
      match
        List.find_opt
          (fun a -> Gpusim.Arch.fingerprint a = entry.Obs.Journal.arch)
          Gpusim.Arch.all
      with
      | Some a -> a
      | None -> (
        (* no exact fingerprint: resolve by name so the replay reports the
           device-identity drift instead of failing to find the arch *)
        let name =
          match String.index_opt entry.Obs.Journal.arch '|' with
          | Some i -> String.sub entry.Obs.Journal.arch 0 i
          | None -> entry.Obs.Journal.arch
        in
        match Gpusim.Arch.by_name name with
        | Some a -> a
        | None -> failwith (Printf.sprintf "unknown architecture %S" name))
    in
    let prune = if prune then Some Tcr.Prune.default else None in
    match Autotune.Replay.replay ?prune ~time_tolerance:tolerance ~arch entry with
    | Error msg -> failwith msg
    | Ok verdict ->
      print_string (Autotune.Replay.render verdict);
      if not (Autotune.Replay.ok verdict) then exit 1
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-run a journaled tune from its recorded inputs (DSL, seed, \
          budget) and exit nonzero if the winning kernel hash or the \
          measured-time ratio drifts.")
    Term.(const run $ setup_logs $ journal_file_arg $ run_arg $ prune_arg $ tolerance_arg)

(* ---------------- loadgen / slo / dash (telemetry) ---------------- *)

(* Shared replay configuration: loadgen and dash drive the same
   deterministic harness with the same knobs. *)
let loadgen_config_term =
  let requests =
    Arg.(
      value & opt int 10_000
      & info [ "requests" ] ~docv:"N" ~doc:"Requests to replay (default 10000).")
  in
  let batch =
    Arg.(
      value & opt int 16
      & info [ "batch" ] ~docv:"N" ~doc:"Requests per engine batch (default 16).")
  in
  let error_rate =
    Arg.(
      value & opt float 0.001
      & info [ "error-rate" ] ~docv:"R"
          ~doc:"Injected failure probability per request (default 0.001).")
  in
  let degrade =
    Arg.(
      value & opt float 1.0
      & info [ "degrade" ] ~docv:"X"
          ~doc:"Latency-model multiplier; >1 simulates a regression (default 1).")
  in
  let degrade_at =
    Arg.(
      value & opt int 0
      & info [ "degrade-at" ] ~docv:"TICK"
          ~doc:
            "First tick the --degrade multiplier applies to; 0 degrades the \
             whole run, a mid-run tick injects a regression the change-point \
             monitors must catch (default 0).")
  in
  let monitor =
    Arg.(
      value & flag
      & info [ "monitor" ]
          ~doc:
            "Attach online change-point monitors to the latency stream (p99 \
             quantile-shift and mean CUSUM, self-calibrated from the early \
             windows); alarms are reported and make loadgen exit nonzero.")
  in
  let p99_budget =
    Arg.(
      value & opt float Obs.Slo.default_spec.latency_budget_s
      & info [ "p99-budget" ] ~docv:"SECONDS"
          ~doc:"p99 latency budget of the SLO, in seconds (default 0.005).")
  in
  let error_objective =
    Arg.(
      value & opt float Obs.Slo.default_spec.error_objective
      & info [ "error-objective" ] ~docv:"R"
          ~doc:"Tolerated error ratio of the SLO (default 0.01).")
  in
  let window_width =
    Arg.(
      value & opt int 250
      & info [ "window-width" ] ~docv:"TICKS"
          ~doc:"Logical ticks per telemetry-window epoch (default 250).")
  in
  let window_buckets =
    Arg.(
      value & opt int 8
      & info [ "window-buckets" ] ~docv:"N"
          ~doc:"Epochs in the telemetry-window ring (default 8).")
  in
  let reps_arg =
    Arg.(
      value & opt int 3
      & info [ "reps" ] ~docv:"N"
          ~doc:"Measurement repetitions per cold-tune evaluation (default 3).")
  in
  let mk arch seed evals reps requests batch error_rate degrade degrade_at
      monitor p99 err_obj width buckets =
    let base = Service.Loadgen.default_config in
    {
      base with
      requests;
      seed;
      batch;
      error_rate;
      degrade;
      degrade_at;
      monitor;
      window_width = width;
      window_buckets = buckets;
      slo =
        {
          Obs.Slo.default_spec with
          latency_budget_s = p99;
          error_objective = err_obj;
        };
      engine = { base.engine with arch; seed; max_evals = evals; reps };
    }
  in
  Term.(
    const mk $ arch_arg $ seed_arg $ evals_arg $ reps_arg $ requests $ batch
    $ error_rate $ degrade $ degrade_at $ monitor $ p99_budget
    $ error_objective $ window_width $ window_buckets)

let load_mix journal =
  let mix = Service.Loadgen.mix_of_journal (load_journal journal) in
  if mix = [] then
    failwith
      (Printf.sprintf
         "journal %s holds no runs; record one first, e.g. 'barracuda tune \
          --journal=%s -e EXPR'"
         journal journal);
  mix

let cmd_loadgen =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the machine-readable replay report (JSON, deterministic \
             for a fixed seed) to FILE.")
  in
  let ledger_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger-out" ] ~docv:"FILE"
          ~doc:
            "Write the causal cost ledger replay file (per-phase report, \
             exemplars with journal run ids, and the per-request records \
             the 'whatif' subcommand replays) to FILE. Deterministic for a \
             fixed seed.")
  in
  let run () journal cfg out ledger_out =
    let entries = load_journal journal in
    let mix = load_mix journal in
    let record = ledger_out <> None in
    let r =
      Service.Loadgen.run ~record
        ~run_ids:(Service.Loadgen.run_ids_of_journal entries)
        cfg mix
    in
    print_string (Service.Loadgen.render r);
    (match out with
    | Some path ->
      Util.Fs.write_file path
        (Obs.Json.to_string ~indent:true (Service.Loadgen.report_json r));
      Printf.printf "wrote replay report to %s\n" path
    | None -> ());
    (match ledger_out with
    | Some path ->
      Util.Fs.write_file path
        (Obs.Json.to_string (Obs.Whatif.file_json (Service.Loadgen.ledger_file r)));
      Printf.printf "wrote ledger replay file to %s\n" path
    | None -> ());
    if not (Obs.Slo.ok r.verdict) || r.alarms <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Replay the request mix recorded in a tuning journal against a real \
          engine, stream the modeled latencies through sliding telemetry \
          windows, and exit nonzero if the final SLO verdict pages or (with \
          --monitor) a change-point monitor alarms.")
    Term.(
      const run $ setup_logs $ journal_file_arg $ loadgen_config_term $ out_arg
      $ ledger_out_arg)

let cmd_slo =
  let report_arg =
    Arg.(
      value & pos 0 string "slo-report.json"
      & info [] ~docv:"FILE"
          ~doc:
            "Replay report written by 'loadgen --out' (the verdict is read \
             from its 'slo' member) or a bare SLO report.")
  in
  let run () path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let json = Obs.Json.parse_exn s in
    let json =
      match Obs.Json.member "slo" json with Some j -> j | None -> json
    in
    match Obs.Slo.of_json json with
    | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)
    | Ok report ->
      print_string (Obs.Slo.render report);
      if not (Obs.Slo.ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "slo"
       ~doc:
         "Render the SLO verdict of a saved replay report and exit nonzero \
          if it pages.")
    Term.(const run $ setup_logs $ report_arg)

let cmd_dash =
  let frames_arg =
    Arg.(
      value & opt int 4
      & info [ "frames" ] ~docv:"N"
          ~doc:"Dashboard frames to print during the replay (default 4).")
  in
  let run () journal cfg frames =
    let mix = load_mix journal in
    let every = max 1 (cfg.Service.Loadgen.requests / max 1 frames) in
    let frame w ~now =
      Printf.printf "--- tick %d ---\n%s\n" now (Obs.Window.render w ~now)
    in
    let r = Service.Loadgen.run ~on_frame:frame ~frame_every:every cfg mix in
    print_string (Service.Loadgen.render r)
  in
  Cmd.v
    (Cmd.info "dash"
       ~doc:
         "Replay a journal's request mix and print a live text dashboard of \
          the sliding telemetry window (per-epoch rates, quantiles, a p99 \
          sparkline) plus the final SLO verdict.")
    Term.(const run $ setup_logs $ journal_file_arg $ loadgen_config_term $ frames_arg)

let cmd_doctor =
  let bench_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench" ] ~docv:"FILE"
          ~doc:
            "Benchmark artifact (BENCH_*.json) to correlate: service \
             quantiles already over the SLO budget corroborate a paged \
             verdict.")
  in
  let slo_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "slo" ] ~docv:"FILE"
          ~doc:
            "Replay report written by 'loadgen --out' (SLO verdict, drift \
             alarms, serve counts) or a bare SLO report.")
  in
  let ledger_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:
            "Ledger replay file written by 'loadgen --ledger-out' (or a bare \
             ledger report): enables the DR04x phase-attribution findings \
             and the worst-request exemplar jump.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the machine-readable health report.")
  in
  let mispredict_arg =
    Arg.(
      value & opt float 0.5
      & info [ "mispredict-threshold" ] ~docv:"R"
          ~doc:
            "Mean |predicted/measured - 1| above which a run's surrogate \
             counts as drifted (default 0.5).")
  in
  let tolerance_arg =
    Arg.(
      value & opt float 0.25
      & info [ "time-tolerance" ] ~docv:"R"
          ~doc:
            "Winner-time ratio slack before a diverging lineage counts as a \
             critical kernel regression (default 0.25).")
  in
  let run () journal bench slo ledger json mispredict_threshold time_tolerance
      =
    let entries, discarded = Obs.Journal.load journal in
    let bench =
      match bench with
      | None -> None
      | Some path -> (
        match Obs.Bench_log.read path with
        | Ok a -> Some a
        | Error msg -> failwith (Printf.sprintf "%s: %s" path msg))
    in
    let load =
      match slo with
      | None -> None
      | Some path -> (
        match Obs.Json.parse (Util.Fs.read_file path) with
        | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)
        | Ok j -> (
          match Obs.Doctor.load_of_json j with
          | Ok l -> Some l
          | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)))
    in
    let ledger =
      match ledger with
      | None -> None
      | Some path -> (
        match Obs.Json.parse (Util.Fs.read_file path) with
        | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)
        | Ok j -> (
          (* a full --ledger-out replay file embeds the report under
             "ledger"; a bare report document is the report itself *)
          let doc = Option.value ~default:j (Obs.Json.member "ledger" j) in
          match Obs.Ledger.report_of_json doc with
          | Ok r -> Some r
          | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)))
    in
    let report =
      Obs.Doctor.diagnose ~mispredict_threshold ~time_tolerance
        {
          Obs.Doctor.journal = entries;
          discarded;
          bench;
          load;
          ledger;
          extra_alarms = [];
        }
    in
    if json then
      print_endline (Obs.Json.to_string ~indent:true (Obs.Doctor.to_json report))
    else print_string (Obs.Doctor.render report);
    if Obs.Doctor.has_critical report then exit 1
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "Correlate a tuning journal, a benchmark artifact and a replay/SLO \
          report into a health report: paged SLOs and change-point alarms \
          are attributed to ranked suspects (arch change, kernel regression \
          at the earliest diverging lineage stage, surrogate drift, cache \
          eviction). Exits nonzero on a critical finding.")
    Term.(
      const run $ setup_logs $ journal_file_arg $ bench_arg $ slo_arg
      $ ledger_arg $ json_arg $ mispredict_arg $ tolerance_arg)

(* ---------------- ledger / whatif (causal cost ledger) ---------------- *)

let read_ledger_file path =
  match Obs.Json.parse (Util.Fs.read_file path) with
  | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)
  | Ok j -> (
    match Obs.Whatif.file_of_json j with
    | Ok f -> f
    | Error msg -> failwith (Printf.sprintf "%s: %s" path msg))

let ledger_file_arg =
  Arg.(
    value & pos 0 string "ledger.json"
    & info [] ~docv:"FILE"
        ~doc:"Ledger replay file written by 'loadgen --ledger-out'.")

let cmd_ledger =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the machine-readable ledger report.")
  in
  let prom_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom-out" ] ~docv:"FILE"
          ~doc:
            "Write a Prometheus exposition of the per-phase and per-class \
             histograms rebuilt from the recorded requests.")
  in
  let run () path json prom_out =
    let f = read_ledger_file path in
    if json then
      print_endline
        (Obs.Json.to_string ~indent:true (Obs.Ledger.report_json f.f_ledger))
    else print_string (Obs.Ledger.render f.f_ledger);
    match prom_out with
    | None -> ()
    | Some out ->
      (* the report holds quantile summaries, not sketches; rebuild the
         ledger from the raw records for a faithful histogram exposition *)
      if f.f_records = [] then
        failwith "--prom-out needs the per-request records (loadgen --ledger-out writes them)";
      let t = Obs.Ledger.create ~slot_width:f.f_ledger.lr_slot_width () in
      List.iter
        (fun (r : Obs.Whatif.record) ->
          let costs =
            List.map (fun (p, v) -> (p, v *. r.rq_mult)) r.rq_costs
          in
          let latency =
            List.fold_left (fun acc (_, v) -> acc +. v) 0.0 costs
          in
          Obs.Ledger.observe t ~tick:r.rq_tick ~cls:r.rq_class ~ok:r.rq_ok
            ~latency_s:latency costs)
        f.f_records;
      Util.Fs.write_file out (Obs.Ledger.prometheus t);
      Printf.printf "wrote Prometheus exposition to %s\n" out
  in
  Cmd.v
    (Cmd.info "ledger"
       ~doc:
         "Render the causal cost ledger of a recorded replay: per-phase \
          cost quantiles split by serve class (cold/warm/dedup), phase \
          shares of modeled time, and the worst-request exemplars that \
          link slow p99 slots back to journal runs.")
    Term.(const run $ setup_logs $ ledger_file_arg $ json_arg $ prom_arg)

let cmd_whatif =
  let factors_arg =
    Arg.(
      value
      & opt (list float) [ 0.5; 0.25; 0.1 ]
      & info [ "factors" ] ~docv:"F,F,..."
          ~doc:
            "Speedup factors to apply to each phase's modeled cost \
             (default 0.5,0.25,0.1).")
  in
  let expect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "expect-top" ] ~docv:"PHASE"
          ~doc:
            "Exit nonzero unless the causal ranking's top phase is PHASE \
             (the CI gate pinning where the next perf PR must aim).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the machine-readable what-if report.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the machine-readable ranking to FILE (bit-identical \
             across runs of the same replay file).")
  in
  let run () path factors expect_top json out =
    let f = read_ledger_file path in
    if f.Obs.Whatif.f_records = [] then
      failwith
        "the replay file has no per-request records; re-run loadgen with \
         --ledger-out to record them";
    let report =
      Obs.Whatif.run ~factors ?slo:f.f_slo ~width:f.f_width
        ~buckets:f.f_buckets f.f_records
    in
    if json then
      print_endline
        (Obs.Json.to_string ~indent:true (Obs.Whatif.report_json report))
    else print_string (Obs.Whatif.render report);
    (match out with
    | Some p ->
      Util.Fs.write_file p (Obs.Json.to_string (Obs.Whatif.report_json report));
      Printf.printf "wrote what-if ranking to %s\n" p
    | None -> ());
    match expect_top with
    | None -> ()
    | Some name -> (
      match Obs.Ledger.phase_of_name name with
      | None -> failwith (Printf.sprintf "unknown phase %S" name)
      | Some expected -> (
        match Obs.Whatif.top report with
        | Some actual when actual = expected -> ()
        | top ->
          Printf.eprintf
            "whatif: expected top phase %s, ranking says %s\n" name
            (match top with
            | Some p -> Obs.Ledger.phase_name p
            | None -> "(empty)");
          exit 1))
  in
  Cmd.v
    (Cmd.info "whatif"
       ~doc:
         "Exact causal profiling over a recorded replay: virtually speed \
          up each phase by the given factors, recompute every request's \
          latency, and rank phases by their true p99 impact. Deterministic \
          - two runs over the same file are bit-identical.")
    Term.(
      const run $ setup_logs $ ledger_file_arg $ factors_arg $ expect_arg
      $ json_arg $ out_arg)

(* ---------------- main ---------------- *)

(* One-line-per-subcommand usage screen, shown on bare invocation and on
   --help, and on stderr (exit 2) for an unknown subcommand. *)
let subcommands =
  [
    ("variants", "enumerate the OCTOPI strength-reduction variants");
    ("tcr", "print the TCR form of a chosen variant");
    ("space", "summarize the autotuning search space");
    ("annotations", "print the Orio/CUDA-CHiLL search-space annotations");
    ("tune", "run the full pipeline (SURF autotuning) and report");
    ("cuda", "tune and emit the optimized CUDA translation unit");
    ("driver", "tune and emit a standalone CUDA driver");
    ("c", "emit sequential C or OpenACC renderings");
    ("inspect", "tune and print the per-kernel performance-model breakdown");
    ( "check",
      "statically verify a program across all variants and points \
       (--semantic adds translation validation)" );
    ("batch", "serve many requests via the tuning service (cache + domains)");
    ("stats", "inspect a persistent tuning-cache directory");
    ("trace", "tune with tracing on; write a Chrome trace-event JSON");
    ("report", "tune and print convergence + metrics reports");
    ("profile", "tune with the kernel roofline profiler and print the report");
    ("net", "optimize an N-tensor network's contraction order (greedy vs TreeSA)");
    ("archs", "list the simulated GPU architectures");
    ("history", "list the runs recorded in a tuning journal");
    ("explain", "full report for one journaled run (lineage, importances)");
    ("replay", "re-run a journaled tune; exit nonzero on drift");
    ("loadgen", "replay a journal's request mix; exit nonzero on SLO breach");
    ("slo", "render the SLO verdict of a saved replay report");
    ("dash", "replay with a live text dashboard of the telemetry window");
    ("doctor", "correlate journal/bench/SLO artifacts into a health report");
    ("ledger", "render the per-phase causal cost ledger of a recorded replay");
    ("whatif", "rank phases by exact causal p99 impact (virtual speedups)");
  ]

let usage_screen =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "barracuda - autotuning tensor-contraction compiler for (simulated) GPUs\n\n\
     usage: barracuda COMMAND [OPTIONS]\n\ncommands:\n";
  List.iter
    (fun (name, doc) -> Buffer.add_string b (Printf.sprintf "  %-12s %s\n" name doc))
    subcommands;
  Buffer.add_string b
    "\nRun 'barracuda COMMAND --help' for the options of one command.\n";
  Buffer.contents b

let () =
  let info =
    Cmd.info "barracuda" ~version:"1.0.0"
      ~doc:"Autotuning tensor-contraction compiler for (simulated) GPUs."
  in
  let group =
    Cmd.group info
      [ cmd_variants; cmd_tcr; cmd_space; cmd_annotations; cmd_tune; cmd_cuda;
        cmd_driver; cmd_c; cmd_inspect; cmd_check; cmd_batch; cmd_stats; cmd_trace;
        cmd_report; cmd_profile; cmd_net; cmd_archs; cmd_history; cmd_explain;
        cmd_replay; cmd_loadgen; cmd_slo; cmd_dash; cmd_doctor; cmd_ledger;
        cmd_whatif ]
  in
  match Array.to_list Sys.argv with
  | [ _ ] | _ :: ("--help" | "-h" | "help") :: _ ->
    print_string usage_screen;
    exit 0
  | _ :: cmd :: _
    when cmd <> "" && cmd.[0] <> '-' && not (List.mem_assoc cmd subcommands) ->
    prerr_string usage_screen;
    Printf.eprintf "\nbarracuda: unknown command %S\n" cmd;
    exit 2
  | _ -> exit (Cmd.eval group)
