(* Regeneration of every table and figure of the paper's evaluation
   (Section VI), printing measured (simulated) numbers side by side with
   the paper's published values.

   Experiment index (see DESIGN.md):
   - claims   : Section III  - 15 OCTOPI variants for Eqn.(1), 6 of minimal
                flops, performance spread of the equal-flop variants
   - space    : Section V    - search-space sizes, SURF vs. exhaustive cost
   - table2   : Table II     - individual contractions on 3 GPUs
   - table3   : Table III    - Nekbone: OpenACC vs Barracuda
   - table4   : Table IV     - Nekbone + NWChem: OpenMP vs Barracuda
   - figure3  : Figure 3     - 27 NWChem kernels, speedup over naive OpenACC
   - surfbrute: Section VI-A - SURF vs brute-force search quality *)

let reps = 100

let fmt = Util.Table.cell_f

(* Deterministic per-(benchmark, arch) tuning, cached: Table IV and
   Figure 3 reuse each other's kernels. *)
let tune_cache : (string * string, Autotune.Tuner.result) Hashtbl.t = Hashtbl.create 64

let tune ?(pool_per_variant = 400) ?(max_evals = 100) (arch : Gpusim.Arch.t)
    (b : Autotune.Tuner.benchmark) =
  let key = (b.label, arch.name) in
  match Hashtbl.find_opt tune_cache key with
  | Some r -> r
  | None ->
    let rng = Util.Rng.create (Hashtbl.hash key) in
    let cfg = { Surf.Search.default_config with max_evals } in
    let r =
      Autotune.Tuner.tune ~strategy:(Autotune.Tuner.Surf_search cfg) ~reps
        ~pool_per_variant ~rng ~arch b
    in
    Hashtbl.add tune_cache key r;
    r

let archs = [ Gpusim.Arch.gtx980; Gpusim.Arch.k20; Gpusim.Arch.c2050 ]
let openacc_archs = [ Gpusim.Arch.k20; Gpusim.Arch.c2050 ]

(* ------------------------------------------------------------------ *)
(* Section III claims: variant enumeration and the equal-flop spread *)

let claims () =
  let b = Benchsuite.Suite.eqn1 () in
  let set = Octopi.Variants.of_contraction (List.hd b.statements) in
  let minimal = Octopi.Variants.minimal_flop_variants set in
  let arch = Gpusim.Arch.gtx980 in
  (* best tuned time of each minimal-flop variant on the GTX 980 *)
  let times =
    List.map
      (fun (v : Octopi.Variants.variant) ->
        let ir = Tcr.Ir.of_variant ~label:(Printf.sprintf "eqn1_v%d" v.id)
                   set.contraction v in
        let ps = Tcr.Space.of_ir ir in
        let rng = Util.Rng.create (1000 + v.id) in
        let evaluator = Autotune.Evaluator.create ~reps arch in
        (* exhaustive over a sampled sub-pool per variant *)
        let best = ref infinity in
        for _ = 1 to 250 do
          let points = List.map (Tcr.Space.sample rng) ps.op_spaces in
          best := min !best (Autotune.Evaluator.objective evaluator ir points)
        done;
        (v.id, !best))
      minimal
  in
  let ts = List.map snd times in
  let spread =
    100.0 *. (Util.Stats.max_list ts -. Util.Stats.min_list ts) /. Util.Stats.min_list ts
  in
  let rows =
    [ "quantity"; "paper"; "measured" ]
    :: [
         [ "OCTOPI variants for Eqn.(1)"; "15"; string_of_int (List.length set.variants) ];
         [ "variants with minimal flops"; "6"; string_of_int (List.length minimal) ];
         [ "minimal flops (3 nests x 2 x 10^4)"; "60000";
           string_of_int (Octopi.Variants.min_flops set) ];
         [ "equal-flop perf spread on GTX 980"; "~9%"; fmt ~digits:1 spread ^ "%" ];
       ]
  in
  Util.Table.create ~title:"Section III claims: Eqn.(1) strength-reduction variants" rows

(* ------------------------------------------------------------------ *)
(* Section V: search-space sizes and search cost *)

let space_table () =
  let benches = Benchsuite.Suite.all_individual () in
  let rows =
    [ "benchmark"; "variants"; "total space"; "SURF evals"; "SURF time (model)";
      "exhaustive est." ]
    :: List.map
         (fun (b : Autotune.Tuner.benchmark) ->
           let choices = Autotune.Tuner.variant_choices b in
           let total = Autotune.Tuner.total_space choices in
           let r = tune Gpusim.Arch.gtx980 b in
           let per_eval = r.search_seconds /. float_of_int r.evaluations in
           let exhaustive_days = float_of_int total *. per_eval /. 86400.0 in
           [
             b.label;
             string_of_int (List.length choices);
             string_of_int total;
             string_of_int r.evaluations;
             fmt ~digits:0 r.search_seconds ^ "s";
             fmt ~digits:1 exhaustive_days ^ " days";
           ])
         benches
  in
  Util.Table.create
    ~title:
      "Section V: search-space sizes (paper: 512,000 variants for Lg3t; 100 evals in ~7 min vs ~23 days exhaustive)"
    rows

(* ------------------------------------------------------------------ *)
(* Table II: individual tensor contractions *)

type paper_row = { p_speedup : float; p_gf : float array (* gtx, k20, c2050 *) }

let table2_paper =
  [
    ("eqn1", { p_speedup = 0.63; p_gf = [| 1.99; 1.42; 1.89 |] });
    ("lg3", { p_speedup = 23.74; p_gf = [| 42.74; 41.52; 42.47 |] });
    ("lg3t", { p_speedup = 22.87; p_gf = [| 41.11; 38.38; 34.99 |] });
    ("tce_ex", { p_speedup = 29.77; p_gf = [| 42.72; 17.82; 14.25 |] });
  ]

let table2 () =
  let benches = Benchsuite.Suite.all_individual () in
  let rows =
    [ "bench"; "speedup"; "(paper)"; "GTX980 GF"; "(paper)"; "K20 GF"; "(paper)";
      "C2050 GF"; "(paper)"; "search s (GTX)" ]
    :: List.map
         (fun (b : Autotune.Tuner.benchmark) ->
           let paper = List.assoc b.label table2_paper in
           let t_seq = Autotune.Tuner.best_sequential_time b in
           let results = List.map (fun a -> tune a b) archs in
           let gtx = List.nth results 0 in
           let speedup = t_seq /. gtx.time_per_eval_s in
           [ b.label; fmt speedup ^ "x"; fmt paper.p_speedup ^ "x" ]
           @ List.concat
               (List.mapi
                  (fun i (r : Autotune.Tuner.result) ->
                    [ fmt r.gflops; fmt paper.p_gf.(i) ])
                  results)
           @ [ fmt ~digits:0 gtx.search_seconds ])
         benches
  in
  Util.Table.create
    ~title:"Table II: individual tensor contractions (speedup vs 1-core Haswell, on GTX 980)"
    rows

(* ------------------------------------------------------------------ *)
(* Nekbone performance assembly *)

let nekbone_problem = Benchsuite.Nekbone.default

let nekbone_operator =
  lazy (Benchsuite.Nekbone.make_operator nekbone_problem)

let nekbone_barracuda arch =
  let lg3 = tune arch (Benchsuite.Nekbone.lg3_benchmark nekbone_problem) in
  let lg3t = tune arch (Benchsuite.Nekbone.lg3t_benchmark nekbone_problem) in
  let op = Lazy.force nekbone_operator in
  let t =
    Benchsuite.Nekbone.gpu_iter_time arch
      ~lg3_kernel_time:lg3.best_report.kernel_time_s
      ~lg3t_kernel_time:lg3t.best_report.kernel_time_s nekbone_problem
  in
  Benchsuite.Nekbone.gflops_of_iter_time op t

(* OpenACC in application context: only the contraction regions run on the
   device, so the field u travels in and w travels back every CG iteration;
   the naive variant additionally re-ships every array around every kernel
   and uses the undecomposed mapping. *)
let nekbone_openacc arch ~optimized =
  let op = Lazy.force nekbone_operator in
  let field_bytes = 8 * Benchsuite.Nekbone.field_points nekbone_problem in
  let lg3_b = Benchsuite.Nekbone.lg3_benchmark nekbone_problem in
  let lg3t_b = Benchsuite.Nekbone.lg3t_benchmark nekbone_problem in
  let ir_of b = (List.hd (Autotune.Tuner.variant_choices b)).Autotune.Tuner.v_ir in
  let kernel_time b =
    let ir = ir_of b in
    if optimized then begin
      let r = tune arch b in
      Cpusim.Openacc.kernel_time arch r.best.ir (Cpusim.Openacc.Optimized r.best.points)
    end
    else Cpusim.Openacc.kernel_time arch ir Cpusim.Openacc.Naive
  in
  let t_kernels = kernel_time lg3_b +. kernel_time lg3t_b in
  let transfers =
    if optimized then
      (* u in, w out once per iteration; gradients stay on the device *)
      2.0 *. Gpusim.Transfer.time_of_bytes arch field_bytes
    else
      (* every region ships its operands both ways *)
      2.0 *. 8.0 *. Gpusim.Transfer.time_of_bytes arch field_bytes
  in
  let aux =
    float_of_int (Benchsuite.Nekbone.aux_bytes nekbone_problem)
    /. (Cpusim.Haswell.haswell.mem_bw_gbs *. 1e9)
  in
  Benchsuite.Nekbone.gflops_of_iter_time op (t_kernels +. transfers +. aux)

let table3_paper = [ ("Tesla K20", (2.86, 12.39, 36.47)); ("Tesla C2050", (1.18, 19.21, 34.65)) ]

let table3 () =
  let rows =
    [ "arch"; "ACC naive"; "(paper)"; "ACC optimized"; "(paper)"; "Barracuda"; "(paper)" ]
    :: List.map
         (fun (arch : Gpusim.Arch.t) ->
           let p_naive, p_opt, p_barra = List.assoc arch.name table3_paper in
           [
             arch.name;
             fmt (nekbone_openacc arch ~optimized:false);
             fmt p_naive;
             fmt (nekbone_openacc arch ~optimized:true);
             fmt p_opt;
             fmt (nekbone_barracuda arch);
             fmt p_barra;
           ])
         openacc_archs
  in
  Util.Table.create ~title:"Table III: Nekbone, OpenACC vs Barracuda (GFlops)" rows

(* ------------------------------------------------------------------ *)
(* Table IV: OpenMP vs Barracuda *)

(* The paper's GPU column is reported on the Tesla K20 (the d1 figure of
   115 GFlops exceeds the GTX 980's double-precision peak). *)
let table4_arch = Gpusim.Arch.k20

let nwchem_family_avg family ~f =
  let xs = List.map f (Benchsuite.Nwchem.benchmarks family) in
  Util.Stats.mean xs

let table4_paper =
  [
    ("Nekbone", (7.79, 23.97, 35.70));
    ("NWCHEM s1", (2.47, 2.61, 16.14));
    ("NWCHEM d1", (3.90, 25.29, 115.37));
    ("NWCHEM d2", (5.60, 14.90, 50.00));
  ]

let table4 () =
  let op = Lazy.force nekbone_operator in
  let nek_1core =
    Benchsuite.Nekbone.gflops_of_iter_time op (Benchsuite.Nekbone.cpu_iter_time ~cores:1 op)
  in
  let nek_omp =
    Benchsuite.Nekbone.gflops_of_iter_time op (Benchsuite.Nekbone.cpu_iter_time ~cores:4 op)
  in
  let nek_barra = nekbone_barracuda table4_arch in
  let family_row name family =
    let seq =
      nwchem_family_avg family ~f:(fun b ->
          float_of_int (Autotune.Tuner.min_variant_flops b)
          /. Autotune.Tuner.best_sequential_time b /. 1e9)
    in
    let omp =
      nwchem_family_avg family ~f:(fun b ->
          float_of_int (Autotune.Tuner.min_variant_flops b)
          /. Autotune.Tuner.best_openmp_time b /. 1e9)
    in
    let barra = nwchem_family_avg family ~f:(fun b -> (tune table4_arch b).gflops) in
    (name, seq, omp, barra)
  in
  let measured =
    [
      (let g1, g4, gb = (nek_1core, nek_omp, nek_barra) in
       ("Nekbone", g1, g4, gb));
      family_row "NWCHEM s1" Benchsuite.Nwchem.S1;
      family_row "NWCHEM d1" Benchsuite.Nwchem.D1;
      family_row "NWCHEM d2" Benchsuite.Nwchem.D2;
    ]
  in
  let rows =
    [ "benchmark"; "1 core"; "(paper)"; "OpenMP 4"; "(paper)"; "Barracuda"; "(paper)" ]
    :: List.map
         (fun (name, g1, g4, gb) ->
           let p1, p4, pb = List.assoc name table4_paper in
           [ name; fmt g1; fmt p1; fmt g4; fmt p4; fmt gb; fmt pb ])
         measured
  in
  Util.Table.create
    ~title:"Table IV: Nekbone and NWChem excerpts, OpenMP vs Barracuda (GFlops; GPU = Tesla K20)"
    rows

(* ------------------------------------------------------------------ *)
(* Figure 3: the 27 NWChem kernels, speedups over naive OpenACC *)

let figure3_family family =
  let rows =
    [ "kernel"; "Barracuda C2050"; "ACC C2050"; "Barracuda K20"; "ACC K20" ]
    :: List.map
         (fun (b : Autotune.Tuner.benchmark) ->
           let cells =
             List.concat_map
               (fun (arch : Gpusim.Arch.t) ->
                 let ir = (List.hd (Autotune.Tuner.variant_choices b)).v_ir in
                 let t_naive = Cpusim.Openacc.time arch ir ~reps Cpusim.Openacc.Naive in
                 let r = tune arch b in
                 let t_opt =
                   Cpusim.Openacc.time arch r.best.ir ~reps
                     (Cpusim.Openacc.Optimized r.best.points)
                 in
                 [ fmt (t_naive /. r.time_per_eval_s); fmt (t_naive /. t_opt) ])
               [ Gpusim.Arch.c2050; Gpusim.Arch.k20 ]
           in
           b.label :: cells)
         (Benchsuite.Nwchem.benchmarks family)
  in
  Util.Table.create
    ~title:
      (Printf.sprintf
         "Figure 3 (%s): speedup over naive OpenACC (paper: D1 up to ~70x, D2 and S1 5-25x; Barracuda >= optimized OpenACC)"
         (Benchsuite.Nwchem.family_name family))
    rows

let figure3 () = List.map figure3_family [ Benchsuite.Nwchem.D1; Benchsuite.Nwchem.D2; Benchsuite.Nwchem.S1 ]

(* ------------------------------------------------------------------ *)
(* Section VI-A: SURF vs brute force *)

let surf_vs_brute () =
  let b = Benchsuite.Suite.lg3 () in
  let arch = Gpusim.Arch.gtx980 in
  let run strategy seed =
    let rng = Util.Rng.create seed in
    Autotune.Tuner.tune ~strategy ~reps ~pool_per_variant:400 ~rng ~arch b
  in
  let cfg = { Surf.Search.default_config with max_evals = 100 } in
  let surf = run (Autotune.Tuner.Surf_search cfg) 5 in
  let brute = run Autotune.Tuner.Exhaustive 6 in
  let random = run Autotune.Tuner.Random_search 7 in
  let best_after (r : Autotune.Tuner.result) n =
    match List.filteri (fun i _ -> i < n) r.convergence with
    | [] -> nan
    | curve -> List.nth curve (List.length curve - 1)
  in
  let rows =
    [ "strategy"; "evaluations"; "best@20"; "best@50"; "best kernel time"; "GFlops";
      "search (model)" ]
    :: List.map
         (fun (name, (r : Autotune.Tuner.result)) ->
           [
             name;
             string_of_int r.evaluations;
             Printf.sprintf "%.3g s" (best_after r 20);
             Printf.sprintf "%.3g s" (best_after r 50);
             Printf.sprintf "%.3g s" r.best_report.kernel_time_s;
             fmt r.gflops;
             fmt ~digits:0 r.search_seconds ^ "s";
           ])
         [ ("SURF (100 evals)", surf); ("brute force (pool)", brute); ("random (100)", random) ]
  in
  Util.Table.create
    ~title:
      "Section VI-A: SURF vs brute force on Lg3 (paper: SURF comparable to or better than prior brute-force search)"
    rows

(* ------------------------------------------------------------------ *)
(* Ablation study (extensions beyond the paper's evaluation):
   - search-space pruning (the Section VIII outlook), default vs none;
   - scalar replacement on/off (Section IV's always-on transformation);
   - unroll tuning on/off;
   - joint vs separate tuning of Lg3 + Lg3t (Section VIII outlook). *)

let ablation () =
  let arch = Gpusim.Arch.gtx980 in
  let cfg = { Surf.Search.default_config with max_evals = 100 } in
  let tune_with ?prune seed b =
    Autotune.Tuner.tune ~strategy:(Autotune.Tuner.Surf_search cfg) ~reps
      ~pool_per_variant:400 ?prune ~rng:(Util.Rng.create seed) ~arch b
  in
  let rows = ref [] in
  let add row = rows := row :: !rows in

  (* pruning *)
  List.iter
    (fun (b : Autotune.Tuner.benchmark) ->
      let full = tune_with 31 b in
      let pruned = tune_with ~prune:Tcr.Prune.default 31 b in
      let spaces = (List.hd (Autotune.Tuner.variant_choices b)).spaces in
      let frac =
        Util.Stats.mean
          (List.map (Tcr.Prune.pruned_fraction Tcr.Prune.default) spaces.op_spaces)
      in
      add
        [
          Printf.sprintf "pruning (%s)" b.label;
          Printf.sprintf "full: %.2f GF / %.0fs search" full.gflops full.search_seconds;
          Printf.sprintf "pruned(-%.0f%%): %.2f GF / %.0fs search" (100.0 *. frac)
            pruned.gflops pruned.search_seconds;
        ])
    [ Benchsuite.Suite.lg3 (); Benchsuite.Nwchem.benchmark Benchsuite.Nwchem.D1 ~index:1 ];

  (* scalar replacement *)
  List.iter
    (fun (b : Autotune.Tuner.benchmark) ->
      let r = tune_with 32 b in
      let with_sr = Gpusim.Gpu.measure arch r.best.ir r.best.points in
      let without_sr =
        Gpusim.Gpu.measure ~scalar_replace:false arch r.best.ir r.best.points
      in
      let gf report =
        float_of_int report.Gpusim.Gpu.flops /. report.kernel_time_s /. 1e9
      in
      add
        [
          Printf.sprintf "scalar replacement (%s)" b.label;
          Printf.sprintf "on: %.2f GF" (gf with_sr);
          Printf.sprintf "off: %.2f GF (%.1fx slower)" (gf without_sr)
            (without_sr.kernel_time_s /. with_sr.kernel_time_s);
        ])
    [ Benchsuite.Suite.lg3 (); Benchsuite.Nwchem.benchmark Benchsuite.Nwchem.D1 ~index:1 ];

  (* unroll tuning *)
  List.iter
    (fun (b : Autotune.Tuner.benchmark) ->
      let r = tune_with 33 b in
      let no_unroll =
        List.map
          (fun (p : Tcr.Space.point) ->
            { p with Tcr.Space.unrolls = List.map (fun (l, _) -> (l, 1)) p.unrolls })
          r.best.points
      in
      let base = Gpusim.Gpu.measure arch r.best.ir r.best.points in
      let flat = Gpusim.Gpu.measure arch r.best.ir no_unroll in
      add
        [
          Printf.sprintf "unroll tuning (%s)" b.label;
          Printf.sprintf "tuned: %.3g s" base.kernel_time_s;
          Printf.sprintf "unroll=1: %.3g s (%+.1f%%)" flat.kernel_time_s
            (100.0 *. ((flat.kernel_time_s /. base.kernel_time_s) -. 1.0));
        ])
    [ Benchsuite.Suite.lg3 (); Benchsuite.Suite.tce_ex () ];

  (* concurrent kernels (streams): waves of independent statements share a
     launch; pays off only for launch-bound programs like Eqn.(1) *)
  List.iter
    (fun (b : Autotune.Tuner.benchmark) ->
      let r = tune_with 35 b in
      let serial = Gpusim.Gpu.measure arch r.best.ir r.best.points in
      let streams = Gpusim.Gpu.measure_streams arch r.best.ir r.best.points in
      add
        [
          Printf.sprintf "concurrent kernels (%s)" b.label;
          Printf.sprintf "serial: %.3g s" serial.kernel_time_s;
          Printf.sprintf "streams: %.3g s (%+.1f%%)" streams.kernel_time_s
            (100.0 *. ((streams.kernel_time_s /. serial.kernel_time_s) -. 1.0));
        ])
    [ Benchsuite.Suite.eqn1 (); Benchsuite.Suite.lg3 () ];

  (* joint vs separate Nekbone tuning *)
  let problem = Benchsuite.Nekbone.default in
  let lg3 = tune_with 34 (Benchsuite.Nekbone.lg3_benchmark problem) in
  let lg3t = tune_with 34 (Benchsuite.Nekbone.lg3t_benchmark problem) in
  let joint = tune_with 34 (Benchsuite.Nekbone.joint_benchmark problem) in
  let separate_time = lg3.best_report.kernel_time_s +. lg3t.best_report.kernel_time_s in
  add
    [
      "joint lg3+lg3t tuning";
      Printf.sprintf "separate: %.3g s/iter" separate_time;
      Printf.sprintf "joint: %.3g s/iter (%+.1f%%)" joint.best_report.kernel_time_s
        (100.0 *. ((joint.best_report.kernel_time_s /. separate_time) -. 1.0));
    ];
  Util.Table.create ~title:"Ablation study (design choices from Sections IV and VIII)"
    ([ "experiment"; "baseline"; "variant" ] :: List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Model validation: for the tuned kernels of the main benchmarks, compare
   the analytic memory classification against the trace-driven LRU cache
   simulator (ground truth for one block's L1 behaviour). *)

let modelcheck () =
  let arch = Gpusim.Arch.gtx980 in
  let rows = ref [] in
  List.iter
    (fun (b : Autotune.Tuner.benchmark) ->
      let r = tune arch b in
      let kernels = Codegen.Kernel.lower_program r.best.ir r.best.points in
      List.iteri
        (fun ki k ->
          let perf = Gpusim.Perf.analyze_kernel arch k in
          List.iteri
            (fun ri (rr : Gpusim.Perf.ref_report) ->
              (* skip the synthetic output entry (last) for hit-rate checks *)
              if ri < List.length perf.refs - 1 then begin
                let name = rr.analysis.name and dims = rr.analysis.dims in
                let rate = Gpusim.Simtrace.block_hit_rate arch k (name, dims) in
                let cls =
                  match rr.memory_class with
                  | Gpusim.Perf.L1_resident -> "L1"
                  | Gpusim.Perf.L2_shared -> "L2"
                  | Gpusim.Perf.Dram_raw -> "DRAM"
                in
                let agree =
                  match rr.memory_class with
                  | Gpusim.Perf.L1_resident -> rate >= 0.85
                  | Gpusim.Perf.L2_shared | Gpusim.Perf.Dram_raw -> true
                in
                rows :=
                  [
                    Printf.sprintf "%s k%d %s" b.label (ki + 1) name;
                    cls;
                    fmt ~digits:3 rate;
                    (if agree then "ok" else "DISAGREES");
                  ]
                  :: !rows
              end)
            perf.refs)
        kernels)
    [ Benchsuite.Suite.eqn1 (); Benchsuite.Suite.lg3 ~elems:16 ();
      Benchsuite.Nwchem.benchmark ~n:16 Benchsuite.Nwchem.D1 ~index:1 ];
  Util.Table.create
    ~title:
      "Model validation: analytic memory class vs trace-driven L1 hit rate (one block)"
    ([ "kernel / ref"; "analytic class"; "simulated L1 hit rate"; "agreement" ]
    :: List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Motivation experiment (Section I / Section VII): direct tuned kernels
   vs the library path (TTGT: transpose + vendor GEMM + transpose). On the
   paper's small-tensor workloads the library path loses - tiny tile grids
   idle the chip and transposes rival the math - while on a large matmul it
   wins; Barracuda targets exactly the regime the libraries miss. *)

let motivation () =
  let arch = Gpusim.Arch.gtx980 in
  let mm n =
    Autotune.Tuner.benchmark_of_dsl
      ~label:(Printf.sprintf "mm%d" n)
      (Printf.sprintf "dims: i=%d j=%d k=%d\nC[i j] = Sum([k], A[i k] * B[k j])" n n n)
  in
  let row name (b : Autotune.Tuner.benchmark) =
    let fl = float_of_int (Autotune.Tuner.min_variant_flops b) in
    let ttgt_gf = fl /. Autotune.Ttgt.best_time arch b /. 1e9 in
    let barracuda =
      (* extents beyond the thread-block capacity are outside the paper's
         small-tensor domain: report n/a rather than failing *)
      try Some (tune arch b).gflops with Invalid_argument _ -> None
    in
    [
      name;
      (match barracuda with Some g -> fmt g | None -> "n/a (tensor too large)");
      fmt ttgt_gf;
      (match barracuda with
      | Some g -> fmt ~digits:1 (g /. ttgt_gf) ^ "x"
      | None -> "-");
    ]
  in
  let rows =
    [ "workload"; "Barracuda GF"; "TTGT/GEMM GF"; "Barracuda/TTGT" ]
    :: [
         row "eqn1 (10^3)" (Benchsuite.Suite.eqn1 ());
         row "lg3 (12^3 x 512)" (Benchsuite.Suite.lg3 ());
         row "nwchem d1_1 (16)" (Benchsuite.Nwchem.benchmark Benchsuite.Nwchem.D1 ~index:1);
         row "matmul 64" (mm 64);
         row "matmul 512" (mm 512);
         row "matmul 4096" (mm 4096);
       ]
  in
  Util.Table.create
    ~title:
      "Motivation: small-tensor contractions vs the library (TTGT) path (paper Section I)"
    rows

(* ------------------------------------------------------------------ *)
(* Polynomial-order sweep: tuned Lg3 GFlops as the element order grows
   (the CESAR codesign center's hand-coded OpenCL kernels reach 100-200
   GFlops on Fermi-class hardware for orders 8..12; Section VII). The
   sweep shows the same qualitative growth: larger orders raise arithmetic
   intensity and amortize launch overhead. *)

let sweep () =
  let orders = [ 6; 8; 10; 12; 14; 16 ] in
  let rows =
    [ "order p"; "GTX 980 GF"; "K20 GF"; "C2050 GF"; "flops/element" ]
    :: List.map
         (fun p ->
           let base = Benchsuite.Suite.lg3 ~p ~elems:512 () in
           (* distinct label per order: the tuning cache keys on it *)
           let b = { base with Autotune.Tuner.label = Printf.sprintf "lg3_p%d" p } in
           let per_arch =
             List.map (fun arch -> fmt (tune arch b).gflops) archs
           in
           (string_of_int p :: per_arch)
           @ [ string_of_int (3 * 2 * p * p * p * p) ])
         orders
  in
  Util.Table.create
    ~title:"Order sweep: tuned local_grad3 vs element order (512 elements)"
    rows
