bench/tables.ml: Array Autotune Benchsuite Codegen Cpusim Gpusim Hashtbl Lazy List Octopi Printf Surf Tcr Util
