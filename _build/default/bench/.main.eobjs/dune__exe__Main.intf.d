bench/main.mli:
