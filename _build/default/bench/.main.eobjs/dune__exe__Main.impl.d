bench/main.ml: Analyze Array Autotune Bechamel Benchmark Benchsuite Cpusim Gpusim List Octopi Printf Staged Surf Sys Tables Test Time Toolkit Unix Util
