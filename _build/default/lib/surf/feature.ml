(* Feature binarization (Section V): the decomposition parameters have no
   ordinal structure, so categorical features are one-hot encoded before
   surrogate modeling; numeric features (unroll factors) pass through. *)

type value = Cat of string | Num of float

type features = (string * value) list

type column = Onehot of string * string | Numeric of string

type schema = { columns : column array }

(* Build the encoding schema from a sample of feature vectors: one numeric
   column per numeric feature, one 0/1 column per observed category. *)
let make_schema (samples : features list) =
  let categories : (string, (string, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let numerics : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let remember name = if not (List.mem name !order) then order := !order @ [ name ] in
  List.iter
    (fun sample ->
      List.iter
        (fun (name, v) ->
          remember name;
          match v with
          | Num _ -> Hashtbl.replace numerics name ()
          | Cat c ->
            let tbl =
              match Hashtbl.find_opt categories name with
              | Some t -> t
              | None ->
                let t = Hashtbl.create 8 in
                Hashtbl.add categories name t;
                t
            in
            Hashtbl.replace tbl c ())
        sample)
    samples;
  let columns =
    List.concat_map
      (fun name ->
        if Hashtbl.mem numerics name then [ Numeric name ]
        else
          match Hashtbl.find_opt categories name with
          | None -> []
          | Some tbl ->
            Hashtbl.fold (fun c () acc -> c :: acc) tbl []
            |> List.sort compare
            |> List.map (fun c -> Onehot (name, c)))
      !order
  in
  { columns = Array.of_list columns }

let dimension schema = Array.length schema.columns

let encode schema (sample : features) =
  Array.map
    (fun column ->
      match column with
      | Numeric name -> (
        match List.assoc_opt name sample with
        | Some (Num x) -> x
        | Some (Cat _) | None -> 0.0)
      | Onehot (name, cat) -> (
        match List.assoc_opt name sample with
        | Some (Cat c) when c = cat -> 1.0
        | _ -> 0.0))
    schema.columns

let column_name = function
  | Numeric name -> name
  | Onehot (name, cat) -> Printf.sprintf "%s=%s" name cat
