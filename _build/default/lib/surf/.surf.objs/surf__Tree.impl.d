lib/surf/tree.ml: Array List Util
