lib/surf/forest.ml: Array Tree Util
