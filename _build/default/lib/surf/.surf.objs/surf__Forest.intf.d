lib/surf/forest.mli: Tree Util
