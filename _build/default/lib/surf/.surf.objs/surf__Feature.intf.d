lib/surf/feature.mli:
