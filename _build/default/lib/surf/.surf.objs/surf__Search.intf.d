lib/surf/search.mli: Forest Util
