lib/surf/feature.ml: Array Hashtbl List Printf
