lib/surf/tree.mli: Util
