lib/surf/search.ml: Array Forest List Util
