(** Feature binarization (Section V): decomposition parameters have no
    ordinal structure, so categorical features are one-hot encoded before
    surrogate modeling; numeric features (unroll factors) pass through. *)

type value = Cat of string | Num of float
type features = (string * value) list

type column = Onehot of string * string | Numeric of string

type schema = { columns : column array }

(** Build the encoding schema from a sample of feature vectors: one numeric
    column per numeric feature, one 0/1 column per observed category,
    grouped by first appearance of the feature name. *)
val make_schema : features list -> schema

val dimension : schema -> int

(** Encode a sample; unknown categories light no column, missing numerics
    encode as 0. *)
val encode : schema -> features -> float array

(** ["tx=i"] for one-hot columns, the plain name for numeric ones. *)
val column_name : column -> string
