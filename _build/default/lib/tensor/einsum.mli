(** Reference Einstein-summation evaluator: the correctness oracle for the
    whole system. Every OCTOPI variant and every generated kernel is checked
    against this direct nested-loop evaluation. *)

type operand

(** [operand t indices] names the dimensions of [t], outermost first.
    Raises if the index count does not match the tensor rank. *)
val operand : Dense.t -> string list -> operand

(** [contract ~output_indices operands] evaluates the contraction whose
    summation indices are those appearing in operands but not in
    [output_indices] (the Einstein convention). Raises on inconsistent
    extents, repeated output indices, or output indices not used by any
    operand. *)
val contract : output_indices:string list -> operand list -> Dense.t

(** Flops of the naive single-loop-nest evaluation: one multiply per extra
    operand plus one add, per point of the full iteration space. *)
val naive_flops : output_indices:string list -> operand list -> int
