(* Dense row-major tensors over [float array].

   This is the data substrate for the reference einsum evaluator, the kernel
   interpreter and the GPU simulator's device memory. *)

type t = { shape : Shape.t; data : float array }

let create shape =
  Shape.validate shape;
  { shape; data = Array.make (Shape.num_elements shape) 0.0 }

let init shape f =
  Shape.validate shape;
  let t = create shape in
  Shape.iter shape (fun idx -> t.data.(Shape.linearize shape idx) <- f idx);
  t

let of_array shape data =
  Shape.validate shape;
  if Array.length data <> Shape.num_elements shape then
    invalid_arg "Dense.of_array: size mismatch";
  { shape; data = Array.copy data }

let copy t = { shape = t.shape; data = Array.copy t.data }

let shape t = t.shape
let data t = t.data
let num_elements t = Array.length t.data

let get t idx = t.data.(Shape.linearize t.shape idx)
let set t idx v = t.data.(Shape.linearize t.shape idx) <- v

let get_linear t off = t.data.(off)
let set_linear t off v = t.data.(off) <- v

let fill t v = Array.fill t.data 0 (Array.length t.data) v

let map f t = { t with data = Array.map f t.data }

let scale alpha t = map (fun x -> alpha *. x) t

let add a b =
  if not (Shape.equal a.shape b.shape) then invalid_arg "Dense.add: shape mismatch";
  { shape = a.shape; data = Array.map2 ( +. ) a.data b.data }

let sub a b =
  if not (Shape.equal a.shape b.shape) then invalid_arg "Dense.sub: shape mismatch";
  { shape = a.shape; data = Array.map2 ( -. ) a.data b.data }

let dot a b =
  if not (Shape.equal a.shape b.shape) then invalid_arg "Dense.dot: shape mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.data.(i))) a.data;
  !acc

let norm2 t = sqrt (dot t t)

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then invalid_arg "Dense.max_abs_diff: shape mismatch";
  let worst = ref 0.0 in
  Array.iteri (fun i x -> worst := max !worst (abs_float (x -. b.data.(i)))) a.data;
  !worst

(* Approximate equality with a tolerance scaled to the magnitude of the
   values, suitable for comparing reassociated floating-point sums. *)
let approx_equal ?(tol = 1e-9) a b =
  if not (Shape.equal a.shape b.shape) then false
  else begin
    let ok = ref true in
    Array.iteri
      (fun i x ->
        let y = b.data.(i) in
        let scale = max 1.0 (max (abs_float x) (abs_float y)) in
        if abs_float (x -. y) > tol *. scale then ok := false)
      a.data;
    !ok
  end

let random rng shape =
  init shape (fun _ -> Util.Rng.float_range rng (-1.0) 1.0)

let to_string ?(max_elems = 16) t =
  let n = min max_elems (Array.length t.data) in
  let body =
    Array.to_list (Array.sub t.data 0 n)
    |> List.map (Printf.sprintf "%.4g")
    |> String.concat "; "
  in
  let suffix = if Array.length t.data > n then "; ..." else "" in
  Printf.sprintf "%s[%s%s]" (Shape.to_string t.shape) body suffix
