(* Tensor shapes and row-major linearization.

   A shape is the extent of each dimension, outermost first. All tensors in
   Barracuda are dense and row-major ("linearize" in the TCR input format),
   matching the layout the paper's generated CUDA assumes. *)

type t = int array

let of_list = Array.of_list
let to_list = Array.to_list

let rank (s : t) = Array.length s

let num_elements (s : t) = Array.fold_left ( * ) 1 s

let validate (s : t) =
  Array.iter (fun d -> if d <= 0 then invalid_arg "Shape.validate: non-positive extent") s

let equal (a : t) (b : t) = a = b

(* Row-major strides: stride of the last dimension is 1. *)
let strides (s : t) : int array =
  let n = rank s in
  let st = Array.make n 1 in
  for i = n - 2 downto 0 do
    st.(i) <- st.(i + 1) * s.(i + 1)
  done;
  st

(* Linear offset of a multi-index. *)
let linearize (s : t) (idx : int array) =
  if Array.length idx <> rank s then invalid_arg "Shape.linearize: rank mismatch";
  let st = strides s in
  let off = ref 0 in
  for i = 0 to rank s - 1 do
    if idx.(i) < 0 || idx.(i) >= s.(i) then invalid_arg "Shape.linearize: out of bounds";
    off := !off + (idx.(i) * st.(i))
  done;
  !off

(* Inverse of [linearize]. *)
let delinearize (s : t) (off : int) : int array =
  let st = strides s in
  let n = rank s in
  let idx = Array.make n 0 in
  let rem = ref off in
  for i = 0 to n - 1 do
    idx.(i) <- !rem / st.(i);
    rem := !rem mod st.(i)
  done;
  idx

(* Iterate over all multi-indices in row-major order. The callback receives
   a buffer that is reused between calls; copy it if you keep it. *)
let iter (s : t) f =
  let n = rank s in
  let idx = Array.make n 0 in
  let total = num_elements s in
  for _ = 1 to total do
    f idx;
    (* increment little-endian from the last dimension *)
    let rec bump i =
      if i >= 0 then begin
        idx.(i) <- idx.(i) + 1;
        if idx.(i) = s.(i) then begin
          idx.(i) <- 0;
          bump (i - 1)
        end
      end
    in
    bump (n - 1)
  done

let to_string (s : t) =
  "(" ^ String.concat "," (List.map string_of_int (to_list s)) ^ ")"
