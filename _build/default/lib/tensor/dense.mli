(** Dense row-major tensors over [float array]: the data substrate for the
    einsum oracle, the kernel interpreter and the simulated device memory. *)

type t

(** Zero-filled tensor. Raises on invalid shapes. *)
val create : Shape.t -> t

(** [init shape f] fills each element from its multi-index. *)
val init : Shape.t -> (int array -> float) -> t

(** Copy a flat row-major array into a fresh tensor. Raises on size
    mismatch. *)
val of_array : Shape.t -> float array -> t

val copy : t -> t
val shape : t -> Shape.t

(** The underlying flat storage (not a copy; mutations are visible). *)
val data : t -> float array

val num_elements : t -> int
val get : t -> int array -> float
val set : t -> int array -> float -> unit
val get_linear : t -> int -> float
val set_linear : t -> int -> float -> unit
val fill : t -> float -> unit
val map : (float -> float) -> t -> t
val scale : float -> t -> t

(** Elementwise operations; raise on shape mismatch. *)
val add : t -> t -> t

val sub : t -> t -> t
val dot : t -> t -> float
val norm2 : t -> float
val max_abs_diff : t -> t -> float

(** Approximate equality with relative tolerance (default [1e-9]), suitable
    for comparing reassociated floating-point sums. False on shape
    mismatch. *)
val approx_equal : ?tol:float -> t -> t -> bool

(** Uniform values in [[-1, 1)]. *)
val random : Util.Rng.t -> Shape.t -> t

val to_string : ?max_elems:int -> t -> string
