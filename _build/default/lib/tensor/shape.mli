(** Tensor shapes with row-major linearization ("access: linearize" in the
    TCR format). A shape is the extent of each dimension, outermost first. *)

type t = int array

val of_list : int list -> t
val to_list : t -> int list

(** Number of dimensions. *)
val rank : t -> int

(** Product of extents. *)
val num_elements : t -> int

(** Raise [Invalid_argument] if any extent is non-positive. *)
val validate : t -> unit

val equal : t -> t -> bool

(** Row-major strides: the last dimension has stride 1. *)
val strides : t -> int array

(** Linear offset of a multi-index. Raises on rank mismatch or
    out-of-bounds components. *)
val linearize : t -> int array -> int

(** Inverse of {!linearize}. *)
val delinearize : t -> int -> int array

(** Iterate all multi-indices in row-major order. The callback receives a
    buffer that is reused between calls; copy it to keep it. *)
val iter : t -> (int array -> unit) -> unit

val to_string : t -> string
