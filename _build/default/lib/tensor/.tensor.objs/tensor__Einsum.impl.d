lib/tensor/einsum.ml: Array Dense Hashtbl List Printf Shape
