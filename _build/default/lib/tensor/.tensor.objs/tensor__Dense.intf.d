lib/tensor/dense.mli: Shape Util
