lib/tensor/einsum.mli: Dense
