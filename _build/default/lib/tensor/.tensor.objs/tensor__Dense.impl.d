lib/tensor/dense.ml: Array List Printf Shape String Util
