lib/tensor/shape.mli:
