lib/codegen/cuda.mli: Kernel Tcr
