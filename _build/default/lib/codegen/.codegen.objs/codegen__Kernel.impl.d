lib/codegen/kernel.ml: List Option Printf Tcr
