lib/codegen/driver.ml: Buffer C_emit Cuda List Printf String Tcr Tensor
