lib/codegen/driver.mli: Tcr
