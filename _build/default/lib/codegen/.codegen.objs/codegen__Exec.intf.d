lib/codegen/exec.mli: Kernel Tcr Tensor
