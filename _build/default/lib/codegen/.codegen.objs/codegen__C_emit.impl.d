lib/codegen/c_emit.ml: Buffer List Option Printf String Tcr
