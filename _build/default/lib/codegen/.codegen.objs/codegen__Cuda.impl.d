lib/codegen/cuda.ml: Buffer Kernel List Printf String Tcr Tensor
