lib/codegen/kernel.mli: Tcr
