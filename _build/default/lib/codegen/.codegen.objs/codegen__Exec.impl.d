lib/codegen/exec.ml: Array Kernel List Option Printf Tcr Tensor
