lib/codegen/c_emit.mli: Tcr
