(** Standalone CUDA driver generator: wraps a tuned translation unit in a
    complete program whose [main] fills the inputs, runs [reps] timed
    evaluations of the generated host wrapper (transfers included), checks
    the device result against a naive CPU reference and prints achieved
    GFlops - the artifact Orio's timing harness builds around each variant.
    The exit status reflects the correctness check. *)

val emit : ?reps:int -> ?seed:int -> Tcr.Ir.t -> Tcr.Space.point list -> string
