(** CUDA C emitter: prints the kernel IR in the style of Figure 2(d) - one
    [__global__] kernel per statement with thread/block index expressions,
    unrolled main loops plus epilogues and the scalar-replaced output - and
    a host wrapper that allocates device memory, copies inputs once, runs
    the kernel sequence with data resident on the GPU and copies outputs
    back. *)

(** C expression for the row-major linear offset of a reference; [subst]
    rewrites a serial loop variable (unrolled bodies print ["(n + 2)"]). *)
val offset_expr : Kernel.t -> ?subst:(string -> string) -> string list -> string

val emit_kernel : Kernel.t -> string
val emit_host : Tcr.Ir.t -> Kernel.t list -> string

(** Full translation unit for a tuned program. *)
val emit_program : ?scalar_replace:bool -> Tcr.Ir.t -> Tcr.Space.point list -> string
