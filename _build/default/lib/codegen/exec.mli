(** Interpreter for the kernel IR. Executes the same structure the CUDA
    emitter prints - including the unrolled main loop plus epilogue and the
    scalar-replaced output - so the test-suite can check that every
    transformation preserves semantics against the einsum oracle. *)

type env = (string * Tensor.Dense.t) list

(** Execute one kernel over its grid, accumulating into the output (which
    the generated CUDA also loads before accumulating). Raises
    [Invalid_argument] on unbound tensors or shape mismatches. *)
val run_kernel : Kernel.t -> env -> unit

(** Extend an input environment with zeroed temporaries and outputs. *)
val allocate_produced : Tcr.Ir.t -> env -> env

(** Lower each statement under its point and execute the kernels in order
    (data stays "device-resident" in the environment). Returns the extended
    environment; outputs are found under their names. *)
val run_program : ?scalar_replace:bool -> Tcr.Ir.t -> Tcr.Space.point list -> env -> env

(** Reference evaluation with the einsum oracle, accumulating when several
    statements target the same tensor. *)
val run_reference : Tcr.Ir.t -> env -> env
