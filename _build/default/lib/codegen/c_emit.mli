(** Sequential C and OpenACC emitters. The sequential form prints one loop
    nest per statement using the fusion-aware loop orders (the paper's CPU
    baseline); the OpenACC forms decorate the same nests with directives:
    {e naive} marks parallelism with no decomposition guidance, {e
    optimized} adds gang/vector clauses mirroring a Barracuda decomposition
    plus scalar replacement (Section VI-B). *)

type mode =
  | Sequential
  | Openmp  (** outermost parallel loop per statement (the paper's manual
                OpenMP baseline) *)
  | Acc_naive
  | Acc_optimized of Tcr.Space.decomposition list  (** one per statement *)

(** C expression for the row-major linear offset of a reference. *)
val offset_expr : Tcr.Ir.t -> string list -> string

val emit_program : ?mode:mode -> Tcr.Ir.t -> string
