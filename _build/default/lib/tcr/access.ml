(* Memory access-pattern analysis for tensor references (Section IV).

   A tensor reference is *contiguous* w.r.t. a loop order when its index
   list appears in the same relative order as the loops, i.e. the innermost
   loops touch the fastest-varying (row-major) dimensions: such references
   achieve global-memory coalescing when the innermost parallel loop becomes
   ThreadX. *)

(* Position of each index of [ref_indices] within [loop_order]. *)
let positions loop_order ref_indices =
  List.map
    (fun i ->
      let rec find pos = function
        | [] -> invalid_arg (Printf.sprintf "Access.positions: %s not in loop order" i)
        | x :: rest -> if x = i then pos else find (pos + 1) rest
      in
      find 0 loop_order)
    ref_indices

let rec is_sorted = function
  | a :: (b :: _ as rest) -> a <= b && is_sorted rest
  | _ -> true

(* [contiguous ~loop_order indices]: the reference's dimensions appear in
   loop order, so consecutive iterations of inner loops walk memory in
   order. *)
let contiguous ~loop_order ref_indices =
  match ref_indices with
  | [] | [ _ ] -> true
  | _ -> is_sorted (positions loop_order ref_indices)

(* The stride (in elements) that one step of loop [index] induces on a
   reference to a tensor with dims [ref_indices] and the given extents.
   Returns 0 when the loop does not appear in the reference. *)
let stride ~extents ~ref_indices index =
  let rec go = function
    | [] -> 0
    | d :: rest ->
      if d = index then
        List.fold_left
          (fun acc i ->
            match List.assoc_opt i extents with
            | Some e -> acc * e
            | None -> invalid_arg (Printf.sprintf "Access.stride: no extent for %s" i))
          1 rest
      else go rest
  in
  go ref_indices

(* Loop indices that access some factor (or the output) of [op] with unit
   stride: the candidates for coalesced ThreadX mapping. *)
let unit_stride_indices (op : Ir.op) =
  let refs = (op.out, op.out_indices) :: op.factors in
  refs
  |> List.filter_map (fun (_, indices) ->
         match List.rev indices with
         | [] -> None
         | last :: _ -> Some last)
  |> List.sort_uniq compare

(* Classify every tensor reference of [op] as contiguous or not under the
   op's loop order; "most tensors are not all contiguous" (Section IV). *)
let classify (op : Ir.op) =
  let refs = (op.out, op.out_indices) :: op.factors in
  List.map
    (fun (name, indices) -> (name, contiguous ~loop_order:op.loop_order indices))
    refs
