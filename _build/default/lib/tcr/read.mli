(** Parser for the textual TCR format printed by {!Ir.pp}. Loop orders are
    not part of the concrete syntax; they are reconstructed as output
    indices followed by reduction indices. *)

exception Error of string

val program : string -> Ir.t
