(* Minimal string splitting helper (the stdlib has no substring split). *)

(* [split_once s sep] splits [s] at the first occurrence of [sep]. *)
let split_once s sep =
  let n = String.length s and m = String.length sep in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = sep then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + m) (n - i - m))
