(** Memory access-pattern analysis for tensor references (Section IV). A
    reference is {e contiguous} w.r.t. a loop order when its index list
    appears in the same relative order as the loops, i.e. inner loops touch
    the fastest-varying (row-major) dimensions; such references coalesce
    when their innermost parallel loop becomes ThreadX. *)

(** Position of each reference index within the loop order. Raises if an
    index is not in the order. *)
val positions : string list -> string list -> int list

val contiguous : loop_order:string list -> string list -> bool

(** Elements skipped by one step of a loop in a reference; 0 when the loop
    does not appear in it. *)
val stride : extents:(string * int) list -> ref_indices:string list -> string -> int

(** Loop indices accessing some reference of the statement with unit
    stride: the coalesced ThreadX candidates. *)
val unit_stride_indices : Ir.op -> string list

(** Contiguity of every reference (output first) under the op's loop
    order. *)
val classify : Ir.op -> (string * bool) list
