(* Inter-statement dependence graph.

   Within one statement, the simplified dependence analysis of Section IV
   says reduction loops carry dependences and output loops are parallel.
   Across statements, a dependence exists when one statement reads another's
   output (flow), writes a tensor another reads (anti), or writes the same
   tensor (output dependence - accumulation order is associative but we keep
   the order for determinism).

   The graph yields the legal kernel order (the program order is validated
   against it) and the *waves* of mutually independent statements, which a
   streams-capable device could launch concurrently - the "surrounding
   computations" direction of Section VIII. *)

type t = {
  ir : Ir.t;
  (* edges.(i) lists the indices of ops that must precede op i *)
  preds : int list array;
}

let reads (op : Ir.op) = List.map fst op.factors

let build (ir : Ir.t) =
  let ops = Array.of_list ir.ops in
  let n = Array.length ops in
  let preds = Array.make n [] in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      let flow = List.mem ops.(j).out (reads ops.(i)) in
      let anti = List.mem ops.(i).out (reads ops.(j)) in
      let output = ops.(i).out = ops.(j).out in
      if flow || anti || output then preds.(i) <- j :: preds.(i)
    done
  done;
  { ir; preds }

let num_ops t = Array.length t.preds

(* Depth of each op in the DAG: 0 for sources. *)
let levels t =
  let n = num_ops t in
  let level = Array.make n (-1) in
  let rec depth i =
    if level.(i) >= 0 then level.(i)
    else begin
      let d =
        List.fold_left (fun acc j -> max acc (1 + depth j)) 0 t.preds.(i)
      in
      level.(i) <- d;
      d
    end
  in
  for i = 0 to n - 1 do
    ignore (depth i)
  done;
  level

(* Waves of statements with equal DAG depth, in program order: statements
   in one wave have no path between them, so a streams-capable device could
   launch them concurrently. *)
let waves t =
  let level = levels t in
  let max_level = Array.fold_left max 0 level in
  List.init (max_level + 1) (fun w ->
      List.concat (List.mapi (fun i op -> if level.(i) = w then [ op ] else []) t.ir.ops))

(* Maximum number of concurrently launchable kernels. *)
let max_wave_width t =
  List.fold_left (fun acc w -> max acc (List.length w)) 0 (waves t)

(* True when neither statement transitively depends on the other. *)
let independent t i j =
  let rec reaches src dst =
    src = dst || List.exists (fun p -> reaches src p) t.preds.(dst)
  in
  i <> j && (not (reaches i j)) && not (reaches j i)
