(* Search-space pruning - the extension the paper's conclusion proposes
   ("we plan to extend this work to further prune the autotuning search
   space once we develop a better understanding of where pruning does not
   impact quality of results").

   A [policy] is a set of static filters over search points, each derived
   from a GPU performance heuristic the decision algorithm already has the
   analysis for:
   - blocks should be wide enough to fill warps and narrow enough to allow
     multiple blocks per SM;
   - the grid should cover the SMs;
   - the output store should coalesce (ThreadX unit-stride on the output);
   - unroll factors that do not divide the loop extent leave epilogues. *)

type policy = {
  min_threads_per_block : int;
  max_threads_per_block : int;
  min_blocks : int;
  require_coalesced_output : bool;
  dividing_unrolls_only : bool;
}

let default =
  {
    min_threads_per_block = 32;
    max_threads_per_block = 512;
    min_blocks = 8;
    require_coalesced_output = true;
    dividing_unrolls_only = true;
  }

(* A permissive policy that only rejects plainly wasteful points. *)
let conservative =
  {
    min_threads_per_block = 8;
    max_threads_per_block = 1024;
    min_blocks = 2;
    require_coalesced_output = false;
    dividing_unrolls_only = false;
  }

let threads_per_block (s : Space.t) (d : Space.decomposition) =
  Ir.extent s.ir d.tx * match d.ty with None -> 1 | Some i -> Ir.extent s.ir i

let num_blocks (s : Space.t) (d : Space.decomposition) =
  Ir.extent s.ir d.bx * match d.by with None -> 1 | Some i -> Ir.extent s.ir i

(* ThreadX must be the innermost dimension of the output reference. *)
let output_coalesced (s : Space.t) (d : Space.decomposition) =
  match List.rev s.op.out_indices with
  | innermost :: _ -> d.tx = innermost
  | [] -> true

let point_ok policy (s : Space.t) (p : Space.point) =
  let d = p.decomp in
  let tpb = threads_per_block s d in
  tpb >= policy.min_threads_per_block
  && tpb <= policy.max_threads_per_block
  && num_blocks s d >= policy.min_blocks
  && ((not policy.require_coalesced_output) || output_coalesced s d)
  && ((not policy.dividing_unrolls_only)
     || List.for_all (fun (loop, u) -> u = 1 || Ir.extent s.ir loop mod u = 0) p.unrolls)

(* Pruned view of one op's space. *)
let enumerate policy s = List.filter (point_ok policy s) (Space.enumerate s)

let count policy s = List.length (enumerate policy s)

(* Fraction of the space a policy removes; the ablation benchmark reports
   this together with the best-found quality. *)
let pruned_fraction policy s =
  let total = Space.count s in
  if total = 0 then 0.0
  else 1.0 -. (float_of_int (count policy s) /. float_of_int total)
