(* Tensor Contraction Representation: the intermediate form of Figure 2(b).

   A program is a list of accumulation statements over named index
   variables, together with the extent of every index and the declaration of
   every tensor (inputs, temporaries, outputs). Arrays are dense row-major
   ("access: linearize"). Each statement becomes one GPU kernel. *)

type role = Input | Temp | Output

type var = {
  name : string;
  dims : string list;  (* index names, outermost first; row-major layout *)
  role : role;
}

type op = {
  out : string;
  out_indices : string list;
  factors : (string * string list) list;
  loop_order : string list;  (* full iteration order, outermost first *)
}

type t = {
  label : string;
  extents : (string * int) list;
  vars : var list;
  ops : op list;
}

let extent t name =
  match List.assoc_opt name t.extents with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Ir.extent: unknown index %s" name)

let var t name =
  match List.find_opt (fun v -> v.name = name) t.vars with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Ir.var: unknown tensor %s" name)

let var_shape t name =
  Tensor.Shape.of_list (List.map (extent t) (var t name).dims)

let iteration_indices (op : op) =
  List.sort_uniq compare (op.out_indices @ List.concat_map snd op.factors)

(* Indices summed over by [op]: present in a factor but not in the output. *)
let reduction_indices (op : op) =
  List.filter (fun i -> not (List.mem i op.out_indices)) (iteration_indices op)

let inputs t = List.filter (fun v -> v.role = Input) t.vars
let temps t = List.filter (fun v -> v.role = Temp) t.vars
let outputs t = List.filter (fun v -> v.role = Output) t.vars

(* Multiply-add flops of one op / the whole program. *)
let op_flops t op =
  let space =
    List.fold_left (fun acc i -> acc * extent t i) 1 (iteration_indices op)
  in
  space * 2

let flops t = List.fold_left (fun acc op -> acc + op_flops t op) 0 t.ops

(* Bytes of each tensor (doubles). *)
let var_bytes t name = 8 * Tensor.Shape.num_elements (var_shape t name)

(* ------------------------------------------------------------------ *)
(* Construction from an OCTOPI variant *)

let of_variant ~label (contraction : Octopi.Contraction.t) (v : Octopi.Variants.variant) =
  let ops =
    List.map2
      (fun (op : Octopi.Plan.op) loop_order ->
        { out = op.out; out_indices = op.out_indices; factors = op.factors; loop_order })
      v.ops v.schedule.loop_orders
  in
  let produced = List.map (fun op -> op.out) ops in
  let var_tbl : (string, var) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let declare name dims role =
    if not (Hashtbl.mem var_tbl name) then begin
      Hashtbl.add var_tbl name { name; dims; role };
      order := name :: !order
    end
  in
  List.iter
    (fun op ->
      List.iter
        (fun (name, dims) ->
          if not (List.mem name produced) then declare name dims Input)
        op.factors)
    ops;
  List.iter
    (fun op ->
      let role = if op.out = contraction.output then Output else Temp in
      declare op.out op.out_indices role)
    ops;
  let vars = List.rev_map (Hashtbl.find var_tbl) !order in
  { label; extents = contraction.extents; vars; ops }

(* Validation: every index used has an extent, factor dims match
   declarations, ops are in producer-before-consumer order. *)
let validate t =
  let defined = ref [] in
  List.iter (fun (v : var) -> if v.role = Input then defined := v.name :: !defined) t.vars;
  List.iter
    (fun op ->
      List.iter
        (fun i ->
          if not (List.mem_assoc i t.extents) then
            failwith (Printf.sprintf "Ir.validate: no extent for %s" i))
        (iteration_indices op);
      List.iter
        (fun (name, dims) ->
          let decl = var t name in
          if List.length decl.dims <> List.length dims then
            failwith (Printf.sprintf "Ir.validate: rank mismatch for %s" name);
          if not (List.mem name !defined) then
            failwith (Printf.sprintf "Ir.validate: %s read before being produced" name))
        op.factors;
      let order_set = List.sort compare op.loop_order in
      if order_set <> iteration_indices op then
        failwith (Printf.sprintf "Ir.validate: loop order of %s is not a permutation" op.out);
      defined := op.out :: !defined)
    t.ops;
  List.iter
    (fun (v : var) ->
      if v.role = Output && not (List.mem v.name !defined) then
        failwith (Printf.sprintf "Ir.validate: output %s never produced" v.name))
    t.vars

(* ------------------------------------------------------------------ *)
(* Printing, Figure 2(b) style *)

let pp_indices fmt indices =
  Format.fprintf fmt "(%s)" (String.concat "," indices)

let pp_op fmt op =
  Format.fprintf fmt "%s:%a += %s" op.out pp_indices op.out_indices
    (String.concat "*"
       (List.map
          (fun (name, idx) -> Format.asprintf "%s:%a" name pp_indices idx)
          op.factors))

let pp fmt t =
  Format.fprintf fmt "%s@\naccess: linearize@\ndefine:@\n" t.label;
  List.iter (fun (i, e) -> Format.fprintf fmt "%s = %d@\n" i e) t.extents;
  Format.fprintf fmt "variables:@\n";
  List.iter (fun (v : var) -> Format.fprintf fmt "%s:%a@\n" v.name pp_indices v.dims) t.vars;
  Format.fprintf fmt "operations:@\n";
  List.iter (fun op -> Format.fprintf fmt "%a@\n" pp_op op) t.ops

let to_string t = Format.asprintf "%a" pp t
