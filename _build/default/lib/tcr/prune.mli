(** Search-space pruning - the extension proposed in the paper's conclusion
    ("further prune the autotuning search space ... where pruning does not
    impact quality of results"). A policy is a set of static filters over
    search points derived from GPU heuristics; the ablation benchmark shows
    the default policy removing ~80% of the space at under 2% quality
    loss. *)

type policy = {
  min_threads_per_block : int;
  max_threads_per_block : int;
  min_blocks : int;
  require_coalesced_output : bool;
      (** ThreadX must be the innermost output dimension *)
  dividing_unrolls_only : bool;
      (** reject unroll factors that leave epilogues *)
}

(** 32..512 threads, >= 8 blocks, coalesced stores, dividing unrolls. *)
val default : policy

(** Only rejects plainly wasteful points. *)
val conservative : policy

val threads_per_block : Space.t -> Space.decomposition -> int
val num_blocks : Space.t -> Space.decomposition -> int
val output_coalesced : Space.t -> Space.decomposition -> bool
val point_ok : policy -> Space.t -> Space.point -> bool

(** Pruned view of one statement's space. *)
val enumerate : policy -> Space.t -> Space.point list

val count : policy -> Space.t -> int

(** Fraction of the space the policy removes, in [0, 1]. *)
val pruned_fraction : policy -> Space.t -> float
