(** Cross-statement common-subexpression elimination: the operation-count
    optimization of the TCE lineage (Hartono et al., cited in the paper's
    Section VII). Temporaries produced by structurally identical statements
    (same factors, same index layouts, single writer) are computed once and
    shared; accumulating temporaries and program outputs are left alone.
    Matching is by literal index names. *)

type stats = {
  eliminated_ops : int;
  saved_flops : int;
}

(** Structural key of a statement, ignoring the output's name. *)
val op_key : Ir.op -> string

(** Returns the optimized program (validated) and what was saved. *)
val optimize : Ir.t -> Ir.t * stats
