(* The Orio / CUDA-CHiLL annotation layer of Figure 2(c).

   In the paper, TCR does not call the transformation framework directly:
   it emits *annotations* - a [def performance_params] block declaring the
   tunable parameters and their domains, and a CHiLL recipe skeleton
   referencing them - and Orio drives the search by instantiating the
   parameters. This module renders both:

   - [annotations]: the parameterized search-space declaration for a whole
     program (one PERMUTE group and unroll-factor params per kernel);
   - [recipe]: a concrete transformation recipe for chosen points, the form
     CUDA-CHiLL consumes (cuda(...) / registers(...) / unroll(...) /
     permute(...));
   - [parse_recipe]: read a concrete recipe back into search points, so
     recipes are a round-trippable interchange format. *)

let quote s = "'" ^ s ^ "'"

let param_name k suffix = Printf.sprintf "PERMUTE_%d_%s" k suffix

let uf_name k loop = Printf.sprintf "UF_%d_%s" k loop

let ro_name k = Printf.sprintf "RO_%d" k

(* ------------------------------------------------------------------ *)
(* Search-space declaration *)

let param_line name values =
  Printf.sprintf "  param %s[] = [%s];" name (String.concat "," values)

let kernel_params k (space : Space.t) =
  let c = space.candidates in
  let lines =
    [
      param_line (param_name k "TX") (List.map quote c.tx);
      param_line (param_name k "TY") (List.map quote c.ty);
      param_line (param_name k "BX") (List.map quote c.bx);
      param_line (param_name k "BY") (List.map quote c.by);
    ]
    @ List.map
        (fun (loop, factors) ->
          param_line (uf_name k loop) (List.map string_of_int factors))
        c.unroll_loops
    @
    match Space.red_orders space with
    | [] | [ _ ] -> []
    | orders ->
      [ param_line (ro_name k) (List.map (fun o -> quote (String.concat "." o)) orders) ]
  in
  String.concat "\n" lines

(* The CHiLL skeleton of one kernel, with parameters in place of values. *)
let kernel_skeleton k (space : Space.t) =
  let out = space.op.out in
  let reductions = Ir.reduction_indices space.op in
  let lines =
    [
      Printf.sprintf "  cuda(%d,block={%s,%s},thread={%s,%s})" k (param_name k "BX")
        (param_name k "BY") (param_name k "TX") (param_name k "TY");
      Printf.sprintf "  registers(%d,%s)" k
        (String.concat ","
           (List.map (fun s -> "\"" ^ s ^ "\"") (reductions @ [ out ])));
    ]
    @ List.map
        (fun (loop, _) -> Printf.sprintf "  unroll(%d,\"%s\",%s)" k loop (uf_name k loop))
        space.candidates.unroll_loops
    @
    match Space.red_orders space with
    | [] | [ _ ] -> []
    | _ -> [ Printf.sprintf "  permute(%d,%s)" k (ro_name k) ]
  in
  String.concat "\n" lines

let annotations (ps : Space.program_space) =
  let b = Buffer.create 1024 in
  Buffer.add_string b "def performance_params {\n";
  List.iteri
    (fun i space ->
      Buffer.add_string b (kernel_params (i + 1) space);
      Buffer.add_char b '\n')
    ps.op_spaces;
  Buffer.add_string b "}\n/*@ begin CHiLL (\n";
  List.iteri
    (fun i space ->
      Buffer.add_string b (kernel_skeleton (i + 1) space);
      Buffer.add_char b '\n')
    ps.op_spaces;
  Buffer.add_string b ") @*/\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Concrete recipes *)

let point_recipe k (point : Space.point) =
  let d = point.decomp in
  let opt = function None -> "1" | Some i -> i in
  let lines =
    [
      Printf.sprintf "cuda(%d,block={%s,%s},thread={%s,%s})" k d.bx (opt d.by) d.tx
        (opt d.ty);
    ]
    @ List.map
        (fun (loop, u) -> Printf.sprintf "unroll(%d,\"%s\",%d)" k loop u)
        point.unrolls
    @
    match point.red_order with
    | [] | [ _ ] -> []
    | order -> [ Printf.sprintf "permute(%d,[%s])" k (String.concat "," order) ]
  in
  String.concat "\n" lines

let recipe (points : Space.point list) =
  String.concat "\n" (List.mapi (fun i p -> point_recipe (i + 1) p) points)

(* ------------------------------------------------------------------ *)
(* Recipe parsing *)

exception Parse_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* "cuda(2,block={e,1},thread={k,j})" etc. - a tiny regex-free scanner. *)
let split_args s =
  (* split on commas not inside braces or brackets *)
  let out = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '{' | '[' ->
        incr depth;
        Buffer.add_char buf c
      | '}' | ']' ->
        decr depth;
        Buffer.add_char buf c
      | ',' when !depth = 0 ->
        out := Buffer.contents buf :: !out;
        Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  out := Buffer.contents buf :: !out;
  List.rev_map String.trim !out

let strip_wrap s open_c close_c =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && s.[0] = open_c && s.[n - 1] = close_c then String.sub s 1 (n - 2)
  else err "expected %c...%c in %S" open_c close_c s

let parse_call line =
  match String.index_opt line '(' with
  | None -> err "malformed recipe line %S" line
  | Some i ->
    let name = String.trim (String.sub line 0 i) in
    let rest = String.trim (String.sub line i (String.length line - i)) in
    let body = strip_wrap rest '(' ')' in
    (name, split_args body)

let unquote s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && ((s.[0] = '"' && s.[n - 1] = '"') || (s.[0] = '\'' && s.[n - 1] = '\'')) then
    String.sub s 1 (n - 2)
  else s

let lift = function "1" -> None | i -> Some i

(* Parse a concrete recipe back into per-kernel points. The program's
   spaces determine how many kernels to expect. *)
let parse_recipe (ps : Space.program_space) text =
  let n = List.length ps.op_spaces in
  let decomps = Array.make n None in
  let unrolls = Array.make n [] in
  let orders = Array.make n [] in
  let kernel_index args =
    match args with
    | k :: _ -> (
      match int_of_string_opt (String.trim k) with
      | Some k when k >= 1 && k <= n -> k - 1
      | _ -> err "bad kernel index in recipe")
    | [] -> err "missing kernel index"
  in
  String.split_on_char '\n' text
  |> List.map String.trim
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         let name, args = parse_call line in
         let k = kernel_index args in
         match (name, args) with
         | "cuda", [ _; block; thread ] ->
           let pair prefix s =
             let body =
               match Str_split.split_once s "=" with
               | Some (key, v) when String.trim key = prefix -> strip_wrap v '{' '}'
               | _ -> err "expected %s={...} in %S" prefix s
             in
             match split_args body with
             | [ a; b ] -> (String.trim a, String.trim b)
             | [ a ] -> (String.trim a, "1")
             | _ -> err "expected two components in %S" s
           in
           let bx, by = pair "block" block in
           let tx, ty = pair "thread" thread in
           decomps.(k) <- Some { Space.tx; ty = lift ty; bx; by = lift by }
         | "unroll", [ _; loop; factor ] -> (
           match int_of_string_opt (String.trim factor) with
           | Some u -> unrolls.(k) <- unrolls.(k) @ [ (unquote loop, u) ]
           | None -> err "bad unroll factor %S" factor)
         | "permute", [ _; order ] ->
           let body = strip_wrap order '[' ']' in
           orders.(k) <- List.map String.trim (String.split_on_char ',' body)
         | "registers", _ -> ()  (* scalar replacement is always on *)
         | other, _ -> err "unknown recipe directive %S" other);
  List.mapi
    (fun k (space : Space.t) ->
      let decomp =
        match decomps.(k) with
        | Some d -> d
        | None -> err "recipe lacks a cuda(...) line for kernel %d" (k + 1)
      in
      (* complete missing unrolls with factor 1, in candidate order *)
      let unrolls =
        List.map
          (fun (loop, _) ->
            (loop, match List.assoc_opt loop unrolls.(k) with Some u -> u | None -> 1))
          space.candidates.unroll_loops
      in
      { Space.decomp; unrolls; red_order = orders.(k) })
    ps.op_spaces
