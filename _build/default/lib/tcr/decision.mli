(** The GPU decision algorithm (Section IV): derive, for one TCR statement,
    the candidate thread/block decompositions and unroll factors that form
    the autotuning search space.

    Rules reproduced from the paper:
    - ThreadX candidates: parallel loops with unit stride on some tensor of
      the statement (coalescing);
    - ThreadY/BlockX/BlockY candidates: parallel loops from the contiguous
      tensors innermost-to-outermost, then (if fewer than four) from the
      non-contiguous tensors outermost-to-innermost; ThreadY and BlockY may
      be "1" (one-dimensional block/grid);
    - the remaining inner loops are unroll candidates with small factors;
    - scalar replacement of the output is always applied. *)

type candidates = {
  tx : string list;
  ty : string list;  (** includes "1" *)
  bx : string list;
  by : string list;  (** includes "1" *)
  unroll_loops : (string * int list) list;  (** innermost serial loops *)
  red_orders : string list list;
      (** candidate permutations of the reduction loops *)
}

(** The literal "1" used for one-dimensional choices. *)
val one : string

(** Parallel loops of a statement (its output indices). *)
val parallel_indices : Ir.op -> string list

(** Ordered pool used for ThreadY/BlockX/BlockY per the two selection
    rules. *)
val decomposition_pool : Ir.op -> string list

(** At most this many inner loops receive unroll parameters. *)
val max_unrollable : int

(** Unroll factors are capped at [min extent max_unroll_factor]. *)
val max_unroll_factor : int

(** Up to this many reduction loops are fully permuted; more fall back to
    rotations. *)
val max_permuted_reductions : int

val reduction_orders : Ir.op -> string list list

(** [derive ?unroll_factors ir op]; [unroll_factors] overrides the factor
    domain of every unrollable loop. *)
val derive : ?unroll_factors:int list -> Ir.t -> Ir.op -> candidates
