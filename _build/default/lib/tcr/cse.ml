(* Cross-statement common-subexpression elimination, the operation-count
   optimization of the TCE lineage the paper builds on (its Section VII
   cites Hartono et al., "Identifying cost-effective common subexpressions
   to reduce operation count in tensor contraction evaluations").

   Two statements of a merged program compute the same subexpression when
   they produce temporaries from identical factor lists (same tensors,
   same index layout) into outputs with the same index layout. The second
   computation is eliminated and its consumers are redirected to the first
   temporary. Matching is by literal index names (renaming-equivalence is
   out of scope, as in the simple mode of the cited work). *)

type stats = {
  eliminated_ops : int;
  saved_flops : int;
}

(* Structural key of an op, ignoring the output's name. *)
let op_key (op : Ir.op) =
  let factor (name, dims) = Printf.sprintf "%s:(%s)" name (String.concat "," dims) in
  Printf.sprintf "(%s)<=%s"
    (String.concat "," op.out_indices)
    (String.concat "*" (List.map factor op.factors))

let is_temp (ir : Ir.t) name =
  match List.find_opt (fun (v : Ir.var) -> v.name = name) ir.vars with
  | Some v -> v.role = Ir.Temp
  | None -> false

(* How many ops write into [name]: accumulating temporaries (several
   statements summing into one tensor) must not be deduplicated. *)
let writer_count (ir : Ir.t) name =
  List.length (List.filter (fun (op : Ir.op) -> op.out = name) ir.ops)

let optimize (ir : Ir.t) =
  let seen : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let renames : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let canonical name =
    match Hashtbl.find_opt renames name with Some n -> n | None -> name
  in
  let kept = ref [] in
  let eliminated = ref 0 in
  let saved = ref 0 in
  List.iter
    (fun (op : Ir.op) ->
      let op =
        { op with Ir.factors = List.map (fun (n, d) -> (canonical n, d)) op.factors }
      in
      let dedupable = is_temp ir op.out && writer_count ir op.out = 1 in
      let key = op_key op in
      match (dedupable, Hashtbl.find_opt seen key) with
      | true, Some original ->
        Hashtbl.add renames op.out original;
        incr eliminated;
        saved := !saved + Ir.op_flops ir op
      | true, None ->
        Hashtbl.add seen key op.out;
        kept := op :: !kept
      | false, _ -> kept := op :: !kept)
    ir.ops;
  let ops = List.rev !kept in
  let live_temps =
    List.sort_uniq compare (List.map (fun (op : Ir.op) -> op.out) ops)
  in
  let vars =
    List.filter
      (fun (v : Ir.var) -> v.role <> Ir.Temp || List.mem v.name live_temps)
      ir.vars
  in
  let optimized = { ir with Ir.ops; vars } in
  Ir.validate optimized;
  (optimized, { eliminated_ops = !eliminated; saved_flops = !saved })
