(** Tensor Contraction Representation: the intermediate form of
    Figure 2(b). A program is a list of accumulation statements over named
    index variables, plus the extent of every index and the declaration of
    every tensor. Arrays are dense row-major ("access: linearize"); each
    statement becomes one GPU kernel. Several statements may accumulate
    into the same output (as local_grad3t does). *)

type role = Input | Temp | Output

type var = {
  name : string;
  dims : string list;  (** index names, outermost first; row-major layout *)
  role : role;
}

type op = {
  out : string;
  out_indices : string list;
  factors : (string * string list) list;
  loop_order : string list;  (** full iteration order, outermost first *)
}

type t = {
  label : string;
  extents : (string * int) list;
  vars : var list;
  ops : op list;
}

(** Raise [Invalid_argument] for unknown names. *)
val extent : t -> string -> int

val var : t -> string -> var
val var_shape : t -> string -> Tensor.Shape.t

(** Sorted distinct indices of one statement. *)
val iteration_indices : op -> string list

(** Indices summed over: present in a factor but not in the output. These
    are exactly the loops that carry a dependence (Section IV); all other
    loops are parallel. *)
val reduction_indices : op -> string list

val inputs : t -> var list
val temps : t -> var list
val outputs : t -> var list

(** Multiply-add flops (2 per point of the iteration space). *)
val op_flops : t -> op -> int

val flops : t -> int

(** Size in bytes (doubles). *)
val var_bytes : t -> string -> int

(** Build a program from a chosen OCTOPI variant. *)
val of_variant : label:string -> Octopi.Contraction.t -> Octopi.Variants.variant -> t

(** Check extents, declarations, producer-before-consumer ordering and that
    loop orders are permutations; raises [Failure] with a message. *)
val validate : t -> unit

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit

(** The concrete Figure 2(b) format; {!Read.program} parses it back. *)
val to_string : t -> string
