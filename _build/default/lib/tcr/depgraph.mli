(** Inter-statement dependence graph: flow, anti and output dependences
    between the statements of a TCR program. Yields the legal kernel order
    and the {e waves} of mutually independent statements a streams-capable
    device could launch concurrently (the Section VIII "surrounding
    computations" direction). *)

type t

val build : Ir.t -> t
val num_ops : t -> int

(** DAG depth of each statement (0 for sources), indexed in program
    order. *)
val levels : t -> int array

(** Statements grouped by depth, in execution order; statements within a
    wave have no dependence path between them. *)
val waves : t -> Ir.op list list

val max_wave_width : t -> int

(** [independent t i j]: neither statement transitively depends on the
    other (indices in program order). *)
val independent : t -> int -> int -> bool
