lib/tcr/space.mli: Decision Ir Util
