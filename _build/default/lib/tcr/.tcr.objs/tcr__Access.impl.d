lib/tcr/access.ml: Ir List Printf
