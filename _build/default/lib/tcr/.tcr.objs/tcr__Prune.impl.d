lib/tcr/prune.ml: Ir List Space
