lib/tcr/read.ml: Ir List Printf Str_split String
