lib/tcr/prune.mli: Space
