lib/tcr/orio.ml: Array Buffer Ir List Printf Space Str_split String
