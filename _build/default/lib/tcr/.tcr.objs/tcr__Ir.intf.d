lib/tcr/ir.mli: Format Octopi Tensor
