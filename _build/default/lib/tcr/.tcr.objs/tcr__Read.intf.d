lib/tcr/read.mli: Ir
