lib/tcr/space.ml: Array Decision Ir List Option Printf String Util
