lib/tcr/access.mli: Ir
