lib/tcr/orio.mli: Space
