lib/tcr/cse.ml: Hashtbl Ir List Printf String
