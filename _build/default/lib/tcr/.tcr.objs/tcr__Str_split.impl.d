lib/tcr/str_split.ml: String
