lib/tcr/depgraph.mli: Ir
