lib/tcr/decision.ml: Access Ir List Util
