lib/tcr/cse.mli: Ir
