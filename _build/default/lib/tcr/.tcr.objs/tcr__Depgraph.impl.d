lib/tcr/depgraph.ml: Array Ir List
