lib/tcr/ir.ml: Format Hashtbl List Octopi Printf String Tensor
