lib/tcr/decision.mli: Ir
