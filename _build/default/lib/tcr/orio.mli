(** The Orio / CUDA-CHiLL annotation layer of Figure 2(c). TCR communicates
    with the transformation framework through text: a
    [def performance_params] block declaring the tunable parameters and
    their domains, a CHiLL skeleton referencing them, and - once the search
    fixes values - a concrete transformation recipe. Recipes round-trip
    through {!parse_recipe}. *)

exception Parse_error of string

(** The parameterized search-space declaration plus CHiLL skeleton for a
    whole program (one PERMUTE group, unroll and loop-order params per
    kernel), in the style of Figure 2(c). *)
val annotations : Space.program_space -> string

(** A concrete recipe for one kernel at position [k] (1-based). *)
val point_recipe : int -> Space.point -> string

(** Concrete recipes for a whole program, one kernel per statement. *)
val recipe : Space.point list -> string

(** Parse a concrete recipe back into per-kernel points; missing unrolls
    default to 1, [registers] lines are accepted and ignored (scalar
    replacement is always applied). Raises {!Parse_error} on malformed
    input or a missing [cuda] line. *)
val parse_recipe : Space.program_space -> string -> Space.point list
