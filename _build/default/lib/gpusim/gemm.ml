(* Performance model of a vendor DGEMM library (cuBLAS-class).

   The paper's motivation: "mapping the problem to use highly-tuned linear
   algebra libraries will not achieve high performance as these libraries
   are optimized for large matrices". This model captures why: a library
   GEMM reaches a high fraction of peak only when the M x N tile grid
   fills the SMs and K amortizes the tile setup; small-tensor contractions
   leave most of the chip idle. *)

(* Library kernels tile the output; each SM wants several tiles in flight. *)
let tile_m = 64
let tile_n = 64

(* Fraction of DP peak a well-fed library GEMM sustains. *)
let library_efficiency = 0.85

(* K iterations needed to amortize a tile's prologue/epilogue. *)
let k_half = 32.0

type analysis = {
  m : int;
  n : int;
  k : int;
  batch : int;
  flops : int;
  time_s : float;
  utilization : float;  (* tile grid vs chip *)
  k_efficiency : float;
}

let analyze (arch : Arch.t) ~m ~n ~k ~batch =
  if m <= 0 || n <= 0 || k <= 0 || batch <= 0 then
    invalid_arg "Gemm.analyze: non-positive dimension";
  let flops = 2 * m * n * k * batch in
  let tiles = ((m + tile_m - 1) / tile_m) * ((n + tile_n - 1) / tile_n) * batch in
  (* several concurrent tiles per SM hide latency *)
  let slots = arch.sm_count * 2 in
  let waves = (tiles + slots - 1) / slots in
  let utilization = float_of_int tiles /. float_of_int (waves * slots) in
  let k_efficiency = float_of_int k /. (float_of_int k +. k_half) in
  let t_compute =
    float_of_int flops
    /. (Arch.dp_peak_gflops arch *. 1e9 *. library_efficiency *. utilization
        *. k_efficiency)
  in
  (* streaming floor: every operand moves at least once *)
  let bytes = 8 * batch * ((m * k) + (k * n) + (2 * m * n)) in
  let t_mem = float_of_int bytes /. (arch.mem_bw_gbs *. 1e9 *. arch.bw_efficiency) in
  let time_s = (arch.kernel_launch_us *. 1e-6) +. max t_compute t_mem in
  { m; n; k; batch; flops; time_s; utilization; k_efficiency }

let gflops a = float_of_int a.flops /. a.time_s /. 1e9

(* An out-of-place tensor transpose done by a library copy kernel: two
   passes over the data at a transpose-typical fraction of bandwidth. *)
let transpose_time (arch : Arch.t) ~bytes =
  (arch.kernel_launch_us *. 1e-6)
  +. (2.0 *. float_of_int bytes /. (arch.mem_bw_gbs *. 1e9 *. arch.bw_efficiency *. 0.7))
