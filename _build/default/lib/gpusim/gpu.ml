(* Device-level simulation of a tuned TCR program: functional execution of
   the kernel IR on host arrays (bit-exact what the emitted CUDA computes)
   plus the analytic time estimate.

   [measure] is what the autotuner calls: it skips functional execution
   (variants are validated separately by the test-suite) and returns the
   deterministic simulated time of one program evaluation, including kernel
   launches, with transfers reported separately. A structural-hash noise of
   up to +/-2% models codegen and run-to-run variation, so that equal-flop
   variants differ slightly, as the paper observes (Section II-B). *)

type report = {
  arch : Arch.t;
  kernels : Perf.kernel_report list;
  transfer : Transfer.t;
  kernel_time_s : float;   (* sum of kernel times, one evaluation *)
  flops : int;
}

let noise_amplitude = 0.03

(* Deterministic pseudo-noise in [-1, 1] from a structural key. *)
let noise_of_key key =
  let h = Hashtbl.hash key in
  let u = float_of_int (h land 0xFFFFF) /. float_of_int 0xFFFFF in
  (2.0 *. u) -. 1.0

let kernel_key (arch : Arch.t) (k : Codegen.Kernel.t) =
  (arch.name, k.name, k.decomp, List.map (fun (l : Codegen.Kernel.loop) -> (l.index, l.unroll)) k.thread_loops)

let measure_kernel (arch : Arch.t) (k : Codegen.Kernel.t) =
  let r = Perf.analyze_kernel arch k in
  let factor = 1.0 +. (noise_amplitude *. noise_of_key (kernel_key arch k)) in
  { r with time_s = r.time_s *. factor }

let measure ?scalar_replace (arch : Arch.t) (ir : Tcr.Ir.t) (points : Tcr.Space.point list) =
  let kernels = Codegen.Kernel.lower_program ?scalar_replace ir points in
  let reports = List.map (measure_kernel arch) kernels in
  {
    arch;
    kernels = reports;
    transfer = Transfer.analyze arch ir;
    kernel_time_s = List.fold_left (fun acc r -> acc +. r.Perf.time_s) 0.0 reports;
    flops = List.fold_left (fun acc r -> acc + r.Perf.flops) 0 reports;
  }

(* Functional execution on the simulated device, for validation: returns the
   environment extended with temporaries and outputs. *)
let execute (ir : Tcr.Ir.t) (points : Tcr.Space.point list) inputs =
  Codegen.Exec.run_program ir points inputs

(* Time of [reps] evaluations with device-resident data: transfers happen
   once, kernels run every repetition (the paper's measurement loop). *)
let time_with_reps report ~reps =
  report.transfer.Transfer.time_s
  +. (float_of_int reps *. report.kernel_time_s)

(* Average time of one evaluation under [reps]-fold amortized transfers. *)
let amortized_time report ~reps =
  time_with_reps report ~reps /. float_of_int reps

let gflops report ~reps =
  float_of_int report.flops /. amortized_time report ~reps /. 1e9

(* Concurrent-kernel (streams) timing: statements with no dependence path
   between them (same wave of the inter-statement DAG) launch together, so
   a wave pays one launch latency while the bodies still share the chip
   (work conservation: body times add). An extension experiment for the
   paper's Section VIII "surrounding computations" direction. *)
let measure_streams ?scalar_replace (arch : Arch.t) (ir : Tcr.Ir.t)
    (points : Tcr.Space.point list) =
  let kernels = Codegen.Kernel.lower_program ?scalar_replace ir points in
  let reports = List.map (measure_kernel arch) kernels in
  let graph = Tcr.Depgraph.build ir in
  let level = Tcr.Depgraph.levels graph in
  let max_level = Array.fold_left max 0 level in
  let wave_time w =
    let members =
      List.filteri (fun i _ -> level.(i) = w) reports
    in
    let launch =
      List.fold_left (fun acc (r : Perf.kernel_report) -> max acc r.t_launch) 0.0 members
    in
    let bodies =
      List.fold_left
        (fun acc (r : Perf.kernel_report) -> acc +. (r.time_s -. r.t_launch))
        0.0 members
    in
    launch +. bodies
  in
  let kernel_time_s =
    List.fold_left ( +. ) 0.0 (List.init (max_level + 1) wave_time)
  in
  {
    arch;
    kernels = reports;
    transfer = Transfer.analyze arch ir;
    kernel_time_s;
    flops = List.fold_left (fun acc (r : Perf.kernel_report) -> acc + r.Perf.flops) 0 reports;
  }
