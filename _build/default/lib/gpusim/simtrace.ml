(* Trace-driven cross-check of the analytic memory model.

   Generates the actual address stream one thread block issues for a given
   array reference - iterating the serial loops in kernel order and the
   block's lanes in warp order, exactly as the interpreter executes - and
   replays it through an LRU cache of the architecture's L1 geometry. The
   test-suite compares the measured hit rate against [Perf]'s analytic
   classification (footprint-resident references must show high reuse; the
   streamed output must show none). *)

let line_bytes = 128

(* Address (in bytes) of one reference for given lane/serial values. *)
let address (k : Codegen.Kernel.t) dims ~tx ~ty ~serial_vals =
  let d = k.decomp in
  let value idx =
    if idx = d.tx then tx
    else if Some idx = d.ty then ty
    else if idx = d.bx then 0
    else if Some idx = d.by then 0
    else
      match List.assoc_opt idx serial_vals with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "Simtrace.address: no value for %s" idx)
  in
  let extents = List.map (Codegen.Kernel.extent k) dims in
  let n = List.length dims in
  let strides =
    List.init n (fun i ->
        List.fold_left ( * ) 1 (List.filteri (fun j _ -> j > i) extents))
  in
  8 * List.fold_left2 (fun acc idx s -> acc + (value idx * s)) 0 dims strides

(* Replay one block's accesses to [dims] through [cache]. The reference is
   loaded once per iteration of the serial loops it depends on (and all
   outer ones), per thread - mirroring [Coalesce.loads_per_thread]. *)
let replay_block ?(max_accesses = 2_000_000) (k : Codegen.Kernel.t) dims cache =
  let tx_e, ty_e = k.block in
  (* serial loops down to the deepest one the reference depends on *)
  let depth_max =
    List.fold_left
      (fun acc (i, (l : Codegen.Kernel.loop)) -> if List.mem l.index dims then i else acc)
      (-1)
      (List.mapi (fun i l -> (i, l)) k.thread_loops)
  in
  let loops = List.filteri (fun i _ -> i <= depth_max) k.thread_loops in
  let budget = ref max_accesses in
  let rec iterate env = function
    | [] ->
      (* one warp-wide load: lanes in x-fastest order *)
      if !budget > 0 then
        for ty = 0 to ty_e - 1 do
          for tx = 0 to tx_e - 1 do
            if !budget > 0 then begin
              decr budget;
              ignore (Cache.access cache (address k dims ~tx ~ty ~serial_vals:env))
            end
          done
        done
    | (l : Codegen.Kernel.loop) :: rest ->
      for i = 0 to l.extent - 1 do
        iterate ((l.index, i) :: env) rest
      done
  in
  iterate [] loops

(* Measured L1 hit rate of one reference over a block's execution. *)
let block_hit_rate ?(ways = 8) (arch : Arch.t) (k : Codegen.Kernel.t) (name, dims) =
  ignore name;
  let cache = Cache.create ~bytes:arch.l1_bytes ~line_bytes ~ways in
  replay_block k dims cache;
  Cache.hit_rate cache

(* Bytes one block actually moves past the L1 for this reference. *)
let block_miss_bytes ?(ways = 8) (arch : Arch.t) (k : Codegen.Kernel.t) (name, dims) =
  ignore name;
  let cache = Cache.create ~bytes:arch.l1_bytes ~line_bytes ~ways in
  replay_block k dims cache;
  Cache.miss_bytes cache
