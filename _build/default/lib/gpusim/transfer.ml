(* PCIe transfer model: inputs host-to-device once, outputs device-to-host
   once. Data stays device-resident between the kernels of a computation
   (and across repetitions, as in the paper's measurement loop). *)

type t = {
  h2d_bytes : int;
  d2h_bytes : int;
  time_s : float;
}

let time_of_bytes (arch : Arch.t) bytes =
  (arch.pcie_latency_us *. 1e-6)
  +. (float_of_int bytes /. (arch.pcie_bw_gbs *. 1e9))

let analyze (arch : Arch.t) (ir : Tcr.Ir.t) =
  let bytes role =
    List.fold_left
      (fun acc (v : Tcr.Ir.var) ->
        if v.role = role then acc + Tcr.Ir.var_bytes ir v.name else acc)
      0 ir.vars
  in
  let h2d_bytes = bytes Tcr.Ir.Input in
  let d2h_bytes = bytes Tcr.Ir.Output in
  {
    h2d_bytes;
    d2h_bytes;
    time_s = time_of_bytes arch h2d_bytes +. time_of_bytes arch d2h_bytes;
  }
