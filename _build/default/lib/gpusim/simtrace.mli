(** Trace-driven cross-check of the analytic memory model: replay the exact
    address stream one thread block issues for a reference through an LRU
    cache of the architecture's L1 geometry, and compare the measured hit
    rate with {!Perf}'s classification. *)

val line_bytes : int

(** Byte address of a reference for given lane and serial-loop values
    (block indices fixed at 0). *)
val address :
  Codegen.Kernel.t ->
  string list ->
  tx:int ->
  ty:int ->
  serial_vals:(string * int) list ->
  int

(** Replay one block's loads of [dims] through [cache]; the access count is
    bounded by [max_accesses] (default 2e6). *)
val replay_block : ?max_accesses:int -> Codegen.Kernel.t -> string list -> Cache.t -> unit

(** Measured L1 hit rate of one reference over a block's execution. *)
val block_hit_rate :
  ?ways:int -> Arch.t -> Codegen.Kernel.t -> string * string list -> float

(** Bytes one block actually moves past the L1 for this reference. *)
val block_miss_bytes :
  ?ways:int -> Arch.t -> Codegen.Kernel.t -> string * string list -> int
