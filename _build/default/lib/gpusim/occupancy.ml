(* Occupancy calculator: how many blocks and warps an SM sustains given the
   block size and register demand, following the CUDA occupancy rules. *)

type t = {
  blocks_per_sm : int;
  warps_per_sm : int;
  occupancy : float;          (* active warps / max warps *)
  regs_per_thread : int;
  limited_by : string;        (* "threads" | "blocks" | "registers" *)
}

(* Register demand of the generated thread program: a base set (pointers,
   indices, the output scalar) plus address/value registers per factor and
   extra live values introduced by unrolling. *)
let regs_per_thread (k : Codegen.Kernel.t) =
  let base = 14 in
  let per_factor = 4 in
  let unroll_extra =
    List.fold_left
      (fun acc (l : Codegen.Kernel.loop) -> acc + (2 * (max 1 l.unroll - 1)))
      0 k.thread_loops
  in
  base + (per_factor * List.length k.op.factors) + unroll_extra

let analyze (arch : Arch.t) (k : Codegen.Kernel.t) =
  let tpb = Codegen.Kernel.threads_per_block k in
  let regs = regs_per_thread k in
  let by_threads = arch.max_threads_per_sm / max 1 tpb in
  let by_blocks = arch.max_blocks_per_sm in
  let by_regs = arch.regs_per_sm / max 1 (regs * tpb) in
  let blocks_per_sm = max 1 (min by_threads (min by_blocks by_regs)) in
  let blocks_per_sm = if by_regs = 0 then 1 else blocks_per_sm in
  let warps_per_block = (tpb + arch.warp_size - 1) / arch.warp_size in
  let warps_per_sm = blocks_per_sm * warps_per_block in
  let max_warps = arch.max_threads_per_sm / arch.warp_size in
  let limited_by =
    if by_regs <= by_threads && by_regs <= by_blocks then "registers"
    else if by_threads <= by_blocks then "threads"
    else "blocks"
  in
  {
    blocks_per_sm;
    warps_per_sm = min warps_per_sm max_warps;
    occupancy = min 1.0 (float_of_int (warps_per_sm * arch.warp_size) /. float_of_int arch.max_threads_per_sm);
    regs_per_thread = regs;
    limited_by;
  }
