(** Performance model of a vendor DGEMM library (cuBLAS-class): high
    fractions of peak only when the output tile grid fills the SMs and K
    amortizes tile setup - the reason the paper's small-tensor workloads
    cannot be served by "mapping the problem to use highly-tuned linear
    algebra libraries" (Section I). *)

val tile_m : int
val tile_n : int
val library_efficiency : float
val k_half : float

type analysis = {
  m : int;
  n : int;
  k : int;
  batch : int;
  flops : int;
  time_s : float;
  utilization : float;  (** output tile grid vs chip capacity *)
  k_efficiency : float;
}

(** Raises [Invalid_argument] on non-positive dimensions. *)
val analyze : Arch.t -> m:int -> n:int -> k:int -> batch:int -> analysis

val gflops : analysis -> float

(** An out-of-place library transpose/copy: two passes over the data. *)
val transpose_time : Arch.t -> bytes:int -> float
