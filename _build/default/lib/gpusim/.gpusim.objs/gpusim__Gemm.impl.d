lib/gpusim/gemm.ml: Arch
