lib/gpusim/coalesce.ml: Codegen Hashtbl List
