lib/gpusim/arch.mli:
