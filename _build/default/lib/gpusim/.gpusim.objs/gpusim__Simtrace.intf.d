lib/gpusim/simtrace.mli: Arch Cache Codegen
