lib/gpusim/arch.ml: List String
