lib/gpusim/cache.ml: Array List
