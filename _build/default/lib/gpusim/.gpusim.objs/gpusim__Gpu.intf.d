lib/gpusim/gpu.mli: Arch Codegen Perf Tcr Transfer
