lib/gpusim/occupancy.mli: Arch Codegen
