lib/gpusim/coalesce.mli: Codegen
