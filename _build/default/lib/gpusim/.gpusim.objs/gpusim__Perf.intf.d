lib/gpusim/perf.mli: Arch Coalesce Codegen Occupancy
