lib/gpusim/simtrace.ml: Arch Cache Codegen List Printf
