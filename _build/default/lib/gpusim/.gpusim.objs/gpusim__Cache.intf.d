lib/gpusim/cache.mli:
