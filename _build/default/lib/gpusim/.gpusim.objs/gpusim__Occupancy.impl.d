lib/gpusim/occupancy.ml: Arch Codegen List
