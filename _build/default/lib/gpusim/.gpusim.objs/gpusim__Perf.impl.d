lib/gpusim/perf.ml: Arch Coalesce Codegen List Occupancy
