lib/gpusim/gpu.ml: Arch Array Codegen Hashtbl List Perf Tcr Transfer
