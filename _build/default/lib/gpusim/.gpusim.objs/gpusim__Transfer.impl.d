lib/gpusim/transfer.ml: Arch List Tcr
