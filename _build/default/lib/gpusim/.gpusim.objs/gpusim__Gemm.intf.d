lib/gpusim/gemm.mli: Arch
