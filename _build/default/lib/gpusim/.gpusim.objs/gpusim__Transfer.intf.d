lib/gpusim/transfer.mli: Arch Tcr
