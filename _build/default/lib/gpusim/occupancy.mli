(** Occupancy calculator: blocks and warps an SM sustains given block size
    and register demand, following the CUDA occupancy rules. *)

type t = {
  blocks_per_sm : int;
  warps_per_sm : int;
  occupancy : float;  (** active warps / max warps *)
  regs_per_thread : int;
  limited_by : string;  (** "threads", "blocks" or "registers" *)
}

(** Register demand of the generated thread program: a base set plus
    address/value registers per factor plus live values from unrolling. *)
val regs_per_thread : Codegen.Kernel.t -> int

val analyze : Arch.t -> Codegen.Kernel.t -> t
