(* Global-memory coalescing analysis.

   For every array reference of a kernel we compute how many 128-byte
   transactions one warp's load generates, by evaluating the (affine)
   address function for each of the 32 lanes and counting distinct
   segments - the same rule the hardware's load-store unit applies.

   Lanes are ordered x-fastest: lane = ty * blockDim.x + tx. *)

let segment_bytes = 128
let element_bytes = 8

type ref_analysis = {
  name : string;
  dims : string list;
  transactions_per_warp : float;  (* averaged over the warps of a block *)
  loads_per_thread : int;         (* executions of the load per thread *)
  footprint_per_block : int;      (* distinct bytes touched by one block *)
  tensor_bytes : int;             (* whole-array size *)
}

let stride_of (k : Codegen.Kernel.t) dims index =
  let extents = List.map (Codegen.Kernel.extent k) dims in
  let n = List.length dims in
  let strides =
    List.init n (fun i ->
        List.fold_left ( * ) 1 (List.filteri (fun j _ -> j > i) extents))
  in
  let rec go ds ss =
    match (ds, ss) with
    | [], [] -> 0
    | d :: drest, s :: srest -> if d = index then s else go drest srest
    | _ -> 0
  in
  go dims strides

(* Transactions for one warp whose first lane sits at [lane_base] within the
   block, all serial/block indices fixed at zero (affine => representative,
   up to boundary effects that average out). *)
let warp_transactions (k : Codegen.Kernel.t) dims ~lane_base =
  let tx_e, _ = k.block in
  let d = k.decomp in
  let s_tx = stride_of k dims d.tx in
  let s_ty = match d.ty with None -> 0 | Some i -> stride_of k dims i in
  let tpb = Codegen.Kernel.threads_per_block k in
  let lanes = min 32 (tpb - lane_base) in
  let segments = Hashtbl.create 8 in
  for lane = lane_base to lane_base + lanes - 1 do
    let tx = lane mod tx_e and ty = lane / tx_e in
    let addr = element_bytes * ((tx * s_tx) + (ty * s_ty)) in
    Hashtbl.replace segments (addr / segment_bytes) ()
  done;
  Hashtbl.length segments

(* Average transactions per warp-wide load across the block's warps. *)
let transactions_per_warp (k : Codegen.Kernel.t) dims =
  let tpb = Codegen.Kernel.threads_per_block k in
  let nwarps = (tpb + 31) / 32 in
  let total = ref 0 in
  for w = 0 to nwarps - 1 do
    total := !total + warp_transactions k dims ~lane_base:(w * 32)
  done;
  float_of_int !total /. float_of_int nwarps

(* Loads per thread: a load executes once per iteration of every serial loop
   outside or at the innermost loop its address depends on (the compiler
   hoists it above deeper, independent loops). *)
let loads_per_thread (k : Codegen.Kernel.t) dims =
  let loops = k.thread_loops in
  let depth_max =
    List.fold_left
      (fun acc (i, (l : Codegen.Kernel.loop)) -> if List.mem l.index dims then i else acc)
      (-1)
      (List.mapi (fun i l -> (i, l)) loops)
  in
  List.fold_left ( * ) 1
    (List.filteri (fun i _ -> i <= depth_max) (List.map (fun (l : Codegen.Kernel.loop) -> l.extent) loops))

(* Distinct elements one block touches: product over the reference's
   dimensions of the extent if the dimension varies within the block
   (thread or serial index), else 1 (fixed by the block index). *)
let footprint_per_block (k : Codegen.Kernel.t) dims =
  let d = k.decomp in
  let within_block i =
    i = d.tx
    || Some i = d.ty
    || List.exists (fun (l : Codegen.Kernel.loop) -> l.index = i) k.thread_loops
  in
  element_bytes
  * List.fold_left
      (fun acc i -> acc * if within_block i then Codegen.Kernel.extent k i else 1)
      1 dims

let tensor_bytes (k : Codegen.Kernel.t) dims =
  element_bytes
  * List.fold_left (fun acc i -> acc * Codegen.Kernel.extent k i) 1 dims

let analyze_ref (k : Codegen.Kernel.t) (name, dims) =
  {
    name;
    dims;
    transactions_per_warp = transactions_per_warp k dims;
    loads_per_thread = loads_per_thread k dims;
    footprint_per_block = footprint_per_block k dims;
    tensor_bytes = tensor_bytes k dims;
  }

(* All references of the kernel: factors as loads; the scalar-replaced
   output contributes one load and one store per output element. *)
let analyze (k : Codegen.Kernel.t) = List.map (analyze_ref k) k.op.factors

let analyze_output (k : Codegen.Kernel.t) =
  let r = analyze_ref k (k.op.out, k.op.out_indices) in
  if k.scalar_replaced then r
  else
    (* without scalar replacement the output is read and written once per
       innermost iteration, not once per element *)
    let total =
      List.fold_left (fun acc (l : Codegen.Kernel.loop) -> acc * l.extent) 1 k.thread_loops
    in
    { r with loads_per_thread = total }
