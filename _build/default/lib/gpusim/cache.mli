(** Set-associative LRU cache simulator: the ground truth the analytic
    footprint classification of {!Perf} is cross-checked against. *)

type t

(** [create ~bytes ~line_bytes ~ways]. Raises on non-positive geometry. *)
val create : bytes:int -> line_bytes:int -> ways:int -> t

val reset : t -> unit

(** [access t addr] returns [true] on hit and updates LRU state. *)
val access : t -> int -> bool

val accesses : t -> int

(** Hits over accesses; 0 before any access. *)
val hit_rate : t -> float

(** Bytes fetched from the next level. *)
val miss_bytes : t -> int
