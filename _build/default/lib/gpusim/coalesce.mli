(** Global-memory coalescing analysis. For every array reference of a
    kernel, the number of 128-byte transactions one warp's load generates
    is computed by evaluating the affine address function for each of the
    32 lanes and counting distinct segments - the rule the hardware's
    load-store unit applies. Lanes are x-fastest:
    [lane = ty * blockDim.x + tx]. *)

val segment_bytes : int
val element_bytes : int

type ref_analysis = {
  name : string;
  dims : string list;
  transactions_per_warp : float;  (** averaged over the block's warps *)
  loads_per_thread : int;  (** executions of the load per thread *)
  footprint_per_block : int;  (** distinct bytes touched by one block *)
  tensor_bytes : int;  (** whole-array size *)
}

(** Element stride of a loop index within a reference (0 if absent). *)
val stride_of : Codegen.Kernel.t -> string list -> string -> int

val transactions_per_warp : Codegen.Kernel.t -> string list -> float

(** A load executes once per iteration of every serial loop outside or at
    the innermost loop its address depends on (deeper independent loops
    hoist it). *)
val loads_per_thread : Codegen.Kernel.t -> string list -> int

val footprint_per_block : Codegen.Kernel.t -> string list -> int
val tensor_bytes : Codegen.Kernel.t -> string list -> int
val analyze_ref : Codegen.Kernel.t -> string * string list -> ref_analysis

(** One analysis per factor reference. *)
val analyze : Codegen.Kernel.t -> ref_analysis list

(** The output reference; without scalar replacement its loads count once
    per innermost iteration instead of once per element. *)
val analyze_output : Codegen.Kernel.t -> ref_analysis
