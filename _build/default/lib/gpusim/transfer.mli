(** PCIe transfer model: inputs host-to-device once, outputs
    device-to-host once; data stays device-resident between the kernels of
    a computation and across the repetitions of the measurement loop, as in
    the paper. *)

type t = {
  h2d_bytes : int;
  d2h_bytes : int;
  time_s : float;
}

(** Latency plus size over link bandwidth, one direction. *)
val time_of_bytes : Arch.t -> int -> float

val analyze : Arch.t -> Tcr.Ir.t -> t
