(** Device-level simulation of a tuned TCR program: functional execution of
    the kernel IR on host arrays (bit-exact what the emitted CUDA computes)
    plus the analytic time estimate. A deterministic structural-hash noise
    of up to +/-3% models codegen and run-to-run variation, so equal-flop
    variants differ slightly, as the paper observes (Section II-B). *)

type report = {
  arch : Arch.t;
  kernels : Perf.kernel_report list;
  transfer : Transfer.t;
  kernel_time_s : float;  (** sum of kernel times, one evaluation *)
  flops : int;
}

val noise_amplitude : float

(** One kernel, with noise applied. *)
val measure_kernel : Arch.t -> Codegen.Kernel.t -> Perf.kernel_report

(** Whole program under per-statement points. Deterministic. *)
val measure : ?scalar_replace:bool -> Arch.t -> Tcr.Ir.t -> Tcr.Space.point list -> report

(** Functional execution (see {!Codegen.Exec.run_program}). *)
val execute :
  Tcr.Ir.t -> Tcr.Space.point list -> Codegen.Exec.env -> Codegen.Exec.env

(** Time of [reps] evaluations with device-resident data: transfers once,
    kernels every repetition (the paper's measurement loop). *)
val time_with_reps : report -> reps:int -> float

(** Average time of one evaluation under amortized transfers. *)
val amortized_time : report -> reps:int -> float

val gflops : report -> reps:int -> float

(** Concurrent-kernel (streams) variant of {!measure}: statements in the
    same dependence wave share one launch latency (bodies still add - work
    conservation). Extension experiment for Section VIII. *)
val measure_streams :
  ?scalar_replace:bool -> Arch.t -> Tcr.Ir.t -> Tcr.Space.point list -> report
