(* Set-associative LRU cache simulator.

   The roofline model classifies references analytically (footprints vs.
   capacities); this simulator provides the ground truth it is checked
   against: feed it the actual address stream of one thread block and
   compare hit rates with the analytic memory class. It also backs the
   [Simtrace] cross-check used by the test-suite. *)

type t = {
  line_bytes : int;
  num_sets : int;
  ways : int;
  (* tags.(set) is a list of line tags, most recently used first *)
  tags : int list array;
  mutable hits : int;
  mutable misses : int;
}

let create ~bytes ~line_bytes ~ways =
  if bytes <= 0 || line_bytes <= 0 || ways <= 0 then
    invalid_arg "Cache.create: non-positive geometry";
  let lines = max 1 (bytes / line_bytes) in
  let num_sets = max 1 (lines / ways) in
  { line_bytes; num_sets; ways; tags = Array.make num_sets []; hits = 0; misses = 0 }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) [];
  t.hits <- 0;
  t.misses <- 0

(* [access t addr] returns [true] on hit and updates LRU state. *)
let access t addr =
  let line = addr / t.line_bytes in
  let set = line mod t.num_sets in
  let tag = line / t.num_sets in
  let entry = t.tags.(set) in
  if List.mem tag entry then begin
    t.hits <- t.hits + 1;
    t.tags.(set) <- tag :: List.filter (fun x -> x <> tag) entry;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    let kept = List.filteri (fun i _ -> i < t.ways - 1) entry in
    t.tags.(set) <- tag :: kept;
    false
  end

let accesses t = t.hits + t.misses

let hit_rate t =
  let n = accesses t in
  if n = 0 then 0.0 else float_of_int t.hits /. float_of_int n

let miss_bytes t = t.misses * t.line_bytes
