(* Deterministic splitmix64 pseudo-random number generator.

   Every stochastic component of the system (random tensor data, SURF
   sampling, tree randomization, simulated measurement noise) draws from an
   explicit [t] so that whole-pipeline runs are reproducible bit-for-bit. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

(* Core splitmix64 step: returns 64 pseudo-random bits. *)
let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Derive an independent stream; used to give each subsystem its own RNG. *)
let split t =
  let seed = next_int64 t in
  { state = Int64.mul seed 0x2545F4914F6CDD1DL }

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let float t bound =
  let mask53 = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float mask53 /. 9007199254740992.0 *. bound

(* Uniform in [lo, hi). *)
let float_range t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Standard normal via Box-Muller. *)
let gaussian t =
  let u1 = max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(* Fisher-Yates shuffle, in place. *)
let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle t lst =
  let arr = Array.of_list lst in
  shuffle_in_place t arr;
  Array.to_list arr

(* [sample_without_replacement t k arr] returns [k] distinct elements. *)
let sample_without_replacement t k arr =
  let n = Array.length arr in
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  let idx = Array.init n (fun i -> i) in
  shuffle_in_place t idx;
  Array.init k (fun i -> arr.(idx.(i)))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t lst =
  match lst with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth lst (int t (List.length lst))
