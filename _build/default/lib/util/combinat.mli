(** Small combinatorics helpers shared by OCTOPI's variant enumeration and
    the TCR search-space construction. All functions materialize their full
    result, so callers keep inputs small (the paper's workloads have at most
    four factors and seven loop indices). *)

(** [factorial n] for [n >= 0] (1 for non-positive input). *)
val factorial : int -> int

(** All permutations of a list; duplicates in the input are collapsed. *)
val permutations : 'a list -> 'a list list

(** Permutations that keep duplicate elements distinct by position, so the
    result always has n! entries. *)
val permutations_indexed : 'a list -> 'a list list

(** Cartesian product of a list of domains, in row-major order. An empty
    domain yields an empty product. *)
val cartesian : 'a list list -> 'a list list

(** [choose k l]: all size-[k] subsets of [l], preserving element order. *)
val choose : int -> 'a list -> 'a list list

(** All non-empty subsets. *)
val subsets : 'a list -> 'a list list

(** Unordered pairs [(x, y)] with [x] before [y] in the input. *)
val pairs : 'a list -> ('a * 'a) list
