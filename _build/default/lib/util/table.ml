(* Plain-text table rendering for the benchmark harness output.

   Columns are sized to their widest cell; the first row is treated as a
   header and separated by a rule, mirroring the layout of the paper's
   tables so outputs are easy to compare side by side. *)

type t = { title : string; rows : string list list }

let create ~title rows = { title; rows }

let widths rows =
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 rows in
  let w = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)))
    rows;
  w

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let render { title; rows } =
  match rows with
  | [] -> title ^ "\n(empty)\n"
  | header :: body ->
    let w = widths rows in
    let render_row r =
      r
      |> List.mapi (fun i cell -> pad w.(i) cell)
      |> String.concat "  "
      |> fun s -> String.trim s ^ "\n"
      |> fun s -> "  " ^ s
    in
    let rule =
      "  "
      ^ String.concat "  " (Array.to_list (Array.map (fun n -> String.make n '-') w))
      ^ "\n"
    in
    String.concat ""
      ((title ^ "\n") :: render_row header :: rule :: List.map render_row body)

let print t = print_string (render t)

(* Format a float with [digits] decimals; keeps table cells compact. *)
let cell_f ?(digits = 2) v =
  if Float.is_nan v then "n/a" else Printf.sprintf "%.*f" digits v
