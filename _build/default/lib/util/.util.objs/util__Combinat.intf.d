lib/util/combinat.mli:
