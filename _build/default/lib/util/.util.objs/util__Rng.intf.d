lib/util/rng.mli:
