lib/util/stats.mli:
