lib/util/table.mli:
