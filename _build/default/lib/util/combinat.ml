(* Small combinatorics helpers shared by OCTOPI enumeration and the TCR
   search-space construction. *)

let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1)

let rec remove_one x = function
  | [] -> []
  | y :: rest -> if y = x then rest else y :: remove_one x rest

(* All distinct permutations of a (multi)set; callers keep n small. *)
let rec permutations = function
  | [] -> [ [] ]
  | lst ->
    List.concat_map
      (fun x ->
        let rest = remove_one x lst in
        List.map (fun perm -> x :: perm) (permutations rest))
      (List.sort_uniq compare lst)

(* Permutations that keep duplicates distinct by position. *)
let permutations_indexed lst =
  let arr = Array.of_list lst in
  let n = Array.length arr in
  let rec go chosen remaining =
    if remaining = [] then [ List.rev_map (fun i -> arr.(i)) chosen ]
    else
      List.concat_map (fun i -> go (i :: chosen) (List.filter (( <> ) i) remaining)) remaining
  in
  go [] (List.init n (fun i -> i))

(* Cartesian product of a list of domains. *)
let rec cartesian = function
  | [] -> [ [] ]
  | domain :: rest ->
    let tails = cartesian rest in
    List.concat_map (fun x -> List.map (fun tl -> x :: tl) tails) domain

(* All subsets of size [k]. *)
let rec choose k lst =
  if k = 0 then [ [] ]
  else
    match lst with
    | [] -> []
    | x :: rest -> List.map (fun c -> x :: c) (choose (k - 1) rest) @ choose k rest

(* All non-empty subsets. *)
let subsets lst =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
      let tails = go rest in
      tails @ List.map (fun s -> x :: s) tails
  in
  List.filter (fun s -> s <> []) (go lst)

(* Unordered pairs (i, j) with i < j, by position. *)
let pairs lst =
  let arr = Array.of_list lst in
  let n = Array.length arr in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      acc := (arr.(i), arr.(j)) :: !acc
    done
  done;
  !acc
