(** Plain-text table rendering for the benchmark harness, mirroring the
    layout of the paper's tables so outputs compare side by side. *)

type t

(** [create ~title rows]: the first row is the header. *)
val create : title:string -> string list list -> t

(** Render with columns sized to their widest cell and a rule under the
    header. *)
val render : t -> string

val print : t -> unit

(** Format a float with [digits] decimals (default 2); ["n/a"] for NaN. *)
val cell_f : ?digits:int -> float -> string
