(** Deterministic splitmix64 pseudo-random number generator.

    All stochastic components of Barracuda draw from an explicit generator so
    that end-to-end runs (tensor data, SURF sampling, tree randomization,
    simulated noise) are reproducible. *)

type t

(** [create seed] builds a generator from an integer seed. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] derives a statistically independent stream, advancing [t]. *)
val split : t -> t

(** 62 pseudo-random non-negative bits. *)
val bits : t -> int

(** [int t bound] is uniform in [0, bound). Raises if [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

(** [float_range t lo hi] is uniform in [lo, hi). *)
val float_range : t -> float -> float -> float

val bool : t -> bool

(** Standard normal deviate (Box-Muller). *)
val gaussian : t -> float

(** Fisher-Yates shuffle of a fresh list. *)
val shuffle : t -> 'a list -> 'a list

val shuffle_in_place : t -> 'a array -> unit

(** [sample_without_replacement t k arr]: [k] distinct elements of [arr].
    Raises if [k] exceeds the array length. *)
val sample_without_replacement : t -> int -> 'a array -> 'a array

(** Uniform choice. Raise on empty input. *)
val pick : t -> 'a array -> 'a

val pick_list : t -> 'a list -> 'a
