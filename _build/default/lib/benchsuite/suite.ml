(* The tensor-contraction computations of Table I, written in the OCTOPI
   DSL. Sizes are parameterized so the test-suite can validate kernels
   functionally at small extents while the benchmark harness evaluates the
   performance model at the paper's sizes. *)

let benchmark = Autotune.Tuner.benchmark_of_dsl

(* Eqn.(1): the 3-d spectral-element contraction of Figure 2(a); all index
   extents are the polynomial order (10 in the paper's running example). *)
let eqn1 ?(n = 10) () =
  benchmark ~label:"eqn1"
    (Printf.sprintf
       {|
dims: i=%d j=%d k=%d l=%d m=%d n=%d
V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])
|}
       n n n n n n)

(* local_grad3 from Nekbone: the gradient of a scalar field on [elems]
   spectral elements of order [p] (12 in the paper), three small
   matrix-multiply-shaped contractions sharing the field u. *)
let lg3 ?(p = 12) ?(elems = 512) () =
  benchmark ~label:"lg3"
    (Printf.sprintf
       {|
dims: e=%d i=%d j=%d k=%d l=%d
ur[e i j k] = Sum([l], D[i l] * u[e l j k])
us[e i j k] = Sum([l], D[j l] * u[e i l k])
ut[e i j k] = Sum([l], D[k l] * u[e i j l])
|}
       elems p p p p)

(* local_grad3t: the transposed gradient (divergence-like), accumulating
   the three directional contributions into one output field w. *)
let lg3t ?(p = 12) ?(elems = 512) () =
  benchmark ~label:"lg3t"
    (Printf.sprintf
       {|
dims: e=%d i=%d j=%d k=%d l=%d
w[e i j k] = Sum([l], D[l i] * ur[e l j k])
w[e i j k] = Sum([l], D[l j] * us[e i l k])
w[e i j k] = Sum([l], D[l k] * ut[e i j l])
|}
       elems p p p p)

(* The TCE example tensor (Baumgartner et al. [4]): the four-tensor coupled
   cluster contraction S = A*B*C*D over ten indices; strength reduction
   turns the O(n^10) naive nest into sequences of binary contractions. *)
let tce_ex ?(n = 16) () =
  benchmark ~label:"tce_ex"
    (Printf.sprintf
       {|
dims: a=%d b=%d c=%d d=%d e=%d f=%d i=%d j=%d k=%d l=%d
S[a b i j] = Sum([c d e f k l], A[a c i k] * B[b e f l] * C[d f j k] * D[c d e l])
|}
       n n n n n n n n n n)

let all_individual ?n ?p ?elems () =
  [ eqn1 ?n (); lg3 ?p ?elems (); lg3t ?p ?elems (); tce_ex ?n () ]
