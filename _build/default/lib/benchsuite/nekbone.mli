(** Nekbone mini-app (Section VI): a conjugate-gradient solve over a
    spectral-element operator whose computational core is the pair of
    contractions local_grad3 (Lg3) and local_grad3t (Lg3t), at order
    12x12x12 batched over elements.

    The functional side runs an actual CG iteration over the kernel-IR
    executor, solving [A x = b] with [A = lg3t(G o lg3 x) + m x] (symmetric
    positive definite for positive geometry G and mass m). The performance
    side assembles per-iteration times from the tuned kernels plus
    bandwidth-bound auxiliary work. *)

type problem = { p : int; elems : int }

(** Order 12, 512 elements. *)
val default : problem

val field_shape : problem -> Tensor.Shape.t
val field_points : problem -> int
val lg3_benchmark : problem -> Autotune.Tuner.benchmark
val lg3t_benchmark : problem -> Autotune.Tuner.benchmark

(** Lg3 and Lg3t merged into one six-statement program - the joint tuning
    of the paper's Section VIII outlook. *)
val joint_benchmark : problem -> Autotune.Tuner.benchmark

type operator = {
  problem : problem;
  d : Tensor.Dense.t;  (** p x p differentiation matrix *)
  geometry : Tensor.Dense.t array;  (** positive per-direction diagonals *)
  mass : float;
  lg3_ir : Tcr.Ir.t;
  lg3_points : Tcr.Space.point list;
  lg3t_ir : Tcr.Ir.t;
  lg3t_points : Tcr.Space.point list;
}

(** Build the operator; kernels default to the first point of each space
    unless tuned points are supplied. *)
val make_operator :
  ?rng:Util.Rng.t ->
  ?lg3_points:Tcr.Space.point list ->
  ?lg3t_points:Tcr.Space.point list ->
  problem ->
  operator

(** [w = lg3t (G o lg3 u) + mass * u], executed through the kernel IR. *)
val apply : operator -> Tensor.Dense.t -> Tensor.Dense.t

type cg_stats = {
  iterations : int;
  residuals : float list;  (** ||r|| per iteration, oldest first *)
  converged : bool;
}

val cg_solve :
  ?tol:float -> ?max_iter:int -> operator -> Tensor.Dense.t -> Tensor.Dense.t * cg_stats

(** Per-iteration auxiliary streaming (geometry scaling + CG vector ops). *)
val aux_bytes : problem -> int

val aux_flops : problem -> int
val contraction_flops : operator -> int
val total_flops_per_iter : operator -> int

(** Share of sequential CPU time in the contractions (paper: ~60%). *)
val contraction_fraction_cpu : operator -> float

val gpu_iter_time :
  Gpusim.Arch.t -> lg3_kernel_time:float -> lg3t_kernel_time:float -> problem -> float

val cpu_iter_time : cores:int -> operator -> float
val gflops_of_iter_time : operator -> float -> float
