lib/benchsuite/suite.mli: Autotune
