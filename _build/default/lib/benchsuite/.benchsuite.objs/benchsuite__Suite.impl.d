lib/benchsuite/suite.ml: Autotune Printf
