lib/benchsuite/nwchem.ml: Autotune List Printf String
