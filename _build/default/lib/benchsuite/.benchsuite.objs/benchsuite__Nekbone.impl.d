lib/benchsuite/nekbone.ml: Array Autotune Codegen Cpusim Gpusim List Octopi Suite Tcr Tensor Util
