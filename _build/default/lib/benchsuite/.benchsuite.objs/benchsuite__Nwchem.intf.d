lib/benchsuite/nwchem.mli: Autotune
