lib/benchsuite/nekbone.mli: Autotune Gpusim Tcr Tensor Util
