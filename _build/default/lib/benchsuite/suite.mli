(** The tensor-contraction computations of Table I, written in the OCTOPI
    DSL. Sizes are parameterized so tests validate kernels functionally at
    small extents while the benchmark harness evaluates the performance
    model at the paper's sizes. *)

val benchmark : label:string -> string -> Autotune.Tuner.benchmark

(** Eqn.(1), the 3-d spectral-element contraction of Figure 2(a); [n] is
    every index extent (default 10). *)
val eqn1 : ?n:int -> unit -> Autotune.Tuner.benchmark

(** local_grad3 from Nekbone: the field gradient on [elems] spectral
    elements of polynomial order [p] (paper: 12), three contractions
    sharing the field u. *)
val lg3 : ?p:int -> ?elems:int -> unit -> Autotune.Tuner.benchmark

(** local_grad3t: the transposed gradient, three contractions accumulating
    into one output field. *)
val lg3t : ?p:int -> ?elems:int -> unit -> Autotune.Tuner.benchmark

(** The TCE example tensor (Baumgartner et al.): S = A*B*C*D over ten
    indices; strength reduction turns the O(n^10) nest into binary
    contractions. *)
val tce_ex : ?n:int -> unit -> Autotune.Tuner.benchmark

(** The four Table II benchmarks. *)
val all_individual :
  ?n:int -> ?p:int -> ?elems:int -> unit -> Autotune.Tuner.benchmark list
