(* Nekbone mini-app (Section VI): a conjugate-gradient solve over a
   spectral-element operator whose computational core is the pair of tensor
   contractions local_grad3 (Lg3) and local_grad3t (Lg3t), at order
   12x12x12, batched over elements.

   Functional side: an actual CG iteration implemented over the kernel-IR
   executor, solving A x = b with A = lg3t(G o lg3(x)) + m x (symmetric
   positive definite for positive geometry factors G and mass m > 0).

   Performance side: per-iteration simulated time = tuned Lg3 + tuned Lg3t
   kernels + bandwidth-bound auxiliary work (geometry scaling and the CG
   vector operations), the ~60%-tensor-contraction split the paper
   describes. *)

type problem = { p : int; elems : int }

let default = { p = 12; elems = 512 }

let field_shape { p; elems } = Tensor.Shape.of_list [ elems; p; p; p ]

let lg3_benchmark { p; elems } = Suite.lg3 ~p ~elems ()
let lg3t_benchmark { p; elems } = Suite.lg3t ~p ~elems ()

(* ------------------------------------------------------------------ *)
(* Functional operator and CG *)

type operator = {
  problem : problem;
  d : Tensor.Dense.t;              (* p x p differentiation matrix *)
  geometry : Tensor.Dense.t array; (* per-direction positive diagonal, field-shaped *)
  mass : float;
  lg3_ir : Tcr.Ir.t;
  lg3_points : Tcr.Space.point list;
  lg3t_ir : Tcr.Ir.t;
  lg3t_points : Tcr.Space.point list;
}

(* Default decompositions (first point of each kernel's space) when the
   operator is used without tuning. *)
let default_points (ir : Tcr.Ir.t) =
  let ps = Tcr.Space.of_ir ir in
  List.map (fun s -> List.hd (Tcr.Space.enumerate s)) ps.op_spaces

let merged_ir (b : Autotune.Tuner.benchmark) =
  let choices =
    List.map
      (fun c ->
        match (Octopi.Variants.of_contraction c).variants with
        | v :: _ -> (c, v)
        | [] -> invalid_arg "Nekbone: statement with no variant")
      b.statements
  in
  Autotune.Combine.merge ~label:b.label choices

let make_operator ?(rng = Util.Rng.create 97) ?lg3_points ?lg3t_points problem =
  let lg3_ir = merged_ir (lg3_benchmark problem) in
  let lg3t_ir = merged_ir (lg3t_benchmark problem) in
  let p = problem.p in
  let d =
    (* a smooth full differentiation-like matrix *)
    Tensor.Dense.init (Tensor.Shape.of_list [ p; p ]) (fun idx ->
        let i = idx.(0) and l = idx.(1) in
        if i = l then 0.5 else 1.0 /. float_of_int (i - l))
  in
  let geometry =
    Array.init 3 (fun _ ->
        Tensor.Dense.init (field_shape problem) (fun _ ->
            0.5 +. Util.Rng.float rng 1.0))
  in
  {
    problem;
    d;
    geometry;
    mass = 0.4;
    lg3_ir;
    lg3_points = (match lg3_points with Some p -> p | None -> default_points lg3_ir);
    lg3t_ir;
    lg3t_points = (match lg3t_points with Some p -> p | None -> default_points lg3t_ir);
  }

let hadamard a b =
  let out = Tensor.Dense.copy a in
  let da = Tensor.Dense.data out and db = Tensor.Dense.data b in
  Array.iteri (fun i x -> da.(i) <- x *. db.(i)) da;
  out

(* w = lg3t(G o lg3(u)) + mass * u *)
let apply op u =
  let env = Codegen.Exec.run_program op.lg3_ir op.lg3_points [ ("D", op.d); ("u", u) ] in
  let ur = hadamard (List.assoc "ur" env) op.geometry.(0) in
  let us = hadamard (List.assoc "us" env) op.geometry.(1) in
  let ut = hadamard (List.assoc "ut" env) op.geometry.(2) in
  let env =
    Codegen.Exec.run_program op.lg3t_ir op.lg3t_points
      [ ("D", op.d); ("ur", ur); ("us", us); ("ut", ut) ]
  in
  let w = List.assoc "w" env in
  Tensor.Dense.add w (Tensor.Dense.scale op.mass u)

type cg_stats = {
  iterations : int;
  residuals : float list;  (* ||r||_2 per iteration, newest last *)
  converged : bool;
}

let cg_solve ?(tol = 1e-8) ?(max_iter = 200) op b =
  let x = Tensor.Dense.create (Tensor.Dense.shape b) in
  let r = Tensor.Dense.copy b in
  let p = Tensor.Dense.copy r in
  let rr = ref (Tensor.Dense.dot r r) in
  let residuals = ref [ sqrt !rr ] in
  let iters = ref 0 in
  let b_norm = max 1e-30 (Tensor.Dense.norm2 b) in
  (try
     while !iters < max_iter && sqrt !rr /. b_norm > tol do
       let ap = apply op p in
       let alpha = !rr /. Tensor.Dense.dot p ap in
       let x' = Tensor.Dense.add x (Tensor.Dense.scale alpha p) in
       Array.blit (Tensor.Dense.data x') 0 (Tensor.Dense.data x) 0 (Tensor.Dense.num_elements x);
       let r' = Tensor.Dense.sub r (Tensor.Dense.scale alpha ap) in
       Array.blit (Tensor.Dense.data r') 0 (Tensor.Dense.data r) 0 (Tensor.Dense.num_elements r);
       let rr' = Tensor.Dense.dot r r in
       let beta = rr' /. !rr in
       let p' = Tensor.Dense.add r (Tensor.Dense.scale beta p) in
       Array.blit (Tensor.Dense.data p') 0 (Tensor.Dense.data p) 0 (Tensor.Dense.num_elements p);
       rr := rr';
       residuals := sqrt rr' :: !residuals;
       incr iters
     done
   with Division_by_zero -> ());
  let converged = sqrt !rr /. b_norm <= tol in
  (x, { iterations = !iters; residuals = List.rev !residuals; converged })

(* ------------------------------------------------------------------ *)
(* Performance accounting *)

let field_points problem = Tensor.Shape.num_elements (field_shape problem)

(* Auxiliary per-iteration work beyond the two contractions: geometry
   scaling (3 fields r+w) and the CG vector updates/dots (~5 field sweeps),
   all bandwidth-bound streaming. *)
let aux_bytes problem = 8 * field_points problem * ((3 * 2) + (5 * 2))

let aux_flops problem = field_points problem * (3 + 10)

let contraction_flops op = Tcr.Ir.flops op.lg3_ir + Tcr.Ir.flops op.lg3t_ir

let total_flops_per_iter op = contraction_flops op + aux_flops op.problem

(* Fraction of sequential CPU time spent in the contractions; the paper
   quotes ~60% for Nekbone. *)
let contraction_fraction_cpu op =
  let t_contr =
    Cpusim.Haswell.sequential_time op.lg3_ir +. Cpusim.Haswell.sequential_time op.lg3t_ir
  in
  let t_aux =
    float_of_int (aux_bytes op.problem)
    /. (Cpusim.Haswell.haswell.single_core_bw_gbs *. 1e9)
  in
  t_contr /. (t_contr +. t_aux)

(* GPU per-iteration time from tuned kernel reports. *)
let gpu_iter_time (arch : Gpusim.Arch.t) ~lg3_kernel_time ~lg3t_kernel_time problem =
  let aux =
    float_of_int (aux_bytes problem)
    /. (arch.mem_bw_gbs *. 1e9 *. arch.bw_efficiency)
    +. (3.0 *. arch.kernel_launch_us *. 1e-6)
  in
  lg3_kernel_time +. lg3t_kernel_time +. aux

let cpu_iter_time ~cores op =
  let f = if cores <= 1 then Cpusim.Haswell.sequential_time else Cpusim.Haswell.openmp_time ~cores in
  let bw =
    if cores <= 1 then Cpusim.Haswell.haswell.single_core_bw_gbs
    else Cpusim.Haswell.haswell.mem_bw_gbs
  in
  f op.lg3_ir +. f op.lg3t_ir
  +. (float_of_int (aux_bytes op.problem) /. (bw *. 1e9))

let gflops_of_iter_time op time = float_of_int (total_flops_per_iter op) /. time /. 1e9

(* ------------------------------------------------------------------ *)
(* Joint tuning (the paper's Section VIII outlook: "jointly optimizing
   lgrad3, lgrad3t and adjacent code"): both gradient computations merged
   into a single six-statement program so the autotuner sees them - and the
   device sees their data residency - as one unit. *)

let joint_benchmark problem =
  let lg3 = lg3_benchmark problem in
  let lg3t = lg3t_benchmark problem in
  {
    Autotune.Tuner.label = "nekbone_joint";
    statements = lg3.statements @ lg3t.statements;
  }
