(* The NWChem CCSD(T) loop-driven kernel excerpts (Jeff Hammond's
   nwchem-tce-triples-kernels), Table I's S1/D1/D2 families: nine index
   permutation variants each of three contraction forms writing the
   rank-6 triples tensor t3, with trip count 16 in every dimension.

   s1: t3(h3,h2,h1,p6,p5,p4) += t1(p?,h?) * v2(h?,h?,p?,p?)   (no summation)
   d1: t3(h3,h2,h1,p6,p5,p4) += t2(h7,p?,p?,h?) * v2(h?,h?,p?,h7)
   d2: t3(h3,h2,h1,p6,p5,p4) += t2(p7,p?,h?,h?) * v2(p7,h?,p?,p?)
*)

type family = S1 | D1 | D2

let family_name = function S1 -> "s1" | D1 -> "d1" | D2 -> "d2"

(* (t2-or-t1 indices, v2 indices) for each of the nine kernels. *)
let signatures = function
  | S1 ->
    [
      ([ "p4"; "h1" ], [ "h3"; "h2"; "p6"; "p5" ]);
      ([ "p4"; "h2" ], [ "h3"; "h1"; "p6"; "p5" ]);
      ([ "p4"; "h3" ], [ "h2"; "h1"; "p6"; "p5" ]);
      ([ "p5"; "h1" ], [ "h3"; "h2"; "p6"; "p4" ]);
      ([ "p5"; "h2" ], [ "h3"; "h1"; "p6"; "p4" ]);
      ([ "p5"; "h3" ], [ "h2"; "h1"; "p6"; "p4" ]);
      ([ "p6"; "h1" ], [ "h3"; "h2"; "p5"; "p4" ]);
      ([ "p6"; "h2" ], [ "h3"; "h1"; "p5"; "p4" ]);
      ([ "p6"; "h3" ], [ "h2"; "h1"; "p5"; "p4" ]);
    ]
  | D1 ->
    [
      ([ "h7"; "p4"; "p5"; "h1" ], [ "h3"; "h2"; "p6"; "h7" ]);
      ([ "h7"; "p4"; "p5"; "h2" ], [ "h3"; "h1"; "p6"; "h7" ]);
      ([ "h7"; "p4"; "p5"; "h3" ], [ "h2"; "h1"; "p6"; "h7" ]);
      ([ "h7"; "p4"; "p6"; "h1" ], [ "h3"; "h2"; "p5"; "h7" ]);
      ([ "h7"; "p4"; "p6"; "h2" ], [ "h3"; "h1"; "p5"; "h7" ]);
      ([ "h7"; "p4"; "p6"; "h3" ], [ "h2"; "h1"; "p5"; "h7" ]);
      ([ "h7"; "p5"; "p6"; "h1" ], [ "h3"; "h2"; "p4"; "h7" ]);
      ([ "h7"; "p5"; "p6"; "h2" ], [ "h3"; "h1"; "p4"; "h7" ]);
      ([ "h7"; "p5"; "p6"; "h3" ], [ "h2"; "h1"; "p4"; "h7" ]);
    ]
  | D2 ->
    [
      ([ "p7"; "p4"; "h1"; "h2" ], [ "p7"; "h3"; "p6"; "p5" ]);
      ([ "p7"; "p4"; "h2"; "h3" ], [ "p7"; "h1"; "p6"; "p5" ]);
      ([ "p7"; "p4"; "h1"; "h3" ], [ "p7"; "h2"; "p6"; "p5" ]);
      ([ "p7"; "p5"; "h1"; "h2" ], [ "p7"; "h3"; "p6"; "p4" ]);
      ([ "p7"; "p5"; "h2"; "h3" ], [ "p7"; "h1"; "p6"; "p4" ]);
      ([ "p7"; "p5"; "h1"; "h3" ], [ "p7"; "h2"; "p6"; "p4" ]);
      ([ "p7"; "p6"; "h1"; "h2" ], [ "p7"; "h3"; "p5"; "p4" ]);
      ([ "p7"; "p6"; "h2"; "h3" ], [ "p7"; "h1"; "p5"; "p4" ]);
      ([ "p7"; "p6"; "h1"; "h3" ], [ "p7"; "h2"; "p5"; "p4" ]);
    ]

let first_factor_name = function S1 -> "t1" | D1 | D2 -> "t2"

let sum_index = function S1 -> None | D1 -> Some "h7" | D2 -> Some "p7"

let t3_indices = [ "h3"; "h2"; "h1"; "p6"; "p5"; "p4" ]

(* DSL text of one kernel; [n] is the trip count (16 in the paper). *)
let dsl family ~index ~n =
  let t_idx, v_idx = List.nth (signatures family) (index - 1) in
  let all_indices =
    List.sort_uniq compare (t3_indices @ t_idx @ v_idx)
  in
  let dims =
    String.concat " " (List.map (fun i -> Printf.sprintf "%s=%d" i n) all_indices)
  in
  let spaces l = String.concat " " l in
  let sum_clause body =
    match sum_index family with
    | None -> body
    | Some s -> Printf.sprintf "Sum([%s], %s)" s body
  in
  Printf.sprintf "dims: %s\nt3[%s] = %s\n" dims (spaces t3_indices)
    (sum_clause
       (Printf.sprintf "%s[%s] * v2[%s]" (first_factor_name family) (spaces t_idx)
          (spaces v_idx)))

let kernel_label family index = Printf.sprintf "%s_%d" (family_name family) index

let benchmark ?(n = 16) family ~index =
  Autotune.Tuner.benchmark_of_dsl
    ~label:(kernel_label family index)
    (dsl family ~index ~n)

let benchmarks ?(n = 16) family =
  List.init 9 (fun i -> benchmark ~n family ~index:(i + 1))

let families = [ S1; D1; D2 ]
