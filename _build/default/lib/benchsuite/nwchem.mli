(** The NWChem CCSD(T) loop-driven kernel excerpts (the
    nwchem-tce-triples-kernels of Table I): nine index-permutation variants
    each of three contraction forms writing the rank-6 triples tensor t3,
    trip count 16 per dimension.

    {v
s1: t3(h3,h2,h1,p6,p5,p4) += t1(p?,h?) * v2(h?,h?,p?,p?)    (outer product)
d1: t3(h3,h2,h1,p6,p5,p4) += t2(h7,p?,p?,h?) * v2(h?,h?,p?,h7)
d2: t3(h3,h2,h1,p6,p5,p4) += t2(p7,p?,h?,h?) * v2(p7,h?,p?,p?)
    v} *)

type family = S1 | D1 | D2

val family_name : family -> string

(** The nine (t1/t2 indices, v2 indices) signatures of a family. *)
val signatures : family -> (string list * string list) list

val first_factor_name : family -> string

(** The contracted index, if any ([None] for S1). *)
val sum_index : family -> string option

val t3_indices : string list

(** DSL text of kernel [index] (1..9) at trip count [n]. *)
val dsl : family -> index:int -> n:int -> string

(** e.g. ["d1_3"]. *)
val kernel_label : family -> int -> string

val benchmark : ?n:int -> family -> index:int -> Autotune.Tuner.benchmark

(** All nine kernels of a family. *)
val benchmarks : ?n:int -> family -> Autotune.Tuner.benchmark list

val families : family list
