(** The TTGT (Transpose-Transpose-GEMM-Transpose) baseline: each binary
    contraction evaluated by reshaping the operands into matrices and
    calling a vendor GEMM - the large-tensor-framework strategy the paper
    contrasts itself with (Section VII). Indices partition into batch
    (output indices in both factors), M (output, first factor), N (output,
    second factor) and K (contracted); a tensor needs an explicit transpose
    when its layout does not already group that way. *)

type op_mapping = {
  op : Tcr.Ir.op;
  b_indices : string list;
  m_indices : string list;
  n_indices : string list;
  k_indices : string list;
  transposes : string list;  (** tensors needing an explicit copy *)
  gemm : Gpusim.Gemm.analysis;
  time_s : float;
}

(** Raises [Invalid_argument] on statements with three or more factors
    (run strength reduction first). *)
val map_op : Gpusim.Arch.t -> Tcr.Ir.t -> Tcr.Ir.op -> op_mapping

type report = {
  ir : Tcr.Ir.t;
  mappings : op_mapping list;
  kernel_time_s : float;
  flops : int;  (** contraction flops, excluding transpose overhead *)
}

val analyze : Gpusim.Arch.t -> Tcr.Ir.t -> report
val gflops : report -> float

(** TTGT time of the cheapest strength-reduction variant. *)
val best_time : Gpusim.Arch.t -> Tuner.benchmark -> float
