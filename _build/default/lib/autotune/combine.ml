(* Merge the chosen OCTOPI variant of each statement of a multi-statement
   computation (e.g. local_grad3's three outputs) into a single TCR program
   sharing inputs and extents, with per-statement temporaries renamed apart.
   The merged program is what the GPU simulator times: one kernel per
   statement, transfers counted once. *)

let rename_temp stmt_index name = Printf.sprintf "s%d_%s" (stmt_index + 1) name

let merge ~label (choices : (Octopi.Contraction.t * Octopi.Variants.variant) list) =
  if choices = [] then invalid_arg "Combine.merge: no statements";
  (* extents must agree across statements *)
  let extents =
    List.fold_left
      (fun acc (c : Octopi.Contraction.t * _) ->
        let c = fst c in
        List.fold_left
          (fun acc (i, e) ->
            match List.assoc_opt i acc with
            | None -> acc @ [ (i, e) ]
            | Some e' ->
              if e <> e' then
                invalid_arg
                  (Printf.sprintf "Combine.merge: index %s has extents %d and %d" i e' e)
              else acc)
          acc c.extents)
      [] choices
  in
  let irs =
    List.mapi
      (fun si (contraction, variant) ->
        (si, Tcr.Ir.of_variant ~label contraction variant))
      choices
  in
  let rename si (ir : Tcr.Ir.t) name =
    let is_temp =
      List.exists (fun (v : Tcr.Ir.var) -> v.name = name && v.role = Tcr.Ir.Temp) ir.vars
    in
    if is_temp then rename_temp si name else name
  in
  let vars =
    List.concat_map
      (fun (si, (ir : Tcr.Ir.t)) ->
        List.map
          (fun (v : Tcr.Ir.var) -> { v with Tcr.Ir.name = rename si ir v.name })
          ir.vars)
      irs
    |> List.fold_left
         (fun acc (v : Tcr.Ir.var) ->
           match List.find_opt (fun (w : Tcr.Ir.var) -> w.name = v.name) acc with
           | None -> acc @ [ v ]
           | Some w ->
             (* the same tensor may be referenced under different index
                names by different statements; shapes must agree *)
             let shape dims = List.map (fun i -> List.assoc i extents) dims in
             if shape w.dims <> shape v.dims then
               invalid_arg
                 (Printf.sprintf "Combine.merge: tensor %s declared with differing shapes"
                    v.name)
             else acc)
         []
  in
  let ops =
    List.concat_map
      (fun (si, (ir : Tcr.Ir.t)) ->
        List.map
          (fun (op : Tcr.Ir.op) ->
            {
              op with
              Tcr.Ir.out = rename si ir op.out;
              factors = List.map (fun (n, d) -> (rename si ir n, d)) op.factors;
            })
          ir.ops)
      irs
  in
  let t = { Tcr.Ir.label; extents; vars; ops } in
  Tcr.Ir.validate t;
  t
