lib/autotune/store.ml: List Printf String Tcr Tuner
