lib/autotune/evaluator.ml: Gpusim Hashtbl List String Tcr
