lib/autotune/combine.mli: Octopi Tcr
