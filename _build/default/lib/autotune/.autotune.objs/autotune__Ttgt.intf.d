lib/autotune/ttgt.mli: Gpusim Tcr Tuner
