lib/autotune/ttgt.ml: Gpusim List Tcr Tuner
