lib/autotune/tuner.mli: Gpusim Octopi Surf Tcr Util
