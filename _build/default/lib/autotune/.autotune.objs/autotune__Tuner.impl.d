lib/autotune/tuner.ml: Array Codegen Combine Cpusim Evaluator Gpusim Hashtbl List Logs Octopi Printf String Surf Tcr Tensor Util
