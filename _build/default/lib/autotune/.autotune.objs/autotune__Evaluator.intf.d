lib/autotune/evaluator.mli: Gpusim Hashtbl Tcr
