lib/autotune/store.mli: Tcr Tuner
