lib/autotune/combine.ml: List Octopi Printf Tcr
