(* The TTGT (Transpose-Transpose-GEMM-Transpose) baseline: evaluating each
   binary contraction by reshaping its operands into matrices and calling a
   vendor GEMM, the strategy of the large-tensor frameworks the paper
   contrasts itself with (TCE, libtensor, Cyclops; Section VII).

   For each TCR statement the indices partition into
   - B: output indices present in both factors (batched GEMM dimension),
   - M: output indices from the first factor,
   - N: output indices from the second factor,
   - K: the contracted indices,
   and each operand needs an explicit transpose whenever its natural layout
   does not already group as (B, M, K) / (B, K, N) / (B, M, N) in order.

   On the paper's small-tensor workloads this path loses badly - tiny
   M x N grids leave the chip idle and the transposes cost as much as the
   math - which is precisely the motivation for Barracuda's direct
   kernels. *)

type op_mapping = {
  op : Tcr.Ir.op;
  b_indices : string list;
  m_indices : string list;
  n_indices : string list;
  k_indices : string list;
  transposes : string list;  (* names of tensors needing an explicit copy *)
  gemm : Gpusim.Gemm.analysis;
  time_s : float;
}

let product extents l =
  List.fold_left (fun acc i -> acc * List.assoc i extents) 1 l

(* A tensor is usable without a transpose when its indices appear as the
   concatenation of the required groups in order (each group's internal
   order free but fixed by the group list we pass). We require the stronger
   property that the reference's index sequence is [groups] flattened up to
   within-group order, checked by group membership monotonicity. *)
let needs_transpose (dims : string list) (groups : string list list) =
  let group_of i =
    let rec find gi = function
      | [] -> -1
      | g :: rest -> if List.mem i g then gi else find (gi + 1) rest
    in
    find 0 groups
  in
  let ranks = List.map group_of dims in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  not (monotone ranks)

let map_op (arch : Gpusim.Arch.t) (ir : Tcr.Ir.t) (op : Tcr.Ir.op) =
  match op.factors with
  | [ (f1, d1); (f2, d2) ] ->
    let k_indices = Tcr.Ir.reduction_indices op in
    let in1 i = List.mem i d1 and in2 i = List.mem i d2 in
    let b_indices = List.filter (fun i -> in1 i && in2 i) op.out_indices in
    let m_indices =
      List.filter (fun i -> in1 i && not (List.mem i b_indices)) op.out_indices
    in
    let n_indices =
      List.filter (fun i -> in2 i && not (List.mem i b_indices)) op.out_indices
    in
    let extents = ir.extents in
    let m = max 1 (product extents m_indices) in
    let n = max 1 (product extents n_indices) in
    let k = max 1 (product extents k_indices) in
    let batch = max 1 (product extents b_indices) in
    let transposes =
      List.filter_map
        (fun (name, dims, groups) ->
          if needs_transpose dims groups then Some name else None)
        [
          (f1, d1, [ b_indices; m_indices; k_indices ]);
          (f2, d2, [ b_indices; k_indices; n_indices ]);
          (op.out, op.out_indices, [ b_indices; m_indices; n_indices ]);
        ]
    in
    let t_transpose =
      List.fold_left
        (fun acc name ->
          acc +. Gpusim.Gemm.transpose_time arch ~bytes:(Tcr.Ir.var_bytes ir name))
        0.0 transposes
    in
    let gemm = Gpusim.Gemm.analyze arch ~m ~n ~k ~batch in
    {
      op;
      b_indices;
      m_indices;
      n_indices;
      k_indices;
      transposes;
      gemm;
      time_s = t_transpose +. gemm.time_s;
    }
  | [ (name, _) ] ->
    (* unary reduction/copy: a bandwidth-bound library kernel *)
    let bytes = Tcr.Ir.var_bytes ir name + Tcr.Ir.var_bytes ir op.out in
    let t =
      (arch.kernel_launch_us *. 1e-6)
      +. (float_of_int bytes /. (arch.mem_bw_gbs *. 1e9 *. arch.bw_efficiency))
    in
    let gemm = Gpusim.Gemm.analyze arch ~m:1 ~n:1 ~k:1 ~batch:1 in
    {
      op;
      b_indices = [];
      m_indices = op.out_indices;
      n_indices = [];
      k_indices = Tcr.Ir.reduction_indices op;
      transposes = [];
      gemm;
      time_s = t;
    }
  | _ ->
    invalid_arg
      "Ttgt.map_op: TTGT applies to binary contractions; run strength reduction first"

type report = {
  ir : Tcr.Ir.t;
  mappings : op_mapping list;
  kernel_time_s : float;
  flops : int;  (* the contraction flops, excluding transpose overhead *)
}

let analyze (arch : Gpusim.Arch.t) (ir : Tcr.Ir.t) =
  let mappings = List.map (map_op arch ir) ir.ops in
  {
    ir;
    mappings;
    kernel_time_s = List.fold_left (fun acc m -> acc +. m.time_s) 0.0 mappings;
    flops = Tcr.Ir.flops ir;
  }

let gflops r = float_of_int r.flops /. r.kernel_time_s /. 1e9

(* TTGT time of the CPU-best variant of a benchmark (libraries also pick
   the cheapest factorization). *)
let best_time (arch : Gpusim.Arch.t) (b : Tuner.benchmark) =
  List.fold_left
    (fun acc (c : Tuner.variant_choice) -> min acc (analyze arch c.v_ir).kernel_time_s)
    infinity (Tuner.variant_choices b)
