(** Merge the chosen OCTOPI variant of each statement of a multi-statement
    computation into a single TCR program sharing inputs and extents, with
    per-statement temporaries renamed apart (s1_T1, s2_T1, ...). Statements
    may accumulate into the same output (local_grad3t) or feed each other
    (the joint Nekbone benchmark). The merged program is what the GPU
    simulator times: one kernel per statement, transfers counted once. *)

val rename_temp : int -> string -> string

(** Raises [Invalid_argument] on conflicting extents or on the same tensor
    name declared with different shapes. *)
val merge :
  label:string -> (Octopi.Contraction.t * Octopi.Variants.variant) list -> Tcr.Ir.t
