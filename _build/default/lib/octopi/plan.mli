(** Strength reduction (paper Algorithm 1): enumeration of the ways an
    n-way contraction can be evaluated as a tree of binary contractions
    over temporaries, with the eager unary sum-out of indices that occur in
    a single term. For the paper's Eqn.(1), {!enumerate} yields exactly 15
    plans, 6 of which share the minimal flop count. *)

type node = {
  indices : string list;  (** free indices of this term *)
  kind : kind;
}

and kind =
  | Input of string
  | Reduce of { child : node; summed : string list }
      (** eager unary sum-out (Algorithm 1 lines 5-9) *)
  | Contract of { left : node; right : node; summed : string list }
      (** binary multiply, summing indices that occur nowhere else *)

type plan = { contraction : Contraction.t; root : node }

(** A lowered statement, [out[out_indices] += prod factors], summation over
    the indices absent from the output - exactly a TCR operation. *)
type op = {
  out : string;
  out_indices : string list;
  factors : (string * string list) list;
}

(** Input tensor names, left to right. *)
val node_inputs : node -> string list

(** Structural key invariant under product commutativity; used to
    deduplicate enumeration paths. *)
val canonical : node -> string

(** Every distinct contraction tree; worst case (2n-3)!! trees for n
    factors. *)
val enumerate : Contraction.t -> plan list

(** Flops of a plan: each Contract node costs a multiply and an add per
    point of the union of its children's index spaces; each Reduce an add
    per point. *)
val flops : plan -> int

(** Post-order statement sequence, temporaries named T1, T2, ...; the root
    writes the contraction's output. *)
val lower : plan -> op list

(** Names and index lists of the temporaries a plan introduces. *)
val temporaries : plan -> (string * string list) list

(** Evaluate op-by-op with the einsum oracle (checks that strength
    reduction preserves semantics). *)
val evaluate : plan -> (string * Tensor.Dense.t) list -> Tensor.Dense.t

(** Sorted cheapest-first (stable). *)
val sorted_by_flops : plan list -> plan list

val minimal_flop_plans : plan list -> plan list

(** One-line rendering of {!lower}, for logs and the CLI. *)
val describe : plan -> string
