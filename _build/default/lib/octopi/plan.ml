(* Strength reduction (paper Algorithm 1): enumeration of the ways an n-way
   contraction can be evaluated as a tree of binary contractions over
   temporaries.

   Each enumeration result is a [plan]: a tree whose leaves are the input
   tensors, whose [Contract] nodes multiply two sub-terms summing out every
   contraction index that no longer occurs elsewhere, and whose [Reduce]
   nodes perform the eager unary sum-out of Algorithm 1 lines 5-9 (an index
   occurring in a single term is summed immediately - doing so never
   increases cost). A plan lowers to a sequence of [op]s - exactly the TCR
   statements of Figure 2(b). *)

type node = {
  indices : string list;  (* free indices of this term, in canonical order *)
  kind : kind;
}

and kind =
  | Input of string
  | Reduce of { child : node; summed : string list }
  | Contract of { left : node; right : node; summed : string list }

type plan = {
  contraction : Contraction.t;
  root : node;
}

(* A lowered statement: out[out_indices] += prod factors, summing implicit. *)
type op = {
  out : string;
  out_indices : string list;
  factors : (string * string list) list;
}

let node_inputs node =
  let rec go acc = function
    | { kind = Input name; _ } -> name :: acc
    | { kind = Reduce { child; _ }; _ } -> go acc child
    | { kind = Contract { left; right; _ }; _ } -> go (go acc left) right
  in
  List.rev (go [] node)

(* Canonical structural key used to deduplicate plans that DFS reaches via
   different pair-choice orders. Children are sorted so that commutativity
   of the product does not create spurious variants. *)
let rec canonical node =
  match node.kind with
  | Input name -> name
  | Reduce { child; summed } ->
    Printf.sprintf "(sum%s %s)" (String.concat "" (List.sort compare summed)) (canonical child)
  | Contract { left; right; summed } ->
    let a = canonical left and b = canonical right in
    let l, r = if a <= b then (a, b) else (b, a) in
    Printf.sprintf "(%s*%s/%s)" l r (String.concat "" (List.sort compare summed))

(* ------------------------------------------------------------------ *)
(* Enumeration *)

let union a b = List.sort_uniq compare (a @ b)
let diff a b = List.filter (fun x -> not (List.mem x b)) a

(* Contraction indices of [indices] that occur in no other live term and not
   in the output, hence may be summed out now. *)
let summable contraction other_indices indices =
  List.filter
    (fun i ->
      List.mem i contraction.Contraction.sum_indices && not (List.mem i other_indices))
    indices

(* Apply the eager unary sum-out to every live term. *)
let reduce_terms contraction terms =
  List.mapi
    (fun pos term ->
      let other =
        List.concat (List.filteri (fun j _ -> j <> pos) (List.map (fun t -> t.indices) terms))
      in
      let summed = summable contraction other term.indices in
      if summed = [] then term
      else { indices = diff term.indices summed; kind = Reduce { child = term; summed } })
    terms

(* Enumerate every distinct contraction tree. Worst case is (2n-3)!! trees
   for n factors; the paper's workloads have n <= 4 (15 trees). *)
let enumerate contraction =
  (* Leaves keep the declared index order: it defines the input layout. *)
  let leaves =
    List.map
      (fun (f : Ast.tensor_ref) -> { indices = f.indices; kind = Input f.name })
      contraction.Contraction.factors
  in
  let seen = Hashtbl.create 64 in
  let results = ref [] in
  let rec go terms =
    let terms = reduce_terms contraction terms in
    match terms with
    | [] -> ()
    | [ root ] ->
      let key = canonical root in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        results := { contraction; root } :: !results
      end
    | _ ->
      let arr = Array.of_list terms in
      let n = Array.length arr in
      for a = 0 to n - 2 do
        for b = a + 1 to n - 1 do
          let rest = ref [] in
          for i = n - 1 downto 0 do
            if i <> a && i <> b then rest := arr.(i) :: !rest
          done;
          let other = List.concat_map (fun t -> t.indices) !rest in
          let merged = union arr.(a).indices arr.(b).indices in
          let summed = summable contraction other merged in
          let node =
            {
              indices = diff merged summed;
              kind = Contract { left = arr.(a); right = arr.(b); summed };
            }
          in
          go (!rest @ [ node ])
        done
      done
  in
  go leaves;
  List.rev !results

(* ------------------------------------------------------------------ *)
(* Cost model: flops of each loop nest *)

let space extents indices =
  List.fold_left
    (fun acc i ->
      match List.assoc_opt i extents with
      | Some e -> acc * e
      | None -> invalid_arg (Printf.sprintf "Plan.space: no extent for %s" i))
    1 indices

(* A Contract node iterates over the union of its children's free indices
   (which includes the indices it sums out); each point costs one multiply
   and one accumulate add. A Reduce node costs one add per point. *)
let rec node_flops extents node =
  match node.kind with
  | Input _ -> 0
  | Reduce { child; summed } ->
    space extents (union child.indices summed) + node_flops extents child
  | Contract { left; right; summed } ->
    let iter_space = union (union left.indices right.indices) summed in
    (2 * space extents iter_space) + node_flops extents left + node_flops extents right

let flops plan = node_flops plan.contraction.Contraction.extents plan.root

(* ------------------------------------------------------------------ *)
(* Lowering to a statement sequence *)

(* Temp names are T1, T2, ... in post-order; the final node writes the
   output tensor with the output's declared index order. *)
let lower plan =
  let counter = ref 0 in
  let ops = ref [] in
  let fresh () =
    incr counter;
    Printf.sprintf "T%d" !counter
  in
  let dest node ~is_root =
    if is_root then (plan.contraction.output, plan.contraction.output_indices)
    else (fresh (), node.indices)
  in
  let rec emit node ~is_root =
    match node.kind with
    | Input name ->
      if is_root then begin
        (* degenerate: direct copy of a single input *)
        let out, out_indices = dest node ~is_root in
        ops := { out; out_indices; factors = [ (name, node.indices) ] } :: !ops;
        (out, out_indices)
      end
      else (name, node.indices)
    | Reduce { child; summed = _ } ->
      let cname, cidx = emit child ~is_root:false in
      let out, out_indices = dest node ~is_root in
      ops := { out; out_indices; factors = [ (cname, cidx) ] } :: !ops;
      (out, out_indices)
    | Contract { left; right; summed = _ } ->
      let lname, lidx = emit left ~is_root:false in
      let rname, ridx = emit right ~is_root:false in
      let out, out_indices = dest node ~is_root in
      ops := { out; out_indices; factors = [ (lname, lidx); (rname, ridx) ] } :: !ops;
      (out, out_indices)
  in
  ignore (emit plan.root ~is_root:true);
  List.rev !ops

(* Names and index lists of the temporaries a plan introduces. *)
let temporaries plan =
  lower plan
  |> List.filter (fun op -> op.out <> plan.contraction.output)
  |> List.map (fun op -> (op.out, op.out_indices))

(* Evaluate a plan op-by-op with the einsum oracle; used to check that
   strength reduction preserves semantics. *)
let evaluate plan env =
  let bindings = Hashtbl.create 16 in
  List.iter (fun (name, t) -> Hashtbl.replace bindings name t) env;
  let result = ref None in
  List.iter
    (fun op ->
      let operands =
        List.map
          (fun (name, indices) ->
            match Hashtbl.find_opt bindings name with
            | Some t -> Tensor.Einsum.operand t indices
            | None -> invalid_arg (Printf.sprintf "Plan.evaluate: unbound tensor %s" name))
          op.factors
      in
      let value = Tensor.Einsum.contract ~output_indices:op.out_indices operands in
      Hashtbl.replace bindings op.out value;
      if op.out = plan.contraction.output then result := Some value)
    (lower plan);
  match !result with
  | Some v -> v
  | None -> invalid_arg "Plan.evaluate: plan produced no output"

(* Plans sorted by flops, cheapest first; ties keep enumeration order. *)
let sorted_by_flops plans =
  List.stable_sort (fun a b -> compare (flops a) (flops b)) plans

let minimal_flop_plans plans =
  match sorted_by_flops plans with
  | [] -> []
  | best :: _ as sorted ->
    let m = flops best in
    List.filter (fun p -> flops p = m) sorted

let describe plan =
  lower plan
  |> List.map (fun op ->
         Printf.sprintf "%s:(%s) += %s" op.out
           (String.concat "," op.out_indices)
           (String.concat "*"
              (List.map
                 (fun (n, idx) -> Printf.sprintf "%s:(%s)" n (String.concat "," idx))
                 op.factors)))
  |> String.concat "; "
