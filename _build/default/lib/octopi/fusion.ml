(* Loop-fusion analysis over a lowered op sequence.

   The paper reorders each op's loops so that indices shared with the
   neighbouring ops become outermost, enabling the producer/consumer fusion
   of Section III. Legality: a fused loop index must be a *free* (output)
   index of the producer - its value must be complete when the consumer
   reads it - while for the consumer it may be either free or a reduction
   index (accumulation across the fused loop is associative).

   The analysis yields, per op, a loop order with the fused prefix first,
   plus the pairwise fusion depths; the performance models use the depths to
   discount traffic on fused temporaries, and the sequential C emitter uses
   the loop orders. *)

type schedule = {
  ops : Plan.op list;
  loop_orders : string list list;  (* per op, all iteration indices in order *)
  fusion_depths : int list;        (* length = #ops - 1 *)
}

(* Iteration indices in natural order: output indices as declared, then
   reduction indices in order of first appearance in the factors. *)
let iteration_indices (op : Plan.op) =
  let seen = Hashtbl.create 8 in
  let keep i =
    if Hashtbl.mem seen i then false
    else begin
      Hashtbl.add seen i ();
      true
    end
  in
  List.filter keep (op.out_indices @ List.concat_map snd op.factors)

(* Indices over which [producer] and a following op that reads its output
   may share loops. *)
let fusable_pair (producer : Plan.op) (consumer : Plan.op) =
  if List.exists (fun (name, _) -> name = producer.out) consumer.factors then
    List.filter
      (fun i -> List.mem i (iteration_indices consumer))
      producer.out_indices
  else []

(* The common outer loops of a maximal run of ops starting at position 0 is
   the intersection of consecutive fusable sets; we compute pairwise depths
   and derive loop orders that put the shared indices first. *)
let analyze (ops : Plan.op list) =
  let rec pair_sets = function
    | a :: (b :: _ as rest) -> fusable_pair a b :: pair_sets rest
    | _ -> []
  in
  let shared = pair_sets ops in
  let order_for pos op =
    let before = if pos = 0 then [] else List.nth shared (pos - 1) in
    let after = if pos < List.length shared then List.nth shared pos else [] in
    let prefix =
      (* prefer indices fused with both neighbours, then predecessor, then successor *)
      let both = List.filter (fun i -> List.mem i after) before in
      let b_only = List.filter (fun i -> not (List.mem i after)) before in
      let a_only = List.filter (fun i -> not (List.mem i before)) after in
      both @ b_only @ a_only
    in
    let all = iteration_indices op in
    let free_rest =
      List.filter (fun i -> List.mem i op.out_indices && not (List.mem i prefix)) all
    in
    let red_rest =
      List.filter
        (fun i -> (not (List.mem i op.out_indices)) && not (List.mem i prefix))
        all
    in
    prefix @ free_rest @ red_rest
  in
  let loop_orders = List.mapi order_for ops in
  let fusion_depths =
    List.mapi
      (fun pos fused ->
        (* depth actually realized: longest common prefix of the two orders
           restricted to the fused set *)
        let o1 = List.nth loop_orders pos and o2 = List.nth loop_orders (pos + 1) in
        let rec common a b =
          match (a, b) with
          | x :: xs, y :: ys when x = y && List.mem x fused -> 1 + common xs ys
          | _ -> 0
        in
        common o1 o2)
      shared
  in
  { ops; loop_orders; fusion_depths }

(* Total fusion score of a schedule: sum of pairwise depths, used to rank
   OCTOPI variants by fusion opportunity. *)
let score schedule = List.fold_left ( + ) 0 schedule.fusion_depths
