(* Surface abstract syntax of the OCTOPI input language.

   The concrete syntax follows the paper's Figure 2(a):

     dims: i=10 j=10 k=10 l=10 m=10 n=10
     V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])

   A program is a list of summation statements plus optional extent
   declarations. Indices are single identifiers; tensors are identifiers
   applied to a bracketed index list. *)

type tensor_ref = { name : string; indices : string list }

type stmt = {
  lhs : tensor_ref;
  sum_indices : string list;  (* explicit Sum([...], ...) indices *)
  factors : tensor_ref list;  (* multiplied right-hand-side terms *)
  accumulate : bool;          (* [+=] rather than [=] *)
}

type program = {
  extents : (string * int) list;  (* declared index extents *)
  stmts : stmt list;
}

let pp_tensor_ref fmt { name; indices } =
  Format.fprintf fmt "%s[%s]" name (String.concat " " indices)

let pp_stmt fmt { lhs; sum_indices; factors; accumulate } =
  let rhs =
    String.concat " * "
      (List.map (fun r -> Format.asprintf "%a" pp_tensor_ref r) factors)
  in
  let op = if accumulate then "+=" else "=" in
  match sum_indices with
  | [] -> Format.fprintf fmt "%a %s %s" pp_tensor_ref lhs op rhs
  | _ ->
    Format.fprintf fmt "%a %s Sum([%s], %s)" pp_tensor_ref lhs op
      (String.concat " " sum_indices)
      rhs

let pp_program fmt { extents; stmts } =
  if extents <> [] then
    Format.fprintf fmt "dims: %s@\n"
      (String.concat " " (List.map (fun (i, e) -> Printf.sprintf "%s=%d" i e) extents));
  List.iter (fun s -> Format.fprintf fmt "%a@\n" pp_stmt s) stmts

let to_string p = Format.asprintf "%a" pp_program p
