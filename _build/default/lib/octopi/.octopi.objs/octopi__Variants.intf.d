lib/octopi/variants.mli: Contraction Fusion Plan
