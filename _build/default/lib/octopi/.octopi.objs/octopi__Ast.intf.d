lib/octopi/ast.mli: Format
