lib/octopi/contraction.mli: Ast Tensor Util
