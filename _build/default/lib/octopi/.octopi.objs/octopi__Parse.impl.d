lib/octopi/parse.ml: Ast List Printf String
