lib/octopi/fusion.mli: Plan
