lib/octopi/contraction.ml: Ast List Printf Tensor Util
