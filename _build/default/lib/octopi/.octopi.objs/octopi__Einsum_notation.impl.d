lib/octopi/einsum_notation.ml: Ast Contraction List Printf String Tensor
