lib/octopi/fusion.ml: Hashtbl List Plan
