lib/octopi/plan.mli: Contraction Tensor
