lib/octopi/ast.ml: Format List Printf String
