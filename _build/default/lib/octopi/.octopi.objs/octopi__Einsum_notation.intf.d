lib/octopi/einsum_notation.mli: Ast Tensor
