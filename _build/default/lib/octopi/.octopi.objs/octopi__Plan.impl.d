lib/octopi/plan.ml: Array Ast Contraction Hashtbl List Printf String Tensor
