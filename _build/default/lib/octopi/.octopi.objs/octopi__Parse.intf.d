lib/octopi/parse.mli: Ast
