lib/octopi/variants.ml: Contraction Fusion List Parse Plan Tensor
