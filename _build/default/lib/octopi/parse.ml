(* Hand-written lexer and recursive-descent parser for the OCTOPI DSL.

   Grammar (comments start with '#', newlines are insignificant except that
   a statement must be complete before the next begins):

     program  ::= { dims | stmt }
     dims     ::= "dims" ":" { IDENT "=" INT }
     stmt     ::= ref ("=" | "+=") rhs
     rhs      ::= "Sum" "(" "[" { IDENT } "]" "," product ")" | product
     product  ::= ref { "*" ref }
     ref      ::= IDENT "[" { IDENT } "]"
*)

exception Error of string

type token =
  | Ident of string
  | Int of int
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Comma
  | Star
  | Equal
  | PlusEqual
  | Colon
  | Eof

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int n -> Printf.sprintf "integer %d" n
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Comma -> "','"
  | Star -> "'*'"
  | Equal -> "'='"
  | PlusEqual -> "'+='"
  | Colon -> "':'"
  | Eof -> "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let pos = ref 0 in
  let emit tok = tokens := tok :: !tokens in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '#' then begin
      (* comment to end of line *)
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '[' then (emit Lbracket; incr pos)
    else if c = ']' then (emit Rbracket; incr pos)
    else if c = '(' then (emit Lparen; incr pos)
    else if c = ')' then (emit Rparen; incr pos)
    else if c = ',' then (emit Comma; incr pos)
    else if c = '*' then (emit Star; incr pos)
    else if c = ':' then (emit Colon; incr pos)
    else if c = '=' then (emit Equal; incr pos)
    else if c = '+' && !pos + 1 < n && src.[!pos + 1] = '=' then (emit PlusEqual; pos := !pos + 2)
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      emit (Int (int_of_string (String.sub src start (!pos - start))))
    end
    else if is_ident_char c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      emit (Ident (String.sub src start (!pos - start)))
    end
    else raise (Error (Printf.sprintf "unexpected character %C at offset %d" c !pos))
  done;
  emit Eof;
  List.rev !tokens

(* Mutable cursor over the token list. *)
type cursor = { mutable toks : token list }

let peek cur = match cur.toks with [] -> Eof | t :: _ -> t

let peek2 cur = match cur.toks with [] | [ _ ] -> Eof | _ :: t :: _ -> t

let advance cur = match cur.toks with [] -> () | _ :: rest -> cur.toks <- rest

let expect cur tok =
  let got = peek cur in
  if got = tok then advance cur
  else raise (Error (Printf.sprintf "expected %s but found %s" (token_to_string tok) (token_to_string got)))

let parse_ident cur =
  match peek cur with
  | Ident s -> advance cur; s
  | tok -> raise (Error (Printf.sprintf "expected identifier, found %s" (token_to_string tok)))

let parse_index_list cur =
  expect cur Lbracket;
  let rec loop acc =
    match peek cur with
    | Rbracket -> advance cur; List.rev acc
    | Ident s -> advance cur; loop (s :: acc)
    | tok -> raise (Error (Printf.sprintf "expected index or ']', found %s" (token_to_string tok)))
  in
  loop []

let parse_ref cur =
  let name = parse_ident cur in
  let indices = parse_index_list cur in
  { Ast.name; indices }

let parse_product cur =
  let rec loop acc =
    let r = parse_ref cur in
    if peek cur = Star then begin
      advance cur;
      loop (r :: acc)
    end
    else List.rev (r :: acc)
  in
  loop []

let parse_rhs cur =
  match peek cur with
  | Ident "Sum" ->
    advance cur;
    expect cur Lparen;
    let sum_indices = parse_index_list cur in
    expect cur Comma;
    let factors = parse_product cur in
    expect cur Rparen;
    (sum_indices, factors)
  | _ -> ([], parse_product cur)

let parse_dims cur =
  expect cur Colon;
  let rec loop acc =
    (* a dim entry is IDENT '=' INT; an IDENT followed by '[' starts the
       next statement instead *)
    match (peek cur, peek2 cur) with
    | Ident name, Equal -> (
      advance cur;
      expect cur Equal;
      match peek cur with
      | Int extent -> advance cur; loop ((name, extent) :: acc)
      | tok -> raise (Error (Printf.sprintf "expected extent, found %s" (token_to_string tok))))
    | _ -> List.rev acc
  in
  loop []

let program src =
  let cur = { toks = tokenize src } in
  let extents = ref [] in
  let stmts = ref [] in
  let rec loop () =
    match peek cur with
    | Eof -> ()
    | Ident "dims" ->
      advance cur;
      extents := !extents @ parse_dims cur;
      loop ()
    | Ident _ ->
      let lhs = parse_ref cur in
      let accumulate =
        match peek cur with
        | Equal -> advance cur; false
        | PlusEqual -> advance cur; true
        | tok -> raise (Error (Printf.sprintf "expected '=' or '+=', found %s" (token_to_string tok)))
      in
      let sum_indices, factors = parse_rhs cur in
      stmts := { Ast.lhs; sum_indices; factors; accumulate } :: !stmts;
      loop ()
    | tok -> raise (Error (Printf.sprintf "expected statement, found %s" (token_to_string tok)))
  in
  loop ();
  { Ast.extents = !extents; stmts = List.rev !stmts }
