(* Semantic form of a single tensor-contraction statement.

   Normalizes an [Ast.stmt]: checks index consistency, infers the summation
   index set (indices appearing in factors but not in the output, per the
   Einstein convention) and attaches extents. *)

type t = {
  output : string;
  output_indices : string list;
  factors : Ast.tensor_ref list;
  sum_indices : string list;        (* sorted, no duplicates *)
  extents : (string * int) list;    (* every index used has an extent *)
}

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let extent t name =
  match List.assoc_opt name t.extents with
  | Some e -> e
  | None -> invalid "no extent for index %s" name

let all_indices t =
  List.sort_uniq compare
    (t.output_indices @ List.concat_map (fun (f : Ast.tensor_ref) -> f.indices) t.factors)

(* Default extent used when the program omits a dims declaration; the paper's
   running example uses 10 for every index. *)
let default_extent = 10

let of_stmt ~extents (stmt : Ast.stmt) =
  let { Ast.lhs; sum_indices = declared; factors; accumulate = _ } = stmt in
  if factors = [] then invalid "statement for %s has no factors" lhs.name;
  let distinct_out = List.sort_uniq compare lhs.indices in
  if List.length distinct_out <> List.length lhs.indices then
    invalid "output %s repeats an index" lhs.name;
  List.iter
    (fun (f : Ast.tensor_ref) ->
      if List.length (List.sort_uniq compare f.indices) <> List.length f.indices then
        invalid "factor %s repeats an index (diagonals are unsupported)" f.name)
    factors;
  let factor_indices =
    List.sort_uniq compare (List.concat_map (fun (f : Ast.tensor_ref) -> f.indices) factors)
  in
  List.iter
    (fun i ->
      if not (List.mem i factor_indices) then
        invalid "output index %s of %s does not appear in any factor" i lhs.name)
    lhs.indices;
  let inferred = List.filter (fun i -> not (List.mem i lhs.indices)) factor_indices in
  (match declared with
  | [] -> ()
  | _ ->
    let declared_sorted = List.sort_uniq compare declared in
    if List.length declared_sorted <> List.length declared then
      invalid "summation list of %s repeats an index" lhs.name;
    List.iter
      (fun i ->
        if List.mem i lhs.indices then
          invalid "summation index %s also appears in the output of %s" i lhs.name;
        if not (List.mem i factor_indices) then
          invalid "summation index %s of %s does not appear in any factor" i lhs.name)
      declared;
    if declared_sorted <> inferred then
      invalid "summation list of %s omits contracted index" lhs.name);
  let used = List.sort_uniq compare (lhs.indices @ factor_indices) in
  let extents =
    List.map
      (fun i ->
        match List.assoc_opt i extents with
        | Some e ->
          if e <= 0 then invalid "extent of %s must be positive" i;
          (i, e)
        | None -> (i, default_extent))
      used
  in
  {
    output = lhs.name;
    output_indices = lhs.indices;
    factors;
    sum_indices = inferred;
    extents;
  }

let of_program (p : Ast.program) = List.map (of_stmt ~extents:p.extents) p.stmts

(* Flop count of the naive single-loop-nest evaluation: one (k-1)-multiply /
   one-add chain per point of the full iteration space. *)
let naive_flops t =
  let space = List.fold_left (fun acc i -> acc * extent t i) 1 (all_indices t) in
  space * List.length t.factors

(* Evaluate with the reference einsum oracle. [env] maps tensor names to
   dense tensors whose shapes agree with the declared extents. *)
let evaluate t env =
  let operands =
    List.map
      (fun (f : Ast.tensor_ref) ->
        match List.assoc_opt f.name env with
        | Some tensor -> Tensor.Einsum.operand tensor f.indices
        | None -> invalid "no data bound for tensor %s" f.name)
      t.factors
  in
  Tensor.Einsum.contract ~output_indices:t.output_indices operands

(* Random input environment for a contraction, suitable for tests. *)
let random_env ?(rng = Util.Rng.create 42) t =
  List.map
    (fun (f : Ast.tensor_ref) ->
      let shape = Tensor.Shape.of_list (List.map (extent t) f.indices) in
      (f.name, Tensor.Dense.random rng shape))
    (* bind each distinct tensor name once *)
    (List.fold_left
       (fun acc (f : Ast.tensor_ref) ->
         if List.exists (fun (g : Ast.tensor_ref) -> g.name = f.name) acc then acc
         else acc @ [ f ])
       [] t.factors)
