(** Semantic form of a single tensor-contraction statement: a validated
    [Ast.stmt] with the summation index set inferred (indices appearing in
    factors but not in the output, per the Einstein convention) and extents
    attached. *)

type t = {
  output : string;
  output_indices : string list;
  factors : Ast.tensor_ref list;
  sum_indices : string list;  (** sorted, duplicate-free *)
  extents : (string * int) list;  (** every index used has an extent *)
}

(** Raised by {!of_stmt} on malformed statements (repeated or phantom
    output indices, diagonal factors, inconsistent summation lists, ...). *)
exception Invalid of string

(** Extent of an index; raises {!Invalid} if unknown. *)
val extent : t -> string -> int

(** All indices used, sorted. *)
val all_indices : t -> string list

(** Extent assumed for indices without a [dims:] declaration (10, the
    paper's running example). *)
val default_extent : int

val of_stmt : extents:(string * int) list -> Ast.stmt -> t
val of_program : Ast.program -> t list

(** Flops of the naive single-loop-nest evaluation (e.g. O(p^6) for
    Eqn.(1)). *)
val naive_flops : t -> int

(** Evaluate directly with the einsum oracle; [env] binds factor names to
    tensors of the declared shapes. *)
val evaluate : t -> (string * Tensor.Dense.t) list -> Tensor.Dense.t

(** Random input environment (one binding per distinct factor name). *)
val random_env : ?rng:Util.Rng.t -> t -> (string * Tensor.Dense.t) list
