(** Surface abstract syntax of the OCTOPI input language (Figure 2(a)):

    {v
dims: i=10 j=10 k=10 l=10 m=10 n=10
V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])
    v} *)

type tensor_ref = { name : string; indices : string list }

type stmt = {
  lhs : tensor_ref;
  sum_indices : string list;  (** explicit [Sum([...], ...)] indices *)
  factors : tensor_ref list;  (** multiplied right-hand-side terms *)
  accumulate : bool;  (** [+=] rather than [=] *)
}

type program = {
  extents : (string * int) list;  (** declared index extents *)
  stmts : stmt list;
}

val pp_tensor_ref : Format.formatter -> tensor_ref -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_program : Format.formatter -> program -> unit

(** Concrete syntax that {!Parse.program} accepts back (round-trips). *)
val to_string : program -> string
