(** Lexer and recursive-descent parser for the OCTOPI DSL.

    Grammar ([#] starts a comment to end of line):
    {v
program  ::= { dims | stmt }
dims     ::= "dims" ":" { IDENT "=" INT }
stmt     ::= ref ("=" | "+=") rhs
rhs      ::= "Sum" "(" "[" { IDENT } "]" "," product ")" | product
product  ::= ref { "*" ref }
ref      ::= IDENT "[" { IDENT } "]"
    v} *)

(** Raised with a human-readable message on any lexical or syntax error. *)
exception Error of string

(** Parse a whole program. *)
val program : string -> Ast.program
