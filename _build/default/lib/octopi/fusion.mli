(** Loop-fusion analysis over a lowered statement sequence (Section III):
    loop orders are chosen so that indices shared between producer and
    consumer become outermost. Legality: a fused index must be a free
    (output) index of the producer; for the consumer it may also be a
    reduction index (accumulation across the fused loop is associative). *)

type schedule = {
  ops : Plan.op list;
  loop_orders : string list list;
      (** per op: all iteration indices, outermost first, fused prefix
          first *)
  fusion_depths : int list;  (** realized depth per adjacent pair *)
}

(** Iteration indices of an op in natural order: output indices as
    declared, then reduction indices by first appearance. *)
val iteration_indices : Plan.op -> string list

(** Indices over which [producer] and a following consumer of its output
    may share loops; empty when there is no dataflow. *)
val fusable_pair : Plan.op -> Plan.op -> string list

val analyze : Plan.op list -> schedule

(** Sum of pairwise fusion depths; ranks variants by fusion opportunity. *)
val score : schedule -> int
