(** CPU performance model for the paper's host baseline (Intel Haswell).
    Sequential execution of the TCR loop nests is modeled per statement as
    a roofline: compute time from an achieved flops-per-cycle rate
    (degraded for non-contiguous references) versus memory time from the
    streamed bytes of cache-exceeding tensors. The OpenMP path adds
    outer-loop parallelization (bounded by the outermost parallel extent)
    and the vectorization bonus of hand-tuned kernels. *)

type t = {
  name : string;
  clock_ghz : float;
  cores : int;
  flops_per_cycle : float;  (** achieved by compiled scalar loop nests *)
  vector_bonus : float;  (** extra factor for hand-tuned/OpenMP code *)
  l1_bytes : int;
  l2_bytes : int;
  llc_bytes : int;
  mem_bw_gbs : float;  (** all cores *)
  single_core_bw_gbs : float;
  parallel_efficiency : float;
}

val haswell : t

(** Streamed DRAM bytes of one statement, including cache-aware re-read
    accounting for tensors larger than the last-level cache. *)
val op_bytes : t -> Tcr.Ir.t -> Tcr.Ir.op -> int

(** In [0.6, 1.0]: share of references contiguous under the loop order. *)
val locality_factor : Tcr.Ir.op -> float

val op_time : t -> cores:int -> vectorized:bool -> Tcr.Ir.t -> Tcr.Ir.op -> float

(** One evaluation of the whole program, single core, scalar code. *)
val sequential_time : ?cpu:t -> Tcr.Ir.t -> float

(** Vectorized multicore evaluation (defaults to all 4 cores). *)
val openmp_time : ?cpu:t -> ?cores:int -> Tcr.Ir.t -> float

val gflops_of_time : Tcr.Ir.t -> float -> float
