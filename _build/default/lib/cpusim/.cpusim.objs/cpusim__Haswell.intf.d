lib/cpusim/haswell.mli: Tcr
