lib/cpusim/openacc.ml: Gpusim List Tcr
