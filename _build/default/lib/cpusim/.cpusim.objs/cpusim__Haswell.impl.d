lib/cpusim/haswell.ml: List Tcr
