lib/cpusim/openacc.mli: Gpusim Tcr
