(** OpenACC compilation model (Section VI-B). Three GPU code-generation
    strategies over the same TCR program:

    - {e naive}: directives with no decomposition guidance - the compiler
      gangs the outermost parallel loop and vectors the innermost, leaving
      a narrow 1-D block and everything else serial;
    - {e optimized}: Barracuda's tuned decomposition as gang/vector clauses
      plus scalar replacement, but no permutation or unroll tuning;
    - Barracuda itself additionally tunes unrolling (evaluated by
      {!Autotune}, not here).

    Both strategies carry a generated-code overhead relative to the
    specialized CUDA that CUDA-CHiLL emits. *)

type strategy = Naive | Optimized of Tcr.Space.point list

val naive_overhead : float
val optimized_overhead : float

(** The naive decomposition of one statement. Raises on statements with no
    parallel loop. *)
val naive_point : Tcr.Ir.t -> Tcr.Ir.op -> Tcr.Space.point

(** True when the fallback single-parallel-loop mapping was used. *)
val degenerate : Tcr.Space.decomposition -> bool

(** Per-statement points the strategy induces (Optimized strips unrolls). *)
val points : Tcr.Ir.t -> strategy -> Tcr.Space.point list

(** Simulated time of one evaluation: kernels (with overhead) plus
    transfers amortized over [reps] (a data region encloses the measurement
    loop). Raises on degenerate decompositions. *)
val time : Gpusim.Arch.t -> Tcr.Ir.t -> reps:int -> strategy -> float

(** Kernel-only time, for application contexts that account transfers
    themselves (e.g. the Nekbone CG loop). *)
val kernel_time : Gpusim.Arch.t -> Tcr.Ir.t -> strategy -> float

val gflops : Gpusim.Arch.t -> Tcr.Ir.t -> reps:int -> strategy -> float
