(* OpenACC compilation model (Section VI-B).

   Three GPU code-generation strategies are compared on the same TCR
   program:

   - [Naive]: parallelization directives with no decomposition guidance.
     The directive compiler gangs the outermost parallel loop and vectors
     the next one, which rarely coalesces; without a data region, arrays
     are copied to and from the device around every kernel invocation.
   - [Optimized]: Barracuda's tuned thread/block decomposition expressed as
     gang/vector clauses, data kept resident, scalar replacement applied -
     but no loop permutation or unroll tuning (unroll factor 1).
   - Barracuda itself additionally tunes permutation and unrolling (and is
     evaluated by [Autotune], not here). *)

type strategy = Naive | Optimized of Tcr.Space.point list

(* The naive decomposition of one statement: the directive compiler gangs
   the outermost parallel loop and vectors the innermost one, leaving a
   narrow 1-D thread block and everything else serial. *)
let naive_point (ir : Tcr.Ir.t) (op : Tcr.Ir.op) =
  let parallel = List.filter (fun i -> List.mem i op.out_indices) op.loop_order in
  match parallel with
  | bx :: (_ :: _ as rest) ->
    ignore ir;
    let tx = List.nth rest (List.length rest - 1) in
    { Tcr.Space.decomp = { tx; ty = None; bx; by = None }; unrolls = []; red_order = [] }
  | [ only ] ->
    (* single parallel loop: gang it; vector over the innermost reduction
       loop is not legal without a reduction clause, so threads stay 1 -
       modeled as a 1-wide thread block via tx = the only parallel loop *)
    { Tcr.Space.decomp = { tx = only; ty = None; bx = only; by = None }; unrolls = []; red_order = [] }
  | [] -> invalid_arg "Openacc.naive_point: no parallel loop"

(* A kernel whose tx and bx coincide is the degenerate 1-parallel-loop case;
   split the loop conceptually: blocks = extent, 1 thread each. The
   simulator receives tx extent 1 via a synthetic serial mapping, which we
   approximate by timing it as fully uncoalesced single-thread blocks. *)
let degenerate d = d.Tcr.Space.tx = d.Tcr.Space.bx

let points ir strategy =
  match strategy with
  | Naive -> List.map (naive_point ir) ir.Tcr.Ir.ops
  | Optimized pts ->
    List.map
      (fun (p : Tcr.Space.point) -> { p with unrolls = List.map (fun (l, _) -> (l, 1)) p.unrolls; red_order = [] })
      pts

(* Directive-compiler code-quality overheads relative to the specialized
   CUDA that CUDA-CHiLL emits: the generic scheduling of "kernels" regions
   costs more than "parallel loop" regions with explicit clauses. *)
let naive_overhead = 1.4
let optimized_overhead = 1.25

(* Simulated time of one evaluation under the strategy. Both strategies
   keep a data region around the measurement loop (transfers amortized over
   [reps]); they differ in decomposition quality, tuning, and generated-code
   overhead. *)
let time (arch : Gpusim.Arch.t) (ir : Tcr.Ir.t) ~reps strategy =
  let pts = points ir strategy in
  let ok =
    List.for_all (fun (p : Tcr.Space.point) -> not (degenerate p.decomp)) pts
  in
  if not ok then
    invalid_arg "Openacc.time: degenerate decomposition unsupported by model";
  let report = Gpusim.Gpu.measure arch ir pts in
  let overhead =
    match strategy with Naive -> naive_overhead | Optimized _ -> optimized_overhead
  in
  (report.kernel_time_s *. overhead)
  +. (report.transfer.Gpusim.Transfer.time_s /. float_of_int reps)

(* Kernel-only time (no transfers), for embedding in an application context
   that accounts transfers itself (e.g. the Nekbone CG loop). *)
let kernel_time (arch : Gpusim.Arch.t) (ir : Tcr.Ir.t) strategy =
  let pts = points ir strategy in
  let report = Gpusim.Gpu.measure arch ir pts in
  let overhead =
    match strategy with Naive -> naive_overhead | Optimized _ -> optimized_overhead
  in
  report.kernel_time_s *. overhead

let gflops (arch : Gpusim.Arch.t) (ir : Tcr.Ir.t) ~reps strategy =
  float_of_int (Tcr.Ir.flops ir) /. time arch ir ~reps strategy /. 1e9
