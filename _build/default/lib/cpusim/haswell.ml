(* CPU performance model for the paper's host baseline (an Intel Haswell).

   Sequential execution of the TCR loop nests is modeled per statement as a
   roofline: compute time from an achieved flops-per-cycle rate (scalar code
   with some superscalar overlap, degraded when the references are not
   contiguous under the loop order) versus memory time from the streamed
   bytes of cache-exceeding tensors. *)

type t = {
  name : string;
  clock_ghz : float;
  cores : int;
  flops_per_cycle : float;      (* achieved by compiled scalar loop nests *)
  vector_bonus : float;         (* extra factor for hand-tuned/OpenMP code *)
  l1_bytes : int;
  l2_bytes : int;
  llc_bytes : int;
  mem_bw_gbs : float;           (* all cores *)
  single_core_bw_gbs : float;
  parallel_efficiency : float;  (* OpenMP scaling efficiency *)
}

let haswell =
  {
    name = "Haswell i7-4770";
    clock_ghz = 3.4;
    cores = 4;
    flops_per_cycle = 1.15;
    vector_bonus = 1.6;
    l1_bytes = 32 * 1024;
    l2_bytes = 256 * 1024;
    llc_bytes = 8 * 1024 * 1024;
    mem_bw_gbs = 25.6;
    single_core_bw_gbs = 14.0;
    parallel_efficiency = 0.92;
  }

(* Streamed bytes of one statement: tensors larger than the last-level
   cache are re-read from DRAM on every pass; smaller tensors are loaded
   once. The scalar-replaced output is read and written once. *)
let op_bytes (cpu : t) (ir : Tcr.Ir.t) (op : Tcr.Ir.op) =
  let tensor_bytes name = Tcr.Ir.var_bytes ir name in
  let out = 2 * tensor_bytes op.out in
  let ins =
    List.fold_left
      (fun acc (name, dims) ->
        let bytes = tensor_bytes name in
        if bytes <= cpu.llc_bytes then acc + bytes
        else begin
          (* A loop index absent from the reference re-reads the slice that
             varies inside it; re-reads only reach DRAM when that slice
             exceeds the cache. Walk loops outermost-in, tracking the slice
             still varying and the accumulated re-read factor. *)
          let rec walk loops slice passes =
            match loops with
            | [] -> passes
            | i :: rest ->
              if List.mem i dims then walk rest (slice / Tcr.Ir.extent ir i) passes
              else if slice * 8 > cpu.llc_bytes then
                walk rest slice (passes * Tcr.Ir.extent ir i)
              else passes
          in
          let elems = bytes / 8 in
          acc + (bytes * walk op.loop_order elems 1)
        end)
      0 op.factors
  in
  out + ins

(* Contiguity degradation: non-unit-stride innermost accesses cost extra. *)
let locality_factor (op : Tcr.Ir.op) =
  let refs = (op.out, op.out_indices) :: op.factors in
  let contiguous =
    List.length
      (List.filter (fun (_, dims) -> Tcr.Access.contiguous ~loop_order:op.loop_order dims) refs)
  in
  0.6 +. (0.4 *. float_of_int contiguous /. float_of_int (List.length refs))

let op_time (cpu : t) ~cores ~vectorized (ir : Tcr.Ir.t) (op : Tcr.Ir.op) =
  let flops = float_of_int (Tcr.Ir.op_flops ir op) in
  let fpc =
    cpu.flops_per_cycle *. locality_factor op
    *. if vectorized then cpu.vector_bonus else 1.0
  in
  let par =
    if cores <= 1 then 1.0
    else begin
      (* the outermost parallel loop limits usable cores *)
      let outer_extent =
        match op.loop_order with
        | i :: _ when List.mem i op.out_indices -> Tcr.Ir.extent ir i
        | _ -> 1
      in
      float_of_int (min cores outer_extent) *. cpu.parallel_efficiency
    end
  in
  let t_comp = flops /. (cpu.clock_ghz *. 1e9 *. fpc *. par) in
  let bw = if cores <= 1 then cpu.single_core_bw_gbs else cpu.mem_bw_gbs in
  let t_mem = float_of_int (op_bytes cpu ir op) /. (bw *. 1e9) in
  max t_comp t_mem

(* One evaluation of the whole program. *)
let sequential_time ?(cpu = haswell) (ir : Tcr.Ir.t) =
  List.fold_left (fun acc op -> acc +. op_time cpu ~cores:1 ~vectorized:false ir op) 0.0 ir.ops

let openmp_time ?(cpu = haswell) ?(cores = haswell.cores) (ir : Tcr.Ir.t) =
  List.fold_left (fun acc op -> acc +. op_time cpu ~cores ~vectorized:true ir op) 0.0 ir.ops

let gflops_of_time (ir : Tcr.Ir.t) time_s =
  float_of_int (Tcr.Ir.flops ir) /. time_s /. 1e9
