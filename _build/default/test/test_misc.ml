(* Remaining coverage: smaller helpers and error paths across libraries. *)

let check_int = Alcotest.(check int)
let contains = Astring_contains.contains

(* ---------------- util ---------------- *)

let test_permutations_indexed () =
  (* duplicates stay distinct by position: always n! results *)
  check_int "3! with duplicates" 6
    (List.length (Util.Combinat.permutations_indexed [ "a"; "a"; "b" ]));
  check_int "plain collapses" 3 (List.length (Util.Combinat.permutations [ "a"; "a"; "b" ]))

let test_pick_list_empty () =
  let rng = Util.Rng.create 1 in
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Util.Rng.pick_list rng []);
       false
     with Invalid_argument _ -> true)

let test_table_empty () =
  let t = Util.Table.create ~title:"empty" [] in
  Alcotest.(check bool) "renders" true (contains (Util.Table.render t) "empty")

(* ---------------- tcr printing / reading ---------------- *)

let mm_ir () =
  let set =
    match Octopi.Variants.of_string "dims: i=4 j=4 k=4\nC[i j] = Sum([k], A[i k] * B[k j])" with
    | [ s ] -> s
    | _ -> assert false
  in
  Tcr.Ir.of_variant ~label:"mm" set.contraction (List.hd set.variants)

let test_pp_op () =
  let ir = mm_ir () in
  let txt = Format.asprintf "%a" Tcr.Ir.pp_op (List.hd ir.ops) in
  Alcotest.(check string) "figure 2(b) syntax" "C:(i,j) += A:(i,k)*B:(k,j)" txt

let test_read_rejects_bad_operation () =
  Alcotest.(check bool) "no '+=' rejected" true
    (try
       ignore
         (Tcr.Read.program
            "x\naccess: linearize\ndefine:\ni = 2\nvariables:\nA:(i)\noperations:\nA:(i) B:(i)");
       false
     with Tcr.Read.Error _ -> true)

let test_read_rejects_bad_extent () =
  Alcotest.(check bool) "bad extent rejected" true
    (try
       ignore (Tcr.Read.program "x\ndefine:\ni = banana\nvariables:\noperations:\n");
       false
     with Tcr.Read.Error _ -> true)

let test_ir_var_lookup_fails () =
  let ir = mm_ir () in
  Alcotest.(check bool) "unknown var" true
    (try
       ignore (Tcr.Ir.var ir "Z");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown extent" true
    (try
       ignore (Tcr.Ir.extent ir "z");
       false
     with Invalid_argument _ -> true)

(* ---------------- kernel helpers ---------------- *)

let lowered () =
  let ir = mm_ir () in
  let point =
    {
      Tcr.Space.decomp = { tx = "j"; ty = None; bx = "i"; by = None };
      unrolls = [ ("k", 2) ];
      red_order = [];
    }
  in
  Codegen.Kernel.lower ~name:"k" ir (List.hd ir.ops) point

let test_kernel_helpers () =
  let k = lowered () in
  Alcotest.(check (list string)) "mapped" [ "j"; "i" ] (Codegen.Kernel.mapped_indices k);
  Alcotest.(check (list string)) "serial" [ "k" ] (Codegen.Kernel.serial_indices k);
  check_int "serial iterations" 4 (Codegen.Kernel.serial_iterations k);
  check_int "threads per block" 4 (Codegen.Kernel.threads_per_block k);
  check_int "blocks" 4 (Codegen.Kernel.num_blocks k);
  check_int "total threads" 16 (Codegen.Kernel.total_threads k);
  check_int "one reduction loop" 1 (List.length (Codegen.Kernel.reduction_loops k))

let test_lower_program_arity () =
  let ir = mm_ir () in
  Alcotest.(check bool) "point count enforced" true
    (try
       ignore (Codegen.Kernel.lower_program ir []);
       false
     with Invalid_argument _ -> true)

(* ---------------- transfer / gemm scaling ---------------- *)

let test_transfer_scales () =
  let arch = Gpusim.Arch.gtx980 in
  let t1 = Gpusim.Transfer.time_of_bytes arch 1_000_000 in
  let t2 = Gpusim.Transfer.time_of_bytes arch 10_000_000 in
  Alcotest.(check bool) "monotone" true (t2 > t1);
  Alcotest.(check bool) "latency floor" true
    (Gpusim.Transfer.time_of_bytes arch 0 >= arch.pcie_latency_us *. 1e-6)

let test_pcie_generation_matters () =
  (* eqn1-style tiny transfer: gen3 (gtx980) beats gen2 (k20) *)
  let b = 100_000 in
  Alcotest.(check bool) "gen3 faster" true
    (Gpusim.Transfer.time_of_bytes Gpusim.Arch.gtx980 b
    < Gpusim.Transfer.time_of_bytes Gpusim.Arch.k20 b)

(* ---------------- haswell details ---------------- *)

let test_haswell_big_tensor_reread () =
  (* a tensor above the LLC with an outer non-dim loop forces DRAM re-reads
     when the varying slice also exceeds the cache *)
  let ir =
    {
      Tcr.Ir.label = "big";
      extents = [ ("i", 4); ("j", 2048); ("k", 2048) ];
      vars =
        [
          { Tcr.Ir.name = "A"; dims = [ "j"; "k" ]; role = Tcr.Ir.Input };
          { Tcr.Ir.name = "Y"; dims = [ "i" ]; role = Tcr.Ir.Output };
        ];
      ops =
        [
          {
            Tcr.Ir.out = "Y";
            out_indices = [ "i" ];
            factors = [ ("A", [ "j"; "k" ]) ];
            loop_order = [ "i"; "j"; "k" ];
          };
        ];
    }
  in
  Tcr.Ir.validate ir;
  let cpu = Cpusim.Haswell.haswell in
  let bytes = Cpusim.Haswell.op_bytes cpu ir (List.hd ir.ops) in
  let tensor = Tcr.Ir.var_bytes ir "A" in
  (* A is 32 MiB > 8 MiB LLC and re-read for each of the 4 i iterations *)
  Alcotest.(check bool) "re-read counted" true (bytes >= 4 * tensor)

let test_haswell_cached_slice_no_reread () =
  let ir = mm_ir () in
  let cpu = Cpusim.Haswell.haswell in
  let bytes = Cpusim.Haswell.op_bytes cpu ir (List.hd ir.ops) in
  (* everything tiny: inputs once + output r/w *)
  check_int "compulsory only"
    (Tcr.Ir.var_bytes ir "A" + Tcr.Ir.var_bytes ir "B" + (2 * Tcr.Ir.var_bytes ir "C"))
    bytes

(* ---------------- openacc model edges ---------------- *)

let test_openacc_overheads_ordered () =
  Alcotest.(check bool) "naive overhead above optimized" true
    (Cpusim.Openacc.naive_overhead > Cpusim.Openacc.optimized_overhead);
  Alcotest.(check bool) "both above 1" true (Cpusim.Openacc.optimized_overhead > 1.0)

let test_openacc_degenerate_detection () =
  let d = { Tcr.Space.tx = "i"; ty = None; bx = "i"; by = None } in
  Alcotest.(check bool) "tx = bx flagged" true (Cpusim.Openacc.degenerate d)

(* ---------------- evaluator key ---------------- *)

let test_evaluator_key_distinguishes_points () =
  let ir = mm_ir () in
  let s = Tcr.Space.make ir 0 in
  match Tcr.Space.enumerate s with
  | p1 :: p2 :: _ ->
    Alcotest.(check bool) "distinct keys" true
      (Autotune.Evaluator.key ir [ p1 ] <> Autotune.Evaluator.key ir [ p2 ])
  | _ -> Alcotest.fail "expected at least two points"

(* ---------------- nwchem dsl text ---------------- *)

let test_nwchem_dsl_text () =
  let src = Benchsuite.Nwchem.dsl Benchsuite.Nwchem.D2 ~index:4 ~n:16 in
  Alcotest.(check bool) "sum over p7" true (contains src "Sum([p7]");
  Alcotest.(check bool) "t2 signature" true (contains src "t2[p7 p5 h1 h2]");
  Alcotest.(check bool) "dims line" true (contains src "h1=16")

let test_nwchem_all_parse () =
  List.iter
    (fun family ->
      List.iteri
        (fun i (b : Autotune.Tuner.benchmark) ->
          check_int
            (Printf.sprintf "%s_%d one statement" (Benchsuite.Nwchem.family_name family)
               (i + 1))
            1
            (List.length b.statements))
        (Benchsuite.Nwchem.benchmarks ~n:4 family))
    Benchsuite.Nwchem.families

(* ---------------- golden sequential C ---------------- *)

let test_golden_sequential_c () =
  let ir = mm_ir () in
  let c = Codegen.C_emit.emit_program ir in
  let expected =
    String.concat "\n"
      [
        "/* Generated by Barracuda (sequential) from TCR program mm */";
        "void mm(double *A, double *B, double *C)";
        "{";
        "  /* statement 1 */";
        "  for (int i = 0; i < 4; i++) {";
        "    for (int j = 0; j < 4; j++) {";
        "      for (int k = 0; k < 4; k++) {";
        "        C[i * 4 + j] = C[i * 4 + j] + A[i * 4 + k] * B[k * 4 + j];";
        "      }";
        "    }";
        "  }";
        "}";
        "";
      ]
  in
  Alcotest.(check string) "golden sequential text" expected c

let suite =
  [
    ("permutations indexed", `Quick, test_permutations_indexed);
    ("pick_list empty", `Quick, test_pick_list_empty);
    ("table empty", `Quick, test_table_empty);
    ("pp_op syntax", `Quick, test_pp_op);
    ("read rejects bad operation", `Quick, test_read_rejects_bad_operation);
    ("read rejects bad extent", `Quick, test_read_rejects_bad_extent);
    ("ir lookup failures", `Quick, test_ir_var_lookup_fails);
    ("kernel helpers", `Quick, test_kernel_helpers);
    ("lower_program arity", `Quick, test_lower_program_arity);
    ("transfer scales", `Quick, test_transfer_scales);
    ("pcie generation matters", `Quick, test_pcie_generation_matters);
    ("haswell big-tensor re-read", `Quick, test_haswell_big_tensor_reread);
    ("haswell cached slice", `Quick, test_haswell_cached_slice_no_reread);
    ("openacc overheads ordered", `Quick, test_openacc_overheads_ordered);
    ("openacc degenerate detection", `Quick, test_openacc_degenerate_detection);
    ("evaluator key distinguishes points", `Quick, test_evaluator_key_distinguishes_points);
    ("nwchem dsl text", `Quick, test_nwchem_dsl_text);
    ("nwchem all parse", `Quick, test_nwchem_all_parse);
    ("golden sequential c", `Quick, test_golden_sequential_c);
  ]
