(* End-to-end tests of the autotuning pipeline: statement merging, the
   evaluator, and the tuner itself (at reduced sizes so functional
   validation stays fast). *)

let check_int = Alcotest.(check int)
let arch = Gpusim.Arch.gtx980

let small_eqn1 () = Benchsuite.Suite.eqn1 ~n:6 ()
let small_lg3t () = Benchsuite.Suite.lg3t ~p:4 ~elems:3 ()

(* ---------------- Combine ---------------- *)

let test_merge_lg3t () =
  let b = small_lg3t () in
  let choices = Autotune.Tuner.variant_choices b in
  check_int "single joint variant" 1 (List.length choices);
  let ir = (List.hd choices).v_ir in
  check_int "three ops" 3 (List.length ir.ops);
  check_int "one output" 1 (List.length (Tcr.Ir.outputs ir));
  Alcotest.(check string) "output name" "w" (List.hd (Tcr.Ir.outputs ir)).name;
  (* D shared across the statements: declared once *)
  check_int "inputs: D ur us ut" 4 (List.length (Tcr.Ir.inputs ir))

let test_merge_temp_renaming () =
  (* two statements that both create a temporary T1 *)
  let src =
    "dims: i=3 j=3 k=3 l=3\n\
     X[i] = Sum([j k], A[i j] * B[j k] * C[k i])\n\
     Y[i] = Sum([j l], A[i j] * B[j l] * E[l i])"
  in
  let b = Autotune.Tuner.benchmark_of_dsl ~label:"two" src in
  let choices = Autotune.Tuner.variant_choices b in
  (* 3 trees per statement: 9 joint variants *)
  check_int "variant cross product" 9 (List.length choices);
  List.iter
    (fun (c : Autotune.Tuner.variant_choice) ->
      Tcr.Ir.validate c.v_ir;
      let temp_names = List.map (fun (v : Tcr.Ir.var) -> v.name) (Tcr.Ir.temps c.v_ir) in
      check_int "temps distinct" (List.length temp_names)
        (List.length (List.sort_uniq compare temp_names)))
    choices

let test_merge_extent_conflict () =
  let src = "dims: i=3 j=4\nX[i] = Sum([j], A[i j])\ndims: j=5\n" in
  (* conflicting extents across statements must be rejected at merge *)
  ignore src;
  let c1 = Octopi.Contraction.of_program (Octopi.Parse.program "dims: i=3 j=4\nX[i] = Sum([j], A[i j])") in
  let c2 = Octopi.Contraction.of_program (Octopi.Parse.program "dims: i=3 j=5\nY[i] = Sum([j], B[i j])") in
  let v c = List.hd (Octopi.Variants.of_contraction c).variants in
  let choice = List.map (fun c -> (c, v c)) (c1 @ c2) in
  Alcotest.(check bool) "conflict detected" true
    (try
       ignore (Autotune.Combine.merge ~label:"bad" choice);
       false
     with Invalid_argument _ -> true)

(* ---------------- Evaluator ---------------- *)

let test_evaluator_memoizes () =
  let b = small_eqn1 () in
  let choices = Autotune.Tuner.variant_choices b in
  let c = List.hd choices in
  let points = List.map (fun s -> List.hd (Tcr.Space.enumerate s)) c.spaces.op_spaces in
  let e = Autotune.Evaluator.create arch in
  let t1 = Autotune.Evaluator.objective e c.v_ir points in
  let n1 = e.evaluations in
  let t2 = Autotune.Evaluator.objective e c.v_ir points in
  Alcotest.(check (float 0.0)) "same objective" t1 t2;
  check_int "no second evaluation" n1 e.evaluations

let test_evaluator_search_cost_grows () =
  let b = small_eqn1 () in
  let c = List.hd (Autotune.Tuner.variant_choices b) in
  let e = Autotune.Evaluator.create arch in
  let rng = Util.Rng.create 3 in
  let before = e.search_seconds in
  let points = List.map (fun s -> Tcr.Space.sample rng s) c.spaces.op_spaces in
  ignore (Autotune.Evaluator.objective e c.v_ir points);
  Alcotest.(check bool) "cost accounted" true (e.search_seconds > before)

(* ---------------- Tuner ---------------- *)

let tune_small ?strategy () =
  let b = small_eqn1 () in
  let cfg = { Surf.Search.default_config with max_evals = 30; batch_size = 6 } in
  let strategy =
    match strategy with Some s -> s | None -> Autotune.Tuner.Surf_search cfg
  in
  Autotune.Tuner.tune ~strategy ~pool_per_variant:40 ~rng:(Util.Rng.create 21) ~arch b

let test_tune_end_to_end () =
  let r = tune_small () in
  Alcotest.(check bool) "positive gflops" true (r.gflops > 0.0);
  check_int "fifteen variants" 15 r.variant_count;
  Alcotest.(check bool) "pool bounded" true (r.pool_size <= 15 * 40);
  check_int "respects budget" 30 r.evaluations

let test_tune_result_valid () =
  (* the tuned program must compute the correct tensor *)
  let r = tune_small () in
  Alcotest.(check bool) "functional validation" true (Autotune.Tuner.validate r)

let test_tune_deterministic () =
  let r1 = tune_small () in
  let r2 = tune_small () in
  Alcotest.(check (float 0.0)) "same result" r1.gflops r2.gflops

let test_tune_emit_cuda () =
  let r = tune_small () in
  let cuda = Autotune.Tuner.emit_cuda r in
  Alcotest.(check bool) "kernels emitted" true
    (Astring_contains.count cuda "__global__" >= 1)

let test_tune_exhaustive_at_least_as_good () =
  let r_surf = tune_small () in
  let r_ex = tune_small ~strategy:Autotune.Tuner.Exhaustive () in
  Alcotest.(check bool) "exhaustive is a lower bound" true
    (r_ex.best_report.kernel_time_s <= r_surf.best_report.kernel_time_s +. 1e-12)

let test_tune_convergence_matches_evals () =
  let r = tune_small () in
  check_int "curve length" r.evaluations (List.length r.convergence)

let test_cpu_baseline_uses_best_variant () =
  let b = small_eqn1 () in
  let t_best = Autotune.Tuner.best_sequential_time b in
  let choices = Autotune.Tuner.variant_choices b in
  List.iter
    (fun (c : Autotune.Tuner.variant_choice) ->
      Alcotest.(check bool) "minimal" true
        (t_best <= Cpusim.Haswell.sequential_time c.v_ir +. 1e-15))
    choices

let test_min_variant_flops () =
  let b = small_eqn1 () in
  (* n = 6: three binary nests of 2 x 6^4 flops *)
  check_int "min flops" (3 * 2 * (6 * 6 * 6 * 6)) (Autotune.Tuner.min_variant_flops b)

let suite =
  [
    ("merge lg3t", `Quick, test_merge_lg3t);
    ("merge renames temps", `Quick, test_merge_temp_renaming);
    ("merge extent conflict", `Quick, test_merge_extent_conflict);
    ("evaluator memoizes", `Quick, test_evaluator_memoizes);
    ("evaluator accounts search cost", `Quick, test_evaluator_search_cost_grows);
    ("tune end to end", `Quick, test_tune_end_to_end);
    ("tuned program is correct", `Slow, test_tune_result_valid);
    ("tune deterministic", `Quick, test_tune_deterministic);
    ("tune emits cuda", `Quick, test_tune_emit_cuda);
    ("exhaustive lower-bounds surf", `Slow, test_tune_exhaustive_at_least_as_good);
    ("convergence curve length", `Quick, test_tune_convergence_matches_evals);
    ("cpu baseline minimal", `Quick, test_cpu_baseline_uses_best_variant);
    ("min variant flops", `Quick, test_min_variant_flops);
  ]
