(* Final edge-case batch: remaining behaviours at module boundaries. *)

let check_int = Alcotest.(check int)
let contains = Astring_contains.contains

(* ---------------- tensor odds and ends ---------------- *)

let test_dense_fill_map () =
  let t = Tensor.Dense.create (Tensor.Shape.of_list [ 2; 2 ]) in
  Tensor.Dense.fill t 3.0;
  Alcotest.(check (float 0.0)) "filled" 3.0 (Tensor.Dense.get t [| 1; 1 |]);
  let doubled = Tensor.Dense.map (fun x -> 2.0 *. x) t in
  Alcotest.(check (float 0.0)) "mapped" 6.0 (Tensor.Dense.get doubled [| 0; 0 |]);
  Alcotest.(check (float 0.0)) "original intact" 3.0 (Tensor.Dense.get t [| 0; 0 |])

let test_dense_to_string_truncates () =
  let t = Tensor.Dense.create (Tensor.Shape.of_list [ 100 ]) in
  let s = Tensor.Dense.to_string ~max_elems:4 t in
  Alcotest.(check bool) "ellipsis" true (contains s "...")

let test_shape_to_string () =
  Alcotest.(check string) "format" "(2,3)"
    (Tensor.Shape.to_string (Tensor.Shape.of_list [ 2; 3 ]))

let test_rank0_tensor () =
  (* scalars arise from full reductions *)
  let t = Tensor.Dense.create (Tensor.Shape.of_list []) in
  check_int "one element" 1 (Tensor.Dense.num_elements t);
  Tensor.Dense.set t [||] 7.0;
  Alcotest.(check (float 0.0)) "scalar get" 7.0 (Tensor.Dense.get t [||])

(* ---------------- allocate_produced ---------------- *)

let mm_ir () =
  let set =
    match Octopi.Variants.of_string "dims: i=4 j=4 k=4\nC[i j] = Sum([k], A[i k] * B[k j])" with
    | [ s ] -> s
    | _ -> assert false
  in
  Tcr.Ir.of_variant ~label:"mm" set.contraction (List.hd set.variants)

let test_allocate_produced () =
  let ir = mm_ir () in
  let rng = Util.Rng.create 1 in
  let inputs =
    [ ("A", Tensor.Dense.random rng (Tcr.Ir.var_shape ir "A"));
      ("B", Tensor.Dense.random rng (Tcr.Ir.var_shape ir "B")) ]
  in
  let env = Codegen.Exec.allocate_produced ir inputs in
  check_int "inputs + output" 3 (List.length env);
  Alcotest.(check (float 0.0)) "output zeroed" 0.0
    (Tensor.Dense.get (List.assoc "C" env) [| 0; 0 |])

(* ---------------- s1 kernels: empty reduction spaces ---------------- *)

let s1_space () =
  let b = Benchsuite.Nwchem.benchmark ~n:4 Benchsuite.Nwchem.S1 ~index:1 in
  let c = List.hd (Autotune.Tuner.variant_choices b) in
  List.hd c.spaces.op_spaces

let test_s1_no_red_orders () =
  let s = s1_space () in
  Alcotest.(check (list (list string))) "single empty order" [ [] ]
    (Tcr.Space.red_orders s)

let test_s1_annotations_no_permute () =
  let b = Benchsuite.Nwchem.benchmark ~n:4 Benchsuite.Nwchem.S1 ~index:1 in
  let c = List.hd (Autotune.Tuner.variant_choices b) in
  let a = Tcr.Orio.annotations c.spaces in
  Alcotest.(check bool) "no permute directive" true (not (contains a "permute("))

(* ---------------- CSE and the dependence graph compose ---------------- *)

let test_cse_then_depgraph () =
  let src =
    "dims: i=3 j=3 k=3 l=3\n\
     X[i j] = Sum([k l], A[i k] * U[k l] * B[l j])\n\
     Y[i j] = Sum([k l], A[i k] * U[k l] * C[l j])"
  in
  let b = Autotune.Tuner.benchmark_of_dsl ~label:"cse" src in
  let choice =
    List.find
      (fun (c : Autotune.Tuner.variant_choice) ->
        List.length
          (List.filter
             (fun (op : Tcr.Ir.op) -> List.map fst op.factors = [ "A"; "U" ])
             c.v_ir.ops)
        = 2)
      (Autotune.Tuner.variant_choices b)
  in
  let optimized, stats = Tcr.Cse.optimize choice.v_ir in
  check_int "one shared op removed" 1 stats.eliminated_ops;
  let g = Tcr.Depgraph.build optimized in
  (* the shared temporary now feeds both remaining chains *)
  Alcotest.(check bool) "still a DAG with waves" true
    (List.length (Tcr.Depgraph.waves g) >= 2)

(* ---------------- store header robustness ---------------- *)

let test_store_header_any_order () =
  let text =
    String.concat "\n"
      [ "barracuda-tuning v1"; "gflops: 1.5"; "arch: GTX 980"; "variants: 0";
        "label: mm"; "recipe:"; "cuda(1,block={i,1},thread={j,1})" ]
  in
  let s = Autotune.Store.parse text in
  Alcotest.(check string) "label parsed" "mm" s.label;
  Alcotest.(check (float 1e-9)) "gflops parsed" 1.5 s.gflops

(* ---------------- gemm transpose cost ---------------- *)

let test_transpose_time_monotone () =
  let arch = Gpusim.Arch.gtx980 in
  Alcotest.(check bool) "monotone in bytes" true
    (Gpusim.Gemm.transpose_time arch ~bytes:1_000_000
    < Gpusim.Gemm.transpose_time arch ~bytes:100_000_000)

(* ---------------- multi-statement variant sets ---------------- *)

let test_of_string_multi () =
  let sets =
    Octopi.Variants.of_string
      "dims: i=3 j=3 k=3\nX[i j] = A[i k] * B[k j]\nY[i] = Sum([j], X2[i j])"
  in
  check_int "two statement sets" 2 (List.length sets);
  List.iter
    (fun (s : Octopi.Variants.t) ->
      Alcotest.(check bool) "each validates" true (Octopi.Variants.validate s))
    sets

(* ---------------- driver honors reps ---------------- *)

let test_driver_reps () =
  let ir = mm_ir () in
  let ps = Tcr.Space.of_ir ir in
  let points = List.map (fun s -> List.hd (Tcr.Space.enumerate s)) ps.op_spaces in
  let src = Codegen.Driver.emit ~reps:7 ir points in
  Alcotest.(check bool) "rep count in loop" true (contains src "rep < 7")

let suite =
  [
    ("dense fill/map", `Quick, test_dense_fill_map);
    ("dense to_string truncates", `Quick, test_dense_to_string_truncates);
    ("shape to_string", `Quick, test_shape_to_string);
    ("rank-0 tensor", `Quick, test_rank0_tensor);
    ("allocate produced", `Quick, test_allocate_produced);
    ("s1: no reduction orders", `Quick, test_s1_no_red_orders);
    ("s1: annotations without permute", `Quick, test_s1_annotations_no_permute);
    ("cse composes with depgraph", `Quick, test_cse_then_depgraph);
    ("store header order-insensitive", `Quick, test_store_header_any_order);
    ("gemm transpose monotone", `Quick, test_transpose_time_monotone);
    ("variants of multi-statement text", `Quick, test_of_string_multi);
    ("driver honors reps", `Quick, test_driver_reps);
  ]
