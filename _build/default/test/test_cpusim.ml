(* Tests for the CPU baselines (Haswell sequential / OpenMP) and the
   OpenACC compilation models. *)

let ir_of_dsl src =
  let set = match Octopi.Variants.of_string src with [ s ] -> s | _ -> assert false in
  Tcr.Ir.of_variant ~label:"t" set.contraction (List.hd set.variants)

let mm n = ir_of_dsl (Printf.sprintf "dims: i=%d j=%d k=%d\nC[i j] = Sum([k], A[i k] * B[k j])" n n n)

(* ---------------- Haswell ---------------- *)

let test_sequential_positive () =
  let ir = mm 32 in
  let t = Cpusim.Haswell.sequential_time ir in
  Alcotest.(check bool) "positive" true (t > 0.0)

let test_sequential_scales_with_work () =
  let t32 = Cpusim.Haswell.sequential_time (mm 32) in
  let t64 = Cpusim.Haswell.sequential_time (mm 64) in
  (* 8x the flops: at least 4x the time under any locality factor *)
  Alcotest.(check bool) "superlinear work growth" true (t64 > 4.0 *. t32)

let test_openmp_speedup_bounds () =
  let ir = mm 128 in
  let t_seq = Cpusim.Haswell.sequential_time ir in
  let t_omp = Cpusim.Haswell.openmp_time ir in
  let speedup = t_seq /. t_omp in
  Alcotest.(check bool) "faster than sequential" true (speedup > 1.0);
  (* 4 cores x vector bonus 1.6 x efficiency bounds the gain *)
  Alcotest.(check bool) "bounded" true (speedup <= 4.0 *. 1.6 *. 1.05)

let test_openmp_limited_by_outer_extent () =
  (* a 2-wide outermost parallel loop cannot use 4 cores *)
  let ir = ir_of_dsl "dims: i=2 j=256 k=256\nC[i j] = Sum([k], A[i k] * B[k j])" in
  let t2 = Cpusim.Haswell.openmp_time ~cores:2 ir in
  let t4 = Cpusim.Haswell.openmp_time ~cores:4 ir in
  Alcotest.(check (float 1e-12)) "no gain beyond extent" t2 t4

let test_bandwidth_bound_kernel () =
  (* s1-style: rank-6 output with a tiny input: streaming dominates and the
     4-core version gains little (paper Table IV: s1 2.47 -> 2.61 GF) *)
  let b = Benchsuite.Nwchem.benchmark ~n:16 Benchsuite.Nwchem.S1 ~index:1 in
  let ir = (List.hd (Autotune.Tuner.variant_choices b)).v_ir in
  let t_seq = Cpusim.Haswell.sequential_time ir in
  let t_omp = Cpusim.Haswell.openmp_time ir in
  Alcotest.(check bool) "memory bound: omp gains < 2.2x" true (t_seq /. t_omp < 2.2)

let test_compute_bound_kernel_scales () =
  (* d1-style: reduction raises arithmetic intensity; OpenMP scales well *)
  let b = Benchsuite.Nwchem.benchmark ~n:16 Benchsuite.Nwchem.D1 ~index:1 in
  let ir = (List.hd (Autotune.Tuner.variant_choices b)).v_ir in
  let t_seq = Cpusim.Haswell.sequential_time ir in
  let t_omp = Cpusim.Haswell.openmp_time ir in
  Alcotest.(check bool) "compute bound: omp gains > 3x" true (t_seq /. t_omp > 3.0)

let test_locality_factor_range () =
  let ir = mm 16 in
  let f = Cpusim.Haswell.locality_factor (List.hd ir.ops) in
  Alcotest.(check bool) "in [0.6, 1.0]" true (f >= 0.6 && f <= 1.0)

let test_gflops_of_time () =
  let ir = mm 16 in
  Alcotest.(check (float 1e-6)) "definition" 1.0
    (Cpusim.Haswell.gflops_of_time ir (float_of_int (Tcr.Ir.flops ir) /. 1e9))

(* ---------------- OpenACC models ---------------- *)

let arch = Gpusim.Arch.k20

let test_naive_points_structure () =
  let ir = mm 32 in
  let pts = Cpusim.Openacc.points ir Cpusim.Openacc.Naive in
  List.iter2
    (fun (p : Tcr.Space.point) (op : Tcr.Ir.op) ->
      (* naive: outermost parallel loop -> blocks, next -> threads *)
      Alcotest.(check string) "bx is outermost" (List.hd op.out_indices) p.decomp.bx;
      Alcotest.(check bool) "no unroll tuning" true (p.unrolls = []))
    pts ir.ops

let test_naive_slower_than_optimized () =
  let ir = mm 64 in
  let naive = Cpusim.Openacc.time arch ir ~reps:100 Cpusim.Openacc.Naive in
  let space = Tcr.Space.of_ir ir in
  let good = List.map (fun s -> List.hd (Tcr.Space.enumerate s)) space.op_spaces in
  let opt = Cpusim.Openacc.time arch ir ~reps:100 (Cpusim.Openacc.Optimized good) in
  Alcotest.(check bool) "naive pays transfers every run" true (naive > opt)

let test_optimized_strips_unrolls () =
  let ir = mm 32 in
  let space = Tcr.Space.of_ir ir in
  let pts =
    List.map
      (fun s ->
        let p = List.hd (Tcr.Space.enumerate s) in
        { p with Tcr.Space.unrolls = List.map (fun (l, _) -> (l, 8)) p.unrolls })
      space.op_spaces
  in
  let stripped = Cpusim.Openacc.points ir (Cpusim.Openacc.Optimized pts) in
  List.iter
    (fun (p : Tcr.Space.point) ->
      List.iter (fun (_, u) -> Alcotest.(check int) "unroll reset" 1 u) p.unrolls)
    stripped

let test_naive_gflops_below_barracuda () =
  let b = Benchsuite.Suite.lg3 ~p:12 ~elems:64 () in
  let choices = Autotune.Tuner.variant_choices b in
  let ir = (List.hd choices).v_ir in
  let naive = Cpusim.Openacc.gflops arch ir ~reps:100 Cpusim.Openacc.Naive in
  let rng = Util.Rng.create 1 in
  let r = Autotune.Tuner.tune ~rng ~arch b in
  Alcotest.(check bool) "naive well below tuned" true (naive < 0.5 *. r.gflops)

let suite =
  [
    ("sequential positive", `Quick, test_sequential_positive);
    ("sequential scales with work", `Quick, test_sequential_scales_with_work);
    ("openmp speedup bounds", `Quick, test_openmp_speedup_bounds);
    ("openmp limited by outer extent", `Quick, test_openmp_limited_by_outer_extent);
    ("bandwidth-bound kernel (s1)", `Quick, test_bandwidth_bound_kernel);
    ("compute-bound kernel scales (d1)", `Quick, test_compute_bound_kernel_scales);
    ("locality factor range", `Quick, test_locality_factor_range);
    ("gflops of time", `Quick, test_gflops_of_time);
    ("openacc naive point structure", `Quick, test_naive_points_structure);
    ("openacc naive slower than optimized", `Quick, test_naive_slower_than_optimized);
    ("openacc optimized strips unrolls", `Quick, test_optimized_strips_unrolls);
    ("openacc naive below barracuda", `Slow, test_naive_gflops_below_barracuda);
  ]
