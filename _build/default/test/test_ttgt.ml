(* Tests for the GEMM library model and the TTGT baseline. *)

let check_int = Alcotest.(check int)
let arch = Gpusim.Arch.gtx980

let ir_of_dsl src =
  let set = match Octopi.Variants.of_string src with [ s ] -> s | _ -> assert false in
  Tcr.Ir.of_variant ~label:"t" set.contraction (List.hd set.variants)

(* ---------------- Gemm model ---------------- *)

let test_gemm_flops () =
  let a = Gpusim.Gemm.analyze arch ~m:64 ~n:64 ~k:64 ~batch:2 in
  check_int "2 m n k batch" (2 * 64 * 64 * 64 * 2) a.flops

let test_gemm_large_beats_small () =
  let small = Gpusim.Gemm.analyze arch ~m:12 ~n:12 ~k:12 ~batch:1 in
  let large = Gpusim.Gemm.analyze arch ~m:2048 ~n:2048 ~k:2048 ~batch:1 in
  Alcotest.(check bool) "efficiency grows with size" true
    (Gpusim.Gemm.gflops large > 20.0 *. Gpusim.Gemm.gflops small)

let test_gemm_utilization_bounds () =
  List.iter
    (fun (m, n, k) ->
      let a = Gpusim.Gemm.analyze arch ~m ~n ~k ~batch:1 in
      Alcotest.(check bool) "utilization in (0,1]" true
        (a.utilization > 0.0 && a.utilization <= 1.0);
      Alcotest.(check bool) "k efficiency in (0,1)" true
        (a.k_efficiency > 0.0 && a.k_efficiency < 1.0))
    [ (12, 12, 12); (64, 64, 64); (1024, 1024, 8) ]

let test_gemm_small_k_penalty () =
  let k8 = Gpusim.Gemm.analyze arch ~m:1024 ~n:1024 ~k:8 ~batch:1 in
  let k512 = Gpusim.Gemm.analyze arch ~m:1024 ~n:1024 ~k:512 ~batch:1 in
  Alcotest.(check bool) "short K runs below long K" true
    (Gpusim.Gemm.gflops k8 < Gpusim.Gemm.gflops k512)

let test_gemm_rejects_bad_dims () =
  Alcotest.(check bool) "zero dim" true
    (try
       ignore (Gpusim.Gemm.analyze arch ~m:0 ~n:1 ~k:1 ~batch:1);
       false
     with Invalid_argument _ -> true)

let test_gemm_batch_fills_chip () =
  (* a tiny GEMM batched 512 times uses the chip far better than alone *)
  let single = Gpusim.Gemm.analyze arch ~m:12 ~n:12 ~k:12 ~batch:1 in
  let batched = Gpusim.Gemm.analyze arch ~m:12 ~n:12 ~k:12 ~batch:512 in
  Alcotest.(check bool) "batching raises utilization" true
    (batched.utilization > single.utilization)

(* ---------------- TTGT mapping ---------------- *)

let test_ttgt_matmul_mapping () =
  let ir = ir_of_dsl "dims: i=32 j=48 k=64\nC[i j] = Sum([k], A[i k] * B[k j])" in
  let r = Autotune.Ttgt.analyze arch ir in
  match r.mappings with
  | [ m ] ->
    check_int "M" 32 m.gemm.m;
    check_int "N" 48 m.gemm.n;
    check_int "K" 64 m.gemm.k;
    check_int "no batch" 1 m.gemm.batch;
    Alcotest.(check (list string)) "matmul needs no transposes" [] m.transposes
  | _ -> Alcotest.fail "expected one mapping"

let test_ttgt_lg3_mapping () =
  (* lg3's first statement, ur[e i j k] = D[i l] u[e l j k], maps to one
     GEMM with M = i, K = l and the batch folded into N = e x j x k - the
     matrix-multiply recast Nekbone itself uses - at the price of
     transposing u (l is not outermost in its layout) *)
  let b = Benchsuite.Suite.lg3 ~p:12 ~elems:64 () in
  let c = List.hd (Autotune.Tuner.variant_choices b) in
  let r = Autotune.Ttgt.analyze arch c.v_ir in
  let m1 = List.hd r.mappings in
  Alcotest.(check (list string)) "no true batch index" [] m1.b_indices;
  check_int "M = i" 12 m1.gemm.m;
  check_int "N = e*j*k" (64 * 12 * 12) m1.gemm.n;
  check_int "K = l" 12 m1.gemm.k;
  Alcotest.(check bool) "u needs a transpose" true (List.mem "u" m1.transposes)

let test_ttgt_transpose_detection () =
  (* B referenced as B[j k] forces a transpose for the (K, N) layout *)
  let ir = ir_of_dsl "dims: i=16 j=16 k=16\nC[i j] = Sum([k], A[i k] * B[j k])" in
  let r = Autotune.Ttgt.analyze arch ir in
  let m = List.hd r.mappings in
  Alcotest.(check (list string)) "B transposed" [ "B" ] m.transposes

let test_ttgt_transposes_cost_time () =
  let plain = ir_of_dsl "dims: i=64 j=64 k=64\nC[i j] = Sum([k], A[i k] * B[k j])" in
  let transposed = ir_of_dsl "dims: i=64 j=64 k=64\nC[i j] = Sum([k], A[i k] * B[j k])" in
  let t1 = (Autotune.Ttgt.analyze arch plain).kernel_time_s in
  let t2 = (Autotune.Ttgt.analyze arch transposed).kernel_time_s in
  Alcotest.(check bool) "transpose adds time" true (t2 > t1)

let test_ttgt_rejects_nonbinary () =
  let ir =
    {
      Tcr.Ir.label = "t";
      extents = [ ("i", 4); ("j", 4); ("k", 4) ];
      vars =
        [
          { Tcr.Ir.name = "A"; dims = [ "i"; "k" ]; role = Tcr.Ir.Input };
          { Tcr.Ir.name = "B"; dims = [ "k"; "j" ]; role = Tcr.Ir.Input };
          { Tcr.Ir.name = "D"; dims = [ "i"; "j" ]; role = Tcr.Ir.Input };
          { Tcr.Ir.name = "C"; dims = [ "i"; "j" ]; role = Tcr.Ir.Output };
        ];
      ops =
        [
          {
            Tcr.Ir.out = "C";
            out_indices = [ "i"; "j" ];
            factors = [ ("A", [ "i"; "k" ]); ("B", [ "k"; "j" ]); ("D", [ "i"; "j" ]) ];
            loop_order = [ "i"; "j"; "k" ];
          };
        ];
    }
  in
  Alcotest.(check bool) "ternary rejected" true
    (try
       ignore (Autotune.Ttgt.analyze arch ir);
       false
     with Invalid_argument _ -> true)

let test_ttgt_loses_on_small_tensors () =
  (* the paper's motivation: on lg3, the direct tuned kernels beat TTGT *)
  let b = Benchsuite.Suite.lg3 () in
  let tuned =
    Autotune.Tuner.tune ~rng:(Util.Rng.create 3) ~arch b
  in
  let t_ttgt = Autotune.Ttgt.best_time arch b in
  Alcotest.(check bool) "Barracuda faster than the library path" true
    (tuned.best_report.kernel_time_s < t_ttgt)

let test_ttgt_wins_on_large_matmul () =
  let b =
    Autotune.Tuner.benchmark_of_dsl ~label:"mm"
      "dims: i=512 j=512 k=512\nC[i j] = Sum([k], A[i k] * B[k j])"
  in
  let tuned = Autotune.Tuner.tune ~rng:(Util.Rng.create 3) ~arch b in
  let t_ttgt = Autotune.Ttgt.best_time arch b in
  Alcotest.(check bool) "library wins at size" true
    (t_ttgt < tuned.best_report.kernel_time_s)

let suite =
  [
    ("gemm flops", `Quick, test_gemm_flops);
    ("gemm large beats small", `Quick, test_gemm_large_beats_small);
    ("gemm utilization bounds", `Quick, test_gemm_utilization_bounds);
    ("gemm small-k penalty", `Quick, test_gemm_small_k_penalty);
    ("gemm rejects bad dims", `Quick, test_gemm_rejects_bad_dims);
    ("gemm batching fills chip", `Quick, test_gemm_batch_fills_chip);
    ("ttgt matmul mapping", `Quick, test_ttgt_matmul_mapping);
    ("ttgt lg3 mapping", `Quick, test_ttgt_lg3_mapping);
    ("ttgt transpose detection", `Quick, test_ttgt_transpose_detection);
    ("ttgt transposes cost time", `Quick, test_ttgt_transposes_cost_time);
    ("ttgt rejects non-binary ops", `Quick, test_ttgt_rejects_nonbinary);
    ("ttgt loses on small tensors", `Slow, test_ttgt_loses_on_small_tensors);
    ("ttgt wins on large matmul", `Slow, test_ttgt_wins_on_large_matmul);
  ]
