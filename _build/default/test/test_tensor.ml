(* Tests for the dense tensor substrate and the einsum oracle. *)

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let shape l = Tensor.Shape.of_list l

(* ---------------- Shape ---------------- *)

let test_shape_basics () =
  let s = shape [ 2; 3; 4 ] in
  check_int "rank" 3 (Tensor.Shape.rank s);
  check_int "elements" 24 (Tensor.Shape.num_elements s);
  Alcotest.(check (array int)) "strides" [| 12; 4; 1 |] (Tensor.Shape.strides s)

let test_shape_linearize () =
  let s = shape [ 2; 3; 4 ] in
  check_int "origin" 0 (Tensor.Shape.linearize s [| 0; 0; 0 |]);
  check_int "last" 23 (Tensor.Shape.linearize s [| 1; 2; 3 |]);
  check_int "middle" 17 (Tensor.Shape.linearize s [| 1; 1; 1 |])

let test_shape_linearize_bounds () =
  let s = shape [ 2; 3 ] in
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Shape.linearize: out of bounds") (fun () ->
      ignore (Tensor.Shape.linearize s [| 2; 0 |]))

let test_shape_roundtrip () =
  let s = shape [ 3; 5; 2 ] in
  for off = 0 to Tensor.Shape.num_elements s - 1 do
    check_int "roundtrip" off
      (Tensor.Shape.linearize s (Tensor.Shape.delinearize s off))
  done

let test_shape_iter_order () =
  let s = shape [ 2; 2 ] in
  let seen = ref [] in
  Tensor.Shape.iter s (fun idx -> seen := Array.copy idx :: !seen);
  Alcotest.(check int) "count" 4 (List.length !seen);
  Alcotest.(check (array int)) "row-major order: first" [| 0; 0 |] (List.nth (List.rev !seen) 0);
  Alcotest.(check (array int)) "row-major order: second" [| 0; 1 |] (List.nth (List.rev !seen) 1);
  Alcotest.(check (array int)) "row-major order: last" [| 1; 1 |] (List.hd !seen)

let test_shape_validate () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Shape.validate: non-positive extent") (fun () ->
      Tensor.Shape.validate (shape [ 2; 0 ]))

(* ---------------- Dense ---------------- *)

let test_dense_init_get () =
  let t = Tensor.Dense.init (shape [ 2; 3 ]) (fun idx -> float_of_int ((10 * idx.(0)) + idx.(1))) in
  check_float "get 0 0" 0.0 (Tensor.Dense.get t [| 0; 0 |]);
  check_float "get 1 2" 12.0 (Tensor.Dense.get t [| 1; 2 |])

let test_dense_set () =
  let t = Tensor.Dense.create (shape [ 2; 2 ]) in
  Tensor.Dense.set t [| 1; 0 |] 5.0;
  check_float "set/get" 5.0 (Tensor.Dense.get t [| 1; 0 |]);
  check_float "others zero" 0.0 (Tensor.Dense.get t [| 0; 0 |])

let test_dense_arith () =
  let a = Tensor.Dense.init (shape [ 3 ]) (fun i -> float_of_int i.(0)) in
  let b = Tensor.Dense.init (shape [ 3 ]) (fun _ -> 2.0) in
  let s = Tensor.Dense.add a b in
  check_float "add" 4.0 (Tensor.Dense.get s [| 2 |]);
  let d = Tensor.Dense.sub s b in
  check_float "sub" 2.0 (Tensor.Dense.get d [| 2 |]);
  check_float "dot" 6.0 (Tensor.Dense.dot a b);
  check_float "norm2" (sqrt 5.0) (Tensor.Dense.norm2 a);
  check_float "scale" 4.0 (Tensor.Dense.get (Tensor.Dense.scale 2.0 a) [| 2 |])

let test_dense_shape_mismatch () =
  let a = Tensor.Dense.create (shape [ 2 ]) and b = Tensor.Dense.create (shape [ 3 ]) in
  Alcotest.check_raises "add mismatch" (Invalid_argument "Dense.add: shape mismatch")
    (fun () -> ignore (Tensor.Dense.add a b))

let test_dense_approx_equal () =
  let a = Tensor.Dense.init (shape [ 2 ]) (fun _ -> 1.0) in
  let b = Tensor.Dense.init (shape [ 2 ]) (fun _ -> 1.0 +. 1e-12) in
  let c = Tensor.Dense.init (shape [ 2 ]) (fun _ -> 1.001) in
  Alcotest.(check bool) "close" true (Tensor.Dense.approx_equal a b);
  Alcotest.(check bool) "far" false (Tensor.Dense.approx_equal a c)

let test_dense_copy_independent () =
  let a = Tensor.Dense.create (shape [ 2 ]) in
  let b = Tensor.Dense.copy a in
  Tensor.Dense.set b [| 0 |] 9.0;
  check_float "original untouched" 0.0 (Tensor.Dense.get a [| 0 |])

let test_dense_of_array () =
  let t = Tensor.Dense.of_array (shape [ 2; 2 ]) [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "row major" 3.0 (Tensor.Dense.get t [| 1; 0 |]);
  Alcotest.check_raises "size mismatch" (Invalid_argument "Dense.of_array: size mismatch")
    (fun () -> ignore (Tensor.Dense.of_array (shape [ 2 ]) [| 1.0 |]))

(* ---------------- Einsum ---------------- *)

let rng = Util.Rng.create 123

let random_dense l = Tensor.Dense.random rng (shape l)

let test_einsum_inner_product () =
  let u = random_dense [ 5 ] and v = random_dense [ 5 ] in
  let r =
    Tensor.Einsum.contract ~output_indices:[]
      [ Tensor.Einsum.operand u [ "i" ]; Tensor.Einsum.operand v [ "i" ] ]
  in
  check_float "matches dot" (Tensor.Dense.dot u v) (Tensor.Dense.get r [||])

let test_einsum_matvec () =
  let a = random_dense [ 3; 4 ] and x = random_dense [ 4 ] in
  let y =
    Tensor.Einsum.contract ~output_indices:[ "i" ]
      [ Tensor.Einsum.operand a [ "i"; "j" ]; Tensor.Einsum.operand x [ "j" ] ]
  in
  for i = 0 to 2 do
    let expect = ref 0.0 in
    for j = 0 to 3 do
      expect := !expect +. (Tensor.Dense.get a [| i; j |] *. Tensor.Dense.get x [| j |])
    done;
    check_float "row" !expect (Tensor.Dense.get y [| i |])
  done

let test_einsum_matmul () =
  let a = random_dense [ 3; 4 ] and b = random_dense [ 4; 5 ] in
  let c =
    Tensor.Einsum.contract ~output_indices:[ "i"; "k" ]
      [ Tensor.Einsum.operand a [ "i"; "j" ]; Tensor.Einsum.operand b [ "j"; "k" ] ]
  in
  let expect = ref 0.0 in
  for j = 0 to 3 do
    expect := !expect +. (Tensor.Dense.get a [| 1; j |] *. Tensor.Dense.get b [| j; 2 |])
  done;
  check_float "c(1,2)" !expect (Tensor.Dense.get c [| 1; 2 |])

let test_einsum_transpose_layout () =
  (* y(j,i) = a(i,j): pure transposition via output index order *)
  let a = random_dense [ 2; 3 ] in
  let y =
    Tensor.Einsum.contract ~output_indices:[ "j"; "i" ] [ Tensor.Einsum.operand a [ "i"; "j" ] ]
  in
  check_float "transposed" (Tensor.Dense.get a [| 1; 2 |]) (Tensor.Dense.get y [| 2; 1 |])

let test_einsum_rank3_two_contracted () =
  (* C(l,i) = sum_{j,k} A(i,j,k) B(l,j,k)  - the paper's Section II example *)
  let a = random_dense [ 2; 3; 4 ] and b = random_dense [ 5; 3; 4 ] in
  let c =
    Tensor.Einsum.contract ~output_indices:[ "l"; "i" ]
      [ Tensor.Einsum.operand a [ "i"; "j"; "k" ]; Tensor.Einsum.operand b [ "l"; "j"; "k" ] ]
  in
  let expect = ref 0.0 in
  for j = 0 to 2 do
    for k = 0 to 3 do
      expect := !expect +. (Tensor.Dense.get a [| 1; j; k |] *. Tensor.Dense.get b [| 4; j; k |])
    done
  done;
  check_float "C(4,1)" !expect (Tensor.Dense.get c [| 4; 1 |])

let test_einsum_extent_conflict () =
  let a = random_dense [ 2; 3 ] and b = random_dense [ 4 ] in
  Alcotest.(check bool) "conflicting extents raise" true
    (try
       ignore
         (Tensor.Einsum.contract ~output_indices:[ "i" ]
            [ Tensor.Einsum.operand a [ "i"; "j" ]; Tensor.Einsum.operand b [ "j" ] ]);
       false
     with Invalid_argument _ -> true)

let test_einsum_repeated_output () =
  let a = random_dense [ 2; 2 ] in
  Alcotest.(check bool) "repeated output index raises" true
    (try
       ignore
         (Tensor.Einsum.contract ~output_indices:[ "i"; "i" ]
            [ Tensor.Einsum.operand a [ "i"; "j" ] ]);
       false
     with Invalid_argument _ -> true)

let test_einsum_operand_rank_mismatch () =
  let a = random_dense [ 2; 2 ] in
  Alcotest.(check bool) "operand arity raises" true
    (try
       ignore (Tensor.Einsum.operand a [ "i" ]);
       false
     with Invalid_argument _ -> true)

let test_einsum_naive_flops () =
  let a = random_dense [ 10; 10 ] and b = random_dense [ 10; 10 ] in
  let ops = [ Tensor.Einsum.operand a [ "i"; "j" ]; Tensor.Einsum.operand b [ "j"; "k" ] ] in
  check_int "2 N^3 for matmul" 2000 (Tensor.Einsum.naive_flops ~output_indices:[ "i"; "k" ] ops)

(* ---------------- Property tests ---------------- *)

let qcheck_linear =
  QCheck.Test.make ~name:"einsum is linear in the first operand" ~count:30
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (n, m) ->
      let rng = Util.Rng.create ((n * 100) + m) in
      let a = Tensor.Dense.random rng (shape [ n; m ]) in
      let b = Tensor.Dense.random rng (shape [ m ]) in
      let alpha = 3.25 in
      let y1 =
        Tensor.Einsum.contract ~output_indices:[ "i" ]
          [ Tensor.Einsum.operand (Tensor.Dense.scale alpha a) [ "i"; "j" ];
            Tensor.Einsum.operand b [ "j" ] ]
      in
      let y2 =
        Tensor.Dense.scale alpha
          (Tensor.Einsum.contract ~output_indices:[ "i" ]
             [ Tensor.Einsum.operand a [ "i"; "j" ]; Tensor.Einsum.operand b [ "j" ] ])
      in
      Tensor.Dense.approx_equal ~tol:1e-9 y1 y2)

let qcheck_operand_order =
  QCheck.Test.make ~name:"einsum is invariant to operand order" ~count:30
    QCheck.(int_range 1 5)
    (fun n ->
      let rng = Util.Rng.create (n + 77) in
      let a = Tensor.Dense.random rng (shape [ n; n ]) in
      let b = Tensor.Dense.random rng (shape [ n; n ]) in
      let c1 =
        Tensor.Einsum.contract ~output_indices:[ "i"; "k" ]
          [ Tensor.Einsum.operand a [ "i"; "j" ]; Tensor.Einsum.operand b [ "j"; "k" ] ]
      in
      let c2 =
        Tensor.Einsum.contract ~output_indices:[ "i"; "k" ]
          [ Tensor.Einsum.operand b [ "j"; "k" ]; Tensor.Einsum.operand a [ "i"; "j" ] ]
      in
      Tensor.Dense.approx_equal c1 c2)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"shape linearize/delinearize roundtrip" ~count:100
    QCheck.(triple (int_range 1 5) (int_range 1 5) (int_range 1 5))
    (fun (a, b, c) ->
      let s = shape [ a; b; c ] in
      let n = Tensor.Shape.num_elements s in
      let ok = ref true in
      for off = 0 to n - 1 do
        if Tensor.Shape.linearize s (Tensor.Shape.delinearize s off) <> off then ok := false
      done;
      !ok)

let suite =
  [
    ("shape basics", `Quick, test_shape_basics);
    ("shape linearize", `Quick, test_shape_linearize);
    ("shape linearize bounds", `Quick, test_shape_linearize_bounds);
    ("shape roundtrip", `Quick, test_shape_roundtrip);
    ("shape iter order", `Quick, test_shape_iter_order);
    ("shape validate", `Quick, test_shape_validate);
    ("dense init/get", `Quick, test_dense_init_get);
    ("dense set", `Quick, test_dense_set);
    ("dense arithmetic", `Quick, test_dense_arith);
    ("dense shape mismatch", `Quick, test_dense_shape_mismatch);
    ("dense approx equal", `Quick, test_dense_approx_equal);
    ("dense copy independent", `Quick, test_dense_copy_independent);
    ("dense of_array", `Quick, test_dense_of_array);
    ("einsum inner product", `Quick, test_einsum_inner_product);
    ("einsum matvec", `Quick, test_einsum_matvec);
    ("einsum matmul", `Quick, test_einsum_matmul);
    ("einsum transpose layout", `Quick, test_einsum_transpose_layout);
    ("einsum rank-3 double contraction", `Quick, test_einsum_rank3_two_contracted);
    ("einsum extent conflict", `Quick, test_einsum_extent_conflict);
    ("einsum repeated output", `Quick, test_einsum_repeated_output);
    ("einsum operand rank mismatch", `Quick, test_einsum_operand_rank_mismatch);
    ("einsum naive flops", `Quick, test_einsum_naive_flops);
    QCheck_alcotest.to_alcotest qcheck_linear;
    QCheck_alcotest.to_alcotest qcheck_operand_order;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
