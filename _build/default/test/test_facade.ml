(* Tests for the public Barracuda facade and a golden test pinning the
   exact CUDA text of a small kernel. *)

let check_int = Alcotest.(check int)

let mm = "dims: i=8 j=8 k=8\nC[i j] = Sum([k], A[i k] * B[k j])"

let tuned = lazy (Barracuda.tune ~seed:5 ~max_evals:20 mm)

let test_parse () =
  let b = Barracuda.parse mm in
  check_int "one statement" 1 (List.length b.statements);
  Alcotest.(check string) "default label" "tc" b.label

let test_variants () =
  match Barracuda.variants mm with
  | [ set ] -> check_int "one plan for a binary contraction" 1 (List.length set.variants)
  | _ -> Alcotest.fail "expected one statement"

let test_tune_summary () =
  let r = Lazy.force tuned in
  let s = Barracuda.summarize r in
  Alcotest.(check bool) "gflops positive" true (s.gflops > 0.0);
  Alcotest.(check bool) "search cost positive" true (s.search_seconds > 0.0);
  check_int "one variant" 1 s.variant_count;
  let rendered = Format.asprintf "%a" Barracuda.pp_summary s in
  Alcotest.(check bool) "summary mentions gflops" true
    (Astring_contains.contains rendered "GFlops")

let test_cuda_of () =
  let cuda = Barracuda.cuda_of (Lazy.force tuned) in
  check_int "one kernel" 1 (Astring_contains.count cuda "__global__")

let test_c_of_modes () =
  let r = Lazy.force tuned in
  Alcotest.(check bool) "seq" true
    (Astring_contains.contains (Barracuda.c_of r) "for (int");
  Alcotest.(check bool) "acc" true
    (Astring_contains.contains
       (Barracuda.c_of ~mode:Codegen.C_emit.Acc_naive r)
       "#pragma acc")

let test_run () =
  let r = Lazy.force tuned in
  let rng = Barracuda.Rng.create 3 in
  let shape = Barracuda.Shape.of_list [ 8; 8 ] in
  let a = Barracuda.Tensor.random rng shape and b = Barracuda.Tensor.random rng shape in
  let outputs = Barracuda.run r [ ("A", a); ("B", b) ] in
  let c = List.assoc "C" outputs in
  let want =
    Barracuda.Einsum.contract ~output_indices:[ "i"; "j" ]
      [ Barracuda.Einsum.operand a [ "i"; "k" ]; Barracuda.Einsum.operand b [ "k"; "j" ] ]
  in
  Alcotest.(check bool) "facade run matches oracle" true
    (Barracuda.Tensor.approx_equal want c)

let test_deterministic_across_calls () =
  let r1 = Barracuda.tune ~seed:9 ~max_evals:15 mm in
  let r2 = Barracuda.tune ~seed:9 ~max_evals:15 mm in
  Alcotest.(check (float 0.0)) "same tuned time" r1.time_per_eval_s r2.time_per_eval_s

let test_tune_einsum () =
  let r = Barracuda.tune_einsum ~seed:4 ~max_evals:15 "ik,kj->ij" in
  Alcotest.(check bool) "einsum front end tunes" true (r.gflops > 0.0);
  Alcotest.(check bool) "output named O" true
    (List.exists (fun (v : Barracuda.Tcr.var) -> v.name = "O") r.best.ir.vars)

let test_save_load_tuning () =
  let r = Lazy.force tuned in
  let text = Barracuda.save_tuning r in
  let ir, points = Barracuda.load_tuning r.benchmark text in
  Alcotest.(check string) "reload emits identical CUDA"
    (Barracuda.cuda_of r)
    (Barracuda.Cuda.emit_program ir points)

let test_driver_of () =
  let r = Lazy.force tuned in
  let d = Barracuda.driver_of ~reps:10 r in
  Alcotest.(check bool) "driver has main" true (Astring_contains.contains d "int main(void)")

(* ---------------- Golden CUDA ---------------- *)

let test_golden_cuda_kernel () =
  (* pin the exact kernel text for a fixed decomposition: any unintended
     change to index expressions, unrolling or scalar replacement shows up
     as a diff here *)
  let set =
    match
      Octopi.Variants.of_string "dims: i=4 j=4 k=4\nC[i j] = Sum([k], A[i k] * B[k j])"
    with
    | [ s ] -> s
    | _ -> assert false
  in
  let ir = Tcr.Ir.of_variant ~label:"mm" set.contraction (List.hd set.variants) in
  let point =
    {
      Tcr.Space.decomp = { tx = "j"; ty = None; bx = "i"; by = None };
      unrolls = [ ("k", 2) ];
      red_order = [];
    }
  in
  let kernel = Codegen.Kernel.lower ~name:"mm_GPU_1" ir (List.hd ir.ops) point in
  let expected =
    String.concat "\n"
      [
        "__global__ void mm_GPU_1(double *C, double *A, double *B)";
        "{";
        "  int tx = threadIdx.x;";
        "  int bx = blockIdx.x;";
        "  int k;";
        "  double nv;";
        "  nv = C[bx * 4 + tx];";
        "  for (k = 0; k <= 2; k += 2) {";
        "    nv = nv + A[bx * 4 + k] * B[k * 4 + tx];";
        "    nv = nv + A[bx * 4 + (k + 1)] * B[(k + 1) * 4 + tx];";
        "  }";
        "  C[bx * 4 + tx] = nv;";
        "}";
        "";
      ]
  in
  Alcotest.(check string) "golden kernel text" expected (Codegen.Cuda.emit_kernel kernel)

let suite =
  [
    ("facade parse", `Quick, test_parse);
    ("facade variants", `Quick, test_variants);
    ("facade tune summary", `Quick, test_tune_summary);
    ("facade cuda_of", `Quick, test_cuda_of);
    ("facade c_of modes", `Quick, test_c_of_modes);
    ("facade run matches oracle", `Quick, test_run);
    ("facade deterministic", `Quick, test_deterministic_across_calls);
    ("golden cuda kernel", `Quick, test_golden_cuda_kernel);
    ("facade tune_einsum", `Quick, test_tune_einsum);
    ("facade save/load tuning", `Quick, test_save_load_tuning);
    ("facade driver_of", `Quick, test_driver_of);
  ]
