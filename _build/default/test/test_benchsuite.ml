(* Tests for the benchmark suite: the Table I computations, the 27 NWChem
   kernel definitions and the Nekbone CG mini-app. *)

let check_int = Alcotest.(check int)

(* ---------------- Suite definitions ---------------- *)

let test_eqn1_definition () =
  let b = Benchsuite.Suite.eqn1 () in
  check_int "one statement" 1 (List.length b.statements);
  let c = List.hd b.statements in
  Alcotest.(check string) "output" "V" c.output;
  check_int "extent 10" 10 (Octopi.Contraction.extent c "i")

let test_lg3_definition () =
  let b = Benchsuite.Suite.lg3 () in
  check_int "three statements" 3 (List.length b.statements);
  List.iter
    (fun (c : Octopi.Contraction.t) ->
      Alcotest.(check (list string)) "one reduction" [ "l" ] c.sum_indices;
      check_int "order 12" 12 (Octopi.Contraction.extent c "i");
      check_int "batched" 512 (Octopi.Contraction.extent c "e"))
    b.statements

let test_lg3t_accumulates () =
  let b = Benchsuite.Suite.lg3t () in
  check_int "three statements" 3 (List.length b.statements);
  List.iter
    (fun (c : Octopi.Contraction.t) -> Alcotest.(check string) "all write w" "w" c.output)
    b.statements

let test_tce_definition () =
  let b = Benchsuite.Suite.tce_ex ~n:4 () in
  let c = List.hd b.statements in
  check_int "four factors" 4 (List.length c.factors);
  check_int "six contracted indices" 6 (List.length c.sum_indices);
  (* the classic example also yields 15 binary evaluation orders *)
  check_int "15 variants" 15
    (List.length (Octopi.Variants.of_contraction c).variants)

let test_all_individual () =
  check_int "four benchmarks" 4 (List.length (Benchsuite.Suite.all_individual ()))

(* ---------------- NWChem kernels ---------------- *)

let test_nwchem_counts () =
  List.iter
    (fun family ->
      check_int "nine kernels" 9 (List.length (Benchsuite.Nwchem.benchmarks family)))
    Benchsuite.Nwchem.families

let test_nwchem_labels () =
  let b = Benchsuite.Nwchem.benchmark Benchsuite.Nwchem.D1 ~index:3 in
  Alcotest.(check string) "label" "d1_3" b.label

let test_nwchem_s1_no_reduction () =
  List.iter
    (fun (b : Autotune.Tuner.benchmark) ->
      let c = List.hd b.statements in
      Alcotest.(check (list string)) "outer product" [] c.sum_indices)
    (Benchsuite.Nwchem.benchmarks ~n:4 Benchsuite.Nwchem.S1)

let test_nwchem_d1_d2_reductions () =
  let d1 = Benchsuite.Nwchem.benchmark ~n:4 Benchsuite.Nwchem.D1 ~index:5 in
  let d2 = Benchsuite.Nwchem.benchmark ~n:4 Benchsuite.Nwchem.D2 ~index:5 in
  Alcotest.(check (list string)) "d1 sums h7" [ "h7" ]
    (List.hd d1.statements).sum_indices;
  Alcotest.(check (list string)) "d2 sums p7" [ "p7" ]
    (List.hd d2.statements).sum_indices

let test_nwchem_output_signature () =
  List.iter
    (fun family ->
      List.iter
        (fun (b : Autotune.Tuner.benchmark) ->
          let c = List.hd b.statements in
          Alcotest.(check string) "writes t3" "t3" c.output;
          check_int "rank-6 output" 6 (List.length c.output_indices))
        (Benchsuite.Nwchem.benchmarks ~n:4 family))
    Benchsuite.Nwchem.families

let test_nwchem_signatures_distinct () =
  List.iter
    (fun family ->
      let sigs = Benchsuite.Nwchem.signatures family in
      check_int "nine distinct" 9 (List.length (List.sort_uniq compare sigs)))
    Benchsuite.Nwchem.families

let test_nwchem_kernels_execute () =
  (* every kernel functionally validates at n = 4 *)
  List.iter
    (fun family ->
      let b = Benchsuite.Nwchem.benchmark ~n:4 family ~index:1 in
      let c = List.hd (Autotune.Tuner.variant_choices b) in
      let rng = Util.Rng.create 2 in
      let inputs =
        List.filter_map
          (fun (v : Tcr.Ir.var) ->
            if v.role = Tcr.Ir.Input then
              Some (v.name, Tensor.Dense.random rng (Tcr.Ir.var_shape c.v_ir v.name))
            else None)
          c.v_ir.vars
      in
      let points =
        List.map (fun s -> List.hd (Tcr.Space.enumerate s)) c.spaces.op_spaces
      in
      let got = Codegen.Exec.run_program c.v_ir points inputs in
      let want = Codegen.Exec.run_reference c.v_ir inputs in
      Alcotest.(check bool)
        (Benchsuite.Nwchem.family_name family ^ " correct")
        true
        (Tensor.Dense.approx_equal (List.assoc "t3" want) (List.assoc "t3" got)))
    Benchsuite.Nwchem.families

(* ---------------- Nekbone ---------------- *)

let small_problem = { Benchsuite.Nekbone.p = 4; elems = 3 }

let test_nekbone_operator_linear () =
  let op = Benchsuite.Nekbone.make_operator small_problem in
  let rng = Util.Rng.create 31 in
  let shape = Benchsuite.Nekbone.field_shape small_problem in
  let x = Tensor.Dense.random rng shape and y = Tensor.Dense.random rng shape in
  let axy = Benchsuite.Nekbone.apply op (Tensor.Dense.add x y) in
  let ax_ay = Tensor.Dense.add (Benchsuite.Nekbone.apply op x) (Benchsuite.Nekbone.apply op y) in
  Alcotest.(check bool) "A(x+y) = A(x)+A(y)" true
    (Tensor.Dense.approx_equal ~tol:1e-8 axy ax_ay)

let test_nekbone_operator_spd () =
  let op = Benchsuite.Nekbone.make_operator small_problem in
  let rng = Util.Rng.create 32 in
  let shape = Benchsuite.Nekbone.field_shape small_problem in
  for _ = 1 to 5 do
    let x = Tensor.Dense.random rng shape in
    let quad = Tensor.Dense.dot x (Benchsuite.Nekbone.apply op x) in
    Alcotest.(check bool) "x' A x > 0" true (quad > 0.0)
  done

let test_nekbone_cg_converges () =
  let op = Benchsuite.Nekbone.make_operator small_problem in
  let rng = Util.Rng.create 33 in
  let b = Tensor.Dense.random rng (Benchsuite.Nekbone.field_shape small_problem) in
  let x, stats = Benchsuite.Nekbone.cg_solve ~tol:1e-8 ~max_iter:400 op b in
  Alcotest.(check bool) "converged" true stats.converged;
  (* verify the solution satisfies A x = b *)
  let r = Tensor.Dense.sub b (Benchsuite.Nekbone.apply op x) in
  Alcotest.(check bool) "residual small" true
    (Tensor.Dense.norm2 r /. Tensor.Dense.norm2 b < 1e-6)

let test_nekbone_residuals_decrease () =
  let op = Benchsuite.Nekbone.make_operator small_problem in
  let rng = Util.Rng.create 34 in
  let b = Tensor.Dense.random rng (Benchsuite.Nekbone.field_shape small_problem) in
  let _, stats = Benchsuite.Nekbone.cg_solve ~tol:1e-10 ~max_iter:100 op b in
  let first = List.hd stats.residuals in
  let last = List.nth stats.residuals (List.length stats.residuals - 1) in
  Alcotest.(check bool) "overall decrease" true (last < first /. 100.0)

let test_nekbone_contraction_fraction () =
  let op = Benchsuite.Nekbone.make_operator Benchsuite.Nekbone.default in
  let f = Benchsuite.Nekbone.contraction_fraction_cpu op in
  (* the paper quotes ~60% of sequential time in the contractions *)
  Alcotest.(check bool) "fraction plausible" true (f > 0.4 && f < 0.95)

let test_nekbone_perf_accounting () =
  let op = Benchsuite.Nekbone.make_operator Benchsuite.Nekbone.default in
  let t1 = Benchsuite.Nekbone.cpu_iter_time ~cores:1 op in
  let t4 = Benchsuite.Nekbone.cpu_iter_time ~cores:4 op in
  Alcotest.(check bool) "omp faster" true (t4 < t1);
  let g1 = Benchsuite.Nekbone.gflops_of_iter_time op t1 in
  Alcotest.(check bool) "1-core gflops sane" true (g1 > 0.5 && g1 < 20.0)

let suite =
  [
    ("eqn1 definition", `Quick, test_eqn1_definition);
    ("lg3 definition", `Quick, test_lg3_definition);
    ("lg3t accumulates into w", `Quick, test_lg3t_accumulates);
    ("tce definition", `Quick, test_tce_definition);
    ("all individual benchmarks", `Quick, test_all_individual);
    ("nwchem kernel counts", `Quick, test_nwchem_counts);
    ("nwchem labels", `Quick, test_nwchem_labels);
    ("nwchem s1 outer product", `Quick, test_nwchem_s1_no_reduction);
    ("nwchem d1/d2 reductions", `Quick, test_nwchem_d1_d2_reductions);
    ("nwchem output signature", `Quick, test_nwchem_output_signature);
    ("nwchem signatures distinct", `Quick, test_nwchem_signatures_distinct);
    ("nwchem kernels execute", `Slow, test_nwchem_kernels_execute);
    ("nekbone operator linear", `Quick, test_nekbone_operator_linear);
    ("nekbone operator spd", `Quick, test_nekbone_operator_spd);
    ("nekbone cg converges", `Slow, test_nekbone_cg_converges);
    ("nekbone residuals decrease", `Quick, test_nekbone_residuals_decrease);
    ("nekbone contraction fraction", `Quick, test_nekbone_contraction_fraction);
    ("nekbone perf accounting", `Quick, test_nekbone_perf_accounting);
  ]
