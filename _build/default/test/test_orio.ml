(* Tests for the Orio / CUDA-CHiLL annotation layer (Figure 2(c)). *)

let contains = Astring_contains.contains
let check_int = Alcotest.(check int)

let program_space_of src =
  let set = match Octopi.Variants.of_string src with [ s ] -> s | _ -> assert false in
  let ir = Tcr.Ir.of_variant ~label:"t" set.contraction (List.hd set.variants) in
  Tcr.Space.of_ir ir

let eqn1_space () =
  let src = "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])" in
  let set = match Octopi.Variants.of_string src with [ s ] -> s | _ -> assert false in
  let v = List.nth set.variants 14 in
  Tcr.Space.of_ir (Tcr.Ir.of_variant ~label:"ex" set.contraction v)

let test_annotations_structure () =
  let a = Tcr.Orio.annotations (eqn1_space ()) in
  Alcotest.(check bool) "param block" true (contains a "def performance_params {");
  Alcotest.(check bool) "chill block" true (contains a "/*@ begin CHiLL (");
  Alcotest.(check bool) "closing" true (contains a ") @*/");
  check_int "one PERMUTE group per kernel and dim" 3 (Astring_contains.count a "_TX[]");
  check_int "cuda skeleton per kernel" 3 (Astring_contains.count a "cuda(");
  Alcotest.(check bool) "registers directive" true (contains a "registers(");
  Alcotest.(check bool) "unroll references param" true (contains a "unroll(1,\"n\",UF_1_n)")

let test_annotations_figure2c_shape () =
  (* the paper's kernel shows a single TX candidate and TY/BY domains that
     include '1'; the same structure appears for our third kernel *)
  let a = Tcr.Orio.annotations (eqn1_space ()) in
  Alcotest.(check bool) "third kernel single tx" true
    (contains a "param PERMUTE_3_TX[] = ['k'];");
  Alcotest.(check bool) "ty domain has 1" true (contains a "'1'")

let test_recipe_roundtrip () =
  let ps = eqn1_space () in
  let rng = Util.Rng.create 7 in
  for _ = 1 to 20 do
    let points = List.map (Tcr.Space.sample rng) ps.op_spaces in
    let text = Tcr.Orio.recipe points in
    let back = Tcr.Orio.parse_recipe ps text in
    List.iter2
      (fun a b ->
        Alcotest.(check string) "roundtrip" (Tcr.Space.point_key a) (Tcr.Space.point_key b))
      points back
  done

let test_recipe_roundtrip_with_permute () =
  let ps = program_space_of "dims: i=4 j=4 k=4 l=4\nY[i j] = Sum([k l], A[i k l] * B[k j l])" in
  let rng = Util.Rng.create 9 in
  for _ = 1 to 20 do
    let points = List.map (Tcr.Space.sample rng) ps.op_spaces in
    let back = Tcr.Orio.parse_recipe ps (Tcr.Orio.recipe points) in
    List.iter2
      (fun a b ->
        Alcotest.(check string) "roundtrip" (Tcr.Space.point_key a) (Tcr.Space.point_key b))
      points back
  done

let test_recipe_defaults_unrolls () =
  let ps = program_space_of "C[i j] = Sum([k], A[i k] * B[k j])" in
  let pts = Tcr.Orio.parse_recipe ps "cuda(1,block={i,1},thread={j,1})" in
  match pts with
  | [ p ] ->
    Alcotest.(check (list (pair string int))) "unroll defaults to 1" [ ("k", 1) ] p.unrolls
  | _ -> Alcotest.fail "expected one point"

let test_recipe_ignores_registers () =
  let ps = program_space_of "C[i j] = Sum([k], A[i k] * B[k j])" in
  let pts =
    Tcr.Orio.parse_recipe ps "cuda(1,block={i,1},thread={j,1})\nregisters(1,\"k\",\"C\")"
  in
  check_int "parsed" 1 (List.length pts)

let expect_parse_error text =
  let ps = program_space_of "C[i j] = Sum([k], A[i k] * B[k j])" in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Tcr.Orio.parse_recipe ps text);
       false
     with Tcr.Orio.Parse_error _ -> true)

let test_recipe_errors () =
  expect_parse_error "unroll(1,\"k\",4)";  (* no cuda line *)
  expect_parse_error "cuda(5,block={i,1},thread={j,1})";  (* bad kernel index *)
  expect_parse_error "cuda(1,block=(i,1),thread={j,1})";  (* malformed braces *)
  expect_parse_error "frobnicate(1,2,3)" (* unknown directive *)

let test_parsed_recipe_lowers () =
  (* a parsed recipe must produce a runnable kernel with the same result *)
  let ps = program_space_of "dims: i=5 j=6 k=7\nC[i j] = Sum([k], A[i k] * B[k j])" in
  let rng = Util.Rng.create 11 in
  let points = List.map (Tcr.Space.sample rng) ps.op_spaces in
  let back = Tcr.Orio.parse_recipe ps (Tcr.Orio.recipe points) in
  let ir = ps.ir in
  let inputs =
    List.filter_map
      (fun (v : Tcr.Ir.var) ->
        if v.role = Tcr.Ir.Input then
          Some (v.name, Tensor.Dense.random rng (Tcr.Ir.var_shape ir v.name))
        else None)
      ir.vars
  in
  let a = Codegen.Exec.run_program ir points inputs in
  let b = Codegen.Exec.run_program ir back inputs in
  Alcotest.(check bool) "same computation" true
    (Tensor.Dense.approx_equal (List.assoc "C" a) (List.assoc "C" b))

let suite =
  [
    ("annotations structure", `Quick, test_annotations_structure);
    ("annotations match figure 2(c) shape", `Quick, test_annotations_figure2c_shape);
    ("recipe roundtrip", `Quick, test_recipe_roundtrip);
    ("recipe roundtrip with permute", `Quick, test_recipe_roundtrip_with_permute);
    ("recipe defaults unrolls", `Quick, test_recipe_defaults_unrolls);
    ("recipe ignores registers", `Quick, test_recipe_ignores_registers);
    ("recipe errors", `Quick, test_recipe_errors);
    ("parsed recipe lowers and runs", `Quick, test_parsed_recipe_lowers);
  ]
