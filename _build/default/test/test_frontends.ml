(* Tests for the einsum-notation front end, the tuning-result store and
   the standalone driver generator. *)

let check_int = Alcotest.(check int)
let contains = Astring_contains.contains

(* ---------------- Einsum notation ---------------- *)

let test_einsum_parse_matmul () =
  let p = Octopi.Einsum_notation.parse "ik,kj->ij" in
  match p.stmts with
  | [ s ] ->
    Alcotest.(check string) "output" "O" s.lhs.name;
    Alcotest.(check (list string)) "out indices" [ "i"; "j" ] s.lhs.indices;
    check_int "two factors" 2 (List.length s.factors);
    Alcotest.(check (list string)) "A indices" [ "i"; "k" ]
      (List.hd s.factors).indices
  | _ -> Alcotest.fail "expected one statement"

let test_einsum_eqn1 () =
  (* the paper's Eqn.(1) in einsum spelling *)
  let p =
    Octopi.Einsum_notation.parse ~output:"V" ~names:[ "A"; "B"; "C"; "U" ]
      "lk,mj,ni,lmn->ijk"
  in
  match Octopi.Contraction.of_program p with
  | [ c ] ->
    Alcotest.(check (list string)) "summed" [ "l"; "m"; "n" ] c.sum_indices;
    check_int "15 variants" 15
      (List.length (Octopi.Variants.of_contraction c).variants)
  | _ -> Alcotest.fail "expected one contraction"

let test_einsum_to_dsl_roundtrip () =
  let dsl = Octopi.Einsum_notation.to_dsl ~extents:[ ("i", 3); ("j", 4); ("k", 5) ] "ik,kj->ij" in
  let p = Octopi.Parse.program dsl in
  check_int "parses back" 1 (List.length p.stmts);
  Alcotest.(check (list (pair string int))) "extents kept"
    [ ("i", 3); ("j", 4); ("k", 5) ] p.extents

let test_einsum_contract_matches_oracle () =
  let rng = Util.Rng.create 4 in
  let a = Tensor.Dense.random rng (Tensor.Shape.of_list [ 3; 5 ]) in
  let b = Tensor.Dense.random rng (Tensor.Shape.of_list [ 5; 4 ]) in
  let c = Octopi.Einsum_notation.contract "ik,kj->ij" [ a; b ] in
  let want =
    Tensor.Einsum.contract ~output_indices:[ "i"; "j" ]
      [ Tensor.Einsum.operand a [ "i"; "k" ]; Tensor.Einsum.operand b [ "k"; "j" ] ]
  in
  Alcotest.(check bool) "matches" true (Tensor.Dense.approx_equal want c)

let expect_einsum_error spec =
  Alcotest.(check bool) ("rejects " ^ spec) true
    (try
       ignore (Octopi.Einsum_notation.parse spec);
       false
     with Octopi.Einsum_notation.Error _ -> true)

let test_einsum_errors () =
  expect_einsum_error "ik,kj";  (* implicit mode unsupported *)
  expect_einsum_error "iK,kj->ij";  (* uppercase index *)
  expect_einsum_error "ik,,kj->ij" (* empty factor *)

let test_einsum_wrong_arity () =
  let rng = Util.Rng.create 4 in
  let a = Tensor.Dense.random rng (Tensor.Shape.of_list [ 3; 3 ]) in
  Alcotest.(check bool) "arity mismatch" true
    (try
       ignore (Octopi.Einsum_notation.contract "ik,kj->ij" [ a ]);
       false
     with Octopi.Einsum_notation.Error _ -> true)

(* ---------------- Store ---------------- *)

let tuned_lg3 =
  lazy
    (let b = Benchsuite.Suite.lg3 ~p:8 ~elems:16 () in
     ( b,
       Autotune.Tuner.tune
         ~strategy:
           (Autotune.Tuner.Surf_search
              { Surf.Search.default_config with max_evals = 25 })
         ~pool_per_variant:50 ~rng:(Util.Rng.create 2)
         ~arch:Gpusim.Arch.gtx980 b ))

let test_store_roundtrip () =
  let b, r = Lazy.force tuned_lg3 in
  let text = Autotune.Store.save r in
  let s = Autotune.Store.parse text in
  Alcotest.(check string) "label" "lg3" s.label;
  Alcotest.(check string) "arch" "GTX 980" s.arch_name;
  let ir, points = Autotune.Store.restore b s in
  Alcotest.(check string) "same program" (Tcr.Ir.to_string r.best.ir) (Tcr.Ir.to_string ir);
  List.iter2
    (fun a c ->
      Alcotest.(check string) "same point" (Tcr.Space.point_key a) (Tcr.Space.point_key c))
    r.best.points points

let test_store_restored_cuda_identical () =
  let b, r = Lazy.force tuned_lg3 in
  let ir, points = Autotune.Store.restore b (Autotune.Store.parse (Autotune.Store.save r)) in
  Alcotest.(check string) "identical CUDA re-emitted"
    (Codegen.Cuda.emit_program r.best.ir r.best.points)
    (Codegen.Cuda.emit_program ir points)

let test_store_label_mismatch () =
  let _, r = Lazy.force tuned_lg3 in
  let other = Benchsuite.Suite.eqn1 () in
  Alcotest.(check bool) "label mismatch rejected" true
    (try
       ignore (Autotune.Store.restore other (Autotune.Store.parse (Autotune.Store.save r)));
       false
     with Autotune.Store.Error _ -> true)

let test_store_rejects_garbage () =
  List.iter
    (fun text ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (Autotune.Store.parse text);
           false
         with Autotune.Store.Error _ -> true))
    [ ""; "not an artifact"; "barracuda-tuning v1\nlabel: x\n" (* no recipe *) ]

(* ---------------- Driver ---------------- *)

let test_driver_structure () =
  let set =
    match Octopi.Variants.of_string "dims: i=6 j=6 k=6\nC[i j] = Sum([k], A[i k] * B[k j])" with
    | [ s ] -> s
    | _ -> assert false
  in
  let ir = Tcr.Ir.of_variant ~label:"mm" set.contraction (List.hd set.variants) in
  let ps = Tcr.Space.of_ir ir in
  let points = List.map (fun s -> List.hd (Tcr.Space.enumerate s)) ps.op_spaces in
  let src = Codegen.Driver.emit ~reps:50 ir points in
  Alcotest.(check bool) "has main" true (contains src "int main(void)");
  Alcotest.(check bool) "hosts inputs" true (contains src "double *A_h");
  Alcotest.(check bool) "reference buffer" true (contains src "double *C_ref");
  Alcotest.(check bool) "timing" true (contains src "clock_gettime");
  Alcotest.(check bool) "rep loop" true (contains src "for (int rep = 0; rep < 50");
  Alcotest.(check bool) "runs wrapper" true (contains src "mm_run(A_h, B_h, C_h);");
  Alcotest.(check bool) "reference nest" true (contains src "C_ref[");
  Alcotest.(check bool) "error check drives exit code" true
    (contains src "return max_err < 1e-9");
  check_int "kernel included once" 1 (Astring_contains.count src "__global__")

let test_driver_multi_statement () =
  let b = Benchsuite.Suite.lg3t ~p:4 ~elems:2 () in
  let c = List.hd (Autotune.Tuner.variant_choices b) in
  let points = List.map (fun s -> List.hd (Tcr.Space.enumerate s)) c.spaces.op_spaces in
  let src = Codegen.Driver.emit c.v_ir points in
  check_int "three kernels" 3 (Astring_contains.count src "__global__");
  check_int "three reference nests" 3 (Astring_contains.count src "/* reference statement")

let suite =
  [
    ("einsum parse matmul", `Quick, test_einsum_parse_matmul);
    ("einsum eqn1", `Quick, test_einsum_eqn1);
    ("einsum to_dsl roundtrip", `Quick, test_einsum_to_dsl_roundtrip);
    ("einsum contract matches oracle", `Quick, test_einsum_contract_matches_oracle);
    ("einsum errors", `Quick, test_einsum_errors);
    ("einsum wrong arity", `Quick, test_einsum_wrong_arity);
    ("store roundtrip", `Quick, test_store_roundtrip);
    ("store restores identical cuda", `Quick, test_store_restored_cuda_identical);
    ("store label mismatch", `Quick, test_store_label_mismatch);
    ("store rejects garbage", `Quick, test_store_rejects_garbage);
    ("driver structure", `Quick, test_driver_structure);
    ("driver multi-statement", `Quick, test_driver_multi_statement);
  ]
