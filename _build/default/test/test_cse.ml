(* Tests for common-subexpression elimination across statements. *)

let check_int = Alcotest.(check int)

(* Two statements sharing the subexpression T = A*U (both strength-reduce
   through the same first contraction when given the same factor pair). *)
let shared_program () =
  let src =
    "dims: i=4 j=4 k=4 l=4\n\
     X[i j] = Sum([k l], A[i k] * U[k l] * B[l j])\n\
     Y[i j] = Sum([k l], A[i k] * U[k l] * C[l j])"
  in
  let b = Autotune.Tuner.benchmark_of_dsl ~label:"cse" src in
  let choices = Autotune.Tuner.variant_choices b in
  (* pick the joint variant where both statements contract A*U first *)
  List.find
    (fun (c : Autotune.Tuner.variant_choice) ->
      let firsts =
        List.filter
          (fun (op : Tcr.Ir.op) -> List.map fst op.factors = [ "A"; "U" ])
          c.v_ir.ops
      in
      List.length firsts = 2)
    choices

let test_cse_eliminates_shared () =
  let c = shared_program () in
  let before = List.length c.v_ir.ops in
  let optimized, stats = Tcr.Cse.optimize c.v_ir in
  check_int "one op eliminated" 1 stats.eliminated_ops;
  check_int "ops reduced" (before - 1) (List.length optimized.ops);
  Alcotest.(check bool) "flops saved" true (stats.saved_flops > 0);
  Alcotest.(check bool) "fewer flops total" true
    (Tcr.Ir.flops optimized < Tcr.Ir.flops c.v_ir)

let test_cse_preserves_semantics () =
  let c = shared_program () in
  let optimized, _ = Tcr.Cse.optimize c.v_ir in
  let rng = Util.Rng.create 5 in
  let inputs =
    List.filter_map
      (fun (v : Tcr.Ir.var) ->
        if v.role = Tcr.Ir.Input then
          Some (v.name, Tensor.Dense.random rng (Tcr.Ir.var_shape c.v_ir v.name))
        else None)
      c.v_ir.vars
  in
  let want = Codegen.Exec.run_reference c.v_ir inputs in
  let got = Codegen.Exec.run_reference optimized inputs in
  List.iter
    (fun out ->
      Alcotest.(check bool) (out ^ " unchanged") true
        (Tensor.Dense.approx_equal (List.assoc out want) (List.assoc out got)))
    [ "X"; "Y" ]

let test_cse_noop_when_nothing_shared () =
  let b = Benchsuite.Suite.lg3 ~p:4 ~elems:2 () in
  let c = List.hd (Autotune.Tuner.variant_choices b) in
  let optimized, stats = Tcr.Cse.optimize c.v_ir in
  check_int "nothing eliminated" 0 stats.eliminated_ops;
  check_int "ops unchanged" (List.length c.v_ir.ops) (List.length optimized.ops)

let test_cse_keeps_accumulating_outputs () =
  (* lg3t has three statements accumulating into w with different factors;
     even if two were identical, accumulation must never be deduplicated *)
  let src =
    "dims: e=2 i=3 l=3\n\
     w[e i] = Sum([l], D[i l] * ur[e l])\n\
     w[e i] = Sum([l], D[i l] * ur[e l])"
  in
  let b = Autotune.Tuner.benchmark_of_dsl ~label:"acc" src in
  let c = List.hd (Autotune.Tuner.variant_choices b) in
  let optimized, stats = Tcr.Cse.optimize c.v_ir in
  (* w is written twice (it doubles the contribution): both writes stay *)
  check_int "accumulation preserved" 0 stats.eliminated_ops;
  check_int "both statements kept" 2 (List.length optimized.ops)

let test_cse_key_ignores_out_name () =
  let op1 : Tcr.Ir.op =
    { out = "T1"; out_indices = [ "i" ]; factors = [ ("A", [ "i"; "k" ]) ]; loop_order = [ "i"; "k" ] }
  in
  let op2 = { op1 with Tcr.Ir.out = "T2" } in
  Alcotest.(check string) "same key" (Tcr.Cse.op_key op1) (Tcr.Cse.op_key op2)

let test_cse_key_sees_layout () =
  let op1 : Tcr.Ir.op =
    { out = "T"; out_indices = [ "i"; "j" ]; factors = [ ("A", [ "i"; "j" ]) ]; loop_order = [ "i"; "j" ] }
  in
  let op2 = { op1 with Tcr.Ir.out_indices = [ "j"; "i" ]; loop_order = [ "j"; "i" ] } in
  Alcotest.(check bool) "different layouts differ" true
    (Tcr.Cse.op_key op1 <> Tcr.Cse.op_key op2)

let suite =
  [
    ("cse eliminates shared subexpression", `Quick, test_cse_eliminates_shared);
    ("cse preserves semantics", `Quick, test_cse_preserves_semantics);
    ("cse no-op without sharing", `Quick, test_cse_noop_when_nothing_shared);
    ("cse keeps accumulating outputs", `Quick, test_cse_keeps_accumulating_outputs);
    ("cse key ignores output name", `Quick, test_cse_key_ignores_out_name);
    ("cse key sees layout", `Quick, test_cse_key_sees_layout);
  ]
