(* Tests for the extension features: search-space pruning (Section VIII
   outlook), loop permutation of reduction loops (Section IV), the
   scalar-replacement ablation toggle, and joint Nekbone tuning. *)

let check_int = Alcotest.(check int)
let arch = Gpusim.Arch.gtx980

let ir_of_dsl src =
  let set = match Octopi.Variants.of_string src with [ s ] -> s | _ -> assert false in
  Tcr.Ir.of_variant ~label:"t" set.contraction (List.hd set.variants)

(* ---------------- Pruning ---------------- *)

let mm_space () =
  let ir = ir_of_dsl "dims: i=64 j=64 k=64\nC[i j] = Sum([k], A[i k] * B[k j])" in
  Tcr.Space.make ir 0

let test_prune_subset () =
  let s = mm_space () in
  let all = List.map Tcr.Space.point_key (Tcr.Space.enumerate s) in
  let kept = Tcr.Prune.enumerate Tcr.Prune.default s in
  Alcotest.(check bool) "pruned is a subset" true
    (List.for_all (fun p -> List.mem (Tcr.Space.point_key p) all) kept);
  Alcotest.(check bool) "pruning removes something" true
    (List.length kept < List.length all)

let test_prune_respects_policy () =
  let s = mm_space () in
  List.iter
    (fun (p : Tcr.Space.point) ->
      let tpb = Tcr.Prune.threads_per_block s p.decomp in
      Alcotest.(check bool) "thread bounds" true (tpb >= 32 && tpb <= 512);
      Alcotest.(check bool) "grid bound" true (Tcr.Prune.num_blocks s p.decomp >= 8);
      Alcotest.(check bool) "coalesced store" true (Tcr.Prune.output_coalesced s p.decomp);
      List.iter
        (fun (loop, u) ->
          Alcotest.(check bool) "dividing unroll" true
            (u = 1 || Tcr.Ir.extent s.ir loop mod u = 0))
        p.unrolls)
    (Tcr.Prune.enumerate Tcr.Prune.default s)

let test_prune_conservative_superset () =
  let s = mm_space () in
  Alcotest.(check bool) "conservative keeps more" true
    (Tcr.Prune.count Tcr.Prune.conservative s >= Tcr.Prune.count Tcr.Prune.default s)

let test_prune_fraction_range () =
  let s = mm_space () in
  let f = Tcr.Prune.pruned_fraction Tcr.Prune.default s in
  Alcotest.(check bool) "fraction in (0,1)" true (f > 0.0 && f < 1.0)

let test_prune_keeps_quality () =
  (* tuning over the pruned pool loses little vs the full pool *)
  let b = Benchsuite.Suite.lg3 ~p:8 ~elems:32 () in
  let cfg = { Surf.Search.default_config with max_evals = 60 } in
  let tune ?prune seed =
    Autotune.Tuner.tune ~strategy:(Autotune.Tuner.Surf_search cfg) ?prune
      ~pool_per_variant:200 ~rng:(Util.Rng.create seed) ~arch b
  in
  let full = tune 5 in
  let pruned = tune ~prune:Tcr.Prune.default 5 in
  Alcotest.(check bool) "within 15% of the full-space result" true
    (pruned.best_report.kernel_time_s <= 1.15 *. full.best_report.kernel_time_s)

(* ---------------- Loop permutation ---------------- *)

let test_reduction_orders_counts () =
  let ir = ir_of_dsl "dims: i=4 j=4 k=4 l=4\nY[i j] = Sum([k l], A[i k l] * B[k j l])" in
  let op = List.hd ir.ops in
  (* two reduction loops: both orders are candidates *)
  check_int "2 orders" 2 (List.length (Tcr.Decision.reduction_orders op));
  let single = ir_of_dsl "C[i j] = Sum([k], A[i k] * B[k j])" in
  check_int "1 order" 1
    (List.length (Tcr.Decision.reduction_orders (List.hd single.ops)))

let test_space_counts_permutations () =
  let ir = ir_of_dsl "dims: i=4 j=4 k=4 l=4\nY[i j] = Sum([k l], A[i k l] * B[k j l])" in
  let s = Tcr.Space.make ir 0 in
  check_int "count includes order factor"
    (List.length (Tcr.Space.decompositions s)
    * List.length (Tcr.Space.unroll_combos s)
    * 2)
    (Tcr.Space.count s)

let test_permutation_preserves_semantics () =
  let ir = ir_of_dsl "dims: i=4 j=3 k=5 l=2\nY[i j] = Sum([k l], A[i k l] * B[k j l])" in
  let s = Tcr.Space.make ir 0 in
  let rng = Util.Rng.create 8 in
  let inputs =
    List.filter_map
      (fun (v : Tcr.Ir.var) ->
        if v.role = Tcr.Ir.Input then
          Some (v.name, Tensor.Dense.random rng (Tcr.Ir.var_shape ir v.name))
        else None)
      ir.vars
  in
  let want = Codegen.Exec.run_reference ir inputs in
  List.iter
    (fun (p : Tcr.Space.point) ->
      let got = Codegen.Exec.run_program ir [ p ] inputs in
      Alcotest.(check bool)
        ("order " ^ Tcr.Space.point_key p)
        true
        (Tensor.Dense.approx_equal (List.assoc "Y" want) (List.assoc "Y" got)))
    (List.filteri (fun i _ -> i mod 17 = 0) (Tcr.Space.enumerate s))

let test_permutation_changes_loop_nest () =
  let ir = ir_of_dsl "dims: i=4 j=4 k=5 l=6\nY[i j] = Sum([k l], A[i k l] * B[k j l])" in
  let s = Tcr.Space.make ir 0 in
  let base = List.hd (Tcr.Space.enumerate s) in
  let k_first = { base with Tcr.Space.red_order = [ "k"; "l" ] } in
  let l_first = { base with Tcr.Space.red_order = [ "l"; "k" ] } in
  let order p =
    let k = Codegen.Kernel.lower ~name:"t" ir (List.hd ir.ops) p in
    List.map (fun (l : Codegen.Kernel.loop) -> l.index) (Codegen.Kernel.reduction_loops k)
  in
  Alcotest.(check (list string)) "k outer" [ "k"; "l" ] (order k_first);
  Alcotest.(check (list string)) "l outer" [ "l"; "k" ] (order l_first)

let test_permutation_rejects_bad_order () =
  let ir = ir_of_dsl "dims: i=4 j=4 k=5 l=6\nY[i j] = Sum([k l], A[i k l] * B[k j l])" in
  let s = Tcr.Space.make ir 0 in
  let base = List.hd (Tcr.Space.enumerate s) in
  let bad = { base with Tcr.Space.red_order = [ "k" ] } in
  Alcotest.(check bool) "partial order rejected" true
    (try
       ignore (Codegen.Kernel.lower ~name:"t" ir (List.hd ir.ops) bad);
       false
     with Invalid_argument _ -> true)

let test_permutation_affects_time () =
  (* A depends only on the reduction loop k: with k outermost its load
     hoists out of l, with k innermost it re-executes per (k, l) pair - the
     model's traffic must differ between the two orders *)
  let e = 32 in
  let extents = [ ("i", e); ("j", e); ("k", e); ("l", e) ] in
  let ir =
    {
      Tcr.Ir.label = "perm";
      extents;
      vars =
        [
          { Tcr.Ir.name = "A"; dims = [ "i"; "k" ]; role = Tcr.Ir.Input };
          { Tcr.Ir.name = "U"; dims = [ "k"; "l" ]; role = Tcr.Ir.Input };
          { Tcr.Ir.name = "B"; dims = [ "j"; "l" ]; role = Tcr.Ir.Input };
          { Tcr.Ir.name = "Y"; dims = [ "i"; "j" ]; role = Tcr.Ir.Output };
        ];
      ops =
        [
          {
            Tcr.Ir.out = "Y";
            out_indices = [ "i"; "j" ];
            factors = [ ("A", [ "i"; "k" ]); ("U", [ "k"; "l" ]); ("B", [ "j"; "l" ]) ];
            loop_order = [ "i"; "j"; "k"; "l" ];
          };
        ];
    }
  in
  Tcr.Ir.validate ir;
  let s = Tcr.Space.make ir 0 in
  let base = List.hd (Tcr.Space.enumerate s) in
  let t order =
    let k =
      Codegen.Kernel.lower ~name:"t" ir (List.hd ir.ops)
        { base with Tcr.Space.red_order = order }
    in
    let r = Gpusim.Perf.analyze_kernel arch k in
    r.dram_bytes +. r.l2_bytes
  in
  Alcotest.(check bool) "orders differ in modeled traffic" true
    (abs_float (t [ "k"; "l" ] -. t [ "l"; "k" ]) > 0.0)

(* ---------------- Scalar replacement ablation ---------------- *)

let test_scalar_replace_off_correct () =
  let ir = ir_of_dsl "dims: i=5 j=4 k=6\nC[i j] = Sum([k], A[i k] * B[k j])" in
  let s = Tcr.Space.make ir 0 in
  let p = List.hd (Tcr.Space.enumerate s) in
  let rng = Util.Rng.create 12 in
  let inputs =
    List.filter_map
      (fun (v : Tcr.Ir.var) ->
        if v.role = Tcr.Ir.Input then
          Some (v.name, Tensor.Dense.random rng (Tcr.Ir.var_shape ir v.name))
        else None)
      ir.vars
  in
  let with_sr = Codegen.Exec.run_program ir [ p ] inputs in
  let without = Codegen.Exec.run_program ~scalar_replace:false ir [ p ] inputs in
  Alcotest.(check bool) "same result" true
    (Tensor.Dense.approx_equal (List.assoc "C" with_sr) (List.assoc "C" without))

let test_scalar_replace_off_slower () =
  let ir = ir_of_dsl "dims: i=128 j=128 k=128\nC[i j] = Sum([k], A[i k] * B[k j])" in
  let s = Tcr.Space.make ir 0 in
  let p = List.hd (Tcr.Space.enumerate s) in
  let on = Gpusim.Gpu.measure arch ir [ p ] in
  let off = Gpusim.Gpu.measure ~scalar_replace:false arch ir [ p ] in
  Alcotest.(check bool) "extra output traffic costs time" true
    (off.kernel_time_s > on.kernel_time_s)

let test_scalar_replace_off_cuda_form () =
  let ir = ir_of_dsl "dims: i=6 j=6 k=6\nC[i j] = Sum([k], A[i k] * B[k j])" in
  let s = Tcr.Space.make ir 0 in
  let p = List.hd (Tcr.Space.enumerate s) in
  let cuda = Codegen.Cuda.emit_program ~scalar_replace:false ir [ p ] in
  Alcotest.(check bool) "no register accumulator" true
    (not (Astring_contains.contains cuda "double nv"));
  Alcotest.(check bool) "global accumulate" true (Astring_contains.contains cuda "C[")

(* ---------------- Joint Nekbone ---------------- *)

let test_joint_benchmark_structure () =
  let b = Benchsuite.Nekbone.joint_benchmark { Benchsuite.Nekbone.p = 4; elems = 3 } in
  check_int "six statements" 6 (List.length b.statements);
  let choices = Autotune.Tuner.variant_choices b in
  check_int "one joint variant" 1 (List.length choices);
  let ir = (List.hd choices).v_ir in
  check_int "six kernels" 6 (List.length ir.ops);
  (* lg3's outputs feed lg3t's statements inside one program *)
  Alcotest.(check bool) "ur produced and consumed" true
    (List.exists
       (fun (op : Tcr.Ir.op) -> List.exists (fun (n, _) -> n = "ur") op.factors)
       ir.ops)

let test_joint_benchmark_executes () =
  let b = Benchsuite.Nekbone.joint_benchmark { Benchsuite.Nekbone.p = 4; elems = 3 } in
  let c = List.hd (Autotune.Tuner.variant_choices b) in
  let points = List.map (fun s -> List.hd (Tcr.Space.enumerate s)) c.spaces.op_spaces in
  let rng = Util.Rng.create 13 in
  let inputs =
    List.filter_map
      (fun (v : Tcr.Ir.var) ->
        if v.role = Tcr.Ir.Input then
          Some (v.name, Tensor.Dense.random rng (Tcr.Ir.var_shape c.v_ir v.name))
        else None)
      c.v_ir.vars
  in
  let got = Codegen.Exec.run_program c.v_ir points inputs in
  let want = Codegen.Exec.run_reference c.v_ir inputs in
  Alcotest.(check bool) "joint program correct" true
    (Tensor.Dense.approx_equal (List.assoc "w" want) (List.assoc "w" got))

let suite =
  [
    ("prune is a subset", `Quick, test_prune_subset);
    ("prune respects policy", `Quick, test_prune_respects_policy);
    ("prune conservative superset", `Quick, test_prune_conservative_superset);
    ("prune fraction range", `Quick, test_prune_fraction_range);
    ("prune keeps quality", `Slow, test_prune_keeps_quality);
    ("reduction order counts", `Quick, test_reduction_orders_counts);
    ("space counts permutations", `Quick, test_space_counts_permutations);
    ("permutation preserves semantics", `Quick, test_permutation_preserves_semantics);
    ("permutation changes loop nest", `Quick, test_permutation_changes_loop_nest);
    ("permutation rejects bad order", `Quick, test_permutation_rejects_bad_order);
    ("permutation affects modeled time", `Quick, test_permutation_affects_time);
    ("scalar replace off correct", `Quick, test_scalar_replace_off_correct);
    ("scalar replace off slower", `Quick, test_scalar_replace_off_slower);
    ("scalar replace off cuda form", `Quick, test_scalar_replace_off_cuda_form);
    ("joint benchmark structure", `Quick, test_joint_benchmark_structure);
    ("joint benchmark executes", `Quick, test_joint_benchmark_executes);
  ]
