(* Tests for the OCTOPI front end: DSL parsing, contraction semantics,
   strength reduction (Algorithm 1) and fusion analysis. *)

let check_int = Alcotest.(check int)

let eqn1_src = "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])"

let parse_one src =
  match (Octopi.Parse.program src).stmts with
  | [ s ] -> s
  | _ -> Alcotest.fail "expected one statement"

(* ---------------- Parser ---------------- *)

let test_parse_eqn1 () =
  let s = parse_one eqn1_src in
  Alcotest.(check string) "output" "V" s.lhs.name;
  Alcotest.(check (list string)) "output indices" [ "i"; "j"; "k" ] s.lhs.indices;
  Alcotest.(check (list string)) "sum indices" [ "l"; "m"; "n" ] s.sum_indices;
  check_int "factors" 4 (List.length s.factors)

let test_parse_dims () =
  let p = Octopi.Parse.program "dims: i=4 j=8\nY[i] = Sum([j], A[i j])" in
  Alcotest.(check (list (pair string int))) "extents" [ ("i", 4); ("j", 8) ] p.extents

let test_parse_no_sum () =
  let s = parse_one "C[i j] = A[i k] * B[k j]" in
  Alcotest.(check (list string)) "no explicit sum" [] s.sum_indices;
  check_int "factors" 2 (List.length s.factors)

let test_parse_accumulate () =
  let s = parse_one "C[i] += A[i j]" in
  Alcotest.(check bool) "accumulate" true s.accumulate

let test_parse_comments () =
  let p = Octopi.Parse.program "# a comment\nY[i] = A[i j] # trailing\n# end" in
  check_int "one statement" 1 (List.length p.stmts)

let test_parse_multi_statement () =
  let p =
    Octopi.Parse.program "T[i l] = Sum([n], C[n i] * U[l n])\nV[i] = Sum([l], T[i l])"
  in
  check_int "two statements" 2 (List.length p.stmts)

let test_parse_error () =
  Alcotest.(check bool) "missing bracket raises" true
    (try
       ignore (Octopi.Parse.program "V[i = A[i]");
       false
     with Octopi.Parse.Error _ -> true)

let test_parse_roundtrip () =
  let p = Octopi.Parse.program ("dims: i=3 j=3 k=3 l=3 m=3 n=3\n" ^ eqn1_src) in
  let p2 = Octopi.Parse.program (Octopi.Ast.to_string p) in
  Alcotest.(check string) "pp/parse roundtrip" (Octopi.Ast.to_string p) (Octopi.Ast.to_string p2)

(* ---------------- Contraction ---------------- *)

let contraction_of src =
  match Octopi.Contraction.of_program (Octopi.Parse.program src) with
  | [ c ] -> c
  | _ -> Alcotest.fail "expected one contraction"

let test_contraction_normalize () =
  let c = contraction_of "C[i j] = A[i k] * B[k j]" in
  Alcotest.(check (list string)) "inferred sum" [ "k" ] c.sum_indices;
  check_int "default extent" 10 (Octopi.Contraction.extent c "i")

let test_contraction_extents () =
  let c = contraction_of "dims: i=4 k=6\nC[i j] = A[i k] * B[k j]" in
  check_int "declared" 4 (Octopi.Contraction.extent c "i");
  check_int "declared k" 6 (Octopi.Contraction.extent c "k");
  check_int "defaulted" 10 (Octopi.Contraction.extent c "j")

let expect_invalid src =
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Octopi.Contraction.of_program (Octopi.Parse.program src));
       false
     with Octopi.Contraction.Invalid _ -> true)

let test_contraction_rejects_phantom_output () = expect_invalid "C[i z] = A[i k] * B[k j]"
let test_contraction_rejects_repeated_output () = expect_invalid "C[i i] = A[i k] * B[k i]"
let test_contraction_rejects_bad_sum () = expect_invalid "C[i] = Sum([i], A[i j])"
let test_contraction_rejects_diagonal () = expect_invalid "C[i] = A[i j j]"
let test_contraction_rejects_partial_sum_list () = expect_invalid "C[i] = Sum([j], A[i j k])"

let test_contraction_naive_flops () =
  let c = contraction_of ("dims: i=10 j=10 k=10 l=10 m=10 n=10\n" ^ eqn1_src) in
  (* full space 10^6, 4 factors -> 4 flops per point (Section III: O(p^6)) *)
  check_int "naive flops" 4_000_000 (Octopi.Contraction.naive_flops c)

let test_contraction_evaluate_matches_einsum () =
  let c = contraction_of "dims: i=3 j=4 k=5\nC[i j] = A[i k] * B[k j]" in
  let env = Octopi.Contraction.random_env c in
  let r = Octopi.Contraction.evaluate c env in
  let a = List.assoc "A" env and b = List.assoc "B" env in
  let expect =
    Tensor.Einsum.contract ~output_indices:[ "i"; "j" ]
      [ Tensor.Einsum.operand a [ "i"; "k" ]; Tensor.Einsum.operand b [ "k"; "j" ] ]
  in
  Alcotest.(check bool) "equal" true (Tensor.Dense.approx_equal expect r)

(* ---------------- Strength reduction (Algorithm 1) ---------------- *)

let eqn1_variants () =
  match Octopi.Variants.of_string ("dims: i=10 j=10 k=10 l=10 m=10 n=10\n" ^ eqn1_src) with
  | [ v ] -> v
  | _ -> Alcotest.fail "expected one statement"

let test_eqn1_fifteen_variants () =
  (* Section II-B: "OCTOPI generates fifteen different versions" *)
  check_int "15 variants" 15 (List.length (eqn1_variants ()).variants)

let test_eqn1_six_minimal () =
  (* "six versions all perform the same amount of floating-point computation" *)
  let v = eqn1_variants () in
  check_int "6 minimal-flop" 6 (List.length (Octopi.Variants.minimal_flop_variants v));
  check_int "min flops 3 x 2 x 10^4" 60_000 (Octopi.Variants.min_flops v)

let test_eqn1_variants_all_valid () =
  Alcotest.(check bool) "all 15 compute the same tensor" true
    (Octopi.Variants.validate (eqn1_variants ()))

let test_matmul_single_variant () =
  match Octopi.Variants.of_string "C[i j] = A[i k] * B[k j]" with
  | [ v ] -> check_int "binary contraction has one plan" 1 (List.length v.variants)
  | _ -> Alcotest.fail "expected one statement"

let test_three_factor_variant_count () =
  (* (2n-3)!! trees for n factors: 3 for n = 3 *)
  match Octopi.Variants.of_string "Y[i] = Sum([j k], A[i j] * B[j k] * C[k i])" with
  | [ v ] -> check_int "3 trees" 3 (List.length v.variants)
  | _ -> Alcotest.fail "expected one statement"

let test_lower_structure () =
  let v = eqn1_variants () in
  let minimal = Octopi.Variants.minimal_flop_variants v in
  List.iter
    (fun (var : Octopi.Variants.variant) ->
      check_int "three statements" 3 (List.length var.ops);
      let last = List.nth var.ops 2 in
      Alcotest.(check string) "final writes V" "V" last.out;
      check_int "two temporaries" 2 (List.length (Octopi.Plan.temporaries var.plan)))
    minimal

let test_paper_variant_present () =
  (* the paper's chosen version: T1 = C*U; T2 = B*T1; V = A*T2 *)
  let v = eqn1_variants () in
  let found =
    List.exists
      (fun (var : Octopi.Variants.variant) ->
        match var.ops with
        | [ o1; o2; o3 ] ->
          let names op = List.map fst op.Octopi.Plan.factors in
          names o1 = [ "C"; "U" ] && names o2 = [ "B"; "T1" ] && names o3 = [ "A"; "T2" ]
        | _ -> false)
      v.variants
  in
  Alcotest.(check bool) "paper's plan enumerated" true found

let test_unary_reduction () =
  (* an index occurring in a single term is summed out eagerly *)
  match Octopi.Variants.of_string "Y[i] = Sum([j k], A[i j] * B[k])" with
  | [ v ] ->
    let best = List.hd (Octopi.Plan.sorted_by_flops (List.map (fun (x : Octopi.Variants.variant) -> x.plan) v.variants)) in
    (* reduce B over k (cost 10) then contract (cost 200) + reduce A or
       equivalent: either way well under the naive 2000 *)
    Alcotest.(check bool) "reduction exploited" true (Octopi.Plan.flops best <= 320)
  | _ -> Alcotest.fail "expected one statement"

let test_flops_ordering_stable () =
  let v = eqn1_variants () in
  let sorted = Octopi.Plan.sorted_by_flops (List.map (fun (x : Octopi.Variants.variant) -> x.plan) v.variants) in
  let fl = List.map Octopi.Plan.flops sorted in
  Alcotest.(check bool) "non-decreasing" true
    (List.for_all2 ( <= ) (List.filteri (fun i _ -> i < 14) fl) (List.tl fl))

let test_plan_inputs () =
  let v = eqn1_variants () in
  let p = (List.hd v.variants).plan in
  Alcotest.(check (list string)) "inputs preserved" [ "A"; "B"; "C"; "U" ]
    (List.sort compare (Octopi.Plan.node_inputs p.root))

(* ---------------- Fusion ---------------- *)

let test_fusion_pairs () =
  let v = eqn1_variants () in
  let paper_variant =
    List.find
      (fun (var : Octopi.Variants.variant) ->
        match var.ops with
        | [ o1; _; _ ] -> List.map fst o1.factors = [ "C"; "U" ]
        | _ -> false)
      v.variants
  in
  let sched = paper_variant.schedule in
  check_int "two adjacent pairs" 2 (List.length sched.fusion_depths);
  Alcotest.(check bool) "some fusion found" true (Octopi.Fusion.score sched > 0)

let test_fusion_requires_producer_consumer () =
  let p : Octopi.Plan.op = { out = "X"; out_indices = [ "i" ]; factors = [ ("A", [ "i"; "j" ]) ] } in
  let c : Octopi.Plan.op = { out = "Y"; out_indices = [ "i" ]; factors = [ ("B", [ "i"; "j" ]) ] } in
  Alcotest.(check (list string)) "no dataflow, no fusion" []
    (Octopi.Fusion.fusable_pair p c)

let test_fusion_legality () =
  (* fused indices must be output indices of the producer *)
  let p : Octopi.Plan.op = { out = "T"; out_indices = [ "i"; "l" ]; factors = [ ("A", [ "i"; "l"; "m" ]) ] } in
  let c : Octopi.Plan.op = { out = "V"; out_indices = [ "i"; "k" ]; factors = [ ("T", [ "i"; "l" ]); ("B", [ "l"; "k" ]) ] } in
  let fused = Octopi.Fusion.fusable_pair p c in
  Alcotest.(check bool) "i fusable" true (List.mem "i" fused);
  Alcotest.(check bool) "l fusable (reduction of consumer is legal)" true (List.mem "l" fused);
  Alcotest.(check bool) "m not fusable" false (List.mem "m" fused)

(* ---------------- Properties ---------------- *)

(* random 3-factor contractions over a small index alphabet stay correct
   through strength reduction *)
let qcheck_variants_preserve_semantics =
  QCheck.Test.make ~name:"strength reduction preserves semantics" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let indices = [ "i"; "j"; "k"; "l" ] in
      (* choose 1-2 output indices and factors covering all four *)
      let out_n = 1 + Util.Rng.int rng 2 in
      let out = List.filteri (fun i _ -> i < out_n) (Util.Rng.shuffle rng indices) in
      let pick_idx () =
        let n = 1 + Util.Rng.int rng 2 in
        List.filteri (fun i _ -> i < n) (Util.Rng.shuffle rng indices)
      in
      let f1 = pick_idx () and f2 = pick_idx () and f3 = pick_idx () in
      let cover = List.sort_uniq compare (out @ f1 @ f2 @ f3) in
      (* ensure every output index appears in some factor *)
      let f1 = List.sort_uniq compare (f1 @ out) in
      let used = List.sort_uniq compare (f1 @ f2 @ f3) in
      if used <> cover then QCheck.assume_fail ();
      let fmt name idx = Printf.sprintf "%s[%s]" name (String.concat " " idx) in
      let src =
        Printf.sprintf "dims: i=3 j=4 k=3 l=2\nO[%s] = %s * %s * %s"
          (String.concat " " out) (fmt "A" f1) (fmt "B" f2) (fmt "C" f3)
      in
      match Octopi.Variants.of_string src with
      | [ v ] -> Octopi.Variants.validate v
      | _ -> false)

let suite =
  [
    ("parse eqn1", `Quick, test_parse_eqn1);
    ("parse dims", `Quick, test_parse_dims);
    ("parse without Sum", `Quick, test_parse_no_sum);
    ("parse accumulate", `Quick, test_parse_accumulate);
    ("parse comments", `Quick, test_parse_comments);
    ("parse multiple statements", `Quick, test_parse_multi_statement);
    ("parse error reported", `Quick, test_parse_error);
    ("pp/parse roundtrip", `Quick, test_parse_roundtrip);
    ("contraction normalization", `Quick, test_contraction_normalize);
    ("contraction extents", `Quick, test_contraction_extents);
    ("rejects phantom output index", `Quick, test_contraction_rejects_phantom_output);
    ("rejects repeated output index", `Quick, test_contraction_rejects_repeated_output);
    ("rejects sum of output index", `Quick, test_contraction_rejects_bad_sum);
    ("rejects diagonal factor", `Quick, test_contraction_rejects_diagonal);
    ("rejects partial sum list", `Quick, test_contraction_rejects_partial_sum_list);
    ("naive flop count is O(p^6)", `Quick, test_contraction_naive_flops);
    ("evaluate matches einsum", `Quick, test_contraction_evaluate_matches_einsum);
    ("eqn1 yields 15 variants", `Quick, test_eqn1_fifteen_variants);
    ("eqn1 has 6 minimal-flop variants", `Quick, test_eqn1_six_minimal);
    ("eqn1 variants all valid", `Slow, test_eqn1_variants_all_valid);
    ("matmul single variant", `Quick, test_matmul_single_variant);
    ("three factors give 3 trees", `Quick, test_three_factor_variant_count);
    ("lowering structure", `Quick, test_lower_structure);
    ("paper's variant enumerated", `Quick, test_paper_variant_present);
    ("eager unary reduction", `Quick, test_unary_reduction);
    ("flop sort stable and monotone", `Quick, test_flops_ordering_stable);
    ("plan inputs preserved", `Quick, test_plan_inputs);
    ("fusion pairs on paper variant", `Quick, test_fusion_pairs);
    ("fusion requires dataflow", `Quick, test_fusion_requires_producer_consumer);
    ("fusion legality", `Quick, test_fusion_legality);
    QCheck_alcotest.to_alcotest qcheck_variants_preserve_semantics;
  ]
