(* Tests for the inter-statement dependence graph and the concurrent-kernel
   (streams) timing mode. *)

let check_int = Alcotest.(check int)
let arch = Gpusim.Arch.gtx980

let ir_of (b : Autotune.Tuner.benchmark) =
  (List.hd (Autotune.Tuner.variant_choices b)).Autotune.Tuner.v_ir

let eqn1_chain_ir () =
  (* pick a min-flop Eqn.(1) variant: T1 -> T2 -> V is a flow chain *)
  let set =
    match
      Octopi.Variants.of_string "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])"
    with
    | [ s ] -> s
    | _ -> assert false
  in
  let v = List.hd (Octopi.Variants.minimal_flop_variants set) in
  Tcr.Ir.of_variant ~label:"ex" set.contraction v

let test_chain_levels () =
  let g = Tcr.Depgraph.build (eqn1_chain_ir ()) in
  Alcotest.(check (array int)) "flow chain" [| 0; 1; 2 |] (Tcr.Depgraph.levels g);
  check_int "width 1" 1 (Tcr.Depgraph.max_wave_width g);
  check_int "three waves" 3 (List.length (Tcr.Depgraph.waves g))

let test_lg3_independent () =
  (* the three gradient statements share only inputs: fully parallel *)
  let g = Tcr.Depgraph.build (ir_of (Benchsuite.Suite.lg3 ~p:4 ~elems:2 ())) in
  Alcotest.(check (array int)) "one wave" [| 0; 0; 0 |] (Tcr.Depgraph.levels g);
  check_int "width 3" 3 (Tcr.Depgraph.max_wave_width g);
  Alcotest.(check bool) "pairwise independent" true
    (Tcr.Depgraph.independent g 0 1 && Tcr.Depgraph.independent g 1 2)

let test_lg3t_output_dependences () =
  (* all three statements accumulate into w: output dependences chain them *)
  let g = Tcr.Depgraph.build (ir_of (Benchsuite.Suite.lg3t ~p:4 ~elems:2 ())) in
  Alcotest.(check (array int)) "serialized" [| 0; 1; 2 |] (Tcr.Depgraph.levels g);
  Alcotest.(check bool) "not independent" false (Tcr.Depgraph.independent g 0 2)

let test_joint_nekbone_structure () =
  (* lg3's three statements are parallel; each lg3t statement consumes one
     gradient and they serialize among themselves on w *)
  let b = Benchsuite.Nekbone.joint_benchmark { Benchsuite.Nekbone.p = 4; elems = 2 } in
  let g = Tcr.Depgraph.build (ir_of b) in
  let levels = Tcr.Depgraph.levels g in
  Alcotest.(check (array int)) "two phases, w chain" [| 0; 0; 0; 1; 2; 3 |] levels;
  check_int "width 3" 3 (Tcr.Depgraph.max_wave_width g)

let test_independent_is_irreflexive () =
  let g = Tcr.Depgraph.build (ir_of (Benchsuite.Suite.lg3 ~p:4 ~elems:2 ())) in
  Alcotest.(check bool) "not independent of itself" false (Tcr.Depgraph.independent g 1 1)

(* ---------------- streams timing ---------------- *)

let points_for ir =
  let ps = Tcr.Space.of_ir ir in
  List.map (fun s -> List.hd (Tcr.Space.enumerate s)) ps.op_spaces

let test_streams_never_slower () =
  List.iter
    (fun ir ->
      let pts = points_for ir in
      let serial = (Gpusim.Gpu.measure arch ir pts).kernel_time_s in
      let streams = (Gpusim.Gpu.measure_streams arch ir pts).kernel_time_s in
      Alcotest.(check bool) "streams <= serial" true (streams <= serial +. 1e-12))
    [ eqn1_chain_ir (); ir_of (Benchsuite.Suite.lg3 ~p:4 ~elems:2 ()) ]

let test_streams_chain_no_gain () =
  let ir = eqn1_chain_ir () in
  let pts = points_for ir in
  let serial = (Gpusim.Gpu.measure arch ir pts).kernel_time_s in
  let streams = (Gpusim.Gpu.measure_streams arch ir pts).kernel_time_s in
  Alcotest.(check (float 1e-12)) "a chain cannot overlap" serial streams

let test_streams_saves_launches () =
  let ir = ir_of (Benchsuite.Suite.lg3 ~p:4 ~elems:2 ()) in
  let pts = points_for ir in
  let serial = (Gpusim.Gpu.measure arch ir pts).kernel_time_s in
  let streams = (Gpusim.Gpu.measure_streams arch ir pts).kernel_time_s in
  (* three independent kernels collapse three launches into one *)
  Alcotest.(check (float 1e-9)) "saves two launch latencies"
    (2.0 *. arch.kernel_launch_us *. 1e-6)
    (serial -. streams)

let suite =
  [
    ("chain levels", `Quick, test_chain_levels);
    ("lg3 statements independent", `Quick, test_lg3_independent);
    ("lg3t output dependences", `Quick, test_lg3t_output_dependences);
    ("joint nekbone structure", `Quick, test_joint_nekbone_structure);
    ("independent irreflexive", `Quick, test_independent_is_irreflexive);
    ("streams never slower", `Quick, test_streams_never_slower);
    ("streams: chain no gain", `Quick, test_streams_chain_no_gain);
    ("streams: saves launches", `Quick, test_streams_saves_launches);
  ]
