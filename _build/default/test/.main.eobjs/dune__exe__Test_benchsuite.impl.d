test/test_benchsuite.ml: Alcotest Autotune Benchsuite Codegen List Octopi Tcr Tensor Util
