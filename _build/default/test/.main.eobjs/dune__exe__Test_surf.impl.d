test/test_surf.ml: Alcotest Array List Printf Surf Util
