test/test_tcr.ml: Alcotest Astring_contains List Octopi Option String Tcr Util
