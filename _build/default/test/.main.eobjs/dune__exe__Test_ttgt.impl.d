test/test_ttgt.ml: Alcotest Autotune Benchsuite Gpusim List Octopi Tcr Util
