test/main.mli:
