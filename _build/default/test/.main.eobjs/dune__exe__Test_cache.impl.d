test/test_cache.ml: Alcotest Codegen Gpusim List Octopi Tcr
