test/test_orio.ml: Alcotest Astring_contains Codegen List Octopi Tcr Tensor Util
