test/test_facade.ml: Alcotest Astring_contains Barracuda Codegen Format Lazy List Octopi String Tcr
