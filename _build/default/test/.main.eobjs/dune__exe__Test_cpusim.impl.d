test/test_cpusim.ml: Alcotest Autotune Benchsuite Cpusim Gpusim List Octopi Printf Tcr Util
