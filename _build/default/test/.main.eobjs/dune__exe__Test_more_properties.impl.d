test/test_more_properties.ml: Alcotest Array Gpusim List Octopi Printf QCheck QCheck_alcotest Surf Tcr Util
