test/test_autotune.ml: Alcotest Astring_contains Autotune Benchsuite Cpusim Gpusim List Octopi Surf Tcr Util
