test/test_tensor.ml: Alcotest Array List QCheck QCheck_alcotest Tensor Util
