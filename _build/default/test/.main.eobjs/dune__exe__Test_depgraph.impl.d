test/test_depgraph.ml: Alcotest Autotune Benchsuite Gpusim List Octopi Tcr
