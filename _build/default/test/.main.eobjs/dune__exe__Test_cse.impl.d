test/test_cse.ml: Alcotest Autotune Benchsuite Codegen List Tcr Tensor Util
