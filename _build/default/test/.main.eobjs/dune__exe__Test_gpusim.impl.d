test/test_gpusim.ml: Alcotest Codegen Gpusim List Octopi Printf Tcr Tensor Util
