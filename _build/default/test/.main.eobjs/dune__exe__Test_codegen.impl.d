test/test_codegen.ml: Alcotest Astring_contains Autotune Benchsuite Codegen List Octopi Printf QCheck QCheck_alcotest Tcr Tensor Util
