test/test_edges.ml: Alcotest Astring_contains Autotune Benchsuite Codegen Gpusim List Octopi String Tcr Tensor Util
