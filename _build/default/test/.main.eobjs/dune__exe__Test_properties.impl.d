test/test_properties.ml: Array Codegen Float Gpusim Hashtbl List Octopi Option Printf QCheck QCheck_alcotest String Surf Tcr Tensor Util
