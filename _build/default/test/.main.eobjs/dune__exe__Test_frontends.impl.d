test/test_frontends.ml: Alcotest Astring_contains Autotune Benchsuite Codegen Gpusim Lazy List Octopi Surf Tcr Tensor Util
