test/test_extensions.ml: Alcotest Astring_contains Autotune Benchsuite Codegen Gpusim List Octopi Surf Tcr Tensor Util
