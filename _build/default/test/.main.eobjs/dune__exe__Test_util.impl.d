test/test_util.ml: Alcotest Array List String Util
