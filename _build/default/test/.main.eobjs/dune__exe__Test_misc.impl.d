test/test_misc.ml: Alcotest Astring_contains Autotune Benchsuite Codegen Cpusim Format Gpusim List Octopi Printf String Tcr Util
