test/test_octopi.ml: Alcotest List Octopi Printf QCheck QCheck_alcotest String Tensor Util
