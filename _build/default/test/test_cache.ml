(* Tests for the LRU cache simulator and the trace-driven cross-check of
   the analytic memory model. *)

let check_int = Alcotest.(check int)
let arch = Gpusim.Arch.gtx980

(* ---------------- Cache mechanics ---------------- *)

let small_cache () = Gpusim.Cache.create ~bytes:1024 ~line_bytes:128 ~ways:2

let test_cache_cold_miss () =
  let c = small_cache () in
  Alcotest.(check bool) "first access misses" false (Gpusim.Cache.access c 0);
  Alcotest.(check bool) "second access hits" true (Gpusim.Cache.access c 64)

let test_cache_line_granularity () =
  let c = small_cache () in
  ignore (Gpusim.Cache.access c 0);
  Alcotest.(check bool) "same line hits" true (Gpusim.Cache.access c 127);
  Alcotest.(check bool) "next line misses" false (Gpusim.Cache.access c 128)

let test_cache_lru_eviction () =
  (* 1024 B / 128 B lines / 2 ways = 4 sets; addresses 0, 512, 1024 all map
     to set 0: the third evicts the least recently used (0) *)
  let c = small_cache () in
  ignore (Gpusim.Cache.access c 0);
  ignore (Gpusim.Cache.access c 512);
  ignore (Gpusim.Cache.access c 1024);
  Alcotest.(check bool) "0 evicted" false (Gpusim.Cache.access c 0);
  Alcotest.(check bool) "1024 resident" true (Gpusim.Cache.access c 1024)

let test_cache_lru_order_updates () =
  let c = small_cache () in
  ignore (Gpusim.Cache.access c 0);
  ignore (Gpusim.Cache.access c 512);
  ignore (Gpusim.Cache.access c 0);  (* touch 0: now 512 is LRU *)
  ignore (Gpusim.Cache.access c 1024);  (* evicts 512 *)
  Alcotest.(check bool) "0 survived" true (Gpusim.Cache.access c 0);
  Alcotest.(check bool) "512 evicted" false (Gpusim.Cache.access c 512)

let test_cache_stats () =
  let c = small_cache () in
  ignore (Gpusim.Cache.access c 0);
  ignore (Gpusim.Cache.access c 0);
  ignore (Gpusim.Cache.access c 256);
  check_int "accesses" 3 (Gpusim.Cache.accesses c);
  Alcotest.(check (float 1e-9)) "hit rate 1/3" (1.0 /. 3.0) (Gpusim.Cache.hit_rate c);
  check_int "miss bytes" 256 (Gpusim.Cache.miss_bytes c);
  Gpusim.Cache.reset c;
  check_int "reset" 0 (Gpusim.Cache.accesses c)

let test_cache_bad_geometry () =
  Alcotest.(check bool) "rejects zero ways" true
    (try
       ignore (Gpusim.Cache.create ~bytes:1024 ~line_bytes:128 ~ways:0);
       false
     with Invalid_argument _ -> true)

(* ---------------- Trace cross-check ---------------- *)

let kernel_of src ~tx ~ty ~bx =
  let set = match Octopi.Variants.of_string src with [ s ] -> s | _ -> assert false in
  let ir = Tcr.Ir.of_variant ~label:"t" set.contraction (List.hd set.variants) in
  let point =
    { Tcr.Space.decomp = { tx; ty; bx; by = None }; unrolls = []; red_order = [] }
  in
  (ir, Codegen.Kernel.lower ~name:"t" ir (List.hd ir.ops) point)

let test_trace_resident_ref_reuses () =
  (* B(k,j) with j = tx, i = bx: one block touches all of B (32x32 doubles
     = 8 KiB, fits L1) across 32 reloads: simulated hit rate must be high,
     matching the analytic L1_resident class *)
  let _, k = kernel_of "dims: i=32 j=32 k=32\nC[i j] = Sum([k], A[i k] * B[k j])" ~tx:"j" ~ty:None ~bx:"i" in
  let rate = Gpusim.Simtrace.block_hit_rate arch k ("B", [ "k"; "j" ]) in
  Alcotest.(check bool) "resident ref reuses" true (rate > 0.9);
  let r = Gpusim.Perf.analyze_kernel arch k in
  let b_ref = List.nth r.refs 1 in
  Alcotest.(check bool) "analytic model agrees" true
    (b_ref.memory_class = Gpusim.Perf.L1_resident)

let test_trace_streamed_output_no_reuse () =
  (* the output C is touched once per element: no reuse beyond the line *)
  let _, k = kernel_of "dims: i=32 j=32 k=32\nC[i j] = Sum([k], A[i k] * B[k j])" ~tx:"j" ~ty:None ~bx:"i" in
  let rate = Gpusim.Simtrace.block_hit_rate arch k ("C", [ "i"; "j" ]) in
  (* 16 doubles per 128-byte line: spatial hits only, 15/16 within a line *)
  Alcotest.(check bool) "no temporal reuse" true (rate <= 0.95)

let test_trace_miss_bytes_close_to_footprint () =
  (* for a resident reference, miss bytes = compulsory = footprint *)
  let _, k = kernel_of "dims: i=32 j=32 k=32\nC[i j] = Sum([k], A[i k] * B[k j])" ~tx:"j" ~ty:None ~bx:"i" in
  let analytic = Gpusim.Coalesce.footprint_per_block k [ "k"; "j" ] in
  let simulated = Gpusim.Simtrace.block_miss_bytes arch k ("B", [ "k"; "j" ]) in
  Alcotest.(check bool) "within a line-rounding factor" true
    (float_of_int simulated <= 1.25 *. float_of_int analytic
    && float_of_int simulated >= float_of_int analytic /. 1.25)

let test_trace_thrashing_when_oversized () =
  (* a reference whose block footprint exceeds L1 must show misses on
     re-traversal: B(k,j) at 128x128 = 128 KiB > 48 KiB L1 *)
  let _, k = kernel_of "dims: i=128 j=128 k=128\nC[i j] = Sum([k], A[i k] * B[k j])" ~tx:"j" ~ty:None ~bx:"i" in
  let rate = Gpusim.Simtrace.block_hit_rate arch k ("B", [ "k"; "j" ]) in
  (* spatial locality still gives ~15/16; temporal reuse must be gone *)
  Alcotest.(check bool) "bounded by spatial-only rate" true (rate < 0.97);
  let r = Gpusim.Perf.analyze_kernel arch k in
  let b_ref = List.nth r.refs 1 in
  Alcotest.(check bool) "analytic model agrees (not L1 resident)" true
    (b_ref.memory_class <> Gpusim.Perf.L1_resident)

let test_trace_address_function () =
  let _, k = kernel_of "dims: i=8 j=8 k=8\nC[i j] = Sum([k], A[i k] * B[k j])" ~tx:"j" ~ty:None ~bx:"i" in
  (* B(k,j): addr = 8 * (k*8 + j) with bx-fixed i *)
  check_int "b address" (8 * ((3 * 8) + 5))
    (Gpusim.Simtrace.address k [ "k"; "j" ] ~tx:5 ~ty:0 ~serial_vals:[ ("k", 3) ])

let suite =
  [
    ("cache cold miss", `Quick, test_cache_cold_miss);
    ("cache line granularity", `Quick, test_cache_line_granularity);
    ("cache lru eviction", `Quick, test_cache_lru_eviction);
    ("cache lru order updates", `Quick, test_cache_lru_order_updates);
    ("cache stats", `Quick, test_cache_stats);
    ("cache bad geometry", `Quick, test_cache_bad_geometry);
    ("trace: resident ref reuses", `Quick, test_trace_resident_ref_reuses);
    ("trace: streamed output no reuse", `Quick, test_trace_streamed_output_no_reuse);
    ("trace: miss bytes near footprint", `Quick, test_trace_miss_bytes_close_to_footprint);
    ("trace: thrashing when oversized", `Quick, test_trace_thrashing_when_oversized);
    ("trace: address function", `Quick, test_trace_address_function);
  ]
