(* Tiny substring-search helper for the test-suite. *)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  if m = 0 then true
  else begin
    let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
    go 0
  end

let count haystack needle =
  let n = String.length haystack and m = String.length needle in
  if m = 0 then 0
  else begin
    let rec go i acc =
      if i + m > n then acc
      else if String.sub haystack i m = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  end
