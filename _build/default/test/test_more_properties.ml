(* Second batch of property tests: plan algebra, fusion schedules, forest
   regression quality, decision-pool structure. *)

let arch = Gpusim.Arch.gtx980

let qcheck_plan_flops_lower_bound =
  (* every strength-reduced plan performs at least the final nest's work
     and at most the naive evaluation's work *)
  QCheck.Test.make ~name:"plan flops between output space and naive count" ~count:25
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let e () = 2 + Util.Rng.int rng 4 in
      let src =
        Printf.sprintf
          "dims: i=%d j=%d k=%d l=%d\nY[i j] = Sum([k l], A[i k] * B[k j l] * C[l i])"
          (e ()) (e ()) (e ()) (e ())
      in
      match Octopi.Variants.of_string src with
      | [ set ] ->
        let naive = Octopi.Contraction.naive_flops set.contraction in
        List.for_all
          (fun (v : Octopi.Variants.variant) -> v.flops > 0 && v.flops <= 2 * naive)
          set.variants
      | _ -> false)

let qcheck_schedule_orders_are_permutations =
  QCheck.Test.make ~name:"fusion loop orders are permutations" ~count:25
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let e () = 2 + Util.Rng.int rng 3 in
      let src =
        Printf.sprintf
          "dims: i=%d j=%d k=%d l=%d m=%d\nY[i j] = Sum([k l m], A[i k] * B[k j l] * C[l m])"
          (e ()) (e ()) (e ()) (e ()) (e ())
      in
      match Octopi.Variants.of_string src with
      | [ set ] ->
        List.for_all
          (fun (v : Octopi.Variants.variant) ->
            List.for_all2
              (fun (op : Octopi.Plan.op) order ->
                List.sort compare order
                = List.sort compare (Octopi.Fusion.iteration_indices op))
              v.ops v.schedule.loop_orders)
          set.variants
      | _ -> false)

let qcheck_fusion_depths_bounded =
  QCheck.Test.make ~name:"fusion depths bounded by shared indices" ~count:25
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let e () = 2 + Util.Rng.int rng 3 in
      let src =
        Printf.sprintf
          "dims: i=%d j=%d k=%d l=%d\nY[i j] = Sum([k l], A[i k] * B[k j] * C[l i])"
          (e ()) (e ()) (e ()) (e ())
      in
      match Octopi.Variants.of_string src with
      | [ set ] ->
        List.for_all
          (fun (v : Octopi.Variants.variant) ->
            let rec pairs = function
              | a :: (b :: _ as rest) -> (a, b) :: pairs rest
              | _ -> []
            in
            List.for_all2
              (fun (p, c) depth ->
                depth >= 0 && depth <= List.length (Octopi.Fusion.fusable_pair p c))
              (pairs v.ops) v.schedule.fusion_depths)
          set.variants
      | _ -> false)

let test_forest_outperforms_mean_on_space_data () =
  (* fit the surrogate on real (encoded point, simulated time) pairs from a
     kernel space and check it explains most of the variance in-sample *)
  let set =
    match
      Octopi.Variants.of_string "dims: i=32 j=32 k=32\nC[i j] = Sum([k], A[i k] * B[k j])"
    with
    | [ s ] -> s
    | _ -> assert false
  in
  let ir = Tcr.Ir.of_variant ~label:"mm" set.contraction (List.hd set.variants) in
  let space = Tcr.Space.make ir 0 in
  let points = Array.of_list (Tcr.Space.enumerate space) in
  let feats p = 
    List.map
      (fun (n, v) ->
        ( n,
          match v with
          | Tcr.Space.Cat c -> Surf.Feature.Cat c
          | Tcr.Space.Num x -> Surf.Feature.Num x ))
      (Tcr.Space.features space p)
  in
  let schema = Surf.Feature.make_schema (Array.to_list (Array.map feats points)) in
  let x = Array.map (fun p -> Surf.Feature.encode schema (feats p)) points in
  let y =
    Array.map
      (fun p -> (Gpusim.Gpu.measure arch ir [ p ]).kernel_time_s *. 1e6)
      points
  in
  let forest = Surf.Forest.fit (Util.Rng.create 5) x y in
  let predicted = Array.to_list (Array.map (Surf.Forest.predict forest) x) in
  let r2 =
    Util.Stats.r_squared ~actual:(Array.to_list y) ~predicted
  in
  Alcotest.(check bool)
    (Printf.sprintf "in-sample r^2 = %.2f > 0.8" r2)
    true (r2 > 0.8)

let test_decision_pool_subset_of_parallel () =
  let set =
    match
      Octopi.Variants.of_string
        "dims: e=8 i=4 j=4 k=4 l=4\nur[e i j k] = Sum([l], D[i l] * u[e l j k])"
    with
    | [ s ] -> s
    | _ -> assert false
  in
  let ir = Tcr.Ir.of_variant ~label:"t" set.contraction (List.hd set.variants) in
  let op = List.hd ir.ops in
  let pool = Tcr.Decision.decomposition_pool op in
  List.iter
    (fun i ->
      Alcotest.(check bool) (i ^ " parallel") true (List.mem i op.out_indices))
    pool;
  Alcotest.(check bool) "pool nonempty" true (pool <> [])

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      qcheck_plan_flops_lower_bound;
      qcheck_schedule_orders_are_permutations;
      qcheck_fusion_depths_bounded;
    ]
  @ [
      ("forest explains space data", `Slow, test_forest_outperforms_mean_on_space_data);
      ("decision pool subset of parallel", `Quick, test_decision_pool_subset_of_parallel);
    ]
