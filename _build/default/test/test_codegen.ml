(* Tests for kernel lowering, the kernel interpreter (against the einsum
   oracle) and the CUDA / C / OpenACC emitters. *)

let check_int = Alcotest.(check int)
let contains = Astring_contains.contains

let eqn1_small =
  "dims: i=6 j=6 k=6 l=6 m=6 n=6\nV[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])"

let variant_set () =
  match Octopi.Variants.of_string eqn1_small with
  | [ s ] -> s
  | _ -> Alcotest.fail "expected one statement"

let ir_of (v : Octopi.Variants.variant) set =
  Tcr.Ir.of_variant ~label:"ex" set.Octopi.Variants.contraction v

let first_points ir =
  let ps = Tcr.Space.of_ir ir in
  List.map (fun s -> List.hd (Tcr.Space.enumerate s)) ps.op_spaces

let random_inputs ?(seed = 3) (ir : Tcr.Ir.t) =
  let rng = Util.Rng.create seed in
  List.filter_map
    (fun (v : Tcr.Ir.var) ->
      if v.role = Tcr.Ir.Input then
        Some (v.name, Tensor.Dense.random rng (Tcr.Ir.var_shape ir v.name))
      else None)
    ir.vars

(* ---------------- Kernel lowering ---------------- *)

let test_lower_dimensions () =
  let set = variant_set () in
  let ir = ir_of (List.hd set.variants) set in
  let op = List.hd ir.ops in
  let space = Tcr.Space.make ir 0 in
  let point = List.hd (Tcr.Space.enumerate space) in
  let k = Codegen.Kernel.lower ~name:"k1" ir op point in
  let bx, by = k.grid and tx, ty = k.block in
  check_int "grid x" (Tcr.Ir.extent ir point.decomp.bx) bx;
  check_int "block x" (Tcr.Ir.extent ir point.decomp.tx) tx;
  Alcotest.(check bool) "grid y default 1" true (point.decomp.by <> None || by = 1);
  Alcotest.(check bool) "block y default 1" true (point.decomp.ty <> None || ty = 1)

let test_lower_serial_split () =
  let set = variant_set () in
  let ir = ir_of (List.hd set.variants) set in
  let op = List.hd ir.ops in
  let point = List.hd (Tcr.Space.enumerate (Tcr.Space.make ir 0)) in
  let k = Codegen.Kernel.lower ~name:"k1" ir op point in
  (* serial loops: parallel ones first, then reductions *)
  let rec check_order seen_reduction = function
    | [] -> true
    | (l : Codegen.Kernel.loop) :: rest ->
      if l.parallel then (not seen_reduction) && check_order false rest
      else check_order true rest
  in
  Alcotest.(check bool) "parallel loops before reductions" true
    (check_order false k.thread_loops)

let test_lower_rejects_reduction_mapping () =
  let set = variant_set () in
  let ir = ir_of (List.hd set.variants) set in
  (* pick an op that actually has a reduction index *)
  let op = List.find (fun op -> Tcr.Ir.reduction_indices op <> []) ir.ops in
  let bad_point =
    {
      Tcr.Space.decomp =
        (* "n" is a reduction index of the first op of every variant here *)
        (let red = List.hd (Tcr.Ir.reduction_indices op) in
         let par = List.hd op.out_indices in
         { tx = red; ty = None; bx = par; by = None });
      unrolls = [];
      red_order = [];
    }
  in
  Alcotest.(check bool) "reduction index rejected" true
    (try
       ignore (Codegen.Kernel.lower ~name:"bad" ir op bad_point);
       false
     with Invalid_argument _ -> true)

let test_kernel_flops () =
  let set = variant_set () in
  let ir = ir_of (List.hd set.variants) set in
  let points = first_points ir in
  let kernels = Codegen.Kernel.lower_program ir points in
  let total = List.fold_left (fun acc k -> acc + Codegen.Kernel.flops k) 0 kernels in
  check_int "kernel flops = ir flops" (Tcr.Ir.flops ir) total

(* ---------------- Interpreter correctness ---------------- *)

let outputs_match (ir : Tcr.Ir.t) points inputs =
  let got = Codegen.Exec.run_program ir points inputs in
  let want = Codegen.Exec.run_reference ir inputs in
  List.for_all
    (fun (v : Tcr.Ir.var) ->
      v.role <> Tcr.Ir.Output
      || Tensor.Dense.approx_equal ~tol:1e-9 (List.assoc v.name want) (List.assoc v.name got))
    ir.vars

let test_exec_all_variants_default_points () =
  let set = variant_set () in
  List.iter
    (fun (v : Octopi.Variants.variant) ->
      let ir = ir_of v set in
      let inputs = random_inputs ir in
      Alcotest.(check bool)
        (Printf.sprintf "variant %d" v.id)
        true
        (outputs_match ir (first_points ir) inputs))
    set.variants

let test_exec_random_points () =
  let set = variant_set () in
  let rng = Util.Rng.create 17 in
  let v = List.nth set.variants 14 in
  let ir = ir_of v set in
  let ps = Tcr.Space.of_ir ir in
  let inputs = random_inputs ir in
  for _ = 1 to 10 do
    let points = List.map (Tcr.Space.sample rng) ps.op_spaces in
    Alcotest.(check bool) "random point correct" true (outputs_match ir points inputs)
  done

let test_exec_unroll_epilogue () =
  (* extent 7 with unroll 3 exercises main loop + epilogue; unroll 7 and
     unroll > extent exercise the degenerate paths *)
  let src = "dims: i=5 j=4 k=7\nC[i j] = Sum([k], A[i k] * B[k j])" in
  let set = match Octopi.Variants.of_string src with [ s ] -> s | _ -> assert false in
  let ir = ir_of (List.hd set.variants) set in
  let inputs = random_inputs ir in
  let base = List.hd (first_points ir) in
  List.iter
    (fun u ->
      let point = { base with Tcr.Space.unrolls = [ ("k", u) ] } in
      Alcotest.(check bool)
        (Printf.sprintf "unroll %d" u)
        true
        (outputs_match ir [ point ] inputs))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_exec_accumulating_ops () =
  (* two statements accumulating into the same output (lg3t pattern) *)
  let b = Benchsuite.Suite.lg3t ~p:4 ~elems:3 () in
  let choices = Autotune.Tuner.variant_choices b in
  let ir = (List.hd choices).v_ir in
  let inputs = random_inputs ir in
  Alcotest.(check bool) "accumulation correct" true
    (outputs_match ir (first_points ir) inputs)

let test_exec_rejects_unbound () =
  let set = variant_set () in
  let ir = ir_of (List.hd set.variants) set in
  Alcotest.(check bool) "unbound tensor raises" true
    (try
       ignore (Codegen.Exec.run_program ir (first_points ir) []);
       false
     with Invalid_argument _ -> true)

(* one qcheck property: arbitrary sampled decomposition/unroll points on a
   3-factor contraction remain correct *)
let qcheck_exec =
  QCheck.Test.make ~name:"kernel interpreter matches einsum on random points" ~count:25
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let src = "dims: i=4 j=3 k=5 l=2\nY[i j] = Sum([k l], A[i k] * B[k j l])" in
      let set = match Octopi.Variants.of_string src with [ s ] -> s | _ -> assert false in
      let v = List.nth set.variants (Util.Rng.int rng (List.length set.variants)) in
      let ir = ir_of v set in
      let ps = Tcr.Space.of_ir ir in
      let points = List.map (Tcr.Space.sample rng) ps.op_spaces in
      let inputs = random_inputs ~seed ir in
      outputs_match ir points inputs)

(* ---------------- CUDA emitter ---------------- *)

let paper_style_cuda () =
  let set = variant_set () in
  let v = List.nth set.variants 14 in
  let ir = ir_of v set in
  let points = first_points ir in
  (ir, points, Codegen.Cuda.emit_program ir points)

let test_cuda_structure () =
  let _, _, src = paper_style_cuda () in
  check_int "three kernels" 3 (Astring_contains.count src "__global__ void");
  Alcotest.(check bool) "thread index" true (contains src "threadIdx.x");
  Alcotest.(check bool) "block index" true (contains src "blockIdx.x");
  Alcotest.(check bool) "scalar replacement" true (contains src "double nv;");
  Alcotest.(check bool) "host wrapper" true (contains src "cudaMalloc");
  Alcotest.(check bool) "launch syntax" true (contains src "<<<dim3(")

let test_cuda_transfers_once () =
  let ir, points, src = paper_style_cuda () in
  ignore points;
  let h2d = Astring_contains.count src "cudaMemcpyHostToDevice" in
  let d2h = Astring_contains.count src "cudaMemcpyDeviceToHost" in
  check_int "one upload per input" (List.length (Tcr.Ir.inputs ir)) h2d;
  check_int "one download per output" (List.length (Tcr.Ir.outputs ir)) d2h

let test_cuda_unrolled_body () =
  let src = "dims: i=6 j=6 k=6\nC[i j] = Sum([k], A[i k] * B[k j])" in
  let set = match Octopi.Variants.of_string src with [ s ] -> s | _ -> assert false in
  let ir = ir_of (List.hd set.variants) set in
  let base = List.hd (first_points ir) in
  let point = { base with Tcr.Space.unrolls = [ ("k", 3) ] } in
  let cuda = Codegen.Cuda.emit_program ir [ point ] in
  Alcotest.(check bool) "strided loop" true (contains cuda "k += 3");
  Alcotest.(check bool) "offset body" true (contains cuda "(k + 2)");
  (* unroll 3 of extent 6 divides evenly: exactly 3 body statements *)
  check_int "three unrolled bodies" 3 (Astring_contains.count cuda "nv = nv +")

let test_cuda_epilogue () =
  let src = "dims: i=5 j=5 k=5\nC[i j] = Sum([k], A[i k] * B[k j])" in
  let set = match Octopi.Variants.of_string src with [ s ] -> s | _ -> assert false in
  let ir = ir_of (List.hd set.variants) set in
  let base = List.hd (first_points ir) in
  let point = { base with Tcr.Space.unrolls = [ ("k", 2) ] } in
  let cuda = Codegen.Cuda.emit_program ir [ point ] in
  (* extent 5, unroll 2: two bodies in the main loop plus one epilogue body *)
  check_int "two main + one epilogue body" 3 (Astring_contains.count cuda "nv = nv +")

(* ---------------- C / OpenACC emitters ---------------- *)

let test_c_sequential () =
  let set = variant_set () in
  let ir = ir_of (List.hd set.variants) set in
  let c = Codegen.C_emit.emit_program ir in
  Alcotest.(check bool) "loops" true (contains c "for (int");
  Alcotest.(check bool) "no pragmas" true (not (contains c "#pragma"));
  Alcotest.(check bool) "statement comment" true (contains c "/* statement 1 */")

let test_c_openmp () =
  let set = variant_set () in
  let ir = ir_of (List.hd set.variants) set in
  let c = Codegen.C_emit.emit_program ~mode:Codegen.C_emit.Openmp ir in
  check_int "one pragma per statement" (List.length ir.ops)
    (Astring_contains.count c "#pragma omp parallel for");
  Alcotest.(check bool) "no acc pragmas" true (not (contains c "#pragma acc"))

let test_acc_naive () =
  let set = variant_set () in
  let ir = ir_of (List.hd set.variants) set in
  let c = Codegen.C_emit.emit_program ~mode:Codegen.C_emit.Acc_naive ir in
  Alcotest.(check bool) "kernels pragma" true (contains c "#pragma acc kernels loop");
  Alcotest.(check bool) "data region" true (contains c "#pragma acc data copy")

let test_acc_optimized () =
  let set = variant_set () in
  let ir = ir_of (List.hd set.variants) set in
  let points = first_points ir in
  let decomps = List.map (fun (p : Tcr.Space.point) -> p.decomp) points in
  let c = Codegen.C_emit.emit_program ~mode:(Codegen.C_emit.Acc_optimized decomps) ir in
  Alcotest.(check bool) "gang clause" true (contains c "gang(");
  Alcotest.(check bool) "vector clause" true (contains c "vector_length(");
  Alcotest.(check bool) "scalar replacement" true (contains c "double nv =")

let suite =
  [
    ("lower dimensions", `Quick, test_lower_dimensions);
    ("lower serial split", `Quick, test_lower_serial_split);
    ("lower rejects reduction mapping", `Quick, test_lower_rejects_reduction_mapping);
    ("kernel flops", `Quick, test_kernel_flops);
    ("exec all variants", `Slow, test_exec_all_variants_default_points);
    ("exec random points", `Quick, test_exec_random_points);
    ("exec unroll epilogue", `Quick, test_exec_unroll_epilogue);
    ("exec accumulating ops", `Quick, test_exec_accumulating_ops);
    ("exec rejects unbound tensor", `Quick, test_exec_rejects_unbound);
    QCheck_alcotest.to_alcotest qcheck_exec;
    ("cuda structure", `Quick, test_cuda_structure);
    ("cuda transfers once", `Quick, test_cuda_transfers_once);
    ("cuda unrolled body", `Quick, test_cuda_unrolled_body);
    ("cuda epilogue", `Quick, test_cuda_epilogue);
    ("c sequential", `Quick, test_c_sequential);
    ("c openmp", `Quick, test_c_openmp);
    ("openacc naive", `Quick, test_acc_naive);
    ("openacc optimized", `Quick, test_acc_optimized);
  ]
