(* NWChem CCSD(T) kernel excerpts: tuning the coupled-cluster triples
   contractions (Section VI of the paper) and comparing code-generation
   strategies - naive OpenACC, optimized OpenACC, and Barracuda.

   Run with: dune exec examples/nwchem_ccsd.exe *)

let arch = Barracuda.Arch.k20
let reps = 100

let () =
  Printf.printf "NWChem CCSD(T) excerpts on %s (trip count 16)\n\n" arch.name;
  List.iter
    (fun family ->
      Printf.printf "== family %s ==\n"
        (Benchsuite.Nwchem.family_name family);
      (* show the contraction form of the first kernel *)
      let b1 = Benchsuite.Nwchem.benchmark family ~index:1 in
      List.iter
        (fun (c : Barracuda.Contraction.t) ->
          Printf.printf "  form: t3[%s] +=%s\n"
            (String.concat " " c.output_indices)
            (String.concat " *"
               (List.map
                  (fun (f : Octopi.Ast.tensor_ref) ->
                    Printf.sprintf " %s[%s]" f.name (String.concat " " f.indices))
                  c.factors)))
        b1.statements;
      List.iter
        (fun index ->
          let b = Benchsuite.Nwchem.benchmark family ~index in
          let ir = (List.hd (Barracuda.Tuner.variant_choices b)).v_ir in
          let r = Barracuda.Tuner.tune ~rng:(Barracuda.Rng.create index) ~arch b in
          let naive = Barracuda.Openacc.gflops arch ir ~reps Barracuda.Openacc.Naive in
          let opt =
            Barracuda.Openacc.gflops arch r.best.ir ~reps
              (Barracuda.Openacc.Optimized r.best.points)
          in
          Printf.printf
            "  %-5s naive ACC %6.2f GF | optimized ACC %6.2f GF | Barracuda %6.2f GF (%.0fx over naive)\n"
            b.label naive opt r.gflops
            (r.gflops /. naive))
        [ 1; 2; 3 ];
      print_newline ())
    Benchsuite.Nwchem.families;

  (* emit the tuned CUDA of d1_1 *)
  let b = Benchsuite.Nwchem.benchmark Benchsuite.Nwchem.D1 ~index:1 in
  let r = Barracuda.Tuner.tune ~rng:(Barracuda.Rng.create 1) ~arch b in
  let cuda = Barracuda.cuda_of r in
  let excerpt =
    String.split_on_char '\n' cuda
    |> List.to_seq |> Seq.take 16 |> List.of_seq |> String.concat "\n"
  in
  Printf.printf "Tuned CUDA for d1_1 (excerpt):\n%s\n...\n" excerpt
