(* Quickstart: the paper's running example end to end.

   Takes the Eqn.(1) contraction of Figure 2(a), enumerates the OCTOPI
   strength-reduction variants, autotunes for the GTX 980 with SURF, prints
   the tuned CUDA, executes the tuned program on random inputs and checks
   the result against the einsum oracle.

   Run with: dune exec examples/quickstart.exe *)

let program = "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])"

let () =
  Printf.printf "Input program:\n  %s\n\n" program;

  (* 1. OCTOPI: strength reduction *)
  let sets = Barracuda.variants program in
  let set = List.hd sets in
  Printf.printf "OCTOPI found %d evaluation orders; %d share the minimal %d flops\n"
    (List.length set.variants)
    (List.length (Octopi.Variants.minimal_flop_variants set))
    (Octopi.Variants.min_flops set);
  let best_plan = List.hd (Octopi.Variants.minimal_flop_variants set) in
  Printf.printf "one minimal plan: %s\n\n" (Octopi.Plan.describe best_plan.plan);

  (* 2. Autotune for the GTX 980 *)
  let result = Barracuda.tune ~arch:Barracuda.Arch.gtx980 program in
  Format.printf "Tuned for %s:@\n%a@\n@\n" result.arch.name Barracuda.pp_summary
    (Barracuda.summarize result);

  (* 3. The generated CUDA (first kernel) *)
  let cuda = Barracuda.cuda_of result in
  let first_kernel =
    String.split_on_char '\n' cuda
    |> List.to_seq |> Seq.drop 4 |> Seq.take 18 |> List.of_seq |> String.concat "\n"
  in
  Printf.printf "Generated CUDA (first kernel):\n%s\n...\n\n" first_kernel;

  (* 4. Execute the tuned program and validate against the einsum oracle *)
  let rng = Barracuda.Rng.create 7 in
  let ir = result.best.ir in
  let inputs =
    List.filter_map
      (fun (v : Barracuda.Tcr.var) ->
        if v.role = Barracuda.Tcr.Input then
          Some (v.name, Barracuda.Tensor.random rng (Barracuda.Tcr.var_shape ir v.name))
        else None)
      ir.vars
  in
  let outputs = Barracuda.run result inputs in
  let v = List.assoc "V" outputs in
  let reference =
    Barracuda.Einsum.contract ~output_indices:[ "i"; "j"; "k" ]
      (List.map
         (fun name ->
           let dims =
             match name with
             | "A" -> [ "l"; "k" ]
             | "B" -> [ "m"; "j" ]
             | "C" -> [ "n"; "i" ]
             | _ -> [ "l"; "m"; "n" ]
           in
           Barracuda.Einsum.operand (List.assoc name inputs) dims)
         [ "A"; "B"; "C"; "U" ])
  in
  Printf.printf "Functional check vs einsum oracle: %s (max |diff| = %.2e)\n"
    (if Barracuda.Tensor.approx_equal reference v then "OK" else "MISMATCH")
    (Barracuda.Tensor.max_abs_diff reference v)
