(* End-to-end integration workflow (the paper's Section VIII goal:
   "facilitate integration of the generated code into applications"):

   1. tune a contraction with SURF,
   2. save the tuning artifact (label + variant + Figure 2(c) recipe),
   3. reload it later - no search - and re-emit identical CUDA,
   4. wrap it in a standalone driver (main + timing + CPU check),
   5. show the Orio/CHiLL annotations the search explored.

   Run with: dune exec examples/workflow.exe *)

let program = "dims: e=256 i=12 l=12 j=12 k=12\nur[e i j k] = Sum([l], D[i l] * u[e l j k])"

let () =
  (* 1. tune *)
  let result = Barracuda.tune ~label:"lgrad" ~arch:Barracuda.Arch.k20 program in
  Printf.printf "tuned lgrad for %s: %.2f GFlops (simulated)\n" result.arch.name
    result.gflops;

  (* 2. save *)
  let artifact = Barracuda.save_tuning result in
  Printf.printf "\n--- tuning artifact ---\n%s\n" artifact;

  (* 3. reload without searching and re-emit identical CUDA *)
  let benchmark = Barracuda.parse ~label:"lgrad" program in
  let ir, points = Barracuda.load_tuning benchmark artifact in
  let identical =
    Barracuda.Cuda.emit_program ir points = Barracuda.cuda_of result
  in
  Printf.printf "reloaded artifact re-emits identical CUDA: %b\n\n" identical;

  (* 4. standalone driver *)
  let driver = Barracuda.driver_of ~reps:100 result in
  let lines = String.split_on_char '\n' driver in
  Printf.printf "standalone driver: %d lines of CUDA C (kernel + main + reference check)\n"
    (List.length lines);

  (* 5. the annotations the search space was expressed as *)
  let choice = List.hd (Barracuda.Tuner.variant_choices benchmark) in
  Printf.printf "\n--- Orio/CHiLL annotations (Figure 2(c)) ---\n%s"
    (Barracuda.Orio.annotations choice.spaces);
  Printf.printf "--- tuned recipe ---\n%s\n" (Barracuda.Orio.recipe result.best.points)
