examples/workflow.mli:
