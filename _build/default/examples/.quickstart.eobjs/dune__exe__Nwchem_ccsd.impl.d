examples/nwchem_ccsd.ml: Barracuda Benchsuite List Octopi Printf Seq String
