examples/nekbone_app.ml: Barracuda Benchsuite List Printf
