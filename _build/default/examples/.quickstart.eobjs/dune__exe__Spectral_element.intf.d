examples/spectral_element.mli:
