examples/custom_arch.ml: Barracuda Benchsuite Gpusim List Printf
