examples/nwchem_ccsd.mli:
