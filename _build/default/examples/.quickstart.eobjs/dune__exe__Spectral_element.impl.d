examples/spectral_element.ml: Barracuda Benchsuite List Printf String
