examples/custom_arch.mli:
