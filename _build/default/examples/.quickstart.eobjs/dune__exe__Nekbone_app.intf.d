examples/nekbone_app.mli:
