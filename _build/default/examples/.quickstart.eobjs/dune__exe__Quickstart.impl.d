examples/quickstart.ml: Barracuda Format List Octopi Printf Seq String
