examples/quickstart.mli:
