examples/workflow.ml: Barracuda List Printf String
