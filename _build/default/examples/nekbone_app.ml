(* Nekbone mini-app: a conjugate-gradient solve whose operator is built
   from the tuned Lg3/Lg3t kernels (Section VI-B of the paper).

   The example first runs a *real* CG solve through the kernel-IR executor
   (demonstrating that the tuned code is numerically sound inside an
   application), then assembles the per-iteration performance picture:
   1-core, 4-core OpenMP and Barracuda-tuned GPU execution.

   Run with: dune exec examples/nekbone_app.exe *)

let () =
  (* ---- functional solve at a small order so it runs in seconds ---- *)
  let problem = { Benchsuite.Nekbone.p = 6; elems = 8 } in
  Printf.printf "CG solve: order %d, %d elements (%d unknowns)\n" problem.p problem.elems
    (Benchsuite.Nekbone.field_points problem);
  let op = Benchsuite.Nekbone.make_operator problem in
  let rng = Barracuda.Rng.create 11 in
  let b = Barracuda.Tensor.random rng (Benchsuite.Nekbone.field_shape problem) in
  let x, stats = Benchsuite.Nekbone.cg_solve ~tol:1e-9 ~max_iter:500 op b in
  Printf.printf "converged: %b after %d iterations\n" stats.converged stats.iterations;
  let residual =
    Barracuda.Tensor.norm2 (Barracuda.Tensor.sub b (Benchsuite.Nekbone.apply op x))
    /. Barracuda.Tensor.norm2 b
  in
  Printf.printf "verified relative residual ||b - Ax|| / ||b|| = %.2e\n\n" residual;

  (* ---- performance assembly at the paper's size (12^3, batched) ---- *)
  let perf_problem = Benchsuite.Nekbone.default in
  let perf_op = Benchsuite.Nekbone.make_operator perf_problem in
  Printf.printf "Performance model at order %d, %d elements:\n" perf_problem.p
    perf_problem.elems;
  Printf.printf "  contraction share of sequential time: %.0f%% (paper: ~60%%)\n"
    (100.0 *. Benchsuite.Nekbone.contraction_fraction_cpu perf_op);
  let report cores =
    let t = Benchsuite.Nekbone.cpu_iter_time ~cores perf_op in
    Printf.printf "  Haswell %d core%s : %6.2f GFlops\n" cores
      (if cores > 1 then "s" else " ")
      (Benchsuite.Nekbone.gflops_of_iter_time perf_op t)
  in
  report 1;
  report 4;
  List.iter
    (fun arch ->
      let tune b =
        Barracuda.Tuner.tune ~rng:(Barracuda.Rng.create 42) ~arch b
      in
      let lg3 = tune (Benchsuite.Nekbone.lg3_benchmark perf_problem) in
      let lg3t = tune (Benchsuite.Nekbone.lg3t_benchmark perf_problem) in
      let t =
        Benchsuite.Nekbone.gpu_iter_time arch
          ~lg3_kernel_time:lg3.best_report.kernel_time_s
          ~lg3t_kernel_time:lg3t.best_report.kernel_time_s perf_problem
      in
      Printf.printf "  %-14s : %6.2f GFlops (Lg3 %.2f ms + Lg3t %.2f ms + aux)\n"
        arch.Barracuda.Arch.name
        (Benchsuite.Nekbone.gflops_of_iter_time perf_op t)
        (1e3 *. lg3.best_report.kernel_time_s)
        (1e3 *. lg3t.best_report.kernel_time_s))
    Barracuda.Arch.all
