(* Retargeting: tuning the same contraction for a user-defined GPU.

   The paper frames Barracuda as "an exemplar for developing highly-tuned
   applications specialized for individual architectures". This example
   defines a hypothetical successor GPU (more SMs, bigger L2, faster link),
   tunes Lg3 for it next to the three stock boards, and shows how the
   chosen decomposition shifts with the hardware balance.

   Run with: dune exec examples/custom_arch.exe *)

(* A made-up "Pascal-class" part: derived from the GTX 980 with doubled
   DP throughput, more bandwidth and a PCIe gen3 x16 link. *)
let custom : Barracuda.Arch.t =
  {
    Gpusim.Arch.gtx980 with
    name = "Custom P100-like";
    codename = "custom";
    sm_count = 28;
    clock_ghz = 1.3;
    dp_lanes_per_sm = 32;
    l2_bytes = 4 * 1024 * 1024;
    mem_bw_gbs = 540.0;
    pcie_bw_gbs = 13.0;
    kernel_launch_us = 4.0;
  }

let () =
  Printf.printf "Retargeting Lg3 (order 12, 512 elements) to four devices:\n\n";
  let b = Benchsuite.Suite.lg3 () in
  let t_seq = Barracuda.Tuner.best_sequential_time b in
  List.iter
    (fun (arch : Barracuda.Arch.t) ->
      let r = Barracuda.Tuner.tune ~rng:(Barracuda.Rng.create 42) ~arch b in
      Printf.printf "%-16s dp peak %6.0f GF, bw %4.0f GB/s -> tuned %6.2f GF (%.1fx vs CPU)\n"
        arch.name
        (Barracuda.Arch.dp_peak_gflops arch)
        arch.mem_bw_gbs r.gflops
        (t_seq /. r.time_per_eval_s);
      List.iteri
        (fun i p ->
          Printf.printf "    kernel %d: %s\n" (i + 1) (Barracuda.Space.point_key p))
        r.best.points)
    (Gpusim.Arch.all @ [ custom ]);
  Printf.printf
    "\nThe custom part's extra bandwidth shifts the bound from memory to compute;\n\
     the tuner responds with decompositions that raise occupancy rather than\n\
     minimize traffic.\n"
