(* Spectral-element gradients (the Nekbone kernels Lg3 and Lg3t) tuned for
   all three simulated GPU generations, with CPU baselines - the workload
   class the paper's introduction motivates: thousands of identically-sized
   small tensors.

   Run with: dune exec examples/spectral_element.exe *)

let order = 12
let elements = 512

let () =
  Printf.printf
    "Spectral-element gradient kernels: order %d, %d elements per batch\n\n" order elements;
  List.iter
    (fun (name, (b : Barracuda.Tuner.benchmark)) ->
      Printf.printf "== %s ==\n" name;
      List.iter
        (fun (c : Barracuda.Contraction.t) ->
          Printf.printf "  %s[%s] summed over {%s}\n" c.output
            (String.concat " " c.output_indices)
            (String.concat " " c.sum_indices))
        b.statements;
      let t_seq = Barracuda.Tuner.best_sequential_time b in
      let t_omp = Barracuda.Tuner.best_openmp_time b in
      let flops = float_of_int (Barracuda.Tuner.min_variant_flops b) in
      Printf.printf "  Haswell 1 core : %6.2f GFlops\n" (flops /. t_seq /. 1e9);
      Printf.printf "  OpenMP 4 cores : %6.2f GFlops\n" (flops /. t_omp /. 1e9);
      List.iter
        (fun arch ->
          let rng = Barracuda.Rng.create 42 in
          let r = Barracuda.Tuner.tune ~rng ~arch b in
          Printf.printf "  %-14s : %6.2f GFlops  (speedup %.1fx, %d evals over %d configs)\n"
            arch.Barracuda.Arch.name r.gflops
            (t_seq /. r.time_per_eval_s)
            r.evaluations r.pool_size;
          (* show the decomposition SURF chose for the first kernel *)
          Printf.printf "    best kernel 1: %s\n"
            (Barracuda.Space.point_key (List.hd r.best.points)))
        Barracuda.Arch.all;
      print_newline ())
    [
      ("local_grad3 (Lg3)", Benchsuite.Suite.lg3 ~p:order ~elems:elements ());
      ("local_grad3t (Lg3t)", Benchsuite.Suite.lg3t ~p:order ~elems:elements ());
    ];
  (* functional spot-check at reduced size: the tuned Lg3 equals the oracle *)
  let small = Benchsuite.Suite.lg3 ~p:4 ~elems:3 () in
  let rng = Barracuda.Rng.create 3 in
  let r = Barracuda.Tuner.tune ~rng ~arch:Barracuda.Arch.gtx980 small in
  Printf.printf "functional validation at order 4: %s\n"
    (if Barracuda.Tuner.validate r then "OK" else "MISMATCH")
