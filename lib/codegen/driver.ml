(* Standalone CUDA driver generator: wraps a tuned translation unit in a
   complete, compilable program with a main() that allocates and fills the
   inputs, runs [reps] timed evaluations of the generated host wrapper
   (which includes its transfers), checks the device result against a naive
   CPU reference, and prints the achieved GFlops - the artifact Orio's
   timing harness builds around each code variant. *)

let reference_loops b (ir : Tcr.Ir.t) =
  let line indent s = Buffer.add_string b (String.make indent ' ' ^ s ^ "\n") in
  List.iteri
    (fun i (op : Tcr.Ir.op) ->
      line 2 (Printf.sprintf "/* reference statement %d */" (i + 1));
      let rec nest indent = function
        | [] ->
          let off dims = C_emit.offset_expr ir dims in
          line indent
            (Printf.sprintf "%s_ref[%s] += %s;" op.out (off op.out_indices)
               (String.concat " * "
                  (List.map
                     (fun (name, dims) ->
                       let suffix =
                         match (Tcr.Ir.var ir name).role with
                         | Tcr.Ir.Input -> "_h"
                         | Tcr.Ir.Temp | Tcr.Ir.Output -> "_ref"
                       in
                       Printf.sprintf "%s%s[%s]" name suffix (off dims))
                     op.factors)))
        | idx :: rest ->
          line indent
            (Printf.sprintf "for (int %s = 0; %s < %d; %s++) {" idx idx
               (Tcr.Ir.extent ir idx) idx);
          nest (indent + 2) rest;
          line indent "}"
      in
      nest 2 op.loop_order)
    ir.ops

let emit ?(reps = 100) ?(seed = 1) (ir : Tcr.Ir.t) (points : Tcr.Space.point list) =
  Obs.Trace.with_span ~cat:"codegen"
    ~attrs:(fun () -> [ ("label", ir.label); ("reps", string_of_int reps) ])
    "codegen.driver"
  @@ fun _ ->
  let b = Buffer.create 8192 in
  let line indent s = Buffer.add_string b (String.make indent ' ' ^ s ^ "\n") in
  let elems name = Tensor.Shape.num_elements (Tcr.Ir.var_shape ir name) in
  Buffer.add_string b (Cuda.emit_program ir points);
  Buffer.add_string b "\n#include <stdio.h>\n#include <stdlib.h>\n#include <math.h>\n#include <time.h>\n\n";
  line 0 "int main(void)";
  line 0 "{";
  line 2 (Printf.sprintf "srand(%d);" seed);
  (* host buffers *)
  List.iter
    (fun (v : Tcr.Ir.var) ->
      match v.role with
      | Tcr.Ir.Input ->
        line 2
          (Printf.sprintf "double *%s_h = (double *)malloc(%d * sizeof(double));" v.name
             (elems v.name));
        line 2
          (Printf.sprintf "for (long t = 0; t < %d; t++) %s_h[t] = 2.0 * rand() / RAND_MAX - 1.0;"
             (elems v.name) v.name)
      | Tcr.Ir.Output ->
        line 2
          (Printf.sprintf "double *%s_h = (double *)calloc(%d, sizeof(double));" v.name
             (elems v.name));
        line 2
          (Printf.sprintf "double *%s_ref = (double *)calloc(%d, sizeof(double));" v.name
             (elems v.name))
      | Tcr.Ir.Temp ->
        line 2
          (Printf.sprintf "double *%s_ref = (double *)calloc(%d, sizeof(double));" v.name
             (elems v.name)))
    ir.vars;
  (* timed device runs: the generated <label>_run keeps data resident *)
  line 2 "struct timespec t0, t1;";
  line 2 "clock_gettime(CLOCK_MONOTONIC, &t0);";
  line 2 (Printf.sprintf "for (int rep = 0; rep < %d; rep++) {" reps);
  let run_args =
    String.concat ", "
      (List.map
         (fun (v : Tcr.Ir.var) -> v.name ^ "_h")
         (Tcr.Ir.inputs ir @ Tcr.Ir.outputs ir))
  in
  line 4 (Printf.sprintf "%s_run(%s);" ir.label run_args);
  line 2 "}";
  line 2 "clock_gettime(CLOCK_MONOTONIC, &t1);";
  line 2
    "double elapsed = (t1.tv_sec - t0.tv_sec) + 1e-9 * (t1.tv_nsec - t0.tv_nsec);";
  line 2
    (Printf.sprintf "double gflops = %d.0 * %d / elapsed / 1e9;" (Tcr.Ir.flops ir) reps);
  (* CPU reference + comparison *)
  reference_loops b ir;
  line 2 "double max_err = 0.0;";
  List.iter
    (fun (v : Tcr.Ir.var) ->
      if v.role = Tcr.Ir.Output then begin
        line 2 (Printf.sprintf "for (long t = 0; t < %d; t++) {" (elems v.name));
        line 4
          (Printf.sprintf "double e = fabs(%s_h[t] - %s_ref[t]);" v.name v.name);
        line 4 "if (e > max_err) max_err = e;";
        line 2 "}"
      end)
    ir.vars;
  line 2
    (Printf.sprintf
       "printf(\"%s: %%d reps, %%.3f ms/eval, %%.2f GFlops, max |err| = %%.3e\\n\", %d, 1e3 * elapsed / %d, gflops, max_err);"
       ir.label reps reps);
  line 2 "return max_err < 1e-9 ? 0 : 1;";
  line 0 "}";
  Buffer.contents b
