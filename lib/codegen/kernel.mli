(** GPU kernel intermediate form: one TCR statement lowered under a search
    point (decomposition + unroll factors) - the common output of the
    CUDA-CHiLL-style transformations. Both the CUDA printer and the
    simulator's interpreter consume this exact structure, so the code that
    is timed is the code that is emitted. *)

type loop = {
  index : string;
  extent : int;
  unroll : int;  (** 1 = no unrolling *)
  parallel : bool;  (** output (parallel) index, vs. reduction *)
}

(** One factor staged through a shared-memory tile: the block cooperatively
    loads the factor's per-block footprint into [__shared__] storage behind
    a [__syncthreads()] barrier and the compute loops read the tile.
    [tile_dims] are the reference dims that vary within a block, in
    reference order; the rest are fixed by the block indices. [guard]
    restricts the cooperative load to threads with [tx < n];
    [barrier_inside_guard] places the barrier inside that conditional (the
    barrier-under-divergence bug BAR072 proves absent). The direct
    lowering never stages - the field serves the TTGT/transpose kernel
    generators and the verifier's mutation harness. *)
type staging = {
  array : string;
  tile_dims : string list;
  guard : int option;
  barrier_inside_guard : bool;
}

type t = {
  name : string;
  op : Tcr.Ir.op;
  extents : (string * int) list;
  decomp : Tcr.Space.decomposition;
  grid : int * int;  (** blocks in x, y *)
  block : int * int;  (** threads in x, y *)
  thread_loops : loop list;  (** serial loops inside a thread, outer first *)
  scalar_replaced : bool;  (** output accumulated in a register *)
  arrays : (string * string list) list;  (** referenced arrays with dims *)
  staging : staging list;  (** factors staged in shared memory; [[]] = none *)
}

val extent : t -> string -> int

(** Indices handled by the hardware decomposition. *)
val mapped_indices : t -> string list

val serial_indices : t -> string list
val reduction_loops : t -> loop list

(** Iterations of the serial loop nest per thread. *)
val serial_iterations : t -> int

val threads_per_block : t -> int
val num_blocks : t -> int
val total_threads : t -> int

(** Flops: one multiply per extra factor plus one accumulate add, per
    innermost point. *)
val flops : t -> int

(** Elements of one staged tile (product of its tile-dim extents). *)
val tile_elements : t -> staging -> int

(** Static shared-memory footprint in bytes (8-byte doubles). *)
val smem_bytes : t -> int

(** Stage a factor through a shared tile; its tile dims are the dims not
    fixed by the block decomposition. Raises if [array] is not a factor
    of the kernel's op. *)
val stage_factor : ?guard:int -> ?barrier_inside_guard:bool -> t -> string -> t

val staging_of : t -> string -> staging option

(** Lower one statement. Serial loops keep the op's order with unmapped
    parallel loops outermost and reductions innermost. Raises if the
    decomposition maps a reduction index. [scalar_replace] defaults to
    [true] (Section IV); [false] exists for the ablation study. *)
val lower :
  ?scalar_replace:bool -> name:string -> Tcr.Ir.t -> Tcr.Ir.op -> Tcr.Space.point -> t

(** One kernel per statement, named [<label>_GPU_<n>] as in Figure 2(d).
    Requires one point per op. *)
val lower_program : ?scalar_replace:bool -> Tcr.Ir.t -> Tcr.Space.point list -> t list
