(* CUDA C emitter: prints the kernel IR in the style of Figure 2(d), plus a
   host wrapper that allocates device memory, copies inputs once, launches
   the kernel sequence with data resident on the GPU, and copies the output
   back. *)

let buf_add = Buffer.add_string

(* C expression for the linear (row-major) offset of an array reference.
   Index variables are tx/ty/bx/by or serial loop variables; [subst]
   rewrites a loop variable, used to print unrolled bodies as "(n + 2)". *)
let offset_expr (k : Kernel.t) ?(subst = fun v -> v) (dims : string list) =
  let extents = List.map (Kernel.extent k) dims in
  let n = List.length extents in
  let strides =
    List.init n (fun i ->
        List.fold_left ( * ) 1 (List.filteri (fun j _ -> j > i) extents))
  in
  let var_of idx =
    let d = k.decomp in
    if idx = d.tx then "tx"
    else if Some idx = d.ty then "ty"
    else if idx = d.bx then "bx"
    else if Some idx = d.by then "by"
    else subst idx
  in
  let terms =
    List.map2
      (fun idx stride ->
        let v = var_of idx in
        if stride = 1 then v else Printf.sprintf "%s * %d" v stride)
      dims strides
  in
  String.concat " + " terms

let param_list (k : Kernel.t) =
  String.concat ", " (List.map (fun (name, _) -> "double *" ^ name) k.arrays)

(* The multiply-accumulate statement with loop-variable substitution.
   Staged factors read their shared tile (offsets over the tile dims only;
   the block-fixed dims were absorbed by the cooperative load). *)
let body_stmt (k : Kernel.t) acc_var subst =
  let factors =
    List.map
      (fun (name, dims) ->
        match Kernel.staging_of k name with
        | Some s -> Printf.sprintf "%s_tile[%s]" name (offset_expr k ~subst s.tile_dims)
        | None -> Printf.sprintf "%s[%s]" name (offset_expr k ~subst dims))
      k.op.factors
  in
  Printf.sprintf "%s = %s + %s;" acc_var acc_var (String.concat " * " factors)

(* Global offset of tile element [lt] of a staged factor: tile dims decoded
   from lt (row-major), block-fixed dims taken from the block indices. *)
let tile_load_offset (k : Kernel.t) (s : Kernel.staging) =
  let dims = List.assoc s.array k.arrays in
  let extents = List.map (Kernel.extent k) dims in
  let n = List.length extents in
  let strides =
    List.init n (fun i ->
        List.fold_left ( * ) 1 (List.filteri (fun j _ -> j > i) extents))
  in
  let tile_exts = List.map (Kernel.extent k) s.tile_dims in
  let m = List.length tile_exts in
  let divs =
    List.init m (fun i ->
        List.fold_left ( * ) 1 (List.filteri (fun j _ -> j > i) tile_exts))
  in
  let coord idx =
    let rec pos j = function
      | [] -> invalid_arg "Cuda.tile_load_offset"
      | d :: rest -> if d = idx then j else pos (j + 1) rest
    in
    let j = pos 0 s.tile_dims in
    let div = List.nth divs j and ext = List.nth tile_exts j in
    if div = 1 then Printf.sprintf "(lt %% %d)" ext
    else Printf.sprintf "((lt / %d) %% %d)" div ext
  in
  let d = k.decomp in
  let terms =
    List.map2
      (fun idx stride ->
        let v =
          if List.mem idx s.tile_dims then coord idx
          else if idx = d.bx then "bx"
          else if Some idx = d.by then "by"
          else idx
        in
        if stride = 1 then v else Printf.sprintf "%s * %d" v stride)
      dims strides
  in
  String.concat " + " terms

(* Cooperative load of every staged tile, then the barrier. A guard
   restricts the load to threads with tx < n; with [barrier_inside_guard]
   the __syncthreads() is printed inside that conditional - the classic
   barrier-under-divergence bug the access analysis flags as BAR072. *)
let emit_staging line (k : Kernel.t) =
  let tpb = Kernel.threads_per_block k in
  let bx_threads = fst k.block in
  List.iter
    (fun (s : Kernel.staging) ->
      line 2
        (Printf.sprintf "__shared__ double %s_tile[%d];" s.array (Kernel.tile_elements k s)))
    k.staging;
  if k.staging <> [] then line 2 "int lt;";
  List.iter
    (fun (s : Kernel.staging) ->
      let elems = Kernel.tile_elements k s in
      (* participating threads: tx < g when guarded (all ty rows), so the
         cooperative load strides by its own population and still covers
         every tile element - a guard narrows the loaders, never the tile *)
      let g = match s.guard with None -> bx_threads | Some g -> min g bx_threads in
      let loaders = max 1 (g * (tpb / bx_threads)) in
      let lt0 = if k.decomp.ty = None then "tx" else Printf.sprintf "tx + %d * ty" g in
      let load indent =
        line indent
          (Printf.sprintf "for (lt = %s; lt < %d; lt += %d) {" lt0 elems loaders);
        line (indent + 2)
          (Printf.sprintf "%s_tile[lt] = %s[%s];" s.array s.array (tile_load_offset k s));
        line indent "}"
      in
      match s.guard with
      | None ->
        load 2;
        line 2 "__syncthreads();"
      | Some g ->
        line 2 (Printf.sprintf "if (tx < %d) {" g);
        load 4;
        if s.barrier_inside_guard then line 4 "__syncthreads();";
        line 2 "}";
        if not s.barrier_inside_guard then line 2 "__syncthreads();")
    k.staging

let emit_kernel (k : Kernel.t) =
  let b = Buffer.create 1024 in
  let line indent s = buf_add b (String.make indent ' ' ^ s ^ "\n") in
  line 0 (Printf.sprintf "__global__ void %s(%s)" k.name (param_list k));
  line 0 "{";
  let d = k.decomp in
  line 2 "int tx = threadIdx.x;";
  if d.ty <> None then line 2 "int ty = threadIdx.y;";
  line 2 "int bx = blockIdx.x;";
  if d.by <> None then line 2 "int by = blockIdx.y;";
  let parallel_loops, reduction_loops =
    List.partition (fun (l : Kernel.loop) -> l.parallel) k.thread_loops
  in
  List.iter
    (fun (l : Kernel.loop) -> line 2 (Printf.sprintf "int %s;" l.index))
    k.thread_loops;
  if k.scalar_replaced then line 2 "double nv;";
  emit_staging line k;
  let out_expr = Printf.sprintf "%s[%s]" k.op.out (offset_expr k k.op.out_indices) in
  let identity v = v in
  (* reduction loops: each may be unrolled (main loop + epilogue), with the
     substitutions composing across nesting levels *)
  let rec emit_reductions indent acc subst = function
    | [] -> line indent (body_stmt k acc subst)
    | (l : Kernel.loop) :: rest ->
      if l.unroll <= 1 then begin
        line indent
          (Printf.sprintf "for (%s = 0; %s < %d; %s++) {" l.index l.index l.extent l.index);
        emit_reductions (indent + 2) acc subst rest;
        line indent "}"
      end
      else begin
        let u = l.unroll and e = l.extent in
        let main = e - (e mod u) in
        if main > 0 then begin
          line indent
            (Printf.sprintf "for (%s = 0; %s <= %d; %s += %d) {" l.index l.index (main - u)
               l.index u);
          for j = 0 to u - 1 do
            let subst' v =
              if v = l.index then
                if j = 0 then l.index else Printf.sprintf "(%s + %d)" l.index j
              else subst v
            in
            emit_reductions (indent + 2) acc subst' rest
          done;
          line indent "}"
        end;
        for i = main to e - 1 do
          let subst' v = if v = l.index then string_of_int i else subst v in
          emit_reductions indent acc subst' rest
        done
      end
  in
  (* serial parallel loops enclose one scalar-replaced output element each *)
  let rec emit_parallel indent = function
    | [] ->
      if k.scalar_replaced then begin
        line indent (Printf.sprintf "nv = %s;" out_expr);
        emit_reductions indent "nv" identity reduction_loops;
        line indent (Printf.sprintf "%s = nv;" out_expr)
      end
      else
        (* ablation form: accumulate straight into global memory *)
        emit_reductions indent out_expr identity reduction_loops
    | (l : Kernel.loop) :: rest ->
      line indent
        (Printf.sprintf "for (%s = 0; %s < %d; %s++) {" l.index l.index l.extent l.index);
      emit_parallel (indent + 2) rest;
      line indent "}"
  in
  emit_parallel 2 parallel_loops;
  line 0 "}";
  Buffer.contents b

(* Host-side driver: allocation, transfers, launches. *)
let emit_host (ir : Tcr.Ir.t) (kernels : Kernel.t list) =
  let b = Buffer.create 2048 in
  let line indent s = buf_add b (String.make indent ' ' ^ s ^ "\n") in
  let elems name = Tensor.Shape.num_elements (Tcr.Ir.var_shape ir name) in
  line 0
    (Printf.sprintf "void %s_run(%s)" ir.label
       (String.concat ", "
          (List.map
             (fun (v : Tcr.Ir.var) -> "double *" ^ v.name ^ "_h")
             (Tcr.Ir.inputs ir @ Tcr.Ir.outputs ir))));
  line 0 "{";
  List.iter
    (fun (v : Tcr.Ir.var) ->
      line 2 (Printf.sprintf "double *%s;" v.name);
      line 2
        (Printf.sprintf "cudaMalloc((void **)&%s, %d * sizeof(double));" v.name
           (elems v.name)))
    ir.vars;
  List.iter
    (fun (v : Tcr.Ir.var) ->
      match v.role with
      | Tcr.Ir.Input ->
        line 2
          (Printf.sprintf
             "cudaMemcpy(%s, %s_h, %d * sizeof(double), cudaMemcpyHostToDevice);" v.name
             v.name (elems v.name))
      | Tcr.Ir.Temp | Tcr.Ir.Output ->
        line 2
          (Printf.sprintf "cudaMemset(%s, 0, %d * sizeof(double));" v.name (elems v.name)))
    ir.vars;
  List.iter
    (fun (k : Kernel.t) ->
      let gx, gy = k.grid and tx, ty = k.block in
      line 2
        (Printf.sprintf "%s<<<dim3(%d, %d), dim3(%d, %d)>>>(%s);" k.name gx gy tx ty
           (String.concat ", " (List.map fst k.arrays))))
    kernels;
  List.iter
    (fun (v : Tcr.Ir.var) ->
      if v.role = Tcr.Ir.Output then
        line 2
          (Printf.sprintf
             "cudaMemcpy(%s_h, %s, %d * sizeof(double), cudaMemcpyDeviceToHost);" v.name
             v.name (elems v.name)))
    ir.vars;
  List.iter (fun (v : Tcr.Ir.var) -> line 2 (Printf.sprintf "cudaFree(%s);" v.name)) ir.vars;
  line 0 "}";
  Buffer.contents b

(* Full translation unit for a tuned program. *)
let emit_program ?scalar_replace (ir : Tcr.Ir.t) (points : Tcr.Space.point list) =
  Obs.Trace.with_span ~cat:"codegen"
    ~attrs:(fun () -> [ ("label", ir.label) ])
    "codegen.cuda"
  @@ fun _ ->
  let kernels = Kernel.lower_program ?scalar_replace ir points in
  let b = Buffer.create 4096 in
  buf_add b "#include <cuda_runtime.h>\n\n";
  buf_add b (Printf.sprintf "/* Generated by Barracuda from TCR program %s */\n\n" ir.label);
  List.iter
    (fun k ->
      buf_add b (emit_kernel k);
      buf_add b "\n")
    kernels;
  buf_add b (emit_host ir kernels);
  Buffer.contents b
