(* Interpreter for the kernel IR.

   Executes the same structure the CUDA emitter prints - including the
   unrolled main loop plus epilogue and the scalar-replaced output - so the
   test-suite can check that every transformation (decomposition,
   permutation, unroll, scalar replacement) preserves semantics against the
   einsum oracle. *)

type env = (string * Tensor.Dense.t) list

let find env name =
  match List.assoc_opt name env with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Exec: unbound tensor %s" name)

(* Compiled array reference: data plus the stride of each index slot. *)
type ref_code = { data : float array; strides : int array (* per slot *) }

let compile_ref (k : Kernel.t) ~slot_of env (name, dims) =
  let tensor = find env name in
  let shape = Tensor.Dense.shape tensor in
  if Tensor.Shape.rank shape <> List.length dims then
    invalid_arg (Printf.sprintf "Exec: rank mismatch for %s" name);
  List.iteri
    (fun pos i ->
      if shape.(pos) <> Kernel.extent k i then
        invalid_arg (Printf.sprintf "Exec: extent mismatch for %s on %s" name i))
    dims;
  let tensor_strides = Tensor.Shape.strides shape in
  let nslots = Array.length (slot_of : (string * int) array) in
  let strides = Array.make nslots 0 in
  List.iteri
    (fun pos i ->
      let slot =
        match Array.find_opt (fun (n, _) -> n = i) slot_of with
        | Some (_, s) -> s
        | None -> invalid_arg (Printf.sprintf "Exec: index %s has no slot" i)
      in
      strides.(slot) <- strides.(slot) + tensor_strides.(pos))
    dims;
  { data = Tensor.Dense.data tensor; strides }

let offset r (env_vals : int array) =
  let off = ref 0 in
  for s = 0 to Array.length env_vals - 1 do
    off := !off + (r.strides.(s) * env_vals.(s))
  done;
  !off

(* A shared tile for a staged factor, refreshed once per block: the tile
   dims are decoded row-major from the linear tile element, the block-fixed
   dims read from the current block indices. The barrier and its guard have
   no semantic effect under sequential interpretation (the whole tile is
   materialized before the compute loops) - barrier-under-divergence is a
   hazard the access analysis proves absent, not a value change here. *)
type tile_code = {
  t_data : float array;
  t_src : float array;
  t_dims : (int * int) array;   (* per tile dim: extent, global stride *)
  t_fixed : (int * int) array;  (* per block-fixed dim: slot, global stride *)
}

let refresh_tile (vals : int array) tc =
  let base =
    Array.fold_left (fun acc (slot, gs) -> acc + (gs * vals.(slot))) 0 tc.t_fixed
  in
  let m = Array.length tc.t_dims in
  for t = 0 to Array.length tc.t_data - 1 do
    let off = ref base and rem = ref t in
    for j = m - 1 downto 0 do
      let ext, gs = tc.t_dims.(j) in
      off := !off + (gs * (!rem mod ext));
      rem := !rem / ext
    done;
    tc.t_data.(t) <- tc.t_src.(!off)
  done

(* Run one kernel over its grid. Accumulates into the (pre-zeroed or
   previously accumulated) output tensor, as the generated CUDA does by
   loading the output into the scalar first. *)
let run_kernel (k : Kernel.t) (env : env) =
  let d = k.decomp in
  (* slot layout: tx, bx, [ty], [by], serial loops *)
  let index_names =
    (d.tx :: d.bx :: (Option.to_list d.ty @ Option.to_list d.by))
    @ List.map (fun (l : Kernel.loop) -> l.index) k.thread_loops
  in
  let slot_of = Array.of_list (List.mapi (fun i n -> (n, i)) index_names) in
  let slot name =
    match Array.find_opt (fun (n, _) -> n = name) slot_of with
    | Some (_, s) -> s
    | None ->
      invalid_arg
        (Printf.sprintf
           "Exec: index %s has no slot in the kernel's layout (decomposition \
            indices followed by serial loops); every referenced index must be \
            driven by one of them"
           name)
  in
  let vals = Array.make (Array.length slot_of) 0 in
  let out_ref = compile_ref k ~slot_of env (k.op.out, k.op.out_indices) in
  (* staged factors: compile a shared tile per staging record *)
  let tiles =
    List.map
      (fun (s : Kernel.staging) ->
        let dims = List.assoc s.array k.arrays in
        let tensor = find env s.array in
        let gstrides = Tensor.Shape.strides (Tensor.Dense.shape tensor) in
        let t_dims =
          Array.of_list
            (List.map
               (fun td ->
                 let pos =
                   match List.mapi (fun i d -> (d, i)) dims |> List.assoc_opt td with
                   | Some p -> p
                   | None ->
                     invalid_arg
                       (Printf.sprintf "Exec: tile dim %s is not a dim of %s" td s.array)
                 in
                 (Kernel.extent k td, gstrides.(pos)))
               s.tile_dims)
        in
        let t_fixed =
          List.mapi (fun i dim -> (dim, i)) dims
          |> List.filter (fun (dim, _) -> not (List.mem dim s.tile_dims))
          |> List.map (fun (dim, pos) -> (slot dim, gstrides.(pos)))
          |> Array.of_list
        in
        let t_data = Array.make (Kernel.tile_elements k s) 0.0 in
        (s.array, { t_data; t_src = Tensor.Dense.data tensor; t_dims; t_fixed }))
      k.staging
  in
  (* a staged factor reads its tile with row-major tile strides; the
     block-fixed dims were absorbed by the per-block refresh *)
  let compile_tile_ref (s : Kernel.staging) tc =
    let tile_exts = List.map (Kernel.extent k) s.tile_dims in
    let m = List.length tile_exts in
    let tstrides =
      List.init m (fun i ->
          List.fold_left ( * ) 1 (List.filteri (fun j _ -> j > i) tile_exts))
    in
    let strides = Array.make (Array.length slot_of) 0 in
    List.iteri
      (fun j idx -> strides.(slot idx) <- strides.(slot idx) + List.nth tstrides j)
      s.tile_dims;
    { data = tc.t_data; strides }
  in
  let factor_refs =
    Array.of_list
      (List.map
         (fun (name, dims) ->
           match Kernel.staging_of k name with
           | Some s -> compile_tile_ref s (List.assoc name tiles)
           | None -> compile_ref k ~slot_of env (name, dims))
         k.op.factors)
  in
  let nf = Array.length factor_refs in
  (* innermost body: one multiply-accumulate *)
  let product () =
    let p = ref 1.0 in
    for f = 0 to nf - 1 do
      let r = factor_refs.(f) in
      p := !p *. r.data.(offset r vals)
    done;
    !p
  in
  (* split serial loops: parallel (distinct output elements) outside,
     reductions inside accumulated into the scalar *)
  let parallel_loops, reduction_loops =
    List.partition (fun (l : Kernel.loop) -> l.parallel) k.thread_loops
  in
  let acc = ref 0.0 in
  let rec run_reductions = function
    | [] -> acc := !acc +. product ()
    | (l : Kernel.loop) :: rest ->
      let s = slot l.index in
      let u = l.unroll and e = l.extent in
      let i = ref 0 in
      (* unrolled main loop *)
      while !i + u <= e do
        for j = 0 to u - 1 do
          vals.(s) <- !i + j;
          run_reductions rest
        done;
        i := !i + u
      done;
      (* epilogue *)
      while !i < e do
        vals.(s) <- !i;
        run_reductions rest;
        incr i
      done
  in
  let run_output_element () =
    if k.scalar_replaced then begin
      (* load once, accumulate in the register, store once *)
      let off = offset out_ref vals in
      acc := out_ref.data.(off);
      run_reductions reduction_loops;
      out_ref.data.(off) <- !acc
    end
    else begin
      (* ablation form: read-modify-write the output every iteration *)
      acc := 0.0;
      let off = offset out_ref vals in
      let saved = out_ref.data.(off) in
      run_reductions reduction_loops;
      out_ref.data.(off) <- saved +. !acc
    end
  in
  let rec run_parallel = function
    | [] -> run_output_element ()
    | (l : Kernel.loop) :: rest ->
      let s = slot l.index in
      for i = 0 to l.extent - 1 do
        vals.(s) <- i;
        run_parallel rest
      done
  in
  let bx_e, by_e = k.grid and tx_e, ty_e = k.block in
  let tx_s = slot d.tx and bx_s = slot d.bx in
  let ty_s = Option.map slot d.ty and by_s = Option.map slot d.by in
  for by = 0 to by_e - 1 do
    Option.iter (fun s -> vals.(s) <- by) by_s;
    for bx = 0 to bx_e - 1 do
      vals.(bx_s) <- bx;
      List.iter (fun (_, tc) -> refresh_tile vals tc) tiles;
      for ty = 0 to ty_e - 1 do
        Option.iter (fun s -> vals.(s) <- ty) ty_s;
        for tx = 0 to tx_e - 1 do
          vals.(tx_s) <- tx;
          run_parallel parallel_loops
        done
      done
    done
  done

(* Allocate zeroed temporaries and outputs for a program. *)
let allocate_produced (ir : Tcr.Ir.t) (inputs : env) : env =
  let produced =
    List.filter (fun (v : Tcr.Ir.var) -> v.role <> Tcr.Ir.Input) ir.vars
  in
  inputs
  @ List.map
      (fun (v : Tcr.Ir.var) -> (v.name, Tensor.Dense.create (Tcr.Ir.var_shape ir v.name)))
      produced

(* Run a whole program: lower each op under its point and execute the
   kernels in sequence (data stays "device-resident" in [env]). Returns the
   extended environment; the output tensor is found under its name. *)
let run_program ?scalar_replace (ir : Tcr.Ir.t) (points : Tcr.Space.point list) (inputs : env) : env =
  let env = allocate_produced ir inputs in
  let kernels = Kernel.lower_program ?scalar_replace ir points in
  List.iter (fun k -> run_kernel k env) kernels;
  env

(* Reference evaluation of a TCR program using the einsum oracle, for
   validation: ops are evaluated in order, accumulating when several ops
   target the same tensor. *)
let run_reference (ir : Tcr.Ir.t) (inputs : env) : env =
  let env = allocate_produced ir inputs in
  List.iter
    (fun (op : Tcr.Ir.op) ->
      let operands =
        List.map (fun (name, idx) -> Tensor.Einsum.operand (find env name) idx) op.factors
      in
      let value = Tensor.Einsum.contract ~output_indices:op.out_indices operands in
      let dest = find env op.out in
      let sum = Tensor.Dense.add dest value in
      Array.blit (Tensor.Dense.data sum) 0 (Tensor.Dense.data dest) 0
        (Tensor.Dense.num_elements dest))
    ir.ops;
  env
