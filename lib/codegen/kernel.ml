(* GPU kernel intermediate form: one TCR statement lowered under a search
   point (thread/block decomposition + unroll factors), the common output of
   the CUDA-CHiLL-style transformations.

   Both the CUDA printer and the simulator's interpreter consume this exact
   structure, so the code we "time" is the code we emit. *)

type loop = {
  index : string;
  extent : int;
  unroll : int;       (* 1 = no unrolling *)
  parallel : bool;    (* output (parallel) index, vs. reduction *)
}

type t = {
  name : string;
  op : Tcr.Ir.op;
  extents : (string * int) list;
  decomp : Tcr.Space.decomposition;
  grid : int * int;          (* blocks in x, y *)
  block : int * int;         (* threads in x, y *)
  thread_loops : loop list;  (* serial loops inside a thread, outermost first *)
  scalar_replaced : bool;    (* output accumulated in a register *)
  arrays : (string * string list) list;  (* every array referenced, with dims *)
}

let extent k i =
  match List.assoc_opt i k.extents with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Kernel.extent: unknown index %s" i)

(* Indices handled by the hardware decomposition. *)
let mapped_indices k =
  let d = k.decomp in
  d.tx :: d.bx :: (Option.to_list d.ty @ Option.to_list d.by)

let serial_indices k = List.map (fun l -> l.index) k.thread_loops

let reduction_loops k = List.filter (fun l -> not l.parallel) k.thread_loops

(* Iterations of the serial loop nest executed by each thread. *)
let serial_iterations k =
  List.fold_left (fun acc l -> acc * l.extent) 1 k.thread_loops

let threads_per_block k = fst k.block * snd k.block
let num_blocks k = fst k.grid * snd k.grid
let total_threads k = threads_per_block k * num_blocks k

(* Flops executed by the kernel: per innermost point, one multiply per extra
   factor and one accumulate add. *)
let flops k =
  total_threads k * serial_iterations k * List.length k.op.factors

(* ------------------------------------------------------------------ *)
(* Lowering *)

let position order i =
  let rec go pos = function
    | [] -> max_int
    | x :: rest -> if x = i then pos else go (pos + 1) rest
  in
  go 0 order

(* Lower [op] of [ir] under [point]. Serial loops are ordered with the
   unmapped parallel loops outermost (each computes a distinct output
   element) and reduction loops innermost, both following the op's loop
   order; unroll factors attach to their loops. [scalar_replace] (on by
   default, as in Section IV) accumulates the output in a register; turning
   it off exists for the ablation study. *)
let lower ?(scalar_replace = true) ~name (ir : Tcr.Ir.t) (op : Tcr.Ir.op)
    (point : Tcr.Space.point) =
  let d = point.decomp in
  let mapped = d.tx :: d.bx :: (Option.to_list d.ty @ Option.to_list d.by) in
  List.iter
    (fun i ->
      if not (List.mem i op.out_indices) then
        invalid_arg
          (Printf.sprintf "Kernel.lower: decomposition index %s is not parallel" i))
    mapped;
  let ext i = Tcr.Ir.extent ir i in
  let serial =
    List.filter (fun i -> not (List.mem i mapped)) op.loop_order
  in
  let parallel_serial = List.filter (fun i -> List.mem i op.out_indices) serial in
  let reductions = List.filter (fun i -> not (List.mem i op.out_indices)) serial in
  (* the point may permute the reduction loops (Section IV's loop
     permutation); it must name exactly the reduction indices *)
  let reductions =
    match point.red_order with
    | [] -> reductions
    | order ->
      if List.sort compare order <> List.sort compare reductions then
        invalid_arg "Kernel.lower: red_order is not a permutation of the reductions";
      order
  in
  let order = parallel_serial @ reductions in
  let thread_loops =
    List.map
      (fun i ->
        {
          index = i;
          extent = ext i;
          unroll = (match List.assoc_opt i point.unrolls with Some u -> max 1 u | None -> 1);
          parallel = List.mem i op.out_indices;
        })
      order
  in
  let arrays =
    let refs = (op.out, op.out_indices) :: op.factors in
    List.fold_left
      (fun acc (name, dims) -> if List.mem_assoc name acc then acc else acc @ [ (name, dims) ])
      [] refs
  in
  ignore position;
  {
    name;
    op;
    extents = ir.extents;
    decomp = d;
    grid = (ext d.bx, match d.by with None -> 1 | Some i -> ext i);
    block = (ext d.tx, match d.ty with None -> 1 | Some i -> ext i);
    thread_loops;
    scalar_replaced = scalar_replace;
    arrays;
  }

(* Lower every op of a program under per-op points. Kernels are named
   <label>_GPU_<n> as in Figure 2(d). *)
let lower_program ?scalar_replace (ir : Tcr.Ir.t) (points : Tcr.Space.point list) =
  if List.length points <> List.length ir.ops then
    invalid_arg "Kernel.lower_program: one point per op required";
  Obs.Trace.with_span ~cat:"codegen"
    ~attrs:(fun () ->
      [ ("label", ir.label); ("kernels", string_of_int (List.length ir.ops)) ])
    "codegen.lower"
  @@ fun _ ->
  List.mapi
    (fun i (op, point) ->
      lower ?scalar_replace ~name:(Printf.sprintf "%s_GPU_%d" ir.label (i + 1)) ir op point)
    (List.combine ir.ops points)
