(* GPU kernel intermediate form: one TCR statement lowered under a search
   point (thread/block decomposition + unroll factors), the common output of
   the CUDA-CHiLL-style transformations.

   Both the CUDA printer and the simulator's interpreter consume this exact
   structure, so the code we "time" is the code we emit. *)

type loop = {
  index : string;
  extent : int;
  unroll : int;       (* 1 = no unrolling *)
  parallel : bool;    (* output (parallel) index, vs. reduction *)
}

(* One factor staged through a shared-memory tile: the block cooperatively
   loads the factor's per-block footprint into __shared__ storage behind a
   __syncthreads() barrier, and the compute loops read the tile instead of
   global memory. [tile_dims] are the dims of the reference that vary
   within the block (thread-mapped or serial), in reference order; the
   remaining dims are fixed by the block indices. A [guard] restricts the
   cooperative load to threads with tx < n - the usual partial-tile shape -
   and [barrier_inside_guard] places the barrier inside that conditional,
   which is exactly the barrier-under-divergence bug the access analysis
   proves absent (BAR072). The direct-lowering pipeline never stages; the
   field exists for the TTGT/transpose kernel generators and for the
   verifier's mutation harness. *)
type staging = {
  array : string;
  tile_dims : string list;
  guard : int option;
  barrier_inside_guard : bool;
}

type t = {
  name : string;
  op : Tcr.Ir.op;
  extents : (string * int) list;
  decomp : Tcr.Space.decomposition;
  grid : int * int;          (* blocks in x, y *)
  block : int * int;         (* threads in x, y *)
  thread_loops : loop list;  (* serial loops inside a thread, outermost first *)
  scalar_replaced : bool;    (* output accumulated in a register *)
  arrays : (string * string list) list;  (* every array referenced, with dims *)
  staging : staging list;    (* factors staged in shared memory; [] = none *)
}

let extent k i =
  match List.assoc_opt i k.extents with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Kernel.extent: unknown index %s" i)

(* Indices handled by the hardware decomposition. *)
let mapped_indices k =
  let d = k.decomp in
  d.tx :: d.bx :: (Option.to_list d.ty @ Option.to_list d.by)

let serial_indices k = List.map (fun l -> l.index) k.thread_loops

let reduction_loops k = List.filter (fun l -> not l.parallel) k.thread_loops

(* Iterations of the serial loop nest executed by each thread. *)
let serial_iterations k =
  List.fold_left (fun acc l -> acc * l.extent) 1 k.thread_loops

let threads_per_block k = fst k.block * snd k.block
let num_blocks k = fst k.grid * snd k.grid
let total_threads k = threads_per_block k * num_blocks k

(* Flops executed by the kernel: per innermost point, one multiply per extra
   factor and one accumulate add. *)
let flops k =
  total_threads k * serial_iterations k * List.length k.op.factors

(* ------------------------------------------------------------------ *)
(* Shared-memory staging *)

let tile_elements k (s : staging) =
  List.fold_left (fun acc d -> acc * extent k d) 1 s.tile_dims

(* Static shared-memory footprint in bytes (8-byte doubles). *)
let smem_bytes k =
  List.fold_left (fun acc s -> acc + (8 * tile_elements k s)) 0 k.staging

(* Stage factor [array] through a shared tile: its tile dims are the dims
   not fixed by the block decomposition (those vary within a block). An
   optional [guard] restricts the cooperative load to threads with tx < n;
   [barrier_inside_guard] moves the __syncthreads() inside that guard -
   the deliberate bug shape used by the mutation harness. *)
let stage_factor ?guard ?(barrier_inside_guard = false) k array =
  let dims =
    match List.assoc_opt array k.op.factors with
    | Some dims -> dims
    | None ->
      invalid_arg
        (Printf.sprintf "Kernel.stage_factor: %s is not a factor of %s" array k.name)
  in
  let block_fixed = k.decomp.bx :: Option.to_list k.decomp.by in
  let tile_dims = List.filter (fun d -> not (List.mem d block_fixed)) dims in
  let s = { array; tile_dims; guard; barrier_inside_guard } in
  { k with staging = k.staging @ [ s ] }

let staging_of k array = List.find_opt (fun s -> s.array = array) k.staging

(* ------------------------------------------------------------------ *)
(* Lowering *)

let position order i =
  let rec go pos = function
    | [] -> max_int
    | x :: rest -> if x = i then pos else go (pos + 1) rest
  in
  go 0 order

(* Lower [op] of [ir] under [point]. Serial loops are ordered with the
   unmapped parallel loops outermost (each computes a distinct output
   element) and reduction loops innermost, both following the op's loop
   order; unroll factors attach to their loops. [scalar_replace] (on by
   default, as in Section IV) accumulates the output in a register; turning
   it off exists for the ablation study. *)
let lower ?(scalar_replace = true) ~name (ir : Tcr.Ir.t) (op : Tcr.Ir.op)
    (point : Tcr.Space.point) =
  let d = point.decomp in
  let mapped = d.tx :: d.bx :: (Option.to_list d.ty @ Option.to_list d.by) in
  List.iter
    (fun i ->
      if not (List.mem i op.out_indices) then
        invalid_arg
          (Printf.sprintf "Kernel.lower: decomposition index %s is not parallel" i))
    mapped;
  let ext i = Tcr.Ir.extent ir i in
  (* the serial schedule (unmapped parallel loops outermost, reduction
     loops innermost, permuted by the point's red_order) is shared with
     the recipe-stage semantic evaluator via Space.serial_schedule *)
  let parallel_serial, reductions = Tcr.Space.serial_schedule op point in
  let order = parallel_serial @ reductions in
  let thread_loops =
    List.map
      (fun i ->
        {
          index = i;
          extent = ext i;
          unroll = (match List.assoc_opt i point.unrolls with Some u -> max 1 u | None -> 1);
          parallel = List.mem i op.out_indices;
        })
      order
  in
  let arrays =
    let refs = (op.out, op.out_indices) :: op.factors in
    List.fold_left
      (fun acc (name, dims) -> if List.mem_assoc name acc then acc else acc @ [ (name, dims) ])
      [] refs
  in
  ignore position;
  {
    name;
    op;
    extents = ir.extents;
    decomp = d;
    grid = (ext d.bx, match d.by with None -> 1 | Some i -> ext i);
    block = (ext d.tx, match d.ty with None -> 1 | Some i -> ext i);
    thread_loops;
    scalar_replaced = scalar_replace;
    arrays;
    staging = [];
  }

(* Lower every op of a program under per-op points. Kernels are named
   <label>_GPU_<n> as in Figure 2(d). *)
let lower_program ?scalar_replace (ir : Tcr.Ir.t) (points : Tcr.Space.point list) =
  if List.length points <> List.length ir.ops then
    invalid_arg "Kernel.lower_program: one point per op required";
  Obs.Trace.with_span ~cat:"codegen"
    ~attrs:(fun () ->
      [ ("label", ir.label); ("kernels", string_of_int (List.length ir.ops)) ])
    "codegen.lower"
  @@ fun _ ->
  List.mapi
    (fun i (op, point) ->
      lower ?scalar_replace ~name:(Printf.sprintf "%s_GPU_%d" ir.label (i + 1)) ir op point)
    (List.combine ir.ops points)
