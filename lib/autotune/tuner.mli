(** The end-to-end Barracuda pipeline (Figure 1): OCTOPI variants -> merged
    TCR programs -> decision-algorithm search space -> SURF. A candidate
    fixes one OCTOPI variant per statement and one search-space point per
    generated kernel; the SURF pool is the full cross-product space when
    small enough, otherwise a uniform sample of it (Algorithm 2 takes an
    explicit configuration pool as input). *)

type benchmark = {
  label : string;
  statements : Octopi.Contraction.t list;
}

type candidate = {
  variant_ids : int list;  (** chosen OCTOPI variant per statement *)
  ir : Tcr.Ir.t;
  points : Tcr.Space.point list;
  features : Surf.Feature.features;
}

type result = {
  benchmark : benchmark;
  arch : Gpusim.Arch.t;
  best : candidate;
  best_report : Gpusim.Gpu.report;
  time_per_eval_s : float;  (** one evaluation, transfers amortized *)
  gflops : float;
  search_seconds : float;  (** modeled empirical search cost *)
  evaluations : int;
  pool_size : int;
  total_space : int;  (** exact size of the full cross-product space *)
  variant_count : int;
  convergence : float list;
  iterations : Obs.Search_log.iteration list;
      (** SURF per-iteration telemetry (see {!Obs.Search_log}); empty for
          the non-iterative strategies and for cache-restored results *)
  importances : (string * float) list;
      (** named-parameter split-gain importances of the final surrogate
          ({!Surf.Explain.named_importances}), descending; [[]] when no
          surrogate was fit *)
  explain : candidate Surf.Search.explain option;
      (** surrogate post-mortem: residuals and rejected rivals *)
  gate : Check.Verify.gate_stats;
      (** what the static pre-evaluation gate saw (points checked/rejected,
          error codes); {!Check.Verify.empty_stats} when the gate was off
          or the result was restored from an artifact *)
  semantic : Check.Semantic.verdict option;
      (** translation validation of the winner ({!Check.Semantic.validate});
          [None] when the semantic gate was off, the DSL oracle's cost
          exceeded {!Check.Semantic.gate_budget}, or the result was
          restored from an artifact *)
}

val benchmark_of_dsl : label:string -> string -> benchmark

(** One merged IR plus its per-statement spaces per joint variant choice. *)
type variant_choice = {
  ids : int list;
  v_ir : Tcr.Ir.t;
  spaces : Tcr.Space.program_space;
}

val variant_choices : benchmark -> variant_choice list
val total_space : variant_choice list -> int
val candidate_of : variant_choice -> Tcr.Space.point list -> candidate

(** Build the SURF pool, optionally filtered by a pruning policy and a
    legality [gate] (run after the policy, so pruned points are never
    gate-checked). *)
val build_pool :
  ?pool_per_variant:int ->
  ?prune:Tcr.Prune.policy ->
  ?gate:(Tcr.Space.t -> Tcr.Space.point -> bool) ->
  Util.Rng.t ->
  variant_choice list ->
  candidate array

type strategy = Surf_search of Surf.Search.config | Random_search | Exhaustive

(** [batch_map], when given, executes the pure measurement thunks of each
    SURF iteration batch (see {!Evaluator.measure_batch}) - the hook a
    multi-domain scheduler plugs into. Results are bit-identical to the
    sequential default for any order-preserving executor.

    [static_gate] (default [true]) verifies every candidate point with
    {!Check.Verify.space_point} before it can enter the pool, so illegal
    recipes are never lowered or measured. The decision algorithm only
    proposes legal points, so on its own spaces the gate rejects nothing
    and tuning is bit-identical with the gate on or off; points from
    artifacts or hand-written recipes are where it bites. If the gate
    rejects every candidate, tuning falls back to the ungated pool (with a
    warning) rather than failing.

    [semantic_gate] (default [true]) runs translation validation
    ({!Check.Semantic.validate}) on the winner after the search settles,
    with its own fixed seed - no draws from the tuner RNG, so a fixed-seed
    tune is bit-identical with the gate on or off. The verdict lands in
    the result and (as [semantic_ok]) in the journal entry; validation is
    skipped when the DSL oracle's cost exceeds
    {!Check.Semantic.gate_budget}.

    [journal_key], [journal_seed] and [journal_net] annotate the
    {!Obs.Journal} entry (canonical problem key, RNG seed, contraction-order
    provenance for network-originated tunes) when the flight recorder is on;
    they never influence the tune itself. *)
val tune :
  ?strategy:strategy ->
  ?reps:int ->
  ?pool_per_variant:int ->
  ?prune:Tcr.Prune.policy ->
  ?static_gate:bool ->
  ?semantic_gate:bool ->
  ?batch_map:((unit -> Gpusim.Gpu.report) list -> Gpusim.Gpu.report list) ->
  ?journal_key:string ->
  ?journal_seed:int ->
  ?journal_net:Obs.Journal.network ->
  rng:Util.Rng.t ->
  arch:Gpusim.Arch.t ->
  benchmark ->
  result

(** The tuned CUDA translation unit. *)
val emit_cuda : result -> string

(** Execute the tuned program on random inputs and compare against the
    einsum oracle. *)
val validate : ?tol:float -> ?rng:Util.Rng.t -> result -> bool

(** CPU baselines use the variant minimizing CPU time (strength reduction
    benefits the sequential code too). *)
val best_sequential_time : benchmark -> float

val best_openmp_time : ?cores:int -> benchmark -> float

(** Flops of the cheapest variant: what a CPU baseline performs. *)
val min_variant_flops : benchmark -> int
