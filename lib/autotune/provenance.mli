(** Five-stage provenance lineage of a tuned kernel, recorded by the
    tuning journal for every evaluated variant: DSL expression, OCTOPI
    variant choice, merged TCR statement, decomposition recipe, emitted
    CUDA - each stage hash chained onto its parent's via
    {!Obs.Journal.stage}. *)

(** Canonical DSL source regenerated from parsed contractions; reparsing
    it yields the same contractions (extents are kept sorted), which is
    what makes journal replay faithful. *)
val dsl_of_statements : Octopi.Contraction.t list -> string

(** Dotted variant-id choice, e.g. ["3.1"]. *)
val variant_key : int list -> string

(** Pipe-joined per-kernel decomposition point keys. *)
val recipe_key : Tcr.Space.point list -> string

(** Short human-readable identity of one candidate. *)
val label : variant_ids:int list -> points:Tcr.Space.point list -> string

(** The full chain for one candidate; [dsl] comes from
    {!dsl_of_statements} (hash it once per tune). Pure string work: no
    RNG, no measurement. *)
val lineage :
  dsl:string ->
  variant_ids:int list ->
  ir:Tcr.Ir.t ->
  points:Tcr.Space.point list ->
  Obs.Journal.lineage
