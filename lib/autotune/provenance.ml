(* Provenance lineage of a tuned kernel: the five-stage chain the journal
   records for every evaluated variant, each stage's hash chained onto its
   parent's ({!Obs.Journal.stage}), so two runs agreeing on the kernel hash
   agree on the whole derivation - DSL expression, OCTOPI variant choice,
   merged TCR statement, decomposition recipe, and emitted CUDA.

   This module speaks primitives (contractions, variant ids, IR, points)
   rather than [Tuner] types so the tuner can call it without a module
   cycle. *)

(* Regenerate canonical DSL source from parsed contractions. Contraction
   extents are sorted ([Contraction.of_stmt] runs [List.sort_uniq]), so the
   rendering is invariant under reparsing: the replay of a journal entry
   parses this text back into the same contractions that produced it. *)
let dsl_of_statements (statements : Octopi.Contraction.t list) =
  let extents =
    List.sort_uniq compare
      (List.concat_map (fun (c : Octopi.Contraction.t) -> c.extents) statements)
  in
  let stmts =
    List.map
      (fun (c : Octopi.Contraction.t) ->
        {
          Octopi.Ast.lhs = { name = c.output; indices = c.output_indices };
          sum_indices = c.sum_indices;
          factors = c.factors;
          accumulate = false;
        })
      statements
  in
  Octopi.Ast.to_string { Octopi.Ast.extents; stmts }

let variant_key variant_ids = String.concat "." (List.map string_of_int variant_ids)
let recipe_key points = String.concat "|" (List.map Tcr.Space.point_key points)

(* Short human-readable identity of one candidate: variant choice plus the
   per-kernel decomposition points. *)
let label ~variant_ids ~points =
  Printf.sprintf "v%s %s" (variant_key variant_ids) (recipe_key points)

(* The full five-stage chain for one candidate. [dsl] is the canonical
   source from {!dsl_of_statements}, passed in so a tune hashes it once.
   Emitting the CUDA here is pure string work - no RNG, no measurement -
   so journaling never perturbs a fixed-seed search. *)
let lineage ~dsl ~variant_ids ~ir ~points : Obs.Journal.lineage =
  let dsl_hash = Obs.Journal.stage "" dsl in
  let variant_hash = Obs.Journal.stage dsl_hash (variant_key variant_ids) in
  let tcr_hash = Obs.Journal.stage variant_hash (Tcr.Ir.to_string ir) in
  let recipe_hash = Obs.Journal.stage tcr_hash (recipe_key points) in
  let kernel_hash =
    Obs.Journal.stage recipe_hash (Codegen.Cuda.emit_program ir points)
  in
  { dsl_hash; variant_hash; tcr_hash; recipe_hash; kernel_hash }
