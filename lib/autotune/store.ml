(* Persistence of tuning results, addressing the paper's Section VIII goal
   to "facilitate integration of the generated code into applications":
   the winning configuration is saved as a small text artifact - benchmark
   label, target architecture, chosen OCTOPI variants, and the concrete
   CUDA-CHiLL recipe (the Figure 2(c) interchange format) - and can be
   reloaded later to re-emit identical CUDA without re-running the search. *)

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let format_version = "barracuda-tuning v1"

type saved = {
  label : string;
  arch_name : string;
  variant_ids : int list;
  gflops : float;
  recipe : string;
}

let render (s : saved) =
  String.concat "\n"
    [
      format_version;
      "label: " ^ s.label;
      "arch: " ^ s.arch_name;
      "variants: " ^ String.concat "." (List.map string_of_int s.variant_ids);
      Printf.sprintf "gflops: %.6g" s.gflops;
      "recipe:";
      s.recipe;
      "";
    ]

let of_result (r : Tuner.result) =
  {
    label = r.benchmark.label;
    arch_name = r.arch.name;
    variant_ids = r.best.variant_ids;
    gflops = r.gflops;
    recipe = Tcr.Orio.recipe r.best.points;
  }

let save (r : Tuner.result) = render (of_result r)

let save_file path (r : Tuner.result) =
  let oc = open_out path in
  output_string oc (save r);
  close_out oc

(* ------------------------------------------------------------------ *)

let header_value line key =
  let prefix = key ^ ": " in
  let n = String.length prefix in
  if String.length line >= n && String.sub line 0 n = prefix then
    Some (String.sub line n (String.length line - n))
  else None

let parse text =
  match String.split_on_char '\n' text with
  | version :: rest when String.trim version = format_version ->
    let label = ref None and arch = ref None and variants = ref None and gf = ref None in
    let rec headers = function
      | [] -> err "missing recipe section"
      | line :: rest -> (
        let line = String.trim line in
        if line = "recipe:" then String.concat "\n" rest
        else
          match
            ( header_value line "label",
              header_value line "arch",
              header_value line "variants",
              header_value line "gflops" )
          with
          | Some v, _, _, _ ->
            label := Some v;
            headers rest
          | _, Some v, _, _ ->
            arch := Some v;
            headers rest
          | _, _, Some v, _ ->
            variants :=
              Some
                (String.split_on_char '.' v
                |> List.map (fun x ->
                       match int_of_string_opt (String.trim x) with
                       | Some i -> i
                       | None -> err "bad variant id %S" x));
            headers rest
          | _, _, _, Some v -> (
            match float_of_string_opt v with
            | Some f ->
              gf := Some f;
              headers rest
            | None -> err "bad gflops %S" v)
          | None, None, None, None -> err "unexpected header line %S" line)
    in
    let recipe = headers rest in
    let req name = function Some v -> v | None -> err "missing %s header" name in
    {
      label = req "label" !label;
      arch_name = req "arch" !arch;
      variant_ids = req "variants" !variants;
      gflops = (match !gf with Some f -> f | None -> nan);
      recipe = String.trim recipe;
    }
  | _ -> err "not a %s artifact" format_version

(* Reconstruct the tuned program from a benchmark definition and a saved
   artifact: pick the recorded variant choice and parse the recipe back
   into search points. *)
let choice_and_points (b : Tuner.benchmark) (s : saved) =
  if s.label <> b.label then
    err "artifact is for %S, benchmark is %S" s.label b.label;
  let choices = Tuner.variant_choices b in
  let choice =
    match
      List.find_opt (fun (c : Tuner.variant_choice) -> c.ids = s.variant_ids) choices
    with
    | Some c -> c
    | None ->
      err "variant %s not found among %d choices"
        (String.concat "." (List.map string_of_int s.variant_ids))
        (List.length choices)
  in
  let points = Tcr.Orio.parse_recipe choice.spaces s.recipe in
  (choices, choice, points)

let restore (b : Tuner.benchmark) (s : saved) =
  let _, choice, points = choice_and_points b s in
  (choice.v_ir, points)

(* Rebuild a full {!Tuner.result} from an artifact: the search fields are
   empty (no search ran), but the winning candidate is re-measured so
   summaries and code emission work exactly as after a live tune. This is
   the cache-hit fast path of the tuning service - one measurement instead
   of a whole search. *)
let restore_result ?(reps = 100) ~arch (b : Tuner.benchmark) (s : saved) =
  let choices, choice, points = choice_and_points b s in
  let best = Tuner.candidate_of choice points in
  let best_report = Gpusim.Gpu.measure arch best.ir best.points in
  {
    Tuner.benchmark = b;
    arch;
    best;
    best_report;
    time_per_eval_s = Gpusim.Gpu.amortized_time best_report ~reps;
    gflops = Gpusim.Gpu.gflops best_report ~reps;
    search_seconds = 0.0;
    evaluations = 0;
    pool_size = 0;
    total_space = Tuner.total_space choices;
    variant_count = List.length choices;
    convergence = [];
    iterations = [];
    importances = [];
    explain = None;
    gate = Check.Verify.empty_stats;
    semantic = None;
  }

let load_file (b : Tuner.benchmark) path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  restore b (parse text)
