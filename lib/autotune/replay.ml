(* Replay-drift gate: re-run a journaled tune from its recorded inputs and
   compare what comes out.

   The whole pipeline is deterministic given the seed - parsing, variant
   enumeration, pool construction, SURF, and the simulated measurements -
   so a faithful replay reproduces the winning kernel hash exactly and a
   time ratio of 1. Drift means something in the toolchain changed the
   outcome for the same inputs: a codegen change (kernel hash differs with
   equal recipe hash), a search change (lineage diverges earlier), or a
   performance-model change (same kernel, different measured time). *)

type verdict = {
  recorded : Obs.Journal.entry;
  replayed : Obs.Journal.entry;
  kernel_match : bool;  (* winning variant's full lineage hash matches *)
  time_ratio : float;  (* replayed winner time / recorded winner time *)
  time_ok : bool;  (* ratio within the tolerance band *)
}

let ok v = v.kernel_match && v.time_ok

let ratio ~recorded ~replayed =
  if recorded = replayed then 1.0
  else if recorded = 0.0 then infinity
  else replayed /. recorded

(* Re-tune from the journal entry's own inputs: DSL source, seed, budget,
   pool size, reps. [prune], which the journal does not record, must be
   re-supplied when the original tune used it. The replay runs under
   {!Obs.Journal.collect}, so the caller's sink state is untouched. *)
let replay ?prune ?(time_tolerance = 0.05) ~arch (recorded : Obs.Journal.entry) =
  if recorded.seed < 0 then
    Error "entry was journaled without a seed and cannot be replayed"
  else if Gpusim.Arch.fingerprint arch <> recorded.arch then
    Error
      (Printf.sprintf
         "device identity drift: entry was tuned on %s, replaying on %s"
         recorded.arch
         (Gpusim.Arch.fingerprint arch))
  else begin
    let b = Tuner.benchmark_of_dsl ~label:recorded.label recorded.dsl in
    let cfg =
      {
        Surf.Search.default_config with
        max_evals = recorded.max_evals;
        batch_size = recorded.batch_size;
      }
    in
    let _, entries =
      Obs.Journal.collect (fun () ->
          Tuner.tune ~strategy:(Tuner.Surf_search cfg) ~reps:recorded.reps
            ~pool_per_variant:recorded.pool_per_variant ?prune
            ~journal_key:recorded.key ~journal_seed:recorded.seed
            ~rng:(Util.Rng.create recorded.seed) ~arch b)
    in
    match entries with
    | [ replayed ] ->
      let time_ratio =
        ratio ~recorded:recorded.winner.measured ~replayed:replayed.winner.measured
      in
      Ok
        {
          recorded;
          replayed;
          kernel_match =
            replayed.winner.lineage.kernel_hash
            = recorded.winner.lineage.kernel_hash;
          time_ratio;
          time_ok = abs_float (time_ratio -. 1.0) <= time_tolerance;
        }
    | es ->
      Error
        (Printf.sprintf "replay journaled %d entries instead of one"
           (List.length es))
  end

(* Where the lineages first diverge, for the drift report. The logic lives
   in Obs.Journal (next to the lineage type) so Obs.Doctor can share it. *)
let first_divergence = Obs.Journal.first_divergence

let render v =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "replay of %s (%s, seed %d)\n"
       (Obs.Journal.short v.recorded.run_id)
       v.recorded.label v.recorded.seed);
  (if v.kernel_match then
     Buffer.add_string b
       (Printf.sprintf "  winner kernel: match (%s)\n"
          (Obs.Journal.short v.recorded.winner.lineage.kernel_hash))
   else begin
     Buffer.add_string b "  winner kernel: DRIFT\n";
     Buffer.add_string b
       (Printf.sprintf "    recorded %s (%s)\n"
          (Obs.Journal.short v.recorded.winner.lineage.kernel_hash)
          v.recorded.winner.label);
     Buffer.add_string b
       (Printf.sprintf "    replayed %s (%s)\n"
          (Obs.Journal.short v.replayed.winner.lineage.kernel_hash)
          v.replayed.winner.label);
     match first_divergence v.recorded.winner.lineage v.replayed.winner.lineage with
     | Some stage ->
       Buffer.add_string b
         (Printf.sprintf "    lineage diverges at the %s stage\n" stage)
     | None -> ()
   end);
  Buffer.add_string b
    (Printf.sprintf "  winner time: recorded %.4e s, replayed %.4e s (ratio %.3f)%s\n"
       v.recorded.winner.measured v.replayed.winner.measured v.time_ratio
       (if v.time_ok then "" else "  DRIFT"));
  Buffer.add_string b
    (Printf.sprintf "  verdict: %s\n" (if ok v then "ok" else "DRIFT"));
  Buffer.contents b
