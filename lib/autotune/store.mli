(** Persistence of tuning results (the paper's Section VIII integration
    goal): the winning configuration is saved as a small text artifact -
    label, architecture, chosen variants and the concrete Figure 2(c)
    recipe - and reloaded later to re-emit identical CUDA without
    re-running the search. *)

exception Error of string

val format_version : string

type saved = {
  label : string;
  arch_name : string;
  variant_ids : int list;
  gflops : float;
  recipe : string;
}

val of_result : Tuner.result -> saved
val render : saved -> string

(** [render (of_result r)]. *)
val save : Tuner.result -> string

val save_file : string -> Tuner.result -> unit

(** Raises {!Error} on malformed artifacts. *)
val parse : string -> saved

(** Reconstruct the tuned program (merged IR + per-kernel points) from a
    benchmark definition. Raises {!Error} on label or variant mismatch. *)
val restore : Tuner.benchmark -> saved -> Tcr.Ir.t * Tcr.Space.point list

(** Rebuild a full {!Tuner.result} from an artifact, re-measuring only the
    winning candidate (search fields are zeroed: nothing was searched).
    The cache-hit fast path of the tuning service. *)
val restore_result :
  ?reps:int -> arch:Gpusim.Arch.t -> Tuner.benchmark -> saved -> Tuner.result

val load_file : Tuner.benchmark -> string -> Tcr.Ir.t * Tcr.Space.point list
