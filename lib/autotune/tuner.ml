(* The end-to-end Barracuda pipeline (Figure 1): OCTOPI variants -> merged
   TCR programs -> decision-algorithm search space -> SURF.

   A [candidate] fixes one OCTOPI variant per statement and one search-space
   point per generated kernel; the SURF pool is the full cross-product space
   when small enough, otherwise a uniform sample of it (Algorithm 2 takes
   an explicit configuration pool as input). *)

let log_src = Logs.Src.create "barracuda.tuner" ~doc:"Autotuning pipeline"

module Log = (val Logs.src_log log_src)

type benchmark = {
  label : string;
  statements : Octopi.Contraction.t list;
}

type candidate = {
  variant_ids : int list;  (* chosen OCTOPI variant per statement *)
  ir : Tcr.Ir.t;
  points : Tcr.Space.point list;
  features : Surf.Feature.features;
}

type result = {
  benchmark : benchmark;
  arch : Gpusim.Arch.t;
  best : candidate;
  best_report : Gpusim.Gpu.report;
  time_per_eval_s : float;   (* amortized single evaluation, with transfer *)
  gflops : float;
  search_seconds : float;    (* modeled empirical search cost *)
  evaluations : int;
  pool_size : int;
  total_space : int;         (* exact size of the full cross-product space *)
  variant_count : int;
  convergence : float list;
  iterations : Obs.Search_log.iteration list;  (* SURF per-batch telemetry *)
  importances : (string * float) list;
  (* named-parameter split-gain importances of the final surrogate,
     descending; [] when no surrogate was fit *)
  explain : candidate Surf.Search.explain option;  (* surrogate post-mortem *)
  gate : Check.Verify.gate_stats;
  (* what the static pre-evaluation gate saw; empty when it was off *)
  semantic : Check.Semantic.verdict option;
  (* translation validation of the winner; None when the semantic gate was
     off or the DSL oracle's cost exceeded Check.Semantic.gate_budget *)
}

let benchmark_of_dsl ~label src =
  let program = Octopi.Parse.program src in
  { label; statements = Octopi.Contraction.of_program program }

(* One merged IR + its per-op spaces for a joint variant choice. *)
type variant_choice = {
  ids : int list;
  v_ir : Tcr.Ir.t;
  spaces : Tcr.Space.program_space;
}

let variant_choices (b : benchmark) =
  let per_stmt =
    List.map (fun c -> (c, (Octopi.Variants.of_contraction c).variants)) b.statements
  in
  let rec cross = function
    | [] -> [ [] ]
    | (c, vs) :: rest ->
      let tails = cross rest in
      List.concat_map (fun v -> List.map (fun tl -> (c, v) :: tl) tails) vs
  in
  List.map
    (fun choice ->
      let ids = List.map (fun (_, (v : Octopi.Variants.variant)) -> v.id) choice in
      let v_ir = Combine.merge ~label:b.label choice in
      { ids; v_ir; spaces = Tcr.Space.of_ir v_ir })
    (cross per_stmt)

(* Saturating sum: network-lowered programs reach program_counts of
   max_int, and a wrapped total would report a nonsense space size. *)
let total_space choices =
  List.fold_left
    (fun acc c ->
      let n = Tcr.Space.program_count c.spaces in
      if acc > max_int - n then max_int else acc + n)
    0 choices

let features_of (c : variant_choice) points =
  ("variant", Surf.Feature.Cat (String.concat "." (List.map string_of_int c.ids)))
  :: List.concat
       (List.mapi
          (fun i (space, point) ->
            List.map
              (fun (name, v) ->
                let v' =
                  match v with
                  | Tcr.Space.Cat s -> Surf.Feature.Cat s
                  | Tcr.Space.Num x -> Surf.Feature.Num x
                in
                (Printf.sprintf "op%d_%s" (i + 1) name, v'))
              (Tcr.Space.features space point))
          (List.combine c.spaces.op_spaces points))

let candidate_of (c : variant_choice) points =
  { variant_ids = c.ids; ir = c.v_ir; points; features = features_of c points }

(* Build the SURF pool: enumerate a variant's space when it is small,
   otherwise sample without replacement via rejection on the point key.
   An optional pruning [policy] (see {!Tcr.Prune}) filters points first;
   an optional [gate] (the static verifier) runs after it - pruned points
   are never gate-checked, so the gate's counters report only points that
   would otherwise have been measured. *)
let build_pool ?(pool_per_variant = 600) ?prune ?gate rng choices =
  let point_ok space p =
    (match prune with None -> true | Some policy -> Tcr.Prune.point_ok policy space p)
    && match gate with None -> true | Some g -> g space p
  in
  let pool = ref [] in
  List.iter
    (fun c ->
      let count = Tcr.Space.program_count c.spaces in
      if count <= pool_per_variant then begin
        let per_op =
          List.map
            (fun space -> List.filter (point_ok space) (Tcr.Space.enumerate space))
            c.spaces.op_spaces
        in
        let rec cross = function
          | [] -> [ [] ]
          | pts :: rest ->
            let tails = cross rest in
            List.concat_map (fun p -> List.map (fun tl -> p :: tl) tails) pts
        in
        List.iter (fun points -> pool := candidate_of c points :: !pool) (cross per_op)
      end
      else begin
        let seen = Hashtbl.create pool_per_variant in
        let attempts = ref 0 in
        while Hashtbl.length seen < pool_per_variant && !attempts < pool_per_variant * 40 do
          incr attempts;
          let points = List.map (Tcr.Space.sample rng) c.spaces.op_spaces in
          if List.for_all2 point_ok c.spaces.op_spaces points then begin
            let k = String.concat "|" (List.map Tcr.Space.point_key points) in
            if not (Hashtbl.mem seen k) then begin
              Hashtbl.add seen k ();
              pool := candidate_of c points :: !pool
            end
          end
        done
      end)
    choices;
  Array.of_list !pool

type strategy = Surf_search of Surf.Search.config | Random_search | Exhaustive

(* [journal_key], [journal_seed] and [journal_net] only annotate the
   flight-recorder entry (canonical problem key, RNG seed, contraction-order
   provenance); they never influence the tune. *)
let tune ?(strategy = Surf_search Surf.Search.default_config) ?(reps = 100)
    ?(pool_per_variant = 600) ?prune ?(static_gate = true) ?(semantic_gate = true)
    ?batch_map ?(journal_key = "") ?(journal_seed = -1) ?journal_net ~rng ~arch
    (b : benchmark) =
  Obs.Trace.with_span ~cat:"autotune"
    ~attrs:(fun () -> [ ("label", b.label); ("arch", arch.Gpusim.Arch.name) ])
    "tune"
  @@ fun tune_span ->
  let choices =
    Obs.Trace.with_span ~cat:"autotune" "tune.variants" (fun _ -> variant_choices b)
  in
  (* The static pre-evaluation gate: every candidate point is verified
     (errors only - no lint computation) before it can enter the pool, so
     an illegal recipe is never lowered into a measurement. The closure
     counts what it saw; the counts land in the result and the journal. *)
  let gate_checked = ref 0 and gate_rejected = ref 0 in
  let gate_codes : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let gate =
    if not static_gate then None
    else
      Some
        (fun space p ->
          incr gate_checked;
          let diags = Check.Verify.space_point ~lints:false ~arch space p in
          let bad = Check.Diag.has_errors diags in
          if bad then begin
            incr gate_rejected;
            List.iter
              (fun (code, n) ->
                Hashtbl.replace gate_codes code
                  (n + Option.value ~default:0 (Hashtbl.find_opt gate_codes code)))
              (Check.Diag.by_code (Check.Diag.errors diags))
          end;
          not bad)
  in
  let pool =
    Obs.Trace.with_span ~cat:"autotune"
      ~attrs:(fun () -> [ ("per_variant", string_of_int pool_per_variant) ])
      "tune.pool"
      (fun span ->
        let pool = build_pool ~pool_per_variant ?prune ?gate rng choices in
        (* a policy can empty the pool of a tiny computation (e.g. a 10x10
           contraction cannot reach 32 threads per block): fall back to the
           full space rather than failing *)
        let pool =
          if Array.length pool = 0 && prune <> None then
            build_pool ~pool_per_variant ?gate rng choices
          else pool
        in
        (* the decision algorithm only proposes legal points, so an empty
           gated pool means every candidate is broken - surface whatever the
           full space yields rather than dying with nothing to search *)
        let pool =
          if Array.length pool = 0 && gate <> None then begin
            Log.warn (fun m ->
                m "%s: static gate rejected all %d candidate points; tuning ungated"
                  b.label !gate_checked);
            build_pool ~pool_per_variant rng choices
          end
          else pool
        in
        Obs.Trace.add_attrs span [ ("pool", string_of_int (Array.length pool)) ];
        pool)
  in
  let gate_stats () =
    {
      Check.Verify.checked = !gate_checked;
      rejected = !gate_rejected;
      by_code =
        Hashtbl.fold (fun c n acc -> (c, n) :: acc) gate_codes [] |> List.sort compare;
    }
  in
  Log.info (fun m ->
      m "%s on %s: %d variants, %d-candidate pool (full space %d)" b.label arch.Gpusim.Arch.name
        (List.length choices) (Array.length pool) (total_space choices));
  let evaluator = Evaluator.create ~reps arch in
  let eval (c : candidate) = Evaluator.objective evaluator c.ir c.points in
  let search_result =
    Obs.Trace.with_span ~cat:"autotune" "tune.search" @@ fun _ ->
    match strategy with
    | Exhaustive -> Surf.Search.exhaustive ~pool ~eval
    | Random_search ->
      Surf.Search.random_search rng ~pool ~eval
        ~max_evals:Surf.Search.default_config.max_evals
    | Surf_search cfg ->
      let schema =
        Surf.Feature.make_schema (Array.to_list (Array.map (fun c -> c.features) pool))
      in
      let encode c = Surf.Feature.encode schema c.features in
      let eval_batch =
        Option.map
          (fun map cs ->
            Evaluator.objective_batch evaluator ~map
              (List.map (fun (c : candidate) -> (c.ir, c.points)) cs))
          batch_map
      in
      Surf.Search.surf ~config:cfg ?eval_batch rng ~pool ~encode ~eval
  in
  let best = search_result.best.config in
  let best_report =
    Obs.Trace.with_span ~cat:"autotune" "tune.measure_best" (fun _ ->
        Evaluator.measure evaluator best.ir best.points)
  in
  Obs.Trace.add_attrs tune_span
    [
      ("evaluations", string_of_int search_result.evaluations);
      ("best_objective", Printf.sprintf "%.6g" search_result.best.objective);
    ];
  Log.info (fun m ->
      m "%s on %s: best %.3g s after %d evaluations (variant %s)" b.label arch.Gpusim.Arch.name
        best_report.Gpusim.Gpu.kernel_time_s search_result.evaluations
        (String.concat "." (List.map string_of_int best.variant_ids)));
  (* Translation validation of the winner, after the search settled: runs
     with its own fixed seed and draws nothing from the tuner RNG, so a
     fixed-seed tune is bit-identical with the semantic gate on or off.
     Skipped (None) above the DSL oracle's cost budget - the naive einsum
     is the spec, so its cost is irreducible. *)
  let semantic =
    if not semantic_gate then None
    else if Check.Semantic.cost b.statements > Check.Semantic.gate_budget then begin
      Log.debug (fun m ->
          m "%s: semantic gate skipped (dsl oracle cost %d exceeds budget %d)"
            b.label (Check.Semantic.cost b.statements) Check.Semantic.gate_budget);
      None
    end
    else
      Obs.Trace.with_span ~cat:"autotune" "tune.semantic" (fun span ->
          let v =
            Check.Semantic.validate ~label:b.label b.statements
              ~variant_ids:best.variant_ids ~ir:best.ir ~points:best.points
          in
          Obs.Trace.add_attrs span
            [ ("equivalent", string_of_bool v.Check.Semantic.equivalent) ];
          if not v.Check.Semantic.equivalent then
            Log.err (fun m ->
                m "%s: winner FAILED translation validation at the %s stage:\n%s"
                  b.label
                  (Option.value ~default:"?" v.Check.Semantic.failed_stage)
                  (Check.Diag.render_report v.Check.Semantic.diags));
          Some v)
  in
  let time_per_eval_s = Gpusim.Gpu.amortized_time best_report ~reps in
  let importances =
    match search_result.explain with
    | None -> []
    | Some ex ->
      let schema =
        Surf.Feature.make_schema (Array.to_list (Array.map (fun c -> c.features) pool))
      in
      Surf.Explain.named_importances schema ex.importance
  in
  (* Flight recorder: one journal entry per tune, with the full five-stage
     lineage of every evaluated variant. Guarded by the sink flag, and pure
     string/hash work when on, so a fixed-seed tune is bit-identical with
     journaling on or off. *)
  if Obs.Journal.enabled () then begin
    let dsl = Provenance.dsl_of_statements b.statements in
    let lineage_of (c : candidate) =
      Provenance.lineage ~dsl ~variant_ids:c.variant_ids ~ir:c.ir ~points:c.points
    in
    let label_of (c : candidate) =
      Provenance.label ~variant_ids:c.variant_ids ~points:c.points
    in
    (* surrogate predictions per evaluated candidate; pool elements are
       shared, so physical equality identifies them *)
    let predicted_of c =
      Option.bind search_result.explain (fun ex ->
          List.find_map
            (fun (c', p, _) -> if c' == c then Some p else None)
            ex.residuals)
    in
    let variant_of (e : candidate Surf.Search.evaluation) =
      {
        Obs.Journal.label = label_of e.config;
        lineage = lineage_of e.config;
        predicted = predicted_of e.config;
        measured = e.objective;
      }
    in
    let max_evals, batch_size =
      match strategy with
      | Surf_search cfg -> (cfg.max_evals, cfg.batch_size)
      | Random_search -> (Surf.Search.default_config.max_evals, 1)
      | Exhaustive -> (search_result.pool_size, search_result.pool_size)
    in
    let entry =
      {
        Obs.Journal.run_id = "";
        timestamp = 0.0;
        key = journal_key;
        label = b.label;
        arch = Gpusim.Arch.fingerprint arch;
        seed = journal_seed;
        dsl;
        max_evals;
        batch_size;
        pool_per_variant;
        reps;
        pool_size = search_result.pool_size;
        evaluations = search_result.evaluations;
        gate_checked = !gate_checked;
        gate_rejected = !gate_rejected;
        gate_diags = (gate_stats ()).by_code;
        network = journal_net;
        semantic_ok =
          Option.map (fun (v : Check.Semantic.verdict) -> v.equivalent) semantic;
        iterations = search_result.iterations;
        variants = List.map variant_of search_result.history;
        winner = variant_of search_result.best;
        importances;
        residual_r2 =
          Option.bind search_result.explain (fun ex ->
              Surf.Explain.residual_r2 ex.residuals);
        rivals =
          (match search_result.explain with
          | None -> []
          | Some ex ->
            List.map
              (fun (c, p, s) ->
                {
                  Obs.Journal.rival_label = label_of c;
                  rival_lineage = lineage_of c;
                  rival_predicted = p;
                  rival_std = s;
                })
              ex.rivals);
      }
    in
    ignore (Obs.Journal.record entry)
  end;
  {
    benchmark = b;
    arch;
    best;
    best_report;
    time_per_eval_s;
    gflops = Gpusim.Gpu.gflops best_report ~reps;
    search_seconds = evaluator.search_seconds;
    evaluations = search_result.evaluations;
    pool_size = search_result.pool_size;
    total_space = total_space choices;
    variant_count = List.length choices;
    convergence = Surf.Search.convergence_curve search_result;
    iterations = search_result.iterations;
    importances;
    explain = search_result.explain;
    gate = gate_stats ();
    semantic;
  }

(* Emit the tuned CUDA for a result. *)
let emit_cuda result = Codegen.Cuda.emit_program result.best.ir result.best.points

(* Validate that the tuned program computes the reference result. *)
let validate ?(tol = 1e-9) ?(rng = Util.Rng.create 11) result =
  let ir = result.best.ir in
  let inputs =
    List.filter_map
      (fun (v : Tcr.Ir.var) ->
        if v.role = Tcr.Ir.Input then
          Some (v.name, Tensor.Dense.random rng (Tcr.Ir.var_shape ir v.name))
        else None)
      ir.vars
  in
  let got = Codegen.Exec.run_program ir result.best.points inputs in
  let want = Codegen.Exec.run_reference ir inputs in
  List.for_all
    (fun (v : Tcr.Ir.var) ->
      v.role <> Tcr.Ir.Output
      || Tensor.Dense.approx_equal ~tol (List.assoc v.name want) (List.assoc v.name got))
    ir.vars

(* ------------------------------------------------------------------ *)
(* CPU baselines: the sequential (and OpenMP) Haswell implementations also
   benefit from strength reduction, so they use the variant that minimizes
   CPU time. *)

let best_sequential_time (b : benchmark) =
  let choices = variant_choices b in
  List.fold_left
    (fun acc c -> min acc (Cpusim.Haswell.sequential_time c.v_ir))
    infinity choices

let best_openmp_time ?cores (b : benchmark) =
  let choices = variant_choices b in
  List.fold_left
    (fun acc c -> min acc (Cpusim.Haswell.openmp_time ?cores c.v_ir))
    infinity choices

(* Flops of the cheapest variant: the flop count a CPU baseline performs. *)
let min_variant_flops (b : benchmark) =
  let choices = variant_choices b in
  List.fold_left (fun acc c -> min acc (Tcr.Ir.flops c.v_ir)) max_int choices
