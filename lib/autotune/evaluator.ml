(* Empirical evaluation of one code variant on the simulated device, with
   memoization, plus the model of what one evaluation *costs* the search
   (Section V quotes ~4 s per variant: nvcc compilation dominates, then 100
   timed repetitions on the board). *)

type t = {
  arch : Gpusim.Arch.t;
  reps : int;                  (* timed repetitions per evaluation *)
  cache : (string, Gpusim.Gpu.report) Hashtbl.t;
  mutable evaluations : int;   (* cache misses = real evaluations *)
  mutable search_seconds : float;  (* modeled empirical search cost *)
}

let compile_seconds_per_kernel = 0.9
let harness_seconds = 0.3

(* Orio-style per-variant timeout: a configuration that runs longer than
   this is abandoned, so a slow variant costs at most [eval_timeout_s] of
   search time. *)
let eval_timeout_s = 20.0

let create ?(reps = 100) arch =
  { arch; reps; cache = Hashtbl.create 256; evaluations = 0; search_seconds = 0.0 }

let key (ir : Tcr.Ir.t) points =
  ir.label ^ "|" ^ String.concat "|" (List.map Tcr.Space.point_key points)

(* Merge a freshly computed report into the memo table and charge the
   modeled search cost of one real evaluation. *)
let record t (ir : Tcr.Ir.t) points report =
  let k = key ir points in
  if not (Hashtbl.mem t.cache k) then begin
    Hashtbl.add t.cache k report;
    t.evaluations <- t.evaluations + 1;
    t.search_seconds <-
      t.search_seconds
      +. (compile_seconds_per_kernel *. float_of_int (List.length ir.ops))
      +. harness_seconds
      +. min eval_timeout_s (Gpusim.Gpu.time_with_reps report ~reps:t.reps)
  end

(* Feed every kernel report of one evaluation to the roofline profiler.
   Obs.Profile cannot name Gpusim's types (codegen sits between the two
   libraries), so this is the adapter that flattens a kernel_report into a
   profile sample. Pure accumulation: no RNG draws, no influence on the
   measurement, so tuning results are bit-identical with profiling on or
   off. *)
let profile_report (arch : Gpusim.Arch.t) (ir : Tcr.Ir.t) (report : Gpusim.Gpu.report) =
  List.iter
    (fun (kr : Gpusim.Perf.kernel_report) ->
      Obs.Profile.record
        {
          Obs.Profile.arch = arch.name;
          variant = ir.label;
          kernel = kr.kernel_name;
          bound = kr.bound;
          t_dp = kr.t_dp;
          t_issue = kr.t_issue;
          t_mem = kr.t_mem;
          t_launch = kr.t_launch;
          model_s = Gpusim.Perf.model_time kr;
          measured_s = kr.time_s;
          dram_bytes = kr.dram_bytes;
          l2_bytes = kr.l2_bytes;
          occupancy = kr.occupancy.occupancy;
        })
    report.Gpusim.Gpu.kernels

(* One real (uncached) measurement, wrapped in a span so traces show every
   empirical evaluation - wherever it ran, including worker domains. *)
let traced_measure arch (ir : Tcr.Ir.t) points =
  Obs.Trace.with_span ~cat:"autotune"
    ~attrs:(fun () -> [ ("label", ir.label) ])
    "eval.measure"
  @@ fun span ->
  let report = Gpusim.Gpu.measure arch ir points in
  Obs.Trace.add_attrs span
    [ ("kernel_time_s", Printf.sprintf "%.6g" report.Gpusim.Gpu.kernel_time_s) ];
  if Obs.Profile.enabled () then profile_report arch ir report;
  report

let measure t (ir : Tcr.Ir.t) points =
  match Hashtbl.find_opt t.cache (key ir points) with
  | Some report -> report
  | None ->
    let report = traced_measure t.arch ir points in
    record t ir points report;
    report

(* Batch measurement with a pluggable executor. Cached entries are served
   from the memo table; the rest become pure thunks (Gpusim.Gpu.measure
   touches no shared state) handed to [map] - e.g. a multi-domain
   scheduler - and merged back in input order, so accounting and results
   are bit-identical to the sequential path. *)
let measure_batch t ~map items =
  let slots =
    List.map
      (fun (ir, points) -> (ir, points, Hashtbl.find_opt t.cache (key ir points)))
      items
  in
  let thunks =
    List.filter_map
      (function
        | ir, points, None -> Some (fun () -> traced_measure t.arch ir points)
        | _ -> None)
      slots
  in
  let computed = ref (map thunks) in
  List.map
    (fun (ir, points, cached) ->
      match cached with
      | Some report -> report
      | None ->
        let report =
          match !computed with
          | r :: rest ->
            computed := rest;
            r
          | [] -> invalid_arg "Evaluator.measure_batch: executor dropped results"
        in
        record t ir points report;
        report)
    slots

(* The search objective: simulated kernel time of one evaluation (transfers
   are variant-independent, so they do not influence the choice). *)
let objective t ir points = (measure t ir points).Gpusim.Gpu.kernel_time_s

let objective_batch t ~map items =
  List.map (fun (r : Gpusim.Gpu.report) -> r.kernel_time_s) (measure_batch t ~map items)
