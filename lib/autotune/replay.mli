(** Replay-drift gate: re-run a journaled tune from its recorded inputs
    (DSL source, seed, budget, pool size, reps) and compare the winning
    variant's lineage hash and measured time. The pipeline is
    deterministic given the seed, so a faithful replay matches the kernel
    hash exactly with a time ratio of 1; anything else is toolchain
    drift. *)

type verdict = {
  recorded : Obs.Journal.entry;
  replayed : Obs.Journal.entry;
  kernel_match : bool;  (** winning variant's kernel lineage hash matches *)
  time_ratio : float;  (** replayed winner time / recorded winner time *)
  time_ok : bool;  (** ratio within the tolerance band *)
}

val ok : verdict -> bool

(** Re-tune and compare. [time_tolerance] (default 0.05) bounds
    [|ratio - 1|]. [prune] is not journaled and must be re-supplied when
    the original tune used it. [Error] on a seedless entry, a device
    identity (fingerprint) mismatch, or an unexpected journal shape; the
    caller's journal sink state is untouched either way. *)
val replay :
  ?prune:Tcr.Prune.policy ->
  ?time_tolerance:float ->
  arch:Gpusim.Arch.t ->
  Obs.Journal.entry ->
  (verdict, string) result

(** The first lineage stage where two chains diverge, if any. *)
val first_divergence :
  Obs.Journal.lineage -> Obs.Journal.lineage -> string option

val render : verdict -> string
