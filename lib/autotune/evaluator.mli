(** Empirical evaluation of one code variant on the simulated device, with
    memoization, plus a model of what one evaluation costs the search
    (Section V quotes ~4 s per variant: compilation, then timed repetitions
    on the board, bounded by an Orio-style per-variant timeout). *)

type t = {
  arch : Gpusim.Arch.t;
  reps : int;  (** timed repetitions per evaluation *)
  cache : (string, Gpusim.Gpu.report) Hashtbl.t;
  mutable evaluations : int;  (** cache misses = real evaluations *)
  mutable search_seconds : float;  (** modeled empirical search cost *)
}

val compile_seconds_per_kernel : float
val harness_seconds : float

(** Configurations running longer than this are abandoned. *)
val eval_timeout_s : float

val create : ?reps:int -> Gpusim.Arch.t -> t

(** Memoization key of a (program, points) pair. *)
val key : Tcr.Ir.t -> Tcr.Space.point list -> string

val measure : t -> Tcr.Ir.t -> Tcr.Space.point list -> Gpusim.Gpu.report

(** Flatten one evaluation's kernel reports into {!Obs.Profile} samples
    (the adapter between the simulator's types and the profiler's flat
    records). Called automatically on every uncached measurement when
    profiling is enabled; exposed for recording externally computed
    reports. No RNG draws, no effect on results. *)
val profile_report : Gpusim.Arch.t -> Tcr.Ir.t -> Gpusim.Gpu.report -> unit

(** Merge an externally computed report, charging the modeled search cost
    unless the pair is already memoized. *)
val record : t -> Tcr.Ir.t -> Tcr.Space.point list -> Gpusim.Gpu.report -> unit

(** Measure a batch through a pluggable executor: memoized pairs are
    served from the cache, the rest become pure thunks (safe to run in
    parallel domains) passed to [map], whose results must come back in
    input order. Results and cost accounting are bit-identical to calling
    {!measure} sequentially on each item. *)
val measure_batch :
  t ->
  map:((unit -> Gpusim.Gpu.report) list -> Gpusim.Gpu.report list) ->
  (Tcr.Ir.t * Tcr.Space.point list) list ->
  Gpusim.Gpu.report list

(** The search objective: simulated kernel time of one evaluation
    (transfers are variant-independent and excluded). *)
val objective : t -> Tcr.Ir.t -> Tcr.Space.point list -> float

(** {!measure_batch} mapped to objectives. *)
val objective_batch :
  t ->
  map:((unit -> Gpusim.Gpu.report) list -> Gpusim.Gpu.report list) ->
  (Tcr.Ir.t * Tcr.Space.point list) list ->
  float list
