(** Hierarchical tracing with a global, disabled-by-default sink.

    Instrumented code calls {!with_span}; when tracing is off this is one
    atomic load plus a closure call, so instrumentation can stay on
    permanently in hot paths. When tracing is on, completed spans carry a
    begin/end timestamp pair, a parent span id (linkage is a per-domain
    stack), the recording domain's id and arbitrary key=value attributes.

    Domain safety: each domain appends to its own buffer (domain-local
    storage, registered once under a mutex); {!events} merges the buffers,
    so traces taken across {!Service.Scheduler} workers stay coherent. *)

(** A completed span. *)
type event = {
  id : int;  (** unique, process-wide *)
  parent : int option;  (** enclosing span on the same domain *)
  name : string;
  cat : string;  (** pipeline stage: "octopi", "tcr", "surf", ... *)
  domain : int;  (** recording domain's id *)
  t0 : float;  (** begin, seconds since the Unix epoch *)
  t1 : float;  (** end *)
  attrs : (string * string) list;
}

(** Handle to a live span, for attaching attributes computed mid-span. *)
type span

(** The no-op span handle passed to instrumented code when tracing is off;
    {!add_attrs} on it does nothing. *)
val null_span : span

val enabled : unit -> bool

(** Per-domain buffer capacity (default 65536 spans). A domain at
    capacity counts further spans as dropped instead of recording them,
    so a runaway traced loop cannot grow the sink without bound. *)
val capacity : unit -> int

(** Raises [Invalid_argument] below 1. Takes effect immediately on all
    domains; buffers already over the new cap keep their events but
    record nothing further. *)
val set_capacity : int -> unit

(** Spans dropped at capacity since the last {!start}/{!clear}. Surfaced
    by the exporters ({!Export.chrome_trace} [otherData], Prometheus
    [dropped_spans] counter) and [Engine.stats_report]. *)
val dropped : unit -> int

(** Clear the sink and enable recording. *)
val start : unit -> unit

(** Disable recording; recorded events stay available via {!events}. *)
val stop : unit -> unit

(** Drop all recorded events and reset the {!dropped} counter (recording
    state unchanged). *)
val clear : unit -> unit

(** All completed spans, merged across domains, sorted by begin time.
    Spans still open are not included. *)
val events : unit -> event list

(** [with_span ?cat ?attrs name f] runs [f] inside a span. [attrs] is a
    thunk so attribute construction costs nothing when tracing is off; it is
    evaluated at span end, after any {!add_attrs}. The span is recorded even
    if [f] raises. *)
val with_span :
  ?cat:string -> ?attrs:(unit -> (string * string) list) -> string -> (span -> 'a) -> 'a

(** Like {!with_span} but also returns the wall-clock duration in seconds,
    measured whether or not tracing is enabled - the bridge that lets one
    measurement feed both the trace and a {!Service.Metrics} timer. *)
val timed :
  ?cat:string ->
  ?attrs:(unit -> (string * string) list) ->
  string ->
  (span -> 'a) ->
  'a * float

(** Attach attributes to a live span (no-op when tracing is off). *)
val add_attrs : span -> (string * string) list -> unit

(** Record a zero-duration marker event. *)
val instant : ?cat:string -> ?attrs:(string * string) list -> string -> unit

(** [collect f]: run [f] with tracing enabled on a cleared sink; return its
    value together with the merged events. Restores the previous
    enabled/disabled state (but not previously recorded events). *)
val collect : (unit -> 'a) -> 'a * event list
