(* Causal cost ledger. Two halves share this module because they share the
   phase vocabulary: a streaming per-request accountant over modeled phase
   costs (constant memory: one sketch + Welford moments per (class, phase)
   cell), and a span-tree folder that turns recorded Trace events into
   self/child accounts and a cross-domain critical path. Everything is
   pure arithmetic over the inputs - no clock reads, no RNG - so replayed
   traffic yields bit-identical reports. *)

let spf = Printf.sprintf

type phase =
  | Canonicalize
  | Lookup
  | Queue
  | Enumerate
  | Prune
  | Gate
  | Surrogate
  | Measure
  | Codegen
  | Store

let all_phases =
  [ Canonicalize; Lookup; Queue; Enumerate; Prune; Gate; Surrogate; Measure;
    Codegen; Store ]

let phase_name = function
  | Canonicalize -> "canonicalize"
  | Lookup -> "lookup"
  | Queue -> "queue"
  | Enumerate -> "enumerate"
  | Prune -> "prune"
  | Gate -> "gate"
  | Surrogate -> "surrogate"
  | Measure -> "measure"
  | Codegen -> "codegen"
  | Store -> "store"

let phase_of_name n = List.find_opt (fun p -> phase_name p = n) all_phases

(* pipeline position, used for deterministic tie-breaks *)
let phase_rank p =
  let rec go i = function
    | [] -> i
    | q :: rest -> if q = p then i else go (i + 1) rest
  in
  go 0 all_phases

type serve_class = Cold | Warm | Dedup

let all_classes = [ Cold; Warm; Dedup ]

let class_name = function Cold -> "cold" | Warm -> "warm" | Dedup -> "dedup"
let class_of_name n = List.find_opt (fun c -> class_name c = n) all_classes

let class_rank = function Cold -> 0 | Warm -> 1 | Dedup -> 2

(* ------------------------------------------------------------------ *)
(* Span accounting *)

type account = {
  acct_cat : string;
  acct_name : string;
  acct_count : int;
  acct_total_s : float;
  acct_self_s : float;
  acct_child_s : float;
}

let dur (e : Trace.event) = e.t1 -. e.t0

let accounts (events : Trace.event list) =
  (* child-duration sum per parent id; parent links are same-domain by
     construction, so self = dur - direct children telescopes per tree *)
  let child_sum = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      match e.parent with
      | None -> ()
      | Some p ->
        Hashtbl.replace child_sum p
          (dur e +. Option.value ~default:0.0 (Hashtbl.find_opt child_sum p)))
    events;
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      let key = (e.cat, e.name) in
      let d = dur e in
      let c = Option.value ~default:0.0 (Hashtbl.find_opt child_sum e.id) in
      let c = Float.min c d in
      match Hashtbl.find_opt tbl key with
      | Some a ->
        Hashtbl.replace tbl key
          {
            a with
            acct_count = a.acct_count + 1;
            acct_total_s = a.acct_total_s +. d;
            acct_self_s = a.acct_self_s +. (d -. c);
            acct_child_s = a.acct_child_s +. c;
          }
      | None ->
        order := key :: !order;
        Hashtbl.replace tbl key
          {
            acct_cat = e.cat;
            acct_name = e.name;
            acct_count = 1;
            acct_total_s = d;
            acct_self_s = d -. c;
            acct_child_s = c;
          })
    events;
  List.rev_map (fun key -> Hashtbl.find tbl key) !order
  |> List.sort (fun a b ->
         match compare (b.acct_self_s : float) a.acct_self_s with
         | 0 -> compare (a.acct_cat, a.acct_name) (b.acct_cat, b.acct_name)
         | c -> c)

type path_step = {
  step_name : string;
  step_cat : string;
  step_domain : int;
  step_self_s : float;
  step_queue_s : float;
}

type critical_path = {
  path : path_step list;
  path_total_s : float;
  path_work_s : float;
  path_queue_s : float;
}

let critical_path (events : Trace.event list) =
  match events with
  | [] -> None
  | _ ->
    let roots =
      List.filter (fun (e : Trace.event) -> e.parent = None) events
    in
    let root =
      List.fold_left
        (fun acc (e : Trace.event) ->
          match acc with
          | None -> Some e
          | Some (b : Trace.event) ->
            if dur e > dur b || (dur e = dur b && e.id < b.id) then Some e
            else acc)
        None roots
    in
    (match root with
    | None -> None
    | Some root ->
      let children : (int, Trace.event list) Hashtbl.t = Hashtbl.create 64 in
      let attach parent_id (e : Trace.event) =
        Hashtbl.replace children parent_id
          (e :: Option.value ~default:[] (Hashtbl.find_opt children parent_id))
      in
      List.iter
        (fun (e : Trace.event) ->
          match e.parent with Some p -> attach p e | None -> ())
        events;
      (* Worker-domain spans are parentless on their own domain (the Trace
         parent stack is per-domain): adopt each under the smallest
         enclosing span on another domain, which is where the scheduler
         dispatched the work from. *)
      List.iter
        (fun (e : Trace.event) ->
          if e.parent = None && e.id <> root.id then begin
            let host =
              List.fold_left
                (fun acc (s : Trace.event) ->
                  if
                    s.id <> e.id && s.domain <> e.domain && s.t0 <= e.t0
                    && e.t1 <= s.t1
                  then
                    match acc with
                    | None -> Some s
                    | Some (b : Trace.event) ->
                      if dur s < dur b || (dur s = dur b && s.id < b.id) then
                        Some s
                      else acc
                  else acc)
                None events
            in
            match host with Some h -> attach h.id e | None -> ()
          end)
        events;
      (* Depth-first: coalesce a span's children into overlap groups; a
         singleton group is sequential work, a wider one is a parallel
         fan-out whose critical member is the one finishing last. *)
      let rec walk (e : Trace.event) ~queue =
        let kids =
          Option.value ~default:[] (Hashtbl.find_opt children e.id)
          |> List.sort (fun (a : Trace.event) b ->
                 compare (a.t0, a.id) (b.t0, b.id))
        in
        let groups =
          List.fold_left
            (fun groups (k : Trace.event) ->
              match groups with
              | (members, g1) :: rest when k.t0 < g1 ->
                ((k :: members, Float.max g1 k.t1) :: rest)
              | _ -> ([ k ], k.t1) :: groups)
            [] kids
          |> List.rev_map (fun (members, _) -> List.rev members)
        in
        let extent members =
          let g0 =
            List.fold_left (fun acc (k : Trace.event) -> Float.min acc k.t0)
              infinity members
          and g1 =
            List.fold_left (fun acc (k : Trace.event) -> Float.max acc k.t1)
              neg_infinity members
          in
          let g0 = Float.max g0 e.t0 and g1 = Float.min g1 e.t1 in
          Float.max 0.0 (g1 -. g0)
        in
        let covered = List.fold_left (fun acc g -> acc +. extent g) 0.0 groups in
        let step =
          {
            step_name = e.name;
            step_cat = e.cat;
            step_domain = e.domain;
            step_self_s = Float.max 0.0 (dur e -. covered);
            step_queue_s = queue;
          }
        in
        step
        :: List.concat_map
             (fun members ->
               let g0 =
                 List.fold_left
                   (fun acc (k : Trace.event) -> Float.min acc k.t0)
                   infinity members
               in
               let chosen =
                 List.fold_left
                   (fun acc (k : Trace.event) ->
                     match acc with
                     | None -> Some k
                     | Some (b : Trace.event) ->
                       if k.t1 > b.t1 || (k.t1 = b.t1 && k.id < b.id) then
                         Some k
                       else acc)
                   None members
               in
               match chosen with
               | None -> []
               | Some k -> walk k ~queue:(Float.max 0.0 (k.t0 -. g0)))
             groups
      in
      let path = walk root ~queue:0.0 in
      Some
        {
          path;
          path_total_s = dur root;
          path_work_s =
            List.fold_left (fun acc s -> acc +. s.step_self_s) 0.0 path;
          path_queue_s =
            List.fold_left (fun acc s -> acc +. s.step_queue_s) 0.0 path;
        })

let ms v = spf "%.3f" (v *. 1e3)

let render_accounts accts =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (spf "  %-24s %-10s %6s %10s %10s %10s\n" "span" "cat" "count" "total ms"
       "self ms" "child ms");
  List.iter
    (fun a ->
      Buffer.add_string b
        (spf "  %-24s %-10s %6d %10s %10s %10s\n" a.acct_name a.acct_cat
           a.acct_count (ms a.acct_total_s) (ms a.acct_self_s)
           (ms a.acct_child_s)))
    accts;
  Buffer.contents b

let render_path cp =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (spf
       "critical path: %s ms total = %s ms work + %s ms queue (%d steps)\n"
       (ms cp.path_total_s) (ms cp.path_work_s) (ms cp.path_queue_s)
       (List.length cp.path));
  List.iter
    (fun s ->
      Buffer.add_string b
        (spf "  %-24s %-10s domain %d  self %s ms  queue %s ms\n" s.step_name
           s.step_cat s.step_domain (ms s.step_self_s) (ms s.step_queue_s)))
    cp.path;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Streaming ledger *)

(* One sketch plus Welford moments; max tracked exactly (the sketch's
   max_value is already exact, but keeping it here avoids the nan dance on
   empty cells). *)
type cell = {
  sk : Sketch.t;
  mutable c_n : int;
  mutable c_mean : float;
  mutable c_m2 : float;
  mutable c_total : float;
  mutable c_max : float;
}

type exemplar = {
  ex_slot : int;
  ex_tick : int;
  ex_latency_s : float;
  ex_class : serve_class;
  ex_phase : phase;
  ex_label : string option;
  ex_key : string option;
  ex_run_id : string option;
}

type slot = { mutable s_epoch : int; mutable s_ex : exemplar option }

type t = {
  alpha : float;
  slot_width : int;
  ring : slot array;
  cells : (serve_class * phase, cell) Hashtbl.t;
  e2e : (serve_class, cell) Hashtbl.t;
  overall : cell;
  mutable requests : int;
  mutable errors : int;
  mutable worst : exemplar option;
}

let new_cell alpha =
  {
    sk = Sketch.create ~alpha ();
    c_n = 0;
    c_mean = 0.0;
    c_m2 = 0.0;
    c_total = 0.0;
    c_max = neg_infinity;
  }

let create ?(alpha = 0.01) ?(slot_width = 250) ?(slots = 16) () =
  if slot_width < 1 then invalid_arg "Ledger.create: slot_width must be >= 1";
  if slots < 1 then invalid_arg "Ledger.create: slots must be >= 1";
  {
    alpha;
    slot_width;
    ring = Array.init slots (fun _ -> { s_epoch = -1; s_ex = None });
    cells = Hashtbl.create 32;
    e2e = Hashtbl.create 4;
    overall = new_cell alpha;
    requests = 0;
    errors = 0;
    worst = None;
  }

let cell_add c v =
  c.c_n <- c.c_n + 1;
  let delta = v -. c.c_mean in
  c.c_mean <- c.c_mean +. (delta /. float_of_int c.c_n);
  c.c_m2 <- c.c_m2 +. (delta *. (v -. c.c_mean));
  c.c_total <- c.c_total +. v;
  if v > c.c_max then c.c_max <- v;
  Sketch.add c.sk v

let get tbl alpha key =
  match Hashtbl.find_opt tbl key with
  | Some c -> c
  | None ->
    let c = new_cell alpha in
    Hashtbl.add tbl key c;
    c

let dominant_phase costs =
  List.fold_left
    (fun acc (p, v) ->
      match acc with
      | None -> Some (p, v)
      | Some (_, bv) -> if v > bv then Some (p, v) else acc)
    None costs
  |> Option.map fst

let observe ?label ?key ?run_id t ~tick ~cls ~ok ~latency_s costs =
  if tick < 0 then invalid_arg "Ledger.observe: negative tick";
  t.requests <- t.requests + 1;
  if not ok then t.errors <- t.errors + 1;
  cell_add t.overall latency_s;
  cell_add (get t.e2e t.alpha cls) latency_s;
  List.iter (fun (p, v) -> cell_add (get t.cells t.alpha (cls, p)) v) costs;
  let ex slot =
    {
      ex_slot = slot;
      ex_tick = tick;
      ex_latency_s = latency_s;
      ex_class = cls;
      ex_phase =
        (match dominant_phase costs with Some p -> p | None -> Canonicalize);
      ex_label = label;
      ex_key = key;
      ex_run_id = run_id;
    }
  in
  let epoch = tick / t.slot_width in
  let s = t.ring.(epoch mod Array.length t.ring) in
  if s.s_epoch <> epoch then begin
    s.s_epoch <- epoch;
    s.s_ex <- None
  end;
  (match s.s_ex with
  | Some e when e.ex_latency_s >= latency_s -> ()
  | _ -> s.s_ex <- Some (ex epoch));
  match t.worst with
  | Some e when e.ex_latency_s >= latency_s -> ()
  | _ -> t.worst <- Some (ex (-1))

let reconcile t =
  List.filter_map
    (fun cls ->
      match Hashtbl.find_opt t.e2e cls with
      | None -> None
      | Some e ->
        let phases =
          List.fold_left
            (fun acc p ->
              match Hashtbl.find_opt t.cells (cls, p) with
              | Some c -> acc +. c.c_total
              | None -> acc)
            0.0 all_phases
        in
        Some (cls, e.c_n, phases, e.c_total))
    all_classes

(* ---------------- report ---------------- *)

type stat = {
  st_n : int;
  st_total_s : float;
  st_mean_s : float;
  st_std_s : float;
  st_p50_s : float;
  st_p90_s : float;
  st_p99_s : float;
  st_max_s : float;
}

let stat_of_cell c =
  {
    st_n = c.c_n;
    st_total_s = c.c_total;
    st_mean_s = (if c.c_n = 0 then nan else c.c_mean);
    st_std_s =
      (if c.c_n = 0 then nan else sqrt (c.c_m2 /. float_of_int c.c_n));
    st_p50_s = Sketch.quantile c.sk 50.0;
    st_p90_s = Sketch.quantile c.sk 90.0;
    st_p99_s = Sketch.quantile c.sk 99.0;
    st_max_s = (if c.c_n = 0 then nan else c.c_max);
  }

type report = {
  lr_requests : int;
  lr_errors : int;
  lr_slot_width : int;
  lr_overall : stat;
  lr_classes : (serve_class * stat) list;
  lr_cells : (serve_class * phase * stat) list;
  lr_phase_share : (phase * float) list;
  lr_exemplars : exemplar list;
  lr_worst : exemplar option;
}

let report t =
  let classes =
    List.filter_map
      (fun cls ->
        Option.map (fun c -> (cls, stat_of_cell c)) (Hashtbl.find_opt t.e2e cls))
      all_classes
  in
  let cells =
    List.concat_map
      (fun cls ->
        List.filter_map
          (fun p ->
            Option.map
              (fun c -> (cls, p, stat_of_cell c))
              (Hashtbl.find_opt t.cells (cls, p)))
          all_phases)
      all_classes
  in
  let grand =
    List.fold_left (fun acc (_, _, s) -> acc +. s.st_total_s) 0.0 cells
  in
  let share =
    List.filter_map
      (fun p ->
        let total =
          List.fold_left
            (fun acc (_, q, s) -> if q = p then acc +. s.st_total_s else acc)
            0.0 cells
        in
        if
          List.exists (fun (_, q, _) -> q = p) cells
        then Some (p, if grand > 0.0 then total /. grand else 0.0)
        else None)
      all_phases
    |> List.stable_sort (fun (p, a) (q, b) ->
           match compare (b : float) a with
           | 0 -> compare (phase_rank p) (phase_rank q)
           | c -> c)
  in
  let exemplars =
    Array.to_list t.ring
    |> List.filter_map (fun s -> s.s_ex)
    |> List.sort (fun a b -> compare a.ex_slot b.ex_slot)
  in
  {
    lr_requests = t.requests;
    lr_errors = t.errors;
    lr_slot_width = t.slot_width;
    lr_overall = stat_of_cell t.overall;
    lr_classes = classes;
    lr_cells = cells;
    lr_phase_share = share;
    lr_exemplars = exemplars;
    lr_worst = t.worst;
  }

let dominant r =
  match r.lr_phase_share with [] -> None | (p, _) :: _ -> Some p

(* ---------------- JSON ---------------- *)

let stat_json s =
  Json.Obj
    [
      ("n", Json.int s.st_n);
      ("total_s", Json.Num s.st_total_s);
      ("mean_s", Json.Num s.st_mean_s);
      ("std_s", Json.Num s.st_std_s);
      ("p50_s", Json.Num s.st_p50_s);
      ("p90_s", Json.Num s.st_p90_s);
      ("p99_s", Json.Num s.st_p99_s);
      ("max_s", Json.Num s.st_max_s);
    ]

let exemplar_json e =
  Json.Obj
    ([
       ("slot", Json.int e.ex_slot);
       ("tick", Json.int e.ex_tick);
       ("latency_s", Json.Num e.ex_latency_s);
       ("class", Json.Str (class_name e.ex_class));
       ("phase", Json.Str (phase_name e.ex_phase));
     ]
    @ (match e.ex_label with None -> [] | Some l -> [ ("label", Json.Str l) ])
    @ (match e.ex_key with None -> [] | Some k -> [ ("key", Json.Str k) ])
    @
    match e.ex_run_id with
    | None -> []
    | Some r -> [ ("run_id", Json.Str r) ])

let report_json r =
  Json.Obj
    [
      ("schema_version", Json.int 1);
      ("requests", Json.int r.lr_requests);
      ("errors", Json.int r.lr_errors);
      ("slot_width", Json.int r.lr_slot_width);
      ("overall", stat_json r.lr_overall);
      ( "classes",
        Json.Obj
          (List.map (fun (c, s) -> (class_name c, stat_json s)) r.lr_classes)
      );
      ( "cells",
        Json.Arr
          (List.map
             (fun (c, p, s) ->
               Json.Obj
                 [
                   ("class", Json.Str (class_name c));
                   ("phase", Json.Str (phase_name p));
                   ("stat", stat_json s);
                 ])
             r.lr_cells) );
      ( "phase_share",
        Json.Arr
          (List.map
             (fun (p, s) -> Json.Arr [ Json.Str (phase_name p); Json.Num s ])
             r.lr_phase_share) );
      ("exemplars", Json.Arr (List.map exemplar_json r.lr_exemplars));
      ( "worst",
        match r.lr_worst with None -> Json.Null | Some e -> exemplar_json e );
    ]

let ( let* ) r f = Result.bind r f

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Result.Ok v
  | None -> Result.Error (spf "missing or invalid field %S" name)

let num name j = field name Json.get_num j
let str name j = field name Json.get_str j
let int_field name j = Result.map int_of_float (num name j)

let stat_of_json j =
  let* st_n = int_field "n" j in
  let* st_total_s = num "total_s" j in
  let* st_mean_s = num "mean_s" j in
  let* st_std_s = num "std_s" j in
  let* st_p50_s = num "p50_s" j in
  let* st_p90_s = num "p90_s" j in
  let* st_p99_s = num "p99_s" j in
  let* st_max_s = num "max_s" j in
  Result.Ok
    { st_n; st_total_s; st_mean_s; st_std_s; st_p50_s; st_p90_s; st_p99_s;
      st_max_s }

let class_of_json name =
  match class_of_name name with
  | Some c -> Result.Ok c
  | None -> Result.Error (spf "unknown serve class %S" name)

let phase_of_json name =
  match phase_of_name name with
  | Some p -> Result.Ok p
  | None -> Result.Error (spf "unknown phase %S" name)

let exemplar_of_json j =
  let* ex_slot = int_field "slot" j in
  let* ex_tick = int_field "tick" j in
  let* ex_latency_s = num "latency_s" j in
  let* ex_class = Result.bind (str "class" j) class_of_json in
  let* ex_phase = Result.bind (str "phase" j) phase_of_json in
  let opt name = Option.bind (Json.member name j) Json.get_str in
  Result.Ok
    { ex_slot; ex_tick; ex_latency_s; ex_class; ex_phase;
      ex_label = opt "label"; ex_key = opt "key"; ex_run_id = opt "run_id" }

let fold_list of_item items =
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* v = of_item item in
      Result.Ok (v :: acc))
    (Result.Ok []) items
  |> Result.map List.rev

let report_of_json j =
  let* lr_requests = int_field "requests" j in
  let* lr_errors = int_field "errors" j in
  let* lr_slot_width = int_field "slot_width" j in
  let* lr_overall =
    match Json.member "overall" j with
    | Some s -> stat_of_json s
    | None -> Result.Error "missing field \"overall\""
  in
  let* lr_classes =
    match Json.member "classes" j with
    | Some (Json.Obj kvs) ->
      fold_list
        (fun (name, sj) ->
          let* c = class_of_json name in
          let* s = stat_of_json sj in
          Result.Ok (c, s))
        kvs
    | _ -> Result.Error "missing or invalid field \"classes\""
  in
  let* lr_cells =
    match Option.bind (Json.member "cells" j) Json.get_arr with
    | None -> Result.Error "missing or invalid field \"cells\""
    | Some items ->
      fold_list
        (fun item ->
          let* c = Result.bind (str "class" item) class_of_json in
          let* p = Result.bind (str "phase" item) phase_of_json in
          let* s =
            match Json.member "stat" item with
            | Some sj -> stat_of_json sj
            | None -> Result.Error "cell missing \"stat\""
          in
          Result.Ok (c, p, s))
        items
  in
  let* lr_phase_share =
    match Option.bind (Json.member "phase_share" j) Json.get_arr with
    | None -> Result.Error "missing or invalid field \"phase_share\""
    | Some items ->
      fold_list
        (function
          | Json.Arr [ Json.Str name; Json.Num s ] ->
            let* p = phase_of_json name in
            Result.Ok (p, s)
          | _ -> Result.Error "invalid phase_share entry")
        items
  in
  let* lr_exemplars =
    match Option.bind (Json.member "exemplars" j) Json.get_arr with
    | None -> Result.Error "missing or invalid field \"exemplars\""
    | Some items -> fold_list exemplar_of_json items
  in
  let* lr_worst =
    match Json.member "worst" j with
    | None | Some Json.Null -> Result.Ok None
    | Some e -> Result.map Option.some (exemplar_of_json e)
  in
  Result.Ok
    { lr_requests; lr_errors; lr_slot_width; lr_overall; lr_classes; lr_cells;
      lr_phase_share; lr_exemplars; lr_worst }

(* ---------------- render ---------------- *)

let pct v = spf "%.1f%%" (100.0 *. v)

let render_exemplar e =
  spf "tick %d %s latency %s ms, dominated by %s%s%s" e.ex_tick
    (class_name e.ex_class) (ms e.ex_latency_s) (phase_name e.ex_phase)
    (match e.ex_label with None -> "" | Some l -> spf " [%s]" l)
    (match e.ex_run_id with
    | None -> ""
    | Some r ->
      spf " (run %s)" (if String.length r > 12 then String.sub r 0 12 else r))

let render r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (spf "ledger: %d requests (%d errors), slot width %d ticks\n"
       r.lr_requests r.lr_errors r.lr_slot_width);
  Buffer.add_string b
    (spf "  %-10s %8s %10s %10s %10s %10s\n" "class" "n" "mean ms" "p50 ms"
       "p99 ms" "max ms");
  let class_line name (s : stat) =
    Buffer.add_string b
      (spf "  %-10s %8d %10s %10s %10s %10s\n" name s.st_n (ms s.st_mean_s)
         (ms s.st_p50_s) (ms s.st_p99_s) (ms s.st_max_s))
  in
  class_line "all" r.lr_overall;
  List.iter (fun (c, s) -> class_line (class_name c) s) r.lr_classes;
  Buffer.add_string b
    (spf "  %-12s %7s %12s %12s %12s\n" "phase" "share" "cold p99"
       "warm p99" "dedup p99");
  let cell_p99 cls p =
    match
      List.find_opt (fun (c, q, _) -> c = cls && q = p) r.lr_cells
    with
    | Some (_, _, s) -> ms s.st_p99_s
    | None -> "-"
  in
  List.iter
    (fun (p, share) ->
      Buffer.add_string b
        (spf "  %-12s %7s %12s %12s %12s\n" (phase_name p) (pct share)
           (cell_p99 Cold p) (cell_p99 Warm p) (cell_p99 Dedup p)))
    r.lr_phase_share;
  (match r.lr_worst with
  | Some e -> Buffer.add_string b (spf "  worst: %s\n" (render_exemplar e))
  | None -> ());
  List.iter
    (fun e ->
      Buffer.add_string b (spf "  slot %4d: %s\n" e.ex_slot (render_exemplar e)))
    r.lr_exemplars;
  Buffer.contents b

let prometheus ?(prefix = "barracuda") t =
  let e2e =
    List.filter_map
      (fun cls ->
        Option.map
          (fun c -> (spf "serve_%s" (class_name cls), c.sk))
          (Hashtbl.find_opt t.e2e cls))
      all_classes
  in
  let cells =
    List.concat_map
      (fun cls ->
        List.filter_map
          (fun p ->
            Option.map
              (fun c ->
                (spf "phase_%s_%s" (class_name cls) (phase_name p), c.sk))
              (Hashtbl.find_opt t.cells (cls, p)))
          all_phases)
      all_classes
  in
  Export.prometheus_sketches ~prefix
    ~counters:
      [ ("ledger_requests", t.requests); ("ledger_errors", t.errors) ]
    ~sketches:(e2e @ cells) ()

(* referenced by interface consumers that sort classes; keep the
   deterministic rank exported through compare on the variant order *)
let _ = class_rank
