(* Exporters for the observability layer:

   - Chrome trace-event JSON (the format chrome://tracing and Perfetto
     load): one "B"/"E" duration-event pair per span. Events are emitted
     depth-first per domain, so begin/end pairs are balanced and correctly
     nested in file order even for zero-duration spans.
   - Prometheus-style text exposition of counters and timers (summaries
     with count/sum and median/p90/p99 quantiles). *)

(* ---------------- JSON helpers ---------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = "\"" ^ json_escape s ^ "\""

(* ---------------- Chrome trace events ---------------- *)

(* Timestamps are microseconds relative to the earliest span, so traces are
   small and stable to diff. pid is the stage category (Perfetto groups
   tracks by pid/tid); tid is the recording domain. *)

let chrome_pid_names events =
  let cats = List.sort_uniq compare (List.map (fun (e : Trace.event) -> e.cat) events) in
  List.mapi (fun i c -> (c, i + 1)) cats

let chrome_trace ?(dropped = 0) (events : Trace.event list) =
  let t_min =
    List.fold_left (fun acc (e : Trace.event) -> min acc e.t0) infinity events
  in
  let ts t = if events = [] then 0.0 else (t -. t_min) *. 1e6 in
  let pids = chrome_pid_names events in
  let pid_of cat = try List.assoc cat pids with Not_found -> 0 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit_obj fields =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_char buf '{';
    Buffer.add_string buf (String.concat "," fields);
    Buffer.add_char buf '}'
  in
  (* process/thread name metadata so viewers label the tracks *)
  List.iter
    (fun (cat, pid) ->
      emit_obj
        [
          "\"name\":\"process_name\""; "\"ph\":\"M\"";
          Printf.sprintf "\"pid\":%d" pid; "\"tid\":0";
          Printf.sprintf "\"args\":{\"name\":%s}" (json_str cat);
        ])
    pids;
  let emit_span (e : Trace.event) =
    let args =
      Printf.sprintf "\"id\":%d" e.id
      :: (match e.parent with None -> [] | Some p -> [ Printf.sprintf "\"parent\":%d" p ])
      @ List.map (fun (k, v) -> Printf.sprintf "%s:%s" (json_str k) (json_str v)) e.attrs
    in
    emit_obj
      [
        Printf.sprintf "\"name\":%s" (json_str e.name);
        Printf.sprintf "\"cat\":%s" (json_str (if e.cat = "" then "default" else e.cat));
        "\"ph\":\"B\"";
        Printf.sprintf "\"ts\":%.3f" (ts e.t0);
        Printf.sprintf "\"pid\":%d" (pid_of e.cat);
        Printf.sprintf "\"tid\":%d" e.domain;
        Printf.sprintf "\"args\":{%s}" (String.concat "," args);
      ];
    fun () ->
      emit_obj
        [
          Printf.sprintf "\"name\":%s" (json_str e.name);
          Printf.sprintf "\"cat\":%s" (json_str (if e.cat = "" then "default" else e.cat));
          "\"ph\":\"E\"";
          Printf.sprintf "\"ts\":%.3f" (ts e.t1);
          Printf.sprintf "\"pid\":%d" (pid_of e.cat);
          Printf.sprintf "\"tid\":%d" e.domain;
        ]
  in
  (* depth-first per domain: spans on one domain nest by construction *)
  let domains =
    List.sort_uniq compare (List.map (fun (e : Trace.event) -> e.domain) events)
  in
  List.iter
    (fun domain ->
      let mine =
        List.filter (fun (e : Trace.event) -> e.domain = domain) events
        |> List.sort (fun (a : Trace.event) b -> compare (a.t0, a.id) (b.t0, b.id))
      in
      let children = Hashtbl.create 64 in
      List.iter
        (fun (e : Trace.event) ->
          match e.parent with
          | Some p -> Hashtbl.replace children p (e :: (Option.value ~default:[] (Hashtbl.find_opt children p)))
          | None -> ())
        (List.rev mine);
      let rec emit (e : Trace.event) =
        let close = emit_span e in
        List.iter emit (Option.value ~default:[] (Hashtbl.find_opt children e.id));
        close ()
      in
      List.iter
        (fun (e : Trace.event) -> if e.parent = None then emit e)
        mine)
    domains;
  Buffer.add_string buf "]";
  (* drops at the Trace buffer cap would otherwise vanish silently; viewers
     ignore otherData, tooling can alert on it *)
  if dropped > 0 then
    Buffer.add_string buf
      (Printf.sprintf ",\"otherData\":{\"dropped_spans\":%d}" dropped);
  Buffer.add_string buf "}";
  Buffer.contents buf

let write_chrome_trace ?dropped path events =
  let oc = open_out path in
  output_string oc (chrome_trace ?dropped events);
  close_out oc

(* ---------------- Prometheus text exposition ---------------- *)

(* Names derived from user strings (timer labels, cache keys) must match
   the exposition grammar [a-zA-Z_][a-zA-Z0-9_]*: illegal characters map
   to '_', and a leading digit (possible when [prefix] is empty) gains a
   '_' prefix. *)
let metric_name prefix name =
  let b = Buffer.create (String.length name + String.length prefix + 1) in
  if prefix <> "" then begin
    Buffer.add_string b prefix;
    Buffer.add_char b '_'
  end
  else (match name with "" -> () | s -> (match s.[0] with '0' .. '9' -> Buffer.add_char b '_' | _ -> ()));
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

(* HELP text escaping per the exposition format: only backslash and
   newline are special. *)
let help_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let header b ~metric ~help ~kind =
  Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" metric (help_escape help));
  Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" metric kind)

let counter_lines b prefix counters =
  List.iter
    (fun (name, v) ->
      let m = metric_name prefix name ^ "_total" in
      header b ~metric:m ~help:(Printf.sprintf "Occurrences of %s." name) ~kind:"counter";
      Buffer.add_string b (Printf.sprintf "%s %d\n" m v))
    counters

let prometheus ?(prefix = "barracuda") ~counters ~timers () =
  let b = Buffer.create 1024 in
  counter_lines b prefix counters;
  List.iter
    (fun (name, samples) ->
      let m = metric_name prefix (name ^ "_seconds") in
      header b ~metric:m ~help:(Printf.sprintf "Latency of %s in seconds." name)
        ~kind:"summary";
      let quantile q p =
        Buffer.add_string b
          (Printf.sprintf "%s{quantile=\"%s\"} %.9g\n" m q
             (Util.Stats.percentile p samples))
      in
      if samples <> [] then begin
        quantile "0.5" 50.0;
        quantile "0.9" 90.0;
        quantile "0.99" 99.0
      end;
      Buffer.add_string b
        (Printf.sprintf "%s_sum %.9g\n" m (List.fold_left ( +. ) 0.0 samples));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" m (List.length samples)))
    timers;
  Buffer.contents b

(* Native histograms from sketches: the log-bucket upper bounds become the
   cumulative le="..." series. O(buckets) regardless of traffic. *)
let prometheus_sketches ?(prefix = "barracuda") ~counters ~sketches () =
  let b = Buffer.create 1024 in
  counter_lines b prefix counters;
  List.iter
    (fun (name, sketch) ->
      let m = metric_name prefix (name ^ "_seconds") in
      header b ~metric:m
        ~help:
          (Printf.sprintf
             "Latency of %s in seconds (log-bucket sketch, relative error %g)."
             name (Sketch.alpha sketch))
        ~kind:"histogram";
      let cum = ref 0 in
      List.iter
        (fun (upper, count) ->
          cum := !cum + count;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%.9g\"} %d\n" m upper !cum))
        (Sketch.buckets sketch);
      Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m (Sketch.count sketch));
      Buffer.add_string b (Printf.sprintf "%s_sum %.9g\n" m (Sketch.total sketch));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" m (Sketch.count sketch));
      (* sketch health: occupied buckets and whether the max_buckets cap
         has forced low-bucket collapse (quantiles near 0 then exceed the
         error bound) - without these gauges, accuracy loss is silent *)
      let g = metric_name prefix (name ^ "_sketch_buckets") in
      header b ~metric:g
        ~help:(Printf.sprintf "Occupied sketch buckets of %s." name)
        ~kind:"gauge";
      Buffer.add_string b
        (Printf.sprintf "%s %d\n" g (Sketch.bucket_count sketch));
      let c = metric_name prefix (name ^ "_sketch_collapsed") in
      header b ~metric:c
        ~help:
          (Printf.sprintf
             "1 once the bucket cap has collapsed low buckets of %s (low \
              quantiles may exceed the error bound)."
             name)
        ~kind:"gauge";
      Buffer.add_string b
        (Printf.sprintf "%s %d\n" c (if Sketch.collapsed sketch then 1 else 0)))
    sketches;
  Buffer.contents b
