(** Exact causal what-if profiling over a recorded loadgen replay.

    Coz-style causal profiling asks "what would end-to-end latency do if
    phase X were f times cheaper?" and answers it on real systems by
    statistical sampling. Our replays are deterministic with modeled
    latencies, so we can answer it {e exactly}: every request's latency is
    [(sum of per-phase base costs) * multiplier] where the multiplier
    bundles the request's jitter and degrade draws. Scaling one phase's
    base cost by [f] and re-summing reproduces the precise latency that
    request would have had, and replaying the whole stream through a fresh
    {!Sketch} + {!Window} + {!Slo} evaluation yields the true dp50 / dp99
    / SLO-verdict impact of speeding that phase up - no sampling error, no
    run-to-run noise, bit-identical across runs.

    The ranking this produces is the decision input for ROADMAP item 5:
    it names the phase whose speedup moves tail latency most. *)

(** One recorded request: the base (unscaled) per-phase costs, the
    combined jitter x degrade multiplier, and its replay position.
    Invariant: [(sum of rq_costs) *. rq_mult] is the latency the original
    replay observed. *)
type record = {
  rq_tick : int;
  rq_class : Ledger.serve_class;
  rq_ok : bool;
  rq_mult : float;
  rq_costs : (Ledger.phase * float) list;
}

(** Outcome of scaling one phase by one factor and replaying. Deltas are
    baseline minus scenario (positive = the speedup helped). *)
type scenario = {
  sc_phase : Ledger.phase;
  sc_factor : float;
  sc_p50_s : float;
  sc_p99_s : float;
  sc_delta_p50_s : float;
  sc_delta_p99_s : float;
  sc_verdict : string;  (** final-window SLO verdict, ["-"] without a spec *)
}

(** All scenarios of one phase, plus its causal impact: the p50/p99
    improvement at the {e most aggressive} (smallest) factor. *)
type entry = {
  en_phase : Ledger.phase;
  en_impact_p50_s : float;
  en_impact_p99_s : float;
  en_scenarios : scenario list;  (** factor descending, as given *)
}

type report = {
  wr_requests : int;
  wr_factors : float list;
  wr_baseline_p50_s : float;
  wr_baseline_p99_s : float;
  wr_baseline_verdict : string;
  wr_ranking : entry list;
      (** impact on p99 descending; ties by pipeline order *)
}

(** Replay the records once per (observed phase, factor), plus once
    unscaled for the baseline. [factors] defaults to [[0.5; 0.25; 0.1]]
    and must be positive; [width]/[buckets] shape the {!Window} the
    optional [slo] is evaluated against at the last record's tick.
    Phases that never appear in any record are omitted from the ranking.
    Raises [Invalid_argument] on an empty record list or bad factors. *)
val run :
  ?factors:float list ->
  ?slo:Slo.spec ->
  width:int ->
  buckets:int ->
  record list ->
  report

(** Top-ranked phase (largest p99 impact). *)
val top : report -> Ledger.phase option

val report_json : report -> Json.t
val report_of_json : Json.t -> (report, string) result
val render : report -> string

(* ------------------------------------------------------------------ *)
(* Replay file *)

(** What [loadgen --ledger-out] writes and the [whatif] / [ledger] CLI
    subcommands read back: enough to re-derive the ledger view and run
    what-if scenarios without re-running the engine. *)
type file = {
  f_requests : int;
  f_seed : int;
  f_width : int;  (** window width the replay used *)
  f_buckets : int;
  f_slo : Slo.spec option;
  f_ledger : Ledger.report;
  f_records : record list;
}

val file_json : file -> Json.t
val file_of_json : Json.t -> (file, string) result
