let spf = Printf.sprintf

type direction = Up | Down

type alarm = {
  monitor : string;
  at_tick : int;
  direction : direction;
  statistic : float;
  threshold : float;
  observed : float;
  reference : float;
  detail : string;
}

let max_alarms = 64

(* Detector state. All fields are plain mutable scalars (or one bounded
   sketch pair for [Qs]), so a monitor's footprint never grows with the
   stream. *)
type state =
  | Ph of {
      delta : float;
      lambda : float;
      min_count : int;
      mutable n : int;
      mutable mean : float;
      mutable m_up : float;
      mutable min_up : float;
      mutable m_dn : float;
      mutable min_dn : float;
    }
  | Cu of {
      ref_count : int;
      k : float;
      h : float;
      mutable cn : int;
      mutable sum : float;
      mutable sumsq : float;
      mutable ready : bool;
      mutable mu0 : float;
      mutable sigma0 : float;
      mutable s_up : float;
      mutable s_dn : float;
    }
  | Qs of {
      p : float;
      ratio : float;
      window : int;
      ref_windows : int;
      alpha : float;
      mutable reference : Sketch.t option;
      mutable merged : int;
      mutable cur : Sketch.t;
      mutable cur_n : int;
    }

type t = {
  name : string;
  state : state;
  mutable count : int;
  mutable alarms_rev : alarm list;
  mutable n_alarms : int;
  mutable suppressed : int;
}

let mk name state =
  { name; state; count = 0; alarms_rev = []; n_alarms = 0; suppressed = 0 }

let page_hinkley ?(delta = 0.05) ?(lambda = 3.0) ?(min_count = 30) name =
  if delta < 0. || lambda <= 0. || min_count < 1 then
    invalid_arg "Drift.page_hinkley";
  mk name
    (Ph
       {
         delta;
         lambda;
         min_count;
         n = 0;
         mean = 0.;
         m_up = 0.;
         min_up = 0.;
         m_dn = 0.;
         min_dn = 0.;
       })

let cusum ?(ref_count = 500) ?(k = 0.5) ?(h = 15.0) name =
  if ref_count < 2 || k < 0. || h <= 0. then invalid_arg "Drift.cusum";
  mk name
    (Cu
       {
         ref_count;
         k;
         h;
         cn = 0;
         sum = 0.;
         sumsq = 0.;
         ready = false;
         mu0 = 0.;
         sigma0 = 1.;
         s_up = 0.;
         s_dn = 0.;
       })

let quantile_shift ?(p = 99.) ?(ratio = 2.0) ?(window = 250)
    ?(ref_windows = 2) ?(alpha = 0.01) name =
  if p < 0. || p > 100. || ratio <= 1. || window < 1 || ref_windows < 1 then
    invalid_arg "Drift.quantile_shift";
  mk name
    (Qs
       {
         p;
         ratio;
         window;
         ref_windows;
         alpha;
         reference = None;
         merged = 0;
         cur = Sketch.create ~alpha ();
         cur_n = 0;
       })

let name t = t.name
let count t = t.count

let kind t =
  match t.state with
  | Ph p ->
      spf "page-hinkley(delta=%g, lambda=%g, min_count=%d)" p.delta p.lambda
        p.min_count
  | Cu c -> spf "cusum(ref=%d, k=%g, h=%g)" c.ref_count c.k c.h
  | Qs q ->
      spf "quantile-shift(p=%g, ratio=%g, window=%d, ref_windows=%d)" q.p
        q.ratio q.window q.ref_windows

let warming_up t =
  match t.state with
  | Ph p -> p.n < p.min_count
  | Cu c -> not c.ready
  | Qs q -> q.merged < q.ref_windows

let direction_name = function Up -> "up" | Down -> "down"

let record t a =
  if t.n_alarms < max_alarms then begin
    t.alarms_rev <- a :: t.alarms_rev;
    t.n_alarms <- t.n_alarms + 1
  end
  else t.suppressed <- t.suppressed + 1;
  Some a

let alarm t ~tick direction ~statistic ~threshold ~observed ~reference =
  let a =
    {
      monitor = t.name;
      at_tick = tick;
      direction;
      statistic;
      threshold;
      observed;
      reference;
      detail =
        spf "%s: %s shift at tick %d (observed %.6g vs reference %.6g, stat \
             %.4g > %.4g)"
          t.name
          (direction_name direction)
          tick observed reference statistic threshold;
    }
  in
  record t a

let reset_ph (p : _) =
  match p with
  | Ph p ->
      p.n <- 0;
      p.mean <- 0.;
      p.m_up <- 0.;
      p.min_up <- 0.;
      p.m_dn <- 0.;
      p.min_dn <- 0.
  | _ -> assert false

let observe t ~tick x =
  t.count <- t.count + 1;
  match t.state with
  | Ph p as st ->
      p.n <- p.n + 1;
      p.mean <- p.mean +. ((x -. p.mean) /. float_of_int p.n);
      p.m_up <- p.m_up +. (x -. p.mean -. p.delta);
      if p.m_up < p.min_up then p.min_up <- p.m_up;
      p.m_dn <- p.m_dn +. (p.mean -. x -. p.delta);
      if p.m_dn < p.min_dn then p.min_dn <- p.m_dn;
      let up = p.m_up -. p.min_up and dn = p.m_dn -. p.min_dn in
      if p.n >= p.min_count && (up > p.lambda || dn > p.lambda) then begin
        let dir = if up > p.lambda then Up else Down in
        let stat = if dir = Up then up else dn in
        let reference = p.mean in
        reset_ph st;
        alarm t ~tick dir ~statistic:stat ~threshold:p.lambda ~observed:x
          ~reference
      end
      else None
  | Cu c ->
      if not c.ready then begin
        c.cn <- c.cn + 1;
        c.sum <- c.sum +. x;
        c.sumsq <- c.sumsq +. (x *. x);
        if c.cn >= c.ref_count then begin
          let mu = c.sum /. float_of_int c.cn in
          let var =
            Float.max 0. ((c.sumsq /. float_of_int c.cn) -. (mu *. mu))
          in
          c.mu0 <- mu;
          c.sigma0 <- Float.max (sqrt var) 1e-12;
          c.s_up <- 0.;
          c.s_dn <- 0.;
          c.ready <- true
        end;
        None
      end
      else begin
        let z = (x -. c.mu0) /. c.sigma0 in
        c.s_up <- Float.max 0. (c.s_up +. z -. c.k);
        c.s_dn <- Float.max 0. (c.s_dn -. z -. c.k);
        if c.s_up > c.h || c.s_dn > c.h then begin
          let dir = if c.s_up > c.h then Up else Down in
          let stat = if dir = Up then c.s_up else c.s_dn in
          let reference = c.mu0 in
          (* fresh calibration phase *)
          c.cn <- 0;
          c.sum <- 0.;
          c.sumsq <- 0.;
          c.ready <- false;
          c.s_up <- 0.;
          c.s_dn <- 0.;
          alarm t ~tick dir ~statistic:stat ~threshold:c.h ~observed:x
            ~reference
        end
        else None
      end
  | Qs q ->
      Sketch.add q.cur x;
      q.cur_n <- q.cur_n + 1;
      if q.cur_n < q.window then None
      else if q.merged < q.ref_windows then begin
        (* still building the frozen reference *)
        q.reference <-
          (match q.reference with
          | None -> Some (Sketch.copy q.cur)
          | Some r -> Some (Sketch.merge r q.cur));
        q.merged <- q.merged + 1;
        q.cur <- Sketch.create ~alpha:q.alpha ();
        q.cur_n <- 0;
        None
      end
      else begin
        let r = match q.reference with Some r -> r | None -> assert false in
        let q_ref = Sketch.quantile r q.p in
        let q_cur = Sketch.quantile q.cur q.p in
        let gamma = (1. +. q.alpha) /. (1. -. q.alpha) in
        let thr = q.ratio *. gamma *. gamma in
        let fire dir =
          q.reference <- None;
          q.merged <- 0;
          q.cur <- Sketch.create ~alpha:q.alpha ();
          q.cur_n <- 0;
          alarm t ~tick dir
            ~statistic:(if dir = Up then q_cur /. q_ref else q_ref /. q_cur)
            ~threshold:thr ~observed:q_cur ~reference:q_ref
        in
        if q_cur > thr *. q_ref then fire Up
        else if q_cur *. thr < q_ref then fire Down
        else begin
          q.cur <- Sketch.create ~alpha:q.alpha ();
          q.cur_n <- 0;
          None
        end
      end

let alarms t = List.rev t.alarms_rev
let suppressed t = t.suppressed

let alarm_to_json a =
  Json.Obj
    [
      ("monitor", Json.Str a.monitor);
      ("at_tick", Json.int a.at_tick);
      ("direction", Json.Str (direction_name a.direction));
      ("statistic", Json.Num a.statistic);
      ("threshold", Json.Num a.threshold);
      ("observed", Json.Num a.observed);
      ("reference", Json.Num a.reference);
      ("detail", Json.Str a.detail);
    ]

let alarm_of_json j =
  let str k = Option.bind (Json.member k j) Json.get_str in
  let num k =
    match Option.bind (Json.member k j) Json.get_num with
    | Some v -> v
    | None -> nan
  in
  match (str "monitor", Option.bind (Json.member "at_tick" j) Json.get_num) with
  | Some monitor, Some tick ->
      let direction =
        match str "direction" with Some "down" -> Down | _ -> Up
      in
      Some
        {
          monitor;
          at_tick = int_of_float tick;
          direction;
          statistic = num "statistic";
          threshold = num "threshold";
          observed = num "observed";
          reference = num "reference";
          detail = (match str "detail" with Some d -> d | None -> "");
        }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Registry *)

type registry = { mutable mons : t list (* insertion order *) }

let create_registry () = { mons = [] }

let register r m =
  if List.exists (fun m' -> m'.name = m.name) r.mons then
    invalid_arg (spf "Drift.register: duplicate monitor %S" m.name);
  r.mons <- r.mons @ [ m ]

let monitors r = r.mons
let find r n = List.find_opt (fun m -> m.name = n) r.mons

let feed r n ~tick v =
  match find r n with None -> None | Some m -> observe m ~tick v

let all_alarms r =
  List.concat_map alarms r.mons
  |> List.stable_sort (fun a b ->
         match compare a.at_tick b.at_tick with
         | 0 -> compare a.monitor b.monitor
         | c -> c)

let total_suppressed r =
  List.fold_left (fun acc m -> acc + m.suppressed) 0 r.mons

let registry_json r =
  Json.Obj
    [
      ( "monitors",
        Json.Arr
          (List.map
             (fun m ->
               Json.Obj
                 [
                   ("name", Json.Str m.name);
                   ("kind", Json.Str (kind m));
                   ("observations", Json.int m.count);
                   ("warming_up", Json.Bool (warming_up m));
                   ("alarm_count", Json.int m.n_alarms);
                   ("suppressed", Json.int m.suppressed);
                 ])
             r.mons) );
      ("alarms", Json.Arr (List.map alarm_to_json (all_alarms r)));
    ]

let render r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (spf "drift monitors (%d):\n" (List.length r.mons));
  List.iter
    (fun m ->
      Buffer.add_string b
        (spf "  - %-24s %s: %d obs, %d alarm%s%s%s\n" m.name (kind m) m.count
           m.n_alarms
           (if m.n_alarms = 1 then "" else "s")
           (if m.suppressed > 0 then spf " (+%d suppressed)" m.suppressed
            else "")
           (if warming_up m then " [warming up]" else "")))
    r.mons;
  (match all_alarms r with
  | [] -> Buffer.add_string b "  no alarms\n"
  | als -> List.iter (fun a -> Buffer.add_string b (spf "  ! %s\n" a.detail)) als);
  Buffer.contents b
