(** Cross-artifact root-cause correlator: the "drift doctor".

    {!diagnose} reads up to four artifact families - a tuning journal
    ({!Journal}), a benchmark artifact ({!Bench_log}), a load/SLO report
    (the [loadgen] JSON, or a bare {!Slo} report) and live {!Drift}
    alarms - aligns them by canonical key, arch fingerprint and lineage
    hashes, and emits a machine-readable health report.

    Findings carry stable [DRxxx] codes:

    - [DR001] (critical) - the SLO verdict pages.
    - [DR002] (critical) - a drift monitor alarmed ("p99 shifted at tick
      T").
    - [DR003] (warning) - the SLO verdict tickets.
    - [DR010] (warning) - a canonical key was tuned under two or more
      arch fingerprints (device identity changed under the cache).
    - [DR011] (critical/warning) - two runs of the same key on the same
      arch disagree on the winning lineage; the finding names the
      earliest diverging stage ({!Journal.first_divergence}) and is
      critical when the later winner is slower beyond [time_tolerance].
    - [DR012] (warning) - surrogate mispredict (mean
      [|predicted/measured - 1|] over a run's model-guided variants)
      above [mispredict_threshold] on the latest run of a key.
    - [DR013] (warning) - cold tunes exceed the number of request
      classes: the canonical cache re-tuned something it had already
      seen (eviction / capacity loss).
    - [DR020] (warning) - a bench-artifact service quantile already
      exceeds the SLO latency budget (cross-artifact corroboration).
    - [DR030] (info) - the journal had undecodable (torn/corrupt) lines.
    - [DR040] (info) - the {!Ledger} report's dominant phase: the first
      candidate for the next perf PR.
    - [DR041] (warning) - scheduler queue wait owns more than 25% of
      modeled serve time (capacity, not phase work, is the bottleneck).
    - [DR042] (warning) - a cold-class phase p99 in the ledger is more
      than 2x the committed [ledger] bench experiment's
      ["phase:<name>"] quantile (the phase regressed vs the artifact).
    - [DR043] (info) - the exemplar jump: names the worst request's
      tick, serve class, dominant phase and journal run id, so one
      [explain]/[history --since] lands on the exact tuning run behind
      the slowest p99 bucket.
    - [DR050] (critical) - a journaled run's winner failed translation
      validation ([semantic_ok = Some false]): the tuned kernel does not
      compute its contraction, regardless of how fast it is.

    Critical findings carry ranked suspects - [semantic-failure],
    [arch-change], [kernel-regression], [surrogate-drift],
    [cache-eviction], [queue-wait], [phase-regression], falling back to
    [serving-regression] when no journal-side cause scores - with
    scores in [0, 1] derived from the corroborating findings.

    Everything here is pure over its inputs: no wall-clock reads, no RNG,
    so the same artifacts produce a bit-identical report. *)

type severity = Critical | Warning | Info

val severity_name : severity -> string

type finding = {
  code : string;  (** stable [DRxxx] id *)
  severity : severity;
  subject : string;  (** key label, monitor name, or experiment *)
  stage : string option;  (** earliest diverging lineage stage, if known *)
  suspects : (string * float) list;  (** ranked causes, score descending *)
  detail : string;
}

(** The load/SLO side of the correlation: parsed from a [loadgen] report
    (or a bare SLO report, which fills only [slo]). *)
type load = {
  slo : Slo.report option;
  alarms : Drift.alarm list;
  served : (string * int) list;  (** serve-class counts, e.g. ["tuned"] *)
  load_classes : int;  (** request classes in the replay mix *)
}

(** Accepts a full [loadgen] report (member ["slo"], optional ["drift"])
    or a bare {!Slo} report document. *)
val load_of_json : Json.t -> (load, string) result

type inputs = {
  journal : Journal.entry list;
  discarded : int;  (** undecodable journal lines *)
  bench : Bench_log.artifact option;
  load : load option;
  ledger : Ledger.report option;  (** from [loadgen --ledger-out] *)
  extra_alarms : Drift.alarm list;  (** live monitors beyond the report *)
}

val no_inputs : inputs

type report = {
  runs : int;
  keys : int;  (** distinct canonical keys in the journal *)
  archs : int;  (** distinct arch fingerprints in the journal *)
  findings : finding list;  (** severity-sorted, stable order *)
}

(** [mispredict_threshold] defaults to 0.5, [time_tolerance] (DR011
    critical band) to 0.25. *)
val diagnose :
  ?mispredict_threshold:float -> ?time_tolerance:float -> inputs -> report

val has_critical : report -> bool
val to_json : report -> Json.t
val render : report -> string
