(** Benchmark artifacts: the machine-readable output of [bench/main.exe].

    One {!artifact} holds one harness run: per-experiment wall time, raw
    per-run samples and OLS estimates (Bechamel micro-suite), service
    latency quantiles, and pipeline span timings aggregated from the
    {!Trace} events of the run. Artifacts serialize to JSON
    ([BENCH_<name>.json]), parse back losslessly ({!parse} of {!render} is
    the identity), and compare against a committed baseline through the
    statistical gate of {!Util.Stats.compare_samples} - Mann-Whitney over
    raw samples plus a bootstrap CI on the ratio of medians. *)

val schema_version : int

type quantiles = { q50 : float; q90 : float; q99 : float }

type span_agg = {
  cat : string;  (** trace category, e.g. "surf" *)
  span : string;  (** span name, e.g. "surf.iteration" *)
  count : int;
  total_s : float;
}

type experiment = {
  name : string;
  wall_s : float;
  samples_s : float list;  (** raw per-run samples; [[]] when unavailable *)
  ols_s : float option;  (** Bechamel OLS estimate of one run, in seconds *)
  quantiles : (string * quantiles) list;  (** named latency quantiles *)
  spans : span_agg list;
}

type artifact = {
  version : int;
  suite : string;
  experiments : experiment list;
}

(** Group completed spans by (category, name): count and summed duration. *)
val aggregate_spans : Trace.event list -> span_agg list

val make : ?suite:string -> experiment list -> artifact
val to_json : artifact -> Json.t

(** Pretty-printed JSON document (trailing newline included). *)
val render : artifact -> string

(** Inverse of {!render}; [Error] on invalid JSON or a missing field. *)
val parse : string -> (artifact, string) result

val write : string -> artifact -> unit
val read : string -> (artifact, string) result

type status = Regression | Improvement | Same | No_baseline

type delta = {
  exp : string;
  status : status;
  comparison : Util.Stats.comparison option;  (** [None] without a baseline entry *)
}

(** Compare each current experiment against the same-named baseline entry,
    on raw samples when present, else on the single wall time (where the
    comparator's small-n dominance rule applies). [min_ratio] defaults to
    a generous 1.5: a regression must be both statistically significant
    and at least that much slower. *)
val compare_artifacts :
  ?alpha:float ->
  ?min_ratio:float ->
  baseline:artifact ->
  current:artifact ->
  unit ->
  delta list

(** [true] iff no experiment regressed (missing baselines do not fail). *)
val gate : delta list -> bool

val status_name : status -> string

(** Delta table for humans, one row per experiment. *)
val render_deltas : delta list -> string
