(* Ring of sketch buckets over a deterministic logical clock. Slot state
   is reset lazily when a newer epoch first touches it; queries filter by
   epoch range, so a stale slot (clock jumped past it) is simply ignored
   until overwritten. *)

type slot = {
  mutable s_epoch : int;  (* -1 = never used *)
  mutable s_ok : int;
  mutable s_err : int;
  mutable s_sketch : Sketch.t;
}

type t = {
  alpha : float;
  w_width : int;
  ring : slot array;
}

let create ?(alpha = 0.01) ~width ~buckets () =
  if width < 1 then invalid_arg "Window.create: width must be >= 1";
  if buckets < 1 then invalid_arg "Window.create: buckets must be >= 1";
  {
    alpha;
    w_width = width;
    ring =
      Array.init buckets (fun _ ->
          { s_epoch = -1; s_ok = 0; s_err = 0; s_sketch = Sketch.create ~alpha () });
  }

let width t = t.w_width
let bucket_slots t = Array.length t.ring

let slot_for t epoch =
  let s = t.ring.(epoch mod Array.length t.ring) in
  if s.s_epoch <> epoch then begin
    (* lazy eviction: this slot last held an older epoch *)
    s.s_epoch <- epoch;
    s.s_ok <- 0;
    s.s_err <- 0;
    s.s_sketch <- Sketch.create ~alpha:t.alpha ()
  end;
  s

let observe t ~now ~ok latency =
  if now < 0 then invalid_arg "Window.observe: negative tick";
  let s = slot_for t (now / t.w_width) in
  if ok then s.s_ok <- s.s_ok + 1 else s.s_err <- s.s_err + 1;
  Sketch.add s.s_sketch latency

type snapshot = {
  snap_now : int;
  epochs : int;
  ticks : int;
  requests : int;
  errors : int;
  error_ratio : float;
  rate : float;
  sketch : Sketch.t;
}

(* Live slots for the epoch range (e_hi - k + 1 .. e_hi], ascending epoch
   order so sketch merges are deterministic. *)
let live t ~now ~last =
  let e_hi = now / t.w_width in
  let e_lo = max 0 (e_hi - last + 1) in
  Array.to_list t.ring
  |> List.filter (fun s -> s.s_epoch >= e_lo && s.s_epoch <= e_hi)
  |> List.sort (fun a b -> compare a.s_epoch b.s_epoch)

let snapshot ?last t ~now =
  let last = match last with Some k -> min k (Array.length t.ring) | None -> Array.length t.ring in
  let slots = live t ~now ~last in
  let requests = List.fold_left (fun acc s -> acc + s.s_ok + s.s_err) 0 slots in
  let errors = List.fold_left (fun acc s -> acc + s.s_err) 0 slots in
  let sketch =
    List.fold_left
      (fun acc s -> Sketch.merge acc s.s_sketch)
      (Sketch.create ~alpha:t.alpha ())
      slots
  in
  let ticks = min (last * t.w_width) (now + 1) in
  {
    snap_now = now;
    epochs = last;
    ticks;
    requests;
    errors;
    error_ratio = (if requests = 0 then 0.0 else float_of_int errors /. float_of_int requests);
    rate = (if ticks = 0 then 0.0 else float_of_int requests /. float_of_int ticks);
    sketch;
  }

let quantile snap p = Sketch.quantile snap.sketch p

type slot_view = {
  epoch : int;
  slot_requests : int;
  slot_errors : int;
  slot_p50 : float;
  slot_p99 : float;
}

let slots t ~now =
  live t ~now ~last:(Array.length t.ring)
  |> List.map (fun s ->
         {
           epoch = s.s_epoch;
           slot_requests = s.s_ok + s.s_err;
           slot_errors = s.s_err;
           slot_p50 = Sketch.quantile s.s_sketch 50.0;
           slot_p99 = Sketch.quantile s.s_sketch 99.0;
         })

(* Eight-level unicode sparkline, scaled to the max of the series; NaN and
   empty series render as spaces. *)
let sparkline values =
  let levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                  "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |] in
  let finite = List.filter (fun v -> Float.is_finite v) values in
  let vmax = List.fold_left Float.max 0.0 finite in
  values
  |> List.map (fun v ->
         if not (Float.is_finite v) || vmax <= 0.0 then " "
         else levels.(min 7 (int_of_float (v /. vmax *. 8.0))))
  |> String.concat ""

let ms v = if Float.is_nan v then "-" else Printf.sprintf "%.3f" (v *. 1e3)

let render t ~now =
  let views = slots t ~now in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "window @ tick %d: %d epochs live (width %d ticks)\n" now
       (List.length views) t.w_width);
  Buffer.add_string b
    (Printf.sprintf "  %-12s %8s %6s %10s %10s\n" "ticks" "reqs" "errs" "p50 ms" "p99 ms");
  List.iter
    (fun v ->
      Buffer.add_string b
        (Printf.sprintf "  %-12s %8d %6d %10s %10s\n"
           (Printf.sprintf "%d-%d" (v.epoch * t.w_width) (((v.epoch + 1) * t.w_width) - 1))
           v.slot_requests v.slot_errors (ms v.slot_p50) (ms v.slot_p99)))
    views;
  if views <> [] then
    Buffer.add_string b
      (Printf.sprintf "  p99 trend: %s\n" (sparkline (List.map (fun v -> v.slot_p99) views)));
  Buffer.contents b
