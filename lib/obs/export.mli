(** Exporters: Chrome trace-event JSON (loadable in chrome://tracing and
    Perfetto) and Prometheus-style text metrics. *)

(** Escape a string for inclusion inside a JSON string literal. *)
val json_escape : string -> string

(** Render spans as Chrome trace-event JSON ({v {"traceEvents":[...]} v}):
    one "B"/"E" pair per span with the required name/cat/ph/ts/pid/tid
    fields, span id, parent id and attributes in [args], plus process-name
    metadata naming each category's track. Begin/end pairs are emitted
    depth-first per domain, so they are balanced and correctly nested in
    file order. Timestamps are microseconds relative to the earliest span.
    A positive [dropped] (spans lost at the {!Trace.capacity} cap, see
    {!Trace.dropped}) is recorded in an [otherData] object. *)
val chrome_trace : ?dropped:int -> Trace.event list -> string

val write_chrome_trace : ?dropped:int -> string -> Trace.event list -> unit

(** Sanitize a user-derived metric name for the Prometheus exposition
    format: illegal characters map to [_], and a leading digit gains a [_]
    prefix so the result always matches [[a-zA-Z_][a-zA-Z0-9_]*]. *)
val metric_name : string -> string -> string

(** Escape a [# HELP] text per the exposition format: backslash and
    newline become [\\] and [\n]. *)
val help_escape : string -> string

(** Prometheus text exposition: counters as [<prefix>_<name>_total],
    timers as summaries ([_sum], [_count], quantiles 0.5/0.9/0.99 computed
    with {!Util.Stats.percentile}). Every metric carries [# HELP] and
    [# TYPE] lines; names are sanitized with {!metric_name}. *)
val prometheus :
  ?prefix:string ->
  counters:(string * int) list ->
  timers:(string * float list) list ->
  unit ->
  string

(** Native-histogram exposition sourced from quantile sketches: each timer
    [<prefix>_<name>_seconds] is a [# TYPE ... histogram] with cumulative
    [_bucket{le="..."}] lines over the sketch's log-bucket upper bounds
    (plus the mandatory [le="+Inf"]), [_sum] and [_count]; counters are
    rendered as in {!prometheus}. Bucket counts come straight from
    {!Sketch.buckets}, so exposition cost and size are O(buckets), not
    O(observations). Each timer also exposes two sketch-health gauges:
    [<prefix>_<name>_sketch_buckets] (live occupied-bucket count) and
    [<prefix>_<name>_sketch_collapsed] (1 once the [max_buckets] cap has
    collapsed low buckets, i.e. low quantiles may exceed the error
    bound). *)
val prometheus_sketches :
  ?prefix:string ->
  counters:(string * int) list ->
  sketches:(string * Sketch.t) list ->
  unit ->
  string
