(** Exporters: Chrome trace-event JSON (loadable in chrome://tracing and
    Perfetto) and Prometheus-style text metrics. *)

(** Escape a string for inclusion inside a JSON string literal. *)
val json_escape : string -> string

(** Render spans as Chrome trace-event JSON ({v {"traceEvents":[...]} v}):
    one "B"/"E" pair per span with the required name/cat/ph/ts/pid/tid
    fields, span id, parent id and attributes in [args], plus process-name
    metadata naming each category's track. Begin/end pairs are emitted
    depth-first per domain, so they are balanced and correctly nested in
    file order. Timestamps are microseconds relative to the earliest span. *)
val chrome_trace : Trace.event list -> string

val write_chrome_trace : string -> Trace.event list -> unit

(** Prometheus text exposition: counters as [<prefix>_<name>_total],
    timers as summaries ([_sum], [_count], quantiles 0.5/0.9/0.99 computed
    with {!Util.Stats.percentile}). Metric names are sanitized to
    [[a-zA-Z0-9_]]. *)
val prometheus :
  ?prefix:string ->
  counters:(string * int) list ->
  timers:(string * float list) list ->
  unit ->
  string
