(** Sliding time-windowed aggregation: a ring of {!Sketch} buckets over a
    deterministic logical clock.

    Time is an integer tick counter supplied by the caller (a request
    index, a simulation step - never a wall-clock read), split into epochs
    of [width] ticks. The ring holds [buckets] epochs; an observation at
    tick [now] lands in slot [(now/width) mod buckets], lazily evicting
    whatever older epoch occupied the slot. Eviction therefore depends
    only on the observed tick sequence, so replaying the same stream gives
    a bit-identical window state.

    Queries merge the sketches of the live epochs in a fixed (ascending
    epoch) order, so snapshots are deterministic too. Not domain-safe;
    callers serialize access. *)

type t

(** [create ~width ~buckets ()] - [width] ticks per epoch, [buckets]
    epochs in the ring, sketch accuracy [alpha] (default 0.01). Raises
    [Invalid_argument] unless both are >= 1. *)
val create : ?alpha:float -> width:int -> buckets:int -> unit -> t

val width : t -> int
val bucket_slots : t -> int

(** Record one request at logical tick [now]: whether it succeeded and its
    latency in seconds (failed requests feed the latency sketch too). *)
val observe : t -> now:int -> ok:bool -> float -> unit

(** Aggregate view over the last [last] epochs ending at [now]'s epoch
    (default: the whole ring). Epochs that were evicted - or never
    observed - contribute nothing. *)
type snapshot = {
  snap_now : int;
  epochs : int;  (** epochs the query covered (live or not) *)
  ticks : int;  (** covered ticks: [epochs * width], capped at [now+1] *)
  requests : int;
  errors : int;
  error_ratio : float;  (** errors/requests; [0.] when empty *)
  rate : float;  (** requests per tick over the covered span *)
  sketch : Sketch.t;  (** merged latency sketch of the covered epochs *)
}

val snapshot : ?last:int -> t -> now:int -> snapshot

(** [quantile snap p]: latency quantile of the merged sketch, [p] in
    [0, 100]; [nan] when the window saw no requests. *)
val quantile : snapshot -> float -> float

(** Per-epoch view of the live ring, oldest epoch first: epoch number,
    request/error counts and p50/p99, for dashboard rendering. *)
type slot_view = {
  epoch : int;
  slot_requests : int;
  slot_errors : int;
  slot_p50 : float;
  slot_p99 : float;
}

val slots : t -> now:int -> slot_view list

(** Text dashboard of the live ring at [now]: one row per epoch (ticks,
    requests, errors, p50/p99) plus a unicode sparkline of p99 across
    epochs. Deterministic for a given window state. *)
val render : t -> now:int -> string
