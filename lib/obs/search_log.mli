(** SURF convergence telemetry: one record per search iteration, built by
    {!Surf.Search.surf} and carried on its result, so every tune exposes how
    the search converged - best-so-far objective, pool coverage, and the
    surrogate's predictive quality ({!Util.Stats.r_squared} of the forest's
    predictions against the batch's measured objectives). *)

type iteration = {
  iter : int;  (** 0 = the initial random batch *)
  batch : int;  (** configurations evaluated this iteration *)
  evaluations : int;  (** cumulative, after this iteration *)
  pool_size : int;
  best_so_far : float;
  batch_best : float;
  batch_mean : float;
  r2 : float option;  (** surrogate quality; [None] for the random batch *)
  pred_std : float option;
      (** mean ensemble uncertainty ({!Surf.Forest.predict_std}) over the
          proposed batch; [None] for the initial random batch *)
}

(** Fraction of the pool evaluated so far (0 for an empty pool). *)
val coverage : iteration -> float

(** The best-so-far objective after each iteration. *)
val best_curve : iteration list -> float list

(** Whether the best-so-far sequence is non-increasing (it must be). *)
val monotone : iteration list -> bool

(** Human-readable convergence report. *)
val render : label:string -> iteration list -> string

(** Trace-span attributes for one iteration (best-so-far, R-squared, ...). *)
val span_attrs : iteration -> (string * string) list
