(* Multi-window burn-rate SLO evaluation over a Window ring. Pure over the
   window state: no clock reads, no RNG, so replayed traffic yields a
   bit-identical report. *)

type spec = {
  name : string;
  latency_p : float;
  latency_budget_s : float;
  error_objective : float;
  short_epochs : int;
  long_epochs : int;
  page_burn : float;
  ticket_burn : float;
}

let default_spec =
  {
    name = "serving";
    latency_p = 99.0;
    latency_budget_s = 0.005;
    error_objective = 0.01;
    short_epochs = 1;
    long_epochs = 8;
    page_burn = 10.0;
    ticket_burn = 2.0;
  }

type severity = Page | Ticket | Ok

let severity_name = function Page -> "page" | Ticket -> "ticket" | Ok -> "ok"

type alert = {
  objective : string;
  severity : severity;
  observed_short : float;
  observed_long : float;
  budget : float;
  burn_short : float;
  burn_long : float;
  detail : string;
}

type report = {
  spec : spec;
  at_tick : int;
  requests : int;
  alerts : alert list;
}

(* burn = observed/budget; 0 budget means any observation burns infinitely *)
let burn ~budget observed =
  if observed <= 0.0 || Float.is_nan observed then 0.0
  else if budget <= 0.0 then infinity
  else observed /. budget

let latency_alert spec (short : Window.snapshot) (long : Window.snapshot) =
  let p_short = Window.quantile short spec.latency_p in
  let p_long = Window.quantile long spec.latency_p in
  let over v = Float.is_finite v && v > spec.latency_budget_s in
  let severity =
    match (over p_short, over p_long) with
    | true, true -> Page
    | true, false | false, true -> Ticket
    | false, false -> Ok
  in
  {
    objective = "latency";
    severity;
    observed_short = p_short;
    observed_long = p_long;
    budget = spec.latency_budget_s;
    burn_short = burn ~budget:spec.latency_budget_s p_short;
    burn_long = burn ~budget:spec.latency_budget_s p_long;
    detail =
      Printf.sprintf "p%g %s: short %.6gs, long %.6gs vs budget %.6gs"
        spec.latency_p (severity_name severity) p_short p_long spec.latency_budget_s;
  }

let error_alert spec (short : Window.snapshot) (long : Window.snapshot) =
  let b_short = burn ~budget:spec.error_objective short.error_ratio in
  let b_long = burn ~budget:spec.error_objective long.error_ratio in
  let severity =
    if b_short >= spec.page_burn && b_long >= spec.page_burn then Page
    else if b_short >= spec.ticket_burn && b_long >= spec.ticket_burn then Ticket
    else Ok
  in
  {
    objective = "error-rate";
    severity;
    observed_short = short.error_ratio;
    observed_long = long.error_ratio;
    budget = spec.error_objective;
    burn_short = b_short;
    burn_long = b_long;
    detail =
      Printf.sprintf "error-rate %s: burn %.2fx short / %.2fx long vs objective %g"
        (severity_name severity) b_short b_long spec.error_objective;
  }

let severity_rank = function Page -> 0 | Ticket -> 1 | Ok -> 2

let evaluate spec window ~now =
  let short = Window.snapshot ~last:spec.short_epochs window ~now in
  let long = Window.snapshot ~last:spec.long_epochs window ~now in
  let alerts =
    [ latency_alert spec short long; error_alert spec short long ]
    |> List.stable_sort (fun a b -> compare (severity_rank a.severity) (severity_rank b.severity))
  in
  { spec; at_tick = now; requests = long.requests; alerts }

let ok r = not (List.exists (fun a -> a.severity = Page) r.alerts)

(* ---------------- JSON ---------------- *)

let spec_json s =
  Json.Obj
    [
      ("name", Json.Str s.name);
      ("latency_p", Json.Num s.latency_p);
      ("latency_budget_s", Json.Num s.latency_budget_s);
      ("error_objective", Json.Num s.error_objective);
      ("short_epochs", Json.int s.short_epochs);
      ("long_epochs", Json.int s.long_epochs);
      ("page_burn", Json.Num s.page_burn);
      ("ticket_burn", Json.Num s.ticket_burn);
    ]

let alert_json a =
  Json.Obj
    [
      ("objective", Json.Str a.objective);
      ("severity", Json.Str (severity_name a.severity));
      ("observed_short", Json.Num a.observed_short);
      ("observed_long", Json.Num a.observed_long);
      ("budget", Json.Num a.budget);
      ("burn_short", Json.Num a.burn_short);
      ("burn_long", Json.Num a.burn_long);
      ("detail", Json.Str a.detail);
    ]

let to_json r =
  Json.Obj
    [
      ("spec", spec_json r.spec);
      ("at_tick", Json.int r.at_tick);
      ("requests", Json.int r.requests);
      ("ok", Json.Bool (ok r));
      ("alerts", Json.Arr (List.map alert_json r.alerts));
    ]

let ( let* ) r f = Result.bind r f

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Result.Ok v
  | None -> Result.Error (Printf.sprintf "missing or invalid field %S" name)

let num name j = field name Json.get_num j
let str name j = field name Json.get_str j
let int_field name j = Result.map int_of_float (num name j)

let spec_of_json j =
  let* name = str "name" j in
  let* latency_p = num "latency_p" j in
  let* latency_budget_s = num "latency_budget_s" j in
  let* error_objective = num "error_objective" j in
  let* short_epochs = int_field "short_epochs" j in
  let* long_epochs = int_field "long_epochs" j in
  let* page_burn = num "page_burn" j in
  let* ticket_burn = num "ticket_burn" j in
  Result.Ok
    { name; latency_p; latency_budget_s; error_objective; short_epochs;
      long_epochs; page_burn; ticket_burn }

let severity_of_name = function
  | "page" -> Result.Ok Page
  | "ticket" -> Result.Ok Ticket
  | "ok" -> Result.Ok Ok
  | s -> Result.Error (Printf.sprintf "unknown severity %S" s)

let alert_of_json j =
  let* objective = str "objective" j in
  let* severity = Result.bind (str "severity" j) severity_of_name in
  let* observed_short = num "observed_short" j in
  let* observed_long = num "observed_long" j in
  let* budget = num "budget" j in
  let* burn_short = num "burn_short" j in
  let* burn_long = num "burn_long" j in
  let* detail = str "detail" j in
  Result.Ok
    { objective; severity; observed_short; observed_long; budget; burn_short;
      burn_long; detail }

let of_json j =
  let* spec =
    match Json.member "spec" j with
    | Some s -> spec_of_json s
    | None -> Result.Error "missing field \"spec\""
  in
  let* at_tick = int_field "at_tick" j in
  let* requests = int_field "requests" j in
  let* alerts =
    match Option.bind (Json.member "alerts" j) Json.get_arr with
    | None -> Result.Error "missing or invalid field \"alerts\""
    | Some items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* a = alert_of_json item in
          Result.Ok (a :: acc))
        (Result.Ok []) items
      |> Result.map List.rev
  in
  Result.Ok { spec; at_tick; requests; alerts }

let render r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "SLO %s @ tick %d (%d requests in the long window): %s\n"
       r.spec.name r.at_tick r.requests
       (if ok r then "OK" else "VIOLATED"));
  List.iter (fun a -> Buffer.add_string b (Printf.sprintf "  [%s] %s\n"
                                             (String.uppercase_ascii (severity_name a.severity))
                                             a.detail))
    r.alerts;
  Buffer.contents b

let spec_to_json = spec_json
