(* Hierarchical tracing: begin/end spans with parent linkage, recorded into
   a global sink that is disabled by default, so instrumented code costs one
   atomic load when tracing is off.

   Domain safety follows the Service.Scheduler discipline: every domain
   appends completed spans to its own buffer (domain-local storage, so no
   lock is taken on the span hot path); the buffers are registered once per
   domain under a mutex and merged at export. Parent linkage is a per-domain
   stack - spans opened on a worker domain are roots there, which is exactly
   how the work was actually scheduled. *)

type event = {
  id : int;
  parent : int option;
  name : string;
  cat : string;
  domain : int;
  t0 : float;  (* seconds, Unix epoch *)
  t1 : float;
  attrs : (string * string) list;
}

type span = { span_id : int; mutable extra : (string * string) list; live : bool }

let null_span = { span_id = 0; extra = []; live = false }

(* ---------------- global sink ---------------- *)

let enabled_flag = Atomic.make false
let next_id = Atomic.make 1
let registry_lock = Mutex.create ()

(* Per-domain buffers are capped so a runaway traced loop cannot grow the
   sink without bound; spans past the cap are counted, not recorded. *)
let default_capacity = 65536
let capacity_flag = Atomic.make default_capacity
let dropped_count = Atomic.make 0

(* One completed-span buffer per domain that ever traced; kept after the
   domain dies so its spans survive until export. [count] shadows the
   buffer length so the capacity check is O(1) on the span hot path; it is
   only ever mutated by the owning domain or under [registry_lock] while
   tracing is quiescent (clear). *)
type buffer = { events : event list ref; count : int ref }

let buffers : buffer list ref = ref []

type dstate = { mutable stack : int list; buf : buffer }

let dls : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let buf = { events = ref []; count = ref 0 } in
      Mutex.lock registry_lock;
      buffers := buf :: !buffers;
      Mutex.unlock registry_lock;
      { stack = []; buf })

let enabled () = Atomic.get enabled_flag

let capacity () = Atomic.get capacity_flag

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity: capacity must be >= 1";
  Atomic.set capacity_flag n

let dropped () = Atomic.get dropped_count

let clear () =
  Mutex.lock registry_lock;
  List.iter
    (fun b ->
      b.events := [];
      b.count := 0)
    !buffers;
  Mutex.unlock registry_lock;
  Atomic.set dropped_count 0

let start () =
  clear ();
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false

let events () =
  Mutex.lock registry_lock;
  let all = List.concat_map (fun b -> !(b.events)) !buffers in
  Mutex.unlock registry_lock;
  List.sort (fun a b -> compare (a.t0, a.id) (b.t0, b.id)) all

(* Append on the owning domain, honouring the capacity cap. *)
let push (buf : buffer) ev =
  if !(buf.count) >= Atomic.get capacity_flag then
    Atomic.incr dropped_count
  else begin
    buf.events := ev :: !(buf.events);
    incr buf.count
  end

(* ---------------- spans ---------------- *)

let add_attrs span kvs = if span.live then span.extra <- span.extra @ kvs

let with_span ?(cat = "") ?attrs name f =
  if not (Atomic.get enabled_flag) then f null_span
  else begin
    let d = Domain.DLS.get dls in
    let id = Atomic.fetch_and_add next_id 1 in
    let parent = match d.stack with [] -> None | p :: _ -> Some p in
    d.stack <- id :: d.stack;
    let span = { span_id = id; extra = []; live = true } in
    let t0 = Unix.gettimeofday () in
    let finish () =
      let t1 = Unix.gettimeofday () in
      (match d.stack with s :: rest when s = id -> d.stack <- rest | _ -> ());
      let attrs =
        (match attrs with None -> [] | Some thunk -> thunk ()) @ span.extra
      in
      push d.buf
        { id; parent; name; cat; domain = (Domain.self () :> int); t0; t1; attrs }
    in
    Fun.protect ~finally:finish (fun () -> f span)
  end

let timed ?cat ?attrs name f =
  let t0 = Unix.gettimeofday () in
  let r = with_span ?cat ?attrs name f in
  (r, Unix.gettimeofday () -. t0)

let instant ?(cat = "") ?(attrs = []) name =
  if Atomic.get enabled_flag then begin
    let d = Domain.DLS.get dls in
    let id = Atomic.fetch_and_add next_id 1 in
    let parent = match d.stack with [] -> None | p :: _ -> Some p in
    let t = Unix.gettimeofday () in
    push d.buf
      { id; parent; name; cat; domain = (Domain.self () :> int); t0 = t; t1 = t; attrs }
  end

(* Run [f] with tracing enabled on a fresh sink; return its value and the
   merged events, restoring the previous sink state afterwards. *)
let collect f =
  let was = enabled () in
  start ();
  let finish () =
    stop ();
    if was then Atomic.set enabled_flag true
  in
  let r = Fun.protect ~finally:finish f in
  let evs = events () in
  (r, evs)
