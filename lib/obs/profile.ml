(* Kernel roofline profiler: a global, disabled-by-default sink that
   accumulates one sample per kernel launch the autotuner evaluates
   (Autotune.Evaluator feeds it), plus pure aggregations over the samples:
   per-variant time buckets by roofline bound, top-N kernels by DRAM
   traffic, occupancy histograms and model-predicted vs measured
   divergence per architecture.

   Obs cannot see Gpusim's types (codegen sits between them), so the
   sample is a flat mirror of the fields of Gpusim.Perf.kernel_report the
   reports care about; the adapter lives in the evaluator.

   Recording is off by default (one atomic load per call) and touches no
   RNG state, so enabling it cannot perturb a tuning run: results are
   bit-identical with profiling on or off. Samples from worker domains
   append under a mutex; all aggregations sort, so reports are
   deterministic for a given sample multiset. *)

type sample = {
  arch : string;
  variant : string;  (* IR label of the program being evaluated *)
  kernel : string;
  bound : string;  (* "dp" | "issue" | "memory" | "launch" *)
  t_dp : float;
  t_issue : float;
  t_mem : float;
  t_launch : float;
  model_s : float;  (* noise-free roofline time *)
  measured_s : float;  (* simulated measurement (model + codegen noise) *)
  dram_bytes : float;
  l2_bytes : float;
  occupancy : float;
}

let on = Atomic.make false
let lock = Mutex.create ()
let sink : sample list ref = ref []

let enabled () = Atomic.get on

let clear () =
  Mutex.protect lock (fun () -> sink := [])

let start () =
  clear ();
  Atomic.set on true

let stop () = Atomic.set on false

let record s =
  if Atomic.get on then Mutex.protect lock (fun () -> sink := s :: !sink)

let samples () = Mutex.protect lock (fun () -> List.rev !sink)

let collect f =
  let was = enabled () in
  start ();
  Fun.protect
    ~finally:(fun () -> if not was then stop ())
    (fun () ->
      let r = f () in
      (r, samples ()))

(* ---------------- aggregations ---------------- *)

let bounds = [ "dp"; "issue"; "memory"; "launch" ]

type bucket = { bound : string; count : int; total_s : float }

let buckets_of ss =
  List.filter_map
    (fun bound ->
      let hits = List.filter (fun (s : sample) -> s.bound = bound) ss in
      match hits with
      | [] -> None
      | _ ->
        Some
          {
            bound;
            count = List.length hits;
            total_s = List.fold_left (fun acc (s : sample) -> acc +. s.measured_s) 0.0 hits;
          })
    bounds

let variant_buckets ss =
  let variants = List.sort_uniq compare (List.map (fun s -> s.variant) ss) in
  List.map (fun v -> (v, buckets_of (List.filter (fun s -> s.variant = v) ss))) variants

(* Top-N distinct kernels by total DRAM traffic across their evaluations. *)
type kernel_traffic = {
  k_kernel : string;
  k_variant : string;
  evals : int;
  total_dram_bytes : float;
  total_l2_bytes : float;
  mean_time_s : float;
}

let top_dram ~n ss =
  let keys = List.sort_uniq compare (List.map (fun s -> (s.variant, s.kernel)) ss) in
  let rows =
    List.map
      (fun (v, k) ->
        let hits = List.filter (fun s -> s.variant = v && s.kernel = k) ss in
        let evals = List.length hits in
        {
          k_kernel = k;
          k_variant = v;
          evals;
          total_dram_bytes = List.fold_left (fun acc s -> acc +. s.dram_bytes) 0.0 hits;
          total_l2_bytes = List.fold_left (fun acc s -> acc +. s.l2_bytes) 0.0 hits;
          mean_time_s =
            List.fold_left (fun acc s -> acc +. s.measured_s) 0.0 hits /. float_of_int evals;
        })
      keys
  in
  let sorted =
    List.sort
      (fun a b ->
        match compare b.total_dram_bytes a.total_dram_bytes with
        | 0 -> compare (a.k_variant, a.k_kernel) (b.k_variant, b.k_kernel)
        | c -> c)
      rows
  in
  List.filteri (fun i _ -> i < n) sorted

(* Histogram of occupancies in [0, 1], ten 0.1-wide bins. *)
let occupancy_histogram ss =
  let counts = Array.make 10 0 in
  List.iter
    (fun s ->
      let bin = min 9 (max 0 (int_of_float (s.occupancy *. 10.0))) in
      counts.(bin) <- counts.(bin) + 1)
    ss;
  List.init 10 (fun i ->
      (Printf.sprintf "%.1f-%.1f" (0.1 *. float_of_int i) (0.1 *. float_of_int (i + 1)), counts.(i)))

(* Model-predicted vs measured divergence, per architecture: the relative
   error |measured/model - 1| over every sample on that arch. *)
type divergence = { n : int; mean_rel : float; max_rel : float }

let divergence_by_arch ss =
  let archs = List.sort_uniq compare (List.map (fun s -> s.arch) ss) in
  List.map
    (fun a ->
      let rels =
        List.filter_map
          (fun s ->
            if s.arch = a && s.model_s > 0.0 then
              Some (abs_float ((s.measured_s /. s.model_s) -. 1.0))
            else None)
          ss
      in
      ( a,
        {
          n = List.length rels;
          mean_rel = Util.Stats.mean rels;
          max_rel = (match rels with [] -> nan | _ -> Util.Stats.max_list rels);
        } ))
    archs

(* ---------------- report ---------------- *)

let render ?(top = 10) ss =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "Kernel roofline profile: %d kernel evaluations, %d variants, %d arch(s)"
    (List.length ss)
    (List.length (List.sort_uniq compare (List.map (fun s -> s.variant) ss)))
    (List.length (List.sort_uniq compare (List.map (fun s -> s.arch) ss)));
  if ss <> [] then begin
    line "";
    line "Per-variant time by roofline bound:";
    List.iter
      (fun (v, bks) ->
        let total = List.fold_left (fun acc b -> acc +. b.total_s) 0.0 bks in
        line "  %s" v;
        List.iter
          (fun b ->
            line "    %-7s %5d evals  %10.3gs  (%4.1f%%)" b.bound b.count b.total_s
              (100.0 *. b.total_s /. total))
          bks)
      (variant_buckets ss);
    line "";
    line "Top %d kernels by DRAM traffic:" top;
    line "  %-28s %-14s %6s %12s %12s %12s" "kernel" "variant" "evals" "DRAM MB" "L2 MB"
      "mean time s";
    List.iter
      (fun t ->
        line "  %-28s %-14s %6d %12.2f %12.2f %12.3g" t.k_kernel t.k_variant t.evals
          (t.total_dram_bytes /. 1e6) (t.total_l2_bytes /. 1e6) t.mean_time_s)
      (top_dram ~n:top ss);
    line "";
    line "Occupancy histogram (fraction of peak resident warps):";
    List.iter
      (fun (label, count) ->
        if count > 0 then
          line "  %s %6d %s" label count (String.make (min 60 count) '#'))
      (occupancy_histogram ss);
    line "";
    line "Model-predicted vs measured divergence per arch:";
    List.iter
      (fun (a, d) ->
        line "  %-12s n=%-6d mean |rel| %.3f%%  max |rel| %.3f%%" a d.n
          (100.0 *. d.mean_rel) (100.0 *. d.max_rel))
      (divergence_by_arch ss)
  end;
  Buffer.contents buf
