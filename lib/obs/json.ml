(* Minimal JSON: just enough for the benchmark artifacts to round-trip
   without an external dependency. Numbers are floats (ints render without
   a fractional part); non-finite floats serialize as null and parse back
   as nan where a number is expected. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let int i = Num (float_of_int i)

(* ---------------- rendering ---------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_num x =
  if Float.is_integer x && abs_float x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let to_string ?(indent = false) v =
  let buf = Buffer.create 1024 in
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x when not (Float.is_finite x) -> Buffer.add_string buf "null"
    | Num x -> Buffer.add_string buf (render_num x)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if indent then "\": " else "\":");
          go (depth + 1) item)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

exception Parse_error of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          (* decode the BMP code point to UTF-8 *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end;
          pos := !pos + 4
        | c -> fail (Printf.sprintf "bad escape %C" c));
        advance ();
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      && (match s.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false)
    do
      advance ()
    done;
    let span = String.sub s start (!pos - start) in
    match float_of_string_opt span with
    | Some x -> Num x
    | None -> fail (Printf.sprintf "bad number %S" span)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        Arr (List.rev !items)
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---------------- accessors ---------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let get_num = function
  | Num x -> Some x
  | Null -> Some nan  (* non-finite floats serialize as null *)
  | _ -> None

let get_str = function Str s -> Some s | _ -> None
let get_arr = function Arr items -> Some items | _ -> None
