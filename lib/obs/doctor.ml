(* Cross-artifact root-cause correlator. Pure over its inputs: every
   finding and score is a deterministic function of the journal entries,
   bench artifact, load report and alarms handed in, so the same artifacts
   produce a bit-identical report (the CI smoke relies on this). *)

let spf = Printf.sprintf

type severity = Critical | Warning | Info

let severity_name = function
  | Critical -> "critical"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Critical -> 0 | Warning -> 1 | Info -> 2

type finding = {
  code : string;
  severity : severity;
  subject : string;
  stage : string option;
  suspects : (string * float) list;
  detail : string;
}

type load = {
  slo : Slo.report option;
  alarms : Drift.alarm list;
  served : (string * int) list;
  load_classes : int;
}

let load_of_json j =
  match Json.member "slo" j with
  | Some slo_j -> (
    (* full loadgen report *)
    match Slo.of_json slo_j with
    | Error e -> Error (spf "bad slo member: %s" e)
    | Ok slo ->
      let alarms =
        match
          Option.bind (Json.member "drift" j) (Json.member "alarms")
          |> Fun.flip Option.bind Json.get_arr
        with
        | None -> []
        | Some l -> List.filter_map Drift.alarm_of_json l
      in
      let served =
        match Json.member "served" j with
        | Some (Json.Obj kvs) ->
          List.filter_map
            (fun (k, v) ->
              Option.map (fun n -> (k, int_of_float n)) (Json.get_num v))
            kvs
        | _ -> []
      in
      let load_classes =
        match Option.bind (Json.member "classes" j) Json.get_arr with
        | Some l -> List.length l
        | None -> 0
      in
      Ok { slo = Some slo; alarms; served; load_classes })
  | None -> (
    (* bare SLO report *)
    match Slo.of_json j with
    | Ok slo -> Ok { slo = Some slo; alarms = []; served = []; load_classes = 0 }
    | Error e -> Error e)

type inputs = {
  journal : Journal.entry list;
  discarded : int;
  bench : Bench_log.artifact option;
  load : load option;
  ledger : Ledger.report option;
  extra_alarms : Drift.alarm list;
}

let no_inputs =
  {
    journal = [];
    discarded = 0;
    bench = None;
    load = None;
    ledger = None;
    extra_alarms = [];
  }

type report = {
  runs : int;
  keys : int;
  archs : int;
  findings : finding list;
}

(* ------------------------------------------------------------------ *)
(* journal groupings *)

(* The canonical service key embeds the arch fingerprint, so grouping by
   it would hide arch changes; the canonical DSL source is the identity
   that survives a device swap. *)
let group_id (e : Journal.entry) = e.dsl

let uniq xs = List.sort_uniq compare xs

(* (group id, entries in file order) with first-appearance group order *)
let groups entries =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let id = group_id e in
      match Hashtbl.find_opt tbl id with
      | Some l -> l := e :: !l
      | None ->
        let l = ref [ e ] in
        Hashtbl.add tbl id l;
        order := id :: !order)
    entries;
  List.rev_map (fun id -> (id, List.rev !(Hashtbl.find tbl id))) !order

let subject_of = function
  | (e : Journal.entry) :: _ -> e.label
  | [] -> "?"

(* Mean |predicted/measured - 1| over a run's model-guided variants; None
   when the run had no usable predictions. *)
let mispredict (e : Journal.entry) =
  let rs =
    List.filter_map
      (fun (v : Journal.variant) ->
        match v.predicted with
        | Some p when v.measured > 0. ->
          Some (Float.abs ((p /. v.measured) -. 1.))
        | _ -> None)
      e.variants
  in
  match rs with
  | [] -> None
  | _ ->
    Some (List.fold_left ( +. ) 0. rs /. float_of_int (List.length rs))

(* ------------------------------------------------------------------ *)
(* checks; each returns findings in a deterministic order *)

let check_arch_changes gs =
  List.filter_map
    (fun (_, entries) ->
      let archs = uniq (List.map (fun (e : Journal.entry) -> e.arch) entries) in
      if List.length archs < 2 then None
      else
        Some
          {
            code = "DR010";
            severity = Warning;
            subject = subject_of entries;
            stage = None;
            suspects = [ ("arch-change", 1.0) ];
            detail =
              spf "key %s tuned under %d arch fingerprints (%s)"
                (subject_of entries) (List.length archs)
                (String.concat ", " (List.map Journal.arch_name archs));
          })
    gs

let check_kernel_drift ~time_tolerance gs =
  List.concat_map
    (fun (_, entries) ->
      let archs = uniq (List.map (fun (e : Journal.entry) -> e.arch) entries) in
      List.concat_map
        (fun arch ->
          let runs =
            List.filter (fun (e : Journal.entry) -> e.arch = arch) entries
          in
          let rec pairs = function
            | (a : Journal.entry) :: (b : Journal.entry) :: rest -> (
              match
                Journal.first_divergence a.winner.lineage b.winner.lineage
              with
              | None -> pairs (b :: rest)
              | Some stage ->
                let ratio =
                  if a.winner.measured <= 0. then infinity
                  else b.winner.measured /. a.winner.measured
                in
                let critical = ratio > 1. +. time_tolerance in
                {
                  code = "DR011";
                  severity = (if critical then Critical else Warning);
                  subject = subject_of runs;
                  stage = Some stage;
                  suspects =
                    [ ("kernel-regression", if critical then 1.0 else 0.5) ];
                  detail =
                    spf
                      "winner lineage for %s on %s diverges at the %s stage \
                       between runs %s and %s (time ratio %.3g)"
                      (subject_of runs) (Journal.arch_name arch) stage
                      (Journal.short a.run_id) (Journal.short b.run_id) ratio;
                }
                :: pairs (b :: rest))
            | _ -> []
          in
          pairs runs)
        archs)
    gs

let check_surrogate ~mispredict_threshold gs =
  List.filter_map
    (fun (_, entries) ->
      match List.rev entries with
      | [] -> None
      | (latest : Journal.entry) :: _ -> (
        match mispredict latest with
        | Some m when m > mispredict_threshold ->
          Some
            {
              code = "DR012";
              severity = Warning;
              subject = subject_of entries;
              stage = None;
              suspects =
                [
                  ( "surrogate-drift",
                    Float.min 1.0 (m /. (2. *. mispredict_threshold)) );
                ];
              detail =
                spf
                  "surrogate mispredict %.3g on run %s of %s (threshold %g): \
                   the model no longer predicts measured times"
                  m (Journal.short latest.run_id) (subject_of entries)
                  mispredict_threshold;
            }
        | _ -> None))
    gs

let check_cache load =
  match load with
  | None -> []
  | Some l ->
    let tuned =
      match List.assoc_opt "tuned" l.served with Some n -> n | None -> 0
    in
    if l.load_classes > 0 && tuned > l.load_classes then
      [
        {
          code = "DR013";
          severity = Warning;
          subject = "canonical-cache";
          stage = None;
          suspects = [ ("cache-eviction", 0.9) ];
          detail =
            spf
              "%d cold tunes for %d request classes: the canonical cache \
               re-tuned keys it had already seen (eviction or capacity loss)"
              tuned l.load_classes;
        };
      ]
    else []

let check_bench bench load =
  match (bench, load) with
  | Some (b : Bench_log.artifact), Some { slo = Some (s : Slo.report); _ } ->
    List.concat_map
      (fun (e : Bench_log.experiment) ->
        List.filter_map
          (fun (qname, (q : Bench_log.quantiles)) ->
            if q.q99 > s.spec.latency_budget_s then
              Some
                {
                  code = "DR020";
                  severity = Warning;
                  subject = spf "%s/%s" e.name qname;
                  stage = None;
                  suspects = [ ("serving-regression", 0.6) ];
                  detail =
                    spf
                      "bench artifact %s/%s p99 %.3g s already exceeds the \
                       SLO latency budget %.3g s"
                      e.name qname q.q99 s.spec.latency_budget_s;
                }
            else None)
          e.quantiles)
      b.experiments
  | _ -> []

let check_discarded n =
  if n <= 0 then []
  else
    [
      {
        code = "DR030";
        severity = Info;
        subject = "journal";
        stage = None;
        suspects = [];
        detail =
          spf "%d journal line%s discarded (torn or corrupt)" n
            (if n = 1 then "" else "s");
      };
    ]

(* ---------------- ledger checks (DR04x) ---------------- *)

let check_ledger_dominant ledger =
  match ledger with
  | None -> []
  | Some (r : Ledger.report) -> (
    match r.Ledger.lr_phase_share with
    | [] -> []
    | (p, share) :: _ ->
      [
        {
          code = "DR040";
          severity = Info;
          subject = "ledger";
          stage = None;
          suspects = [];
          detail =
            spf
              "phase %s dominates modeled serve time (%.1f%% of %d requests): \
               it is the first candidate for the next perf PR"
              (Ledger.phase_name p) (100. *. share) r.Ledger.lr_requests;
        };
      ])

(* Queue wait is pure scheduling, not work: when it owns more than a
   quarter of modeled time, adding capacity beats optimizing any phase. *)
let check_ledger_queue ledger =
  match ledger with
  | None -> []
  | Some (r : Ledger.report) -> (
    match List.assoc_opt Ledger.Queue r.Ledger.lr_phase_share with
    | Some share when share > 0.25 ->
      [
        {
          code = "DR041";
          severity = Warning;
          subject = "scheduler-queue";
          stage = None;
          suspects = [ ("queue-wait", Float.min 1.0 (share /. 0.5)) ];
          detail =
            spf
              "scheduler queue wait owns %.1f%% of modeled serve time \
               (threshold 25%%): batch slots, not phase work, dominate p99"
              (100. *. share);
        };
      ]
    | _ -> [])

(* Cold-class phase p99 against the committed ledger bench experiment
   (quantile keys "phase:<name>"): a 2x ratio means the serving replay sees
   a phase far above what the bench artifact says it costs. *)
let check_ledger_bench ledger bench =
  match (ledger, bench) with
  | Some (r : Ledger.report), Some (b : Bench_log.artifact) ->
    let baseline =
      List.concat_map
        (fun (e : Bench_log.experiment) ->
          if e.name = "ledger" then e.quantiles else [])
        b.experiments
    in
    List.filter_map
      (fun (cls, p, (s : Ledger.stat)) ->
        if cls <> Ledger.Cold then None
        else
          match
            List.assoc_opt (spf "phase:%s" (Ledger.phase_name p)) baseline
          with
          | Some (q : Bench_log.quantiles)
            when q.q99 > 0. && s.Ledger.st_p99_s > 2. *. q.q99 ->
            Some
              {
                code = "DR042";
                severity = Warning;
                subject = spf "phase/%s" (Ledger.phase_name p);
                stage = None;
                suspects =
                  [
                    ( "phase-regression",
                      Float.min 1.0 (s.Ledger.st_p99_s /. (4. *. q.q99)) );
                  ];
                detail =
                  spf
                    "cold %s p99 %.3g s is %.1fx the ledger bench baseline \
                     %.3g s: this phase regressed since the artifact was \
                     committed"
                    (Ledger.phase_name p) s.Ledger.st_p99_s
                    (s.Ledger.st_p99_s /. q.q99) q.q99;
              }
          | _ -> None)
      r.Ledger.lr_cells
  | _ -> []

(* The exemplar jump: from the worst p99 bucket straight to the journal
   run that produced it. *)
let check_ledger_exemplar ledger =
  match ledger with
  | None -> []
  | Some (r : Ledger.report) -> (
    match r.Ledger.lr_worst with
    | Some (e : Ledger.exemplar) ->
      [
        {
          code = "DR043";
          severity = Info;
          subject = "exemplar";
          stage = None;
          suspects = [];
          detail =
            spf
              "worst request: tick %d, %s serve, %.3g s, dominated by %s%s%s"
              e.Ledger.ex_tick
              (Ledger.class_name e.Ledger.ex_class)
              e.Ledger.ex_latency_s
              (Ledger.phase_name e.Ledger.ex_phase)
              (match e.Ledger.ex_label with
              | Some l -> spf " (key %s)" l
              | None -> "")
              (match e.Ledger.ex_run_id with
              | Some id ->
                spf " - inspect with: explain %s / history --since %s"
                  (Journal.short id) (Journal.short id)
              | None -> "");
        };
      ]
    | None -> [])

(* ---------------- semantic-validation check (DR050) ---------------- *)

(* A journaled run whose winner failed translation validation is the most
   serious finding the doctor can raise: the tuned configuration computes
   the wrong contraction, regardless of how fast it is. *)
let check_semantic entries =
  List.filter_map
    (fun (e : Journal.entry) ->
      match e.semantic_ok with
      | Some false ->
        Some
          {
            code = "DR050";
            severity = Critical;
            subject = e.label;
            stage = None;
            suspects = [ ("semantic-failure", 1.0) ];
            detail =
              spf
                "run %s: winner FAILED translation validation - the tuned \
                 kernel does not compute its contraction; do not deploy \
                 (inspect with: explain %s)"
                (Journal.short e.run_id) (Journal.short e.run_id);
          }
      | _ -> None)
    entries

(* Ranked suspects for the critical (symptom) findings, scored from the
   corroborating (cause) findings; falls back to serving-regression when
   nothing journal-side scores. *)
let attribution cause_findings =
  let score name =
    List.fold_left
      (fun acc f ->
        List.fold_left
          (fun acc (n, s) -> if n = name then Float.max acc s else acc)
          acc f.suspects)
      0. cause_findings
  in
  let names =
    [
      "semantic-failure"; "arch-change"; "kernel-regression"; "surrogate-drift";
      "cache-eviction"; "queue-wait"; "phase-regression";
    ]
  in
  let scored =
    List.filter_map
      (fun n ->
        let s = score n in
        if s > 0. then Some (n, s) else None)
      names
  in
  match scored with
  | [] -> [ ("serving-regression", 0.25) ]
  | _ ->
    List.stable_sort (fun (_, a) (_, b) -> compare (b : float) a) scored

let stage_of cause_findings =
  List.find_map
    (fun f -> if f.code = "DR011" then f.stage else None)
    cause_findings

let check_slo load ~suspects ~stage =
  match load with
  | None -> []
  | Some { slo = None; _ } -> []
  | Some { slo = Some (r : Slo.report); _ } ->
    List.filter_map
      (fun (a : Slo.alert) ->
        match a.severity with
        | Slo.Ok -> None
        | Slo.Page ->
          Some
            {
              code = "DR001";
              severity = Critical;
              subject = spf "%s/%s" r.spec.name a.objective;
              stage;
              suspects;
              detail = spf "SLO pages at tick %d: %s" r.at_tick a.detail;
            }
        | Slo.Ticket ->
          Some
            {
              code = "DR003";
              severity = Warning;
              subject = spf "%s/%s" r.spec.name a.objective;
              stage = None;
              suspects = [];
              detail = spf "SLO tickets at tick %d: %s" r.at_tick a.detail;
            })
      r.alerts

let check_alarms alarms ~suspects ~stage =
  List.map
    (fun (a : Drift.alarm) ->
      {
        code = "DR002";
        severity = Critical;
        subject = a.monitor;
        stage;
        suspects;
        detail = a.detail;
      })
    alarms

(* ------------------------------------------------------------------ *)

let diagnose ?(mispredict_threshold = 0.5) ?(time_tolerance = 0.25) inputs =
  let gs = groups inputs.journal in
  let causes =
    check_semantic inputs.journal
    @ check_arch_changes gs
    @ check_kernel_drift ~time_tolerance gs
    @ check_surrogate ~mispredict_threshold gs
    @ check_cache inputs.load
    @ check_ledger_queue inputs.ledger
    @ check_ledger_bench inputs.ledger inputs.bench
  in
  let suspects = attribution causes in
  let stage = stage_of causes in
  let alarms =
    (match inputs.load with None -> [] | Some l -> l.alarms)
    @ inputs.extra_alarms
  in
  let findings =
    check_slo inputs.load ~suspects ~stage
    @ check_alarms alarms ~suspects ~stage
    @ causes
    @ check_bench inputs.bench inputs.load
    @ check_ledger_dominant inputs.ledger
    @ check_ledger_exemplar inputs.ledger
    @ check_discarded inputs.discarded
  in
  let findings =
    List.stable_sort
      (fun a b ->
        match compare (severity_rank a.severity) (severity_rank b.severity) with
        | 0 -> (
          match compare a.code b.code with
          | 0 -> compare a.subject b.subject
          | c -> c)
        | c -> c)
      findings
  in
  {
    runs = List.length inputs.journal;
    keys = List.length gs;
    archs =
      List.length
        (uniq (List.map (fun (e : Journal.entry) -> e.arch) inputs.journal));
    findings;
  }

let has_critical r =
  List.exists (fun f -> f.severity = Critical) r.findings

let finding_to_json f =
  Json.Obj
    ([
       ("code", Json.Str f.code);
       ("severity", Json.Str (severity_name f.severity));
       ("subject", Json.Str f.subject);
     ]
    @ (match f.stage with None -> [] | Some s -> [ ("stage", Json.Str s) ])
    @ [
        ( "suspects",
          Json.Arr
            (List.map
               (fun (n, s) -> Json.Arr [ Json.Str n; Json.Num s ])
               f.suspects) );
        ("detail", Json.Str f.detail);
      ])

let count sev r =
  List.length (List.filter (fun f -> f.severity = sev) r.findings)

let to_json r =
  Json.Obj
    [
      ("schema_version", Json.int 1);
      ("runs", Json.int r.runs);
      ("keys", Json.int r.keys);
      ("archs", Json.int r.archs);
      ("critical", Json.int (count Critical r));
      ("warning", Json.int (count Warning r));
      ("info", Json.int (count Info r));
      ("findings", Json.Arr (List.map finding_to_json r.findings));
    ]

let render r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (spf "doctor: %d run%s, %d key%s, %d arch%s - %d critical, %d warning, %d \
          info\n"
       r.runs
       (if r.runs = 1 then "" else "s")
       r.keys
       (if r.keys = 1 then "" else "s")
       r.archs
       (if r.archs = 1 then "" else "s")
       (count Critical r) (count Warning r) (count Info r));
  if r.findings = [] then Buffer.add_string b "  healthy: no findings\n"
  else
    List.iter
      (fun f ->
        Buffer.add_string b
          (spf "  [%s] %s %s - %s\n"
             (String.uppercase_ascii (severity_name f.severity))
             f.code f.subject f.detail);
        (match f.stage with
        | Some s ->
          Buffer.add_string b (spf "      earliest diverging stage: %s\n" s)
        | None -> ());
        match f.suspects with
        | [] -> ()
        | ss ->
          Buffer.add_string b
            (spf "      suspects: %s\n"
               (String.concat ", "
                  (List.map (fun (n, s) -> spf "%s (%.2f)" n s) ss))))
      r.findings;
  Buffer.contents b
