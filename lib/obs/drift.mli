(** Online change-point detection over metric streams.

    Three composable detectors, each allocation-bounded (state is O(1) or
    O(max_buckets) for the sketch-based test, alarms capped at
    {!max_alarms} per monitor) and fully deterministic: observing the same
    (tick, value) sequence twice fires alarms at identical ticks with
    identical statistics. No wall-clock reads, no RNG draws.

    - {b Page-Hinkley}: two-sided test on the running mean. Maintains
      [m_t = sum_i (x_i - mean_i - delta)] and its running minimum; alarms
      when [m_t - min_t > lambda]. Suited to streams with a known absolute
      scale (hit rates in [0,1], mispredict ratios), where [delta] can be
      chosen as the half-width of tolerated drift. With bounded jitter
      [|x - mean| <= delta] the increment is strictly negative, so the
      false-alarm probability on such a stationary stream is exactly 0;
      after a mean shift of [s > delta] the statistic grows by at least
      [s - delta] per tick, so detection delay is at most
      [lambda / (s - delta)] ticks.

    - {b CUSUM}: standardized cumulative sum against a frozen reference
      window. The first [ref_count] observations calibrate [mu0, sigma0];
      then [s+ = max 0 (s+ + z - slack)] / [s- = max 0 (s- - z - slack)]
      with [z = (x - mu0)/sigma0] alarm above [threshold]. Self-scaling:
      no absolute units needed, suited to latency streams.

    - {b Quantile shift}: tumbling windows of [window] observations are
      sketched ({!Sketch}); the first [ref_windows] windows are merged
      into a frozen reference, after which each completed window's
      [p]-quantile is compared to the reference's. Alarms when the ratio
      exceeds [ratio * gamma^2] (resp. falls below its inverse), where
      [gamma = (1+alpha)/(1-alpha)] absorbs the sketch's own relative
      error so a ratio alarm can never be a sketch artifact.

    Monitors are not domain-safe; callers serialize access (see
    {!Service.Metrics}). After an alarm the detector resets to a fresh
    calibration phase, so repeated alarms reflect repeated shifts. *)

type direction = Up | Down

type alarm = {
  monitor : string;  (** owning monitor name *)
  at_tick : int;  (** logical tick of the firing observation *)
  direction : direction;
  statistic : float;  (** detector statistic at firing *)
  threshold : float;  (** configured alarm threshold *)
  observed : float;  (** the observation (or window quantile) that fired *)
  reference : float;  (** calibrated baseline (mean, mu0, or ref quantile) *)
  detail : string;  (** human-readable one-liner *)
}

type t

(** Hard cap on retained alarms per monitor; further alarms are counted in
    {!suppressed} but not stored, keeping monitors allocation-bounded. *)
val max_alarms : int

(** [page_hinkley name] with tolerated drift half-width [delta] (default
    0.05), alarm threshold [lambda] (default 3.0) and a warm-up of
    [min_count] observations (default 30) before alarms may fire. *)
val page_hinkley :
  ?delta:float -> ?lambda:float -> ?min_count:int -> string -> t

(** [cusum name] calibrating on the first [ref_count] observations
    (default 500), with per-step slack [k] in sigma units (default 0.5)
    and alarm threshold [h] in sigma units (default 15.0). *)
val cusum : ?ref_count:int -> ?k:float -> ?h:float -> string -> t

(** [quantile_shift name] comparing the [p]th percentile (default 99) of
    each [window]-observation tumbling window (default 250) against the
    merged reference of the first [ref_windows] windows (default 2),
    alarming when the ratio leaves [1/r, r] for
    [r = ratio * ((1+alpha)/(1-alpha))^2] (default ratio 2.0, alpha
    0.01). *)
val quantile_shift :
  ?p:float ->
  ?ratio:float ->
  ?window:int ->
  ?ref_windows:int ->
  ?alpha:float ->
  string ->
  t

val name : t -> string

(** One-line description of the detector and its parameters. *)
val kind : t -> string

(** Observations seen so far. *)
val count : t -> int

(** [observe t ~tick v] feeds one observation; returns the alarm if this
    observation fired one. Ticks are caller-supplied logical time carried
    into alarms; they do not influence detection. *)
val observe : t -> tick:int -> float -> alarm option

(** Retained alarms, oldest first. *)
val alarms : t -> alarm list

(** Alarms dropped beyond {!max_alarms}. *)
val suppressed : t -> int

(** True while the detector is still calibrating (warm-up / reference
    collection); alarms cannot fire in this phase. *)
val warming_up : t -> bool

val direction_name : direction -> string
val alarm_to_json : alarm -> Json.t

(** Inverse of {!alarm_to_json}; [None] on malformed input. *)
val alarm_of_json : Json.t -> alarm option

(** A named collection of monitors, preserving registration order. *)
type registry

val create_registry : unit -> registry
val register : registry -> t -> unit
val monitors : registry -> t list

(** [find r name] is the registered monitor of that name, if any. *)
val find : registry -> string -> t option

(** [feed r name ~tick v] observes on the named monitor; [None] when the
    monitor is absent or did not alarm. *)
val feed : registry -> string -> tick:int -> float -> alarm option

(** All alarms across the registry, sorted by tick then monitor name. *)
val all_alarms : registry -> alarm list

(** Total suppressed alarms across the registry. *)
val total_suppressed : registry -> int

(** Deterministic JSON summary: monitors (name, kind, count, warming_up,
    suppressed) and the sorted alarm list. *)
val registry_json : registry -> Json.t

(** Human-readable registry summary. *)
val render : registry -> string
