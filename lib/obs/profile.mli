(** Kernel roofline profiler: a global, disabled-by-default sink fed one
    {!sample} per kernel launch the autotuner evaluates (the adapter lives
    in [Autotune.Evaluator]), plus pure aggregations over samples.

    Recording is one atomic load when off, touches no RNG state, and never
    influences the evaluation itself, so tuning results are bit-identical
    with profiling on or off. Worker domains append under a mutex; every
    aggregation sorts, so reports are deterministic for a given sample
    multiset. *)

type sample = {
  arch : string;
  variant : string;  (** IR label of the evaluated program *)
  kernel : string;
  bound : string;  (** "dp", "issue", "memory" or "launch" *)
  t_dp : float;
  t_issue : float;
  t_mem : float;
  t_launch : float;
  model_s : float;  (** noise-free roofline time *)
  measured_s : float;  (** simulated measurement (model + codegen noise) *)
  dram_bytes : float;
  l2_bytes : float;
  occupancy : float;
}

val enabled : unit -> bool

(** Clear the sink and enable recording. *)
val start : unit -> unit

(** Disable recording; samples stay available via {!samples}. *)
val stop : unit -> unit

val clear : unit -> unit

(** Append a sample (no-op when disabled). Domain-safe. *)
val record : sample -> unit

(** All samples in recording order. *)
val samples : unit -> sample list

(** [collect f]: run [f] with profiling enabled on a cleared sink; return
    its value with the samples. Restores the previous enabled state. *)
val collect : (unit -> 'a) -> 'a * sample list

(** The four roofline bounds, in reporting order. *)
val bounds : string list

type bucket = { bound : string; count : int; total_s : float }

(** Per-variant kernel-time buckets by roofline bound ("dp", "issue",
    "memory", "launch"); variants sorted, empty buckets omitted. *)
val variant_buckets : sample list -> (string * bucket list) list

type kernel_traffic = {
  k_kernel : string;
  k_variant : string;
  evals : int;
  total_dram_bytes : float;
  total_l2_bytes : float;
  mean_time_s : float;
}

(** Top [n] distinct (variant, kernel) pairs by summed DRAM traffic. *)
val top_dram : n:int -> sample list -> kernel_traffic list

(** Ten 0.1-wide occupancy bins over [0, 1] with counts. *)
val occupancy_histogram : sample list -> (string * int) list

type divergence = { n : int; mean_rel : float; max_rel : float }

(** Relative |measured/model - 1| statistics per architecture - how far
    the simulated measurement (including codegen noise) strays from the
    noise-free roofline prediction. *)
val divergence_by_arch : sample list -> (string * divergence) list

(** Human-readable report: per-variant bound buckets, top-[top] kernels by
    DRAM traffic, occupancy histogram, divergence per arch. *)
val render : ?top:int -> sample list -> string
