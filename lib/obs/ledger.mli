(** Causal cost ledger: constant-memory per-request phase attribution for
    the serving hot path.

    The ledger answers the question ROADMAP item 5 needs answered before
    any of its optimizations ships: {e which phase of a serve actually
    dominates tail latency?} Two complementary views feed it:

    - {b Modeled phase costs} ({!observe}): the loadgen replay decomposes
      every request's deterministic latency model into per-phase costs
      (canonicalize, lookup, queue wait, enumerate, prune, static gate,
      surrogate, measure, codegen, store), split by serve class
      (cold/warm/in-batch-dedup). Each (class, phase) cell keeps a
      {!Sketch} plus streaming moments (Welford), so memory is
      O(classes x phases x sketch buckets) regardless of traffic.
    - {b Recorded span trees} ({!accounts}, {!critical_path}): real
      {!Trace} events are folded into self-vs-child time accounts and a
      cross-domain critical path with scheduler queue-wait attribution.

    Reconciliation invariant: per serve class, the per-phase costs fed to
    {!observe} sum to the recorded end-to-end latency (the loadgen model
    scales every phase by the same jitter/degrade multiplier), and span
    self-times telescope to the root duration. Both are QCheck-pinned;
    {!reconcile} exposes the sums.

    High-latency exemplars: a ring of window slots (lazy eviction, like
    {!Window}) remembers the worst request per slot - tick, latency,
    class, dominant phase, and the originating journal run id when known -
    so {!Doctor} can jump from a slow p99 bucket to the exact tuning run.

    Everything is deterministic: no wall-clock reads, no RNG; two
    identical replays produce bit-identical reports. *)

(** Serving phases, in pipeline order. [Queue] is scheduler wait (batch
    position), not work; [Measure] covers both cold-tune empirical
    evaluation and warm-hit restore measurement. *)
type phase =
  | Canonicalize
  | Lookup
  | Queue
  | Enumerate
  | Prune
  | Gate
  | Surrogate
  | Measure
  | Codegen
  | Store

val all_phases : phase list

val phase_name : phase -> string
val phase_of_name : string -> phase option

(** How the engine served a request: [Cold] tuned it, [Warm] restored a
    memory/disk cache hit, [Dedup] rode an in-batch equivalent's work. *)
type serve_class = Cold | Warm | Dedup

val all_classes : serve_class list
val class_name : serve_class -> string
val class_of_name : string -> serve_class option

(* ------------------------------------------------------------------ *)
(* Span accounting over recorded traces *)

(** Aggregated self/child time of one (category, name) span kind.
    [self_s] is duration minus same-domain children; summed over a span
    tree it telescopes to the root duration. *)
type account = {
  acct_cat : string;
  acct_name : string;
  acct_count : int;
  acct_total_s : float;
  acct_self_s : float;
  acct_child_s : float;
}

(** Fold events into per-(cat, name) accounts, sorted by self time
    descending (ties by cat then name). *)
val accounts : Trace.event list -> account list

(** One step on the critical path. [step_queue_s] is the gap between the
    step's parallel group opening and the step actually starting - the
    scheduler queue wait of the slowest branch. *)
type path_step = {
  step_name : string;
  step_cat : string;
  step_domain : int;
  step_self_s : float;
  step_queue_s : float;
}

type critical_path = {
  path : path_step list;  (** root first, depth-first through the groups *)
  path_total_s : float;  (** root span duration *)
  path_work_s : float;  (** sum of step self times *)
  path_queue_s : float;  (** sum of step queue waits *)
}

(** Critical path of the largest span tree in [events]. Worker-domain
    spans (roots on their own domain, the {!Trace} convention) are
    attached to the smallest enclosing span on another domain; within a
    group of overlapping children the member finishing last is the
    critical one. [None] on an empty event list. *)
val critical_path : Trace.event list -> critical_path option

val render_accounts : account list -> string
val render_path : critical_path -> string

(* ------------------------------------------------------------------ *)
(* Streaming per-request ledger *)

type t

(** [create ()] with [alpha] sketch accuracy (default 0.01), [slot_width]
    ticks per exemplar slot (default 250) and [slots] in the exemplar
    ring (default 16). Raises [Invalid_argument] on non-positive
    [slot_width] or [slots]. *)
val create : ?alpha:float -> ?slot_width:int -> ?slots:int -> unit -> t

(** Account one request: its serve class, end-to-end latency, and the
    per-phase cost decomposition (expected to sum to [latency_s]; the
    difference is tracked, not rejected - see {!reconcile}). [label],
    [key] and [run_id] annotate the slot exemplar when this request is
    the worst in its slot. *)
val observe :
  ?label:string ->
  ?key:string ->
  ?run_id:string ->
  t ->
  tick:int ->
  cls:serve_class ->
  ok:bool ->
  latency_s:float ->
  (phase * float) list ->
  unit

(** Per serve class: (requests, summed per-phase costs, summed end-to-end
    latency). The reconciliation invariant is that the two sums agree
    within floating-point tolerance. Classes never observed are omitted. *)
val reconcile : t -> (serve_class * int * float * float) list

(** Streaming summary of one cell (a (class, phase) pair, or a class's
    end-to-end latency). *)
type stat = {
  st_n : int;
  st_total_s : float;
  st_mean_s : float;
  st_std_s : float;  (** population std from Welford moments *)
  st_p50_s : float;
  st_p90_s : float;
  st_p99_s : float;
  st_max_s : float;
}

(** Worst request of one exemplar slot (or of the whole run). *)
type exemplar = {
  ex_slot : int;  (** slot epoch = tick / slot_width; -1 for overall *)
  ex_tick : int;
  ex_latency_s : float;
  ex_class : serve_class;
  ex_phase : phase;  (** dominant phase (largest cost, ties by order) *)
  ex_label : string option;
  ex_key : string option;
  ex_run_id : string option;  (** journal run id, when the caller knew it *)
}

type report = {
  lr_requests : int;
  lr_errors : int;
  lr_slot_width : int;
  lr_overall : stat;  (** end-to-end latency, all classes *)
  lr_classes : (serve_class * stat) list;  (** end-to-end per class *)
  lr_cells : (serve_class * phase * stat) list;  (** per-phase costs *)
  lr_phase_share : (phase * float) list;
      (** phase's share of summed modeled time, all classes, descending *)
  lr_exemplars : exemplar list;  (** live slots in epoch order *)
  lr_worst : exemplar option;  (** worst request of the whole run *)
}

val report : t -> report

(** The phase with the largest share (ties by pipeline order). *)
val dominant : report -> phase option

val report_json : report -> Json.t
val report_of_json : Json.t -> (report, string) result
val render : report -> string

(** Per-(class, phase) native-histogram exposition
    ([<prefix>_phase_<class>_<phase>_seconds]) plus per-class end-to-end
    histograms, via {!Export.prometheus_sketches}. *)
val prometheus : ?prefix:string -> t -> string
