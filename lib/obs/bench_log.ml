(* Benchmark artifacts: the machine-readable output of bench/main.exe.

   One artifact holds one harness run: per-experiment wall time, raw
   per-run samples and OLS estimates (from the Bechamel micro-suite),
   service latency quantiles, and pipeline span timings aggregated from
   the Obs.Trace events of the run. Artifacts serialize to JSON
   (BENCH_<name>.json), parse back losslessly, and compare against a
   committed baseline through the statistical gate in Util.Stats -
   Mann-Whitney over raw samples plus a bootstrap CI on the ratio of
   medians, never point estimates alone. *)

let schema_version = 1

type quantiles = { q50 : float; q90 : float; q99 : float }

type span_agg = {
  cat : string;
  span : string;
  count : int;
  total_s : float;
}

type experiment = {
  name : string;
  wall_s : float;
  samples_s : float list;  (* raw per-run samples; [] when unavailable *)
  ols_s : float option;  (* Bechamel OLS estimate of one run, seconds *)
  quantiles : (string * quantiles) list;  (* e.g. service request.wall *)
  spans : span_agg list;
}

type artifact = {
  version : int;
  suite : string;
  experiments : experiment list;
}

(* ---------------- span aggregation ---------------- *)

let aggregate_spans events =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      let key = (e.cat, e.name) in
      let count, total =
        match Hashtbl.find_opt tbl key with Some ct -> ct | None -> (0, 0.0)
      in
      Hashtbl.replace tbl key (count + 1, total +. (e.t1 -. e.t0)))
    events;
  Hashtbl.fold
    (fun (cat, span) (count, total_s) acc -> { cat; span; count; total_s } :: acc)
    tbl []
  |> List.sort (fun a b -> compare (a.cat, a.span) (b.cat, b.span))

(* ---------------- JSON ---------------- *)

let quantiles_to_json q =
  Json.Obj [ ("p50", Num q.q50); ("p90", Num q.q90); ("p99", Num q.q99) ]

let experiment_to_json e =
  Json.Obj
    ([
       ("name", Json.Str e.name);
       ("wall_s", Json.Num e.wall_s);
       ("samples_s", Json.Arr (List.map (fun x -> Json.Num x) e.samples_s));
     ]
    @ (match e.ols_s with None -> [] | Some x -> [ ("ols_s", Json.Num x) ])
    @ (match e.quantiles with
      | [] -> []
      | qs -> [ ("quantiles", Json.Obj (List.map (fun (k, q) -> (k, quantiles_to_json q)) qs)) ])
    @
    match e.spans with
    | [] -> []
    | spans ->
      [
        ( "spans",
          Json.Arr
            (List.map
               (fun s ->
                 Json.Obj
                   [
                     ("cat", Json.Str s.cat);
                     ("name", Json.Str s.span);
                     ("count", Json.int s.count);
                     ("total_s", Json.Num s.total_s);
                   ])
               spans) );
      ])

let to_json a =
  Json.Obj
    [
      ("schema_version", Json.int a.version);
      ("suite", Json.Str a.suite);
      ("experiments", Json.Arr (List.map experiment_to_json a.experiments));
    ]

let render a = Json.to_string ~indent:true (to_json a) ^ "\n"

(* Parsing: a missing required field is a hard error naming the field, so
   a truncated or hand-edited baseline fails loudly, not as a silent
   all-pass compare. *)

exception Corrupt of string

let need what = function Some v -> v | None -> raise (Corrupt ("missing or ill-typed " ^ what))

let quantiles_of_json j =
  let num k = need ("quantile " ^ k) (Option.bind (Json.member k j) Json.get_num) in
  { q50 = num "p50"; q90 = num "p90"; q99 = num "p99" }

let experiment_of_json j =
  let str k = need k (Option.bind (Json.member k j) Json.get_str) in
  let num k = need k (Option.bind (Json.member k j) Json.get_num) in
  let samples =
    need "samples_s" (Option.bind (Json.member "samples_s" j) Json.get_arr)
    |> List.map (fun v -> need "sample" (Json.get_num v))
  in
  let ols_s = Option.bind (Json.member "ols_s" j) Json.get_num in
  let quantiles =
    match Json.member "quantiles" j with
    | Some (Json.Obj fields) -> List.map (fun (k, v) -> (k, quantiles_of_json v)) fields
    | Some _ -> raise (Corrupt "quantiles must be an object")
    | None -> []
  in
  let spans =
    match Option.bind (Json.member "spans" j) Json.get_arr with
    | None -> []
    | Some items ->
      List.map
        (fun s ->
          {
            cat = need "span cat" (Option.bind (Json.member "cat" s) Json.get_str);
            span = need "span name" (Option.bind (Json.member "name" s) Json.get_str);
            count = int_of_float (need "span count" (Option.bind (Json.member "count" s) Json.get_num));
            total_s = need "span total_s" (Option.bind (Json.member "total_s" s) Json.get_num);
          })
        items
  in
  { name = str "name"; wall_s = num "wall_s"; samples_s = samples; ols_s; quantiles; spans }

let of_json j =
  let version =
    int_of_float (need "schema_version" (Option.bind (Json.member "schema_version" j) Json.get_num))
  in
  if version <> schema_version then
    raise (Corrupt (Printf.sprintf "unsupported schema_version %d (want %d)" version schema_version));
  let suite = need "suite" (Option.bind (Json.member "suite" j) Json.get_str) in
  let experiments =
    need "experiments" (Option.bind (Json.member "experiments" j) Json.get_arr)
    |> List.map experiment_of_json
  in
  { version; suite; experiments }

let parse text =
  match Json.parse text with
  | Error msg -> Error ("invalid JSON: " ^ msg)
  | Ok j -> ( try Ok (of_json j) with Corrupt msg -> Error msg)

let write path a = Util.Fs.write_file path (render a)

let read path =
  match Util.Fs.read_file path with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let make ?(suite = "barracuda-bench") experiments =
  { version = schema_version; suite; experiments }

(* ---------------- comparison against a baseline ---------------- *)

type status = Regression | Improvement | Same | No_baseline

type delta = {
  exp : string;
  status : status;
  comparison : Util.Stats.comparison option;  (* None when no baseline entry *)
}

(* Compare on raw samples when the experiment has them; a single wall time
   otherwise (where the comparator's dominance rule applies). *)
let comparison_samples e = match e.samples_s with [] -> [ e.wall_s ] | s -> s

let compare_artifacts ?alpha ?(min_ratio = 1.5) ~baseline ~current () =
  List.map
    (fun cur ->
      match
        List.find_opt (fun (b : experiment) -> b.name = cur.name) baseline.experiments
      with
      | None -> { exp = cur.name; status = No_baseline; comparison = None }
      | Some base ->
        let c =
          Util.Stats.compare_samples ?alpha ~min_ratio ~base:(comparison_samples base)
            ~cur:(comparison_samples cur) ()
        in
        let status =
          if c.regression then Regression
          else if c.improvement then Improvement
          else Same
        in
        { exp = cur.name; status; comparison = Some c })
    current.experiments

(* The gate: pass unless some experiment regressed. *)
let gate deltas = not (List.exists (fun d -> d.status = Regression) deltas)

let status_name = function
  | Regression -> "REGRESSION"
  | Improvement -> "improved"
  | Same -> "ok"
  | No_baseline -> "no baseline"

let render_deltas deltas =
  let rows =
    [ "experiment"; "baseline"; "current"; "ratio"; "p(slower)"; "CI ratio"; "verdict" ]
    :: List.map
         (fun d ->
           match d.comparison with
           | None -> [ d.exp; "-"; "-"; "-"; "-"; "-"; status_name d.status ]
           | Some c ->
             [
               d.exp;
               Printf.sprintf "%.4gs (n=%d)" c.median_base c.n_base;
               Printf.sprintf "%.4gs (n=%d)" c.median_cur c.n_cur;
               Printf.sprintf "%.2fx" c.ratio;
               Printf.sprintf "%.3f" c.p_slower;
               Printf.sprintf "[%.2f, %.2f]" c.ci_low c.ci_high;
               status_name d.status;
             ])
         deltas
  in
  Util.Table.render (Util.Table.create ~title:"Benchmark comparison vs baseline" rows)
