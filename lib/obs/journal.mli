(** Tuning flight recorder: an append-only JSONL journal with one entry per
    tuning run - canonical problem, device identity, seed, per-iteration
    SURF state, and the five-stage provenance lineage (DSL expr, OCTOPI
    variant, TCR statement, recipe parameters, emitted kernel) of every
    evaluated variant with predicted vs measured time.

    Entries are content-addressed: {!run_id} digests the entry with the id
    and timestamp blanked, so recording the same tune twice yields the same
    id. Each entry is one appended line; a crash tears at most the final
    line, and {!load} discards undecodable lines instead of aborting.

    Recording goes through a global sink, disabled by default in the
    {!Trace}/{!Profile} style: one atomic load when off, no RNG draws ever,
    so fixed-seed tunes are bit-identical with journaling on or off. *)

val schema_version : int

(** [stage parent content] - chained lineage hash: digest of the parent
    stage's hash and this stage's canonical content, so equal final hashes
    imply the whole derivation chain matched. Pass [""] as the root
    parent. *)
val stage : string -> string -> string

type lineage = {
  dsl_hash : string;
  variant_hash : string;
  tcr_hash : string;
  recipe_hash : string;
  kernel_hash : string;
}

type variant = {
  label : string;
  lineage : lineage;
  predicted : float option;
      (** surrogate prediction; [None] for the initial random batch *)
  measured : float;  (** seconds *)
}

type rival = {
  rival_label : string;
  rival_lineage : lineage;
  rival_predicted : float;
  rival_std : float;
}

(** Contraction-order provenance for network-originated tunes: the
    optimizer that chose the order ("greedy"/"treesa"), the serialized
    contraction tree, and its score breakdown in log2 units. Entries
    journaled before netopt existed decode as [None]. *)
type network = {
  net_method : string;
  net_order : string;
  net_tc : float;
  net_sc : float;
  net_rw : float;
  net_score : float;
}

type entry = {
  run_id : string;  (** content-addressed; [""] until recorded *)
  timestamp : float;  (** seconds since epoch; [0.0] until recorded *)
  key : string;  (** canonical problem key; [""] outside the service *)
  label : string;
  arch : string;  (** {!Gpusim.Arch.fingerprint} *)
  seed : int;  (** [-1] when the caller could not supply one *)
  dsl : string;  (** canonical DSL source; replay re-tunes from this *)
  max_evals : int;
  batch_size : int;
  pool_per_variant : int;
  reps : int;
  pool_size : int;
  evaluations : int;
  gate_checked : int;
      (** points screened by the static verifier's pre-evaluation gate *)
  gate_rejected : int;  (** points the gate kept out of the pool *)
  gate_diags : (string * int) list;
      (** gate error occurrences per BARxxx code; entries journaled before
          the gate existed decode as [0]/[0]/[[]] *)
  network : network option;
      (** contraction-order provenance; [None] for plain DSL tunes *)
  semantic_ok : bool option;
      (** translation validation of the winner: [Some true] when the
          semantic gate proved it equivalent to its DSL contraction,
          [Some false] when it did not, [None] when the gate was off (and
          for entries journaled before it existed) *)
  iterations : Search_log.iteration list;
  variants : variant list;  (** every evaluated variant, evaluation order *)
  winner : variant;
  importances : (string * float) list;  (** named parameters, descending *)
  residual_r2 : float option;
  rivals : rival list;
}

val to_json : entry -> Json.t
val of_json : Json.t -> (entry, string) result

(** Content-addressed id: digest of the entry with [run_id] and [timestamp]
    blanked. *)
val run_id : entry -> string

(** Append one entry as a single JSONL line (O_APPEND; parents created). *)
val append : string -> entry -> unit

(** Read a journal file: the decodable entries in file order, plus the
    number of discarded (torn or corrupt) lines. A missing file is an
    empty journal. *)
val load : string -> entry list * int

(** Look up by run id: exact match, unique prefix, or ["latest"] / [""]
    for the most recent entry. *)
val find : entry list -> run:string -> (entry, string) result

(** [first_divergence a b] names the earliest lineage stage whose hash
    differs ("dsl", "variant", "tcr", "recipe" or "kernel"), or [None]
    when the chains are identical. *)
val first_divergence : lineage -> lineage -> string option

(** {2 Global sink} *)

val enabled : unit -> bool

(** Enable recording; entries accumulate in memory and, when [path] is
    given, are also appended there. *)
val start : ?path:string -> unit -> unit

val stop : unit -> unit

(** Entries recorded since {!start}, oldest first. *)
val entries : unit -> entry list

(** Record one run, stamping its timestamp and {!run_id}. Returns the run
    id, or [None] when the sink is disabled. *)
val record : entry -> string option

(** Run [f] with journaling enabled on a fresh in-memory sink; restores the
    previous sink state afterwards. *)
val collect : (unit -> 'a) -> 'a * entry list

(** {2 Reports} *)

(** First 12 hex digits of a run id. *)
val short : string -> string

(** Device model name: the fingerprint up to its first ['|']. *)
val arch_name : string -> string

(** One line per run: id, time, label, arch, seed, evaluations, best. *)
val render_history : entry list -> string

(** Machine-readable history: one summary object per run in file order
    (ids, key, arch, seed, winner time/label/kernel hash, gate counts,
    network method when present). *)
val history_json : entry list -> Json.t

(** Full report for one run: winner lineage chain, named importances,
    surrogate fit (R-squared, worst over-predictions), rejected rivals. *)
val render_explain : entry -> string
