(** Declarative SLO specs evaluated with multi-window burn-rate alerting.

    A spec names two objectives over a {!Window}: a tail-latency budget
    (the [latency_p]-th percentile must stay at or below
    [latency_budget_s]) and an error-rate objective ([error_objective] as
    a failed-request ratio). Each objective is evaluated over a short and
    a long window (in ring epochs) in the multi-window burn-rate style:
    the long window shows the breach is sustained, the short window that
    it is still happening.

    Burn rate is observed/objective. For errors, [Page] requires both
    windows at or above [page_burn] and [Ticket] both at or above
    [ticket_burn]; for latency the budget itself is the threshold ([Page]
    when both windows breach it, [Ticket] when exactly one does).

    Evaluation is pure over the window state, so fixed-seed replays
    produce bit-identical reports; {!to_json}/{!of_json} round-trip the
    report for machine consumption (the CI gate). *)

type spec = {
  name : string;
  latency_p : float;  (** percentile under budget, e.g. 99.0 *)
  latency_budget_s : float;
  error_objective : float;  (** tolerated error ratio, e.g. 0.01 *)
  short_epochs : int;  (** short window, in ring epochs *)
  long_epochs : int;
  page_burn : float;  (** error burn rate that pages when sustained *)
  ticket_burn : float;
}

(** p99 <= 5ms, 1% errors, 1/8-epoch windows, page at 10x burn, ticket at
    2x. *)
val default_spec : spec

type severity = Page | Ticket | Ok

val severity_name : severity -> string

type alert = {
  objective : string;  (** ["latency"] or ["error-rate"] *)
  severity : severity;
  observed_short : float;  (** latency in seconds, or error ratio *)
  observed_long : float;
  budget : float;  (** the spec threshold the observations compare to *)
  burn_short : float;  (** observed/budget *)
  burn_long : float;
  detail : string;  (** human-readable one-liner *)
}

type report = {
  spec : spec;
  at_tick : int;
  requests : int;  (** requests inside the long window *)
  alerts : alert list;  (** one per objective, worst first *)
}

val evaluate : spec -> Window.t -> now:int -> report

(** No [Page]-severity alert ([Ticket]s degrade gracefully). *)
val ok : report -> bool

val to_json : report -> Json.t
val of_json : Json.t -> (report, string) result
val render : report -> string

(** Round-trip a bare spec (used by the {!Whatif} replay file, which
    records the spec the ledger replay ran under). *)
val spec_to_json : spec -> Json.t

val spec_of_json : Json.t -> (spec, string) result
