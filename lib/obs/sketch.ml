(* DDSketch-style log-bucket quantile sketch.

   Bucket i covers (gamma^(i-1), gamma^i] with gamma = (1+a)/(1-a); the
   midpoint estimate 2*gamma^i/(gamma+1) is within relative error a of both
   edges: at v = gamma^(i-1) the ratio is 2*gamma/(gamma+1) = 1+a, at
   v = gamma^i it is 2/(gamma+1) = 1-a. Counts live in a hashtable keyed by
   bucket index; the occupied-bucket count is hard-capped by collapsing the
   two lowest buckets together (the DDSketch policy: tail quantiles - the
   ones monitoring cares about - keep their bound, quantiles near zero may
   degrade once [collapsed] reports true). *)

type t = {
  alpha : float;
  gamma : float;
  log_gamma : float;
  floor : float;  (* values at or below this land in the zero bucket *)
  max_buckets : int;
  counts : (int, int ref) Hashtbl.t;
  mutable zero : int;  (* count of values <= floor *)
  mutable count : int;
  mutable total : float;
  mutable vmin : float;
  mutable vmax : float;
  mutable collapsed : bool;
}

let create ?(alpha = 0.01) ?(max_buckets = 2048) () =
  if not (alpha > 0.0 && alpha < 1.0) then
    invalid_arg "Sketch.create: alpha must be in (0, 1)";
  if max_buckets < 2 then invalid_arg "Sketch.create: max_buckets must be >= 2";
  let gamma = (1.0 +. alpha) /. (1.0 -. alpha) in
  {
    alpha;
    gamma;
    log_gamma = log gamma;
    floor = 1e-12;
    max_buckets;
    counts = Hashtbl.create 64;
    zero = 0;
    count = 0;
    total = 0.0;
    vmin = infinity;
    vmax = neg_infinity;
    collapsed = false;
  }

let alpha t = t.alpha
let floor t = t.floor

let copy t =
  let counts = Hashtbl.create (Hashtbl.length t.counts) in
  Hashtbl.iter (fun k r -> Hashtbl.add counts k (ref !r)) t.counts;
  { t with counts }

let count t = t.count
let total t = t.total
let mean t = if t.count = 0 then nan else t.total /. float_of_int t.count
let min_value t = if t.count = 0 then nan else t.vmin
let max_value t = if t.count = 0 then nan else t.vmax
let collapsed t = t.collapsed

let bucket_count t =
  Hashtbl.length t.counts + if t.zero > 0 then 1 else 0

let index t v = int_of_float (ceil (log v /. t.log_gamma))

(* Midpoint estimate of bucket i; see the header derivation. *)
let value_of t i = 2.0 *. exp (float_of_int i *. t.log_gamma) /. (t.gamma +. 1.0)

let sorted_indices t =
  Hashtbl.fold (fun i r acc -> (i, !r) :: acc) t.counts [] |> List.sort compare

(* Enforce the bucket cap: fold the lowest bucket into the next lowest.
   Estimates for the surviving bucket only move up, so upper quantiles keep
   their bound. *)
let collapse_if_needed t =
  (* the zero bucket counts toward the cap; max_buckets >= 2 guarantees at
     least two positive buckets whenever the loop runs *)
  while bucket_count t > t.max_buckets do
    match sorted_indices t with
    | (i0, c0) :: (i1, c1) :: _ ->
      Hashtbl.remove t.counts i0;
      Hashtbl.replace t.counts i1 (ref (c0 + c1));
      t.collapsed <- true
    | _ -> ()
  done

let add t v =
  t.count <- t.count + 1;
  t.total <- t.total +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  if v <= t.floor then t.zero <- t.zero + 1
  else begin
    let i = index t v in
    (match Hashtbl.find_opt t.counts i with
    | Some r -> incr r
    | None -> Hashtbl.add t.counts i (ref 1));
    collapse_if_needed t
  end

let merge a b =
  if a.alpha <> b.alpha then
    invalid_arg "Sketch.merge: sketches have different accuracies";
  let m = copy a in
  Hashtbl.iter
    (fun i r ->
      match Hashtbl.find_opt m.counts i with
      | Some r' -> r' := !r' + !r
      | None -> Hashtbl.add m.counts i (ref !r))
    b.counts;
  m.zero <- m.zero + b.zero;
  m.count <- m.count + b.count;
  m.total <- m.total +. b.total;
  if b.vmin < m.vmin then m.vmin <- b.vmin;
  if b.vmax > m.vmax then m.vmax <- b.vmax;
  m.collapsed <- m.collapsed || b.collapsed;
  collapse_if_needed m;
  m

let quantile t p =
  if p < 0.0 || p > 100.0 then
    invalid_arg "Sketch.quantile: p must be in [0, 100]";
  if t.count = 0 then nan
  else begin
    (* rank of the order statistic the estimate targets, matching
       Util.Stats.percentile's p/100*(n-1) position *)
    let rank = p /. 100.0 *. float_of_int (t.count - 1) in
    let clamp v = Float.max t.vmin (Float.min t.vmax v) in
    if float_of_int t.zero > rank then clamp 0.0
    else begin
      let cum = ref t.zero and result = ref t.vmax in
      (try
         List.iter
           (fun (i, c) ->
             cum := !cum + c;
             if float_of_int !cum > rank then begin
               result := value_of t i;
               raise Exit
             end)
           (sorted_indices t)
       with Exit -> ());
      clamp !result
    end
  end

let buckets t =
  let positive =
    List.map (fun (i, c) -> (exp (float_of_int i *. t.log_gamma), c)) (sorted_indices t)
  in
  if t.zero > 0 then (t.floor, t.zero) :: positive else positive
