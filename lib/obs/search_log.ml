(* SURF convergence telemetry: one record per search iteration (iteration 0
   is the initial random batch, the rest are model-guided refits), carrying
   the best-so-far objective, pool coverage and the surrogate's predictive
   quality on the batch it proposed - the data needed to see *how* a search
   converged, not just where it ended. *)

type iteration = {
  iter : int;  (* 0 = initial random batch *)
  batch : int;  (* configurations evaluated this iteration *)
  evaluations : int;  (* cumulative, after this iteration *)
  pool_size : int;
  best_so_far : float;
  batch_best : float;
  batch_mean : float;
  r2 : float option;  (* forest predictions vs measured; None for iter 0 *)
  pred_std : float option;
      (* mean ensemble std over the proposed batch - surrogate confidence
         at proposal time; None for the initial random batch *)
}

let coverage it =
  if it.pool_size = 0 then 0.0
  else float_of_int it.evaluations /. float_of_int it.pool_size

let best_curve iterations = List.map (fun it -> it.best_so_far) iterations

(* The logged best-so-far sequence must never increase: each iteration's
   best is the minimum over all evaluations so far. *)
let monotone iterations =
  let rec go prev = function
    | [] -> true
    | it :: rest -> it.best_so_far <= prev && go it.best_so_far rest
  in
  go infinity iterations

let render ~label iterations =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "convergence: %s\n" label);
  Buffer.add_string b
    (Printf.sprintf "%-5s %6s %6s %9s %12s %12s %12s %7s %10s\n" "iter" "batch" "evals"
       "coverage" "batch-best" "batch-mean" "best-so-far" "R2" "pred-std");
  List.iter
    (fun it ->
      Buffer.add_string b
        (Printf.sprintf "%-5d %6d %6d %8.1f%% %12.4g %12.4g %12.4g %7s %10s\n" it.iter
           it.batch it.evaluations
           (100.0 *. coverage it)
           it.batch_best it.batch_mean it.best_so_far
           (match it.r2 with None -> "-" | Some r -> Printf.sprintf "%.3f" r)
           (match it.pred_std with None -> "-" | Some s -> Printf.sprintf "%.3g" s)))
    iterations;
  (match iterations with
  | [] -> Buffer.add_string b "  (no iterations logged)\n"
  | _ ->
    let last = List.nth iterations (List.length iterations - 1) in
    Buffer.add_string b
      (Printf.sprintf "final: best %.4g after %d/%d evaluations (%.1f%% of pool)\n"
         last.best_so_far last.evaluations last.pool_size (100.0 *. coverage last)));
  Buffer.contents b

(* Span attributes for one iteration, attached by Surf.Search to its
   per-iteration trace span. *)
let span_attrs it =
  [
    ("iter", string_of_int it.iter);
    ("batch", string_of_int it.batch);
    ("evaluations", string_of_int it.evaluations);
    ("coverage", Printf.sprintf "%.4f" (coverage it));
    ("best_so_far", Printf.sprintf "%.6g" it.best_so_far);
    ("batch_best", Printf.sprintf "%.6g" it.batch_best);
  ]
  @ (match it.r2 with None -> [] | Some r -> [ ("r2", Printf.sprintf "%.4f" r) ])
  @ match it.pred_std with None -> [] | Some s -> [ ("pred_std", Printf.sprintf "%.6g" s) ]
