(** Minimal JSON value type, renderer and parser - just enough for the
    benchmark artifacts ({!Bench_log}) to round-trip without an external
    dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [Num] of an integer. *)
val int : int -> t

(** Render. Non-finite numbers serialize as [null]; integral floats render
    without a fractional part. [indent] pretty-prints with two spaces. *)
val to_string : ?indent:bool -> t -> string

exception Parse_error of string

(** Parse a complete JSON document; [Error] carries a message with the
    failing offset. *)
val parse : string -> (t, string) result

val parse_exn : string -> t

(** Field lookup on an [Obj]; [None] on anything else. *)
val member : string -> t -> t option

(** [Num] payload; [Null] reads as [nan] (the serialization of non-finite
    floats). *)
val get_num : t -> float option

val get_str : t -> string option
val get_arr : t -> t list option
