(** Constant-memory streaming quantile sketch with a proven relative-error
    bound (the DDSketch log-bucket scheme).

    Values are assigned to geometric buckets [(gamma^(i-1), gamma^i]] with
    [gamma = (1+alpha)/(1-alpha)]; a bucket's midpoint estimate
    [2*gamma^i/(gamma+1)] is then within relative error [alpha] of every
    value the bucket can hold. Storage is one integer per occupied bucket -
    O(log(max/min)/alpha) regardless of how many values are added - with a
    hard [max_buckets] cap enforced by collapsing the lowest buckets.

    Error bound: for a sketch holding samples [x_0 <= ... <= x_(n-1)]
    (all above {!floor}, no collapse), [quantile t p] with rank
    [r = p/100*(n-1)] returns [q] with
    [(1-alpha) * x_(floor r) <= q <= (1+alpha) * x_(ceil r)].

    Sketches merge exactly: bucket counts are integers, so merging is
    associative and commutative up to the floating-point [total], and
    quantiles of a merged sketch are bit-identical regardless of merge
    order. No wall-clock reads, no RNG draws. Not domain-safe; callers
    serialize access (see {!Service.Metrics}). *)

type t

(** [create ()] with [alpha] relative accuracy (default 0.01) and at most
    [max_buckets] occupied buckets (default 2048). Raises
    [Invalid_argument] unless [0 < alpha < 1] and [max_buckets >= 2]. *)
val create : ?alpha:float -> ?max_buckets:int -> unit -> t

val alpha : t -> float

(** Values at or below this magnitude (default 1e-12) land in the zero
    bucket and are estimated as [0.]; the relative-error bound applies
    above it. Negative values are clamped to the zero bucket too. *)
val floor : t -> float

(** Independent deep copy. *)
val copy : t -> t

val add : t -> float -> unit

val count : t -> int

(** Sum of all added values. *)
val total : t -> float

(** [nan] on an empty sketch, like {!Util.Stats.mean}. *)
val mean : t -> float

val min_value : t -> float
val max_value : t -> float

(** Occupied buckets, including the zero bucket when populated. *)
val bucket_count : t -> int

(** True once the [max_buckets] cap has forced low buckets to collapse;
    quantiles near 0 may then exceed the error bound. *)
val collapsed : t -> bool

(** [merge a b] is a fresh sketch equivalent to adding both inputs'
    values. Raises [Invalid_argument] when the accuracies differ. *)
val merge : t -> t -> t

(** [quantile t p] for [p] in [0, 100] (the {!Util.Stats.percentile}
    convention), clamped into [[min_value, max_value]]. [nan] on an empty
    sketch; raises [Invalid_argument] outside [0, 100]. *)
val quantile : t -> float -> float

(** Occupied buckets as [(upper_bound, count)] in ascending bound order,
    zero bucket (bound {!floor}) first. Cumulating the counts yields a
    Prometheus-style histogram exposition (see {!Export}). *)
val buckets : t -> (float * int) list
