(* Exact causal what-if profiling. See whatif.mli for the model; the key
   property exploited here is that a record's observed latency factors as
   (sum of base phase costs) * multiplier, so scaling one phase's base
   cost reconstructs the exact counterfactual latency. *)

let spf = Printf.sprintf

type record = {
  rq_tick : int;
  rq_class : Ledger.serve_class;
  rq_ok : bool;
  rq_mult : float;
  rq_costs : (Ledger.phase * float) list;
}

type scenario = {
  sc_phase : Ledger.phase;
  sc_factor : float;
  sc_p50_s : float;
  sc_p99_s : float;
  sc_delta_p50_s : float;
  sc_delta_p99_s : float;
  sc_verdict : string;
}

type entry = {
  en_phase : Ledger.phase;
  en_impact_p50_s : float;
  en_impact_p99_s : float;
  en_scenarios : scenario list;
}

type report = {
  wr_requests : int;
  wr_factors : float list;
  wr_baseline_p50_s : float;
  wr_baseline_p99_s : float;
  wr_baseline_verdict : string;
  wr_ranking : entry list;
}

let latency ?phase ?(factor = 1.0) r =
  let base =
    List.fold_left
      (fun acc (p, v) ->
        acc +. (if phase = Some p then v *. factor else v))
      0.0 r.rq_costs
  in
  base *. r.rq_mult

(* One pass over the stream: full-stream sketch for p50/p99 plus a
   windowed SLO evaluation at the final tick. Window eviction depends
   only on the tick sequence, which scaling never changes, so scenario
   runs stay directly comparable. *)
let replay ?phase ?factor ?slo ~width ~buckets records =
  let sk = Sketch.create () in
  let w = Window.create ~width ~buckets () in
  let last = ref 0 in
  List.iter
    (fun r ->
      let l = latency ?phase ?factor r in
      Sketch.add sk l;
      Window.observe w ~now:r.rq_tick ~ok:r.rq_ok l;
      if r.rq_tick > !last then last := r.rq_tick)
    records;
  let verdict =
    match slo with
    | None -> "-"
    | Some spec ->
      let rep = Slo.evaluate spec w ~now:!last in
      (match rep.Slo.alerts with
      | [] -> "ok"
      | a :: _ -> Slo.severity_name a.Slo.severity)
  in
  (Sketch.quantile sk 50.0, Sketch.quantile sk 99.0, verdict)

let phase_rank p =
  let rec go i = function
    | [] -> i
    | q :: rest -> if q = p then i else go (i + 1) rest
  in
  go 0 Ledger.all_phases

let run ?(factors = [ 0.5; 0.25; 0.1 ]) ?slo ~width ~buckets records =
  if records = [] then invalid_arg "Whatif.run: no records";
  if factors = [] then invalid_arg "Whatif.run: no factors";
  List.iter
    (fun f ->
      if not (f > 0.0) then invalid_arg "Whatif.run: factors must be > 0")
    factors;
  let base_p50, base_p99, base_verdict =
    replay ?slo ~width ~buckets records
  in
  let observed =
    List.filter
      (fun p ->
        List.exists
          (fun r -> List.exists (fun (q, v) -> q = p && v > 0.0) r.rq_costs)
          records)
      Ledger.all_phases
  in
  let ranking =
    List.map
      (fun p ->
        let scenarios =
          List.map
            (fun f ->
              let p50, p99, verdict =
                replay ~phase:p ~factor:f ?slo ~width ~buckets records
              in
              {
                sc_phase = p;
                sc_factor = f;
                sc_p50_s = p50;
                sc_p99_s = p99;
                sc_delta_p50_s = base_p50 -. p50;
                sc_delta_p99_s = base_p99 -. p99;
                sc_verdict = verdict;
              })
            factors
        in
        (* impact = improvement at the most aggressive factor *)
        let best =
          List.fold_left
            (fun acc s ->
              match acc with
              | None -> Some s
              | Some b -> if s.sc_factor < b.sc_factor then Some s else acc)
            None scenarios
        in
        match best with
        | None -> assert false
        | Some b ->
          {
            en_phase = p;
            en_impact_p50_s = b.sc_delta_p50_s;
            en_impact_p99_s = b.sc_delta_p99_s;
            en_scenarios = scenarios;
          })
      observed
    |> List.stable_sort (fun a b ->
           match compare (b.en_impact_p99_s : float) a.en_impact_p99_s with
           | 0 -> compare (phase_rank a.en_phase) (phase_rank b.en_phase)
           | c -> c)
  in
  {
    wr_requests = List.length records;
    wr_factors = factors;
    wr_baseline_p50_s = base_p50;
    wr_baseline_p99_s = base_p99;
    wr_baseline_verdict = base_verdict;
    wr_ranking = ranking;
  }

let top r = match r.wr_ranking with [] -> None | e :: _ -> Some e.en_phase

(* ---------------- JSON ---------------- *)

let scenario_json s =
  Json.Obj
    [
      ("factor", Json.Num s.sc_factor);
      ("p50_s", Json.Num s.sc_p50_s);
      ("p99_s", Json.Num s.sc_p99_s);
      ("delta_p50_s", Json.Num s.sc_delta_p50_s);
      ("delta_p99_s", Json.Num s.sc_delta_p99_s);
      ("verdict", Json.Str s.sc_verdict);
    ]

let report_json r =
  Json.Obj
    [
      ("schema_version", Json.int 1);
      ("requests", Json.int r.wr_requests);
      ("factors", Json.Arr (List.map (fun f -> Json.Num f) r.wr_factors));
      ("baseline_p50_s", Json.Num r.wr_baseline_p50_s);
      ("baseline_p99_s", Json.Num r.wr_baseline_p99_s);
      ("baseline_verdict", Json.Str r.wr_baseline_verdict);
      ( "ranking",
        Json.Arr
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("phase", Json.Str (Ledger.phase_name e.en_phase));
                   ("impact_p50_s", Json.Num e.en_impact_p50_s);
                   ("impact_p99_s", Json.Num e.en_impact_p99_s);
                   ( "scenarios",
                     Json.Arr (List.map scenario_json e.en_scenarios) );
                 ])
             r.wr_ranking) );
    ]

let ( let* ) r f = Result.bind r f

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Result.Ok v
  | None -> Result.Error (spf "missing or invalid field %S" name)

let num name j = field name Json.get_num j
let str name j = field name Json.get_str j
let int_field name j = Result.map int_of_float (num name j)

let fold_list of_item items =
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* v = of_item item in
      Result.Ok (v :: acc))
    (Result.Ok []) items
  |> Result.map List.rev

let phase_of_json name =
  match Ledger.phase_of_name name with
  | Some p -> Result.Ok p
  | None -> Result.Error (spf "unknown phase %S" name)

let scenario_of_json phase j =
  let* sc_factor = num "factor" j in
  let* sc_p50_s = num "p50_s" j in
  let* sc_p99_s = num "p99_s" j in
  let* sc_delta_p50_s = num "delta_p50_s" j in
  let* sc_delta_p99_s = num "delta_p99_s" j in
  let* sc_verdict = str "verdict" j in
  Result.Ok
    { sc_phase = phase; sc_factor; sc_p50_s; sc_p99_s; sc_delta_p50_s;
      sc_delta_p99_s; sc_verdict }

let report_of_json j =
  let* wr_requests = int_field "requests" j in
  let* wr_factors =
    match Option.bind (Json.member "factors" j) Json.get_arr with
    | None -> Result.Error "missing or invalid field \"factors\""
    | Some items ->
      fold_list
        (fun item ->
          match Json.get_num item with
          | Some f -> Result.Ok f
          | None -> Result.Error "invalid factor")
        items
  in
  let* wr_baseline_p50_s = num "baseline_p50_s" j in
  let* wr_baseline_p99_s = num "baseline_p99_s" j in
  let* wr_baseline_verdict = str "baseline_verdict" j in
  let* wr_ranking =
    match Option.bind (Json.member "ranking" j) Json.get_arr with
    | None -> Result.Error "missing or invalid field \"ranking\""
    | Some items ->
      fold_list
        (fun item ->
          let* en_phase = Result.bind (str "phase" item) phase_of_json in
          let* en_impact_p50_s = num "impact_p50_s" item in
          let* en_impact_p99_s = num "impact_p99_s" item in
          let* en_scenarios =
            match Option.bind (Json.member "scenarios" item) Json.get_arr with
            | None -> Result.Error "entry missing \"scenarios\""
            | Some ss -> fold_list (scenario_of_json en_phase) ss
          in
          Result.Ok { en_phase; en_impact_p50_s; en_impact_p99_s; en_scenarios })
        items
  in
  Result.Ok
    { wr_requests; wr_factors; wr_baseline_p50_s; wr_baseline_p99_s;
      wr_baseline_verdict; wr_ranking }

(* ---------------- render ---------------- *)

let us v = spf "%.1f" (v *. 1e6)

let render r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (spf
       "what-if over %d recorded requests (baseline p50 %s us, p99 %s us, \
        slo %s)\n"
       r.wr_requests (us r.wr_baseline_p50_s) (us r.wr_baseline_p99_s)
       r.wr_baseline_verdict);
  Buffer.add_string b
    (spf "  %-12s %12s %12s  %s\n" "phase" "dp99 us" "dp50 us"
       "scenarios (factor: p99 us / verdict)");
  List.iter
    (fun e ->
      let cells =
        e.en_scenarios
        |> List.map (fun s ->
               spf "x%.2f: %s/%s" s.sc_factor (us s.sc_p99_s) s.sc_verdict)
        |> String.concat "  "
      in
      Buffer.add_string b
        (spf "  %-12s %12s %12s  %s\n"
           (Ledger.phase_name e.en_phase)
           (us e.en_impact_p99_s) (us e.en_impact_p50_s) cells))
    r.wr_ranking;
  (match r.wr_ranking with
  | e :: _ ->
    Buffer.add_string b
      (spf "  => speeding up %s moves p99 most (-%s us at x%.2f)\n"
         (Ledger.phase_name e.en_phase)
         (us e.en_impact_p99_s)
         (List.fold_left Float.min infinity r.wr_factors))
  | [] -> ());
  Buffer.contents b

(* ---------------- replay file ---------------- *)

type file = {
  f_requests : int;
  f_seed : int;
  f_width : int;
  f_buckets : int;
  f_slo : Slo.spec option;
  f_ledger : Ledger.report;
  f_records : record list;
}

let class_of_json name =
  match Ledger.class_of_name name with
  | Some c -> Result.Ok c
  | None -> Result.Error (spf "unknown serve class %S" name)

let record_json r =
  Json.Obj
    [
      ("tick", Json.int r.rq_tick);
      ("class", Json.Str (Ledger.class_name r.rq_class));
      ("ok", Json.Bool r.rq_ok);
      ("mult", Json.Num r.rq_mult);
      ( "costs",
        Json.Arr
          (List.map
             (fun (p, v) ->
               Json.Arr [ Json.Str (Ledger.phase_name p); Json.Num v ])
             r.rq_costs) );
    ]

let record_of_json j =
  let* rq_tick = int_field "tick" j in
  let* rq_class = Result.bind (str "class" j) class_of_json in
  let* rq_ok =
    match Json.member "ok" j with
    | Some (Json.Bool v) -> Result.Ok v
    | _ -> Result.Error "missing or invalid field \"ok\""
  in
  let* rq_mult = num "mult" j in
  let* rq_costs =
    match Option.bind (Json.member "costs" j) Json.get_arr with
    | None -> Result.Error "missing or invalid field \"costs\""
    | Some items ->
      fold_list
        (function
          | Json.Arr [ Json.Str name; Json.Num v ] ->
            let* p = phase_of_json name in
            Result.Ok (p, v)
          | _ -> Result.Error "invalid cost entry")
        items
  in
  Result.Ok { rq_tick; rq_class; rq_ok; rq_mult; rq_costs }

let file_json f =
  Json.Obj
    [
      ("schema_version", Json.int 1);
      ("requests", Json.int f.f_requests);
      ("seed", Json.int f.f_seed);
      ("width", Json.int f.f_width);
      ("buckets", Json.int f.f_buckets);
      ( "slo",
        match f.f_slo with None -> Json.Null | Some s -> Slo.spec_to_json s );
      ("ledger", Ledger.report_json f.f_ledger);
      ("records", Json.Arr (List.map record_json f.f_records));
    ]

let file_of_json j =
  let* f_requests = int_field "requests" j in
  let* f_seed = int_field "seed" j in
  let* f_width = int_field "width" j in
  let* f_buckets = int_field "buckets" j in
  let* f_slo =
    match Json.member "slo" j with
    | None | Some Json.Null -> Result.Ok None
    | Some s -> Result.map Option.some (Slo.spec_of_json s)
  in
  let* f_ledger =
    match Json.member "ledger" j with
    | Some l -> Ledger.report_of_json l
    | None -> Result.Error "missing field \"ledger\""
  in
  let* f_records =
    match Option.bind (Json.member "records" j) Json.get_arr with
    | None -> Result.Error "missing or invalid field \"records\""
    | Some items -> fold_list record_of_json items
  in
  Result.Ok { f_requests; f_seed; f_width; f_buckets; f_slo; f_ledger;
              f_records }
