(* Tuning flight recorder: an append-only JSONL journal with one entry per
   tuning run - what was tuned, on which device identity, with which seed,
   how the search converged, and the full five-stage provenance lineage of
   every evaluated variant.

   The journal exists to answer, long after a tune: which kernel won, why
   the surrogate believed in it, what was pruned, and would the same inputs
   still produce it (replay drift). Entries are content-addressed: the run
   id is the digest of the entry with the id and timestamp blanked, so the
   same tune recorded twice yields the same id.

   Crash tolerance is structural: each entry is a single line appended with
   O_APPEND, so a crash mid-write tears at most the final line, and the
   reader discards any line that does not decode (reporting how many).

   Like Trace and Profile, recording goes through a global sink that is
   disabled by default - one atomic load when off, and no RNG draws ever,
   so fixed-seed tunes are bit-identical with journaling on or off. *)

let schema_version = 1

(* Chained lineage hash: each pipeline stage digests its parent's hash
   together with its own canonical content, so equal kernel hashes imply
   the whole derivation chain matched, not just the final text. *)
let stage parent content =
  Digest.to_hex (Digest.string (parent ^ "\x00" ^ content))

type lineage = {
  dsl_hash : string;
  variant_hash : string;
  tcr_hash : string;
  recipe_hash : string;
  kernel_hash : string;
}

type variant = {
  label : string;  (* variant ids + decomposition point, human-readable *)
  lineage : lineage;
  predicted : float option;  (* surrogate prediction; None for random batch *)
  measured : float;  (* seconds *)
}

type rival = {
  rival_label : string;
  rival_lineage : lineage;
  rival_predicted : float;  (* seconds, by the final surrogate *)
  rival_std : float;  (* ensemble disagreement on that prediction *)
}

(* Contraction-order provenance for network-originated tunes: which
   optimizer chose the order, the serialized tree itself, and its score
   breakdown (log2 time/space/readwrite). Entries journaled before netopt
   existed decode as [None]. *)
type network = {
  net_method : string;  (* "greedy" | "treesa" *)
  net_order : string;  (* serialized contraction tree, e.g. "((t0,t1),t2)" *)
  net_tc : float;
  net_sc : float;
  net_rw : float;
  net_score : float;
}

type entry = {
  run_id : string;  (* content-addressed; "" until recorded *)
  timestamp : float;  (* seconds since epoch; 0.0 until recorded *)
  key : string;  (* canonical problem key; "" outside the service *)
  label : string;
  arch : string;  (* Gpusim.Arch.fingerprint *)
  seed : int;  (* -1 when the caller could not supply one *)
  dsl : string;  (* canonical DSL source; replay re-tunes from this *)
  max_evals : int;
  batch_size : int;
  pool_per_variant : int;
  reps : int;
  pool_size : int;
  evaluations : int;
  gate_checked : int;  (* points screened by the static verifier's gate *)
  gate_rejected : int;  (* points the gate kept out of the pool *)
  gate_diags : (string * int) list;  (* gate error occurrences per BARxxx code *)
  network : network option;  (* contraction-order provenance; None for DSL tunes *)
  semantic_ok : bool option;
      (* translation validation of the winner: Some true when the semantic
         gate proved it equivalent, Some false when it did not, None when
         the gate was off (and for entries journaled before it existed) *)
  iterations : Search_log.iteration list;
  variants : variant list;  (* every evaluated variant, evaluation order *)
  winner : variant;
  importances : (string * float) list;  (* named parameters, descending *)
  residual_r2 : float option;
  rivals : rival list;  (* best-predicted configurations never evaluated *)
}

(* ---------------- JSON codec ---------------- *)

let lineage_to_json l =
  Json.Obj
    [
      ("dsl", Json.Str l.dsl_hash);
      ("variant", Json.Str l.variant_hash);
      ("tcr", Json.Str l.tcr_hash);
      ("recipe", Json.Str l.recipe_hash);
      ("kernel", Json.Str l.kernel_hash);
    ]

let variant_to_json (v : variant) =
  Json.Obj
    (("label", Json.Str v.label)
     :: ("lineage", lineage_to_json v.lineage)
     ::
     (match v.predicted with
     | None -> []
     | Some p -> [ ("predicted", Json.Num p) ])
    @ [ ("measured", Json.Num v.measured) ])

let rival_to_json (r : rival) =
  Json.Obj
    [
      ("label", Json.Str r.rival_label);
      ("lineage", lineage_to_json r.rival_lineage);
      ("predicted", Json.Num r.rival_predicted);
      ("pred_std", Json.Num r.rival_std);
    ]

let network_to_json (n : network) =
  Json.Obj
    [
      ("method", Json.Str n.net_method);
      ("order", Json.Str n.net_order);
      ("tc", Json.Num n.net_tc);
      ("sc", Json.Num n.net_sc);
      ("rw", Json.Num n.net_rw);
      ("score", Json.Num n.net_score);
    ]

let iteration_to_json (it : Search_log.iteration) =
  Json.Obj
    ([
       ("iter", Json.int it.iter);
       ("batch", Json.int it.batch);
       ("evaluations", Json.int it.evaluations);
       ("pool_size", Json.int it.pool_size);
       ("best_so_far", Json.Num it.best_so_far);
       ("batch_best", Json.Num it.batch_best);
       ("batch_mean", Json.Num it.batch_mean);
     ]
    @ (match it.r2 with None -> [] | Some r -> [ ("r2", Json.Num r) ])
    @
    match it.pred_std with
    | None -> []
    | Some s -> [ ("pred_std", Json.Num s) ])

let to_json e =
  Json.Obj
    ([
       ("schema", Json.int schema_version);
       ("run_id", Json.Str e.run_id);
       ("timestamp", Json.Num e.timestamp);
       ("key", Json.Str e.key);
       ("label", Json.Str e.label);
       ("arch", Json.Str e.arch);
       ("seed", Json.int e.seed);
       ("dsl", Json.Str e.dsl);
       ("max_evals", Json.int e.max_evals);
       ("batch_size", Json.int e.batch_size);
       ("pool_per_variant", Json.int e.pool_per_variant);
       ("reps", Json.int e.reps);
       ("pool_size", Json.int e.pool_size);
       ("evaluations", Json.int e.evaluations);
       ("gate_checked", Json.int e.gate_checked);
       ("gate_rejected", Json.int e.gate_rejected);
       ( "gate_diags",
         Json.Arr
           (List.map (fun (c, n) -> Json.Arr [ Json.Str c; Json.int n ]) e.gate_diags)
       );
     ]
    @ (match e.network with
      | None -> []
      | Some n -> [ ("network", network_to_json n) ])
    @ (match e.semantic_ok with
      | None -> []
      | Some ok -> [ ("semantic_ok", Json.Bool ok) ])
    @ [
       ("iterations", Json.Arr (List.map iteration_to_json e.iterations));
       ("variants", Json.Arr (List.map variant_to_json e.variants));
       ("winner", variant_to_json e.winner);
       ( "importances",
         Json.Arr
           (List.map
              (fun (n, w) -> Json.Arr [ Json.Str n; Json.Num w ])
              e.importances) );
     ]
    @ (match e.residual_r2 with
      | None -> []
      | Some r -> [ ("residual_r2", Json.Num r) ])
    @ [ ("rivals", Json.Arr (List.map rival_to_json e.rivals)) ])

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let str name j =
  match Option.bind (Json.member name j) Json.get_str with
  | Some s -> s
  | None -> fail "missing string field %S" name

let num name j =
  match Option.bind (Json.member name j) Json.get_num with
  | Some n -> n
  | None -> fail "missing number field %S" name

let int_field name j = int_of_float (num name j)

let opt_num name j = Option.bind (Json.member name j) Json.get_num

let arr name j =
  match Option.bind (Json.member name j) Json.get_arr with
  | Some l -> l
  | None -> fail "missing array field %S" name

let lineage_of_json j =
  {
    dsl_hash = str "dsl" j;
    variant_hash = str "variant" j;
    tcr_hash = str "tcr" j;
    recipe_hash = str "recipe" j;
    kernel_hash = str "kernel" j;
  }

let variant_of_json j : variant =
  {
    label = str "label" j;
    lineage =
      (match Json.member "lineage" j with
      | Some l -> lineage_of_json l
      | None -> fail "missing field \"lineage\"");
    predicted = opt_num "predicted" j;
    measured = num "measured" j;
  }

let rival_of_json j : rival =
  {
    rival_label = str "label" j;
    rival_lineage =
      (match Json.member "lineage" j with
      | Some l -> lineage_of_json l
      | None -> fail "missing field \"lineage\"");
    rival_predicted = num "predicted" j;
    rival_std = num "pred_std" j;
  }

let iteration_of_json j : Search_log.iteration =
  {
    iter = int_field "iter" j;
    batch = int_field "batch" j;
    evaluations = int_field "evaluations" j;
    pool_size = int_field "pool_size" j;
    best_so_far = num "best_so_far" j;
    batch_best = num "batch_best" j;
    batch_mean = num "batch_mean" j;
    r2 = opt_num "r2" j;
    pred_std = opt_num "pred_std" j;
  }

let importance_of_json = function
  | Json.Arr [ Json.Str n; v ] -> (
    match Json.get_num v with
    | Some w -> (n, w)
    | None -> fail "importance weight is not a number")
  | _ -> fail "importance is not a [name, weight] pair"

(* Pre-gate entries omit the gate fields; decode them to zero/empty. *)
let gate_count name j =
  match opt_num name j with Some n -> int_of_float n | None -> 0

let gate_diags_of_json j =
  match Option.bind (Json.member "gate_diags" j) Json.get_arr with
  | None -> []
  | Some l ->
    List.map
      (fun pair ->
        let code, n = importance_of_json pair in
        (code, int_of_float n))
      l

let network_of_json j : network =
  {
    net_method = str "method" j;
    net_order = str "order" j;
    net_tc = num "tc" j;
    net_sc = num "sc" j;
    net_rw = num "rw" j;
    net_score = num "score" j;
  }

let of_json j =
  try
    let v = int_field "schema" j in
    if v <> schema_version then fail "unsupported journal schema %d" v;
    Ok
      {
        run_id = str "run_id" j;
        timestamp = num "timestamp" j;
        key = str "key" j;
        label = str "label" j;
        arch = str "arch" j;
        seed = int_field "seed" j;
        dsl = str "dsl" j;
        max_evals = int_field "max_evals" j;
        batch_size = int_field "batch_size" j;
        pool_per_variant = int_field "pool_per_variant" j;
        reps = int_field "reps" j;
        pool_size = int_field "pool_size" j;
        evaluations = int_field "evaluations" j;
        gate_checked = gate_count "gate_checked" j;
        gate_rejected = gate_count "gate_rejected" j;
        gate_diags = gate_diags_of_json j;
        network = Option.map network_of_json (Json.member "network" j);
        semantic_ok =
          (match Json.member "semantic_ok" j with
          | Some (Json.Bool b) -> Some b
          | _ -> None);
        iterations = List.map iteration_of_json (arr "iterations" j);
        variants = List.map variant_of_json (arr "variants" j);
        winner =
          (match Json.member "winner" j with
          | Some w -> variant_of_json w
          | None -> fail "missing field \"winner\"");
        importances = List.map importance_of_json (arr "importances" j);
        residual_r2 = opt_num "residual_r2" j;
        rivals = List.map rival_of_json (arr "rivals" j);
      }
  with Bad msg -> Error msg

(* Content-addressed run id: digest of the entry with the id and timestamp
   blanked, so identity depends only on what was tuned and what came out. *)
let run_id e =
  Digest.to_hex
    (Digest.string (Json.to_string (to_json { e with run_id = ""; timestamp = 0.0 })))

(* Where two lineages first diverge, stage names in derivation order. The
   replay-drift gate and the doctor both use this to attribute a changed
   kernel to the earliest responsible pipeline stage. *)
let first_divergence (a : lineage) (b : lineage) =
  if a.dsl_hash <> b.dsl_hash then Some "dsl"
  else if a.variant_hash <> b.variant_hash then Some "variant"
  else if a.tcr_hash <> b.tcr_hash then Some "tcr"
  else if a.recipe_hash <> b.recipe_hash then Some "recipe"
  else if a.kernel_hash <> b.kernel_hash then Some "kernel"
  else None

(* ---------------- file I/O ---------------- *)

let append path e =
  (match Filename.dirname path with "" | "." -> () | d -> Util.Fs.mkdir_p d);
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let line = Json.to_string (to_json e) ^ "\n" in
      let b = Bytes.of_string line in
      ignore (Unix.write fd b 0 (Bytes.length b)))

(* Decode a journal file, tolerating a torn tail: every line that fails to
   parse or decode is discarded and counted rather than aborting the read,
   so a crash mid-append never loses the runs before it. *)
let load path =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let entries = ref [] and discarded = ref 0 in
    String.split_on_char '\n' (Util.Fs.read_file path)
    |> List.iter (fun line ->
           if String.trim line <> "" then
             match Json.parse line with
             | Error _ -> incr discarded
             | Ok j -> (
               match of_json j with
               | Ok e -> entries := e :: !entries
               | Error _ -> incr discarded));
    (List.rev !entries, !discarded)
  end

(* Look an entry up by run id: exact match, unique prefix, or "latest"
   (also the empty string) for the most recent entry. *)
let find entries ~run =
  match run with
  | "" | "latest" -> (
    match List.rev entries with [] -> Error "journal is empty" | e :: _ -> Ok e)
  | _ -> (
    match List.filter (fun e -> e.run_id = run) entries with
    (* duplicates share content (ids are content-addressed): latest wins *)
    | _ :: _ as exact -> Ok (List.nth exact (List.length exact - 1))
    | [] -> (
      let is_prefix e =
        String.length e.run_id >= String.length run
        && String.sub e.run_id 0 (String.length run) = run
      in
      match List.filter is_prefix entries with
      | [ e ] -> Ok e
      | [] -> Error (Printf.sprintf "no journaled run matches %S" run)
      | _ -> Error (Printf.sprintf "run id prefix %S is ambiguous" run)))

(* ---------------- global sink ---------------- *)

let enabled_flag = Atomic.make false
let lock = Mutex.create ()
let sink_path : string option ref = ref None
let recorded : entry list ref = ref []

let enabled () = Atomic.get enabled_flag

let start ?path () =
  Mutex.protect lock (fun () ->
      sink_path := path;
      recorded := []);
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false

let entries () = Mutex.protect lock (fun () -> List.rev !recorded)

(* Record one run. Stamps the wall-clock timestamp and the content-addressed
   run id (neither feeds back into tuning, so results stay bit-identical
   with journaling on or off). Returns the run id, or [None] when the sink
   is disabled. *)
let record e =
  if not (Atomic.get enabled_flag) then None
  else begin
    let e = { e with timestamp = Unix.gettimeofday (); run_id = run_id e } in
    Mutex.protect lock (fun () ->
        recorded := e :: !recorded;
        match !sink_path with None -> () | Some p -> append p e);
    Some e.run_id
  end

(* Run [f] with journaling enabled on a fresh in-memory sink; return its
   value and the recorded entries, restoring the previous sink state. *)
let collect f =
  let was_enabled = enabled () in
  let was_path = Mutex.protect lock (fun () -> !sink_path) in
  start ();
  let finish () =
    stop ();
    Mutex.protect lock (fun () -> sink_path := was_path);
    if was_enabled then Atomic.set enabled_flag true
  in
  let r = Fun.protect ~finally:finish f in
  (r, entries ())

(* ---------------- renderers ---------------- *)

let short id = if String.length id > 12 then String.sub id 0 12 else id

let format_time t =
  if t = 0.0 then "-"
  else begin
    let tm = Unix.gmtime t in
    Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  end

let arch_name fingerprint =
  match String.index_opt fingerprint '|' with
  | Some i -> String.sub fingerprint 0 i
  | None -> fingerprint

let render_history entries =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-12s  %-19s  %-16s  %-12s  %6s  %5s  %12s\n" "run" "when"
       "label" "arch" "seed" "evals" "best(s)");
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "%-12s  %-19s  %-16s  %-12s  %6d  %5d  %12.4e\n"
           (short e.run_id) (format_time e.timestamp) e.label
           (arch_name e.arch) e.seed e.evaluations e.winner.measured))
    entries;
  Buffer.add_string b
    (Printf.sprintf "%d run%s journaled\n" (List.length entries)
       (if List.length entries = 1 then "" else "s"));
  Buffer.contents b

(* Machine-readable history: one summary object per run, file order. A
   scripting-friendly subset of the full entry - everything the doctor's
   findings reference (ids, keys, arch, lineage tail) without the
   per-iteration search state. *)
let history_json entries =
  Json.Arr
    (List.map
       (fun e ->
         Json.Obj
           ([
              ("run_id", Json.Str e.run_id);
              ("timestamp", Json.Num e.timestamp);
              ("key", Json.Str e.key);
              ("label", Json.Str e.label);
              ("arch", Json.Str e.arch);
              ("seed", Json.int e.seed);
              ("evaluations", Json.int e.evaluations);
              ("pool_size", Json.int e.pool_size);
              ("gate_checked", Json.int e.gate_checked);
              ("gate_rejected", Json.int e.gate_rejected);
              ("best_s", Json.Num e.winner.measured);
              ("winner_label", Json.Str e.winner.label);
              ("winner_kernel", Json.Str e.winner.lineage.kernel_hash);
            ]
           @ (match e.network with
             | None -> []
             | Some n -> [ ("network_method", Json.Str n.net_method) ])
           @
           match e.semantic_ok with
           | None -> []
           | Some ok -> [ ("semantic_ok", Json.Bool ok) ]))
       entries)

let render_lineage b indent l =
  List.iter
    (fun (name, h) -> Buffer.add_string b (Printf.sprintf "%s%-8s %s\n" indent name h))
    [
      ("dsl", l.dsl_hash);
      ("variant", l.variant_hash);
      ("tcr", l.tcr_hash);
      ("recipe", l.recipe_hash);
      ("kernel", l.kernel_hash);
    ]

let render_explain e =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "run %s  label=%s  arch=%s  seed=%d\n" (short e.run_id)
       e.label (arch_name e.arch) e.seed);
  Buffer.add_string b
    (Printf.sprintf "  evaluated %d of %d configurations, best %.4e s (%s)\n\n"
       e.evaluations e.pool_size e.winner.measured e.winner.label);
  if e.gate_checked > 0 then
    Buffer.add_string b
      (Printf.sprintf "static gate: %d points checked, %d rejected%s\n\n"
         e.gate_checked e.gate_rejected
         (match e.gate_diags with
         | [] -> ""
         | ds ->
           " ("
           ^ String.concat ", "
               (List.map (fun (c, n) -> Printf.sprintf "%s x%d" c n) ds)
           ^ ")"));
  (match e.network with
  | None -> ()
  | Some n ->
    Buffer.add_string b
      (Printf.sprintf
         "contraction order (%s): %s\n  tc %.3f  sc %.3f  rw %.3f  score %.3f\n\n"
         n.net_method n.net_order n.net_tc n.net_sc n.net_rw n.net_score));
  (match e.semantic_ok with
  | None -> ()
  | Some ok ->
    Buffer.add_string b
      (Printf.sprintf "semantic gate: winner %s\n\n"
         (if ok then "validated (equivalent over the prime field)"
          else "FAILED translation validation")));
  Buffer.add_string b "winner lineage\n";
  render_lineage b "  " e.winner.lineage;
  Buffer.add_string b "\nparameter importances (split gain)\n";
  List.iter
    (fun (name, w) ->
      Buffer.add_string b
        (Printf.sprintf "  %-10s %6.3f  %s\n" name w
           (String.make (int_of_float (w *. 40.0)) '#')))
    e.importances;
  Buffer.add_string b
    (Printf.sprintf "  (sum %.3f)\n"
       (List.fold_left (fun acc (_, w) -> acc +. w) 0.0 e.importances));
  Buffer.add_string b "\nsurrogate fit\n";
  (match e.residual_r2 with
  | Some r2 ->
    Buffer.add_string b
      (Printf.sprintf "  R^2 %.3f over %d model-guided evaluations\n" r2
         (List.length
            (List.filter (fun (v : variant) -> v.predicted <> None) e.variants)))
  | None -> Buffer.add_string b "  no model-guided evaluations\n");
  let over =
    List.filter_map
      (fun (v : variant) -> Option.map (fun p -> (v, p, v.measured -. p)) v.predicted)
      e.variants
    |> List.filter (fun (_, _, d) -> d > 0.0)
    |> List.stable_sort (fun (_, _, a) (_, _, b) -> compare b a)
  in
  (match over with
  | [] -> ()
  | _ ->
    Buffer.add_string b "  worst over-predictions:\n";
    List.filteri (fun i _ -> i < 3) over
    |> List.iter (fun ((v : variant), p, _) ->
           Buffer.add_string b
             (Printf.sprintf "    %-24s predicted %.4e s  measured %.4e s\n"
                v.label p v.measured)));
  Buffer.add_string b "\nrejected rivals (predicted by final surrogate)\n";
  if e.rivals = [] then Buffer.add_string b "  none (pool exhausted)\n"
  else
    List.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf "  %-24s predicted %.4e s  +/- %.2e  kernel %s\n"
             r.rival_label r.rival_predicted r.rival_std
             (short r.rival_lineage.kernel_hash)))
      e.rivals;
  Buffer.contents b
