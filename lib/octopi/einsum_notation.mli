(** NumPy-style einsum notation front end ("lk,mj,ni,lmn->ijk", one
    lowercase letter per axis): a convenience layer over the Figure 2(a)
    DSL. *)

exception Error of string

val default_factor_names : string list

(** [parse ?output ?names ?extents spec]: factor tensors take [names]
    (default A, B, C, ...; specs with more factors than names get generated
    T8, T9, ... names, so network-sized specs need no explicit name list),
    the output is [output] (default "O"), [extents] assigns index sizes
    (others default). Raises {!Error} on malformed specs (missing "->",
    non-letter indices). *)
val parse :
  ?output:string -> ?names:string list -> ?extents:(string * int) list -> string ->
  Ast.program

(** The equivalent Figure 2(a) DSL text. *)
val to_dsl :
  ?output:string -> ?names:string list -> ?extents:(string * int) list -> string -> string

(** Evaluate with the reference oracle; tensors are positional and their
    shapes fix the extents. *)
val contract :
  ?output:string -> ?names:string list -> string -> Tensor.Dense.t list -> Tensor.Dense.t
