(* NumPy-style einsum notation front end: "lk,mj,ni,lmn->ijk" with one
   single-letter index per axis. A convenience layer over the Figure 2(a)
   DSL for users coming from numpy.einsum / einsum-family libraries. *)

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let default_factor_names = [ "A"; "B"; "C"; "D"; "E"; "F"; "G"; "H" ]

(* Extend a name list to cover [n] factors: past the supplied names,
   generate T8, T9, ... (skipping any the caller already used) so
   network-sized specs of tens of tensors parse without the caller
   spelling out every factor name. *)
let extend_names names n =
  let rec fill acc k remaining =
    if remaining = 0 then List.rev acc
    else begin
      let c = Printf.sprintf "T%d" k in
      if List.mem c names then fill acc (k + 1) remaining
      else fill (c :: acc) (k + 1) (remaining - 1)
    end
  in
  let supplied = List.length names in
  if n <= supplied then names else names @ fill [] supplied (n - supplied)

(* split at the first occurrence of a separator substring *)
let split_once s sep =
  let n = String.length s and m = String.length sep in
  let rec find i =
    if i + m > n then None else if String.sub s i m = sep then Some i else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + m) (n - i - m))

let indices_of_string spec =
  List.init (String.length spec) (fun i ->
      let c = spec.[i] in
      if c >= 'a' && c <= 'z' then String.make 1 c
      else err "einsum indices must be lowercase letters, got %C" c)

(* [parse ?output ?names ?extents spec] turns "ik,kj->ij" into an
   [Ast.program]. Factor tensors take [names] (defaults A, B, C, ...);
   the output tensor is [output] (default "O"); [extents] assigns index
   sizes, defaulting to {!Contraction.default_extent}. *)
let parse ?(output = "O") ?(names = default_factor_names) ?(extents = []) spec =
  let lhs, rhs =
    match split_once spec "->" with
    | Some (l, r) -> (String.trim l, String.trim r)
    | None -> err "einsum spec needs '->' (explicit mode): %S" spec
  in
  let factor_specs = String.split_on_char ',' lhs |> List.map String.trim in
  if factor_specs = [] || List.mem "" factor_specs then
    err "empty factor in einsum spec %S" spec;
  let names = extend_names names (List.length factor_specs) in
  let factors =
    List.mapi
      (fun i fspec ->
        { Ast.name = List.nth names i; indices = indices_of_string fspec })
      factor_specs
  in
  let out_indices = indices_of_string rhs in
  let stmt =
    {
      Ast.lhs = { Ast.name = output; indices = out_indices };
      sum_indices = [];  (* inferred per the Einstein convention *)
      factors;
      accumulate = false;
    }
  in
  { Ast.extents; stmts = [ stmt ] }

(* Render back to the DSL text of Figure 2(a). *)
let to_dsl ?output ?names ?extents spec = Ast.to_string (parse ?output ?names ?extents spec)

(* One-call evaluation with the reference oracle: tensors are positional. *)
let contract ?output ?names spec (tensors : Tensor.Dense.t list) =
  let program = parse ?output ?names spec in
  match (Contraction.of_program program, program.stmts) with
  | [ c ], [ stmt ] ->
    if List.length tensors <> List.length stmt.factors then
      err "einsum %S expects %d tensors, got %d" spec (List.length stmt.factors)
        (List.length tensors);
    let env =
      List.map2 (fun (f : Ast.tensor_ref) t -> (f.name, t)) stmt.factors tensors
    in
    (* extents come from the tensors themselves via the einsum oracle *)
    let operands =
      List.map2
        (fun (f : Ast.tensor_ref) t -> Tensor.Einsum.operand t f.indices)
        stmt.factors tensors
    in
    ignore env;
    Tensor.Einsum.contract ~output_indices:c.output_indices operands
  | cs, stmts ->
    err
      "einsum %S produced %d contractions from %d statements; a parsed spec \
       always holds exactly one of each"
      spec (List.length cs) (List.length stmts)
