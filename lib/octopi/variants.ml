(* Top of the OCTOPI stage: from DSL text to the set of strength-reduced
   variants that are handed to TCR, one per contraction tree. *)

type variant = {
  id : int;
  plan : Plan.plan;
  ops : Plan.op list;
  schedule : Fusion.schedule;
  flops : int;
}

type t = {
  contraction : Contraction.t;
  variants : variant list;
}

let of_contraction contraction =
  Obs.Trace.with_span ~cat:"octopi" "octopi.variants" @@ fun span ->
  let plans = Plan.enumerate contraction in
  let variants =
    List.mapi
      (fun id plan ->
        let ops = Plan.lower plan in
        { id; plan; ops; schedule = Fusion.analyze ops; flops = Plan.flops plan })
      plans
  in
  Obs.Trace.add_attrs span
    [
      ("output", contraction.Contraction.output);
      ("variants", string_of_int (List.length variants));
      ( "min_flops",
        string_of_int
          (List.fold_left (fun acc (v : variant) -> min acc v.flops) max_int variants) );
    ];
  { contraction; variants }

(* Parse a DSL program and produce variants per statement. Most benchmarks
   are single-statement; multi-statement programs (e.g. local_grad3's three
   outputs) return one variant set per statement. *)
let of_string src =
  let program = Parse.program src in
  List.map (fun c -> of_contraction c) (Contraction.of_program program)

(* Lookup by enumeration id (the id recorded in tuning lineage). *)
let find t id =
  match List.find_opt (fun (v : variant) -> v.id = id) t.variants with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Variants.find: no variant %d of %s (have %d)" id
         t.contraction.Contraction.output
         (List.length t.variants))

let min_flops t =
  match t.variants with
  | [] -> 0
  | v :: rest -> List.fold_left (fun acc w -> min acc w.flops) v.flops rest

let minimal_flop_variants t =
  let m = min_flops t in
  List.filter (fun v -> v.flops = m) t.variants

(* Every variant must compute the same tensor as the direct evaluation; this
   is the workhorse assertion of the OCTOPI test-suite. *)
let validate ?(tol = 1e-9) t =
  let env = Contraction.random_env t.contraction in
  let reference = Contraction.evaluate t.contraction env in
  List.for_all
    (fun v -> Tensor.Dense.approx_equal ~tol reference (Plan.evaluate v.plan env))
    t.variants
