(** Top of the OCTOPI stage: from DSL text to the set of strength-reduced
    variants handed to TCR, one per contraction tree. *)

type variant = {
  id : int;  (** position in enumeration order *)
  plan : Plan.plan;
  ops : Plan.op list;  (** [Plan.lower plan] *)
  schedule : Fusion.schedule;
  flops : int;
}

type t = {
  contraction : Contraction.t;
  variants : variant list;
}

val of_contraction : Contraction.t -> t

(** Parse a DSL program; one variant set per statement. *)
val of_string : string -> t list

(** Lookup by enumeration id (the id recorded in tuning lineage); raises
    [Invalid_argument] when absent. *)
val find : t -> int -> variant

val min_flops : t -> int
val minimal_flop_variants : t -> variant list

(** Check that every variant computes the same tensor as direct evaluation
    on a random environment - the workhorse assertion of the test-suite. *)
val validate : ?tol:float -> t -> bool
