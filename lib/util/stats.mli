(** Summary statistics used by the autotuner reports and SURF tests. *)

(** Arithmetic mean; [nan] on the empty list. *)
val mean : float list -> float

(** Population variance; 0 for fewer than two samples. *)
val variance : float list -> float

val stddev : float list -> float

(** Raise [Invalid_argument] on the empty list. *)
val min_list : float list -> float

val max_list : float list -> float

(** Median; [nan] on the empty list. *)
val median : float list -> float

(** [percentile p xs]: the [p]-th percentile (0 <= p <= 100) with linear
    interpolation between order statistics; [percentile 0.0] is the
    minimum, [50.0] the median, [100.0] the maximum. [nan] on the empty
    list; raises [Invalid_argument] when [p] is outside [0, 100]. *)
val percentile : float -> float list -> float

(** [argmin f l]: index of the element minimizing [f]. Raises on empty. *)
val argmin : ('a -> float) -> 'a list -> int

(** Coefficient of determination of [predicted] against [actual]; 1 for a
    perfect fit, 0 for the mean predictor. Raises on length mismatch. *)
val r_squared : actual:float list -> predicted:float list -> float
