(** Summary statistics used by the autotuner reports and SURF tests. *)

(** Arithmetic mean; [nan] on the empty list. *)
val mean : float list -> float

(** Population variance; 0 for fewer than two samples. *)
val variance : float list -> float

val stddev : float list -> float

(** Raise [Invalid_argument] on the empty list. *)
val min_list : float list -> float

val max_list : float list -> float

(** Median; [nan] on the empty list. *)
val median : float list -> float

(** [percentile p xs]: the [p]-th percentile (0 <= p <= 100) with linear
    interpolation between order statistics; [percentile 0.0] is the
    minimum, [50.0] the median, [100.0] the maximum. [nan] on the empty
    list; raises [Invalid_argument] when [p] is outside [0, 100]. *)
val percentile : float -> float list -> float

(** [argmin f l]: index of the element minimizing [f]. Raises on empty. *)
val argmin : ('a -> float) -> 'a list -> int

(** Standard normal CDF (Abramowitz-Stegun erf approximation, absolute
    error ~1.5e-7). *)
val normal_cdf : float -> float

type mann_whitney = {
  u : float;  (** U statistic of the second sample *)
  z : float;  (** normal approximation with tie correction *)
  p_greater : float;  (** one-sided: second sample stochastically greater *)
  p_less : float;
  p_two_sided : float;
}

(** [mann_whitney a b]: rank-sum test of the two samples with average ranks
    and tie-corrected variance. Raises [Invalid_argument] on an empty
    sample. All-tied inputs give [z = 0] and one-sided p-values of 0.5. *)
val mann_whitney : float list -> float list -> mann_whitney

(** [bootstrap_ratio_ci rng ~base ~cur]: percentile-bootstrap confidence
    interval (default 95%, 1000 resamples) on median([cur])/median([base]).
    Deterministic for a given [rng] seed. Raises on empty samples. *)
val bootstrap_ratio_ci :
  ?iters:int -> ?confidence:float -> Rng.t -> base:float list -> cur:float list ->
  float * float

type comparison = {
  n_base : int;
  n_cur : int;
  median_base : float;
  median_cur : float;
  ratio : float;  (** median_cur / median_base *)
  p_slower : float;  (** one-sided Mann-Whitney p: cur greater (slower) *)
  ci_low : float;  (** bootstrap CI on the ratio of medians *)
  ci_high : float;
  regression : bool;  (** significant slowdown beyond [min_ratio] *)
  improvement : bool;
}

(** [compare_samples ~base ~cur ()]: the regression-gate verdict. A
    regression requires the median ratio to exceed [min_ratio] (default
    1.10) {e and} statistical evidence: one-sided Mann-Whitney p below
    [alpha] (default 0.01) with the bootstrap CI of the ratio excluding
    1.0. When the sample sizes are too small for the U test to ever reach
    [alpha] (min attainable p = 1/C(n1+n2,n1)), a strict dominance rule is
    used instead (every [cur] sample above every [base] sample).
    Deterministic for a fixed [seed]. Raises on empty samples. *)
val compare_samples :
  ?alpha:float ->
  ?min_ratio:float ->
  ?iters:int ->
  ?seed:int ->
  base:float list ->
  cur:float list ->
  unit ->
  comparison

(** Coefficient of determination of [predicted] against [actual]; 1 for a
    perfect fit, 0 for the mean predictor. Raises on length mismatch. *)
val r_squared : actual:float list -> predicted:float list -> float
