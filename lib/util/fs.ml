(* Small filesystem helpers shared by the bench harness and the CLI. *)

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then begin
    if Sys.file_exists path && not (Sys.is_directory path) then
      invalid_arg (Printf.sprintf "Fs.mkdir_p: %s exists and is not a directory" path)
  end
  else begin
    mkdir_p (Filename.dirname path);
    (* tolerate a concurrent creation between the check and the mkdir *)
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.is_directory path -> ()
  end

let write_file path contents =
  let dir = Filename.dirname path in
  mkdir_p dir;
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
