(* Summary statistics used by the autotuner reports and SURF. *)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let n = float_of_int (List.length xs) in
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. n

let stddev xs = sqrt (variance xs)

let min_list = function
  | [] -> invalid_arg "Stats.min_list: empty"
  | x :: xs -> List.fold_left min x xs

let max_list = function
  | [] -> invalid_arg "Stats.max_list: empty"
  | x :: xs -> List.fold_left max x xs

let median xs =
  match xs with
  | [] -> nan
  | _ ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

(* Percentile with linear interpolation between order statistics (the
   rank is p/100 * (n-1)), so percentile 0 = min, 50 = median, 100 = max. *)
let percentile p xs =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0, 100]";
  match xs with
  | [] -> nan
  | _ ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then arr.(lo)
    else arr.(lo) +. ((rank -. float_of_int lo) *. (arr.(hi) -. arr.(lo)))

(* Index of the minimizing element. *)
let argmin f = function
  | [] -> invalid_arg "Stats.argmin: empty"
  | x :: xs ->
    let _, best_i, _ =
      List.fold_left
        (fun (i, best_i, best_v) y ->
          let v = f y in
          if v < best_v then (i + 1, i, v) else (i + 1, best_i, best_v))
        (1, 0, f x) xs
    in
    best_i

(* Coefficient of determination of predictions vs. observations. *)
let r_squared ~actual ~predicted =
  if List.length actual <> List.length predicted then
    invalid_arg "Stats.r_squared: length mismatch";
  let m = mean actual in
  let ss_tot = List.fold_left (fun acc y -> acc +. ((y -. m) ** 2.0)) 0.0 actual in
  let ss_res =
    List.fold_left2 (fun acc y yh -> acc +. ((y -. yh) ** 2.0)) 0.0 actual predicted
  in
  if ss_tot = 0.0 then if ss_res = 0.0 then 1.0 else 0.0 else 1.0 -. (ss_res /. ss_tot)
