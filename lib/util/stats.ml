(* Summary statistics used by the autotuner reports and SURF. *)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let n = float_of_int (List.length xs) in
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. n

let stddev xs = sqrt (variance xs)

let min_list = function
  | [] -> invalid_arg "Stats.min_list: empty"
  | x :: xs -> List.fold_left min x xs

let max_list = function
  | [] -> invalid_arg "Stats.max_list: empty"
  | x :: xs -> List.fold_left max x xs

let median xs =
  match xs with
  | [] -> nan
  | _ ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

(* Percentile with linear interpolation between order statistics (the
   rank is p/100 * (n-1)), so percentile 0 = min, 50 = median, 100 = max. *)
let percentile p xs =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0, 100]";
  match xs with
  | [] -> nan
  | _ ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then arr.(lo)
    else arr.(lo) +. ((rank -. float_of_int lo) *. (arr.(hi) -. arr.(lo)))

(* Index of the minimizing element. *)
let argmin f = function
  | [] -> invalid_arg "Stats.argmin: empty"
  | x :: xs ->
    let _, best_i, _ =
      List.fold_left
        (fun (i, best_i, best_v) y ->
          let v = f y in
          if v < best_v then (i + 1, i, v) else (i + 1, best_i, best_v))
        (1, 0, f x) xs
    in
    best_i

(* ------------------------------------------------------------------ *)
(* Two-sample comparison for the benchmark regression gate: Mann-Whitney U
   over the raw samples (rank statistics are robust to the heavy right
   tails of wall-time distributions) plus a percentile-bootstrap confidence
   interval on the ratio of medians. Both are deterministic: the test is
   closed-form and the bootstrap draws from an explicit Rng seed. *)

(* Standard normal CDF via the Abramowitz-Stegun 7.1.26 erf approximation
   (max absolute error ~1.5e-7, far below any alpha we gate on). *)
let normal_cdf z =
  let t = 1.0 /. (1.0 +. (0.3275911 *. abs_float z /. sqrt 2.0)) in
  let poly =
    t
    *. (0.254829592
       +. (t *. (-0.284496736 +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  let erf = 1.0 -. (poly *. exp (-.(z *. z) /. 2.0)) in
  if z >= 0.0 then 0.5 *. (1.0 +. erf) else 0.5 *. (1.0 -. erf)

type mann_whitney = {
  u : float;  (* U statistic of the second sample: #{(a, b) pairs with b > a} *)
  z : float;
  p_greater : float;
  p_less : float;
  p_two_sided : float;
}

(* Average ranks with tie correction: rank the pooled samples, sum the
   second sample's ranks, derive U2 = R2 - n2(n2+1)/2. The normal
   approximation is exact enough for n >= ~8 and still well-behaved (if
   conservative) below; [compare_samples] falls back to a dominance rule
   when significance is unreachable at tiny n. *)
let mann_whitney a b =
  let n1 = List.length a and n2 = List.length b in
  if n1 = 0 || n2 = 0 then invalid_arg "Stats.mann_whitney: empty sample";
  let pooled =
    Array.of_list (List.map (fun x -> (x, false)) a @ List.map (fun x -> (x, true)) b)
  in
  Array.sort (fun (x, _) (y, _) -> compare x y) pooled;
  let n = Array.length pooled in
  let rank_sum_b = ref 0.0 in
  let tie_term = ref 0.0 in
  let i = ref 0 in
  while !i < n do
    (* [i, j) is one group of tied values *)
    let j = ref (!i + 1) in
    while !j < n && fst pooled.(!j) = fst pooled.(!i) do incr j done;
    let count = !j - !i in
    let avg_rank = float_of_int (!i + !j + 1) /. 2.0 in
    for k = !i to !j - 1 do
      if snd pooled.(k) then rank_sum_b := !rank_sum_b +. avg_rank
    done;
    let t = float_of_int count in
    if count > 1 then tie_term := !tie_term +. ((t *. t *. t) -. t);
    i := !j
  done;
  let fn1 = float_of_int n1 and fn2 = float_of_int n2 and fn = float_of_int n in
  let u = !rank_sum_b -. (fn2 *. (fn2 +. 1.0) /. 2.0) in
  let mu = fn1 *. fn2 /. 2.0 in
  let var =
    fn1 *. fn2 /. 12.0 *. (fn +. 1.0 -. (!tie_term /. (fn *. (fn -. 1.0))))
  in
  let z = if var <= 0.0 then 0.0 else (u -. mu) /. sqrt var in
  let p_greater = 1.0 -. normal_cdf z in
  let p_less = normal_cdf z in
  { u; z; p_greater; p_less; p_two_sided = 2.0 *. min p_greater p_less }

(* Percentile bootstrap of median(cur)/median(base). *)
let bootstrap_ratio_ci ?(iters = 1000) ?(confidence = 0.95) rng ~base ~cur =
  if base = [] || cur = [] then invalid_arg "Stats.bootstrap_ratio_ci: empty sample";
  let resample_median arr =
    let n = Array.length arr in
    median (List.init n (fun _ -> arr.(Rng.int rng n)))
  in
  let ab = Array.of_list base and ac = Array.of_list cur in
  let ratios =
    List.init iters (fun _ ->
        let mb = resample_median ab in
        let mc = resample_median ac in
        if mb = 0.0 then nan else mc /. mb)
    |> List.filter (fun r -> not (Float.is_nan r))
  in
  match ratios with
  | [] -> (nan, nan)
  | _ ->
    let tail = 100.0 *. (1.0 -. confidence) /. 2.0 in
    (percentile tail ratios, percentile (100.0 -. tail) ratios)

type comparison = {
  n_base : int;
  n_cur : int;
  median_base : float;
  median_cur : float;
  ratio : float;  (* median_cur / median_base *)
  p_slower : float;  (* one-sided Mann-Whitney: cur stochastically greater *)
  ci_low : float;  (* bootstrap CI on the ratio of medians *)
  ci_high : float;
  regression : bool;
  improvement : bool;
}

let choose n k =
  let k = min k (n - k) in
  if k < 0 then 0.0
  else
    let acc = ref 1.0 in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    !acc

let compare_samples ?(alpha = 0.01) ?(min_ratio = 1.10) ?(iters = 1000) ?(seed = 97)
    ~base ~cur () =
  if base = [] || cur = [] then invalid_arg "Stats.compare_samples: empty sample";
  let n_base = List.length base and n_cur = List.length cur in
  let median_base = median base and median_cur = median cur in
  let ratio = if median_base = 0.0 then nan else median_cur /. median_base in
  let mw = mann_whitney base cur in
  let ci_low, ci_high =
    bootstrap_ratio_ci ~iters (Rng.create seed) ~base ~cur
  in
  (* The smallest one-sided p the U test can produce with these sample
     sizes is 1/C(n1+n2, n1); when even that exceeds alpha (tiny n), no
     shift can be "significant", so fall back to strict dominance. *)
  let attainable = 1.0 /. choose (n_base + n_cur) n_base <= alpha in
  let dominates_slower = min_list cur > max_list base in
  let dominates_faster = max_list cur < min_list base in
  let regression =
    (not (Float.is_nan ratio))
    && ratio >= min_ratio
    && (if attainable then mw.p_greater < alpha && ci_low > 1.0 else dominates_slower)
  in
  let improvement =
    (not (Float.is_nan ratio))
    && ratio <= 1.0 /. min_ratio
    && (if attainable then mw.p_less < alpha && ci_high < 1.0 else dominates_faster)
  in
  {
    n_base;
    n_cur;
    median_base;
    median_cur;
    ratio;
    p_slower = mw.p_greater;
    ci_low;
    ci_high;
    regression;
    improvement;
  }

(* Coefficient of determination of predictions vs. observations. *)
let r_squared ~actual ~predicted =
  if List.length actual <> List.length predicted then
    invalid_arg "Stats.r_squared: length mismatch";
  let m = mean actual in
  let ss_tot = List.fold_left (fun acc y -> acc +. ((y -. m) ** 2.0)) 0.0 actual in
  let ss_res =
    List.fold_left2 (fun acc y yh -> acc +. ((y -. yh) ** 2.0)) 0.0 actual predicted
  in
  if ss_tot = 0.0 then if ss_res = 0.0 then 1.0 else 0.0 else 1.0 -. (ss_res /. ss_tot)
