(** Small filesystem helpers shared by the bench harness and the CLI. *)

(** Create [path] and any missing parents, like [mkdir -p]. Existing
    directories are fine; raises [Invalid_argument] if a component exists
    and is not a directory. *)
val mkdir_p : string -> unit

(** Write [contents] to [path], creating parent directories as needed. *)
val write_file : string -> string -> unit

(** Whole file as a string. *)
val read_file : string -> string
