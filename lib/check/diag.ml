(* Machine-readable diagnostics for the whole-pipeline static verifier.

   Every finding carries a stable code (BARxxx - the number never changes
   meaning once assigned), a severity, the pipeline stage that produced it
   and the site it anchors to (an op, a kernel, an array reference), so
   tools can gate on codes and humans can read the rendered line.

   Code ranges:
     BAR00x  verifier internals (lowering failure, analysis aborted)
     BAR01x  TCR well-formedness errors (layer 1)
     BAR02x  recipe/search-point legality errors (layer 2)
     BAR03x  kernel/architecture resource errors (layer 3)
     BAR04x  kernel-quality lints (warnings, layer 3; superseded by the
             proven BAR07x access facts - the codes stay reserved)
     BAR05x  tensor-network stage (lib/netopt: network IR validation and
             contraction-tree checks, ahead of the DSL front end)
     BAR06x  translation validation (lib/check/semantic.ml: prime-field
             equivalence of the five lineage stages dsl -> variant -> tcr
             -> recipe -> kernel; the code names the earliest stage that
             stopped agreeing with its parent)
     BAR07x  symbolic access analysis (lib/check/access.ml: exact affine
             facts - grid-wide coalescing transactions, shared-memory bank
             conflicts, barrier-under-divergence, static smem budget) *)

type severity = Error | Warning | Info

type stage = Network | Tcr | Recipe | Kernel | Semantic

type t = {
  code : string;  (* stable "BARxxx" identifier *)
  severity : severity;
  stage : stage;
  site : string;  (* op, kernel or tensor the diagnostic anchors to *)
  message : string;
}

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"
let stage_name = function
  | Network -> "network"
  | Tcr -> "tcr"
  | Recipe -> "recipe"
  | Kernel -> "kernel"
  | Semantic -> "semantic"

(* Errors sort first, then warnings, then infos; ties by code. *)
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare_diag a b =
  match compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> compare (a.code, a.site, a.message) (b.code, b.site, b.message)
  | c -> c

let diag severity stage ~code ~site fmt =
  Printf.ksprintf (fun message -> { code; severity; stage; site; message }) fmt

let error stage ~code ~site fmt = diag Error stage ~code ~site fmt
let warning stage ~code ~site fmt = diag Warning stage ~code ~site fmt
let info stage ~code ~site fmt = diag Info stage ~code ~site fmt

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
let infos ds = List.filter (fun d -> d.severity = Info) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

(* Per-severity counts: (errors, warnings, infos). *)
let severity_counts ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds

(* Occurrences per code, sorted by code: the journal/metrics summary. *)
let by_code ds =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun d ->
      Hashtbl.replace tbl d.code (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d.code)))
    ds;
  Hashtbl.fold (fun code n acc -> (code, n) :: acc) tbl [] |> List.sort compare

let render d =
  Printf.sprintf "[%s] %s (%s) %s: %s" d.code (severity_name d.severity)
    (stage_name d.stage) d.site d.message

(* Collapse repeats of the same finding across search points: identical
   (code, severity, stage, site, message) tuples render once with a count.
   First-seen order is preserved - a report reads in the order the pipeline
   produced its stages, deterministically, instead of interleaving stages
   by code; callers that want severity-major order sort with
   {!compare_diag} themselves. *)
let dedup ds =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun d ->
      match Hashtbl.find_opt tbl d with
      | Some n -> Hashtbl.replace tbl d (n + 1)
      | None ->
        Hashtbl.add tbl d 1;
        order := d :: !order)
    ds;
  List.rev_map (fun d -> (d, Hashtbl.find tbl d)) !order

let render_report ds =
  let b = Buffer.create 512 in
  List.iter
    (fun (d, n) ->
      Buffer.add_string b (render d);
      if n > 1 then Buffer.add_string b (Printf.sprintf "  (x%d)" n);
      Buffer.add_char b '\n')
    (dedup ds);
  Buffer.contents b

let to_json d =
  Obs.Json.Obj
    [
      ("code", Obs.Json.Str d.code);
      ("severity", Obs.Json.Str (severity_name d.severity));
      ("stage", Obs.Json.Str (stage_name d.stage));
      ("site", Obs.Json.Str d.site);
      ("message", Obs.Json.Str d.message);
    ]
