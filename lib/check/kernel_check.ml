(* Layer 3: resource analysis of an emitted kernel against a target
   architecture.

   The central proof is out-of-bounds freedom: for every array the kernel
   references, the maximum linearized offset any thread can form -
   [sum over dims of stride * (iteration range - 1)], with each index's
   range read off the kernel's own grid/block/loop structure - must stay
   below the allocated element count. Alongside it: the register file must
   hold at least one block, and grid/block dimensions must respect the
   device limits. Quality lints (uncoalesced loads, low occupancy, partial
   warps, an undersized grid) are warnings: legal, but worth flagging. *)

(* Iteration range of index [i] as the kernel actually drives it: the
   block/grid dimension when mapped, the loop extent when serial, the
   maximum of both in malformed kernels, 1 when never driven. *)
let index_range (k : Codegen.Kernel.t) i =
  let d = k.decomp in
  let r = ref 1 in
  let bump v = r := max !r v in
  if d.tx = i then bump (fst k.block);
  (match d.ty with Some ty when ty = i -> bump (snd k.block) | _ -> ());
  if d.bx = i then bump (fst k.grid);
  (match d.by with Some by when by = i -> bump (snd k.grid) | _ -> ());
  List.iter
    (fun (l : Codegen.Kernel.loop) -> if l.index = i then bump l.extent)
    k.thread_loops;
  !r

(* BAR030: symbolic in-bounds proof per referenced array. *)
let check_bounds (k : Codegen.Kernel.t) =
  List.concat_map
    (fun (name, dims) ->
      let extents =
        List.map (fun i -> (i, List.assoc_opt i k.extents)) dims
      in
      if List.exists (fun (_, e) -> e = None) extents then
        List.filter_map
          (fun (i, e) ->
            if e = None then
              Some
                (Diag.error Diag.Kernel ~code:"BAR030" ~site:k.name
                   "cannot bound offsets of %s: dimension %s has no extent" name i)
            else None)
          extents
      else begin
        let exts = List.map (fun (_, e) -> Option.get e) extents in
        let size = List.fold_left ( * ) 1 exts in
        (* row-major strides of the declared dims *)
        let strides =
          List.mapi
            (fun i _ ->
              List.fold_left ( * ) 1 (List.filteri (fun j _ -> j > i) exts))
            exts
        in
        let max_offset =
          List.fold_left2
            (fun acc idx stride -> acc + (stride * (index_range k idx - 1)))
            0 dims strides
        in
        if max_offset >= size then
          [
            Diag.error Diag.Kernel ~code:"BAR030" ~site:k.name
              "out of bounds: max linearized offset %d of %s reaches past its %d \
               elements"
              max_offset name size;
          ]
        else []
      end)
    k.arrays

(* BAR031: at least one block must fit the SM's register file. *)
let check_registers (arch : Gpusim.Arch.t) (k : Codegen.Kernel.t) =
  let regs = Gpusim.Occupancy.regs_per_thread k in
  let tpb = Codegen.Kernel.threads_per_block k in
  if regs * tpb > arch.regs_per_sm then
    [
      Diag.error Diag.Kernel ~code:"BAR031" ~site:k.name
        "register demand %d regs/thread x %d threads = %d exceeds the %d-register \
         file of one %s SM"
        regs tpb (regs * tpb) arch.regs_per_sm arch.codename;
    ]
  else []

(* Fermi's grid.x is 16-bit; Kepler onwards it is 31-bit. grid.y stays
   16-bit on every simulated device. *)
let max_grid_x (arch : Gpusim.Arch.t) =
  if arch.codename = "Fermi" then 65535 else 0x7FFFFFFF

let max_grid_y _arch = 65535

(* BAR032/BAR033/BAR034: launch-dimension limits. *)
let check_dims (arch : Gpusim.Arch.t) (k : Codegen.Kernel.t) =
  let gx, gy = k.grid and bx, by = k.block in
  let nonpos =
    List.filter_map
      (fun (what, v) ->
        if v < 1 then
          Some
            (Diag.error Diag.Kernel ~code:"BAR034" ~site:k.name
               "%s dimension %d is not positive" what v)
        else None)
      [ ("grid x", gx); ("grid y", gy); ("block x", bx); ("block y", by) ]
  in
  let tpb = Codegen.Kernel.threads_per_block k in
  let block =
    if tpb > arch.max_threads_per_block then
      [
        Diag.error Diag.Kernel ~code:"BAR032" ~site:k.name
          "block of %dx%d = %d threads exceeds %s's limit of %d" bx by tpb arch.name
          arch.max_threads_per_block;
      ]
    else []
  in
  let grid =
    (if gx > max_grid_x arch then
       [
         Diag.error Diag.Kernel ~code:"BAR033" ~site:k.name
           "grid x dimension %d exceeds %s's limit of %d" gx arch.name (max_grid_x arch);
       ]
     else [])
    @
    if gy > max_grid_y arch then
      [
        Diag.error Diag.Kernel ~code:"BAR033" ~site:k.name
          "grid y dimension %d exceeds %s's limit of %d" gy arch.name (max_grid_y arch);
      ]
    else []
  in
  nonpos @ block @ grid

(* Errors always - including the access analysis's BAR072 (barrier under
   divergence) and BAR077 (shared memory over budget); [~lints:false]
   skips the warning-level analyses (the tuner's gate only needs the
   errors). The old heuristic BAR040-043 lints are superseded by the
   exact BAR07x facts of [Access]. *)
let check ?(lints = true) (arch : Gpusim.Arch.t) (k : Codegen.Kernel.t) =
  check_bounds k @ check_registers arch k @ check_dims arch k @ Access.errors k
  @ (if lints then Access.lints arch k else [])
