(* Symbolic access analysis: exact affine facts about a kernel's memory
   behaviour, replacing the heuristic BAR04x lints with proven quantities.

   Every address in the kernel IR is affine in the thread/block/serial
   indices, so the interesting hardware quantities have closed forms:

   - global coalescing: the 128-byte transactions of a warp-wide load
     depend only on the warp's base address modulo the segment size, so
     the exact average over the whole grid and serial iteration space is a
     finite sum over the base-residue distribution (Gpusim.Coalesce).
   - shared-memory bank conflicts: the conflict degree of a warp access is
     invariant under base shifts (they rotate the bank assignment), so the
     per-warp lane offsets determine it exactly.
   - barrier-under-divergence: a __syncthreads() inside a guard that not
     every thread of the block passes is a deadlock on real hardware; the
     staging records expose guard and barrier placement directly.

   Codes: BAR070 uncoalesced global loads (warning, exact grid average),
   BAR071 bank conflicts on a staged tile (warning), BAR072 barrier under
   divergence (ERROR), BAR073 low occupancy (warning), BAR074 partial warp
   (warning), BAR075 idle SMs (warning), BAR076 representative-warp
   coalescing model diverges from the exact count (info), BAR077 static
   shared memory over the device budget (ERROR). *)

(* Static shared-memory budget per block: 48 KB, the portable limit every
   simulated generation (Fermi through Maxwell) guarantees. Deliberately a
   constant rather than an Arch field: the 21-field Arch fingerprint is
   pinned by caches and journals. *)
let max_smem_bytes = 48 * 1024

(* A warp at or beyond half the fully-diverged cost (32) is uncoalesced. *)
let uncoalesced_threshold = 16.0

let low_occupancy_threshold = 0.25

(* Model-vs-exact coalescing gap worth surfacing (transactions/warp). *)
let model_divergence_threshold = 0.5

type ref_summary = {
  name : string;
  dims : string list;
  strides : (string * int) list;  (* element stride per index *)
  exact_transactions : float;     (* grid-average transactions per warp *)
  model_transactions : float;     (* representative-warp model *)
}

type tile_summary = {
  array : string;
  tile_dims : string list;
  tile_strides : (string * int) list;
  conflict_degree : int;          (* worst warp, any base *)
  tile_bytes : int;
}

type summary = {
  kernel : string;
  refs : ref_summary list;        (* output first, then unstaged factors *)
  tiles : tile_summary list;      (* one per staged factor *)
  smem_bytes : int;
}

let strides_of (k : Codegen.Kernel.t) dims =
  List.map (fun i -> (i, Gpusim.Coalesce.stride_of k dims i)) dims

let summarize_ref (k : Codegen.Kernel.t) (name, dims) =
  {
    name;
    dims;
    strides = strides_of k dims;
    exact_transactions = Gpusim.Coalesce.exact_transactions_per_warp k dims;
    model_transactions = Gpusim.Coalesce.transactions_per_warp k dims;
  }

let summarize_tile (k : Codegen.Kernel.t) (s : Codegen.Kernel.staging) =
  {
    array = s.array;
    tile_dims = s.tile_dims;
    tile_strides = strides_of k s.tile_dims;
    conflict_degree = Gpusim.Coalesce.warp_bank_conflict_degree k s.tile_dims;
    tile_bytes = Gpusim.Coalesce.element_bytes * Codegen.Kernel.tile_elements k s;
  }

(* Global references the compute loops actually issue: the output, plus
   every factor not staged through shared memory (a staged factor's global
   traffic is the cooperative load; its compute reads hit the tile and are
   measured by the bank-conflict analysis instead). *)
let global_refs (k : Codegen.Kernel.t) =
  (k.op.out, k.op.out_indices)
  :: List.filter (fun (name, _) -> Codegen.Kernel.staging_of k name = None) k.op.factors

let summarize (k : Codegen.Kernel.t) =
  {
    kernel = k.name;
    refs = List.map (summarize_ref k) (global_refs k);
    tiles = List.map (summarize_tile k) k.staging;
    smem_bytes = Codegen.Kernel.smem_bytes k;
  }

(* ------------------------------------------------------------------ *)
(* Errors: always checked, even when lints are off. *)

(* BAR072: a __syncthreads() inside a guard some threads of the block do
   not pass. The guard admits threads with tx < g (every ty row), so it is
   divergent exactly when 0 <= g < blockDim.x. *)
let barrier_divergent (k : Codegen.Kernel.t) (s : Codegen.Kernel.staging) =
  s.barrier_inside_guard
  && (match s.guard with Some g -> g < fst k.block | None -> false)

let errors (k : Codegen.Kernel.t) =
  let barrier =
    List.filter_map
      (fun (s : Codegen.Kernel.staging) ->
        if barrier_divergent k s then
          Some
            (Diag.error Diag.Kernel ~code:"BAR072" ~site:k.name
               "__syncthreads() for the %s tile sits inside the divergent guard tx < %d \
                (block x = %d): threads that skip the guard never reach the barrier"
               s.array
               (Option.value s.guard ~default:0)
               (fst k.block))
        else None)
      k.staging
  in
  let smem = Codegen.Kernel.smem_bytes k in
  let budget =
    if smem > max_smem_bytes then
      [
        Diag.error Diag.Kernel ~code:"BAR077" ~site:k.name
          "static shared memory %d bytes exceeds the %d-byte per-block budget" smem
          max_smem_bytes;
      ]
    else []
  in
  barrier @ budget

(* ------------------------------------------------------------------ *)
(* Lints: exact-quantity warnings and infos. *)

let lints (arch : Gpusim.Arch.t) (k : Codegen.Kernel.t) =
  let refs = List.map (summarize_ref k) (global_refs k) in
  let coalescing =
    List.filter_map
      (fun r ->
        if r.exact_transactions >= uncoalesced_threshold then
          Some
            (Diag.warning Diag.Kernel ~code:"BAR070" ~site:k.name
               "loads of %s average %.2f transactions per warp over the whole grid \
                (uncoalesced)"
               r.name r.exact_transactions)
        else None)
      refs
  in
  let conflicts =
    List.filter_map
      (fun (s : Codegen.Kernel.staging) ->
        let t = summarize_tile k s in
        if t.conflict_degree >= 2 then
          Some
            (Diag.warning Diag.Kernel ~code:"BAR071" ~site:k.name
               "%s tile reads form a %d-way shared-memory bank conflict" t.array
               t.conflict_degree)
        else None)
      k.staging
  in
  let occ = Gpusim.Occupancy.analyze arch k in
  let occupancy =
    if occ.occupancy < low_occupancy_threshold then
      [
        Diag.warning Diag.Kernel ~code:"BAR073" ~site:k.name
          "occupancy %.2f (%s-limited) is below %.2f" occ.occupancy occ.limited_by
          low_occupancy_threshold;
      ]
    else []
  in
  let tpb = Codegen.Kernel.threads_per_block k in
  let partial_warp =
    if tpb < arch.warp_size then
      [
        Diag.warning Diag.Kernel ~code:"BAR074" ~site:k.name
          "block of %d threads does not fill a %d-lane warp" tpb arch.warp_size;
      ]
    else []
  in
  let blocks = Codegen.Kernel.num_blocks k in
  let grid_cover =
    if blocks < arch.sm_count then
      [
        Diag.warning Diag.Kernel ~code:"BAR075" ~site:k.name
          "grid of %d block%s leaves %d of %d SMs idle" blocks
          (if blocks = 1 then "" else "s")
          (arch.sm_count - blocks) arch.sm_count;
      ]
    else []
  in
  let model_divergence =
    List.filter_map
      (fun r ->
        if Float.abs (r.model_transactions -. r.exact_transactions)
           > model_divergence_threshold
        then
          Some
            (Diag.info Diag.Kernel ~code:"BAR076" ~site:k.name
               "representative-warp model gives %.2f transactions/warp for %s; exact \
                grid average is %.2f"
               r.model_transactions r.name r.exact_transactions)
        else None)
      refs
  in
  coalescing @ conflicts @ occupancy @ partial_warp @ grid_cover @ model_divergence
