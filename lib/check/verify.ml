(* The verifier facade: the three analysis layers composed over whole
   programs, single search points and emitted kernels.

   [space_point] is the unit the tuner's pre-evaluation gate runs: recipe
   legality first (cheap, pure list work), and only when that is clean the
   lowering and the kernel/arch resource analysis. A lowering that raises
   becomes a BAR001 finding instead of a crash, so one malformed point can
   never abort a verification sweep. [choice]/[program] sweep entire
   search spaces and fold the findings into a {!report}. *)

type gate_stats = {
  checked : int;
  rejected : int;
  by_code : (string * int) list;  (* error occurrences per code *)
}

let empty_stats = { checked = 0; rejected = 0; by_code = [] }

type report = {
  variants : int;
  points_checked : int;
  kernels_checked : int;  (* points that survived to layer 3 *)
  truncated : bool;  (* a per-op point cap cut the sweep short *)
  diags : Diag.t list;
}

let empty_report =
  { variants = 0; points_checked = 0; kernels_checked = 0; truncated = false; diags = [] }

let ir = Ir_check.check
let recipe = Recipe_check.check
let kernel ?lints arch k = Kernel_check.check ?lints arch k

(* Did this point's findings stop it before layer 3? *)
let stopped_before_kernel ds =
  List.exists
    (fun (d : Diag.t) ->
      d.severity = Diag.Error && (d.stage = Diag.Recipe || d.code = "BAR001"))
    ds

let space_point ?lints ?(label = "check") ~arch (s : Tcr.Space.t) (p : Tcr.Space.point)
    =
  let rds = Recipe_check.check s p in
  if Diag.has_errors rds then rds
  else
    let name = Printf.sprintf "%s_GPU_%d" label (s.op_index + 1) in
    match Codegen.Kernel.lower ~name s.ir s.op p with
    | k -> rds @ Kernel_check.check ?lints arch k
    | exception e ->
      rds
      @ [
          Diag.error Diag.Kernel ~code:"BAR001" ~site:name "lowering failed: %s"
            (Printexc.to_string e);
        ]

(* The tuner's gate predicate: errors only, no lint computation. *)
let point_ok ~arch s p =
  not (Diag.has_errors (space_point ~lints:false ~arch s p))

let take n l = List.filteri (fun i _ -> i < n) l

let choice ?lints ?max_points_per_op ?(label = "check") ~arch
    (ps : Tcr.Space.program_space) =
  let base = Ir_check.check ps.ir in
  let truncated = ref false in
  let points = ref 0 and kernels = ref 0 in
  let point_diags =
    List.concat_map
      (fun (s : Tcr.Space.t) ->
        let pts = Tcr.Space.enumerate s in
        let pts =
          match max_points_per_op with
          | Some n when List.length pts > n ->
            truncated := true;
            take n pts
          | _ -> pts
        in
        List.concat_map
          (fun p ->
            incr points;
            let ds = space_point ?lints ~label ~arch s p in
            if not (stopped_before_kernel ds) then incr kernels;
            ds)
          pts)
      ps.op_spaces
  in
  {
    variants = 1;
    points_checked = !points;
    kernels_checked = !kernels;
    truncated = !truncated;
    diags = base @ point_diags;
  }

let merge a b =
  {
    variants = a.variants + b.variants;
    points_checked = a.points_checked + b.points_checked;
    kernels_checked = a.kernels_checked + b.kernels_checked;
    truncated = a.truncated || b.truncated;
    diags = a.diags @ b.diags;
  }

let program ?lints ?max_points_per_op ~arch variants =
  List.fold_left
    (fun acc (label, ps) -> merge acc (choice ?lints ?max_points_per_op ~label ~arch ps))
    empty_report variants

(* One line suitable for the CLI's text mode: the same per-severity
   totals the JSON "summary" block carries. *)
let summary_line (r : report) =
  let e, w, i = Diag.severity_counts r.diags in
  Printf.sprintf "summary: %d error%s, %d warning%s, %d info%s" e
    (if e = 1 then "" else "s")
    w
    (if w = 1 then "" else "s")
    i
    (if i = 1 then "" else "s")

let report_json (r : report) =
  let open Obs.Json in
  let e, w, i = Diag.severity_counts r.diags in
  Obj
    [
      ("variants", Num (float_of_int r.variants));
      ("points_checked", Num (float_of_int r.points_checked));
      ("kernels_checked", Num (float_of_int r.kernels_checked));
      ("truncated", Bool r.truncated);
      ( "summary",
        Obj
          [
            ("errors", Num (float_of_int e));
            ("warnings", Num (float_of_int w));
            ("infos", Num (float_of_int i));
          ] );
      ("errors", Num (float_of_int e));
      ("warnings", Num (float_of_int w));
      ("infos", Num (float_of_int i));
      ( "by_code",
        Obj (List.map (fun (c, n) -> (c, Num (float_of_int n))) (Diag.by_code r.diags))
      );
      ( "diagnostics",
        Arr
          (List.map
             (fun (d, n) ->
               match Diag.to_json d with
               | Obj fields -> Obj (fields @ [ ("count", Num (float_of_int n)) ])
               | j -> j)
             (Diag.dedup r.diags)) );
    ]
