(** Mutation self-test harness for the semantic validator: four named
    kernel mutations, each a realistic lowering bug, each caught under a
    specific stable code. Loop-order permutations are deliberately absent:
    sums commute, so the validator must accept them. *)

type t =
  | Swap_factor_indices  (** transposed access pattern -> BAR063 *)
  | Corrupt_stride  (** wrong stride table -> BAR063 (value or OOB) *)
  | Drop_accumulation  (** lost "+=": reduction truncated -> BAR063 *)
  | Barrier_under_divergence  (** staging barrier inside guard -> BAR072 *)

val all : t list

(** Stable CLI names: ["swap-index"], ["corrupt-stride"],
    ["drop-accumulation"], ["barrier-divergence"]. *)
val name : t -> string

val of_name : string -> t option

(** The code the mutation must be caught under ([BAR063] for the semantic
    mutations, [BAR072] for the barrier hazard). *)
val expected_code : t -> string

val describe : t -> string

(** Apply to one kernel; the flag reports whether anything changed
    (kernels lacking the required structure pass through unchanged). *)
val apply : t -> Codegen.Kernel.t -> Codegen.Kernel.t * bool
