(** Layer 1 of the static verifier: TCR well-formedness.

    Checks every statement of a {!Tcr.Ir.t}: indices covered by positive
    extents (BAR010), references consistent with declarations - known
    tensor (BAR011), matching rank (BAR012), matching per-position extents
    (BAR013) - temporaries produced before use (BAR014), loop orders that
    permute the iteration space (BAR015), outputs actually produced
    (BAR016), and no accumulation target read in the same dependence wave
    that writes it (BAR017). *)

val check : Tcr.Ir.t -> Diag.t list
