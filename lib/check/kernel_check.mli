(** Layer 3 of the static verifier: resource analysis of an emitted kernel
    against a target architecture.

    Errors: a maximum linearized offset reaching past an array's allocated
    elements - the symbolic out-of-bounds proof (BAR030), register demand
    overflowing one SM's register file (BAR031), a block over the device's
    thread limit (BAR032), grid dimensions over the device's launch limits
    (BAR033), non-positive launch dimensions (BAR034), plus the access
    analysis's barrier-under-divergence (BAR072) and shared-memory budget
    (BAR077) errors. The lint pass delegates to {!Access}: the exact
    BAR07x facts supersede the old heuristic BAR040-043 lints. *)

(** Largest value the kernel's own grid/block/loop structure drives index
    [i] through (1 when the kernel never drives it). *)
val index_range : Codegen.Kernel.t -> string -> int

(** Errors always; [~lints:false] skips the warning-level analyses (the
    tuner's gate only needs the errors). *)
val check : ?lints:bool -> Gpusim.Arch.t -> Codegen.Kernel.t -> Diag.t list
