(** Layer 3 of the static verifier: resource analysis of an emitted kernel
    against a target architecture.

    Errors: a maximum linearized offset reaching past an array's allocated
    elements - the symbolic out-of-bounds proof (BAR030), register demand
    overflowing one SM's register file (BAR031), a block over the device's
    thread limit (BAR032), grid dimensions over the device's launch limits
    (BAR033), non-positive launch dimensions (BAR034). Lints (warnings):
    uncoalesced references at or beyond {!uncoalesced_threshold}
    transactions per warp (BAR040), occupancy below
    {!low_occupancy_threshold} (BAR041), a block smaller than one warp
    (BAR042), a grid that leaves SMs idle (BAR043). *)

val uncoalesced_threshold : float
val low_occupancy_threshold : float

(** Largest value the kernel's own grid/block/loop structure drives index
    [i] through (1 when the kernel never drives it). *)
val index_range : Codegen.Kernel.t -> string -> int

(** Errors always; [~lints:false] skips the warning-level analyses (the
    tuner's gate only needs the errors). *)
val check : ?lints:bool -> Gpusim.Arch.t -> Codegen.Kernel.t -> Diag.t list
