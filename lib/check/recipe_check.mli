(** Layer 2 of the static verifier: legality of one search point for one
    TCR statement, before any kernel is lowered or measured.

    Errors: a reduction index mapped to a thread/block dimension - a
    reduction race (BAR020), the same index assigned to two decomposition
    slots (BAR021), a decomposition or unroll naming an index the
    statement does not iterate (BAR022), a block over the space's thread
    budget (BAR023), a reduction order that is not a permutation of the
    reduction loops (BAR024), an unroll factor that is non-positive or
    exceeds its loop's extent (BAR025). Lints: unrolling a mapped loop
    (BAR026, warning), non-dividing unroll factors (BAR027, info). *)

val check : Tcr.Space.t -> Tcr.Space.point -> Diag.t list
