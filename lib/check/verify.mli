(** The verifier facade: the three analysis layers ({!Ir_check},
    {!Recipe_check}, {!Kernel_check}) composed over whole programs, single
    search points and emitted kernels.

    The tuner's pre-evaluation gate calls {!space_point} (with
    [~lints:false]) on every candidate before it is measured; the [check]
    CLI subcommand calls {!program} over every variant of a DSL source. *)

(** What the tuner's gate saw: points checked, points rejected, and error
    occurrences per diagnostic code. *)
type gate_stats = {
  checked : int;
  rejected : int;
  by_code : (string * int) list;
}

val empty_stats : gate_stats

type report = {
  variants : int;
  points_checked : int;
  kernels_checked : int;  (** points that survived to layer 3 *)
  truncated : bool;  (** a per-op point cap cut the sweep short *)
  diags : Diag.t list;
}

val empty_report : report

(** Layer 1 alone: TCR well-formedness. *)
val ir : Tcr.Ir.t -> Diag.t list

(** Layer 2 alone: recipe legality of one point. *)
val recipe : Tcr.Space.t -> Tcr.Space.point -> Diag.t list

(** Layer 3 alone: resource analysis of an emitted kernel. *)
val kernel : ?lints:bool -> Gpusim.Arch.t -> Codegen.Kernel.t -> Diag.t list

(** Layers 2+3 for one search point: recipe legality, then - only when
    clean - lowering (a raise becomes BAR001) and kernel analysis.
    [~lints:false] computes errors only. *)
val space_point :
  ?lints:bool ->
  ?label:string ->
  arch:Gpusim.Arch.t ->
  Tcr.Space.t ->
  Tcr.Space.point ->
  Diag.t list

(** [point_ok ~arch s p]: no error-severity finding (the gate predicate;
    lints are skipped). *)
val point_ok : arch:Gpusim.Arch.t -> Tcr.Space.t -> Tcr.Space.point -> bool

(** Sweep one variant's whole search space (layer 1 once, layers 2+3 per
    enumerated point, capped per op by [max_points_per_op]). *)
val choice :
  ?lints:bool ->
  ?max_points_per_op:int ->
  ?label:string ->
  arch:Gpusim.Arch.t ->
  Tcr.Space.program_space ->
  report

val merge : report -> report -> report

(** Sweep every labeled variant and merge the reports. *)
val program :
  ?lints:bool ->
  ?max_points_per_op:int ->
  arch:Gpusim.Arch.t ->
  (string * Tcr.Space.program_space) list ->
  report

(** ["summary: E errors, W warnings, I infos"] - the text-mode rendering
    of the JSON report's per-severity ["summary"] block. *)
val summary_line : report -> string

val report_json : report -> Obs.Json.t
