(** Symbolic access analysis: exact affine facts about a kernel's memory
    behaviour. Every address in the kernel IR is affine in the
    thread/block/serial indices, so the hardware quantities have closed
    forms instead of heuristics - exact grid-average coalescing
    transactions, exact shared-memory bank-conflict degree, and a direct
    proof of barrier convergence.

    Codes: BAR070 uncoalesced global loads (warning), BAR071 staged-tile
    bank conflicts (warning), BAR072 barrier under divergence (error),
    BAR073 low occupancy (warning), BAR074 partial warp (warning), BAR075
    idle SMs (warning), BAR076 coalescing model divergence (info), BAR077
    shared memory over budget (error). *)

(** Per-block static shared-memory budget (48 KB - the portable limit of
    every simulated generation; a constant, not an {!Gpusim.Arch} field,
    because the Arch fingerprint is pinned by caches and journals). *)
val max_smem_bytes : int

(** Warps at or beyond half the fully-diverged cost are uncoalesced. *)
val uncoalesced_threshold : float

val low_occupancy_threshold : float

(** Model-vs-exact gap (transactions/warp) worth a BAR076 info. *)
val model_divergence_threshold : float

type ref_summary = {
  name : string;
  dims : string list;
  strides : (string * int) list;  (** element stride per index *)
  exact_transactions : float;  (** grid-average transactions per warp *)
  model_transactions : float;  (** representative-warp model *)
}

type tile_summary = {
  array : string;
  tile_dims : string list;
  tile_strides : (string * int) list;
  conflict_degree : int;  (** worst warp, any base address *)
  tile_bytes : int;
}

type summary = {
  kernel : string;
  refs : ref_summary list;  (** output first, then unstaged factors *)
  tiles : tile_summary list;  (** one per staged factor *)
  smem_bytes : int;
}

(** The affine access summary of a kernel: exact per-reference coalescing,
    per-tile bank conflicts, and the static shared-memory footprint. *)
val summarize : Codegen.Kernel.t -> summary

(** Is this staging's barrier inside a guard some threads never pass? *)
val barrier_divergent : Codegen.Kernel.t -> Codegen.Kernel.staging -> bool

(** BAR072 and BAR077 - checked even when lints are off. *)
val errors : Codegen.Kernel.t -> Diag.t list

(** BAR070/071/073/074/075/076 - exact-quantity warnings and infos. *)
val lints : Gpusim.Arch.t -> Codegen.Kernel.t -> Diag.t list
