(* Mutation self-test harness for the semantic validator: four named kernel
   mutations, each a realistic lowering bug, each caught by a specific
   stable diagnostic code. Permuting loop orders is deliberately NOT here:
   sums commute, so reordering is semantically harmless - the validator
   must accept it, and the mutations must be genuine bugs.

   - swap-index: swap two dims of a factor reference (a transposed access
     pattern); caught as BAR063, kernel vs recipe.
   - corrupt-stride: bump one entry of the kernel's own extents table, so
     every stride computed from it is wrong; caught as BAR063 - either as
     wrong values or as a bounds violation, both kernel-stage divergence.
   - drop-accumulation: truncate the innermost reduction loop to a single
     iteration (the classic lost "+=" bug - visible even though outputs
     start at zero, because the partial sum differs from the full one);
     caught as BAR063.
   - barrier-divergence: stage the first factor through a shared tile
     whose __syncthreads() sits inside a divergent guard; semantically
     neutral under sequential interpretation, so it is caught not by the
     validator but by the access analysis as BAR072. *)

type t =
  | Swap_factor_indices
  | Corrupt_stride
  | Drop_accumulation
  | Barrier_under_divergence

let all =
  [ Swap_factor_indices; Corrupt_stride; Drop_accumulation; Barrier_under_divergence ]

let name = function
  | Swap_factor_indices -> "swap-index"
  | Corrupt_stride -> "corrupt-stride"
  | Drop_accumulation -> "drop-accumulation"
  | Barrier_under_divergence -> "barrier-divergence"

let of_name s =
  match List.find_opt (fun m -> name m = s) all with
  | Some m -> Some m
  | None -> None

(* The stable code each mutation must be caught under. *)
let expected_code = function
  | Swap_factor_indices | Corrupt_stride | Drop_accumulation -> "BAR063"
  | Barrier_under_divergence -> "BAR072"

let describe = function
  | Swap_factor_indices -> "swap two index positions of a factor reference"
  | Corrupt_stride -> "bump one extent of the kernel's stride table"
  | Drop_accumulation -> "truncate the innermost reduction loop to one iteration"
  | Barrier_under_divergence -> "place the staging barrier inside a divergent guard"

(* Apply a mutation to one kernel. Kernels without the required structure
   (e.g. no multi-dim factor to swap, no reduction loop to truncate) are
   returned unchanged - [applied] reports whether anything changed so
   harnesses can skip vacuous cases. *)
let apply m (k : Codegen.Kernel.t) =
  match m with
  | Swap_factor_indices ->
    let swapped = ref false in
    let factors =
      List.map
        (fun (fname, dims) ->
          match dims with
          | a :: b :: rest when not !swapped ->
            swapped := true;
            (fname, b :: a :: rest)
          | _ -> (fname, dims))
        k.op.factors
    in
    ({ k with op = { k.op with factors } }, !swapped)
  | Corrupt_stride -> (
    (* bump the extent of an index that sits at position >= 1 of some
       reference: the strides of every dim before it are products of the
       trailing extents, so the bump genuinely corrupts an address *)
    let refs = (k.op.out, k.op.out_indices) :: k.op.factors in
    let candidate =
      List.fold_left
        (fun acc (_, dims) ->
          match (acc, dims) with
          | Some _, _ -> acc
          | None, _ :: (second :: _) -> Some second
          | None, _ -> None)
        None refs
    in
    match candidate with
    | None -> (k, false)
    | Some i ->
      let extents =
        List.map
          (fun (j, e) -> if j = i then (j, e + 1) else (j, e))
          k.extents
      in
      ({ k with extents }, true))
  | Drop_accumulation -> (
    match
      List.rev k.thread_loops
      |> List.find_opt (fun (l : Codegen.Kernel.loop) -> (not l.parallel) && l.extent > 1)
    with
    | None -> (k, false)
    | Some victim ->
      let thread_loops =
        List.map
          (fun (l : Codegen.Kernel.loop) ->
            if l == victim then { l with extent = 1; unroll = 1 } else l)
          k.thread_loops
      in
      ({ k with thread_loops }, true))
  | Barrier_under_divergence -> (
    match k.op.factors with
    | [] -> (k, false)
    | (fname, _) :: _ ->
      let guard = max 1 (fst k.block - 1) in
      if guard >= fst k.block then (k, false)
      else
        ( Codegen.Kernel.stage_factor ~guard ~barrier_inside_guard:true k fname,
          true ))
