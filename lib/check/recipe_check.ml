(* Layer 2: legality of one search point (a "recipe") for one TCR
   statement, checked before any kernel is lowered or measured.

   The paper's decision algorithm only proposes legal points, so the
   default enumerated space verifies clean - but points also arrive from
   saved artifacts, journals and hand-written recipes, and a single
   reduction index mapped to a thread or block dimension silently computes
   garbage: every thread accumulates a partial sum into the same output
   element. That is the race this layer refuses. *)

open Tcr

let site_of (s : Space.t) = Printf.sprintf "op%d(%s)" (s.op_index + 1) s.op.out

let mapped_slots (p : Space.point) =
  let d = p.decomp in
  [ ("tx", Some d.tx); ("ty", d.ty); ("bx", Some d.bx); ("by", d.by) ]
  |> List.filter_map (fun (slot, i) -> Option.map (fun i -> (slot, i)) i)

(* BAR020/BAR021/BAR022: the decomposition itself. *)
let check_decomposition (s : Space.t) (p : Space.point) =
  let site = site_of s in
  let op = s.op in
  let reductions = Ir.reduction_indices op in
  let slots = mapped_slots p in
  let unknown =
    List.filter_map
      (fun (slot, i) ->
        if List.mem i (Ir.iteration_indices op) then None
        else
          Some
            (Diag.error Diag.Recipe ~code:"BAR022" ~site
               "%s is mapped to index %s, which the statement does not iterate" slot i))
      slots
  in
  let races =
    List.filter_map
      (fun (slot, i) ->
        if List.mem i reductions then
          Some
            (Diag.error Diag.Recipe ~code:"BAR020" ~site
               "reduction index %s is mapped to %s: concurrent threads would race on \
                the accumulation"
               i slot)
        else None)
      slots
  in
  let duplicates =
    let rec dups seen = function
      | [] -> []
      | (slot, i) :: rest ->
        (match List.assoc_opt i seen with
        | Some prev ->
          [
            Diag.error Diag.Recipe ~code:"BAR021" ~site
              "index %s is assigned to both %s and %s" i prev slot;
          ]
        | None -> [])
        @ dups ((i, slot) :: seen) rest
    in
    dups [] slots
  in
  unknown @ races @ duplicates

(* BAR023: the block must fit the space's thread budget. *)
let check_threads (s : Space.t) (p : Space.point) =
  let d = p.decomp in
  match
    ( List.assoc_opt d.tx s.ir.Ir.extents,
      match d.ty with
      | None -> Some 1
      | Some ty -> List.assoc_opt ty s.ir.Ir.extents )
  with
  | Some ex, Some ey when ex * ey > s.max_threads_per_block ->
    [
      Diag.error Diag.Recipe ~code:"BAR023" ~site:(site_of s)
        "block of %dx%d = %d threads exceeds the %d-thread limit" ex ey (ex * ey)
        s.max_threads_per_block;
    ]
  | _ -> []  (* missing extents are layer-1 BAR010 findings *)

(* BAR024: a non-empty red_order must permute exactly the reduction set. *)
let check_red_order (s : Space.t) (p : Space.point) =
  match p.red_order with
  | [] -> []
  | order ->
    let reductions = Ir.reduction_indices s.op in
    if List.sort compare order = List.sort compare reductions then []
    else
      [
        Diag.error Diag.Recipe ~code:"BAR024" ~site:(site_of s)
          "reduction order (%s) is not a permutation of the reduction loops (%s)"
          (String.concat "," order)
          (String.concat "," reductions);
      ]

(* BAR025/BAR026/BAR027: unroll factors against their loops. *)
let check_unrolls (s : Space.t) (p : Space.point) =
  let site = site_of s in
  let mapped = List.map snd (mapped_slots p) in
  List.concat_map
    (fun (loop, u) ->
      if not (List.mem loop (Ir.iteration_indices s.op)) then
        [
          Diag.error Diag.Recipe ~code:"BAR022" ~site
            "unroll names index %s, which the statement does not iterate" loop;
        ]
      else if u < 1 then
        [
          Diag.error Diag.Recipe ~code:"BAR025" ~site
            "unroll factor %d of loop %s is not positive" u loop;
        ]
      else
        match List.assoc_opt loop s.ir.Ir.extents with
        | None -> []  (* layer-1 BAR010 *)
        | Some e ->
          if u > e then
            [
              Diag.error Diag.Recipe ~code:"BAR025" ~site
                "unroll factor %d exceeds the extent %d of loop %s" u e loop;
            ]
          else if List.mem loop mapped then
            [
              Diag.warning Diag.Recipe ~code:"BAR026" ~site
                "loop %s is mapped to the hardware decomposition; its unroll factor \
                 is ignored"
                loop;
            ]
          else if u > 1 && e mod u <> 0 then
            [
              Diag.info Diag.Recipe ~code:"BAR027" ~site
                "unroll factor %d does not divide the extent %d of loop %s (epilogue \
                 iterations remain)"
                u e loop;
            ]
          else [])
    p.unrolls

let check (s : Space.t) (p : Space.point) =
  check_decomposition s p @ check_threads s p @ check_red_order s p @ check_unrolls s p
