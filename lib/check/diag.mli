(** Machine-readable diagnostics for the whole-pipeline static verifier.

    Each finding carries a stable [BARxxx] code, a severity, the pipeline
    stage that produced it and the site it anchors to. Code ranges:
    BAR00x verifier internals, BAR01x TCR well-formedness, BAR02x recipe
    legality, BAR03x kernel/arch resource errors, BAR04x kernel lints
    (reserved; superseded by BAR07x), BAR05x tensor-network IR validation
    and contraction-tree checks ([lib/netopt], ahead of the DSL front
    end), BAR06x translation validation ({!Semantic} stage: prime-field
    equivalence of the five lineage stages), BAR07x symbolic access
    analysis (exact coalescing, bank conflicts, barrier-under-divergence,
    smem budget). *)

type severity = Error | Warning | Info

type stage = Network | Tcr | Recipe | Kernel | Semantic

type t = {
  code : string;
  severity : severity;
  stage : stage;
  site : string;
  message : string;
}

val severity_name : severity -> string
val stage_name : stage -> string

(** Errors before warnings before infos; ties by (code, site, message). *)
val compare_diag : t -> t -> int

val error :
  stage -> code:string -> site:string -> ('a, unit, string, t) format4 -> 'a

val warning :
  stage -> code:string -> site:string -> ('a, unit, string, t) format4 -> 'a

val info :
  stage -> code:string -> site:string -> ('a, unit, string, t) format4 -> 'a

val errors : t list -> t list
val warnings : t list -> t list
val infos : t list -> t list
val has_errors : t list -> bool

(** Per-severity counts: [(errors, warnings, infos)]. *)
val severity_counts : t list -> int * int * int

(** Occurrences per code, sorted by code. *)
val by_code : t list -> (string * int) list

(** One line: ["[BAR020] error (recipe) op1: ..."]. *)
val render : t -> string

(** Distinct findings with their repeat counts, in deterministic
    first-seen order (pipeline-stage order is preserved rather than
    interleaved by code). *)
val dedup : t list -> (t * int) list

(** [render] every deduplicated finding, one per line, with repeat counts. *)
val render_report : t list -> string

val to_json : t -> Obs.Json.t
