(* Layer 1: TCR well-formedness.

   Proves, per statement, that every index is covered by a positive extent,
   that every tensor reference is consistent with its declaration (known,
   same rank, same per-position extent - the precondition for in-bounds
   linearized offsets), that temporaries are produced before any statement
   reads them, that the loop order is a genuine permutation of the
   iteration space, and that no accumulation target is read concurrently
   with its writes (by its own statement, or by another statement of the
   same dependence wave per {!Tcr.Depgraph}). *)

open Tcr

let op_site i (op : Ir.op) = Printf.sprintf "op%d(%s)" (i + 1) op.out

let extent_opt (ir : Ir.t) i = List.assoc_opt i ir.extents

(* BAR010: indices covered by positive extents. *)
let check_extents ir i (op : Ir.op) =
  let site = op_site i op in
  List.filter_map
    (fun idx ->
      match extent_opt ir idx with
      | None ->
        Some
          (Diag.error Diag.Tcr ~code:"BAR010" ~site "index %s has no declared extent"
             idx)
      | Some e when e < 1 ->
        Some
          (Diag.error Diag.Tcr ~code:"BAR010" ~site
             "index %s has non-positive extent %d" idx e)
      | Some _ -> None)
    (Ir.iteration_indices op)

(* BAR011/BAR012/BAR013: every reference (output and factors) against the
   variable declarations. Extents are compared per position: a reference
   whose slot extent differs from the declared dimension's extent indexes
   outside the allocated array. *)
let check_refs ir i (op : Ir.op) =
  let site = op_site i op in
  let refs = (op.out, op.out_indices) :: op.factors in
  List.concat_map
    (fun (name, dims) ->
      match List.find_opt (fun (v : Ir.var) -> v.name = name) ir.Ir.vars with
      | None ->
        [ Diag.error Diag.Tcr ~code:"BAR011" ~site "reference to undeclared tensor %s" name ]
      | Some decl ->
        if List.length decl.dims <> List.length dims then
          [
            Diag.error Diag.Tcr ~code:"BAR012" ~site
              "%s referenced with rank %d but declared with rank %d" name
              (List.length dims) (List.length decl.dims);
          ]
        else
          List.concat
            (List.mapi
               (fun pos (ref_idx, decl_idx) ->
                 match (extent_opt ir ref_idx, extent_opt ir decl_idx) with
                 | Some re, Some de when re <> de ->
                   [
                     Diag.error Diag.Tcr ~code:"BAR013" ~site
                       "%s dimension %d: reference index %s has extent %d but the \
                        declared dimension %s has extent %d"
                       name pos ref_idx re decl_idx de;
                   ]
                 | _ -> [])
               (List.combine dims decl.dims)))
    refs

(* BAR015: the loop order must be a permutation of the iteration indices. *)
let check_loop_order i (op : Ir.op) =
  if List.sort compare op.loop_order = Ir.iteration_indices op then []
  else
    [
      Diag.error Diag.Tcr ~code:"BAR015" ~site:(op_site i op)
        "loop order (%s) is not a permutation of the iteration indices (%s)"
        (String.concat "," op.loop_order)
        (String.concat "," (Ir.iteration_indices op));
    ]

(* BAR014/BAR016: producer-before-consumer order and outputs produced. *)
let check_def_use (ir : Ir.t) =
  let defined = Hashtbl.create 16 in
  List.iter
    (fun (v : Ir.var) -> if v.role = Ir.Input then Hashtbl.replace defined v.name ())
    ir.vars;
  let ds = ref [] in
  List.iteri
    (fun i (op : Ir.op) ->
      List.iter
        (fun (name, _) ->
          if not (Hashtbl.mem defined name) then
            ds :=
              Diag.error Diag.Tcr ~code:"BAR014" ~site:(op_site i op)
                "%s is read before any statement produces it" name
              :: !ds)
        op.factors;
      Hashtbl.replace defined op.out ())
    ir.ops;
  List.iter
    (fun (v : Ir.var) ->
      if v.role = Ir.Output && not (Hashtbl.mem defined v.name) then
        ds :=
          Diag.error Diag.Tcr ~code:"BAR016" ~site:v.name
            "output %s is never produced by any statement" v.name
          :: !ds)
    ir.vars;
  List.rev !ds

(* BAR017: an accumulation target must never be read in the same wave that
   writes it. The intra-statement case (out among the factors) is a data
   race inside one kernel: threads read elements other threads are
   accumulating. The cross-statement case checks each {!Depgraph} wave -
   statements a streams-capable device may launch concurrently - for a
   read or a second write of a tensor some wave member writes. *)
let check_waves (ir : Ir.t) =
  let self =
    List.concat
      (List.mapi
         (fun i (op : Ir.op) ->
           if List.mem_assoc op.out op.factors then
             [
               Diag.error Diag.Tcr ~code:"BAR017" ~site:(op_site i op)
                 "accumulation target %s is read by its own statement (intra-kernel \
                  reduction race)"
                 op.out;
             ]
           else [])
         ir.ops)
  in
  let cross =
    let graph = Depgraph.build ir in
    List.concat_map
      (fun wave ->
        let rec pairs = function
          | [] -> []
          | (a : Ir.op) :: rest ->
            List.concat_map
              (fun (b : Ir.op) ->
                let hazard =
                  List.mem_assoc a.out b.factors
                  || List.mem_assoc b.out a.factors
                  || a.out = b.out
                in
                if hazard then
                  [
                    Diag.error Diag.Tcr ~code:"BAR017" ~site:a.out
                      "statements producing %s and %s share a dependence wave but \
                       access the accumulation target concurrently"
                      a.out b.out;
                  ]
                else [])
              rest
            @ pairs rest
        in
        pairs wave)
      (Depgraph.waves graph)
  in
  self @ cross

let check (ir : Ir.t) =
  let per_op =
    List.concat
      (List.mapi
         (fun i op -> check_extents ir i op @ check_refs ir i op @ check_loop_order i op)
         ir.ops)
  in
  per_op @ check_def_use ir @ check_waves ir
