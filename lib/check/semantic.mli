(** Translation validation: prove that every lowered kernel computes its
    contraction.

    Each stage of a tuned candidate's lineage (dsl -> variant -> tcr ->
    recipe -> kernel) denotes a polynomial in the input tensor entries;
    the stages are evaluated on uniformly random points of F_p
    (p = 2^31 - 1) and compared exactly (Schwartz-Zippel: distinct
    polynomials of degree d agree with probability at most d/p per
    round, so a false "equivalent" is astronomically unlikely and a false
    "different" is impossible). The kernel stage interprets the kernel IR
    faithfully - grid/block loops, unrolling with epilogue, scalar
    replacement, shared-memory staging - with addresses formed from the
    kernel's own extents table and bounds-checked, so stride corruption
    surfaces instead of being normalized away.

    Codes name the earliest stage that stopped agreeing with its parent:
    BAR060 variant vs dsl, BAR061 tcr vs variant, BAR062 recipe vs tcr,
    BAR063 kernel vs recipe (including out-of-bounds), BAR064 evaluation
    aborted before comparison. *)

(** The field modulus, 2^31 - 1. *)
val prime : int

val default_rounds : int
val default_seed : int

(** Points the DSL einsum oracle iterates per round (saturating). The
    naive einsum is the spec, so this cost is irreducible; gates skip
    validation when it exceeds {!gate_budget}. *)
val cost : Octopi.Contraction.t list -> int

(** Largest {!cost} the tuner's semantic gate will validate (the O(n^10)
    TCE example exists precisely because its naive nest is infeasible). *)
val gate_budget : int

type verdict = {
  equivalent : bool;
  failed_stage : string option;  (** earliest non-equivalent stage *)
  rounds_run : int;
  stages : (string * string) list;
      (** per-stage output digest from the first round, in pipeline order
          (the [check --diff] view) *)
  diags : Diag.t list;
}

(** Validate one candidate's full lineage: [statements] the parsed DSL,
    [variant_ids] the chosen OCTOPI variant per statement, [ir] the merged
    TCR program, [points] one search point per op. [mutate_kernel] rewrites
    each lowered kernel before interpretation (the mutation self-test
    harness). Deterministic in [seed]. *)
val validate :
  ?rounds:int ->
  ?seed:int ->
  ?mutate_kernel:(Codegen.Kernel.t -> Codegen.Kernel.t) ->
  label:string ->
  Octopi.Contraction.t list ->
  variant_ids:int list ->
  ir:Tcr.Ir.t ->
  points:Tcr.Space.point list ->
  verdict
