(* Translation validation: prove that every lowered kernel computes its
   contraction.

   Each pipeline stage of a tuned candidate's lineage - DSL statement ->
   OCTOPI variant (strength-reduction plan) -> merged TCR program ->
   recipe (search point's schedule) -> lowered kernel - denotes a
   polynomial in the input tensor entries: a sum of products with
   non-negative integer coefficients. Two stages are equivalent iff those
   polynomials are identical, and by Schwartz-Zippel two distinct
   polynomials of total degree d agree on uniformly random points of the
   prime field F_p with probability at most d/p per round. With
   p = 2^31 - 1 and the pipeline's tiny degrees (one per factor), a
   handful of rounds makes a false "equivalent" verdict astronomically
   unlikely - while a false "different" verdict is impossible, since every
   stage is evaluated exactly (no rounding).

   Each stage is evaluated with its own iteration structure, not a shared
   one: the DSL as the direct einsum, the variant as its binary-contraction
   plan over temporaries, the TCR program following each op's loop_order,
   the recipe through Space.serial_schedule (mapped indices x serial
   schedule), and the kernel by faithful interpretation of the kernel IR -
   grid/block loops, unrolled main loop plus epilogue, scalar replacement,
   shared-memory staging, and addresses formed from the KERNEL'S OWN
   extents table so that corrupted strides surface as wrong values or
   out-of-bounds accesses rather than being silently normalized away.
   Every access is bounds-checked against the true allocation; an
   out-of-bounds read is reported as the stage's divergence.

   Codes (stage = the earliest one that stopped agreeing with its parent):
     BAR060  variant disagrees with the DSL einsum
     BAR061  TCR program disagrees with the variant
     BAR062  recipe schedule disagrees with the TCR program
     BAR063  lowered kernel disagrees with the recipe (including OOB)
     BAR064  evaluation aborted (structural failure before comparison) *)

exception Oob of string
exception Abort of string

let abort fmt = Printf.ksprintf (fun s -> raise (Abort s)) fmt

(* F_p arithmetic, p = 2^31 - 1 (Mersenne). Products fit 63-bit native
   ints: (p-1)^2 = (2^31-2)^2 < 2^62 <= max_int. *)
let prime = 2147483647

let addp a b =
  let s = a + b in
  if s >= prime then s - prime else s

let mulp a b = a * b mod prime

(* ------------------------------------------------------------------ *)
(* Field tensors *)

type tensor = { dims : string list; data : int array }

type env = (string, tensor) Hashtbl.t

let find (env : env) name =
  match Hashtbl.find_opt env name with
  | Some t -> t
  | None -> abort "unbound tensor %s" name

let ext_of extents i =
  match List.assoc_opt i extents with
  | Some e -> e
  | None -> abort "no extent for index %s" i

let shape_of extents dims = List.map (ext_of extents) dims
let size_of shape = List.fold_left ( * ) 1 shape

let strides_of shape =
  let n = List.length shape in
  List.init n (fun i ->
      List.fold_left ( * ) 1 (List.filteri (fun j _ -> j > i) shape))

let alloc extents dims = { dims; data = Array.make (size_of (shape_of extents dims)) 0 }

(* Fresh random inputs for one round, drawn in declaration order so the
   whole validation is a pure function of the seed. *)
let random_inputs rng extents (inputs : (string * string list) list) : env =
  let env = Hashtbl.create 16 in
  List.iter
    (fun (name, dims) ->
      let t = alloc extents dims in
      for i = 0 to Array.length t.data - 1 do
        t.data.(i) <- Util.Rng.int rng prime
      done;
      Hashtbl.replace env name t)
    inputs;
  env

let with_produced (inputs : env) extents (produced : (string * string list) list) : env =
  let env = Hashtbl.copy inputs in
  List.iter
    (fun (name, dims) ->
      if not (Hashtbl.mem env name) then Hashtbl.replace env name (alloc extents dims))
    produced;
  env

(* ------------------------------------------------------------------ *)
(* Generic sum-of-products evaluation: out[out_dims] += prod factors,
   iterating [order] (which must drive every referenced index; a wrong
   order - missing, duplicated or extra indices - either aborts or shows
   up as a wrong value, exactly what the validation is for). *)

let eval_sop ~extents (env : env) ~out:(oname, odims) ~factors ~order =
  let slots = Array.of_list order in
  let nslots = Array.length slots in
  let slot name =
    let rec go i =
      if i >= nslots then abort "index %s of %s is not driven by the loop order" name oname
      else if slots.(i) = name then i
      else go (i + 1)
    in
    go 0
  in
  let compile (name, dims) =
    let t = find env name in
    let strides = strides_of (shape_of extents dims) in
    let s = Array.make nslots 0 in
    List.iteri (fun pos dim -> s.(slot dim) <- s.(slot dim) + List.nth strides pos) dims;
    (t.data, s)
  in
  let odata, ostrides = compile (oname, odims) in
  let factor_refs = Array.of_list (List.map compile factors) in
  let exts = Array.of_list (List.map (ext_of extents) order) in
  let vals = Array.make nslots 0 in
  let offset strides =
    let off = ref 0 in
    for i = 0 to nslots - 1 do
      off := !off + (strides.(i) * vals.(i))
    done;
    !off
  in
  let rec go s =
    if s = nslots then begin
      let p = ref 1 in
      Array.iter (fun (data, str) -> p := mulp !p data.(offset str)) factor_refs;
      let o = offset ostrides in
      odata.(o) <- addp odata.(o) !p
    end
    else
      for v = 0 to exts.(s) - 1 do
        vals.(s) <- v;
        go (s + 1)
      done
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Stage evaluators. Each returns the output tensors as (name, data). *)

let refs_of (frs : Octopi.Ast.tensor_ref list) =
  List.map (fun (f : Octopi.Ast.tensor_ref) -> (f.name, f.indices)) frs

(* Stage 1 - dsl: the direct einsum of each statement. Outputs shared
   across statements (repeated outputs accumulate, as on the device). *)
let eval_dsl ~extents inputs (statements : Octopi.Contraction.t list) =
  let produced =
    List.map (fun (c : Octopi.Contraction.t) -> (c.output, c.output_indices)) statements
  in
  let env = with_produced inputs extents produced in
  List.iter
    (fun (c : Octopi.Contraction.t) ->
      eval_sop ~extents env
        ~out:(c.output, c.output_indices)
        ~factors:(refs_of c.factors)
        ~order:(c.output_indices @ c.sum_indices))
    statements;
  List.map (fun (name, _) -> (name, (find env name).data)) produced

(* Stage 2 - variant: each statement's strength-reduction plan, evaluated
   op by op over its temporaries. Temporaries are renamed apart across
   statements (as Combine.merge does) so they cannot collide. *)
let eval_variant ~extents inputs
    (choices : (Octopi.Contraction.t * Octopi.Variants.variant) list) =
  let outputs =
    List.map (fun ((c : Octopi.Contraction.t), _) -> (c.output, c.output_indices)) choices
  in
  let env = with_produced inputs extents outputs in
  List.iteri
    (fun si ((c : Octopi.Contraction.t), (v : Octopi.Variants.variant)) ->
      let rename name =
        if name = c.output then name
        else if List.exists (fun (op : Octopi.Plan.op) -> op.out = name) v.ops then
          Printf.sprintf "s%d_%s" (si + 1) name
        else name
      in
      List.iter
        (fun (op : Octopi.Plan.op) ->
          let out = rename op.out in
          let factors = List.map (fun (n, d) -> (rename n, d)) op.factors in
          if not (Hashtbl.mem env out) then
            Hashtbl.replace env out (alloc extents op.out_indices);
          let red =
            List.sort_uniq compare (List.concat_map snd factors)
            |> List.filter (fun i -> not (List.mem i op.out_indices))
          in
          eval_sop ~extents env ~out:(out, op.out_indices) ~factors
            ~order:(op.out_indices @ red))
        v.ops)
    choices;
  List.map (fun (name, _) -> (name, (find env name).data)) outputs

let ir_produced (ir : Tcr.Ir.t) =
  List.filter_map
    (fun (v : Tcr.Ir.var) ->
      if v.role = Tcr.Ir.Input then None else Some (v.name, v.dims))
    ir.vars

let ir_outputs (ir : Tcr.Ir.t) =
  List.filter_map
    (fun (v : Tcr.Ir.var) ->
      if v.role = Tcr.Ir.Output then Some v.name else None)
    ir.vars

(* Stage 3 - tcr: the merged program, each op iterated by its own
   loop_order. *)
let eval_tcr ~extents inputs (ir : Tcr.Ir.t) =
  let env = with_produced inputs extents (ir_produced ir) in
  List.iter
    (fun (op : Tcr.Ir.op) ->
      eval_sop ~extents env ~out:(op.out, op.out_indices) ~factors:op.factors
        ~order:op.loop_order)
    ir.ops;
  List.map (fun name -> (name, (find env name).data)) (ir_outputs ir)

(* Stage 4 - recipe: each op under its search point, iterating the mapped
   indices then the serial schedule (the single definition shared with the
   kernel lowering). *)
let eval_recipe ~extents inputs (ir : Tcr.Ir.t) (points : Tcr.Space.point list) =
  if List.length points <> List.length ir.ops then abort "one point per op required";
  let env = with_produced inputs extents (ir_produced ir) in
  List.iter2
    (fun (op : Tcr.Ir.op) (point : Tcr.Space.point) ->
      let mapped = Tcr.Space.mapped_indices point.decomp in
      let parallel_serial, reductions = Tcr.Space.serial_schedule op point in
      eval_sop ~extents env ~out:(op.out, op.out_indices) ~factors:op.factors
        ~order:(mapped @ parallel_serial @ reductions))
    ir.ops points;
  List.map (fun name -> (name, (find env name).data)) (ir_outputs ir)

(* ------------------------------------------------------------------ *)
(* Stage 5 - kernel: faithful interpretation of the kernel IR. Mirrors
   Exec.run_kernel (grid/block loops, unrolled main loop + epilogue,
   scalar replacement, shared-memory staging) but over F_p and with one
   deliberate difference: addresses are formed from the kernel's OWN
   extents table, bounds-checked against the true allocation, so stride
   corruption is observed rather than normalized away. *)

let eval_kernel (env : env) (k : Codegen.Kernel.t) =
  let kext i =
    match List.assoc_opt i k.extents with
    | Some e -> e
    | None -> abort "kernel %s has no extent for index %s" k.name i
  in
  let d = k.decomp in
  let index_names =
    (d.tx :: d.bx :: (Option.to_list d.ty @ Option.to_list d.by))
    @ List.map (fun (l : Codegen.Kernel.loop) -> l.index) k.thread_loops
  in
  let slot_names = Array.of_list index_names in
  let nslots = Array.length slot_names in
  let slot name =
    let rec go i =
      if i >= nslots then abort "kernel %s: index %s has no slot" k.name name
      else if slot_names.(i) = name then i
      else go (i + 1)
    in
    go 0
  in
  let vals = Array.make nslots 0 in
  let compile (name, dims) =
    let t = find env name in
    let strides = strides_of (List.map kext dims) in
    let s = Array.make nslots 0 in
    List.iteri (fun pos dim -> s.(slot dim) <- s.(slot dim) + List.nth strides pos) dims;
    (name, t.data, s)
  in
  let offset (name, data, strides) =
    let off = ref 0 in
    for i = 0 to nslots - 1 do
      off := !off + (strides.(i) * vals.(i))
    done;
    if !off < 0 || !off >= Array.length data then
      raise
        (Oob
           (Printf.sprintf "kernel %s accesses %s at linear offset %d outside its %d elements"
              k.name name !off (Array.length data)));
    !off
  in
  let out_ref = compile (k.op.out, k.op.out_indices) in
  (* staged tiles: refreshed per block via the same decode the CUDA
     cooperative load performs; a non-positive guard admits no loaders and
     leaves the tile zero, exactly as the emitted code would *)
  let tiles =
    List.map
      (fun (s : Codegen.Kernel.staging) ->
        let dims =
          match List.assoc_opt s.array k.arrays with
          | Some dims -> dims
          | None -> abort "kernel %s stages unknown array %s" k.name s.array
        in
        let src = find env s.array in
        let gstrides = Array.of_list (strides_of (List.map kext dims)) in
        let tile_exts = Array.of_list (List.map kext s.tile_dims) in
        let tile = Array.make (Array.fold_left ( * ) 1 tile_exts) 0 in
        (s, dims, gstrides, tile_exts, tile, src.data))
      k.staging
  in
  let refresh_tiles () =
    List.iter
      (fun ((s : Codegen.Kernel.staging), dims, gstrides, tile_exts, tile, src) ->
        let no_loaders = match s.guard with Some g -> g <= 0 | None -> false in
        if not no_loaders then begin
          let m = Array.length tile_exts in
          let coords = Array.make m 0 in
          let tile_pos dim =
            let rec go j = function
              | [] -> None
              | d :: rest -> if d = dim then Some j else go (j + 1) rest
            in
            go 0 s.tile_dims
          in
          for t = 0 to Array.length tile - 1 do
            let rem = ref t in
            for j = m - 1 downto 0 do
              coords.(j) <- !rem mod tile_exts.(j);
              rem := !rem / tile_exts.(j)
            done;
            let off = ref 0 in
            List.iteri
              (fun pos dim ->
                let v =
                  match tile_pos dim with
                  | Some j -> coords.(j)
                  | None -> vals.(slot dim)
                in
                off := !off + (gstrides.(pos) * v))
              dims;
            if !off < 0 || !off >= Array.length src then
              raise
                (Oob
                   (Printf.sprintf
                      "kernel %s stages %s from linear offset %d outside its %d elements"
                      k.name s.array !off (Array.length src)));
            tile.(t) <- src.(!off)
          done
        end)
      tiles
  in
  let factor_refs =
    Array.of_list
      (List.map
         (fun (name, dims) ->
           match
             List.find_opt
               (fun ((s : Codegen.Kernel.staging), _, _, _, _, _) -> s.array = name)
               tiles
           with
           | Some (s, _, _, tile_exts, tile, _) ->
             let tstrides = strides_of (Array.to_list tile_exts) in
             let str = Array.make nslots 0 in
             List.iteri
               (fun j dim -> str.(slot dim) <- str.(slot dim) + List.nth tstrides j)
               s.tile_dims;
             (name ^ "_tile", tile, str)
           | None -> compile (name, dims))
         k.op.factors)
  in
  let product () =
    let p = ref 1 in
    Array.iter (fun r -> p := mulp !p (let _, data, _ = r in data.(offset r))) factor_refs;
    !p
  in
  let parallel_loops, reduction_loops =
    List.partition (fun (l : Codegen.Kernel.loop) -> l.parallel) k.thread_loops
  in
  let acc = ref 0 in
  let rec run_reductions = function
    | [] -> acc := addp !acc (product ())
    | (l : Codegen.Kernel.loop) :: rest ->
      let s = slot l.index in
      let u = max 1 l.unroll and e = l.extent in
      let i = ref 0 in
      while !i + u <= e do
        for j = 0 to u - 1 do
          vals.(s) <- !i + j;
          run_reductions rest
        done;
        i := !i + u
      done;
      while !i < e do
        vals.(s) <- !i;
        run_reductions rest;
        incr i
      done
  in
  let run_output_element () =
    let _, odata, _ = out_ref in
    if k.scalar_replaced then begin
      let off = offset out_ref in
      acc := odata.(off);
      run_reductions reduction_loops;
      odata.(off) <- !acc
    end
    else begin
      acc := 0;
      let off = offset out_ref in
      let saved = odata.(off) in
      run_reductions reduction_loops;
      odata.(off) <- addp saved !acc
    end
  in
  let rec run_parallel = function
    | [] -> run_output_element ()
    | (l : Codegen.Kernel.loop) :: rest ->
      let s = slot l.index in
      for i = 0 to l.extent - 1 do
        vals.(s) <- i;
        run_parallel rest
      done
  in
  let bx_e, by_e = k.grid and tx_e, ty_e = k.block in
  let tx_s = slot d.tx and bx_s = slot d.bx in
  let ty_s = Option.map slot d.ty and by_s = Option.map slot d.by in
  for by = 0 to by_e - 1 do
    Option.iter (fun s -> vals.(s) <- by) by_s;
    for bx = 0 to bx_e - 1 do
      vals.(bx_s) <- bx;
      refresh_tiles ();
      for ty = 0 to ty_e - 1 do
        Option.iter (fun s -> vals.(s) <- ty) ty_s;
        for tx = 0 to tx_e - 1 do
          vals.(tx_s) <- tx;
          run_parallel parallel_loops
        done
      done
    done
  done

let eval_kernels ~extents inputs (ir : Tcr.Ir.t) kernels =
  let env = with_produced inputs extents (ir_produced ir) in
  List.iter (eval_kernel env) kernels;
  List.map (fun name -> (name, (find env name).data)) (ir_outputs ir)

(* ------------------------------------------------------------------ *)
(* Verdict *)

type verdict = {
  equivalent : bool;
  failed_stage : string option;  (* earliest non-equivalent stage *)
  rounds_run : int;
  stages : (string * string) list;  (* per-stage output digest, round 1 *)
  diags : Diag.t list;
}

let digest outs =
  Digest.to_hex
    (Digest.string
       (String.concat ";"
          (List.map
             (fun (name, data) ->
               name ^ ":"
               ^ String.concat "," (List.map string_of_int (Array.to_list data)))
             outs)))

(* First element on which two stages' outputs disagree. *)
let first_mismatch parent child =
  List.fold_left
    (fun acc (name, pdata) ->
      match acc with
      | Some _ -> acc
      | None -> (
        match List.assoc_opt name child with
        | None -> Some (name, -1, 0, 0)
        | Some cdata ->
          let n = min (Array.length pdata) (Array.length cdata) in
          let rec scan i =
            if i >= n then
              if Array.length pdata <> Array.length cdata then Some (name, n, 0, 0) else None
            else if pdata.(i) <> cdata.(i) then Some (name, i, pdata.(i), cdata.(i))
            else scan (i + 1)
          in
          scan 0))
    None parent

let stage_code = function
  | "variant" -> "BAR060"
  | "tcr" -> "BAR061"
  | "recipe" -> "BAR062"
  | "kernel" -> "BAR063"
  | _ -> "BAR064"

let default_rounds = 2
let default_seed = 0x5eed

(* Points the DSL oracle iterates per round: the saturating sum over
   statements of the product of every driven extent. The naive einsum is
   the spec, so its cost is irreducible - tuner gates skip validation when
   it exceeds [gate_budget] (e.g. the O(n^10) TCE example exists precisely
   because its naive nest is infeasible). *)
let cost (statements : Octopi.Contraction.t list) =
  List.fold_left
    (fun acc (c : Octopi.Contraction.t) ->
      let pts =
        List.fold_left
          (fun p i ->
            let e = Octopi.Contraction.extent c i in
            if e > 0 && p > max_int / e then max_int else p * e)
          1
          (c.output_indices @ c.sum_indices)
      in
      if acc > max_int - pts then max_int else acc + pts)
    0 statements

let gate_budget = 4_000_000

(* Validate one tuned candidate's full lineage. [mutate_kernel] rewrites
   each lowered kernel before interpretation (the mutation self-test
   harness); [rounds] Schwartz-Zippel rounds with fresh random inputs each,
   all derived from [seed]. *)
let validate ?(rounds = default_rounds) ?(seed = default_seed) ?mutate_kernel ~label
    (statements : Octopi.Contraction.t list) ~variant_ids ~(ir : Tcr.Ir.t) ~points =
  let site = label in
  let aborted stage msg =
    {
      equivalent = false;
      failed_stage = Some stage;
      rounds_run = 0;
      stages = [];
      diags =
        [
          Diag.error Diag.Semantic ~code:"BAR064" ~site
            "semantic evaluation aborted at the %s stage: %s" stage msg;
        ];
    }
  in
  match
    if List.length variant_ids <> List.length statements then
      abort "%d variant ids for %d statements" (List.length variant_ids)
        (List.length statements);
    let choices =
      List.map2
        (fun c id -> (c, Octopi.Variants.find (Octopi.Variants.of_contraction c) id))
        statements variant_ids
    in
    let kernels = Codegen.Kernel.lower_program ir points in
    let kernels =
      match mutate_kernel with None -> kernels | Some f -> List.map f kernels
    in
    (choices, kernels)
  with
  | exception Abort msg -> aborted "dsl" msg
  | exception Invalid_argument msg -> aborted "dsl" msg
  | choices, kernels ->
    let extents = ir.extents in
    let inputs_spec =
      List.map (fun (v : Tcr.Ir.var) -> (v.name, v.dims)) (Tcr.Ir.inputs ir)
    in
    let rng = Util.Rng.create seed in
    let stages = ref [] in
    let record round name outs =
      if round = 0 then stages := (name, digest outs) :: !stages;
      outs
    in
    let rec run round =
      if round >= rounds then
        {
          equivalent = true;
          failed_stage = None;
          rounds_run = rounds;
          stages = List.rev !stages;
          diags = [];
        }
      else begin
        let inputs = random_inputs rng extents inputs_spec in
        let outcome =
          (* evaluate stage by stage; the first disagreement (or abort)
             names the earliest broken translation *)
          let check stage parent child =
            match first_mismatch parent child with
            | None -> Ok child
            | Some (name, i, pv, cv) ->
              Error
                (Diag.error Diag.Semantic ~code:(stage_code stage) ~site
                   "%s stage disagrees with its parent on %s[%d]: %d vs %d (mod %d, \
                    round %d of %d)"
                   stage name i pv cv prime (round + 1) rounds,
                  stage )
          in
          let stage_eval stage f parent =
            match f () with
            | outs -> check stage parent (record round stage outs)
            | exception Oob msg ->
              Error
                ( Diag.error Diag.Semantic ~code:(stage_code stage) ~site
                    "%s stage: %s (round %d of %d)" stage msg (round + 1) rounds,
                  stage )
            | exception Abort msg ->
              Error
                ( Diag.error Diag.Semantic ~code:"BAR064" ~site
                    "semantic evaluation aborted at the %s stage: %s" stage msg,
                  stage )
          in
          match
            match eval_dsl ~extents inputs statements with
            | outs -> Ok (record round "dsl" outs)
            | exception Abort msg ->
              Error
                ( Diag.error Diag.Semantic ~code:"BAR064" ~site
                    "semantic evaluation aborted at the dsl stage: %s" msg,
                  "dsl" )
          with
          | Error e -> Error e
          | Ok dsl -> (
            match stage_eval "variant" (fun () -> eval_variant ~extents inputs choices) dsl with
            | Error e -> Error e
            | Ok variant -> (
              match stage_eval "tcr" (fun () -> eval_tcr ~extents inputs ir) variant with
              | Error e -> Error e
              | Ok tcr -> (
                match
                  stage_eval "recipe" (fun () -> eval_recipe ~extents inputs ir points) tcr
                with
                | Error e -> Error e
                | Ok recipe ->
                  stage_eval "kernel"
                    (fun () -> eval_kernels ~extents inputs ir kernels)
                    recipe)))
        in
        match outcome with
        | Ok _ -> run (round + 1)
        | Error (diag, stage) ->
          {
            equivalent = false;
            failed_stage = Some stage;
            rounds_run = round + 1;
            stages = List.rev !stages;
            diags = [ diag ];
          }
      end
    in
    run 0
