(** Deterministic random-network generators (fixed seed, fixed network).
    Extents are drawn per index from the [extents] choice list. *)

(** Matrix-product-state-shaped chain of [n] tensors, boundary bonds open
    (rank-2 output). Raises below 2 tensors. *)
val line : ?extents:int list -> n:int -> Util.Rng.t -> Network.t

(** Closed chain of [n] tensors: a trace, rank-0 output. Raises below 3. *)
val ring : ?extents:int list -> n:int -> Util.Rng.t -> Network.t

(** Preferential-attachment graph (GNN-shaped): hubs become high-rank
    tensors; two open legs keep the output at rank 2. Raises below 3. *)
val power_law :
  ?extents:int list -> ?edges_per_node:int -> n:int -> Util.Rng.t -> Network.t
