(** Lowering a contraction tree into the existing pipeline: one OCTOPI
    statement per {!Tree.steps} step with fresh intermediate names, all
    extents explicit, output statement last. The emitted program is
    exactly what the cost model scored, and flows through variants -> TCR
    -> recipe -> SURF -> codegen unchanged. *)

(** [program ?output_name net tree]; a [Leaf] tree emits one (possibly
    summing) copy statement. *)
val program : ?output_name:string -> Network.t -> Tree.t -> Octopi.Ast.program

(** DSL text of {!program} - feed to {!Autotune.Tuner.benchmark_of_dsl}. *)
val to_dsl : ?output_name:string -> Network.t -> Tree.t -> string

(** Contraction-order provenance for the tuning flight recorder:
    [meth] is the optimizer name ("greedy"/"treesa"). *)
val provenance :
  meth:string -> ?score:Tree.score_fn -> Network.t -> Tree.t -> Obs.Journal.network
