(* Min-growth greedy baseline: repeatedly contract the pair of components
   whose result grows total resident memory the least (size of the merged
   intermediate minus the sizes of its two operands, in elements). This is
   the classic netcon/opt_einsum "greedy" heuristic - locally optimal,
   frequently globally mediocre on heterogeneous extents, which is exactly
   the gap TreeSA closes. Deterministic: pairs are scanned in component
   order and only a strictly better growth displaces the incumbent. *)

type component = { tree : Tree.t; indices : string list }

let union a b = List.sort_uniq compare (a @ b)
let inter a b = List.filter (fun x -> List.mem x b) a

(* Indices a merged component must retain: anything alive in another
   component or in the network output. *)
let needed_outside net comps skip_a skip_b =
  let acc = ref (List.sort_uniq compare net.Network.output) in
  List.iteri
    (fun k c ->
      if k <> skip_a && k <> skip_b then acc := union !acc c.indices)
    comps;
  !acc

let merged_out net comps a b =
  let ca = List.nth comps a and cb = List.nth comps b in
  inter (union ca.indices cb.indices) (needed_outside net comps a b)

(* Growth of contracting components [a] and [b], in elements (linear
   space: log2 sizes stay modest for realistic networks, and the floats
   only order candidate pairs). *)
let growth net comps a b =
  let ca = List.nth comps a and cb = List.nth comps b in
  Float.exp2 (Network.log2_size net (merged_out net comps a b))
  -. Float.exp2 (Network.log2_size net ca.indices)
  -. Float.exp2 (Network.log2_size net cb.indices)

let optimize net =
  let n = List.length net.Network.tensors in
  if n = 0 then invalid_arg "Netopt.Greedy.optimize: empty network";
  let start =
    List.mapi
      (fun i (t : Network.tensor) ->
        { tree = Tree.Leaf i; indices = List.sort_uniq compare t.t_indices })
      net.Network.tensors
  in
  let rec contract comps =
    match comps with
    | [] -> assert false
    | [ c ] -> c.tree
    | _ ->
      let m = List.length comps in
      let best = ref None in
      for a = 0 to m - 2 do
        for b = a + 1 to m - 1 do
          let g = growth net comps a b in
          match !best with
          | Some (_, _, g0) when g >= g0 -> ()
          | _ -> best := Some (a, b, g)
        done
      done;
      let a, b, _ = Option.get !best in
      let ca = List.nth comps a and cb = List.nth comps b in
      let merged =
        {
          tree = Tree.Node (ca.tree, cb.tree);
          indices = merged_out net comps a b;
        }
      in
      contract
        (List.filteri (fun k _ -> k <> a && k <> b) comps @ [ merged ])
  in
  contract start
