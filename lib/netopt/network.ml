(* Tensor-network IR: the input of the contraction-order optimizer.

   A network is a hypergraph - tensors are nodes, indices are (hyper)edges
   shared by every tensor that mentions them - plus the set of output
   (open) indices and the index extents. This is the stage *before* the
   paper's Figure 2(a) DSL: the optimizer picks a binary contraction tree
   over the network, and only then does each tree node become a DSL
   statement for the existing variants -> TCR -> recipe -> SURF pipeline.

   Extents may be declared inline on a tensor ([T0 a:32 b]), by a network-
   level [extent] line, or not at all (falling back to the DSL's default
   extent). Validation reports every declaration conflict (BAR051) rather
   than silently taking the first. *)

type tensor = {
  t_name : string;
  t_indices : string list;  (* one entry per axis, outermost first *)
  t_dims : (string * int) list;  (* extents declared inline on this tensor *)
}

type t = {
  tensors : tensor list;
  output : string list;  (* open indices, in output-axis order *)
  extents : (string * int) list;  (* network-level extent declarations *)
}

let make ?(output = []) ?(extents = []) tensors = { tensors; output; extents }

(* ---------------- index queries ---------------- *)

let all_indices net =
  List.concat_map (fun t -> t.t_indices) net.tensors
  |> List.sort_uniq compare

(* Every extent declaration with its declaring site, declaration order:
   network-level lines first, then tensor annotations. *)
let extent_declarations net =
  List.map (fun (i, n) -> (i, n, "network")) net.extents
  @ List.concat_map
      (fun t -> List.map (fun (i, n) -> (i, n, t.t_name)) t.t_dims)
      net.tensors

let extent_of net idx =
  match
    List.find_opt (fun (i, _, _) -> i = idx) (extent_declarations net)
  with
  | Some (_, n, _) -> n
  | None -> Octopi.Contraction.default_extent

(* Fully resolved extents for every index in the network, sorted. *)
let resolved_extents net =
  List.map (fun i -> (i, extent_of net i)) (all_indices net)

let log2_extent net idx = Float.log2 (float_of_int (extent_of net idx))

(* log2 of the element count of a tensor over [indices]. *)
let log2_size net indices =
  List.fold_left (fun acc i -> acc +. log2_extent net i) 0.0 indices

(* ---------------- validation ---------------- *)

(* Identifiers as the DSL lexer accepts them (letters, digits, '_',
   starting with a letter or '_'): everything here is eventually lowered
   to DSL text, so reject anything the parser would choke on. *)
let is_ident s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let dup_of xs =
  let rec go = function
    | [] -> None
    | x :: rest -> if List.mem x rest then Some x else go rest
  in
  go xs

(* How many tensors mention [idx]. *)
let degree net idx =
  List.length (List.filter (fun t -> List.mem idx t.t_indices) net.tensors)

(* Network-stage diagnostics (BAR05x):
     BAR050 error    output index not on any tensor
     BAR051 error    conflicting extent declarations for one index
     BAR052 error    index repeated within one tensor (diagonal - unsupported)
     BAR053 error    output index repeated
     BAR054 error    malformed network (bad/duplicate names, rank 0, empty)
     BAR055 warning  dangling index (on one tensor only, not in the output)
   sc_target and step-rank findings (BAR056/BAR057) concern a chosen tree,
   not the bare network - see {!Tree.check}. *)
let validate net =
  let open Check.Diag in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  if net.tensors = [] then
    add (error Network ~code:"BAR054" ~site:"network" "network has no tensors");
  (match dup_of (List.map (fun t -> t.t_name) net.tensors) with
  | Some n ->
    add (error Network ~code:"BAR054" ~site:n "duplicate tensor name %S" n)
  | None -> ());
  List.iter
    (fun t ->
      if not (is_ident t.t_name) then
        add
          (error Network ~code:"BAR054" ~site:t.t_name
             "tensor name %S is not a valid identifier" t.t_name);
      if t.t_indices = [] then
        add
          (error Network ~code:"BAR054" ~site:t.t_name
             "tensor %s has rank 0 (no indices)" t.t_name);
      List.iter
        (fun i ->
          if not (is_ident i) then
            add
              (error Network ~code:"BAR054" ~site:t.t_name
                 "index %S of tensor %s is not a valid identifier" i t.t_name))
        t.t_indices;
      match dup_of t.t_indices with
      | Some i ->
        add
          (error Network ~code:"BAR052" ~site:t.t_name
             "index %s repeated within tensor %s (diagonals are unsupported)" i
             t.t_name)
      | None -> ())
    net.tensors;
  (match dup_of net.output with
  | Some i ->
    add (error Network ~code:"BAR053" ~site:"output" "output index %s repeated" i)
  | None -> ());
  List.iter
    (fun i ->
      if degree net i = 0 then
        add
          (error Network ~code:"BAR050" ~site:"output"
             "output index %s does not appear on any tensor" i))
    net.output;
  (* conflicting extents: report once per index, naming both sites *)
  let decls = extent_declarations net in
  List.iter
    (fun idx ->
      match List.filter (fun (i, _, _) -> i = idx) decls with
      | (_, n0, s0) :: rest -> (
        match List.find_opt (fun (_, n, _) -> n <> n0) rest with
        | Some (_, n1, s1) ->
          add
            (error Network ~code:"BAR051" ~site:idx
               "index %s declared with extent %d (%s) but %d (%s)" idx n0 s0 n1
               s1)
        | None -> ())
      | [] -> ())
    (List.sort_uniq compare (List.map (fun (i, _, _) -> i) decls));
  List.iter
    (fun (i, n, site) ->
      if n <= 0 then
        add
          (error Network ~code:"BAR054" ~site
             "index %s declared with non-positive extent %d" i n))
    decls;
  (* a degree-1 index outside the output is summed out unilaterally: legal
     einsum, but almost always a typo in a network spec *)
  List.iter
    (fun i ->
      if degree net i = 1 && not (List.mem i net.output) then
        let holder =
          List.find (fun t -> List.mem i t.t_indices) net.tensors
        in
        add
          (warning Network ~code:"BAR055" ~site:holder.t_name
             "index %s dangles: it appears only on tensor %s and not in the \
              output"
             i holder.t_name))
    (all_indices net);
  List.rev !ds

(* ---------------- concrete syntax ---------------- *)

(* Network spec files:

     # a comment
     tensor T0 a:32 b
     tensor T1 b c:64
     extent a 16        <- conflicting redeclaration: caught by validate
     output a c

   One directive per line; blank lines and '#' comments ignored. [tensor]
   lists the indices of one tensor, each optionally annotated with its
   extent. Unknown directives are syntax errors; semantic problems
   (conflicts, dangling output indices, ...) are left to {!validate} so
   the check CLI can report them all at once. *)

exception Parse_error of string

let perr fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_index_atom ~line atom =
  match String.split_on_char ':' atom with
  | [ idx ] -> (idx, None)
  | [ idx; ext ] -> (
    match int_of_string_opt ext with
    | Some n -> (idx, Some n)
    | None -> perr "line %d: extent %S is not an integer" line ext)
  | _ -> perr "line %d: malformed index %S (want name or name:extent)" line atom

let parse text =
  let tensors = ref [] and output = ref None and extents = ref [] in
  String.split_on_char '\n' text
  |> List.iteri (fun lineno raw ->
         let line = lineno + 1 in
         let body =
           match String.index_opt raw '#' with
           | Some i -> String.sub raw 0 i
           | None -> raw
         in
         match
           String.split_on_char ' ' body
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun w -> w <> "")
         with
         | [] -> ()
         | "tensor" :: name :: atoms ->
           if atoms = [] then perr "line %d: tensor %s has no indices" line name;
           let parsed = List.map (parse_index_atom ~line) atoms in
           tensors :=
             {
               t_name = name;
               t_indices = List.map fst parsed;
               t_dims =
                 List.filter_map
                   (fun (i, e) -> Option.map (fun n -> (i, n)) e)
                   parsed;
             }
             :: !tensors
         | [ "tensor" ] -> perr "line %d: tensor directive needs a name" line
         | "output" :: indices ->
           if !output <> None then perr "line %d: duplicate output directive" line;
           output := Some indices
         | [ "extent"; idx; ext ] -> (
           match int_of_string_opt ext with
           | Some n -> extents := (idx, n) :: !extents
           | None -> perr "line %d: extent %S is not an integer" line ext)
         | "extent" :: _ -> perr "line %d: extent directive wants: extent i 32" line
         | word :: _ -> perr "line %d: unknown directive %S" line word);
  {
    tensors = List.rev !tensors;
    output = Option.value ~default:[] !output;
    extents = List.rev !extents;
  }

let of_file path = parse (Util.Fs.read_file path)

let to_string net =
  let b = Buffer.create 256 in
  List.iter
    (fun t ->
      Buffer.add_string b "tensor ";
      Buffer.add_string b t.t_name;
      List.iter
        (fun i ->
          Buffer.add_char b ' ';
          Buffer.add_string b i;
          match List.assoc_opt i t.t_dims with
          | Some n -> Buffer.add_string b (Printf.sprintf ":%d" n)
          | None -> ())
        t.t_indices;
      Buffer.add_char b '\n')
    net.tensors;
  List.iter
    (fun (i, n) -> Buffer.add_string b (Printf.sprintf "extent %s %d\n" i n))
    net.extents;
  if net.output <> [] then
    Buffer.add_string b ("output " ^ String.concat " " net.output ^ "\n");
  Buffer.contents b

(* NumPy-style einsum specs ("ab,bc->ac") reuse the existing front end;
   factor names beyond the default eight are generated there. *)
let of_einsum ?extents spec =
  let program = Octopi.Einsum_notation.parse ?extents spec in
  match program.Octopi.Ast.stmts with
  | [ stmt ] ->
    {
      tensors =
        List.map
          (fun (f : Octopi.Ast.tensor_ref) ->
            { t_name = f.name; t_indices = f.indices; t_dims = [] })
          stmt.factors;
      output = stmt.lhs.indices;
      extents = program.extents;
    }
  | stmts ->
    perr "einsum spec %S parsed to %d statements; expected one" spec
      (List.length stmts)
