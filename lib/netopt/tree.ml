(* Binary contraction trees over a network, with exact cost accounting.

   [steps] is the single source of truth: it linearizes a tree into the
   post-order sequence of binary contractions that {!Lower} emits as DSL
   statements, and {!cost} is computed from that same sequence - so the
   score the optimizer minimizes is an exact account of the program that
   will be tuned, not an estimate of it.

   Costs live in log2 space (the TreeSA convention): [tc] is the log2 of
   the total loop-nest iteration count, [sc] the log2 size of the largest
   intermediate, [rw] the log2 of the total read/write volume. On a
   bandwidth-bound GPU [rw] is the term that predicts wall-clock; [sc]
   against [sc_target] models the device-memory capacity wall. *)

type t = Leaf of int | Node of t * t

type operand = Tensor of int | Step of int

type step = {
  left : operand;
  right : operand;
  out : string list;  (* retained indices; sorted except the root (output order) *)
  sums : string list;  (* indices summed at this step, sorted *)
}

(* ---------------- sorted-list index sets ---------------- *)

let set xs = List.sort_uniq compare xs

let union a b = List.sort_uniq compare (a @ b)

let inter a b = List.filter (fun x -> List.mem x b) a

let diff a b = List.filter (fun x -> not (List.mem x b)) a

(* ---------------- tree shape ---------------- *)

let rec leaves = function Leaf i -> [ i ] | Node (l, r) -> leaves l @ leaves r

(* A full binary tree whose leaves are exactly one of each input tensor. *)
let is_valid net tree =
  List.sort compare (leaves tree)
  = List.init (List.length net.Network.tensors) Fun.id

let rec num_nodes = function Leaf _ -> 1 | Node (l, r) -> 1 + num_nodes l + num_nodes r

let rec to_string net tree =
  match tree with
  | Leaf i -> (List.nth net.Network.tensors i).Network.t_name
  | Node (l, r) ->
    Printf.sprintf "(%s,%s)" (to_string net l) (to_string net r)

(* ---------------- linearization ---------------- *)

let tensor_indices net i = set (List.nth net.Network.tensors i).Network.t_indices

let rec subtree_indices net = function
  | Leaf i -> tensor_indices net i
  | Node (l, r) -> union (subtree_indices net l) (subtree_indices net r)

(* Defer summations to keep an intermediate's rank at >= 2: the decision
   algorithm derives thread/block candidates from the lhs indices, and a
   rank-0/1 statement admits no legal decomposition. Moving an index from
   [sums] to [out] postpones its summation to the parent step (legal by
   distributivity - the index appears nowhere outside this subtree); we
   defer the smallest extents first to keep the intermediate small. *)
let pad net out sums =
  if List.length out >= 2 then (out, sums)
  else begin
    let by_extent =
      List.sort
        (fun a b ->
          compare (Network.extent_of net a, a) (Network.extent_of net b, b))
        sums
    in
    let need = 2 - List.length out in
    let deferred = List.filteri (fun i _ -> i < need) by_extent in
    (set (out @ deferred), diff sums deferred)
  end

(* Post-order contraction steps. The root step's [out] is the network
   output in output-axis order (and is never padded: there is no parent to
   defer a summation to). A [Leaf] tree linearizes to no steps. *)
let steps net tree =
  match tree with
  | Leaf _ -> []
  | Node _ ->
    let acc = ref [] in
    let emit step =
      acc := step :: !acc;
      Step (List.length !acc - 1)
    in
    let rec go tree outside ~root =
      match tree with
      | Leaf i -> (Tensor i, tensor_indices net i)
      | Node (l, r) ->
        let li = subtree_indices net l and ri = subtree_indices net r in
        let lop, lres = go l (union outside ri) ~root:false in
        let rop, rres = go r (union outside li) ~root:false in
        let combined = union lres rres in
        let out = inter combined outside and sums = diff combined outside in
        let out, sums = if root then (out, sums) else pad net out sums in
        let out = if root then net.Network.output else out in
        (emit { left = lop; right = rop; out; sums }, out)
    in
    let _ = go tree (set net.Network.output) ~root:true in
    List.rev !acc

let operand_indices net steps op =
  match op with
  | Tensor i -> tensor_indices net i
  | Step j -> (List.nth steps j).out

(* ---------------- cost accounting ---------------- *)

type cost = { tc : float; sc : float; rw : float }

(* log2(sum 2^x) without overflow; [-inf] for the empty list. *)
let log2sumexp = function
  | [] -> neg_infinity
  | xs ->
    let m = List.fold_left max neg_infinity xs in
    if m = neg_infinity then neg_infinity
    else
      m
      +. Float.log2
           (List.fold_left (fun acc x -> acc +. Float.exp2 (x -. m)) 0.0 xs)

let cost net tree =
  let ss = steps net tree in
  let size = Network.log2_size net in
  let tcs = List.map (fun s -> size (union s.out s.sums)) ss in
  let scs = List.map (fun s -> size s.out) ss in
  let rws =
    List.concat_map
      (fun s ->
        [
          size (operand_indices net ss s.left);
          size (operand_indices net ss s.right);
          size s.out;
        ])
      ss
  in
  { tc = log2sumexp tcs; sc = List.fold_left max neg_infinity scs; rw = log2sumexp rws }

(* ---------------- score ---------------- *)

type score_fn = {
  tc_weight : float;
  sc_weight : float;
  rw_weight : float;
  sc_target : float;  (* log2 elements an intermediate may occupy *)
}

let default_score =
  { tc_weight = 1.0; sc_weight = 1.0; rw_weight = 1.0; sc_target = 30.0 }

(* 0 * inf = nan in IEEE; a zero weight must simply drop its term. *)
let wmul w x = if w = 0.0 then 0.0 else w *. x

(* The sc term is a hard penalty: one log2 unit over [sc_target] costs as
   much as ~100 units of tc/rw, so any tree that fits the memory budget
   outranks every tree that does not. *)
let overflow_scale = 100.0

let score sf c =
  wmul sf.tc_weight c.tc
  +. wmul sf.rw_weight c.rw
  +.
  if c.sc > sf.sc_target then
    wmul sf.sc_weight ((c.sc -. sf.sc_target) *. overflow_scale)
  else 0.0

(* ---------------- reference evaluation ---------------- *)

(* Execute the steps with the einsum oracle: the numerical ground truth
   any tree must reproduce (each step sums exactly [sums] because they are
   the operand indices absent from [out]). *)
let eval net (tensors : Tensor.Dense.t array) tree =
  let tensor_op i =
    Tensor.Einsum.operand tensors.(i)
      (List.nth net.Network.tensors i).Network.t_indices
  in
  match tree with
  | Leaf i ->
    Tensor.Einsum.contract ~output_indices:net.Network.output [ tensor_op i ]
  | Node _ ->
    let ss = steps net tree in
    let results = Hashtbl.create 16 in
    List.iteri
      (fun k s ->
        let op = function
          | Tensor i -> tensor_op i
          | Step j ->
            Tensor.Einsum.operand (Hashtbl.find results j) (List.nth ss j).out
        in
        Hashtbl.add results k
          (Tensor.Einsum.contract ~output_indices:s.out [ op s.left; op s.right ]))
      ss;
    Hashtbl.find results (List.length ss - 1)

(* ---------------- tree-level diagnostics ---------------- *)

(* BAR056: an intermediate exceeds the memory budget (warning - the score
   already penalizes it; check surfaces it to humans). BAR057: a step
   retains fewer than two indices even after padding (only the root can -
   see [pad]), so the decision algorithm has no legal thread/block
   decomposition for its kernel. *)
let check ?(sc_target = default_score.sc_target) net tree =
  let open Check.Diag in
  List.concat
    (List.mapi
       (fun k (s : step) ->
         let site = Printf.sprintf "step%d" k in
         let sz = Network.log2_size net s.out in
         (if sz > sc_target then
            [
              warning Network ~code:"BAR056" ~site
                "intermediate [%s] has log2 size %.1f, exceeding sc_target %.1f"
                (String.concat " " s.out) sz sc_target;
            ]
          else [])
         @
         if List.length s.out < 2 then
           [
             warning Network ~code:"BAR057" ~site
               "step retains %d indices (<2): no thread/block decomposition \
                exists for its kernel"
               (List.length s.out);
           ]
         else [])
       (steps net tree))
