(** Min-growth greedy baseline (the netcon/opt_einsum heuristic): always
    contract the pair of components whose intermediate grows resident
    memory the least. Deterministic - pairs are scanned in component order
    and only strictly better growth displaces the incumbent. The starting
    point and the bar for {!Treesa}. *)

(** Raises [Invalid_argument] on an empty network. *)
val optimize : Network.t -> Tree.t
