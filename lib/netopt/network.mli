(** Tensor-network IR: tensors as named index lists, output (open) indices,
    and index extents. The input of the contraction-order optimizer - the
    stage {e before} the paper's Figure 2(a) DSL. Indices shared by several
    tensors are contracted (hyper)edges; extents may be declared inline on
    a tensor, by a network-level declaration, or fall back to the DSL
    default. *)

type tensor = {
  t_name : string;
  t_indices : string list;  (** one entry per axis, outermost first *)
  t_dims : (string * int) list;  (** extents declared inline on this tensor *)
}

type t = {
  tensors : tensor list;
  output : string list;  (** open indices, in output-axis order *)
  extents : (string * int) list;  (** network-level extent declarations *)
}

val make : ?output:string list -> ?extents:(string * int) list -> tensor list -> t

(** Every distinct index, sorted. *)
val all_indices : t -> string list

(** All extent declarations as [(index, extent, site)], declaration order. *)
val extent_declarations : t -> (string * int * string) list

(** First declaration wins; {!Octopi.Contraction.default_extent} otherwise. *)
val extent_of : t -> string -> int

(** [(index, extent)] for every index in the network, sorted - suitable for
    an {!Octopi.Ast.program}'s [extents] field. *)
val resolved_extents : t -> (string * int) list

val log2_extent : t -> string -> float

(** log2 of the element count of a tensor over exactly these indices. *)
val log2_size : t -> string list -> float

(** Number of tensors mentioning the index. *)
val degree : t -> string -> int

(** Network-stage diagnostics: BAR050 unknown output index, BAR051
    conflicting extents, BAR052 repeated index within a tensor, BAR053
    repeated output index, BAR054 malformed network (all errors), BAR055
    dangling index (warning). Tree-dependent findings ([sc_target],
    step rank) live in {!Tree.check}. *)
val validate : t -> Check.Diag.t list

(** Raised by {!parse}/{!of_file}/{!of_einsum} on syntax errors; semantic
    problems are left to {!validate}. *)
exception Parse_error of string

(** Parse the network spec syntax: one [tensor NAME idx[:extent] ...],
    [extent idx N] or [output idx ...] directive per line; ['#'] comments. *)
val parse : string -> t

val of_file : string -> t

(** Render back to spec syntax ({!parse} round-trips). *)
val to_string : t -> string

(** NumPy-style einsum spec ("ab,bc->ac") via {!Octopi.Einsum_notation};
    factors are named A, B, ... with generated names past the eighth. *)
val of_einsum : ?extents:(string * int) list -> string -> t
