(** Binary contraction trees with exact cost accounting. {!steps} is the
    single source of truth: the same post-order step sequence drives the
    cost model, the einsum-oracle evaluation and {!Lower}'s DSL emission,
    so a tree's score is an exact account of the program that gets tuned.

    Costs are in log2 space (the TreeSA convention): [tc] log2 total
    loop-nest iterations, [sc] log2 size of the largest intermediate, [rw]
    log2 total read/write volume - the term that predicts wall-clock on a
    bandwidth-bound GPU. *)

type t = Leaf of int | Node of t * t

type operand = Tensor of int  (** input tensor, by position *)
             | Step of int  (** result of an earlier step *)

type step = {
  left : operand;
  right : operand;
  out : string list;
      (** retained indices; sorted, except the root step which uses the
          network's output-axis order *)
  sums : string list;  (** indices summed at this step, sorted *)
}

(** Leaf tensor positions, left to right. *)
val leaves : t -> int list

(** A full binary tree over exactly one leaf per input tensor. *)
val is_valid : Network.t -> t -> bool

val num_nodes : t -> int

(** Serialized order, e.g. ["((T0,T1),T2)"] - journal/CLI provenance. *)
val to_string : Network.t -> t -> string

(** Union of the indices of the subtree's leaf tensors, sorted. *)
val subtree_indices : Network.t -> t -> string list

(** Post-order binary contraction steps. Intermediates retaining fewer
    than two indices keep their smallest-extent summation indices instead
    (deferring those sums to the parent - legal by distributivity), since
    rank-0/1 statements admit no thread/block decomposition. A [Leaf]
    linearizes to no steps. *)
val steps : Network.t -> t -> step list

(** The indices of an operand's value ([out] of the referenced step). *)
val operand_indices : Network.t -> step list -> operand -> string list

type cost = { tc : float; sc : float; rw : float }

val cost : Network.t -> t -> cost

(** log2(sum of 2^x), [neg_infinity] on the empty list. *)
val log2sumexp : float list -> float

type score_fn = {
  tc_weight : float;
  sc_weight : float;
  rw_weight : float;
  sc_target : float;  (** log2 elements an intermediate may occupy *)
}

(** [{tc_weight = 1; sc_weight = 1; rw_weight = 1; sc_target = 30}]. *)
val default_score : score_fn

(** Multiplier on the [sc]-over-target penalty term: one log2 unit over
    budget outweighs ~100 units of tc/rw, making [sc_target] a hard cap. *)
val overflow_scale : float

val score : score_fn -> cost -> float

(** Execute the steps with the einsum oracle ({!Tensor.Einsum}): the
    numerical ground truth any tree must reproduce. Tensors are positional. *)
val eval : Network.t -> Tensor.Dense.t array -> t -> Tensor.Dense.t

(** Tree-level diagnostics: BAR056 intermediate exceeds [sc_target]
    (warning), BAR057 step retains fewer than two indices (warning; only
    the root step can, when the network output itself has rank < 2). *)
val check : ?sc_target:float -> Network.t -> t -> Check.Diag.t list
