(* Random network generators for tests and benchmarks. Two families the
   paper's single-equation front end never handled:

   - [line]/[ring]: matrix-product-state-shaped chains (quantum-circuit
     contractions): tensor i shares one bond index with each neighbour.
     [line] keeps the two boundary bonds open (a matrix-chain product
     with a rank-2 output); [ring] closes the loop (a trace, rank-0).
   - [power_law]: preferential-attachment graphs (GNN-shaped): a few hub
     tensors of high rank, many rank-2 spokes, two open legs.

   All extents are drawn from the generator's [extents] choice list via
   the caller's RNG: fixed seed, fixed network. *)

let tensor name indices = { Network.t_name = name; t_indices = indices; t_dims = [] }

let draw_extents rng choices indices =
  List.map (fun i -> (i, Util.Rng.pick_list rng choices)) indices

let line ?(extents = [ 2; 4; 8; 16; 32 ]) ~n rng =
  if n < 2 then invalid_arg "Netopt.Gen.line: need at least two tensors";
  let bond i = Printf.sprintf "a%d" i in
  let tensors =
    List.init n (fun i -> tensor (Printf.sprintf "T%d" i) [ bond i; bond (i + 1) ])
  in
  let all_bonds = List.init (n + 1) bond in
  Network.make
    ~output:[ bond 0; bond n ]
    ~extents:(draw_extents rng extents all_bonds)
    tensors

let ring ?(extents = [ 2; 4; 8; 16; 32 ]) ~n rng =
  if n < 3 then invalid_arg "Netopt.Gen.ring: need at least three tensors";
  let bond i = Printf.sprintf "a%d" (i mod n) in
  let tensors =
    List.init n (fun i -> tensor (Printf.sprintf "T%d" i) [ bond i; bond (i + 1) ])
  in
  Network.make ~output:[]
    ~extents:(draw_extents rng extents (List.init n bond))
    tensors

(* Preferential attachment: each new node connects to [edges_per_node]
   distinct existing nodes, picked with probability proportional to
   (degree + 1). Hubs emerge as high-rank tensors. *)
let power_law ?(extents = [ 2; 3; 4 ]) ?(edges_per_node = 2) ~n rng =
  if n < 3 then invalid_arg "Netopt.Gen.power_law: need at least three tensors";
  let degree = Array.make n 0 in
  let incident = Array.make n [] in
  let edge_count = ref 0 in
  let connect a b =
    let e = Printf.sprintf "e%d" !edge_count in
    incr edge_count;
    degree.(a) <- degree.(a) + 1;
    degree.(b) <- degree.(b) + 1;
    incident.(a) <- e :: incident.(a);
    incident.(b) <- e :: incident.(b)
  in
  connect 0 1;
  for i = 2 to n - 1 do
    let targets = ref [] in
    let m = min edges_per_node i in
    while List.length !targets < m do
      (* roulette over degree + 1 among nodes < i not yet chosen *)
      let weight j = if List.mem j !targets then 0 else degree.(j) + 1 in
      let total = ref 0 in
      for j = 0 to i - 1 do
        total := !total + weight j
      done;
      let roll = ref (Util.Rng.int rng !total) in
      let chosen = ref (-1) in
      for j = 0 to i - 1 do
        if !chosen < 0 then begin
          roll := !roll - weight j;
          if !roll < 0 then chosen := j
        end
      done;
      targets := !chosen :: !targets
    done;
    List.iter (fun j -> connect i j) (List.sort compare !targets)
  done;
  (* two open legs on the first two tensors keep the output at rank 2 *)
  incident.(0) <- "o0" :: incident.(0);
  incident.(1) <- "o1" :: incident.(1);
  let tensors =
    List.init n (fun i -> tensor (Printf.sprintf "T%d" i) (List.rev incident.(i)))
  in
  let all_indices =
    List.init !edge_count (fun k -> Printf.sprintf "e%d" k) @ [ "o0"; "o1" ]
  in
  Network.make ~output:[ "o0"; "o1" ]
    ~extents:(draw_extents rng extents all_indices)
    tensors
