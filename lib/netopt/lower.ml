(* Lowering: a chosen contraction tree becomes an ordinary multi-statement
   OCTOPI program - one Figure 2(a) statement per {!Tree.steps} step, with
   fresh intermediate tensor names - so every tree node flows through the
   unchanged variants -> TCR -> recipe -> SURF -> codegen pipeline.

   Because [steps] is also what the cost model scores, the emitted program
   is exactly the object the optimizer accounted for. Every summed index
   of a step appears in both factors whenever it was contracted (rather
   than deferred), which keeps the per-statement variant count at ~1: the
   cross-statement variant product of a 20-step program stays tractable.

   All extents are emitted explicitly in the [dims:] line, so the DSL
   default never silently diverges from the network's. *)

(* Fresh intermediate names n0, n1, ... skipping anything the network (or
   the output tensor) already uses. *)
let fresh_names net ~output_name count =
  let taken =
    output_name :: List.map (fun t -> t.Network.t_name) net.Network.tensors
  in
  let rec gen acc k remaining =
    if remaining = 0 then List.rev acc
    else begin
      let c = Printf.sprintf "n%d" k in
      if List.mem c taken then gen acc (k + 1) remaining
      else gen (c :: acc) (k + 1) (remaining - 1)
    end
  in
  gen [] 0 count

let program ?(output_name = "OUT") net tree =
  let extents = Network.resolved_extents net in
  let tensor_ref i =
    let t = List.nth net.Network.tensors i in
    { Octopi.Ast.name = t.t_name; indices = t.t_indices }
  in
  match tree with
  | Tree.Leaf i ->
    (* single-tensor network: one (possibly summing) copy statement *)
    let t = List.nth net.Network.tensors i in
    let sums =
      List.sort compare
        (List.filter
           (fun ix -> not (List.mem ix net.Network.output))
           (List.sort_uniq compare t.t_indices))
    in
    {
      Octopi.Ast.extents;
      stmts =
        [
          {
            Octopi.Ast.lhs =
              { Octopi.Ast.name = output_name; indices = net.Network.output };
            sum_indices = sums;
            factors = [ tensor_ref i ];
            accumulate = false;
          };
        ];
    }
  | Tree.Node _ ->
    let steps = Tree.steps net tree in
    let n = List.length steps in
    let names = Array.of_list (fresh_names net ~output_name (n - 1)) in
    let name_of k = if k = n - 1 then output_name else names.(k) in
    let factor_of = function
      | Tree.Tensor i -> tensor_ref i
      | Tree.Step j ->
        { Octopi.Ast.name = name_of j; indices = (List.nth steps j).Tree.out }
    in
    {
      Octopi.Ast.extents;
      stmts =
        List.mapi
          (fun k (s : Tree.step) ->
            {
              Octopi.Ast.lhs =
                { Octopi.Ast.name = name_of k; indices = s.out };
              sum_indices = List.sort compare s.sums;
              factors = [ factor_of s.left; factor_of s.right ];
              accumulate = false;
            })
          steps;
    }

let to_dsl ?output_name net tree = Octopi.Ast.to_string (program ?output_name net tree)

(* Journal provenance for a network-originated tune: which optimizer chose
   the order, the serialized tree, and its score breakdown. *)
let provenance ~meth ?(score = Tree.default_score) net tree =
  let c = Tree.cost net tree in
  {
    Obs.Journal.net_method = meth;
    net_order = Tree.to_string net tree;
    net_tc = c.tc;
    net_sc = c.sc;
    net_rw = c.rw;
    net_score = Tree.score score c;
  }
