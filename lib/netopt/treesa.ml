(* TreeSA-style simulated annealing over contraction trees (Kalachev et
   al.; the omeco/OMEinsumContractionOrders optimizer): start from the
   greedy tree and random-walk the space of full binary trees through
   local rotations, accepting uphill moves with Metropolis probability
   exp(-beta * delta) under a rising inverse temperature. The returned
   tree is the best ever visited, so the result never scores worse than
   greedy at any seed.

   The four rotation rules are associativity/commutativity moves that
   reach every tree shape:

     ((A,B),C) -> ((A,C),B) | ((C,B),A)
     (A,(B,C)) -> (B,(A,C)) | (C,(B,A))

   All randomness flows through the caller's {!Util.Rng} generator:
   fixed seed, fixed schedule, bit-identical result. *)

type config = {
  sa_iters : int;  (* total proposals *)
  beta0 : float;  (* initial inverse temperature *)
  beta1 : float;  (* final inverse temperature *)
}

let default_config = { sa_iters = 4000; beta0 = 0.1; beta1 = 10.0 }

(* The subtrees reachable from [t] by one rotation at its root. *)
let rotations t =
  (match t with
  | Tree.Node (Tree.Node (a, b), c) ->
    [ Tree.Node (Tree.Node (a, c), b); Tree.Node (Tree.Node (c, b), a) ]
  | _ -> [])
  @
  match t with
  | Tree.Node (a, Tree.Node (b, c)) ->
    [ Tree.Node (b, Tree.Node (a, c)); Tree.Node (c, Tree.Node (b, a)) ]
  | _ -> []

(* Paths (false = left, true = right) to every node with a rotation. *)
let rotatable_paths tree =
  let rec go t prefix acc =
    match t with
    | Tree.Leaf _ -> acc
    | Tree.Node (l, r) ->
      let acc = if rotations t = [] then acc else List.rev prefix :: acc in
      go r (true :: prefix) (go l (false :: prefix) acc)
  in
  List.rev (go tree [] [])

let rec subtree_at t = function
  | [] -> t
  | b :: rest -> (
    match t with
    | Tree.Node (l, r) -> subtree_at (if b then r else l) rest
    | Tree.Leaf _ -> invalid_arg "Netopt.Treesa: path leaves the tree")

let rec replace_at t path sub =
  match (path, t) with
  | [], _ -> sub
  | b :: rest, Tree.Node (l, r) ->
    if b then Tree.Node (l, replace_at r rest sub)
    else Tree.Node (replace_at l rest sub, r)
  | _ :: _, Tree.Leaf _ -> invalid_arg "Netopt.Treesa: path leaves the tree"

(* One uniformly random neighbour: a random rotation at a random
   rotatable node. [None] when the tree has no rotatable node (< 3
   leaves). *)
let propose rng tree =
  match rotatable_paths tree with
  | [] -> None
  | paths ->
    let path = Util.Rng.pick_list rng paths in
    let rotated = Util.Rng.pick_list rng (rotations (subtree_at tree path)) in
    Some (replace_at tree path rotated)

let optimize ?(config = default_config) ?(score = Tree.default_score)
    ~rng net =
  let start = Greedy.optimize net in
  let fitness t = Tree.score score (Tree.cost net t) in
  let current = ref start and current_score = ref (fitness start) in
  let best = ref start and best_score = ref !current_score in
  (match rotatable_paths start with
  | [] -> ()  (* nothing to anneal: fewer than three tensors *)
  | _ ->
    for k = 0 to config.sa_iters - 1 do
      let beta =
        if config.sa_iters <= 1 then config.beta1
        else
          config.beta0
          +. (config.beta1 -. config.beta0)
             *. float_of_int k
             /. float_of_int (config.sa_iters - 1)
      in
      match propose rng !current with
      | None -> ()
      | Some candidate ->
        let s = fitness candidate in
        let delta = s -. !current_score in
        let accept =
          delta <= 0.0 || Util.Rng.float rng 1.0 < Float.exp (-.beta *. delta)
        in
        if accept then begin
          current := candidate;
          current_score := s;
          if s < !best_score then begin
            best := candidate;
            best_score := s
          end
        end
    done);
  !best
