(** TreeSA-style simulated annealing over contraction trees: start from
    {!Greedy.optimize}, random-walk through local rotations with
    Metropolis acceptance under a rising inverse temperature, return the
    best tree ever visited - so the result never scores worse than greedy
    at any seed. Deterministic for a fixed seed: all randomness flows
    through the caller's generator. *)

type config = {
  sa_iters : int;  (** total proposals *)
  beta0 : float;  (** initial inverse temperature *)
  beta1 : float;  (** final inverse temperature *)
}

(** [{sa_iters = 4000; beta0 = 0.1; beta1 = 10.0}]. *)
val default_config : config

(** One random rotation neighbour; [None] below three leaves. *)
val propose : Util.Rng.t -> Tree.t -> Tree.t option

val optimize :
  ?config:config -> ?score:Tree.score_fn -> rng:Util.Rng.t -> Network.t -> Tree.t
