(* Reference Einstein-summation evaluator.

   This is the correctness oracle for the whole system: every OCTOPI variant
   and every generated kernel is checked against the result of this direct
   nested-loop evaluation. It is deliberately simple: iterate the full
   iteration space (output indices x summation indices) and accumulate the
   product of all operands. *)

type operand = { tensor : Dense.t; indices : string list }

let operand tensor indices =
  if List.length indices <> Shape.rank (Dense.shape tensor) then
    invalid_arg "Einsum.operand: index count does not match tensor rank";
  { tensor; indices }

(* Infer the extent of every index from the operands, checking that an index
   has the same extent everywhere it appears. *)
let infer_extents operands =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun { tensor; indices } ->
      let shape = Dense.shape tensor in
      List.iteri
        (fun pos name ->
          let extent = shape.(pos) in
          match Hashtbl.find_opt tbl name with
          | None -> Hashtbl.add tbl name extent
          | Some e ->
            if e <> extent then
              invalid_arg
                (Printf.sprintf "Einsum: index %s has conflicting extents %d and %d" name e
                   extent))
        indices)
    operands;
  tbl

(* [contract ~output_indices operands] evaluates the contraction whose
   summation indices are those appearing in [operands] but not in
   [output_indices]. Repeated output indices are rejected. *)
let contract ~output_indices operands =
  if operands = [] then invalid_arg "Einsum.contract: no operands";
  let extents = infer_extents operands in
  let distinct = List.sort_uniq compare output_indices in
  if List.length distinct <> List.length output_indices then
    invalid_arg "Einsum.contract: repeated output index";
  let extent name =
    match Hashtbl.find_opt extents name with
    | Some e -> e
    | None ->
      invalid_arg (Printf.sprintf "Einsum.contract: output index %s not used" name)
  in
  let all_indices =
    List.sort_uniq compare (List.concat_map (fun o -> o.indices) operands)
  in
  let sum_indices = List.filter (fun i -> not (List.mem i output_indices)) all_indices in
  let out_shape = Shape.of_list (List.map extent output_indices) in
  let sum_shape = Shape.of_list (List.map (fun i -> Hashtbl.find extents i) sum_indices) in
  let out = Dense.create out_shape in
  (* Precompute, per operand, the positions of its indices within the
     (output ++ sum) index vector so the inner loop is just array reads. *)
  let position name =
    let rec find i = function
      | [] ->
        invalid_arg
          (Printf.sprintf
             "Einsum.contract: operand index %s is in neither the output nor \
              the summation set; every operand index must appear in one"
             name)
      | x :: rest -> if x = name then i else find (i + 1) rest
    in
    find 0 (output_indices @ sum_indices)
  in
  let n_out = List.length output_indices in
  let operand_slots =
    List.map (fun o -> (o.tensor, Array.of_list (List.map position o.indices))) operands
  in
  let env = Array.make (n_out + List.length sum_indices) 0 in
  let idx_buf tensor_rank = Array.make tensor_rank 0 in
  let bufs = List.map (fun (t, slots) -> (t, slots, idx_buf (Array.length slots))) operand_slots in
  Shape.iter out_shape (fun out_idx ->
      Array.blit out_idx 0 env 0 n_out;
      let acc = ref 0.0 in
      Shape.iter sum_shape (fun sum_idx ->
          Array.blit sum_idx 0 env n_out (Array.length sum_idx);
          let prod = ref 1.0 in
          List.iter
            (fun (tensor, slots, buf) ->
              Array.iteri (fun i slot -> buf.(i) <- env.(slot)) slots;
              prod := !prod *. Dense.get tensor buf)
            bufs;
          acc := !acc +. !prod);
      Dense.set out out_idx !acc);
  out

(* Number of scalar multiply-add pairs the naive evaluation performs; used in
   tests of OCTOPI's operation-count accounting. *)
let naive_flops ~output_indices operands =
  let extents = infer_extents operands in
  let all_indices =
    List.sort_uniq compare (List.concat_map (fun o -> o.indices) operands)
  in
  ignore output_indices;
  let space =
    List.fold_left (fun acc i -> acc * Hashtbl.find extents i) 1 all_indices
  in
  (* per point of the full iteration space: (k-1) multiplies and 1 add *)
  space * List.length operands
