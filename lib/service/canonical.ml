(* Canonical form of a contraction program, the cache identity of the
   tuning service: two requests that are the same problem up to index and
   tensor names must share one cache key, because the tuned configuration
   transfers verbatim between them.

   Canonicalization alpha-renames indices and tensors in order of first
   appearance (a statement-order-preserving scan), attaches an explicit
   extent to every used index (declared or the DSL default) and sorts the
   dims line and each Sum index list - all renamings of bound names, never
   reorderings of statements or factors, which can change the generated
   code's access patterns. The key couples the rendered canonical program
   with a fingerprint of the target architecture: tuning results do not
   transfer between devices. *)

type renaming = {
  indices : (string * string) list;  (* original -> canonical, appearance order *)
  tensors : (string * string) list;
}

type t = {
  key : string;  (* hex digest: the cache identity *)
  rendered : string;  (* canonical DSL text (reparsable) *)
  program : Octopi.Ast.program;
  renaming : renaming;
  arch_fingerprint : string;
}

(* Every field of the architecture description participates: the two
   calibration constants and the memory hierarchy all shape the objective
   landscape, so any difference must separate cache entries. The string is
   {!Gpusim.Arch.fingerprint} - the same identity the tuning journal
   records, so cache keys and journaled runs agree on what "same device"
   means. *)
let arch_fingerprint = Gpusim.Arch.fingerprint

(* Apply name substitutions without touching structure; identity for names
   the functions leave alone. *)
let relabel ?(index = fun i -> i) ?(tensor = fun t -> t) (p : Octopi.Ast.program) =
  let ref_ (r : Octopi.Ast.tensor_ref) =
    { Octopi.Ast.name = tensor r.name; indices = List.map index r.indices }
  in
  {
    Octopi.Ast.extents = List.map (fun (i, e) -> (index i, e)) p.extents;
    stmts =
      List.map
        (fun (s : Octopi.Ast.stmt) ->
          {
            Octopi.Ast.lhs = ref_ s.lhs;
            sum_indices = List.map index s.sum_indices;
            factors = List.map ref_ s.factors;
            accumulate = s.accumulate;
          })
        p.stmts;
  }

let canonicalize (p : Octopi.Ast.program) =
  let fresh prefix table order name =
    if not (Hashtbl.mem table name) then begin
      Hashtbl.add table name (Printf.sprintf "%s%d" prefix (Hashtbl.length table));
      order := name :: !order
    end
  in
  let imap = Hashtbl.create 16 and iorder = ref [] in
  let tmap = Hashtbl.create 16 and torder = ref [] in
  let see_index = fresh "x" imap iorder in
  let see_tensor = fresh "t" tmap torder in
  List.iter
    (fun (s : Octopi.Ast.stmt) ->
      see_tensor s.lhs.name;
      List.iter see_index s.lhs.indices;
      List.iter
        (fun (f : Octopi.Ast.tensor_ref) ->
          see_tensor f.name;
          List.iter see_index f.indices)
        s.factors;
      (* explicit Sum indices normally appear in factors already; scan them
         last so appearance order is driven by use, not declaration *)
      List.iter see_index s.sum_indices)
    p.stmts;
  let ren table name = match Hashtbl.find_opt table name with Some c -> c | None -> name in
  let extent i =
    match List.assoc_opt i p.extents with
    | Some e -> e
    | None -> Octopi.Contraction.default_extent
  in
  let renamed =
    relabel ~index:(ren imap) ~tensor:(ren tmap)
      { p with extents = [] (* rebuilt below from used indices *) }
  in
  let extents =
    List.rev_map (fun i -> (ren imap i, extent i)) !iorder |> List.sort compare
  in
  let stmts =
    List.map
      (fun (s : Octopi.Ast.stmt) ->
        { s with Octopi.Ast.sum_indices = List.sort compare s.sum_indices })
      renamed.stmts
  in
  let mapping table order =
    List.rev_map (fun name -> (name, Hashtbl.find table name)) !order
  in
  ( { Octopi.Ast.extents; stmts },
    { indices = mapping imap iorder; tensors = mapping tmap torder } )

let of_program ~arch (p : Octopi.Ast.program) =
  let program, renaming = canonicalize p in
  let rendered = Octopi.Ast.to_string program in
  let arch_fingerprint = arch_fingerprint arch in
  let key = Digest.to_hex (Digest.string (arch_fingerprint ^ "\x00" ^ rendered)) in
  { key; rendered; program; renaming; arch_fingerprint }

let of_dsl ~arch src = of_program ~arch (Octopi.Parse.program src)

let short t = String.sub t.key 0 12

(* The benchmark the service actually tunes: label derived from the key so
   cached artifacts and live tunes agree by construction. *)
let label t = "svc-" ^ short t
let benchmark t = Autotune.Tuner.benchmark_of_dsl ~label:(label t) t.rendered
