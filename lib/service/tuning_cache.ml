(* Persistent tuning cache: versioned entries keyed by canonical form,
   layered as an in-memory LRU front over a directory of artifact files
   (one per key, written via temp-file + rename). Layered over
   Autotune.Store: the value of an entry IS a Store artifact, so anything
   restorable from a saved tuning is restorable from a cache hit.

   Corruption tolerance is a service requirement, not a nicety: a cache
   that crashes the tuner on a truncated file is worse than no cache. Any
   unreadable, version-mismatched or unparsable entry counts as [corrupt]
   and degrades to a miss - the caller re-tunes and overwrites it. *)

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let entry_version = "barracuda-service-cache v1"

type entry = { key : string; saved : Autotune.Store.saved }

type stats = {
  mutable hits : int;  (* memory + disk *)
  mutable disk_loads : int;  (* hits served by promoting a disk entry *)
  mutable misses : int;
  mutable corrupt : int;  (* bad entries degraded to misses *)
  mutable stores : int;
  mutable evictions : int;  (* LRU front only; disk entries persist *)
}

type source = Memory | Disk

type t = {
  dir : string option;
  capacity : int;
  table : (string, entry) Hashtbl.t;
  mutable order : string list;  (* most recently used first *)
  stats : stats;
  lock : Mutex.t;
}

let create ?dir ?(capacity = 128) () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
  | Some d when not (Sys.is_directory d) -> err "cache path %s is not a directory" d
  | _ -> ());
  {
    dir;
    capacity = max 1 capacity;
    table = Hashtbl.create 64;
    order = [];
    stats = { hits = 0; disk_loads = 0; misses = 0; corrupt = 0; stores = 0; evictions = 0 };
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let stats t =
  locked t (fun () -> { t.stats with hits = t.stats.hits (* copy *) })

let size t = locked t (fun () -> Hashtbl.length t.table)

(* ---------------- entry (de)serialization ---------------- *)

let render_entry (e : entry) =
  String.concat "\n"
    [ entry_version; "key: " ^ e.key; "artifact:"; Autotune.Store.render e.saved ]

let parse_entry text =
  match String.split_on_char '\n' text with
  | version :: key_line :: artifact_marker :: rest
    when String.trim version = entry_version ->
    let key =
      match String.trim key_line with
      | s when String.length s > 5 && String.sub s 0 5 = "key: " ->
        String.sub s 5 (String.length s - 5)
      | s -> err "bad key header %S" s
    in
    if String.trim artifact_marker <> "artifact:" then
      err "missing artifact section";
    { key; saved = Autotune.Store.parse (String.concat "\n" rest) }
  | _ -> err "not a %s entry" entry_version

(* ---------------- LRU front ---------------- *)

let touch t key = t.order <- key :: List.filter (( <> ) key) t.order

let insert t (e : entry) =
  if not (Hashtbl.mem t.table e.key) && Hashtbl.length t.table >= t.capacity then begin
    match List.rev t.order with
    | lru :: _ ->
      Hashtbl.remove t.table lru;
      t.order <- List.filter (( <> ) lru) t.order;
      t.stats.evictions <- t.stats.evictions + 1
    | [] -> ()
  end;
  Hashtbl.replace t.table e.key e;
  touch t e.key

(* ---------------- persistence ---------------- *)

let path_of t key =
  match t.dir with None -> None | Some d -> Some (Filename.concat d (key ^ ".tuning"))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc text);
  Sys.rename tmp path

(* Load one disk entry; [Ok] only for a well-formed entry whose recorded
   key matches its filename-derived key. *)
let load_disk path key =
  match parse_entry (read_file path) with
  | e when e.key = key -> Ok e
  | _ -> Error "key mismatch"
  | exception e -> Error (Printexc.to_string e)

(* ---------------- the cache protocol ---------------- *)

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
        touch t key;
        t.stats.hits <- t.stats.hits + 1;
        Some (e, Memory)
      | None -> (
        match path_of t key with
        | Some path when Sys.file_exists path -> (
          match load_disk path key with
          | Ok e ->
            insert t e;
            t.stats.hits <- t.stats.hits + 1;
            t.stats.disk_loads <- t.stats.disk_loads + 1;
            Some (e, Disk)
          | Error _ ->
            t.stats.corrupt <- t.stats.corrupt + 1;
            t.stats.misses <- t.stats.misses + 1;
            None)
        | _ ->
          t.stats.misses <- t.stats.misses + 1;
          None))

let store t ~key saved =
  let e = { key; saved } in
  locked t (fun () ->
      insert t e;
      t.stats.stores <- t.stats.stores + 1;
      match path_of t key with
      | None -> ()
      | Some path -> ( try write_file path (render_entry e) with Sys_error _ -> ()))

(* ---------------- offline inventory (the `stats` subcommand) ---------------- *)

type inventory = {
  entries : entry list;
  corrupt_files : (string * string) list;  (* file, reason *)
}

let inventory ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    { entries = []; corrupt_files = [ (dir, "no such directory") ] }
  else
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter (fun f -> Filename.check_suffix f ".tuning")
    |> List.fold_left
         (fun acc file ->
           let key = Filename.chop_suffix file ".tuning" in
           match load_disk (Filename.concat dir file) key with
           | Ok e -> { acc with entries = e :: acc.entries }
           | Error reason ->
             { acc with corrupt_files = (file, reason) :: acc.corrupt_files })
         { entries = []; corrupt_files = [] }
    |> fun inv ->
    { entries = List.rev inv.entries; corrupt_files = List.rev inv.corrupt_files }
