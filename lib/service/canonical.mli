(** Canonical form of a contraction program: the cache identity of the
    tuning service. Equivalent requests - the same problem up to index and
    tensor renaming, extent-declaration order, Sum-list order or implicit
    default extents - share one key; different extents, statement
    structure or target architecture never do. *)

type renaming = {
  indices : (string * string) list;  (** original -> canonical, appearance order *)
  tensors : (string * string) list;
}

type t = {
  key : string;  (** hex digest: the cache identity *)
  rendered : string;  (** canonical DSL text (reparsable) *)
  program : Octopi.Ast.program;
  renaming : renaming;
  arch_fingerprint : string;
}

(** Every performance-relevant field of the device description: tuning
    results do not transfer between architectures. *)
val arch_fingerprint : Gpusim.Arch.t -> string

(** Apply name substitutions without touching structure (both default to
    the identity). Used by tests and benchmarks to build equivalent
    requests. *)
val relabel :
  ?index:(string -> string) ->
  ?tensor:(string -> string) ->
  Octopi.Ast.program ->
  Octopi.Ast.program

(** Alpha-rename indices/tensors in first-appearance order, attach explicit
    extents to every used index, sort the dims line and Sum lists. Returns
    the canonical program and the original->canonical renaming. *)
val canonicalize : Octopi.Ast.program -> Octopi.Ast.program * renaming

val of_program : arch:Gpusim.Arch.t -> Octopi.Ast.program -> t

(** Parse then {!of_program}. Raises {!Octopi.Parse.Error} on bad input. *)
val of_dsl : arch:Gpusim.Arch.t -> string -> t

(** First 12 hex characters of the key, for display. *)
val short : t -> string

(** Service-internal benchmark label, derived from the key. *)
val label : t -> string

(** The canonical benchmark the service tunes (and whose artifacts it
    caches). *)
val benchmark : t -> Autotune.Tuner.benchmark
