(** The tuning service: a long-lived front end over the one-shot pipeline.
    Requests are canonicalized ({!Canonical}), deduplicated, served from
    the persistent cache ({!Tuning_cache}) when possible, and otherwise
    tuned - across OCaml 5 domains when a batch has several cold keys,
    inside SURF's per-iteration evaluation batch when it has one. Every
    stage reports to a {!Metrics} registry.

    Determinism: a response depends only on the canonical key and the
    service configuration - never on batch composition, domain count or
    cache state. Tuning the same program with 1, 2 or 4 domains yields a
    bit-identical winning configuration, because evaluation is pure and
    batches are merged back in input order. *)

type request = { label : string; src : string }

type served =
  | Tuned  (** cold: a full SURF search ran *)
  | Memory_hit  (** served from the LRU front *)
  | Disk_hit  (** promoted from the persistent store *)
  | Deduplicated  (** shared an equivalent request's result in this batch *)

val served_name : served -> string

type response = {
  label : string;
  key : string;  (** canonical cache key *)
  served : served;
  result : Autotune.Tuner.result;  (** for the canonical program *)
  renaming : Canonical.renaming;  (** original -> canonical names *)
  wall_s : float;  (** wall time attributed to this request *)
}

type config = {
  arch : Gpusim.Arch.t;
  domains : int;
  clamp_domains : bool;
      (** cap [domains] at the hardware's recommended count (default on:
          oversubscribed domains are slower, not just useless) *)
  max_evals : int;
  batch_size : int;
  pool_per_variant : int;
  reps : int;
  seed : int;
  cache_dir : string option;  (** [None] = memory-only cache *)
  cache_capacity : int;
}

(** GTX 980, 1 domain, the paper's search budget, memory-only cache. *)
val default_config : config

type t

val create : ?config:config -> unit -> t

val metrics : t -> Metrics.t

(** The engine's self-watching {!Obs.Drift} monitors: a [cache.hit_rate]
    monitor fed 0/1 per response (Page-Hinkley pages when the hit rate
    collapses, i.e. eviction or key churn) and a [surrogate.mispredict]
    monitor fed [|predicted/measured - 1|] per model-guided evaluation of
    every cold tune. Fed on the caller's domain inside {!batch}; feeding
    draws no RNG, so tuning results are unchanged. The registry is not
    domain-safe - query it from the domain that calls {!batch}. *)
val drift : t -> Obs.Drift.registry

val cache_stats : t -> Tuning_cache.stats

(** Worker count after clamping (see {!Scheduler.create}). *)
val effective_domains : t -> int

(** Serve a batch: responses in request order. *)
val batch : t -> request list -> response list

val tune : t -> request -> response
val tune_dsl : ?label:string -> t -> string -> response

(** Rendered metrics plus cache counters plus drift-monitor summary. *)
val stats_report : t -> string

(** Prometheus text exposition of the service metrics and cache gauges. *)
val prometheus_report : t -> string

(** Human-readable SURF convergence report for one response; notes when no
    search ran (cache hits carry no iterations). *)
val convergence_report : response -> string
