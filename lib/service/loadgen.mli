(** Journal-replay load harness: drive {!Engine} with a realistic request
    mix recorded by the tuning flight recorder, feed the resulting stream
    through {!Obs.Window}, and emit a final {!Obs.Slo} verdict.

    Arrival mix: each journal entry contributes one request class (its
    label and recorded canonical DSL); duplicate DSLs merge, weights count
    occurrences. The replay samples classes by weight from a fixed-seed
    {!Util.Rng} and serves them through a real {!Engine} in batches, so
    the stream exercises the actual serve path - cold tunes, cache hits,
    in-batch deduplication (single-flight coalescing).

    Determinism: the logical clock is the request index (one tick per
    request, no wall-clock reads on the hot path), and the latency fed to
    the windows is a documented deterministic model of service time - a
    per-serve-class base cost ([hit_cost_s], or [tune_base_s +
    eval_cost_s * evaluations] for cold tunes) times fixed-seed lognormal
    jitter - not a wall-clock measurement. Engine results are themselves
    deterministic for a fixed seed, so a replay is bit-identical across
    runs: {!report_json} excludes wall time for exactly this reason.
    Errors are injected with probability [error_rate] from the same RNG so
    the error-budget side of the SLO is exercised.

    Memory is bounded: window state is O(buckets) sketches and the engine
    metrics retain at most {!Metrics.raw_sample_cap} raw samples per
    timer, so replaying 10^4-10^6 requests does not grow storage with the
    request count. *)

type mix = { mix_label : string; mix_dsl : string; weight : int }

(** One class per distinct recorded DSL, weighted by occurrence count,
    in first-appearance order. Empty journals yield []. *)
val mix_of_journal : Obs.Journal.entry list -> mix list

type config = {
  requests : int;  (** total requests to replay *)
  seed : int;  (** arrival sampling, jitter and error injection *)
  batch : int;  (** requests per {!Engine.batch} call *)
  error_rate : float;  (** injected failure probability per request *)
  jitter : float;  (** lognormal sigma of the latency model *)
  degrade : float;  (** latency multiplier; >1 simulates a regression *)
  degrade_at : int;
      (** first tick the degrade multiplier applies to; 0 degrades the
          whole run, [requests/2] injects a mid-replay regression *)
  monitor : bool;
      (** attach online change-point monitors ({!Obs.Drift}) to the
          latency stream: a [latency.p99] quantile-shift monitor and a
          [latency.mean] CUSUM, both calibrated from the replay's own
          early windows. Monitors skip the first [window_width] ticks so
          cold-tune warmup cannot pollute the reference. *)
  hit_cost_s : float;  (** modeled service cost of a cache hit *)
  tune_base_s : float;  (** modeled fixed cost of a cold tune *)
  eval_cost_s : float;  (** modeled cost per SURF evaluation *)
  window_width : int;  (** logical ticks per window epoch *)
  window_buckets : int;  (** epochs in the window ring *)
  slo : Obs.Slo.spec;
  engine : Engine.config;
}

(** 10^4 requests, seed 7, batches of 16, 0.1% injected errors, jitter
    0.25, 250-tick epochs in an 8-slot ring, {!Obs.Slo.default_spec}, and
    a default engine with [reps = 3] (restores are re-measured cheaply). *)
val default_config : config

type result = {
  cfg : config;
  classes : mix list;
  total : int;  (** requests actually replayed *)
  errors : int;  (** injected failures *)
  served : (string * int) list;  (** serve-class name -> count, sorted *)
  ticks : int;  (** final logical tick (= total - 1) *)
  window : Obs.Window.t;
  verdict : Obs.Slo.report;  (** evaluated at the final tick *)
  metrics : Metrics.t;  (** the engine's metrics registry *)
  drift : Obs.Drift.registry option;  (** the monitors, when [monitor] *)
  alarms : Obs.Drift.alarm list;
      (** change-point alarms fired during the replay, tick order; [[]]
          when [monitor] is off. Deterministic: two identical replays
          alarm at identical ticks. *)
  wall_s : float;  (** real wall time of the replay (not in the JSON) *)
}

(** Run the replay. [on_frame] (with [frame_every] ticks, default none)
    is called during the replay for live dashboards. Raises
    [Invalid_argument] on an empty mix or a non-positive request count. *)
val run :
  ?on_frame:(Obs.Window.t -> now:int -> unit) ->
  ?frame_every:int ->
  config ->
  mix list ->
  result

(** Human-readable summary: mix, serve counts, window dashboard, SLO
    verdict, throughput. *)
val render : result -> string

(** Machine-readable report for CI: config echo, class mix, serve counts,
    window-tail quantiles, the SLO verdict and (when monitoring) the
    drift-monitor summary with its alarms. Deterministic for a fixed
    seed (no wall times, no timestamps). *)
val report_json : result -> Obs.Json.t
