(** Journal-replay load harness: drive {!Engine} with a realistic request
    mix recorded by the tuning flight recorder, feed the resulting stream
    through {!Obs.Window}, and emit a final {!Obs.Slo} verdict.

    Arrival mix: each journal entry contributes one request class (its
    label and recorded canonical DSL); duplicate DSLs merge, weights count
    occurrences. The replay samples classes by weight from a fixed-seed
    {!Util.Rng} and serves them through a real {!Engine} in batches, so
    the stream exercises the actual serve path - cold tunes, cache hits,
    in-batch deduplication (single-flight coalescing).

    Determinism: the logical clock is the request index (one tick per
    request, no wall-clock reads on the hot path), and the latency fed to
    the windows is a documented deterministic model of service time - a
    per-phase cost decomposition (see below) summed and multiplied by
    fixed-seed lognormal jitter - not a wall-clock measurement. Engine
    results are themselves deterministic for a fixed seed, so a replay is
    bit-identical across runs: {!report_json} excludes wall time for
    exactly this reason. Errors are injected with probability
    [error_rate] from the same RNG so the error-budget side of the SLO is
    exercised.

    Latency model: each request's base cost is a sum of per-phase costs
    ({!Obs.Ledger.phase}). Every class pays canonicalize (0.10 hit) +
    lookup (0.15 hit) + queue ([queue_cost_s] x batch position); warm
    hits add a 0.75-hit restore measure, dedups a 0.25-hit share, and
    cold tunes split [tune_base_s] across
    enumerate/prune/gate/surrogate/codegen/store (0.30/0.10/0.15/0.25/
    0.15/0.05) plus [eval_cost_s * evaluations] of measure. The whole
    vector is scaled by one jitter x degrade multiplier, so the scaled
    phase costs sum {e exactly} to the end-to-end latency - the
    {!Obs.Ledger} reconciliation invariant, and the property that lets
    {!Obs.Whatif} compute causal phase impacts exactly.

    Memory is bounded: window state is O(buckets) sketches, the ledger is
    O(classes x phases) sketch cells plus a fixed exemplar ring, and the
    engine metrics retain at most {!Metrics.raw_sample_cap} raw samples
    per timer, so replaying 10^4-10^6 requests does not grow storage with
    the request count ([record] opts into O(requests) what-if records). *)

type mix = { mix_label : string; mix_dsl : string; weight : int }

(** One class per distinct recorded DSL, weighted by occurrence count,
    in first-appearance order. Empty journals yield []. *)
val mix_of_journal : Obs.Journal.entry list -> mix list

type config = {
  requests : int;  (** total requests to replay *)
  seed : int;  (** arrival sampling, jitter and error injection *)
  batch : int;  (** requests per {!Engine.batch} call *)
  error_rate : float;  (** injected failure probability per request *)
  jitter : float;  (** lognormal sigma of the latency model *)
  degrade : float;  (** latency multiplier; >1 simulates a regression *)
  degrade_at : int;
      (** first tick the degrade multiplier applies to; 0 degrades the
          whole run, [requests/2] injects a mid-replay regression *)
  monitor : bool;
      (** attach online change-point monitors ({!Obs.Drift}) to the
          latency stream: a [latency.p99] quantile-shift monitor and a
          [latency.mean] CUSUM, both calibrated from the replay's own
          early windows. Monitors skip the first [window_width] ticks so
          cold-tune warmup cannot pollute the reference. *)
  hit_cost_s : float;  (** modeled service cost of a cache hit *)
  tune_base_s : float;  (** modeled fixed cost of a cold tune *)
  eval_cost_s : float;  (** modeled cost per SURF evaluation *)
  queue_cost_s : float;  (** modeled queue wait per batch position *)
  window_width : int;  (** logical ticks per window epoch *)
  window_buckets : int;  (** epochs in the window ring *)
  slo : Obs.Slo.spec;
  engine : Engine.config;
}

(** 10^4 requests, seed 7, batches of 16, 0.1% injected errors, jitter
    0.25, 250-tick epochs in an 8-slot ring, {!Obs.Slo.default_spec}, and
    a default engine with [reps = 3] (restores are re-measured cheaply). *)
val default_config : config

type result = {
  cfg : config;
  classes : mix list;
  total : int;  (** requests actually replayed *)
  errors : int;  (** injected failures *)
  served : (string * int) list;  (** serve-class name -> count, sorted *)
  ticks : int;  (** final logical tick (= total - 1) *)
  window : Obs.Window.t;
  verdict : Obs.Slo.report;  (** evaluated at the final tick *)
  metrics : Metrics.t;  (** the engine's metrics registry *)
  drift : Obs.Drift.registry option;  (** the monitors, when [monitor] *)
  alarms : Obs.Drift.alarm list;
      (** change-point alarms fired during the replay, tick order; [[]]
          when [monitor] is off. Deterministic: two identical replays
          alarm at identical ticks. *)
  ledger : Obs.Ledger.t;  (** per-phase cost accounting of the replay *)
  records : Obs.Whatif.record list;
      (** per-request what-if records in tick order; [[]] unless the
          replay ran with [record] *)
  wall_s : float;  (** real wall time of the replay (not in the JSON) *)
}

(** Latest journal run id per canonical DSL, in first-appearance order:
    passed to {!run} as [run_ids] so ledger exemplars can name the tuning
    run behind a slow request. *)
val run_ids_of_journal : Obs.Journal.entry list -> (string * string) list

(** Run the replay. [on_frame] (with [frame_every] ticks, default none)
    is called during the replay for live dashboards. [record] (default
    false) keeps per-request {!Obs.Whatif} records for causal what-if
    profiling - the one opt-in that grows with the request count.
    [run_ids] maps canonical DSL to journal run id for exemplars (see
    {!run_ids_of_journal}). Raises [Invalid_argument] on an empty mix or
    a non-positive request count. *)
val run :
  ?on_frame:(Obs.Window.t -> now:int -> unit) ->
  ?frame_every:int ->
  ?record:bool ->
  ?run_ids:(string * string) list ->
  config ->
  mix list ->
  result

(** Package a result as the {!Obs.Whatif.file} that [loadgen
    --ledger-out] writes and the [ledger]/[whatif] subcommands read. *)
val ledger_file : result -> Obs.Whatif.file

(** Human-readable summary: mix, serve counts, window dashboard, SLO
    verdict, throughput. *)
val render : result -> string

(** Machine-readable report for CI: config echo, class mix, serve counts,
    window-tail quantiles, the SLO verdict, the ledger report and (when
    monitoring) the drift-monitor summary with its alarms. Deterministic
    for a fixed seed (no wall times, no timestamps). *)
val report_json : result -> Obs.Json.t
