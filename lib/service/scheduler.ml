(* Multi-domain work scheduler (OCaml 5 domains): an order-preserving
   parallel map with dynamic load balancing over a shared atomic cursor.

   Determinism: workers race only for *which* item they compute, never for
   where its result lands - slot [i] of the result array is written by
   exactly the one domain that claimed index [i], so for a pure function
   the output list is identical to [List.map] regardless of domain count
   or interleaving. Exceptions are re-raised in item order for the same
   reason. *)

type t = { requested : int; domains : int }

(* Domains beyond the hardware's parallelism do not just fail to help -
   cross-domain GC coordination makes them actively slower - so requests
   are clamped to [recommended_domain_count] unless [clamp_to_cores] is
   off (tests use that to exercise true multi-domain execution anywhere). *)
let create ?(clamp_to_cores = true) ?domains () =
  let requested =
    match domains with
    | Some d -> max 1 (min d 128)
    | None -> Domain.recommended_domain_count ()
  in
  let domains =
    if clamp_to_cores then min requested (Domain.recommended_domain_count ())
    else requested
  in
  { requested; domains = max 1 domains }

let requested t = t.requested
let domains t = t.domains

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when t.domains = 1 -> List.map f xs
  | _ ->
    let input = Array.of_list xs in
    let n = Array.length input in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* disjoint slots: no two domains write the same index *)
          results.(i) <- Some (try Ok (f input.(i)) with e -> Error e);
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (min (t.domains - 1) (n - 1)) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.to_list
      (Array.mapi
         (fun i -> function
           | Some (Ok r) -> r
           | Some (Error e) -> raise e
           | None ->
             invalid_arg
               (Printf.sprintf
                  "Scheduler.map: result slot %d of %d was never written; every \
                   index below the cursor must be claimed by exactly one joined \
                   domain"
                  i n))
         results)

(* Run measurement thunks: the shape {!Autotune.Tuner.tune}'s [batch_map]
   expects. *)
let run_thunks t thunks = map t (fun f -> f ()) thunks
