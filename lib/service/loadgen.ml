(* Journal-replay load harness. See the interface for the determinism and
   bounded-memory contracts; the short version is that every stochastic
   choice (class sampling, jitter, error injection) draws from one
   fixed-seed Util.Rng in request order, the logical clock is the request
   index, and the latency fed to the telemetry windows is modeled - a
   deterministic function of how the engine served the request - rather
   than measured. *)

type mix = { mix_label : string; mix_dsl : string; weight : int }

let mix_of_journal entries =
  let order = ref [] in
  let by_dsl = Hashtbl.create 16 in
  List.iter
    (fun (e : Obs.Journal.entry) ->
      match Hashtbl.find_opt by_dsl e.dsl with
      | Some m -> m := { !m with weight = !m.weight + 1 }
      | None ->
        let m = ref { mix_label = e.label; mix_dsl = e.dsl; weight = 1 } in
        Hashtbl.add by_dsl e.dsl m;
        order := m :: !order)
    entries;
  List.rev_map (fun m -> !m) !order

type config = {
  requests : int;
  seed : int;
  batch : int;
  error_rate : float;
  jitter : float;
  degrade : float;
  degrade_at : int;
  monitor : bool;
  hit_cost_s : float;
  tune_base_s : float;
  eval_cost_s : float;
  queue_cost_s : float;
  window_width : int;
  window_buckets : int;
  slo : Obs.Slo.spec;
  engine : Engine.config;
}

let default_config =
  {
    requests = 10_000;
    seed = 7;
    batch = 16;
    error_rate = 0.001;
    jitter = 0.25;
    degrade = 1.0;
    degrade_at = 0;
    monitor = false;
    hit_cost_s = 2e-4;
    tune_base_s = 1e-3;
    eval_cost_s = 2e-3;
    queue_cost_s = 5e-6;
    window_width = 250;
    window_buckets = 8;
    slo = Obs.Slo.default_spec;
    engine = { Engine.default_config with reps = 3 };
  }

type result = {
  cfg : config;
  classes : mix list;
  total : int;
  errors : int;
  served : (string * int) list;
  ticks : int;
  window : Obs.Window.t;
  verdict : Obs.Slo.report;
  metrics : Metrics.t;
  drift : Obs.Drift.registry option;
  alarms : Obs.Drift.alarm list;
  ledger : Obs.Ledger.t;
  records : Obs.Whatif.record list;
  wall_s : float;
}

let serve_class (r : Engine.response) =
  match r.served with
  | Engine.Tuned -> Obs.Ledger.Cold
  | Engine.Memory_hit | Engine.Disk_hit -> Obs.Ledger.Warm
  | Engine.Deduplicated -> Obs.Ledger.Dedup

(* Modeled service time of one response, decomposed by phase. Every class
   pays canonicalization + cache lookup plus a queue wait growing with its
   batch position; warm hits pay a restore measurement (0.75 hit), dedups
   ride a concurrent equivalent's work (0.25 hit), and cold tunes split
   the paper's pipeline - enumerate/prune/gate/surrogate/codegen/store
   shares of the base tune cost plus the per-evaluation measure cost.
   Per class the shares sum to the former scalar model (hit = 1.0 hit,
   dedup = 0.5 hit, cold = tune_base + evals * eval_cost) up to the new
   additive queue term, so existing SLO budgets stay calibrated. *)
let phase_costs cfg (r : Engine.response) ~position =
  let h = cfg.hit_cost_s and t = cfg.tune_base_s in
  let common =
    [
      (Obs.Ledger.Canonicalize, 0.10 *. h);
      (Obs.Ledger.Lookup, 0.15 *. h);
      (Obs.Ledger.Queue, cfg.queue_cost_s *. float_of_int position);
    ]
  in
  match r.served with
  | Engine.Tuned ->
    common
    @ [
        (Obs.Ledger.Enumerate, 0.30 *. t);
        (Obs.Ledger.Prune, 0.10 *. t);
        (Obs.Ledger.Gate, 0.15 *. t);
        (Obs.Ledger.Surrogate, 0.25 *. t);
        (Obs.Ledger.Measure,
         cfg.eval_cost_s *. float_of_int r.result.Autotune.Tuner.evaluations);
        (Obs.Ledger.Codegen, 0.15 *. t);
        (Obs.Ledger.Store, 0.05 *. t);
      ]
  | Engine.Memory_hit | Engine.Disk_hit ->
    common @ [ (Obs.Ledger.Measure, 0.75 *. h) ]
  | Engine.Deduplicated -> common @ [ (Obs.Ledger.Measure, 0.25 *. h) ]

(* Latest journal run id per canonical DSL, so ledger exemplars can name
   the tuning run behind a slow request. *)
let run_ids_of_journal entries =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (e : Obs.Journal.entry) ->
      if not (Hashtbl.mem tbl e.dsl) then order := e.dsl :: !order;
      Hashtbl.replace tbl e.dsl e.run_id)
    entries;
  List.rev_map (fun dsl -> (dsl, Hashtbl.find tbl dsl)) !order

let run ?on_frame ?frame_every ?(record = false) ?(run_ids = []) cfg classes =
  if classes = [] then invalid_arg "Loadgen.run: empty request mix";
  if cfg.requests < 1 then invalid_arg "Loadgen.run: requests must be >= 1";
  let t0 = Unix.gettimeofday () in
  let rng = Util.Rng.create cfg.seed in
  let svc = Engine.create ~config:cfg.engine () in
  let window =
    Obs.Window.create ~width:cfg.window_width ~buckets:cfg.window_buckets ()
  in
  let ledger = Obs.Ledger.create ~slot_width:cfg.window_width () in
  let records = ref [] in
  let total_weight = List.fold_left (fun acc m -> acc + m.weight) 0 classes in
  let pick () =
    let w = Util.Rng.int rng total_weight in
    let rec go acc = function
      | [ m ] -> m
      | m :: rest -> if w < acc + m.weight then m else go (acc + m.weight) rest
      | [] -> assert false
    in
    go 0 classes
  in
  let errors = ref 0 in
  let served = Hashtbl.create 8 in
  let tick = ref (-1) in
  (* Change-point monitors over the modeled latency stream, calibrated
     from the replay's own early windows (one window of CUSUM reference =
     two epochs; quantile-shift merges its first two windows). Feeding
     starts after the first epoch so cold-tune outliers - every class is
     tuned within the first few batches - stay out of the reference. *)
  let drift =
    if not cfg.monitor then None
    else begin
      let r = Obs.Drift.create_registry () in
      Obs.Drift.register r
        (Obs.Drift.quantile_shift ~p:99.0 ~ratio:2.0 ~window:cfg.window_width
           ~ref_windows:2 "latency.p99");
      Obs.Drift.register r
        (Obs.Drift.cusum ~ref_count:(2 * cfg.window_width) ~k:0.5 ~h:15.0
           "latency.mean");
      Some r
    end
  in
  let next_frame = ref (match frame_every with Some k -> k | None -> max_int) in
  let remaining = ref cfg.requests in
  while !remaining > 0 do
    let n = min cfg.batch !remaining in
    remaining := !remaining - n;
    let reqs =
      List.init n (fun _ ->
          let m = pick () in
          { Engine.label = m.mix_label; src = m.mix_dsl })
    in
    let responses = Engine.batch svc reqs in
    let position = ref (-1) in
    List.iter2
      (fun (req : Engine.request) (r : Engine.response) ->
        Stdlib.incr tick;
        Stdlib.incr position;
        let degrade = if !tick >= cfg.degrade_at then cfg.degrade else 1.0 in
        (* one multiplier for the whole request, so the scaled per-phase
           costs sum exactly to the latency (the ledger reconciliation
           invariant, and what lets Whatif scale one phase exactly) *)
        let mult = degrade *. exp (cfg.jitter *. Util.Rng.gaussian rng) in
        let costs = phase_costs cfg r ~position:!position in
        let base = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 costs in
        let latency = base *. mult in
        let ok = not (Util.Rng.float rng 1.0 < cfg.error_rate) in
        if not ok then Stdlib.incr errors;
        (match drift with
        | Some reg when !tick >= cfg.window_width ->
          List.iter
            (fun m -> ignore (Obs.Drift.observe m ~tick:!tick latency))
            (Obs.Drift.monitors reg)
        | _ -> ());
        let name = Engine.served_name r.served in
        (match Hashtbl.find_opt served name with
        | Some c -> Stdlib.incr c
        | None -> Hashtbl.add served name (ref 1));
        Obs.Window.observe window ~now:!tick ~ok latency;
        let cls = serve_class r in
        Obs.Ledger.observe ledger ~label:r.label ~key:r.key
          ?run_id:(List.assoc_opt req.src run_ids)
          ~tick:!tick ~cls ~ok ~latency_s:latency
          (List.map (fun (p, v) -> (p, v *. mult)) costs);
        if record then
          records :=
            {
              Obs.Whatif.rq_tick = !tick;
              rq_class = cls;
              rq_ok = ok;
              rq_mult = mult;
              rq_costs = costs;
            }
            :: !records;
        if !tick + 1 >= !next_frame then begin
          (match on_frame with Some f -> f window ~now:!tick | None -> ());
          next_frame :=
            !next_frame + (match frame_every with Some k -> k | None -> max_int)
        end)
      reqs responses
  done;
  let verdict = Obs.Slo.evaluate cfg.slo window ~now:!tick in
  {
    cfg;
    classes;
    total = cfg.requests;
    errors = !errors;
    served =
      Hashtbl.fold (fun name c acc -> (name, !c) :: acc) served []
      |> List.sort compare;
    ticks = !tick;
    window;
    verdict;
    metrics = Engine.metrics svc;
    drift;
    alarms =
      (match drift with None -> [] | Some r -> Obs.Drift.all_alarms r);
    ledger;
    records = List.rev !records;
    wall_s = Unix.gettimeofday () -. t0;
  }

(* Everything the ledger/whatif CLI subcommands need to re-derive the
   replay offline: the ledger report plus (when [run ~record:true]) the
   raw per-request cost records. *)
let ledger_file r =
  {
    Obs.Whatif.f_requests = r.total;
    f_seed = r.cfg.seed;
    f_width = r.cfg.window_width;
    f_buckets = r.cfg.window_buckets;
    f_slo = Some r.cfg.slo;
    f_ledger = Obs.Ledger.report r.ledger;
    f_records = r.records;
  }

let render r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "replayed %d requests (%d classes, seed %d) in %.2fs (%.0f req/s)\n"
       r.total (List.length r.classes) r.cfg.seed r.wall_s
       (float_of_int r.total /. Float.max 1e-9 r.wall_s));
  List.iter
    (fun m ->
      Buffer.add_string b
        (Printf.sprintf "  class %-16s weight %d\n" m.mix_label m.weight))
    r.classes;
  List.iter
    (fun (name, n) -> Buffer.add_string b (Printf.sprintf "  served %-14s %d\n" name n))
    r.served;
  Buffer.add_string b
    (Printf.sprintf "  injected errors: %d (%.3f%%)\n" r.errors
       (100.0 *. float_of_int r.errors /. float_of_int r.total));
  Buffer.add_string b (Obs.Window.render r.window ~now:r.ticks);
  Buffer.add_string b (Obs.Slo.render r.verdict);
  Buffer.add_string b (Obs.Ledger.render (Obs.Ledger.report r.ledger));
  (match r.drift with
  | Some reg -> Buffer.add_string b (Obs.Drift.render reg)
  | None -> ());
  Buffer.contents b

let report_json r =
  let snap = Obs.Window.snapshot r.window ~now:r.ticks in
  Obs.Json.Obj
    ([
      ("schema_version", Obs.Json.int 1);
      ("requests", Obs.Json.int r.total);
      ("seed", Obs.Json.int r.cfg.seed);
      ("batch", Obs.Json.int r.cfg.batch);
      ("errors", Obs.Json.int r.errors);
      ( "classes",
        Obs.Json.Arr
          (List.map
             (fun m ->
               Obs.Json.Obj
                 [
                   ("label", Obs.Json.Str m.mix_label);
                   ("weight", Obs.Json.int m.weight);
                 ])
             r.classes) );
      ( "served",
        Obs.Json.Obj (List.map (fun (name, n) -> (name, Obs.Json.int n)) r.served) );
      ( "window",
        Obs.Json.Obj
          [
            ("ticks", Obs.Json.int snap.ticks);
            ("requests", Obs.Json.int snap.requests);
            ("error_ratio", Obs.Json.Num snap.error_ratio);
            ("rate_per_tick", Obs.Json.Num snap.rate);
            ("p50_s", Obs.Json.Num (Obs.Window.quantile snap 50.0));
            ("p90_s", Obs.Json.Num (Obs.Window.quantile snap 90.0));
            ("p99_s", Obs.Json.Num (Obs.Window.quantile snap 99.0));
            ("sketch_buckets", Obs.Json.int (Obs.Sketch.bucket_count snap.sketch));
          ] );
      ("slo", Obs.Slo.to_json r.verdict);
      ("ledger", Obs.Ledger.report_json (Obs.Ledger.report r.ledger));
    ]
    @
    match r.drift with
    | None -> []
    | Some reg -> [ ("drift", Obs.Drift.registry_json reg) ])
