(* Journal-replay load harness. See the interface for the determinism and
   bounded-memory contracts; the short version is that every stochastic
   choice (class sampling, jitter, error injection) draws from one
   fixed-seed Util.Rng in request order, the logical clock is the request
   index, and the latency fed to the telemetry windows is modeled - a
   deterministic function of how the engine served the request - rather
   than measured. *)

type mix = { mix_label : string; mix_dsl : string; weight : int }

let mix_of_journal entries =
  let order = ref [] in
  let by_dsl = Hashtbl.create 16 in
  List.iter
    (fun (e : Obs.Journal.entry) ->
      match Hashtbl.find_opt by_dsl e.dsl with
      | Some m -> m := { !m with weight = !m.weight + 1 }
      | None ->
        let m = ref { mix_label = e.label; mix_dsl = e.dsl; weight = 1 } in
        Hashtbl.add by_dsl e.dsl m;
        order := m :: !order)
    entries;
  List.rev_map (fun m -> !m) !order

type config = {
  requests : int;
  seed : int;
  batch : int;
  error_rate : float;
  jitter : float;
  degrade : float;
  degrade_at : int;
  monitor : bool;
  hit_cost_s : float;
  tune_base_s : float;
  eval_cost_s : float;
  window_width : int;
  window_buckets : int;
  slo : Obs.Slo.spec;
  engine : Engine.config;
}

let default_config =
  {
    requests = 10_000;
    seed = 7;
    batch = 16;
    error_rate = 0.001;
    jitter = 0.25;
    degrade = 1.0;
    degrade_at = 0;
    monitor = false;
    hit_cost_s = 2e-4;
    tune_base_s = 1e-3;
    eval_cost_s = 2e-3;
    window_width = 250;
    window_buckets = 8;
    slo = Obs.Slo.default_spec;
    engine = { Engine.default_config with reps = 3 };
  }

type result = {
  cfg : config;
  classes : mix list;
  total : int;
  errors : int;
  served : (string * int) list;
  ticks : int;
  window : Obs.Window.t;
  verdict : Obs.Slo.report;
  metrics : Metrics.t;
  drift : Obs.Drift.registry option;
  alarms : Obs.Drift.alarm list;
  wall_s : float;
}

(* Modeled service time of one response: hits cost a restore, deduplicated
   requests ride a concurrent equivalent's work (half a hit), cold tunes
   pay per evaluation. *)
let model_latency cfg (r : Engine.response) =
  match r.served with
  | Engine.Tuned ->
    cfg.tune_base_s +. (cfg.eval_cost_s *. float_of_int r.result.Autotune.Tuner.evaluations)
  | Engine.Memory_hit | Engine.Disk_hit -> cfg.hit_cost_s
  | Engine.Deduplicated -> cfg.hit_cost_s /. 2.0

let run ?on_frame ?frame_every cfg classes =
  if classes = [] then invalid_arg "Loadgen.run: empty request mix";
  if cfg.requests < 1 then invalid_arg "Loadgen.run: requests must be >= 1";
  let t0 = Unix.gettimeofday () in
  let rng = Util.Rng.create cfg.seed in
  let svc = Engine.create ~config:cfg.engine () in
  let window =
    Obs.Window.create ~width:cfg.window_width ~buckets:cfg.window_buckets ()
  in
  let total_weight = List.fold_left (fun acc m -> acc + m.weight) 0 classes in
  let pick () =
    let w = Util.Rng.int rng total_weight in
    let rec go acc = function
      | [ m ] -> m
      | m :: rest -> if w < acc + m.weight then m else go (acc + m.weight) rest
      | [] -> assert false
    in
    go 0 classes
  in
  let errors = ref 0 in
  let served = Hashtbl.create 8 in
  let tick = ref (-1) in
  (* Change-point monitors over the modeled latency stream, calibrated
     from the replay's own early windows (one window of CUSUM reference =
     two epochs; quantile-shift merges its first two windows). Feeding
     starts after the first epoch so cold-tune outliers - every class is
     tuned within the first few batches - stay out of the reference. *)
  let drift =
    if not cfg.monitor then None
    else begin
      let r = Obs.Drift.create_registry () in
      Obs.Drift.register r
        (Obs.Drift.quantile_shift ~p:99.0 ~ratio:2.0 ~window:cfg.window_width
           ~ref_windows:2 "latency.p99");
      Obs.Drift.register r
        (Obs.Drift.cusum ~ref_count:(2 * cfg.window_width) ~k:0.5 ~h:15.0
           "latency.mean");
      Some r
    end
  in
  let next_frame = ref (match frame_every with Some k -> k | None -> max_int) in
  let remaining = ref cfg.requests in
  while !remaining > 0 do
    let n = min cfg.batch !remaining in
    remaining := !remaining - n;
    let reqs =
      List.init n (fun _ ->
          let m = pick () in
          { Engine.label = m.mix_label; src = m.mix_dsl })
    in
    let responses = Engine.batch svc reqs in
    List.iter
      (fun (r : Engine.response) ->
        Stdlib.incr tick;
        let degrade = if !tick >= cfg.degrade_at then cfg.degrade else 1.0 in
        let latency =
          model_latency cfg r *. degrade
          *. exp (cfg.jitter *. Util.Rng.gaussian rng)
        in
        let ok = not (Util.Rng.float rng 1.0 < cfg.error_rate) in
        if not ok then Stdlib.incr errors;
        (match drift with
        | Some reg when !tick >= cfg.window_width ->
          List.iter
            (fun m -> ignore (Obs.Drift.observe m ~tick:!tick latency))
            (Obs.Drift.monitors reg)
        | _ -> ());
        let name = Engine.served_name r.served in
        (match Hashtbl.find_opt served name with
        | Some c -> Stdlib.incr c
        | None -> Hashtbl.add served name (ref 1));
        Obs.Window.observe window ~now:!tick ~ok latency;
        if !tick + 1 >= !next_frame then begin
          (match on_frame with Some f -> f window ~now:!tick | None -> ());
          next_frame :=
            !next_frame + (match frame_every with Some k -> k | None -> max_int)
        end)
      responses
  done;
  let verdict = Obs.Slo.evaluate cfg.slo window ~now:!tick in
  {
    cfg;
    classes;
    total = cfg.requests;
    errors = !errors;
    served =
      Hashtbl.fold (fun name c acc -> (name, !c) :: acc) served []
      |> List.sort compare;
    ticks = !tick;
    window;
    verdict;
    metrics = Engine.metrics svc;
    drift;
    alarms =
      (match drift with None -> [] | Some r -> Obs.Drift.all_alarms r);
    wall_s = Unix.gettimeofday () -. t0;
  }

let render r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "replayed %d requests (%d classes, seed %d) in %.2fs (%.0f req/s)\n"
       r.total (List.length r.classes) r.cfg.seed r.wall_s
       (float_of_int r.total /. Float.max 1e-9 r.wall_s));
  List.iter
    (fun m ->
      Buffer.add_string b
        (Printf.sprintf "  class %-16s weight %d\n" m.mix_label m.weight))
    r.classes;
  List.iter
    (fun (name, n) -> Buffer.add_string b (Printf.sprintf "  served %-14s %d\n" name n))
    r.served;
  Buffer.add_string b
    (Printf.sprintf "  injected errors: %d (%.3f%%)\n" r.errors
       (100.0 *. float_of_int r.errors /. float_of_int r.total));
  Buffer.add_string b (Obs.Window.render r.window ~now:r.ticks);
  Buffer.add_string b (Obs.Slo.render r.verdict);
  (match r.drift with
  | Some reg -> Buffer.add_string b (Obs.Drift.render reg)
  | None -> ());
  Buffer.contents b

let report_json r =
  let snap = Obs.Window.snapshot r.window ~now:r.ticks in
  Obs.Json.Obj
    ([
      ("schema_version", Obs.Json.int 1);
      ("requests", Obs.Json.int r.total);
      ("seed", Obs.Json.int r.cfg.seed);
      ("batch", Obs.Json.int r.cfg.batch);
      ("errors", Obs.Json.int r.errors);
      ( "classes",
        Obs.Json.Arr
          (List.map
             (fun m ->
               Obs.Json.Obj
                 [
                   ("label", Obs.Json.Str m.mix_label);
                   ("weight", Obs.Json.int m.weight);
                 ])
             r.classes) );
      ( "served",
        Obs.Json.Obj (List.map (fun (name, n) -> (name, Obs.Json.int n)) r.served) );
      ( "window",
        Obs.Json.Obj
          [
            ("ticks", Obs.Json.int snap.ticks);
            ("requests", Obs.Json.int snap.requests);
            ("error_ratio", Obs.Json.Num snap.error_ratio);
            ("rate_per_tick", Obs.Json.Num snap.rate);
            ("p50_s", Obs.Json.Num (Obs.Window.quantile snap 50.0));
            ("p90_s", Obs.Json.Num (Obs.Window.quantile snap 90.0));
            ("p99_s", Obs.Json.Num (Obs.Window.quantile snap 99.0));
            ("sketch_buckets", Obs.Json.int (Obs.Sketch.bucket_count snap.sketch));
          ] );
      ("slo", Obs.Slo.to_json r.verdict);
    ]
    @
    match r.drift with
    | None -> []
    | Some reg -> [ ("drift", Obs.Drift.registry_json reg) ])
