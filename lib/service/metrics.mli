(** Service metrics: named counters and wall-clock timers with decade
    latency histograms, summarized through {!Util.Stats}. All operations
    are domain-safe. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit

(** Record one duration, in seconds, under a timer name. *)
val observe : t -> string -> float -> unit

(** Time a thunk and record its wall duration (also on exception). *)
val time : t -> string -> (unit -> 'a) -> 'a

(** Current value of a counter (0 if never incremented). *)
val counter : t -> string -> int

(** All counters, sorted by name. *)
val counters : t -> (string * int) list

(** All recorded durations of a timer, oldest first. *)
val observations : t -> string -> float list

type timer_summary = {
  count : int;
  total_s : float;
  mean_s : float;
  median_s : float;
  p90_s : float;  (** {!Util.Stats.percentile} 90 *)
  p99_s : float;  (** {!Util.Stats.percentile} 99 *)
  min_s : float;
  max_s : float;
  stddev_s : float;
}

val summaries : t -> (string * timer_summary) list

(** All timers with their recorded durations, oldest first, sorted by name. *)
val all_observations : t -> (string * float list) list

(** Prometheus text exposition of all counters and timers
    (see {!Obs.Export.prometheus}). *)
val prometheus : ?prefix:string -> t -> string

(** Decade buckets from 100us to 10s: [("<100us", n); ...; (">=10s", n)].
    Cache hits land in the microsecond buckets, cold tunes in the second
    buckets. *)
val histogram : t -> string -> (string * int) list

(** Human-readable report: counters, timer summaries, histograms. *)
val render : t -> string
