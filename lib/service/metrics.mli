(** Service metrics: named counters and wall-clock timers with decade
    latency histograms. All operations are domain-safe.

    Timers are streaming: every observation updates O(1) state (count,
    total, sum of squares, min/max, decade histogram) plus an {!Obs.Sketch}
    quantile sketch; only the most recent {!raw_sample_cap} raw samples are
    retained, so a timer's memory is bounded no matter how long the
    service runs. Summaries are exact (via {!Util.Stats}) up to the cap
    and switch to streaming moments + sketch quantiles beyond it. *)

type t

(** Raw samples retained per timer (1024). At or below this count,
    {!summaries} is exact over the full history; beyond it, quantiles come
    from the sketch (relative error {!sketch_alpha}) and the other fields
    from exact streaming state. *)
val raw_sample_cap : int

(** Relative accuracy of the per-timer quantile sketches (0.01). *)
val sketch_alpha : float

val create : unit -> t

val incr : ?by:int -> t -> string -> unit

(** Record one duration, in seconds, under a timer name. *)
val observe : t -> string -> float -> unit

(** Time a thunk and record its wall duration (also on exception). *)
val time : t -> string -> (unit -> 'a) -> 'a

(** [watch t name monitor] attaches a {!Obs.Drift} monitor to a timer:
    every subsequent {!observe} on [name] feeds the monitor under the
    metrics lock, with the timer's own observation count as the logical
    tick. Several monitors may watch one timer. *)
val watch : t -> string -> Obs.Drift.t -> unit

(** Watched timers with their monitors, sorted by timer name. *)
val watched : t -> (string * Obs.Drift.t list) list

(** All alarms across watched timers, sorted by tick then monitor name. *)
val watch_alarms : t -> Obs.Drift.alarm list

(** Current value of a counter (0 if never incremented). *)
val counter : t -> string -> int

(** All counters, sorted by name. *)
val counters : t -> (string * int) list

(** Retained raw durations of a timer, oldest first: the full history up
    to {!raw_sample_cap} observations, the most recent cap afterwards. *)
val observations : t -> string -> float list

type timer_summary = {
  count : int;  (** observations ever, not capped *)
  total_s : float;
  mean_s : float;
  median_s : float;
  p90_s : float;
  p99_s : float;
  min_s : float;
  max_s : float;
  stddev_s : float;  (** population, like {!Util.Stats.stddev} *)
}

val summaries : t -> (string * timer_summary) list

(** All timers with their retained durations, oldest first, sorted by
    name (see {!observations} for the cap semantics). *)
val all_observations : t -> (string * float list) list

(** Sketch-estimated quantile of a timer, [p] in [0, 100]; [nan] for an
    unknown timer. *)
val quantile : t -> string -> float -> float

(** Independent copies of the per-timer quantile sketches, sorted by
    name - the source for native-histogram exposition. *)
val sketches : t -> (string * Obs.Sketch.t) list

(** Prometheus text exposition: counters plus native histograms
    ([_bucket]/[le] lines) sourced from the timer sketches
    (see {!Obs.Export.prometheus_sketches}). *)
val prometheus : ?prefix:string -> t -> string

(** Decade buckets from 100us to 10s: [("<100us", n); ...; (">=10s", n)].
    Counts are streaming (never capped); cache hits land in the
    microsecond buckets, cold tunes in the second buckets. *)
val histogram : t -> string -> (string * int) list

(** Human-readable report: counters, timer summaries, histograms. *)
val render : t -> string
