(** Persistent tuning cache keyed by {!Canonical} keys: an in-memory LRU
    front over a directory of versioned {!Autotune.Store} artifacts. Any
    unreadable, version-mismatched or unparsable entry counts as corrupt
    and degrades to a miss (the caller re-tunes and overwrites); the cache
    never raises on bad data it finds on disk. Domain-safe. *)

exception Error of string

val entry_version : string

type entry = { key : string; saved : Autotune.Store.saved }

type stats = {
  mutable hits : int;  (** memory + disk *)
  mutable disk_loads : int;  (** hits served by promoting a disk entry *)
  mutable misses : int;
  mutable corrupt : int;  (** bad entries degraded to misses *)
  mutable stores : int;
  mutable evictions : int;  (** LRU front only; disk entries persist *)
}

type source = Memory | Disk

type t

(** [create ?dir ?capacity ()]: memory-only when [dir] is absent; the
    directory is created if missing. [capacity] bounds the LRU front
    (default 128), not the disk. *)
val create : ?dir:string -> ?capacity:int -> unit -> t

(** Snapshot of the counters. *)
val stats : t -> stats

(** Entries currently in the LRU front. *)
val size : t -> int

val find : t -> string -> (entry * source) option

(** Insert/overwrite, write-through to disk when persistent. Disk write
    failures are ignored (the memory front still serves). *)
val store : t -> key:string -> Autotune.Store.saved -> unit

val render_entry : entry -> string

(** Raises {!Error} on malformed text. *)
val parse_entry : string -> entry

type inventory = {
  entries : entry list;
  corrupt_files : (string * string) list;  (** file, reason *)
}

(** Offline scan of a cache directory (the [stats] subcommand). *)
val inventory : dir:string -> inventory
