(* Service metrics: named counters and wall-clock timers with
   latency-histogram rendering. Domain-safe behind one mutex (updates are
   tiny; contention is irrelevant next to a tuning evaluation).

   Timers are streaming: each observation updates O(1) state (count, total,
   sum of squares, min/max, a decade-bucket histogram) plus an Obs.Sketch
   log-bucket quantile sketch, and is retained raw only up to
   [raw_sample_cap] samples (a ring of the most recent). Summaries are
   therefore exact - computed from the raw samples through Util.Stats -
   while a timer has seen at most [raw_sample_cap] observations, and
   switch to the streaming state plus sketch quantiles (relative error
   [sketch_alpha]) beyond it. Memory per timer is O(raw_sample_cap +
   sketch buckets), never O(observations). *)

let raw_sample_cap = 1024
let sketch_alpha = 0.01

(* Fixed decade buckets: service latencies span microseconds (cache hits)
   to tens of seconds (cold tunes). *)
let bucket_bounds = [ 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 ]

type timer = {
  ring : float array;  (* the raw_sample_cap most recent samples *)
  mutable n : int;  (* total observations ever *)
  mutable total : float;
  mutable total_sq : float;
  mutable vmin : float;
  mutable vmax : float;
  sketch : Obs.Sketch.t;
  decades : int array;  (* one streaming counter per decade bucket *)
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  timers : (string, timer) Hashtbl.t;
  watchers : (string, Obs.Drift.t list ref) Hashtbl.t;
      (* drift monitors per timer name, fed under the same lock *)
  lock : Mutex.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    timers = Hashtbl.create 16;
    watchers = Hashtbl.create 4;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let incr ?(by = 1) t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add t.counters name (ref by))

let new_timer () =
  {
    ring = Array.make raw_sample_cap 0.0;
    n = 0;
    total = 0.0;
    total_sq = 0.0;
    vmin = infinity;
    vmax = neg_infinity;
    sketch = Obs.Sketch.create ~alpha:sketch_alpha ();
    decades = Array.make (List.length bucket_bounds + 1) 0;
  }

(* Decade bucket of one sample: [lo, hi) semantics with an unbounded last
   bucket, matching the rendered histogram labels. *)
let decade_index seconds =
  let rec go i = function
    | hi :: rest -> if seconds < hi then i else go (i + 1) rest
    | [] -> i
  in
  go 0 bucket_bounds

let observe t name seconds =
  locked t (fun () ->
      let tm =
        match Hashtbl.find_opt t.timers name with
        | Some tm -> tm
        | None ->
          let tm = new_timer () in
          Hashtbl.add t.timers name tm;
          tm
      in
      tm.ring.(tm.n mod raw_sample_cap) <- seconds;
      tm.n <- tm.n + 1;
      tm.total <- tm.total +. seconds;
      tm.total_sq <- tm.total_sq +. (seconds *. seconds);
      if seconds < tm.vmin then tm.vmin <- seconds;
      if seconds > tm.vmax then tm.vmax <- seconds;
      Obs.Sketch.add tm.sketch seconds;
      let d = tm.decades in
      d.(decade_index seconds) <- d.(decade_index seconds) + 1;
      (* the timer's own observation count is the watch tick, so alarms
         land at a deterministic per-timer logical time *)
      match Hashtbl.find_opt t.watchers name with
      | None -> ()
      | Some ms ->
        List.iter (fun m -> ignore (Obs.Drift.observe m ~tick:tm.n seconds)) !ms)

let watch t name monitor =
  locked t (fun () ->
      match Hashtbl.find_opt t.watchers name with
      | Some ms -> ms := !ms @ [ monitor ]
      | None -> Hashtbl.add t.watchers name (ref [ monitor ]))

let watched t =
  locked t (fun () ->
      Hashtbl.fold (fun name ms acc -> (name, !ms) :: acc) t.watchers []
      |> List.sort compare)

let watch_alarms t =
  watched t
  |> List.concat_map (fun (_, ms) -> List.concat_map Obs.Drift.alarms ms)
  |> List.stable_sort (fun (a : Obs.Drift.alarm) (b : Obs.Drift.alarm) ->
         match compare a.at_tick b.at_tick with
         | 0 -> compare a.monitor b.monitor
         | c -> c)

let time t name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe t name (Unix.gettimeofday () -. t0)) f

let counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

let counters t =
  locked t (fun () ->
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
      |> List.sort compare)

(* Retained raw samples, oldest first: everything while n <= cap, the most
   recent cap afterwards. *)
let retained tm =
  if tm.n <= raw_sample_cap then Array.to_list (Array.sub tm.ring 0 tm.n)
  else begin
    let head = tm.n mod raw_sample_cap in
    Array.to_list (Array.sub tm.ring head (raw_sample_cap - head))
    @ Array.to_list (Array.sub tm.ring 0 head)
  end

let observations t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.timers name with Some tm -> retained tm | None -> [])

type timer_summary = {
  count : int;
  total_s : float;
  mean_s : float;
  median_s : float;
  p90_s : float;
  p99_s : float;
  min_s : float;
  max_s : float;
  stddev_s : float;
}

let summarize_timer tm =
  if tm.n = 0 then
    { count = 0; total_s = 0.0; mean_s = nan; median_s = nan; p90_s = nan;
      p99_s = nan; min_s = nan; max_s = nan; stddev_s = 0.0 }
  else if tm.n <= raw_sample_cap then
    (* exact small-n path: identical to summarizing the full history *)
    let samples = retained tm in
    {
      count = tm.n;
      total_s = tm.total;
      mean_s = Util.Stats.mean samples;
      median_s = Util.Stats.median samples;
      p90_s = Util.Stats.percentile 90.0 samples;
      p99_s = Util.Stats.percentile 99.0 samples;
      min_s = tm.vmin;
      max_s = tm.vmax;
      stddev_s = Util.Stats.stddev samples;
    }
  else
    (* streaming path: O(1) moments plus sketch quantiles *)
    let n = float_of_int tm.n in
    let mean = tm.total /. n in
    {
      count = tm.n;
      total_s = tm.total;
      mean_s = mean;
      median_s = Obs.Sketch.quantile tm.sketch 50.0;
      p90_s = Obs.Sketch.quantile tm.sketch 90.0;
      p99_s = Obs.Sketch.quantile tm.sketch 99.0;
      min_s = tm.vmin;
      max_s = tm.vmax;
      stddev_s = sqrt (Float.max 0.0 ((tm.total_sq /. n) -. (mean *. mean)));
    }

let summaries t =
  locked t (fun () ->
      Hashtbl.fold (fun name tm acc -> (name, summarize_timer tm) :: acc) t.timers []
      |> List.sort compare)

let all_observations t =
  locked t (fun () ->
      Hashtbl.fold (fun name tm acc -> (name, retained tm) :: acc) t.timers []
      |> List.sort compare)

let quantile t name p =
  locked t (fun () ->
      match Hashtbl.find_opt t.timers name with
      | Some tm -> Obs.Sketch.quantile tm.sketch p
      | None -> nan)

let sketches t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name tm acc -> (name, Obs.Sketch.copy tm.sketch) :: acc)
        t.timers []
      |> List.sort compare)

(* Prometheus text exposition: counters plus native histograms sourced
   from the sketches (O(buckets) per timer, independent of traffic). *)
let prometheus ?prefix t =
  let cs = counters t and sk = sketches t in
  Obs.Export.prometheus_sketches ?prefix ~counters:cs ~sketches:sk ()

let bucket_label lo hi =
  let s v =
    if v < 1e-3 then Printf.sprintf "%.0fus" (v *. 1e6)
    else if v < 1.0 then Printf.sprintf "%.0fms" (v *. 1e3)
    else Printf.sprintf "%.0fs" v
  in
  match (lo, hi) with
  | None, Some h -> "<" ^ s h
  | Some l, Some h -> s l ^ "-" ^ s h
  | Some l, None -> ">=" ^ s l
  | None, None -> "all"

let bucket_labels =
  let edges = (None :: List.map Option.some bucket_bounds) @ [ None ] in
  let rec go = function
    | lo :: (hi :: _ as rest) -> bucket_label lo hi :: go rest
    | _ -> []
  in
  go edges

let histogram t name =
  let counts =
    locked t (fun () ->
        match Hashtbl.find_opt t.timers name with
        | Some tm -> Array.to_list tm.decades
        | None -> List.map (fun _ -> 0) bucket_labels)
  in
  List.combine bucket_labels counts

let render t =
  let b = Buffer.create 512 in
  let cs = counters t in
  if cs <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter (fun (name, v) -> Buffer.add_string b (Printf.sprintf "  %-28s %d\n" name v)) cs
  end;
  let ts = summaries t in
  if ts <> [] then begin
    Buffer.add_string b "timers:\n";
    List.iter
      (fun (name, s) ->
        Buffer.add_string b
          (Printf.sprintf
             "  %-28s n=%-4d total %8.3fs  mean %8.4fs  median %8.4fs  p90 %8.4fs  p99 %8.4fs  max %8.4fs\n"
             name s.count s.total_s s.mean_s s.median_s s.p90_s s.p99_s s.max_s);
        let hist =
          histogram t name
          |> List.filter (fun (_, n) -> n > 0)
          |> List.map (fun (l, n) -> Printf.sprintf "%s:%d" l n)
        in
        if hist <> [] then
          Buffer.add_string b
            (Printf.sprintf "  %-28s [%s]\n" "" (String.concat "  " hist)))
      ts
  end;
  Buffer.contents b
