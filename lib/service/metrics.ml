(* Service metrics: named counters and wall-clock timers with
   latency-histogram rendering. Domain-safe behind one mutex (updates are
   tiny; contention is irrelevant next to a tuning evaluation), summarized
   through Util.Stats so the service reports the same statistics the rest
   of the system uses. *)

type t = {
  counters : (string, int ref) Hashtbl.t;
  timers : (string, float list ref) Hashtbl.t;  (* seconds, newest first *)
  lock : Mutex.t;
}

let create () = { counters = Hashtbl.create 16; timers = Hashtbl.create 16; lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let incr ?(by = 1) t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add t.counters name (ref by))

let observe t name seconds =
  locked t (fun () ->
      match Hashtbl.find_opt t.timers name with
      | Some r -> r := seconds :: !r
      | None -> Hashtbl.add t.timers name (ref [ seconds ]))

let time t name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe t name (Unix.gettimeofday () -. t0)) f

let counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

let counters t =
  locked t (fun () ->
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
      |> List.sort compare)

let observations t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.timers name with Some r -> List.rev !r | None -> [])

type timer_summary = {
  count : int;
  total_s : float;
  mean_s : float;
  median_s : float;
  p90_s : float;
  p99_s : float;
  min_s : float;
  max_s : float;
  stddev_s : float;
}

let summarize_timer samples =
  {
    count = List.length samples;
    total_s = List.fold_left ( +. ) 0.0 samples;
    mean_s = Util.Stats.mean samples;
    median_s = Util.Stats.median samples;
    p90_s = Util.Stats.percentile 90.0 samples;
    p99_s = Util.Stats.percentile 99.0 samples;
    min_s = Util.Stats.min_list samples;
    max_s = Util.Stats.max_list samples;
    stddev_s = Util.Stats.stddev samples;
  }

let summaries t =
  locked t (fun () ->
      Hashtbl.fold (fun name r acc -> (name, summarize_timer (List.rev !r)) :: acc) t.timers []
      |> List.sort compare)

let all_observations t =
  locked t (fun () ->
      Hashtbl.fold (fun name r acc -> (name, List.rev !r) :: acc) t.timers []
      |> List.sort compare)

(* Prometheus text exposition of everything in the registry. *)
let prometheus ?prefix t =
  Obs.Export.prometheus ?prefix ~counters:(counters t) ~timers:(all_observations t) ()

(* Fixed decade buckets: service latencies span microseconds (cache hits)
   to tens of seconds (cold tunes). *)
let bucket_bounds = [ 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 ]

let bucket_label lo hi =
  let s v =
    if v < 1e-3 then Printf.sprintf "%.0fus" (v *. 1e6)
    else if v < 1.0 then Printf.sprintf "%.0fms" (v *. 1e3)
    else Printf.sprintf "%.0fs" v
  in
  match (lo, hi) with
  | None, Some h -> "<" ^ s h
  | Some l, Some h -> s l ^ "-" ^ s h
  | Some l, None -> ">=" ^ s l
  | None, None -> "all"

let histogram t name =
  let samples = observations t name in
  let edges =
    (None :: List.map Option.some bucket_bounds)
    @ [ Some infinity ]
  in
  let rec buckets = function
    | lo :: (hi :: _ as rest) ->
      let in_bucket x =
        (match lo with None -> true | Some l -> x >= l)
        && match hi with Some h -> x < h | None -> true
      in
      let hi_label = match hi with Some h when h = infinity -> None | h -> h in
      ( bucket_label lo hi_label,
        List.length (List.filter in_bucket samples) )
      :: buckets rest
    | _ -> []
  in
  buckets edges

let render t =
  let b = Buffer.create 512 in
  let cs = counters t in
  if cs <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter (fun (name, v) -> Buffer.add_string b (Printf.sprintf "  %-28s %d\n" name v)) cs
  end;
  let ts = summaries t in
  if ts <> [] then begin
    Buffer.add_string b "timers:\n";
    List.iter
      (fun (name, s) ->
        Buffer.add_string b
          (Printf.sprintf
             "  %-28s n=%-4d total %8.3fs  mean %8.4fs  median %8.4fs  p90 %8.4fs  p99 %8.4fs  max %8.4fs\n"
             name s.count s.total_s s.mean_s s.median_s s.p90_s s.p99_s s.max_s);
        let hist =
          histogram t name
          |> List.filter (fun (_, n) -> n > 0)
          |> List.map (fun (l, n) -> Printf.sprintf "%s:%d" l n)
        in
        if hist <> [] then
          Buffer.add_string b
            (Printf.sprintf "  %-28s [%s]\n" "" (String.concat "  " hist)))
      ts
  end;
  Buffer.contents b
