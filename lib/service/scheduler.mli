(** Multi-domain work scheduler: an order-preserving parallel map over
    OCaml 5 domains with dynamic load balancing. For a pure function the
    result is identical to [List.map] for every domain count - workers
    race only for which item they compute, never for where its result
    lands. The first exception in item order is re-raised. *)

type t

(** [create ~domains ()] clamps to [1, 128] and - because domains beyond
    the hardware's parallelism are actively slower, not just useless -
    further to [Domain.recommended_domain_count ()] unless
    [clamp_to_cores:false] (tests use that to exercise true multi-domain
    execution on any machine). The default is the recommended count.
    One effective domain degrades to a plain sequential map with no
    domain spawned. *)
val create : ?clamp_to_cores:bool -> ?domains:int -> unit -> t

(** The domain count asked for, before clamping. *)
val requested : t -> int

(** The effective worker count. *)
val domains : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** [run_thunks t fs] forces each thunk, in parallel: the executor shape
    {!Autotune.Tuner.tune}'s [batch_map] expects. *)
val run_thunks : t -> (unit -> 'a) list -> 'a list
