(* The tuning service: a long-lived front end over the one-shot
   Barracuda pipeline.

   A request (label + DSL text) is canonicalized (Canonical), looked up in
   the persistent cache (Tuning_cache), and only tuned when genuinely new.
   Batches are deduplicated by canonical key first - equivalent requests
   share one tune - then the unique cold keys are scheduled over OCaml 5
   domains (Scheduler): across requests when a batch has several cold
   keys, inside SURF's per-iteration evaluation batch (the paper's "up to
   ten evaluations concurrently") when it has one. Every stage reports to
   a Metrics registry.

   Determinism: a response depends only on (canonical key, service
   config). Cold tunes seed their own RNG from the config seed, pure
   evaluation batches are merged back in input order, and request-level
   parallelism only changes which domain runs a tune, so batch
   composition, domain count and cache state never change a tuned
   configuration. *)

type request = { label : string; src : string }

type served = Tuned | Memory_hit | Disk_hit | Deduplicated

let served_name = function
  | Tuned -> "tuned"
  | Memory_hit -> "hit:memory"
  | Disk_hit -> "hit:disk"
  | Deduplicated -> "deduplicated"

type response = {
  label : string;
  key : string;
  served : served;
  result : Autotune.Tuner.result;
  renaming : Canonical.renaming;
  wall_s : float;
}

type config = {
  arch : Gpusim.Arch.t;
  domains : int;
  clamp_domains : bool;  (* cap at the hardware's recommended count *)
  max_evals : int;
  batch_size : int;
  pool_per_variant : int;
  reps : int;
  seed : int;
  cache_dir : string option;
  cache_capacity : int;
}

let default_config =
  {
    arch = Gpusim.Arch.gtx980;
    domains = 1;
    clamp_domains = true;
    max_evals = Surf.Search.default_config.max_evals;
    batch_size = Surf.Search.default_config.batch_size;
    pool_per_variant = 600;
    reps = 100;
    seed = 42;
    cache_dir = None;
    cache_capacity = 128;
  }

type t = {
  cfg : config;
  cache : Tuning_cache.t;
  sched : Scheduler.t;
  metrics : Metrics.t;
  drift : Obs.Drift.registry;
  mutable drift_tick : int;  (* responses served; the monitors' clock *)
}

(* Self-watching monitors. Both streams have a known absolute scale, so
   Page-Hinkley applies directly: the hit-rate stream is 0/1 per response
   (a cache in steady state serves ~1), the mispredict stream is
   |predicted/measured - 1| per model-guided evaluation of a cold tune
   (a healthy surrogate sits well under 1). *)
let make_drift () =
  let r = Obs.Drift.create_registry () in
  Obs.Drift.register r
    (Obs.Drift.page_hinkley ~delta:0.2 ~lambda:3.0 ~min_count:20
       "cache.hit_rate");
  Obs.Drift.register r
    (Obs.Drift.page_hinkley ~delta:0.1 ~lambda:2.0 ~min_count:10
       "surrogate.mispredict");
  r

let create ?(config = default_config) () =
  {
    cfg = config;
    cache = Tuning_cache.create ?dir:config.cache_dir ~capacity:config.cache_capacity ();
    sched =
      Scheduler.create ~clamp_to_cores:config.clamp_domains ~domains:config.domains ();
    metrics = Metrics.create ();
    drift = make_drift ();
    drift_tick = 0;
  }

let metrics t = t.metrics
let drift t = t.drift
let cache_stats t = Tuning_cache.stats t.cache
let effective_domains t = Scheduler.domains t.sched

(* One cold tune of a canonical program. [inner_parallel] plugs the domain
   scheduler into SURF's evaluation batches; it is off when the tune itself
   already runs inside a worker domain (no nested parallelism). *)
let tune_canonical t ~inner_parallel (canon : Canonical.t) =
  let cfg =
    {
      Surf.Search.default_config with
      max_evals = t.cfg.max_evals;
      batch_size = t.cfg.batch_size;
    }
  in
  let batch_map =
    if inner_parallel && Scheduler.domains t.sched > 1 then
      Some (Scheduler.run_thunks t.sched)
    else None
  in
  (* journal_key/journal_seed annotate the flight-recorder entry when
     journaling is on, so every cold tune the service performs - single
     request, deduplicated batch, or scheduler-parallel - is journaled
     under its canonical key *)
  let r =
    Autotune.Tuner.tune
      ~strategy:(Autotune.Tuner.Surf_search cfg)
      ~reps:t.cfg.reps ~pool_per_variant:t.cfg.pool_per_variant ?batch_map
      ~journal_key:canon.Canonical.key ~journal_seed:t.cfg.seed
      ~rng:(Util.Rng.create t.cfg.seed) ~arch:t.cfg.arch (Canonical.benchmark canon)
  in
  (* static-gate counters: how many candidate points the verifier screened
     before measurement, and how many it kept out of the pool *)
  Metrics.incr ~by:r.gate.checked t.metrics "check.points";
  Metrics.incr ~by:r.gate.rejected t.metrics "check.rejected";
  r

(* Rebuild a result from a cached artifact: parse the canonical program and
   re-measure only the winning candidate. *)
let restore_hit t (canon : Canonical.t) (entry : Tuning_cache.entry) =
  Autotune.Store.restore_result ~reps:t.cfg.reps ~arch:t.cfg.arch
    (Canonical.benchmark canon) entry.saved

(* ------------------------------------------------------------------ *)

(* One wall-clock measurement per phase, recorded once and fed to both the
   trace sink (a span, when tracing is on) and the Metrics timer - the
   replacement for the hand-rolled gettimeofday pairs this path used to
   duplicate per call site. *)
let phase t name f =
  let r, wall = Obs.Trace.timed ~cat:"service" name (fun _ -> f ()) in
  Metrics.observe t.metrics name wall;
  r

(* Per-request serve-path timing: the span carries the canonical key, the
   returned wall time is what the response reports and what the
   "request.wall" timer observes (once, in the response loop). *)
let serve_timed name ~key f = Obs.Trace.timed ~cat:"service" ~attrs:(fun () -> [ ("key", key) ]) name (fun _ -> f ())

(* The batch protocol: canonicalize -> dedup -> serve hits -> tune unique
   cold keys (in parallel when there are several) -> store -> respond in
   request order. *)
let batch t (requests : request list) =
  Obs.Trace.with_span ~cat:"service"
    ~attrs:(fun () -> [ ("requests", string_of_int (List.length requests)) ])
    "service.batch"
  @@ fun batch_span ->
  Metrics.incr ~by:(List.length requests) t.metrics "requests";
  let canons =
    phase t "phase.canonicalize" (fun () ->
        List.map (fun r -> (r, Canonical.of_dsl ~arch:t.cfg.arch r.src)) requests)
  in
  (* one representative per canonical key, in first-appearance order *)
  let unique_keys =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun ((_, canon) : request * Canonical.t) ->
        if Hashtbl.mem seen canon.Canonical.key then None
        else begin
          Hashtbl.add seen canon.key ();
          Some canon
        end)
      canons
  in
  (* probe the cache for every unique key *)
  let probed =
    phase t "phase.lookup" (fun () ->
        List.map
          (fun (canon : Canonical.t) -> (canon, Tuning_cache.find t.cache canon.key))
          unique_keys)
  in
  let hits = List.filter_map (fun (c, e) -> Option.map (fun e -> (c, e)) e) probed in
  let cold = List.filter_map (fun (c, e) -> if e = None then Some c else None) probed in
  Metrics.incr ~by:(List.length cold) t.metrics "tune.cold";
  Obs.Trace.add_attrs batch_span
    [
      ("unique", string_of_int (List.length unique_keys));
      ("cold", string_of_int (List.length cold));
    ];
  (* serve hits: restore is ~one measurement, done sequentially *)
  let hit_results =
    List.map
      (fun ((canon : Canonical.t), ((entry : Tuning_cache.entry), source)) ->
        let result, wall =
          serve_timed "phase.restore" ~key:canon.key (fun () ->
              restore_hit t canon entry)
        in
        Metrics.observe t.metrics "phase.restore" wall;
        let served = match source with Tuning_cache.Memory -> Memory_hit | Disk -> Disk_hit in
        (canon.key, (served, result, wall)))
      hits
  in
  (* tune the cold keys: across domains when several, inside SURF when one *)
  let cold_results =
    phase t "phase.tune" (fun () ->
        match cold with
        | [] -> []
        | [ canon ] ->
          let r, wall =
            serve_timed "service.tune" ~key:canon.key (fun () ->
                tune_canonical t ~inner_parallel:true canon)
          in
          [ (canon.key, (Tuned, r, wall)) ]
        | _ ->
          Scheduler.map t.sched
            (fun (canon : Canonical.t) ->
              let r, wall =
                serve_timed "service.tune" ~key:canon.key (fun () ->
                    tune_canonical t ~inner_parallel:false canon)
              in
              (canon.key, (Tuned, r, wall)))
            cold)
  in
  (* store fresh artifacts (main domain: the cache mutex is cheap, but
     write-through happens once per key, in batch order). A winner that
     FAILED translation validation is served (the caller sees the verdict
     on the result) but never cached: a poisoned artifact would replay the
     miscompiled kernel on every future hit. *)
  phase t "phase.store" (fun () ->
      List.iter
        (fun (key, ((_, result, _) : served * Autotune.Tuner.result * float)) ->
          match result.Autotune.Tuner.semantic with
          | Some v when not v.Check.Semantic.equivalent ->
            Metrics.incr t.metrics "check.semantic_failed"
          | _ -> Tuning_cache.store t.cache ~key (Autotune.Store.of_result result))
        cold_results);
  let by_key = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace by_key k v) (hit_results @ cold_results);
  (* respond in request order; later requests of a group are Deduplicated *)
  let first_seen = Hashtbl.create 16 in
  List.map
    (fun ((req, canon) : request * Canonical.t) ->
      let served, result, wall_s = Hashtbl.find by_key canon.key in
      let served, wall_s =
        if Hashtbl.mem first_seen canon.key then (Deduplicated, 0.0)
        else begin
          Hashtbl.add first_seen canon.key ();
          (served, wall_s)
        end
      in
      (match served with
      | Deduplicated -> Metrics.incr t.metrics "serve.deduplicated"
      | Tuned -> Metrics.incr t.metrics "serve.tuned"
      | Memory_hit -> Metrics.incr t.metrics "serve.hit.memory"
      | Disk_hit -> Metrics.incr t.metrics "serve.hit.disk");
      Metrics.observe t.metrics "request.wall" wall_s;
      (* drift monitors, fed on the caller's domain only (the registry is
         not domain-safe): cache efficacy as a 0/1 hit stream, surrogate
         health as the cold tune's own prediction track record. Feeding
         draws no RNG and never feeds back into tuning. *)
      t.drift_tick <- t.drift_tick + 1;
      let tick = t.drift_tick in
      ignore
        (Obs.Drift.feed t.drift "cache.hit_rate" ~tick
           (match served with Tuned -> 0.0 | _ -> 1.0));
      (match (served, result.Autotune.Tuner.explain) with
      | Tuned, Some ex ->
        List.iter
          (fun (_, predicted, measured) ->
            if measured > 0.0 then
              ignore
                (Obs.Drift.feed t.drift "surrogate.mispredict" ~tick
                   (Float.abs ((predicted /. measured) -. 1.0))))
          ex.Surf.Search.residuals
      | _ -> ());
      {
        label = req.label;
        key = canon.key;
        served;
        result;
        renaming = canon.renaming;
        wall_s;
      })
    canons

let tune t (req : request) =
  match batch t [ req ] with
  | [ r ] -> r
  | rs ->
    invalid_arg
      (Printf.sprintf
         "Engine.tune: batch answered a single request with %d responses; the \
          batch protocol must respond to each request exactly once, in order"
         (List.length rs))

let tune_dsl ?(label = "tc") t src = tune t { label; src }

(* Prometheus text exposition of the service metrics plus cache gauges. *)
let prometheus_report t =
  let s = cache_stats t in
  Metrics.prometheus t.metrics
  ^ Obs.Export.prometheus ~prefix:"barracuda_cache"
      ~counters:
        [
          ("hits", s.hits); ("disk_loads", s.disk_loads); ("misses", s.misses);
          ("corrupt", s.corrupt); ("stores", s.stores); ("evictions", s.evictions);
          ("front", Tuning_cache.size t.cache);
        ]
      ~timers:[] ()
  ^ Obs.Export.prometheus ~prefix:"barracuda_trace"
      ~counters:[ ("dropped_spans", Obs.Trace.dropped ()) ]
      ~timers:[] ()

(* Human-readable SURF convergence report for one response (empty history
   for cache hits: no search ran). *)
let convergence_report (r : response) =
  Obs.Search_log.render ~label:(r.label ^ " [" ^ served_name r.served ^ "]")
    r.result.Autotune.Tuner.iterations

(* Render the service-side view: metrics plus cache counters plus the
   self-watching drift monitors. *)
let stats_report t =
  let s = cache_stats t in
  let drops =
    match Obs.Trace.dropped () with
    | 0 -> ""
    | n ->
      Printf.sprintf
        "trace:\n  dropped %d span%s at the %d-span buffer cap\n" n
        (if n = 1 then "" else "s")
        (Obs.Trace.capacity ())
  in
  Printf.sprintf
    "%scache:\n  hits %d (disk %d)  misses %d  corrupt %d  stores %d  evictions %d  front %d\n%s%s"
    (Metrics.render t.metrics) s.hits s.disk_loads s.misses s.corrupt s.stores s.evictions
    (Tuning_cache.size t.cache) drops (Obs.Drift.render t.drift)
