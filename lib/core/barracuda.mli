(** Barracuda: the public facade over the full pipeline of the paper
    (Figure 1) - OCTOPI tensor DSL -> strength reduction -> TCR -> GPU
    decision algorithm -> SURF autotuning -> CUDA emission - together with
    the simulated devices it is evaluated on.

    Typical use:

    {[
      let result =
        Barracuda.tune ~arch:Barracuda.Arch.gtx980
          "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])"
      in
      Format.printf "%a@." Barracuda.pp_summary (Barracuda.summarize result);
      print_string (Barracuda.cuda_of result)
    ]}

    Each pipeline stage is re-exported below under its paper name; the
    [module type of struct include ... end] idiom preserves type equalities
    with the underlying libraries, so facade values interoperate with
    direct library calls (e.g. [Benchsuite]). *)

type tuned = Autotune.Tuner.result

(** {1 One-call pipeline entry points} *)

(** Parse a DSL program (Figure 2(a) syntax) into a tunable benchmark. *)
val parse : ?label:string -> string -> Autotune.Tuner.benchmark

(** The OCTOPI strength-reduction variants of each statement. *)
val variants : string -> Octopi.Variants.t list

(** Run the full pipeline: OCTOPI variants, decision-algorithm search
    space, SURF search with [max_evals] evaluations (default 100, the
    paper's budget) on the simulated [arch] (default GTX 980).
    Deterministic for a fixed [seed]. *)
val tune :
  ?label:string -> ?seed:int -> ?max_evals:int -> ?arch:Gpusim.Arch.t -> string -> tuned

(** [tune] from a NumPy-style einsum spec such as ["lk,mj,ni,lmn->ijk"]. *)
val tune_einsum :
  ?label:string ->
  ?seed:int ->
  ?max_evals:int ->
  ?arch:Gpusim.Arch.t ->
  ?output:string ->
  ?names:string list ->
  ?extents:(string * int) list ->
  string ->
  tuned

(** The tuned CUDA translation unit (kernels in the style of Figure 2(d)
    plus a host wrapper). *)
val cuda_of : tuned -> string

(** Sequential C / OpenMP / OpenACC renderings of the best variant. *)
val c_of : ?mode:Codegen.C_emit.mode -> tuned -> string

(** Execute the tuned program on named input tensors; returns the output
    tensors. Bit-exact what the emitted CUDA computes. *)
val run : tuned -> (string * Tensor.Dense.t) list -> (string * Tensor.Dense.t) list

(** Serialize the winning configuration (variant ids + Figure 2(c) recipe)
    to a small text artifact. *)
val save_tuning : tuned -> string

(** Reload an artifact produced by {!save_tuning}: returns the merged TCR
    program and per-kernel points, ready for {!Cuda.emit_program}. *)
val load_tuning :
  Autotune.Tuner.benchmark -> string -> Tcr.Ir.t * Tcr.Space.point list

(** Standalone CUDA driver (main + timing loop + CPU reference check). *)
val driver_of : ?reps:int -> tuned -> string

(** {1 Tuning service}

    A long-lived front end over the pipeline: requests equivalent up to
    index/tensor renaming share one cached tuning ({!Canonical} keys over
    a persistent {!Tuning_cache}), and batches of cold requests spread
    over OCaml 5 domains with a bit-identical-to-sequential guarantee.
    See {!Service} for the full API. *)

val service :
  ?domains:int ->
  ?cache_dir:string ->
  ?max_evals:int ->
  ?seed:int ->
  ?arch:Gpusim.Arch.t ->
  unit ->
  Service.Engine.t

val tune_service :
  Service.Engine.t -> ?label:string -> string -> Service.Engine.response

(** The canonical cache key a program would be served under on [arch]. *)
val cache_key : ?arch:Gpusim.Arch.t -> string -> string

(** {1 Summaries} *)

type summary = {
  gflops : float;
  time_per_eval_s : float;
  speedup_vs_sequential : float;
  search_seconds : float;
  variant_count : int;
  space_size : int;
}

val summarize : tuned -> summary
val pp_summary : Format.formatter -> summary -> unit

(** {1 Pipeline stages under their paper names} *)

module Shape : module type of struct include Tensor.Shape end
module Einsum : module type of struct include Tensor.Einsum end

(** Dense row-major tensors ({!Tensor.Dense}). *)
module Tensor : module type of struct include Tensor.Dense end

module Dsl : module type of struct include Octopi.Parse end
module Contraction : module type of struct include Octopi.Contraction end

(** Algorithm 1 ({!Octopi.Plan}). *)
module Strength_reduction : module type of struct include Octopi.Plan end

module Variant_sets : module type of struct include Octopi.Variants end
module Fusion : module type of struct include Octopi.Fusion end
module Decision : module type of struct include Tcr.Decision end
module Space : module type of struct include Tcr.Space end
module Tcr_orio : module type of struct include Tcr.Orio end
module Tcr_prune : module type of struct include Tcr.Prune end
module Tcr_cse : module type of struct include Tcr.Cse end

(** The Orio/CHiLL annotation layer of Figure 2(c) ({!Tcr.Orio}). *)
module Orio : module type of struct include Tcr.Orio end

module Prune : module type of struct include Tcr.Prune end
module Cse : module type of struct include Tcr.Cse end

(** The intermediate representation of Figure 2(b) ({!Tcr.Ir}). *)
module Tcr : module type of struct include Tcr.Ir end

module Kernel : module type of struct include Codegen.Kernel end
module Cuda : module type of struct include Codegen.Cuda end
module C : module type of struct include Codegen.C_emit end
module Exec : module type of struct include Codegen.Exec end
module Arch : module type of struct include Gpusim.Arch end
module Gpu : module type of struct include Gpusim.Gpu end
module Cpu : module type of struct include Cpusim.Haswell end
module Openacc : module type of struct include Cpusim.Openacc end
module Forest : module type of struct include Surf.Forest end

(** Algorithm 2 ({!Surf.Search}). *)
module Surf : module type of struct include Surf.Search end

module Tuner : module type of struct include Autotune.Tuner end
module Store : module type of struct include Autotune.Store end
module Ttgt : module type of struct include Autotune.Ttgt end
module Gemm : module type of struct include Gpusim.Gemm end
module Cache : module type of struct include Gpusim.Cache end
module Simtrace : module type of struct include Gpusim.Simtrace end

module Driver : module type of struct include Codegen.Driver end
module Einsum_notation : module type of struct include Octopi.Einsum_notation end
module Rng : module type of struct include Util.Rng end

(** Canonical request form: the service cache identity. *)
module Canonical : module type of struct include Service.Canonical end

(** Persistent tuning cache (LRU front + versioned disk artifacts). *)
module Tuning_cache : module type of struct include Service.Tuning_cache end

(** Service counters, timers and latency histograms. *)
module Metrics : module type of struct include Service.Metrics end

(** Order-preserving multi-domain parallel map. *)
module Scheduler : module type of struct include Service.Scheduler end

(** The tuning service engine. *)
module Service : module type of struct include Service.Engine end
