(* Barracuda: public facade over the full pipeline of the paper
   (Figure 1) - OCTOPI tensor DSL -> strength reduction -> TCR -> GPU
   decision algorithm -> SURF autotuning -> CUDA emission - together with
   the simulated devices it is evaluated on.

   Typical use:

   {[
     let result =
       Barracuda.tune ~arch:Barracuda.Arch.gtx980
         "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])"
     in
     print_string (Barracuda.cuda_of result)
   ]} *)

type tuned = Autotune.Tuner.result

(* ------------------------------------------------------------------ *)
(* One-call pipeline entry points *)

(* Parse a DSL program into a tunable benchmark. *)
let parse ?(label = "tc") src = Autotune.Tuner.benchmark_of_dsl ~label src

(* Enumerate the OCTOPI strength-reduction variants of each statement. *)
let variants src =
  let program = Octopi.Parse.program src in
  List.map Octopi.Variants.of_contraction (Octopi.Contraction.of_program program)

(* Tune a DSL program for an architecture; returns the full report. *)
let tune ?(label = "tc") ?(seed = 42) ?(max_evals = 100) ?(arch = Gpusim.Arch.gtx980) src =
  let b = parse ~label src in
  let cfg = { Surf.Search.default_config with max_evals } in
  Autotune.Tuner.tune
    ~strategy:(Autotune.Tuner.Surf_search cfg)
    ~rng:(Util.Rng.create seed) ~arch b

(* Tuned CUDA source of a result. *)
let cuda_of (result : tuned) = Autotune.Tuner.emit_cuda result

(* Sequential C / OpenACC renderings of the best variant. *)
let c_of ?(mode = Codegen.C_emit.Sequential) (result : tuned) =
  Codegen.C_emit.emit_program ~mode result.best.ir

(* Execute the tuned program on named inputs; returns the outputs. *)
let run (result : tuned) inputs =
  let ir = result.best.ir in
  let env = Codegen.Exec.run_program ir result.best.points inputs in
  List.filter_map
    (fun (v : Tcr.Ir.var) ->
      if v.role = Tcr.Ir.Output then Some (v.name, List.assoc v.name env) else None)
    ir.vars

(* Tune directly from a NumPy-style einsum spec ("lk,mj,ni,lmn->ijk"). *)
let tune_einsum ?label ?seed ?max_evals ?arch ?output ?names ?extents spec =
  tune ?label ?seed ?max_evals ?arch
    (Octopi.Einsum_notation.to_dsl ?output ?names ?extents spec)

(* Save / reload tuning artifacts (see {!Autotune.Store}). *)
let save_tuning = Autotune.Store.save

let load_tuning (b : Autotune.Tuner.benchmark) text =
  Autotune.Store.restore b (Autotune.Store.parse text)

(* ------------------------------------------------------------------ *)
(* Tuning service: canonical cache + multi-domain batch evaluation. *)

(* A long-lived service instance. Equivalent programs (up to index/tensor
   renaming) share one cached tuning; batches of cold requests spread over
   [domains]. *)
let service ?(domains = 1) ?cache_dir ?(max_evals = 100) ?(seed = 42)
    ?(arch = Gpusim.Arch.gtx980) () =
  Service.Engine.create
    ~config:{ Service.Engine.default_config with arch; domains; max_evals; seed; cache_dir }
    ()

(* Tune through a service: cache hit or full search as needed. *)
let tune_service svc ?(label = "tc") src = Service.Engine.tune svc { label; src }

(* The canonical cache key a program/arch pair would be served under. *)
let cache_key ?(arch = Gpusim.Arch.gtx980) src =
  (Service.Canonical.of_dsl ~arch src).key

(* Standalone CUDA driver (main + timing loop + CPU check). *)
let driver_of ?reps (result : tuned) =
  Codegen.Driver.emit ?reps result.best.ir result.best.points

(* Simulated performance summary. *)
type summary = {
  gflops : float;
  time_per_eval_s : float;
  speedup_vs_sequential : float;
  search_seconds : float;
  variant_count : int;
  space_size : int;
}

let summarize (result : tuned) =
  let t_seq = Autotune.Tuner.best_sequential_time result.benchmark in
  {
    gflops = result.gflops;
    time_per_eval_s = result.time_per_eval_s;
    speedup_vs_sequential = t_seq /. result.time_per_eval_s;
    search_seconds = result.search_seconds;
    variant_count = result.variant_count;
    space_size = result.total_space;
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>GFlops (simulated)     %.2f@,time per evaluation    %.3g s@,speedup vs sequential  %.2fx@,search cost (modeled)  %.0f s@,OCTOPI variants        %d@,search-space size      %d@]"
    s.gflops s.time_per_eval_s s.speedup_vs_sequential s.search_seconds s.variant_count
    s.space_size

(* ------------------------------------------------------------------ *)
(* Re-exports: each stage of the system under its paper name. Aliases that
   read through a module about to be shadowed come first. *)

module Shape = Tensor.Shape
module Einsum = Tensor.Einsum
module Tensor = Tensor.Dense
module Dsl = Octopi.Parse
module Contraction = Octopi.Contraction
module Strength_reduction = Octopi.Plan
module Variant_sets = Octopi.Variants
module Fusion = Octopi.Fusion
module Decision = Tcr.Decision
module Space = Tcr.Space
module Tcr_orio = Tcr.Orio
module Tcr_prune = Tcr.Prune
module Tcr_cse = Tcr.Cse
module Tcr = Tcr.Ir
module Kernel = Codegen.Kernel
module Cuda = Codegen.Cuda
module C = Codegen.C_emit
module Exec = Codegen.Exec
module Arch = Gpusim.Arch
module Gpu = Gpusim.Gpu
module Cpu = Cpusim.Haswell
module Openacc = Cpusim.Openacc
module Forest = Surf.Forest
module Surf = Surf.Search
module Tuner = Autotune.Tuner
module Store = Autotune.Store
module Ttgt = Autotune.Ttgt
module Gemm = Gpusim.Gemm
module Cache = Gpusim.Cache
module Simtrace = Gpusim.Simtrace
module Orio = Tcr_orio
module Prune = Tcr_prune
module Cse = Tcr_cse
module Driver = Codegen.Driver
module Einsum_notation = Octopi.Einsum_notation
module Rng = Util.Rng
module Diag = Check.Diag
module Verify = Check.Verify
module Canonical = Service.Canonical
module Tuning_cache = Service.Tuning_cache
module Metrics = Service.Metrics
module Scheduler = Service.Scheduler
module Service = Service.Engine
