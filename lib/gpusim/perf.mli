(** First-order GPU kernel performance model. Kernel time = launch overhead
    + max of three roofline terms - double-precision FMA throughput, warp
    instruction issue, and DRAM+L2 traffic (with coalescing from
    {!Coalesce} and footprint-based cache discounts) - scaled by
    occupancy-dependent latency hiding and grid utilization. Deterministic;
    run-to-run noise is added at the {!Gpu} level. *)

type memory_class =
  | Dram_raw  (** every transaction reaches DRAM *)
  | L1_resident  (** per-block footprint fits the L1/read-only path *)
  | L2_shared  (** within-block reuse largely served by L2 *)

type ref_report = {
  analysis : Coalesce.ref_analysis;
  dram_bytes : float;
  l2_bytes : float;
  memory_class : memory_class;
}

type kernel_report = {
  kernel_name : string;
  flops : int;
  t_dp : float;
  t_issue : float;
  t_mem : float;
  t_launch : float;
  time_s : float;
  dram_bytes : float;
  l2_bytes : float;
  occupancy : Occupancy.t;
  grid_utilization : float;
  bound : string;  (** "dp", "issue", "memory" or "launch" *)
  refs : ref_report list;
}

(** L2 serves traffic at this multiple of DRAM bandwidth. *)
val l2_bw_multiplier : float

(** Noise-free analytic time of a report: [t_launch + max(t_dp, t_issue,
    t_mem)]. Equals [time_s] for a report from {!analyze_kernel}; differs
    from a {!Gpu.measure_kernel} report exactly by the modeled codegen
    noise, which is what the profiler's divergence measures. *)
val model_time : kernel_report -> float

val latency_warps_compute : float
val latency_warps_memory : float

(** Representative-warp vs. exact grid-average coalescing per reference
    (output first, then factors): [(name, model, exact)] transactions per
    warp. The roofline keeps the representative number; the verifier
    reports divergence as BAR076. *)
val coalescing_divergence : Codegen.Kernel.t -> (string * float * float) list

val analyze_kernel : Arch.t -> Codegen.Kernel.t -> kernel_report
